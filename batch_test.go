package clarens

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clarens/internal/rpc"
)

func TestBatchOverAllProtocols(t *testing.T) {
	srv, _ := startFull(t)
	for _, proto := range []string{"xmlrpc", "jsonrpc", "soap"} {
		t.Run(proto, func(t *testing.T) {
			c, err := Dial(srv.URL(), WithProtocol(proto))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			b := c.Batch()
			b.Add("system.ping").
				Add("system.echo", "batched").
				Add("no.such.method").
				Add("system.version")
			if b.Len() != 4 {
				t.Fatalf("Len = %d", b.Len())
			}
			results, err := b.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 4 {
				t.Fatalf("%d results", len(results))
			}
			if results[0].Err != nil || !rpc.Equal(results[0].Result, "pong") {
				t.Errorf("ping: %+v", results[0])
			}
			if results[1].Err != nil || !rpc.Equal(results[1].Result, "batched") {
				t.Errorf("echo: %+v", results[1])
			}
			var fault *rpc.Fault
			if !errors.As(results[2].Err, &fault) || fault.Code != rpc.CodeMethodNotFound {
				t.Errorf("unknown method: %+v", results[2])
			}
			if results[2].Method != "no.such.method" {
				t.Errorf("method label = %q", results[2].Method)
			}
			if results[3].Err != nil || !rpc.Equal(results[3].Result, Version) {
				t.Errorf("version: %+v", results[3])
			}
		})
	}
}

func TestBatchEmptyRunsNothing(t *testing.T) {
	_, c := startFull(t)
	results, err := c.Batch().Run()
	if err != nil || results != nil {
		t.Fatalf("empty batch: results=%v err=%v", results, err)
	}
}

func TestBatchCarriesSessionIdentity(t *testing.T) {
	srv, c := startFull(t)
	sess, err := srv.NewSessionFor(userDN)
	if err != nil {
		t.Fatal(err)
	}
	c.SetSession(sess.ID)
	results, err := c.Batch().Add("system.whoami").Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || !rpc.Equal(results[0].Result, userDN.String()) {
		t.Errorf("whoami in batch: %+v", results[0])
	}
}

// TestTypedAccessorCoercion is the cross-codec table test: integral
// results must be accepted by CallInt however the protocol carried them
// (JSON-RPC hands doubles back as float64; XML-RPC and SOAP as int), and
// CallBool must take both native booleans and exact 0/1 numerics.
func TestTypedAccessorCoercion(t *testing.T) {
	srv, _ := startFull(t)
	for _, proto := range []string{"xmlrpc", "jsonrpc", "soap"} {
		t.Run(proto, func(t *testing.T) {
			c, err := Dial(srv.URL(), WithProtocol(proto))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for _, tc := range []struct {
				name string
				echo any
				want int
			}{
				{"int", 42, 42},
				{"negative-int", -7, -7},
				{"integral-double", 42.0, 42},
				{"zero-double", 0.0, 0},
			} {
				n, err := c.CallInt("system.echo", tc.echo)
				if err != nil {
					t.Errorf("CallInt(echo %v): %v", tc.echo, err)
				} else if n != tc.want {
					t.Errorf("CallInt(echo %v) = %d, want %d", tc.echo, n, tc.want)
				}
			}
			if _, err := c.CallInt("system.echo", 3.5); err == nil {
				t.Error("CallInt accepted non-integral 3.5")
			}
			for _, tc := range []struct {
				echo any
				want bool
			}{
				{true, true},
				{false, false},
				{1, true},
				{0, false},
			} {
				b, err := c.CallBool("system.echo", tc.echo)
				if err != nil {
					t.Errorf("CallBool(echo %v): %v", tc.echo, err)
				} else if b != tc.want {
					t.Errorf("CallBool(echo %v) = %v, want %v", tc.echo, b, tc.want)
				}
			}
			if _, err := c.CallBool("system.echo", 2); err == nil {
				t.Error("CallBool accepted 2")
			}
		})
	}
}

// TestCustomInterceptorObservesEveryCall registers an interceptor through
// the public API and verifies it sees every authorized call: direct
// calls, the multicall itself, and each of its sub-calls.
func TestCustomInterceptorObservesEveryCall(t *testing.T) {
	srv, c := startFull(t)
	var mu sync.Mutex
	seen := map[string]int{}
	srv.Use(func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			mu.Lock()
			seen[ctx.MethodName()]++
			mu.Unlock()
			return next(ctx, p)
		}
	})
	if _, err := c.Call("system.ping"); err != nil {
		t.Fatal(err)
	}
	results, err := c.Batch().
		Add("system.echo", "x").
		Add("system.time").
		Add("vo.groups").
		Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = results
	mu.Lock()
	defer mu.Unlock()
	for _, m := range []string{"system.ping", "system.multicall", "system.echo", "system.time", "vo.groups"} {
		if seen[m] != 1 {
			t.Errorf("interceptor saw %s %d times, want 1", m, seen[m])
		}
	}
}

// TestInterceptorRateLimit is the README's worked example: a per-DN
// token-bucket-ish limiter injected without touching core.
func TestInterceptorRateLimit(t *testing.T) {
	srv, c := startFull(t)
	const limit = 3
	var calls atomic.Int64
	srv.Use(func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			if calls.Add(1) > limit {
				return nil, &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "rate limit exceeded"}
			}
			return next(ctx, p)
		}
	})
	var limited int
	for i := 0; i < limit+2; i++ {
		if _, err := c.Call("system.ping"); err != nil {
			var fault *rpc.Fault
			if !errors.As(err, &fault) || fault.Message != "rate limit exceeded" {
				t.Fatalf("unexpected error: %v", err)
			}
			limited++
		}
	}
	if limited != 2 {
		t.Errorf("limited %d calls, want 2", limited)
	}
}

func TestCallCtxCancellation(t *testing.T) {
	_, c := startFull(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CallCtx(ctx, "system.ping"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// CallAsyncCtx under a cancelled context fails fast with the
	// cancellation as FirstErr.
	res := c.CallAsyncCtx(ctx, 4, 20, "system.ping")
	if res.Errors != 20 || !errors.Is(res.FirstErr, context.Canceled) {
		t.Errorf("async under cancelled ctx: %+v", res)
	}
}

// TestMulticallFasterThanSequential pins the acceptance criterion: a
// slowEchoService is a deliberately slow test method: it sleeps for the
// configured delay, then echoes its first parameter. Used to exercise the
// parallel multicall worker pool, where wall time is dominated by the
// handlers rather than the protocol.
type slowEchoService struct{ delay time.Duration }

func (slowEchoService) Name() string { return "slow" }

func (s slowEchoService) Methods() []Method {
	return []Method{{
		Name:      "slow.echo",
		Help:      "Sleep for a fixed delay, then return the first parameter.",
		Signature: []string{"any any"},
		Public:    true,
		Handler: func(ctx *Context, p Params) (any, error) {
			time.Sleep(s.delay)
			if len(p) == 0 {
				return nil, nil
			}
			return p[0], nil
		},
	}}
}

// TestMulticallParallelOrdering runs a batch of slow sub-calls through a
// server with BatchParallelism enabled and asserts the two invariants the
// worker pool must preserve: results come back in submission order
// (regardless of execution interleaving), and a faulting entry stays
// isolated to its own slot.
func TestMulticallParallelOrdering(t *testing.T) {
	srv, err := NewServer(Config{Name: "par", BatchParallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.Register(slowEchoService{delay: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := srv.GrantMethod("slow", []string{EntryAny, EntryAnonymous}, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	const n = 24
	const faultAt = 7 // one bad entry mid-batch: must not disturb neighbors
	b := c.Batch()
	for i := 0; i < n; i++ {
		if i == faultAt {
			b.Add("no.such.method")
			continue
		}
		b.Add("slow.echo", fmt.Sprintf("entry-%d", i))
	}
	results, err := b.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("%d results, want %d", len(results), n)
	}
	for i, r := range results {
		if i == faultAt {
			var fault *rpc.Fault
			if !errors.As(r.Err, &fault) || fault.Code != rpc.CodeMethodNotFound {
				t.Errorf("entry %d: want method-not-found fault, got %+v", i, r)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("entry %d: unexpected error %v", i, r.Err)
			continue
		}
		if want := fmt.Sprintf("entry-%d", i); !rpc.Equal(r.Result, want) {
			t.Errorf("entry %d: got %v, want %q (out of submission order?)", i, r.Result, want)
		}
	}
}

// 50-entry batch completes in less wall time than 50 sequential calls on
// the same warmed connection, because it pays for one HTTP round trip and
// one auth pass instead of fifty.
func TestMulticallFasterThanSequential(t *testing.T) {
	_, c := startFull(t)
	const n = 50
	c.Call("system.ping") // warm the connection

	seqStart := time.Now()
	for i := 0; i < n; i++ {
		if _, err := c.Call("system.echo", fmt.Sprintf("seq-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	sequential := time.Since(seqStart)

	b := c.Batch()
	for i := 0; i < n; i++ {
		b.Add("system.echo", fmt.Sprintf("batch-%d", i))
	}
	batchStart := time.Now()
	results, err := b.Run()
	batched := time.Since(batchStart)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil || !rpc.Equal(r.Result, fmt.Sprintf("batch-%d", i)) {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	t.Logf("sequential %v, batched %v (%.1fx)", sequential, batched, float64(sequential)/float64(batched))
	if batched >= sequential {
		t.Errorf("batched %d-call round trip (%v) not faster than sequential (%v)", n, batched, sequential)
	}
}
