// Package clarens is a Go implementation of the Clarens Web Service
// Framework for distributed scientific analysis in grid projects
// (van Lingen et al., ICPP Workshops 2005).
//
// A Server hosts named web-service modules invoked over HTTP(S) via
// XML-RPC, SOAP 1.1, or JSON-RPC, with X.509/proxy-certificate
// authentication, persistent restart-surviving sessions, hierarchical
// virtual-organization management, Apache-style method and file ACLs,
// remote file access, a sandboxed shell service, password-protected proxy
// storage, MonALISA-style dynamic service discovery, and a browser
// portal.
//
// Quickstart:
//
//	srv, err := clarens.NewServer(clarens.Config{Name: "tier2"})
//	...
//	err = srv.Start("127.0.0.1:8080")
//	c, err := clarens.Dial(srv.URL())
//	methods, err := c.Call("system.list_methods")
//
// See examples/ for complete programs and DESIGN.md for the paper map.
package clarens

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"clarens/internal/acl"
	"clarens/internal/core"
	"clarens/internal/db"
	"clarens/internal/discovery"
	"clarens/internal/fileservice"
	"clarens/internal/jobsvc"
	"clarens/internal/messaging"
	"clarens/internal/metasched"
	"clarens/internal/monalisa"
	"clarens/internal/pki"
	"clarens/internal/portal"
	"clarens/internal/proxysvc"
	"clarens/internal/pubsub"
	"clarens/internal/session"
	"clarens/internal/shellsvc"
	"clarens/internal/vo"
)

// Re-exported framework types: these form the public API surface for
// implementing and registering custom services.
type (
	// Service is a named bundle of methods registered on a Server.
	Service = core.Service
	// Method describes one invocable web-service method.
	Method = core.Method
	// Context carries per-request identity into method handlers.
	Context = core.Context
	// Params wraps positional RPC parameters with typed accessors.
	Params = core.Params
	// Handler is a service method implementation.
	Handler = core.Handler
	// Interceptor wraps a Handler with cross-cutting dispatch behavior
	// (rate limiting, tracing, auditing); register with Server.Use.
	Interceptor = core.Interceptor
	// DN is an X.509 distinguished name in grid slash form.
	DN = pki.DN
	// ACL is an Apache-style access control list entry.
	ACL = acl.ACL
	// Session is a persistent server-side session record.
	Session = session.Session
	// TLSConfig carries the HTTPS identity and client trust anchors.
	TLSConfig = core.TLSConfig
	// Identity bundles a certificate and private key.
	Identity = pki.Identity
	// CA is a test certificate authority.
	CA = pki.CA
	// DiscoveryEntry describes one service on one server.
	DiscoveryEntry = discovery.Entry
	// Bus is the server's push-event bus; services publish typed tagged
	// events, /ws subscribers and in-process Subscriptions receive them.
	Bus = pubsub.Bus
)

// Named dispatch-pipeline anchors for Server.UseBefore, re-exported.
const (
	AnchorRecover  = core.AnchorRecover
	AnchorTrace    = core.AnchorTrace
	AnchorShed     = core.AnchorShed
	AnchorMetrics  = core.AnchorMetrics
	AnchorStats    = core.AnchorStats
	AnchorAuth     = core.AnchorAuth
	AnchorDeadline = core.AnchorDeadline
	AnchorACL      = core.AnchorACL
)

// ACL evaluation orders and special DN entries, re-exported.
const (
	OrderAllowDeny = acl.AllowDeny
	OrderDenyAllow = acl.DenyAllow
	EntryAny       = acl.EntryAny
	EntryAnonymous = acl.EntryAnonymous
)

// File ACL access kinds, re-exported for Server.Files.SetACL/Grant.
const (
	AccessRead  = fileservice.Read
	AccessWrite = fileservice.Write
)

// ParseDN parses a slash-form distinguished name.
func ParseDN(s string) (DN, error) { return pki.ParseDN(s) }

// MustParseDN is ParseDN that panics on error.
func MustParseDN(s string) DN { return pki.MustParseDN(s) }

// NewCA creates a self-signed test certificate authority.
func NewCA(subject DN) (*CA, error) { return pki.NewCA(subject) }

// NewProxy issues an RFC 3820-style proxy certificate.
func NewProxy(issuer *Identity, ttl time.Duration) (*Identity, error) {
	return pki.NewProxy(issuer, ttl)
}

// Version is the framework version string.
const Version = core.Version

// Config assembles a full Clarens server. The zero value runs an
// in-memory server with only the built-in system/vo/acl services.
type Config struct {
	// Name identifies this server instance in the discovery network.
	Name string
	// DataDir is the persistent database directory ("" = in-memory; the
	// paper's restart-surviving sessions need a real directory).
	DataDir string
	// DBFsync selects the WAL fsync policy: "always" (every
	// acknowledged write reaches stable storage before the RPC
	// returns — survives SIGKILL and power loss), "interval"
	// (background fsync every DBFsyncInterval, bounding the loss
	// window), or "never"/"" (OS page cache only, the historical
	// behaviour).
	DBFsync string
	// DBFsyncInterval is the background fsync period under
	// DBFsync="interval" (default 100ms).
	DBFsyncInterval time.Duration
	// MaxInFlight bounds concurrently executing top-level RPCs; beyond
	// it new calls are shed early with the retryable "overloaded" fault
	// instead of queueing. Zero means unlimited.
	MaxInFlight int
	// AdminDNs statically populates the root admins group on startup.
	AdminDNs []string
	// SessionTTL is the session lifetime (default 12h).
	SessionTTL time.Duration
	// FileRoot, when set, enables the file service with this directory as
	// the virtual root, mounted for HTTP GET under /files/.
	FileRoot string
	// ShellUserMap, when set, enables the shell service with this
	// .clarens_user_map file. Sandboxes live under FileRoot/sandbox (so
	// they are visible to the file service) or under DataDir when no
	// FileRoot is configured.
	ShellUserMap string
	// EnableProxy enables the proxy certificate store service.
	EnableProxy bool
	// EnableMessaging enables the store-and-forward message service (the
	// paper's §6 IM architecture for jobs behind NAT).
	EnableMessaging bool
	// EnableJobs enables the asynchronous job execution service. Payloads
	// run in the shell sandbox, so ShellUserMap must also be set. Job
	// state persists in DataDir's database and survives restarts.
	EnableJobs bool
	// JobWorkers sizes the job worker pool (default 4).
	JobWorkers int
	// JobMaxPerOwner is the fair-share quota on concurrently running jobs
	// per owner DN (default 4; negative = unlimited).
	JobMaxPerOwner int
	// JobMaxQueuedPerOwner bounds one owner's queued jobs so a single
	// tenant cannot fill the queue (default: a quarter of the queue
	// bound; negative = unlimited).
	JobMaxQueuedPerOwner int
	// JobAgeInterval enables scheduler priority aging: every interval a
	// queued job's effective priority rises by JobAgeStep, so low-priority
	// work is not starved indefinitely. Zero keeps strict priority.
	JobAgeInterval time.Duration
	// JobAgeStep is the priority increment per elapsed JobAgeInterval
	// (default 1).
	JobAgeStep int
	// JobSpoolLimit bounds the bytes of one job output stream (or
	// collected sandbox file) staged to the artifact tree (default
	// 256 MiB). Requires FileRoot: artifacts live under the file
	// service's /jobs/<id>/ namespace, read-ACL'd to the submitting DN.
	JobSpoolLimit int64
	// JobArtifactRetention, when positive, garbage-collects terminal
	// jobs' artifact trees this long after they finish (records keep
	// their inline output heads). Zero keeps artifacts until job.delete.
	JobArtifactRetention time.Duration
	// EnableFederation starts the peer-aware meta-scheduler: job services
	// on peer servers are discovered through the discovery network, their
	// load polled, and queued work beyond FederationPressure forwarded to
	// the least-loaded peer under the owner's delegated identity. Requires
	// EnableJobs and EnableProxy (the delegation handoff), and discovery
	// publication (StationAddrs or LocalStation) so peers can be found —
	// and so peers can verify this server as a delegation issuer.
	EnableFederation bool
	// FederationPressure is the queued-job depth above which forwarding
	// starts (default 8; negative = forward whenever a peer is idle).
	FederationPressure int
	// PeerPollInterval is the meta-scheduler control-loop period: peer
	// load polls, forwarded-job watches, and forwarding decisions
	// (default 2s).
	PeerPollInterval time.Duration
	// FederationIssuers is the explicit allowlist of peer RPC endpoint
	// URLs this server trusts to vouch for delegated logins
	// (proxy.login_delegated with an issuer callback) — i.e. which peers
	// may forward jobs here under their users' identities. The list is
	// consulted only when EnableFederation is set; without federation,
	// or with an empty list, every remote issuer is refused. Discovery
	// deliberately plays no part in this decision: the station feed is
	// unauthenticated UDP, so a discovered peer is never a trusted one.
	// Peers whose addresses are only known at runtime can be added after
	// Start with Server.TrustFederationIssuers.
	FederationIssuers []string
	// StationAddrs, when non-empty, enables discovery publication to
	// these MonALISA-style station servers ("host:port" UDP addresses).
	StationAddrs []string
	// LocalStation, when set, additionally runs a station server inside
	// this process on the given UDP address ("127.0.0.1:0" for ephemeral)
	// and aggregates it into the local discovery cache — the JClarens
	// "fully fledged JINI client" mode of Figure 3.
	LocalStation string
	// EnablePortal serves the browser portal under /portal/.
	EnablePortal bool
	// TLS enables HTTPS with certificate client authentication. Session
	// resumption is governed by TLSConfig.TicketRotate/TicketSecret:
	// rotating ticket keys, optionally derived from a secret shared
	// across federation peers so one DNS name resumes everywhere.
	TLS *TLSConfig
	// DisableHTTP2 restricts the TLS listener to HTTP/1.1. By default
	// the server offers ALPN "h2" so one connection multiplexes
	// concurrent RPCs; clients that offer no ALPN (the /ws dialer, old
	// tooling) still negotiate HTTP/1.1.
	DisableHTTP2 bool
	// OpenSystem controls anonymous access to the system module
	// (default true, matching the paper's Figure 4 environment).
	OpenSystem *bool
	// DisableAuth skips the per-request session and ACL checks
	// (benchmark ablation A1 only).
	DisableAuth bool
	// MethodTimeout bounds each method invocation server-wide; handlers
	// observe the deadline through their request context. Zero means
	// unbounded (individual methods may still set Method.Timeout).
	MethodTimeout time.Duration
	// MaxBatchCalls caps the sub-calls one system.multicall may carry
	// (zero = core.DefaultMaxBatchCalls, negative = unlimited).
	MaxBatchCalls int
	// BatchParallelism sets how many system.multicall sub-calls may run
	// concurrently on a bounded worker pool. Results are always returned
	// in submission order. 0 or 1 keeps sub-call execution sequential —
	// the safe default for clients batching dependent calls.
	BatchParallelism int
	// EnableMetrics mounts a Prometheus text-format scrape endpoint at
	// /metrics: per-method request/fault counters and latency quantiles,
	// an aggregate latency histogram, and every registered gauge.
	EnableMetrics bool
	// EnablePprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/. Off by default — the endpoints expose heap and CPU
	// profiles, so enable them only on trusted networks.
	EnablePprof bool
	// DisablePush skips mounting the push-event WebSocket endpoint at
	// /ws. The in-process event bus still runs (services publish either
	// way); only the network surface is withheld. Peers watching this
	// server's jobs then fall back to batch polling.
	DisablePush bool
	// RequestLog, when set, receives one structured entry per RPC
	// dispatch (method, trace and span IDs, duration, caller DN, fault)
	// and per job lifecycle transition. Nil disables request logging
	// with no dispatch overhead. Requests slower than TraceSlow log at
	// warn level with their span breakdown inline when the trace store
	// is enabled.
	RequestLog *slog.Logger
	// TraceStore controls the flight recorder: completed spans are
	// tail-sampled into a bounded in-process ring — every trace is
	// buffered briefly, but only slow, faulted, or force-sampled traces
	// survive — queryable via the trace.get/trace.search RPCs,
	// GET /debug/traces/<id>, and the clarens trace CLI, with sampled
	// trace IDs attached to /metrics histogram buckets as OpenMetrics
	// exemplars. Default true; set to disable.
	TraceStore *bool
	// TraceSlow is the tail-sampling latency threshold: a trace whose
	// local root takes at least this long is retained even without a
	// fault or force-sample mark (default 500ms).
	TraceSlow time.Duration
	// TraceCapacity bounds the span ring (default 4096 spans); the
	// pending tail-decision buffer is bounded by the same figure.
	TraceCapacity int
	// TelemetryInterval is the period for republishing aggregate RPC and
	// gauge telemetry into the MonALISA station network, so the same
	// stations that carry service discovery also carry load data
	// (default 10s; negative disables). Requires StationAddrs or
	// LocalStation.
	TelemetryInterval time.Duration
	// Logger receives framework logs (nil discards).
	Logger *log.Logger
}

// Server is a fully wired Clarens server instance.
type Server struct {
	core *core.Server

	// Files is the file service (nil unless Config.FileRoot was set).
	Files *fileservice.Service
	// Shell is the shell service (nil unless Config.ShellUserMap was set).
	Shell *shellsvc.Service
	// Proxies is the proxy service (nil unless Config.EnableProxy).
	Proxies *proxysvc.Service
	// Messages is the messaging service (nil unless Config.EnableMessaging).
	Messages *messaging.Service
	// Discovery is the discovery service (always present; publishing
	// requires StationAddrs or LocalStation).
	Discovery *discovery.Service
	// Jobs is the job execution service (nil unless Config.EnableJobs).
	Jobs *jobsvc.Service
	// Federation is the meta-scheduler forwarding queued jobs to peers
	// (nil unless Config.EnableFederation).
	Federation *metasched.Scheduler

	station    *monalisa.Station
	aggregator *discovery.Aggregator
	publisher  *monalisa.Publisher
	name       string

	telemetryStop chan struct{}
	telemetryWG   sync.WaitGroup

	issuerMu       sync.RWMutex
	trustedIssuers map[string]bool // delegation issuer URL allowlist
}

// NewServer builds and wires a server from the configuration.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Name == "" {
		cfg.Name = "clarens"
	}
	syncPolicy, err := db.ParseSyncPolicy(cfg.DBFsync)
	if err != nil {
		return nil, err
	}
	cs, err := core.NewServer(core.Config{
		DataDir:          cfg.DataDir,
		DB:               db.Options{Sync: syncPolicy, SyncInterval: cfg.DBFsyncInterval},
		MaxInFlight:      cfg.MaxInFlight,
		AdminDNs:         cfg.AdminDNs,
		SessionTTL:       cfg.SessionTTL,
		TLS:              cfg.TLS,
		DisableHTTP2:     cfg.DisableHTTP2,
		OpenSystem:       cfg.OpenSystem,
		DisableAuth:      cfg.DisableAuth,
		MethodTimeout:    cfg.MethodTimeout,
		MaxBatchCalls:    cfg.MaxBatchCalls,
		BatchParallelism: cfg.BatchParallelism,
		RequestLog:       cfg.RequestLog,
		TraceStore:       cfg.TraceStore == nil || *cfg.TraceStore,
		TraceSlow:        cfg.TraceSlow,
		TraceCapacity:    cfg.TraceCapacity,
		ServerName:       cfg.Name,
		Logger:           cfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	if cfg.EnableMetrics {
		cs.MountMetrics("/metrics")
	}
	if cfg.EnablePprof {
		cs.MountPprof()
	}
	if !cfg.DisablePush {
		cs.MountWS("/ws")
	}
	s := &Server{core: cs, name: cfg.Name, trustedIssuers: make(map[string]bool, len(cfg.FederationIssuers))}
	for _, u := range cfg.FederationIssuers {
		s.trustedIssuers[normalizeIssuerURL(u)] = true
	}
	fail := func(err error) (*Server, error) {
		s.Close()
		return nil, err
	}

	if cfg.FileRoot != "" {
		fsvc, err := fileservice.New(cs, cfg.FileRoot)
		if err != nil {
			return fail(err)
		}
		if err := cs.Register(fsvc); err != nil {
			return fail(err)
		}
		fsvc.MountHTTP("/files/")
		s.Files = fsvc
	}

	if cfg.ShellUserMap != "" {
		um, err := shellsvc.LoadUserMap(cfg.ShellUserMap)
		if err != nil {
			return fail(err)
		}
		sandboxRoot := ""
		switch {
		case cfg.FileRoot != "":
			sandboxRoot = filepath.Join(cfg.FileRoot, "sandbox")
		case cfg.DataDir != "":
			sandboxRoot = filepath.Join(cfg.DataDir, "sandbox")
		default:
			return fail(fmt.Errorf("clarens: shell service needs FileRoot or DataDir for sandboxes"))
		}
		sh, err := shellsvc.New(cs, um, sandboxRoot)
		if err != nil {
			return fail(err)
		}
		if err := cs.Register(sh); err != nil {
			return fail(err)
		}
		// Authenticated users may reach the shell module; the user map is
		// the real gate (unmapped DNs are refused there).
		if err := cs.MethodACL().Set("shell", &acl.ACL{AllowDNs: []string{acl.EntryAny}, AllowGroups: []string{vo.AdminsGroup}}); err != nil {
			return fail(err)
		}
		s.Shell = sh
	}

	if cfg.EnableProxy {
		s.Proxies = proxysvc.New(cs)
		if err := cs.Register(s.Proxies); err != nil {
			return fail(err)
		}
	}

	if cfg.EnableMessaging {
		s.Messages = messaging.New(cs)
		if err := cs.Register(s.Messages); err != nil {
			return fail(err)
		}
		// Any authenticated principal may exchange messages; the service
		// itself refuses anonymous callers.
		if err := cs.MethodACL().Set("message", &acl.ACL{AllowDNs: []string{acl.EntryAny}, AllowGroups: []string{vo.AdminsGroup}}); err != nil {
			return fail(err)
		}
	}

	if cfg.LocalStation != "" {
		st, err := monalisa.NewStation(cfg.Name+"-station", cfg.LocalStation)
		if err != nil {
			return fail(err)
		}
		s.station = st
		s.aggregator = discovery.NewAggregator(cs.Store(), st)
	}
	var targets []string
	targets = append(targets, cfg.StationAddrs...)
	if s.station != nil {
		targets = append(targets, s.station.Addr().String())
	}
	if len(targets) > 0 {
		addrs, err := resolveUDP(targets)
		if err != nil {
			return fail(err)
		}
		pub, err := monalisa.NewPublisher(addrs...)
		if err != nil {
			return fail(err)
		}
		s.publisher = pub
	}
	s.Discovery = discovery.New(cs, cfg.Name, s.publisher)
	if err := cs.Register(s.Discovery); err != nil {
		return fail(err)
	}

	if cfg.EnableJobs {
		if s.Shell == nil {
			return fail(fmt.Errorf("clarens: job service requires ShellUserMap (payloads run in the shell sandbox)"))
		}
		shell := s.Shell
		exec := func(owner pki.DN, command string, stdout, stderr io.Writer) (jobsvc.ExecStatus, error) {
			code, user, err := shell.ExecStreamAs(owner, command, stdout, stderr)
			return jobsvc.ExecStatus{ExitCode: code, LocalUser: user}, err
		}
		var notify jobsvc.Notifier
		if s.Messages != nil {
			notify = s.Messages
		}
		// Gauge records tee onto the event bus (always) and the station
		// network (when configured), so /ws subscribers see the same load
		// feed a MonALISA aggregator would.
		var next jobsvc.MetricsPublisher
		if s.publisher != nil {
			next = s.publisher
		}
		gauges := &busMetrics{bus: cs.Events(), next: next}
		// With a file service present, job results stage as artifacts:
		// stdout/stderr spool to the per-owner-ACL'd /jobs/<id>/ trees and
		// sandbox files matched by a job's collect globs ride along.
		var stager jobsvc.ArtifactStager
		var collector jobsvc.Collector
		if s.Files != nil {
			store, err := s.Files.EnableJobArtifacts()
			if err != nil {
				return fail(err)
			}
			stager = store
			collector = func(owner pki.DN, patterns []string, destDir string, fileLimit int64) ([]jobsvc.CollectedFile, []string, error) {
				files, skipped, err := shell.CollectInto(owner, patterns, destDir, fileLimit)
				out := make([]jobsvc.CollectedFile, len(files))
				for i, f := range files {
					out[i] = jobsvc.CollectedFile{Name: f.Name, Size: f.Size, MD5: f.MD5}
				}
				return out, skipped, err
			}
		}
		js, err := jobsvc.New(cs, jobsvc.Config{
			Workers:           cfg.JobWorkers,
			MaxPerOwner:       cfg.JobMaxPerOwner,
			MaxQueuedPerOwner: cfg.JobMaxQueuedPerOwner,
			AgeInterval:       cfg.JobAgeInterval,
			AgeStep:           cfg.JobAgeStep,
			SpoolLimit:        cfg.JobSpoolLimit,
			ArtifactRetention: cfg.JobArtifactRetention,
			Artifacts:         stager,
			Collector:         collector,
			Telemetry:         cs.Telemetry(),
			Events:            cs.RequestLog(),
			Spans:             cs.Spans(),
		}, exec, notify, gauges, cfg.Name)
		if err != nil {
			return fail(err)
		}
		s.Jobs = js
		if err := cs.Register(js); err != nil {
			js.Stop()
			return fail(err)
		}
		// Any authenticated principal may reach the job module; ownership
		// checks inside the service are the real gate.
		if err := cs.MethodACL().Set("job", &acl.ACL{AllowDNs: []string{acl.EntryAny}, AllowGroups: []string{vo.AdminsGroup}}); err != nil {
			return fail(err)
		}
		reg := cs.Telemetry()
		reg.RegisterGauge("clarens.job.queued", "jobs waiting in the local queue", func() float64 { return float64(js.Stats().Queued) })
		reg.RegisterGauge("clarens.job.running", "jobs currently executing", func() float64 { return float64(js.Stats().Running) })
		reg.RegisterGauge("clarens.job.remote", "jobs forwarded to peers, awaiting pull-back", func() float64 { return float64(js.Stats().Remote) })
		reg.RegisterGauge("clarens.job.done", "jobs completed successfully", func() float64 { return float64(js.Stats().Done) })
		reg.RegisterGauge("clarens.job.failed", "jobs that exhausted retries", func() float64 { return float64(js.Stats().Failed) })
		reg.RegisterGauge("clarens.job.artifact_bytes", "cumulative bytes staged into artifact trees", func() float64 { return float64(js.Stats().ArtifactBytes) })
		cs.RegisterStatsSection("jobs", func() map[string]any {
			sn := js.Stats()
			return map[string]any{
				"queued": sn.Queued, "running": sn.Running, "remote": sn.Remote,
				"done": sn.Done, "failed": sn.Failed, "cancelled": sn.Cancelled,
				"workers": sn.Workers, "artifact_bytes": sn.ArtifactBytes,
				"throughput_per_s": sn.Throughput(),
			}
		})
		cs.RegisterHealthCheck("jobs", func() error {
			if js.Stats().Workers <= 0 {
				return fmt.Errorf("no job workers")
			}
			return nil
		})
	}

	// Delegation trust is an explicit operator decision: remote issuers
	// are honored only when federation is on AND the issuer URL is on the
	// configured allowlist (Config.FederationIssuers, extendable at
	// runtime with TrustFederationIssuers). The discovery cache is never
	// consulted — its station feed is unauthenticated UDP, and a gate fed
	// by it would let anyone who can send one station packet register a
	// URL and mint sessions for arbitrary DNs. Without federation both
	// hooks stay nil and proxysvc refuses every remote issuer.
	// Verification calls the allowlisted issuer's proxy.check_delegation
	// back over the issuer's pooled peer client.
	if s.Proxies != nil && cfg.EnableFederation {
		s.Proxies.TrustIssuer = s.issuerTrusted
		s.Proxies.VerifyRemote = verifyDelegationRemote
	}

	if cfg.EnableFederation {
		if s.Jobs == nil {
			return fail(fmt.Errorf("clarens: federation requires EnableJobs"))
		}
		if s.Proxies == nil {
			return fail(fmt.Errorf("clarens: federation requires EnableProxy (the delegation handoff carries job owners' identities to peers)"))
		}
		ms, err := metasched.New(s.Jobs, s.Discovery, s.Proxies, federationDialer, cfg.Logger, metasched.Config{
			ServerName:   cfg.Name,
			SelfURL:      s.RPCURL,
			Pressure:     cfg.FederationPressure,
			PollInterval: cfg.PeerPollInterval,
			EventDial:    federationEventDialer,
			Telemetry:    cs.Telemetry(),
			Spans:        cs.Spans(),
		})
		if err != nil {
			return fail(err)
		}
		s.Federation = ms
		reg := cs.Telemetry()
		reg.RegisterGauge("clarens.federation.peers", "live job-service peers in the federation table", func() float64 { return float64(ms.Stats().Peers) })
		reg.RegisterGauge("clarens.federation.forwarded", "jobs accepted by peers", func() float64 { return float64(ms.Stats().Forwarded) })
		reg.RegisterGauge("clarens.federation.pulled_back", "remote results finalized locally", func() float64 { return float64(ms.Stats().PulledBack) })
		reg.RegisterGauge("clarens.federation.fallbacks", "jobs returned to the local queue after a peer failure", func() float64 { return float64(ms.Stats().Fallbacks) })
		reg.RegisterGauge("clarens.federation.artifact_bytes", "artifact bytes fetched from peers and re-staged", func() float64 { return float64(ms.Stats().ArtifactBytes) })
		reg.RegisterGauge("clarens.federation.status_rpcs", "job.status calls issued by the remote watch loop", func() float64 { return float64(ms.Stats().StatusRPCs) })
		reg.RegisterGauge("clarens.federation.push_events", "peer job events received over push subscriptions", func() float64 { return float64(ms.Stats().PushEvents) })
		cs.RegisterStatsSection("federation", func() map[string]any {
			st := ms.Stats()
			return map[string]any{
				"peers": st.Peers, "forwarded": st.Forwarded, "pulled_back": st.PulledBack,
				"fallbacks": st.Fallbacks, "artifact_bytes": st.ArtifactBytes,
				"status_rpcs": st.StatusRPCs, "push_events": st.PushEvents,
				"push_watches": st.PushWatches, "breaker_open": st.BreakerOpen,
			}
		})
		ms.Start()
	} else if s.Jobs != nil {
		// Remote shadow records recovered from a previous federated run
		// have no meta-scheduler to watch them: pull the work back into
		// the local queue so nothing is stranded.
		if n := s.Jobs.RequeueAllRemote(); n > 0 && cfg.Logger != nil {
			cfg.Logger.Printf("clarens: re-queued %d remote jobs (federation disabled)", n)
		}
	}

	if cfg.EnablePortal {
		portal.New(cs, "/portal/").Mount()
	}

	// Telemetry republication: the stations that carry service discovery
	// also carry load/latency data, so any JClarens-style aggregator can
	// watch the whole federation's health from one station feed.
	if s.publisher != nil && cfg.TelemetryInterval >= 0 {
		every := cfg.TelemetryInterval
		if every == 0 {
			every = 10 * time.Second
		}
		s.telemetryStop = make(chan struct{})
		s.telemetryWG.Add(1)
		go s.republishTelemetry(every)
	}
	return s, nil
}

// EventMonALISA is the bus event type carrying one MonALISA-style
// telemetry record (gauge or RPC-aggregate snapshot); the record's
// Farm/Cluster/Node become tags and its Params the event data.
const EventMonALISA = "monalisa.record"

// busMetrics tees MonALISA records onto the push-event bus ahead of the
// real station publisher (which may be absent), so /ws subscribers get
// the same load feed the station network carries.
type busMetrics struct {
	bus  *pubsub.Bus
	next jobsvc.MetricsPublisher
}

func (b *busMetrics) Publish(rec *monalisa.Record) error {
	b.bus.Publish(recordEvent(rec))
	if b.next != nil {
		return b.next.Publish(rec)
	}
	return nil
}

// recordEvent converts a MonALISA record to its bus event form.
func recordEvent(rec *monalisa.Record) pubsub.Event {
	data := make(map[string]any, len(rec.Params))
	for k, v := range rec.Params {
		data[k] = v
	}
	return pubsub.Event{
		Type: EventMonALISA,
		Tags: map[string]string{"service": "monalisa", "farm": rec.Farm, "cluster": rec.Cluster, "node": rec.Node},
		Data: data,
	}
}

// Events returns the server's push-event bus, for in-process publishers
// and subscribers (custom services emitting their own events, local
// observers that skip the WebSocket hop).
func (s *Server) Events() *Bus { return s.core.Events() }

// republishTelemetry periodically publishes one RPC-aggregate record and
// one gauge record into the station network until Close.
func (s *Server) republishTelemetry(every time.Duration) {
	defer s.telemetryWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.telemetryStop:
			return
		case <-t.C:
			s.PublishTelemetry()
		}
	}
}

// PublishTelemetry publishes one snapshot of the RPC aggregate latency
// and every registered gauge to the configured stations, under
// Farm=<server name>, Cluster="telemetry". It is called periodically
// when TelemetryInterval is enabled and may also be invoked directly
// (tests, forced flushes). Returns an error when no stations are
// configured or a publish fails.
func (s *Server) PublishTelemetry() error {
	if s.publisher == nil {
		return fmt.Errorf("clarens: no station servers configured")
	}
	reg := s.core.Telemetry()
	agg := reg.RPCAggregate()
	rpcRec := &monalisa.Record{
		Farm:    s.name,
		Cluster: "telemetry",
		Node:    "rpc",
		Params: map[string]float64{
			"clarens.rpc.requests":       float64(agg.Count),
			"clarens.rpc.latency_p50_ms": agg.Quantile(0.5).Seconds() * 1e3,
			"clarens.rpc.latency_p95_ms": agg.Quantile(0.95).Seconds() * 1e3,
			"clarens.rpc.latency_p99_ms": agg.Quantile(0.99).Seconds() * 1e3,
		},
	}
	s.core.Events().Publish(recordEvent(rpcRec))
	err := s.publisher.Publish(rpcRec)
	if gauges := reg.GaugeValues(); len(gauges) > 0 {
		gaugeRec := &monalisa.Record{
			Farm:    s.name,
			Cluster: "telemetry",
			Node:    "gauges",
			Params:  gauges,
		}
		s.core.Events().Publish(recordEvent(gaugeRec))
		if e := s.publisher.Publish(gaugeRec); err == nil {
			err = e
		}
	}
	return err
}

func resolveUDP(addrs []string) ([]*net.UDPAddr, error) {
	out := make([]*net.UDPAddr, 0, len(addrs))
	for _, a := range addrs {
		udp, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			return nil, fmt.Errorf("clarens: station address %q: %w", a, err)
		}
		out = append(out, udp)
	}
	return out, nil
}

// Core exposes the underlying framework server for advanced wiring
// (ACL/VO managers, the HTTP mux, the database store).
func (s *Server) Core() *core.Server { return s.core }

// Register adds a custom service to the server.
func (s *Server) Register(svc Service) error { return s.core.Register(svc) }

// Use appends interceptors to the dispatch pipeline. They run in
// registration order inside the built-in recovery/stats/auth/deadline/ACL
// stages — immediately around each method handler, with the caller's
// identity already resolved and authorized. They observe every call that
// clears authorization, including each sub-call of a system.multicall
// batch and calls to unknown methods (which fault at the terminal
// stage); calls the built-in ACL stage denies are rejected before custom
// interceptors run. See the README's "Writing interceptors" section for
// a worked example.
func (s *Server) Use(ics ...Interceptor) { s.core.Use(ics...) }

// UseBefore inserts interceptors immediately before a named built-in
// pipeline stage (AnchorRecover, AnchorStats, AnchorAuth, AnchorDeadline,
// AnchorACL). Installing before AnchorAuth runs the stage with the
// caller's identity still unresolved — the position for IP allowlists or
// request decryption that must act ahead of any session lookup. Unknown
// anchors are an error.
func (s *Server) UseBefore(anchor string, ics ...Interceptor) error {
	return s.core.UseBefore(anchor, ics...)
}

// Name returns the server's discovery name.
func (s *Server) Name() string { return s.name }

// Start listens on addr and serves in the background.
func (s *Server) Start(addr string) error { return s.core.Start(addr) }

// URL returns the base URL after Start.
func (s *Server) URL() string { return s.core.URL() }

// RPCURL returns the full RPC endpoint URL after Start.
func (s *Server) RPCURL() string { return s.core.URL() + s.core.RPCPath() }

// TrustFederationIssuers adds peer RPC endpoint URLs to the delegation
// issuer allowlist (see Config.FederationIssuers) — for federations whose
// peer addresses are only known at runtime (ephemeral ports, dynamic
// membership). The allowlist is only consulted when federation is
// enabled; otherwise remote issuers stay refused regardless.
func (s *Server) TrustFederationIssuers(urls ...string) {
	s.issuerMu.Lock()
	defer s.issuerMu.Unlock()
	for _, u := range urls {
		s.trustedIssuers[normalizeIssuerURL(u)] = true
	}
}

// issuerTrusted is the proxysvc.TrustIssuer gate: allowlist membership.
func (s *Server) issuerTrusted(url string) bool {
	s.issuerMu.RLock()
	defer s.issuerMu.RUnlock()
	return s.trustedIssuers[normalizeIssuerURL(url)]
}

// normalizeIssuerURL canonicalizes an issuer URL for allowlist lookup.
func normalizeIssuerURL(u string) string { return strings.TrimSuffix(u, "/") }

// StationAddr returns the in-process station's UDP address, or "".
func (s *Server) StationAddr() string {
	if s.station == nil {
		return ""
	}
	return s.station.Addr().String()
}

// Station returns the in-process station server, or nil.
func (s *Server) Station() *monalisa.Station { return s.station }

// PublishServices publishes all local services to the discovery network
// and starts periodic refresh every half TTL.
func (s *Server) PublishServices() error {
	if s.publisher == nil {
		return fmt.Errorf("clarens: no station servers configured")
	}
	url := s.RPCURL()
	if !strings.Contains(url, "://") || s.core.Addr() == "" {
		return fmt.Errorf("clarens: server must be started before publishing")
	}
	if _, err := s.Discovery.PublishAll(url); err != nil {
		return err
	}
	s.Discovery.StartPeriodicPublish(url, discovery.DefaultTTL/2)
	return nil
}

// NewSessionFor mints a session directly (admin bootstrap, tests,
// examples). Normal clients authenticate via TLS + system.auth or
// proxy.login.
func (s *Server) NewSessionFor(dn DN) (*Session, error) {
	return s.core.NewSessionFor(dn)
}

// GrantMethod attaches an allow-ACL for the given DNs/groups at a method
// hierarchy path (convenience over Core().MethodACL().Set).
func (s *Server) GrantMethod(path string, dns []string, groups []string) error {
	return s.core.MethodACL().Set(path, &acl.ACL{AllowDNs: dns, AllowGroups: groups})
}

// Shutdown drains the server gracefully, bounded by ctx: stop accepting
// new RPCs (rejected with the retryable "overloaded" fault so clients
// fail over to another peer), let in-flight calls finish, stop the
// federation loop, drain the job workers and checkpoint the queue
// durably, notify /ws subscribers with a "closing" frame, then compact
// and close the database. Work that outlives ctx is abandoned to the
// recovery path (running jobs re-queue on next start); the first error
// encountered is returned after shutdown completes.
func (s *Server) Shutdown(ctx context.Context) error {
	// 1. Quiesce the RPC surface while everything below still runs, so
	// in-flight calls (job.wait, message.wait, ...) complete normally.
	err := s.core.Drain(ctx)
	if s.telemetryStop != nil {
		close(s.telemetryStop)
		s.telemetryWG.Wait()
		s.telemetryStop = nil
	}
	// 2. Stop the forwarding loop before the workers so no new
	// delegations race the drain.
	if s.Federation != nil {
		s.Federation.Stop()
	}
	// 3. Drain workers and make the queue checkpoint durable.
	if s.Jobs != nil {
		if derr := s.Jobs.Drain(ctx); derr != nil && err == nil {
			err = derr
		}
	}
	if s.Discovery != nil {
		s.Discovery.StopPeriodic()
	}
	if s.aggregator != nil {
		s.aggregator.Close()
	}
	if s.publisher != nil {
		s.publisher.Close()
	}
	if s.station != nil {
		s.station.Close()
	}
	// 4. Broadcast "closing" on /ws, stop the listener, compact + close.
	if cerr := s.core.Shutdown(ctx); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Close shuts everything down.
func (s *Server) Close() error {
	if s.telemetryStop != nil {
		close(s.telemetryStop)
		s.telemetryWG.Wait()
		s.telemetryStop = nil
	}
	if s.Federation != nil {
		s.Federation.Stop()
	}
	if s.Jobs != nil {
		s.Jobs.Stop()
	}
	if s.Discovery != nil {
		s.Discovery.StopPeriodic()
	}
	if s.aggregator != nil {
		s.aggregator.Close()
	}
	if s.publisher != nil {
		s.publisher.Close()
	}
	if s.station != nil {
		s.station.Close()
	}
	return s.core.Close()
}
