package clarens

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"clarens/internal/jobsvc"
	"clarens/internal/rpc"
)

// jobConfig assembles a persistent server with the job subsystem and its
// collaborators (shell sandbox, messaging, database) enabled.
func jobConfig(t *testing.T, dataDir string) Config {
	t.Helper()
	root := t.TempDir()
	umap := filepath.Join(t.TempDir(), ".clarens_user_map")
	os.WriteFile(umap, []byte("joe : /DC=org/DC=doegrids/OU=People/CN=Joe User ;;\n"), 0o644)
	return Config{
		Name:            "jobsrv",
		AdminDNs:        []string{adminDN.String()},
		DataDir:         dataDir,
		FileRoot:        root,
		ShellUserMap:    umap,
		EnableMessaging: true,
		EnableJobs:      true,
		JobWorkers:      2,
	}
}

func startJobServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return srv, c
}

// pollStatus polls job.status over RPC until the job is terminal.
func pollStatus(t *testing.T, c *Client, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.CallStruct("job.status", id)
		if err != nil {
			t.Fatal(err)
		}
		state, _ := st["state"].(string)
		if jobsvc.Terminal(state) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after 10s", id, state)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobRoundTripOverRPC is the acceptance path: job.submit →
// job.status → job.output over real RPC, with the payload executed in the
// shell sandbox, persistence across a server restart on the same DataDir,
// and the completion notification delivered via message.poll.
func TestJobRoundTripOverRPC(t *testing.T) {
	dataDir := t.TempDir()
	cfg := jobConfig(t, dataDir)
	srv, c := startJobServer(t, cfg)
	sess, err := srv.NewSessionFor(userDN)
	if err != nil {
		t.Fatal(err)
	}
	c.SetSession(sess.ID)

	// Submit a sandbox payload that writes a file and reads it back.
	id, err := c.CallString("job.submit", "echo analysis-result > out.txt && cat out.txt")
	if err != nil {
		t.Fatal(err)
	}
	st := pollStatus(t, c, id)
	if st["state"] != "done" {
		t.Fatalf("status = %v", st)
	}
	if st["local_user"] != "joe" {
		t.Errorf("local_user = %v, want joe (user-map resolution)", st["local_user"])
	}

	out, err := c.CallStruct("job.output", id)
	if err != nil {
		t.Fatal(err)
	}
	if out["stdout"] != "analysis-result\n" || out["exit_code"] != 0 {
		t.Errorf("output = %v", out)
	}

	// Completion notification in the owner's message queue.
	msgs, err := c.CallList("message.poll")
	if err != nil {
		t.Fatal(err)
	}
	foundNotice := false
	for _, m := range msgs {
		msg, _ := m.(map[string]any)
		if msg["subject"] == "job.done" {
			body, _ := msg["body"].(string)
			if strings.Contains(body, id) {
				foundNotice = true
			}
		}
	}
	if !foundNotice {
		t.Errorf("no job.done notification for %s in %v", id, msgs)
	}

	// job.list shows the caller's job.
	list, err := c.CallList("job.list")
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}

	// Restart on the same database directory: the job record (and the
	// session) must survive.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, c2 := startJobServer(t, jobConfig(t, dataDir))
	_ = srv2
	c2.SetSession(sess.ID)
	st2, err := c2.CallStruct("job.status", id)
	if err != nil {
		t.Fatal(err)
	}
	if st2["state"] != "done" {
		t.Errorf("after restart state = %v, want done", st2["state"])
	}
	out2, err := c2.CallStruct("job.output", id)
	if err != nil || out2["stdout"] != "analysis-result\n" {
		t.Errorf("after restart output = %v, %v", out2, err)
	}
}

func TestJobOwnerOnlyAccess(t *testing.T) {
	cfg := jobConfig(t, t.TempDir())
	srv, c := startJobServer(t, cfg)
	sess, _ := srv.NewSessionFor(userDN)
	c.SetSession(sess.ID)
	id, err := c.CallString("job.submit", "echo private")
	if err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, id)

	// A different authenticated principal is refused.
	strangerDN := MustParseDN("/O=grid/OU=People/CN=Stranger")
	stranger, err := Dial(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	ssess, _ := srv.NewSessionFor(strangerDN)
	stranger.SetSession(ssess.ID)
	if _, err := stranger.CallStruct("job.status", id); err == nil {
		t.Error("stranger must not read another owner's job")
	} else if f, ok := err.(*rpc.Fault); !ok || f.Code != rpc.CodeAccessDenied {
		t.Errorf("err = %v, want access-denied fault", err)
	}
	if _, err := stranger.CallList("job.list"); err != nil {
		t.Fatal(err)
	} else if l, _ := stranger.CallList("job.list"); len(l) != 0 {
		t.Errorf("stranger sees %d jobs, want 0", len(l))
	}

	// Anonymous callers are refused outright.
	anon, err := Dial(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Close()
	if _, err := anon.CallString("job.submit", "echo nope"); err == nil {
		t.Error("anonymous submit must fail")
	}

	// The server admin override sees everything.
	admin, err := Dial(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	asess, _ := srv.NewSessionFor(adminDN)
	admin.SetSession(asess.ID)
	st, err := admin.CallStruct("job.status", id)
	if err != nil || st["owner"] != userDN.String() {
		t.Errorf("admin status = %v, %v", st, err)
	}
	if l, err := admin.CallList("job.list"); err != nil || len(l) != 1 {
		t.Errorf("admin list = %v, %v", l, err)
	}
}

func TestJobCancelAndStatsOverRPC(t *testing.T) {
	cfg := jobConfig(t, t.TempDir())
	cfg.JobWorkers = 1
	srv, c := startJobServer(t, cfg)
	sess, _ := srv.NewSessionFor(userDN)
	c.SetSession(sess.ID)

	// A queued job behind a slow-ish one can be cancelled before it runs.
	// The built-in interpreter is fast, so cancel the tail of a burst and
	// accept either outcome for jobs that already started; the last job
	// is overwhelmingly likely still queued.
	var ids []string
	for i := 0; i < 20; i++ {
		id, err := c.CallString("job.submit", "echo burst")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	last := ids[len(ids)-1]
	if _, err := c.CallBool("job.cancel", last); err != nil {
		t.Fatal(err)
	}
	st := pollStatus(t, c, last)
	if st["state"] != "cancelled" && st["state"] != "done" {
		t.Errorf("state = %v", st["state"])
	}
	for _, id := range ids[:len(ids)-1] {
		pollStatus(t, c, id)
	}
	stats, err := c.CallStruct("job.stats")
	if err != nil {
		t.Fatal(err)
	}
	done, _ := stats["done"].(int)
	cancelled, _ := stats["cancelled"].(int)
	if done+cancelled != 20 {
		t.Errorf("stats = %v, want done+cancelled = 20", stats)
	}
	if w, _ := stats["workers"].(int); w != 1 {
		t.Errorf("workers = %v", stats["workers"])
	}
}

// TestJobsRequireShell verifies the assembly-time guard.
func TestJobsRequireShell(t *testing.T) {
	_, err := NewServer(Config{Name: "broken", EnableJobs: true})
	if err == nil || !strings.Contains(err.Error(), "ShellUserMap") {
		t.Errorf("err = %v, want ShellUserMap guard", err)
	}
}

// TestJobRecoveryRequeuesInterrupted exercises crash recovery through the
// public assembly: a running job is interrupted (its record persisted
// mid-run), and the rebuilt server re-queues and completes it.
func TestJobRecoveryRequeuesInterrupted(t *testing.T) {
	dataDir := t.TempDir()
	cfg := jobConfig(t, dataDir)
	srv, c := startJobServer(t, cfg)
	sess, _ := srv.NewSessionFor(userDN)
	c.SetSession(sess.ID)
	id, err := c.CallString("job.submit", "echo first-life")
	if err != nil {
		t.Fatal(err)
	}
	pollStatus(t, c, id)

	// Forge the crash: flip the persisted record back to running with
	// retry budget, as if the server died mid-attempt.
	j, ok := srv.Jobs.Get(id)
	if !ok {
		t.Fatal("job lost")
	}
	j.State = jobsvc.StateRunning
	j.Attempts = 1
	j.MaxRetries = 2
	j.Stdout = ""
	if err := srv.Core().Store().PutJSON("jobs", id, j); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	_, c2 := startJobServer(t, jobConfig(t, dataDir))
	c2.SetSession(sess.ID)
	st := pollStatus(t, c2, id)
	if st["state"] != "done" {
		t.Fatalf("recovered job = %v", st)
	}
	out, err := c2.CallStruct("job.output", id)
	if err != nil || out["stdout"] != "first-life\n" {
		t.Errorf("recovered output = %v, %v", out, err)
	}
	if a, _ := st["attempts"].(int); a != 2 {
		t.Errorf("attempts = %v, want 2 (interrupted attempt counted)", st["attempts"])
	}
}

// TestJobArtifactStagingEndToEnd is the staging acceptance path: a job
// whose output exceeds the inline limit keeps the full stream on disk —
// job.output returns the head with truncated=true plus an artifact
// reference, and fetching that reference via file.read chunk iteration
// and via HTTP GET yields byte-identical, digest-checked content.
func TestJobArtifactStagingEndToEnd(t *testing.T) {
	cfg := jobConfig(t, t.TempDir())
	srv, c := startJobServer(t, cfg)
	sess, err := srv.NewSessionFor(userDN)
	if err != nil {
		t.Fatal(err)
	}
	c.SetSession(sess.ID)

	// ~1.4 MiB of stdout: far past the 64 KiB inline limit.
	id, err := c.CallString("job.submit", "seq 200000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobWait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	out, err := c.CallStruct("job.output", id)
	if err != nil {
		t.Fatal(err)
	}
	head, _ := out["stdout"].(string)
	if tr, _ := out["truncated"].(bool); !tr {
		t.Fatalf("truncated = %v, want true (head %d bytes)", out["truncated"], len(head))
	}
	if len(head) != 64<<10 {
		t.Errorf("head = %d bytes, want the 64 KiB inline limit", len(head))
	}
	arts, _ := out["artifacts"].([]any)
	if len(arts) != 1 {
		t.Fatalf("artifacts = %#v", out["artifacts"])
	}
	ref, _ := arts[0].(map[string]any)
	path, _ := ref["path"].(string)
	wantMD5, _ := ref["md5"].(string)
	size, _ := ref["size"].(int)
	if ref["name"] != "stdout" || path != "/jobs/"+id+"/stdout" || wantMD5 == "" || size <= 64<<10 {
		t.Fatalf("artifact ref = %#v", ref)
	}

	// Path 1: file.read chunk iteration (terminates on the eof flag).
	var viaRPC bytes.Buffer
	n, err := c.FetchFile(path, 0, &viaRPC)
	if err != nil || int(n) != size {
		t.Fatalf("FetchFile = %d bytes, %v (want %d)", n, err, size)
	}
	sum := md5.Sum(viaRPC.Bytes())
	if hex.EncodeToString(sum[:]) != wantMD5 {
		t.Error("file.read fetch digest mismatch")
	}
	if !strings.HasPrefix(viaRPC.String(), head) {
		t.Error("inline head is not a prefix of the staged stream")
	}

	// Path 2: HTTP GET streaming, byte-identical.
	var viaHTTP bytes.Buffer
	n, err = c.FetchFileHTTP(path, 0, &viaHTTP)
	if err != nil || int(n) != size {
		t.Fatalf("FetchFileHTTP = %d bytes, %v", n, err)
	}
	if !bytes.Equal(viaHTTP.Bytes(), viaRPC.Bytes()) {
		t.Error("HTTP GET and file.read fetches differ")
	}
	// Resume at an offset via Range.
	var tail bytes.Buffer
	off := int64(size - 12345)
	if _, err := c.FetchFileHTTP(path, off, &tail); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tail.Bytes(), viaRPC.Bytes()[off:]) {
		t.Error("Range resume returned wrong bytes")
	}

	// The transparent client helper resolves the truncation.
	full, err := c.JobOutput(id)
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || len(full.Stdout) != size {
		t.Errorf("JobOutput = truncated %v, %d bytes", full.Truncated, len(full.Stdout))
	}

	// Access control: another authenticated DN can reach neither path.
	stranger, err := Dial(srv.URL())
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	ssess, _ := srv.NewSessionFor(MustParseDN("/O=grid/OU=People/CN=Stranger"))
	stranger.SetSession(ssess.ID)
	if _, _, err := stranger.FileReadChunk(path, 0, 64); err == nil {
		t.Error("stranger fetched another owner's artifact via file.read")
	}
	if _, err := stranger.FetchFileHTTP(path, 0, io.Discard); err == nil || !strings.Contains(err.Error(), "403") {
		t.Errorf("stranger HTTP GET = %v, want 403", err)
	}

	// job.delete clears the record and the artifact tree.
	if ok, err := c.CallBool("job.delete", id); err != nil || !ok {
		t.Fatalf("job.delete = %v, %v", ok, err)
	}
	if _, err := c.CallStruct("job.status", id); err == nil {
		t.Error("record survived job.delete")
	}
	if _, _, err := c.FileReadChunk(path, 0, 64); err == nil {
		t.Error("artifact survived job.delete")
	}
}

// TestJobCollectsSandboxArtifacts: collect globs stage job-written
// sandbox files into the artifact tree.
func TestJobCollectsSandboxArtifacts(t *testing.T) {
	cfg := jobConfig(t, t.TempDir())
	srv, c := startJobServer(t, cfg)
	sess, _ := srv.NewSessionFor(userDN)
	c.SetSession(sess.ID)

	id, err := c.CallString("job.submit",
		"mkdir results && seq 50000 > results/hist.dat && echo summary-line > results/summary.txt",
		0, 0, []any{"results/*.dat", "results/*.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.JobWait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	out, err := c.JobOutput(id)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]JobArtifact{}
	for _, a := range out.Artifacts {
		byName[a.Name] = a
	}
	hist, ok := byName["hist.dat"]
	if !ok || hist.Size == 0 {
		t.Fatalf("artifacts = %+v, want collected hist.dat", out.Artifacts)
	}
	data, err := c.FileReadAll(hist.Path)
	if err != nil {
		t.Fatal(err)
	}
	sum := md5.Sum(data)
	if hex.EncodeToString(sum[:]) != hist.MD5 || int64(len(data)) != hist.Size {
		t.Error("collected artifact content does not match its reference")
	}
	if sm, ok := byName["summary.txt"]; !ok {
		t.Error("summary.txt not collected")
	} else if b, err := c.FileReadAll(sm.Path); err != nil || string(b) != "summary-line\n" {
		t.Errorf("summary = %q, %v", b, err)
	}
}
