// Package vo implements Clarens virtual-organization management
// (paper §2.1): a tree of groups rooted in a statically-configured admins
// group, where each group carries two lists of distinguished names —
// members and administrators. Group membership propagates *down* the tree
// ("group members of higher level groups are automatically members of
// lower level groups in the same branch"), DN entries are structural
// prefixes (so /O=doesciencegrid.org/OU=People admits everyone certified
// under that unit), and all state is cached in the database so it survives
// restarts.
//
// Group naming follows the paper's Figure 2: dotted paths such as "A",
// "A.1", "A.2" denote the hierarchy; the root group is "admins".
package vo

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"clarens/internal/db"
	"clarens/internal/pki"
)

// AdminsGroup is the root group, populated statically from the server
// configuration on each restart (paper §2.1).
const AdminsGroup = "admins"

const bucket = "vo"

// Group is one node of the VO tree.
type Group struct {
	Name    string   `json:"name"`    // dotted path, e.g. "cms.production"
	Members []string `json:"members"` // DN strings (may be prefixes)
	Admins  []string `json:"admins"`  // DN strings (may be prefixes)
}

// Manager maintains the VO tree in the database. It is safe for
// concurrent use.
//
// IsMember runs on the dispatch hot path for every group-based ACL, so
// its verdicts are memoized per (group, caller DN). The memo is keyed on
// the vo bucket's generation counter: any group mutation bumps the
// generation and the next query recomputes, so a vo.add_member is
// observable on the very next request.
type Manager struct {
	mu    sync.RWMutex
	store *db.Store

	memoMu  sync.RWMutex
	memoGen uint64
	members map[string]bool // group + "\x00" + dn -> verdict
}

// memberMemoCap bounds the memo; when exceeded the map is reset rather
// than evicted entry-by-entry (the ROADMAP's millions-of-users scale must
// not pin unbounded memory on a per-caller key space).
const memberMemoCap = 1 << 16

// NewManager loads/creates the VO state in store and statically populates
// the admins group from bootstrapAdmins, exactly as the paper describes:
// "this group, named admins, is populated statically from values provided
// in the server configuration file on each server restart".
func NewManager(store *db.Store, bootstrapAdmins []string) (*Manager, error) {
	m := &Manager{store: store}
	for _, dn := range bootstrapAdmins {
		if _, err := pki.ParseDN(dn); err != nil {
			return nil, fmt.Errorf("vo: bootstrap admin %q: %w", dn, err)
		}
	}
	root := &Group{Name: AdminsGroup, Members: append([]string(nil), bootstrapAdmins...), Admins: append([]string(nil), bootstrapAdmins...)}
	if err := store.PutJSON(bucket, AdminsGroup, root); err != nil {
		return nil, err
	}
	return m, nil
}

// validGroupName enforces dotted-path names with non-empty components.
func validGroupName(name string) error {
	if name == "" {
		return fmt.Errorf("vo: empty group name")
	}
	for _, part := range strings.Split(name, ".") {
		if part == "" {
			return fmt.Errorf("vo: group name %q has empty component", name)
		}
		for _, r := range part {
			if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' || r == '-') {
				return fmt.Errorf("vo: group name %q contains invalid character %q", name, r)
			}
		}
	}
	return nil
}

// get loads a group; nil if absent.
func (m *Manager) get(name string) (*Group, error) {
	var g Group
	found, err := m.store.GetJSON(bucket, name, &g)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return &g, nil
}

// Get returns a copy of the named group, or an error if it doesn't exist.
func (m *Manager) Get(name string) (*Group, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g, err := m.get(name)
	if err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("vo: group %q does not exist", name)
	}
	return g, nil
}

// Groups lists all group names, sorted.
func (m *Manager) Groups() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.store.Keys(bucket, "")
}

// ancestors returns the chain of ancestor group names of name, nearest
// first: "a.b.c" -> ["a.b", "a"].
func ancestors(name string) []string {
	var out []string
	for {
		i := strings.LastIndexByte(name, '.')
		if i < 0 {
			return out
		}
		name = name[:i]
		out = append(out, name)
	}
}

// dnInList reports whether dn matches any entry of list, where entries are
// structural DN prefixes.
func dnInList(dn pki.DN, list []string) bool {
	for _, entry := range list {
		p, err := pki.ParseDN(entry)
		if err != nil {
			continue // tolerate a corrupt entry rather than lock everyone out
		}
		if dn.HasPrefix(p) {
			return true
		}
	}
	return false
}

// IsMember reports whether dn is a member of the named group, either
// directly or by membership in any ancestor group (downward propagation,
// paper §2.1), or by being a server administrator. Verdicts are memoized
// until the next group mutation.
func (m *Manager) IsMember(group string, dn pki.DN) bool {
	if dn.IsZero() {
		return false
	}
	gen := m.store.Generation(bucket)
	key := group + "\x00" + dn.String()
	m.memoMu.RLock()
	if m.memoGen == gen && m.members != nil {
		if v, ok := m.members[key]; ok {
			m.memoMu.RUnlock()
			return v
		}
	}
	m.memoMu.RUnlock()

	m.mu.RLock()
	v := m.isMemberLocked(group, dn)
	m.mu.RUnlock()

	m.memoMu.Lock()
	if m.memoGen != gen || m.members == nil || len(m.members) >= memberMemoCap {
		m.memoGen = gen
		m.members = make(map[string]bool)
	}
	m.members[key] = v
	m.memoMu.Unlock()
	return v
}

func (m *Manager) isMemberLocked(group string, dn pki.DN) bool {
	names := append([]string{group}, ancestors(group)...)
	for _, name := range names {
		g, err := m.get(name)
		if err != nil || g == nil {
			continue
		}
		if dnInList(dn, g.Members) || dnInList(dn, g.Admins) {
			return true
		}
	}
	// Members of the root admins group belong to every group.
	if group != AdminsGroup {
		if g, err := m.get(AdminsGroup); err == nil && g != nil {
			return dnInList(dn, g.Members) || dnInList(dn, g.Admins)
		}
	}
	return false
}

// IsAdmin reports whether dn administers the named group: listed in the
// group's admin list, an admin of any ancestor group, or a member of the
// root admins group (who are "authorized to create and delete groups at
// all levels").
func (m *Manager) IsAdmin(group string, dn pki.DN) bool {
	if dn.IsZero() {
		return false
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.isAdminLocked(group, dn)
}

func (m *Manager) isAdminLocked(group string, dn pki.DN) bool {
	names := append([]string{group}, ancestors(group)...)
	for _, name := range names {
		g, err := m.get(name)
		if err != nil || g == nil {
			continue
		}
		if dnInList(dn, g.Admins) {
			return true
		}
	}
	if group != AdminsGroup {
		if g, err := m.get(AdminsGroup); err == nil && g != nil {
			return dnInList(dn, g.Members) || dnInList(dn, g.Admins)
		}
	}
	return false
}

// IsServerAdmin reports whether dn is in the root admins group.
func (m *Manager) IsServerAdmin(dn pki.DN) bool {
	return m.IsMember(AdminsGroup, dn)
}

// canManage reports whether actor may create/delete the named group:
// server admins anywhere; group admins "at lower levels" — i.e. an admin
// of any ancestor of the group.
func (m *Manager) canManage(group string, actor pki.DN) bool {
	if m.isAdminLocked(AdminsGroup, actor) {
		return true
	}
	for _, anc := range ancestors(group) {
		g, err := m.get(anc)
		if err != nil || g == nil {
			continue
		}
		if dnInList(actor, g.Admins) {
			return true
		}
	}
	return false
}

// ErrNotAuthorized marks authorization failures distinguishable from
// not-found and validation errors.
type ErrNotAuthorized struct {
	Op, Group string
	Actor     pki.DN
}

func (e *ErrNotAuthorized) Error() string {
	return fmt.Sprintf("vo: %s not authorized to %s group %q", e.Actor, e.Op, e.Group)
}

// CreateGroup creates a group. The actor must be a server admin or an
// admin of an ancestor group. The parent of a dotted group must exist.
func (m *Manager) CreateGroup(name string, actor pki.DN) error {
	if err := validGroupName(name); err != nil {
		return err
	}
	if name == AdminsGroup {
		return fmt.Errorf("vo: group %q is reserved", AdminsGroup)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.canManage(name, actor) {
		return &ErrNotAuthorized{Op: "create", Group: name, Actor: actor}
	}
	if g, err := m.get(name); err != nil {
		return err
	} else if g != nil {
		return fmt.Errorf("vo: group %q already exists", name)
	}
	if anc := ancestors(name); len(anc) > 0 {
		parent, err := m.get(anc[0])
		if err != nil {
			return err
		}
		if parent == nil {
			return fmt.Errorf("vo: parent group %q does not exist", anc[0])
		}
	}
	return m.store.PutJSON(bucket, name, &Group{Name: name})
}

// DeleteGroup removes a group and all its descendants.
func (m *Manager) DeleteGroup(name string, actor pki.DN) error {
	if name == AdminsGroup {
		return fmt.Errorf("vo: the admins group cannot be deleted")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.canManage(name, actor) {
		return &ErrNotAuthorized{Op: "delete", Group: name, Actor: actor}
	}
	g, err := m.get(name)
	if err != nil {
		return err
	}
	if g == nil {
		return fmt.Errorf("vo: group %q does not exist", name)
	}
	if err := m.store.Delete(bucket, name); err != nil {
		return err
	}
	for _, child := range m.store.Keys(bucket, name+".") {
		if err := m.store.Delete(bucket, child); err != nil {
			return err
		}
	}
	return nil
}

// mutateList edits one list of a group under authorization.
func (m *Manager) mutateList(group string, actor pki.DN, admins bool, add bool, dn string) error {
	if _, err := pki.ParseDN(dn); err != nil {
		return fmt.Errorf("vo: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, err := m.get(group)
	if err != nil {
		return err
	}
	if g == nil {
		return fmt.Errorf("vo: group %q does not exist", group)
	}
	// "Group administrators are authorized to add and delete group
	// members"; root admins may edit anything. Admin-list edits follow the
	// same rule.
	if !m.isAdminLocked(group, actor) {
		return &ErrNotAuthorized{Op: "modify", Group: group, Actor: actor}
	}
	list := &g.Members
	if admins {
		list = &g.Admins
	}
	idx := -1
	for i, e := range *list {
		if e == dn {
			idx = i
			break
		}
	}
	if add {
		if idx >= 0 {
			return nil // already present
		}
		*list = append(*list, dn)
		sort.Strings(*list)
	} else {
		if idx < 0 {
			return fmt.Errorf("vo: %q is not in the %s list of %q", dn, listName(admins), group)
		}
		*list = append((*list)[:idx], (*list)[idx+1:]...)
	}
	return m.store.PutJSON(bucket, group, g)
}

func listName(admins bool) string {
	if admins {
		return "admin"
	}
	return "member"
}

// AddMember adds a DN (or DN prefix) to the group's member list.
func (m *Manager) AddMember(group string, actor pki.DN, dn string) error {
	return m.mutateList(group, actor, false, true, dn)
}

// RemoveMember removes a DN from the group's member list.
func (m *Manager) RemoveMember(group string, actor pki.DN, dn string) error {
	return m.mutateList(group, actor, false, false, dn)
}

// AddAdmin adds a DN (or DN prefix) to the group's admin list.
func (m *Manager) AddAdmin(group string, actor pki.DN, dn string) error {
	return m.mutateList(group, actor, true, true, dn)
}

// RemoveAdmin removes a DN from the group's admin list.
func (m *Manager) RemoveAdmin(group string, actor pki.DN, dn string) error {
	return m.mutateList(group, actor, true, false, dn)
}

// MemberGroups returns every group dn belongs to (directly or inherited),
// sorted; useful for ACL evaluation and the portal UI.
func (m *Manager) MemberGroups(dn pki.DN) []string {
	var out []string
	for _, name := range m.Groups() {
		if m.IsMember(name, dn) {
			out = append(out, name)
		}
	}
	return out
}
