package vo

import (
	"fmt"
	"strings"
	"testing"

	"clarens/internal/db"
	"clarens/internal/pki"
)

var (
	rootAdmin = pki.MustParseDN("/O=caltech/OU=People/CN=Root Admin")
	alice     = pki.MustParseDN("/O=doesciencegrid.org/OU=People/CN=Alice")
	bob       = pki.MustParseDN("/O=doesciencegrid.org/OU=People/CN=Bob")
	carol     = pki.MustParseDN("/O=nust/OU=People/CN=Carol")
	stranger  = pki.MustParseDN("/O=elsewhere/CN=Stranger")
)

func newManager(t *testing.T) (*Manager, *db.Store) {
	t.Helper()
	store, err := db.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	m, err := NewManager(store, []string{rootAdmin.String()})
	if err != nil {
		t.Fatal(err)
	}
	return m, store
}

func TestBootstrapAdmins(t *testing.T) {
	m, _ := newManager(t)
	if !m.IsServerAdmin(rootAdmin) {
		t.Error("bootstrap admin must be a server admin")
	}
	if m.IsServerAdmin(alice) {
		t.Error("random user must not be a server admin")
	}
	if !m.IsMember(AdminsGroup, rootAdmin) {
		t.Error("bootstrap admin must be a member of admins")
	}
}

func TestBootstrapRepopulatedOnRestart(t *testing.T) {
	store, _ := db.Open("")
	defer store.Close()
	if _, err := NewManager(store, []string{rootAdmin.String()}); err != nil {
		t.Fatal(err)
	}
	// Simulate a server restart with a different configured admin list:
	// the paper says the admins group is populated statically from the
	// config on each restart, replacing what was cached.
	m2, err := NewManager(store, []string{alice.String()})
	if err != nil {
		t.Fatal(err)
	}
	if m2.IsServerAdmin(rootAdmin) {
		t.Error("old admin should be gone after restart with new config")
	}
	if !m2.IsServerAdmin(alice) {
		t.Error("new admin should be present")
	}
}

func TestBootstrapRejectsBadDN(t *testing.T) {
	store, _ := db.Open("")
	defer store.Close()
	if _, err := NewManager(store, []string{"not-a-dn"}); err == nil {
		t.Error("bad bootstrap DN must be rejected")
	}
}

func TestCreateGroupAuthorization(t *testing.T) {
	m, _ := newManager(t)
	if err := m.CreateGroup("cms", rootAdmin); err != nil {
		t.Fatalf("root admin create: %v", err)
	}
	err := m.CreateGroup("atlas", alice)
	if err == nil {
		t.Fatal("non-admin must not create top-level groups")
	}
	if _, ok := err.(*ErrNotAuthorized); !ok {
		t.Errorf("error type = %T", err)
	}
	// Make alice an admin of cms: she can then manage subgroups of cms...
	if err := m.AddAdmin("cms", rootAdmin, alice.String()); err != nil {
		t.Fatal(err)
	}
	if err := m.CreateGroup("cms.production", alice); err != nil {
		t.Errorf("group admin should create subgroups: %v", err)
	}
	// ...but still not other top-level groups.
	if err := m.CreateGroup("atlas", alice); err == nil {
		t.Error("cms admin must not create atlas")
	}
}

func TestCreateGroupValidation(t *testing.T) {
	m, _ := newManager(t)
	if err := m.CreateGroup("", rootAdmin); err == nil {
		t.Error("empty name must be rejected")
	}
	if err := m.CreateGroup("bad name", rootAdmin); err == nil {
		t.Error("space in name must be rejected")
	}
	if err := m.CreateGroup("a..b", rootAdmin); err == nil {
		t.Error("empty component must be rejected")
	}
	if err := m.CreateGroup(AdminsGroup, rootAdmin); err == nil {
		t.Error("admins is reserved")
	}
	if err := m.CreateGroup("orphan.child", rootAdmin); err == nil {
		t.Error("child of missing parent must be rejected")
	}
	m.CreateGroup("dup", rootAdmin)
	if err := m.CreateGroup("dup", rootAdmin); err == nil {
		t.Error("duplicate create must be rejected")
	}
}

func TestMembershipPropagatesDownward(t *testing.T) {
	m, _ := newManager(t)
	// Figure 2 of the paper: groups A with subgroups A.1, A.2, A.3.
	for _, g := range []string{"A", "A.1", "A.2", "A.3"} {
		if err := m.CreateGroup(g, rootAdmin); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddMember("A", rootAdmin, alice.String()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddMember("A.2", rootAdmin, bob.String()); err != nil {
		t.Fatal(err)
	}
	// "Group members of higher level groups are automatically members of
	// lower level groups in the same branch."
	if !m.IsMember("A.1", alice) || !m.IsMember("A.2", alice) || !m.IsMember("A.3", alice) {
		t.Error("member of A must be a member of all A.* subgroups")
	}
	if !m.IsMember("A", alice) {
		t.Error("direct membership")
	}
	// Membership must NOT propagate upward or across branches.
	if m.IsMember("A", bob) {
		t.Error("member of A.2 must not be a member of A")
	}
	if m.IsMember("A.1", bob) {
		t.Error("member of A.2 must not be a member of A.1")
	}
	if m.IsMember("A", stranger) {
		t.Error("stranger must not be a member")
	}
	if m.IsMember("A", nil) {
		t.Error("anonymous caller must never be a member")
	}
}

func TestDNPrefixMembership(t *testing.T) {
	m, _ := newManager(t)
	m.CreateGroup("dgrid", rootAdmin)
	// The paper's optimization: "to add all individuals to a particular
	// group, only /O=doesciencegrid.org/OU=People need be specified".
	if err := m.AddMember("dgrid", rootAdmin, "/O=doesciencegrid.org/OU=People"); err != nil {
		t.Fatal(err)
	}
	if !m.IsMember("dgrid", alice) || !m.IsMember("dgrid", bob) {
		t.Error("prefix entry must admit all individuals under the OU")
	}
	if m.IsMember("dgrid", carol) {
		t.Error("prefix must not admit other organizations")
	}
}

func TestServerAdminsAreMembersEverywhere(t *testing.T) {
	m, _ := newManager(t)
	m.CreateGroup("g", rootAdmin)
	if !m.IsMember("g", rootAdmin) {
		t.Error("server admins belong to every group")
	}
	if !m.IsAdmin("g", rootAdmin) {
		t.Error("server admins administer every group")
	}
}

func TestGroupAdminScope(t *testing.T) {
	m, _ := newManager(t)
	m.CreateGroup("cms", rootAdmin)
	m.CreateGroup("cms.hcal", rootAdmin)
	m.AddAdmin("cms", rootAdmin, alice.String())
	// "Group administrators are authorized to add and delete group
	// members, as well as groups at lower levels."
	if !m.IsAdmin("cms.hcal", alice) {
		t.Error("admin of cms must administer cms.hcal")
	}
	if err := m.AddMember("cms.hcal", alice, bob.String()); err != nil {
		t.Errorf("ancestor admin adds member to subgroup: %v", err)
	}
	if err := m.DeleteGroup("cms.hcal", alice); err != nil {
		t.Errorf("ancestor admin deletes subgroup: %v", err)
	}
	// An admin of a subgroup must not manage the parent.
	m.CreateGroup("cms.ecal", rootAdmin)
	m.AddAdmin("cms.ecal", rootAdmin, bob.String())
	if m.IsAdmin("cms", bob) {
		t.Error("subgroup admin must not administer the parent")
	}
	if err := m.AddMember("cms", bob, carol.String()); err == nil {
		t.Error("subgroup admin must not edit the parent's members")
	}
}

func TestMemberMutations(t *testing.T) {
	m, _ := newManager(t)
	m.CreateGroup("g", rootAdmin)
	if err := m.AddMember("g", rootAdmin, alice.String()); err != nil {
		t.Fatal(err)
	}
	// Idempotent add.
	if err := m.AddMember("g", rootAdmin, alice.String()); err != nil {
		t.Errorf("re-adding a member should be a no-op: %v", err)
	}
	g, err := m.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Members) != 1 {
		t.Errorf("members = %v", g.Members)
	}
	if err := m.RemoveMember("g", rootAdmin, alice.String()); err != nil {
		t.Fatal(err)
	}
	if m.IsMember("g", alice) {
		t.Error("removed member still present")
	}
	if err := m.RemoveMember("g", rootAdmin, alice.String()); err == nil {
		t.Error("removing a non-member must error")
	}
	if err := m.AddMember("g", rootAdmin, "bogus"); err == nil {
		t.Error("bad DN must be rejected")
	}
	if err := m.AddMember("missing", rootAdmin, alice.String()); err == nil {
		t.Error("missing group must be rejected")
	}
	if err := m.AddMember("g", stranger, alice.String()); err == nil {
		t.Error("stranger must not edit members")
	}
}

func TestAdminMutations(t *testing.T) {
	m, _ := newManager(t)
	m.CreateGroup("g", rootAdmin)
	if err := m.AddAdmin("g", rootAdmin, alice.String()); err != nil {
		t.Fatal(err)
	}
	if !m.IsAdmin("g", alice) {
		t.Error("added admin not recognized")
	}
	// Admins are implicitly members (both lists grant membership).
	if !m.IsMember("g", alice) {
		t.Error("group admin should count as member")
	}
	if err := m.RemoveAdmin("g", rootAdmin, alice.String()); err != nil {
		t.Fatal(err)
	}
	if m.IsAdmin("g", alice) {
		t.Error("removed admin still recognized")
	}
}

func TestDeleteGroupCascades(t *testing.T) {
	m, _ := newManager(t)
	for _, g := range []string{"x", "x.y", "x.y.z", "xx"} {
		if err := m.CreateGroup(g, rootAdmin); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DeleteGroup("x", rootAdmin); err != nil {
		t.Fatal(err)
	}
	groups := strings.Join(m.Groups(), ",")
	if strings.Contains(groups, "x.y") {
		t.Errorf("descendants not cascaded: %s", groups)
	}
	if !strings.Contains(groups, "xx") {
		t.Errorf("sibling with shared name prefix must survive: %s", groups)
	}
	if err := m.DeleteGroup("x", rootAdmin); err == nil {
		t.Error("deleting a missing group must error")
	}
	if err := m.DeleteGroup(AdminsGroup, rootAdmin); err == nil {
		t.Error("admins group must be undeletable")
	}
}

func TestVOSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(store, []string{rootAdmin.String()})
	if err != nil {
		t.Fatal(err)
	}
	m.CreateGroup("cms", rootAdmin)
	m.AddMember("cms", rootAdmin, alice.String())
	store.Close()

	store2, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2, err := NewManager(store2, []string{rootAdmin.String()})
	if err != nil {
		t.Fatal(err)
	}
	if !m2.IsMember("cms", alice) {
		t.Error("VO membership must survive a restart (paper §2.1: cached in a database)")
	}
}

func TestMemberGroups(t *testing.T) {
	m, _ := newManager(t)
	m.CreateGroup("a", rootAdmin)
	m.CreateGroup("a.b", rootAdmin)
	m.CreateGroup("c", rootAdmin)
	m.AddMember("a", rootAdmin, alice.String())
	got := m.MemberGroups(alice)
	want := "a,a.b"
	if strings.Join(got, ",") != want {
		t.Errorf("MemberGroups = %v, want %s", got, want)
	}
}

func TestGetMissingGroup(t *testing.T) {
	m, _ := newManager(t)
	if _, err := m.Get("nope"); err == nil {
		t.Error("Get of missing group must error")
	}
}

func TestManyGroupsScale(t *testing.T) {
	m, _ := newManager(t)
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("g%02d", i)
		if err := m.CreateGroup(name, rootAdmin); err != nil {
			t.Fatal(err)
		}
		if err := m.AddMember(name, rootAdmin, fmt.Sprintf("/O=org%02d/OU=People", i)); err != nil {
			t.Fatal(err)
		}
	}
	probe := pki.MustParseDN("/O=org25/OU=People/CN=User")
	if !m.IsMember("g25", probe) {
		t.Error("membership lookup across many groups failed")
	}
	if m.IsMember("g26", probe) {
		t.Error("false positive across groups")
	}
}
