package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var (
	errRetrySafe   = errors.New("safe")
	errRetryUnsafe = errors.New("unsafe")
	errFatal       = errors.New("fatal")
)

func classify(err error) Outcome {
	switch {
	case err == nil:
		return Success
	case errors.Is(err, errRetrySafe):
		return RetrySafe
	case errors.Is(err, errRetryUnsafe):
		return RetryUnsafe
	default:
		return Fatal
	}
}

func fastPolicy() Policy {
	p := Default(classify)
	p.BaseDelay = time.Millisecond
	p.MaxDelay = 4 * time.Millisecond
	return p
}

func TestPolicyRetriesSafeErrors(t *testing.T) {
	p := fastPolicy()
	calls := 0
	err := p.Do(context.Background(), false, func(context.Context) error {
		calls++
		if calls < 3 {
			return errRetrySafe
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on third attempt", err, calls)
	}
}

func TestPolicyIdempotencyGate(t *testing.T) {
	p := fastPolicy()
	calls := 0
	err := p.Do(context.Background(), false, func(context.Context) error {
		calls++
		return errRetryUnsafe
	})
	if !errors.Is(err, errRetryUnsafe) || calls != 1 {
		t.Fatalf("non-idempotent ambiguous failure retried: err=%v calls=%d", err, calls)
	}
	calls = 0
	err = p.Do(context.Background(), true, func(context.Context) error {
		calls++
		return errRetryUnsafe
	})
	if !errors.Is(err, errRetryUnsafe) || calls != p.MaxAttempts {
		t.Fatalf("idempotent ambiguous failure: err=%v calls=%d want %d", err, calls, p.MaxAttempts)
	}
}

func TestPolicyFatalStops(t *testing.T) {
	p := fastPolicy()
	calls := 0
	err := p.Do(context.Background(), true, func(context.Context) error {
		calls++
		return errFatal
	})
	if !errors.Is(err, errFatal) || calls != 1 {
		t.Fatalf("fatal error retried: err=%v calls=%d", err, calls)
	}
}

func TestPolicyRespectsContext(t *testing.T) {
	p := fastPolicy()
	p.BaseDelay, p.MaxDelay = time.Hour, time.Hour // backoff would stall forever
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, true, func(context.Context) error {
			calls++
			return errRetrySafe
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, errRetrySafe) {
			t.Fatalf("want last attempt error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Do did not honor context cancellation during backoff")
	}
	if calls != 1 {
		t.Fatalf("calls=%d want 1", calls)
	}
}

func TestPolicyBudgetExhaustion(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 10
	p.Budget = NewBudget(2, 0.1) // only two retry tokens
	calls := 0
	err := p.Do(context.Background(), true, func(context.Context) error {
		calls++
		return errRetrySafe
	})
	if err == nil || calls != 3 { // 1 initial + 2 budgeted retries
		t.Fatalf("budget not enforced: err=%v calls=%d", err, calls)
	}
}

func TestBackoffBoundsAndJitter(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5}
	for attempt, want := range []time.Duration{100, 200, 400, 800, 1000, 1000} {
		want *= time.Millisecond
		for i := 0; i < 50; i++ {
			d := p.Backoff(attempt)
			if d > want || d < want/2 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// No jitter: exact.
	p.Jitter = 0
	if d := p.Backoff(2); d != 400*time.Millisecond {
		t.Fatalf("unjittered backoff = %v, want 400ms", d)
	}
	// Jitter actually varies.
	p.Jitter = 0.5
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[p.Backoff(3)] = true
	}
	if len(seen) < 2 {
		t.Fatal("jittered backoff produced a constant")
	}
}

func TestPolicyAttemptTimeout(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 2
	p.AttemptTimeout = 5 * time.Millisecond
	calls := 0
	err := p.Do(context.Background(), true, func(ctx context.Context) error {
		calls++
		<-ctx.Done() // each attempt individually bounded
		return errRetryUnsafe
	})
	if !errors.Is(err, errRetryUnsafe) || calls != 2 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	now := time.Now()
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{ConsecFailures: 3, OpenFor: time.Second, Clock: clock})

	for i := 0; i < 3; i++ {
		done, err := b.Allow()
		if err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		done(false)
	}
	if st := b.State(); st != Open {
		t.Fatalf("state after consecutive failures = %v, want open", st)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}

	// Cooldown elapses: exactly one probe admitted.
	now = now.Add(2 * time.Second)
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("half-open breaker rejected probe: %v", err)
	}
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second concurrent probe admitted")
	}
	done(true)
	if st := b.State(); st != Closed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}

	// A failed probe re-opens.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	now = now.Add(2 * time.Second)
	done, err = b.Allow()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	done(false)
	if st := b.State(); st != Open {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	st := b.Stats()
	if st.Trips != 3 || st.Rejects == 0 {
		t.Fatalf("stats = %+v, want 3 trips and >0 rejects", st)
	}
}

func TestBreakerFailureRate(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 8, FailureRate: 0.5, ConsecFailures: 100})
	// Alternate success/failure: rate sits at 0.5 once the window fills.
	for i := 0; i < 7; i++ {
		b.Record(i%2 == 0)
	}
	if st := b.State(); st != Closed {
		t.Fatalf("tripped before MinSamples: %v", st)
	}
	b.Record(false)
	if st := b.State(); st != Open {
		t.Fatalf("state with 50%% failures over full window = %v, want open", st)
	}
}

func TestBreakerForceOpen(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	b.ForceOpen()
	if _, err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("forced-open breaker admitted a call")
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(BreakerConfig{ConsecFailures: 2, OpenFor: time.Hour})
	done, err := g.Allow("a")
	if err != nil {
		t.Fatal(err)
	}
	done(false)
	g.For("a").Record(false)
	if st := g.State("a"); st != Open {
		t.Fatalf("a = %v, want open", st)
	}
	if st := g.State("b"); st != Closed {
		t.Fatalf("unknown target = %v, want closed", st)
	}
	if n := g.OpenCount(); n != 1 {
		t.Fatalf("open count = %d, want 1", n)
	}
	if ts := g.Targets(); len(ts) != 1 || ts[0] != "a" {
		t.Fatalf("targets = %v", ts)
	}
	g.Forget("a")
	if st := g.State("a"); st != Closed {
		t.Fatal("forgotten target kept state")
	}
}
