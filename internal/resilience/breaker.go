package resilience

import (
	"sort"
	"sync"
	"time"
)

// State is a breaker's position in the closed → open → half-open
// cycle.
type State int

const (
	// Closed: traffic flows; failures are being counted.
	Closed State = iota
	// HalfOpen: the cooldown elapsed; a single probe is allowed
	// through to test recovery.
	HalfOpen
	// Open: the target is considered down; calls fail fast.
	Open
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker; zero fields take the documented
// defaults.
type BreakerConfig struct {
	// Window is the rolling sample window consulted for the failure
	// rate (default 32 outcomes).
	Window int
	// FailureRate in (0,1] trips the breaker once MinSamples outcomes
	// are in the window (default 0.5).
	FailureRate float64
	// MinSamples gates rate-tripping so two early failures don't open
	// a cold breaker (default 8).
	MinSamples int
	// ConsecFailures trips immediately after this many back-to-back
	// failures regardless of rate (default 3).
	ConsecFailures int
	// OpenFor is the cooldown before a probe is allowed (default 5s).
	OpenFor time.Duration

	// Clock stubs time for tests; nil uses time.Now.
	Clock func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.ConsecFailures <= 0 {
		c.ConsecFailures = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a per-target circuit breaker. Allow admits or rejects a
// call; the returned done func records the call's outcome and drives
// the state machine.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	window   []bool // ring of recent outcomes, true = failure
	widx     int
	wfull    bool
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight

	trips    uint64 // closed->open transitions
	rejects  uint64 // calls refused while open
	failures uint64
	total    uint64
}

// NewBreaker builds a breaker with the given config (zero value is
// fine).
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{cfg: c, window: make([]bool, c.Window)}
}

// Allow admits a call. On success it returns a done callback the
// caller MUST invoke exactly once with the call's outcome; while open
// it returns ErrOpen. After the cooldown a single probe call is let
// through (half-open); its outcome closes or re-opens the breaker.
func (b *Breaker) Allow() (done func(success bool), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor {
			b.rejects++
			return nil, ErrOpen
		}
		b.state = HalfOpen
		b.probing = false
		fallthrough
	case HalfOpen:
		if b.probing {
			b.rejects++
			return nil, ErrOpen
		}
		b.probing = true
		return b.probeDone, nil
	}
	return b.closedDone, nil
}

// Record is Allow for callers that already made the call: it feeds an
// outcome into the breaker without the admission check. Used when the
// admission decision happened elsewhere (e.g. a batch shared one
// admission) or when a logical failure (a refusal inside a successful
// transport exchange) should still count against the target.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.settleProbe(success)
		return
	}
	if b.state == Open {
		return
	}
	b.record(success)
}

func (b *Breaker) closedDone(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Closed {
		// The breaker tripped (or probed) while this call was in
		// flight; in half-open the outcome belongs to the probe path
		// only if this call *is* the probe, which uses probeDone.
		return
	}
	b.record(success)
}

func (b *Breaker) probeDone(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != HalfOpen {
		return
	}
	b.settleProbe(success)
}

// settleProbe resolves a half-open probe outcome. Caller holds mu.
func (b *Breaker) settleProbe(success bool) {
	b.probing = false
	b.total++
	if success {
		b.state = Closed
		b.resetWindow()
		return
	}
	b.failures++
	b.trip()
}

// record feeds one closed-state outcome. Caller holds mu.
func (b *Breaker) record(success bool) {
	b.total++
	fail := !success
	if fail {
		b.failures++
		b.consec++
	} else {
		b.consec = 0
	}
	b.window[b.widx] = fail
	if b.widx++; b.widx == len(b.window) {
		b.widx, b.wfull = 0, true
	}
	if b.consec >= b.cfg.ConsecFailures {
		b.trip()
		return
	}
	n := b.widx
	if b.wfull {
		n = len(b.window)
	}
	if n >= b.cfg.MinSamples {
		var fails int
		for i := 0; i < n; i++ {
			if b.window[i] {
				fails++
			}
		}
		if float64(fails)/float64(n) >= b.cfg.FailureRate {
			b.trip()
		}
	}
}

// trip opens the breaker. Caller holds mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.cfg.Clock()
	b.trips++
	b.consec = 0
	b.resetWindow()
}

func (b *Breaker) resetWindow() {
	for i := range b.window {
		b.window[i] = false
	}
	b.widx, b.wfull = 0, false
	b.consec = 0
}

// State reports the breaker's current position, resolving an elapsed
// cooldown to half-open so observers see "probe pending" rather than a
// stale open.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenFor {
		return HalfOpen
	}
	return b.state
}

// BreakerStats is a point-in-time counter snapshot.
type BreakerStats struct {
	State    string `json:"state"`
	Trips    uint64 `json:"trips"`
	Rejects  uint64 `json:"rejects"`
	Failures uint64 `json:"failures"`
	Total    uint64 `json:"total"`
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	st := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:    st.String(),
		Trips:    b.trips,
		Rejects:  b.rejects,
		Failures: b.failures,
		Total:    b.total,
	}
}

// ForceOpen trips the breaker immediately (operator action or an
// out-of-band death signal such as a failed delegation handshake).
func (b *Breaker) ForceOpen() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		b.trip()
	} else {
		b.openedAt = b.cfg.Clock()
	}
}

// Group is a lazily-populated set of breakers keyed by target (peer
// URL, host, …), all sharing one config.
type Group struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*Breaker
}

// NewGroup builds a breaker group.
func NewGroup(cfg BreakerConfig) *Group {
	return &Group{cfg: cfg, m: make(map[string]*Breaker)}
}

// For returns (creating on first use) the breaker for a target.
func (g *Group) For(target string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.m[target]
	if b == nil {
		b = NewBreaker(g.cfg)
		g.m[target] = b
	}
	return b
}

// Allow is shorthand for For(target).Allow().
func (g *Group) Allow(target string) (func(success bool), error) {
	return g.For(target).Allow()
}

// State reports a target's breaker state; an unknown target is Closed.
func (g *Group) State(target string) State {
	g.mu.Lock()
	b := g.m[target]
	g.mu.Unlock()
	if b == nil {
		return Closed
	}
	return b.State()
}

// Targets lists the known targets, sorted.
func (g *Group) Targets() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.m))
	for k := range g.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Forget drops a target's breaker (the peer left the federation).
func (g *Group) Forget(target string) {
	g.mu.Lock()
	delete(g.m, target)
	g.mu.Unlock()
}

// OpenCount reports how many breakers are currently open.
func (g *Group) OpenCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, b := range g.m {
		if b.State() == Open {
			n++
		}
	}
	return n
}

// Stats snapshots every breaker in the group.
func (g *Group) Stats() map[string]BreakerStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]BreakerStats, len(g.m))
	for k, b := range g.m {
		out[k] = b.Stats()
	}
	return out
}
