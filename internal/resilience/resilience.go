// Package resilience is the shared fault-tolerance layer: one retry
// Policy (attempt budget, exponential backoff with jitter, per-attempt
// timeout, idempotency gate) and one per-target circuit Breaker
// (closed/open/half-open with failure-rate tripping and probe
// recovery). The public Client, the Subscribe reconnect loop, and the
// meta-scheduler's peer interactions all route through this package so
// backoff behaviour is tuned in exactly one place.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Outcome classifies one attempt's error for the retry loop.
type Outcome int

const (
	// Success: the operation completed; stop.
	Success Outcome = iota
	// RetrySafe: the request provably never executed on the target
	// (dial failure, explicit overload rejection), so retrying is safe
	// regardless of idempotency.
	RetrySafe
	// RetryUnsafe: the request may have executed (connection dropped
	// mid-call, timeout); retry only if the caller declared the
	// operation idempotent.
	RetryUnsafe
	// Fatal: a definitive answer (application fault, bad request);
	// retrying cannot help.
	Fatal
)

// Policy is a retry policy. The zero value is usable and means "one
// attempt, no backoff"; Default returns the tuned client policy.
type Policy struct {
	// MaxAttempts bounds total tries (first call + retries). <=1 means
	// no retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry multiplies it by Multiplier up to MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of each delay randomized away (0..1).
	// 0.5 means the actual sleep is uniform in [d/2, d].
	Jitter float64
	// AttemptTimeout bounds each individual attempt; 0 leaves the
	// caller's context in charge.
	AttemptTimeout time.Duration
	// Classify maps an attempt error to an Outcome; nil panics —
	// callers own the error taxonomy (the rpc layer cannot be imported
	// from here without a cycle).
	Classify func(error) Outcome
	// Budget, when set, is consulted before every retry: a shared
	// token bucket that caps the cluster-wide retry amplification a
	// failing dependency can provoke.
	Budget *Budget

	// Retries counts retry attempts actually performed (telemetry;
	// optional).
	Retries *Counter
}

// Default returns the standard client-side policy: 3 attempts, 50ms
// base doubling to 2s, half jitter.
func Default(classify func(error) Outcome) Policy {
	return Policy{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Multiplier:  2,
		Jitter:      0.5,
		Classify:    classify,
	}
}

// Backoff returns the jittered delay before retry number attempt
// (attempt 0 = first retry). Exposed so loops that manage their own
// retries (the Subscribe reconnect pump) share the same curve.
func (p Policy) Backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	return jitter(time.Duration(d), p.Jitter)
}

// Backoff is the package-level jittered exponential backoff:
// base*2^attempt capped at max, with the given jitter fraction
// randomized away. Convenience for loops with no Policy at hand.
func Backoff(attempt int, base, max time.Duration, jitterFrac float64) time.Duration {
	return Policy{BaseDelay: base, MaxDelay: max, Multiplier: 2, Jitter: jitterFrac}.Backoff(attempt)
}

func jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	if frac > 1 {
		frac = 1
	}
	span := float64(d) * frac
	return time.Duration(float64(d) - span*rand.Float64())
}

// Do runs op under the policy. idempotent gates RetryUnsafe outcomes:
// a non-idempotent operation is never retried after an ambiguous
// failure. The last attempt's error is returned.
func (p Policy) Do(ctx context.Context, idempotent bool, op func(context.Context) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if p.Budget != nil && !p.Budget.Spend() {
				return err // budget exhausted: surface the prior failure
			}
			if p.Retries != nil {
				p.Retries.Inc()
			}
			select {
			case <-ctx.Done():
				return err
			case <-time.After(p.Backoff(i - 1)):
			}
		}
		actx := ctx
		var cancel context.CancelFunc
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err = op(actx)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			// nil is success no matter what Classify would say: guard
			// against classifiers that only map error shapes.
			if p.Budget != nil {
				p.Budget.Earn()
			}
			return nil
		}
		switch p.Classify(err) {
		case Success:
			if p.Budget != nil {
				p.Budget.Earn()
			}
			return err
		case Fatal:
			return err
		case RetryUnsafe:
			if !idempotent {
				return err
			}
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return err
}

// Budget is a token bucket shared across a client's calls that limits
// retry amplification: each retry spends a token, each success earns a
// fraction back. When drained, Do fails fast instead of retrying.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	earn   float64
}

// NewBudget returns a budget holding max tokens, refilled by earnRate
// (tokens per successful call, typically 0.1).
func NewBudget(max, earnRate float64) *Budget {
	if max <= 0 {
		max = 10
	}
	if earnRate <= 0 {
		earnRate = 0.1
	}
	return &Budget{tokens: max, max: max, earn: earnRate}
}

// Spend consumes one retry token; false means the budget is exhausted.
func (b *Budget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Earn credits a successful call back into the budget.
func (b *Budget) Earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.tokens += b.earn; b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Counter is a tiny dependency-free telemetry counter; the assembly
// layer bridges these into the real telemetry registry.
type Counter struct {
	mu sync.Mutex
	n  uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Value reads the count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// ErrOpen is returned by Breaker.Allow while the breaker is open and
// the cooldown has not elapsed: the caller should fail fast and shed
// load elsewhere.
var ErrOpen = errors.New("resilience: circuit open")
