package telemetry

import "math/rand/v2"

// TraceHeader is the HTTP header carrying a request's trace identifier.
// A server accepts a valid inbound value (so a caller — or a forwarding
// peer — can stitch its own ID through the system) and mints one
// otherwise; clients and federation connections propagate it on every
// outbound call, so a forwarded job logs the same trace ID on both
// peers.
const TraceHeader = "X-Clarens-Trace"

// maxTraceIDLen bounds accepted inbound trace IDs; anything longer is
// treated as absent rather than copied into every log line.
const maxTraceIDLen = 128

const hexDigits = "0123456789abcdef"

// randHex writes n random lower-case hex digits. math/rand/v2's global
// generator is lock-free per-P, keeping ID minting in the per-dispatch
// nanosecond budget; trace IDs are correlation handles, not secrets, so
// crypto/rand's syscall cost buys nothing here.
func randHex(n int) string {
	buf := make([]byte, n)
	for i := 0; i < n; {
		v := rand.Uint64()
		for j := 0; j < 16 && i < n; j++ {
			buf[i] = hexDigits[v&0xf]
			v >>= 4
			i++
		}
	}
	return string(buf)
}

// NewTraceID mints a 128-bit trace identifier (32 hex digits).
func NewTraceID() string { return randHex(32) }

// NewSpanID mints a 64-bit span identifier (16 hex digits).
func NewSpanID() string { return randHex(16) }

// ValidTraceID reports whether s is acceptable as an inbound trace ID:
// 1..128 characters drawn from letters, digits, '-', '_', and '.', which
// admits W3C-style hex IDs as well as UUIDs and human-chosen markers
// while keeping log lines shell- and injection-safe.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}
