package telemetry

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Prometheus/OpenMetrics text grammar, line by line: a metric line is a
// legal metric name, an optional {labelset}, a value — and, on histogram
// bucket lines, an optional OpenMetrics exemplar after a ' # '
// separator.
var (
	reHelp     = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	reType     = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary|histogram|untyped)$`)
	reMetric   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?[0-9.eE+-]+|NaN|[+-]Inf)$`)
	reExemplar = regexp.MustCompile(`^(?P<line>.+ [^ #]+) # \{trace_id="[^"\\]+"\} (?P<val>-?[0-9.eE+-]+)$`)
)

// TestPromExpositionGrammar renders a populated registry and validates
// every emitted line against the exposition grammar.
func TestPromExpositionGrammar(t *testing.T) {
	r := New()
	r.ObserveRPC("system.echo", false, 100*time.Microsecond)
	r.ObserveRPC("file.read", true, 30*time.Millisecond)
	r.RegisterGauge("clarens.runtime.goroutines", "Live goroutines.", func() float64 { return 12 })
	r.Counter("clarens.core.shed_total", "Shed RPCs.").Inc()
	r.Histogram("clarens.job.queue_wait_seconds", "Queue wait.").Observe(5 * time.Millisecond)
	r.AttachRPCExemplar(30*time.Millisecond, "deadbeef00112233")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	sawExemplar := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP"):
			if !reHelp.MatchString(line) {
				t.Errorf("bad HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE"):
			if !reType.MatchString(line) {
				t.Errorf("bad TYPE line: %q", line)
			}
		case strings.Contains(line, " # "):
			m := reExemplar.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("bad exemplar line: %q", line)
				continue
			}
			sawExemplar = true
			if !reMetric.MatchString(m[reExemplar.SubexpIndex("line")]) {
				t.Errorf("bad metric prefix on exemplar line: %q", line)
			}
			if !strings.Contains(line, "_bucket{") {
				t.Errorf("exemplar outside a bucket line: %q", line)
			}
		default:
			if !reMetric.MatchString(line) {
				t.Errorf("bad metric line: %q", line)
			}
		}
	}
	if !sawExemplar {
		t.Error("no exemplar line in output")
	}
}

// TestPromExemplarPlacement pins the OpenMetrics exemplar contract: the
// exemplar lands on the bucket covering its value, carries the trace ID,
// and its value respects the bucket's le bound.
func TestPromExemplarPlacement(t *testing.T) {
	r := New()
	r.ObserveRPC("system.echo", false, 30*time.Millisecond)
	r.AttachRPCExemplar(30*time.Millisecond, "abc123")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var exLine string
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "clarens_rpc_latency_all_seconds_bucket") && strings.Contains(line, "# {") {
			exLine = line
			break
		}
	}
	if exLine == "" {
		t.Fatalf("no exemplar bucket line:\n%s", sb.String())
	}
	if !strings.Contains(exLine, `# {trace_id="abc123"}`) {
		t.Errorf("exemplar labelset wrong: %q", exLine)
	}
	m := reExemplar.FindStringSubmatch(exLine)
	if m == nil {
		t.Fatalf("exemplar line fails grammar: %q", exLine)
	}
	exVal, err := strconv.ParseFloat(m[reExemplar.SubexpIndex("val")], 64)
	if err != nil {
		t.Fatalf("exemplar value: %v", err)
	}
	leStart := strings.Index(exLine, `le="`) + len(`le="`)
	leEnd := strings.Index(exLine[leStart:], `"`)
	le, err := strconv.ParseFloat(exLine[leStart:leStart+leEnd], 64)
	if err != nil {
		t.Fatalf("le bound: %v", err)
	}
	if exVal > le {
		t.Errorf("exemplar value %g exceeds its bucket bound %g", exVal, le)
	}
	if exVal != 0.03 {
		t.Errorf("exemplar value = %g, want 0.03", exVal)
	}
}

// TestPromHistogramBuckets pins cumulative bucket semantics: counts are
// non-decreasing and +Inf equals the total count.
func TestPromHistogramBuckets(t *testing.T) {
	r := New()
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, time.Millisecond, time.Second} {
		r.ObserveRPC("m", false, d)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	var infCount, count float64
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, "clarens_rpc_latency_all_seconds_bucket") {
			v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Errorf("bucket counts decreased at %q", line)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				infCount = v
			}
		}
		if strings.HasPrefix(line, "clarens_rpc_latency_all_seconds_count") {
			count, _ = strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		}
	}
	if infCount != 4 || count != 4 {
		t.Errorf("+Inf bucket %v / count %v, want 4/4", infCount, count)
	}
}

// TestPromNameSanitization is the name-sanitization table: dotted
// canonical names, hostile characters, leading digits.
func TestPromNameSanitization(t *testing.T) {
	tests := []struct{ in, want string }{
		{"clarens.rpc.requests", "clarens_rpc_requests"},
		{"clarens.runtime.gc_pause_seconds", "clarens_runtime_gc_pause_seconds"},
		{"has-dash.and.dot", "has_dash_and_dot"},
		{"9starts_with_digit", "_starts_with_digit"},
		{"mixedCASE_ok9", "mixedCASE_ok9"},
		{"space here", "space_here"},
		{"quote\"brace{", "quote_brace_"},
		{"", ""},
	}
	promNameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, tc := range tests {
		got := PromName(tc.in)
		if got != tc.want {
			t.Errorf("PromName(%q) = %q, want %q", tc.in, got, tc.want)
		}
		if got != "" && !promNameRe.MatchString(got) {
			t.Errorf("PromName(%q) = %q is not a legal metric name", tc.in, got)
		}
	}
}

// An exemplar whose trace is empty must never be emitted, and buckets
// without exemplars stay bare.
func TestPromExemplarAbsent(t *testing.T) {
	r := New()
	r.ObserveRPC("m", false, time.Millisecond)
	r.AttachRPCExemplar(time.Millisecond, "")
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "# {") {
		t.Error("exemplar emitted for empty trace ID")
	}
}
