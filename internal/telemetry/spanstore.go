package telemetry

import (
	"sync"
	"time"
)

// SampleHeader is the HTTP header that force-samples a request's trace:
// any non-empty value promotes the whole trace into the span store
// regardless of latency or outcome, so a client chasing one request can
// guarantee its flight record survives. The same bit rides multicall
// sub-calls as a "sample" entry field, so a federation forward keeps a
// force-sampled job sampled on the peer too.
const SampleHeader = "X-Clarens-Trace-Sample"

// Span is one completed dispatch (or synthetic unit of work, like a job
// execution) recorded in the span store.
type Span struct {
	Trace  string `json:"trace"`
	Span   string `json:"span"`
	Parent string `json:"parent,omitempty"`
	// Method is the dispatched method name, or a synthetic label such as
	// "job.exec" for non-RPC work linked into the trace.
	Method string `json:"method"`
	DN     string `json:"dn,omitempty"`
	// Peer is the remote party involved: the caller's address for inbound
	// dispatches, or the peer URL for work forwarded elsewhere.
	Peer string `json:"peer,omitempty"`
	// Server is the recording server's discovery name, so merged
	// cross-server trees attribute each span to its host.
	Server   string        `json:"server,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Fault is the RPC fault code, 0 for success.
	Fault int `json:"fault,omitempty"`
	Depth int `json:"depth,omitempty"`
}

// SpanStoreOptions configures a SpanStore.
type SpanStoreOptions struct {
	// Capacity bounds the durable ring of sampled spans (default 4096).
	Capacity int
	// Slow is the tail-sampling latency threshold: a trace whose root (or
	// any recorded span) meets it is promoted (default 500ms).
	Slow time.Duration
	// Server stamps every recorded span with the server's name.
	Server string
	// MaxSpansPerTrace caps ring spans per trace so one chatty trace
	// cannot monopolize the ring (default 64).
	MaxSpansPerTrace int
	// MaxPending bounds the short-lived buffer of undecided traces
	// (default Capacity).
	MaxPending int
}

// SpanStoreStats is a point-in-time view of the store's pressure.
type SpanStoreStats struct {
	Capacity int
	// Live is the number of spans currently resident in the ring.
	Live int
	// Traces is the number of distinct sampled traces in the ring.
	Traces int
	// Pending is the number of traces buffered awaiting a decision.
	Pending uint64
	// SampledTraces counts traces ever promoted to the ring.
	SampledTraces uint64
	// DroppedTraces counts traces that completed unremarkably and were
	// discarded by tail sampling.
	DroppedTraces uint64
	// Forced / Slow / Faulted break down promotions by reason (a trace
	// may count under several).
	Forced  uint64
	Slow    uint64
	Faulted uint64
	// SpansDropped counts spans discarded because their trace was already
	// at MaxSpansPerTrace.
	SpansDropped uint64
	// PendingEvicted counts undecided traces evicted because the pending
	// buffer was full — store pressure worth alerting on.
	PendingEvicted uint64
}

// pendingTrace buffers one undecided trace between its first span and
// its local root's completion.
type pendingTrace struct {
	spans  []Span
	forced bool
	fault  bool
	slow   bool
}

// SpanStore is the flight recorder: a bounded ring of completed spans
// keyed by trace ID with tail-based retention. Every span is buffered
// briefly; when a trace's local root completes, the trace is promoted to
// the durable ring only if it was slow, faulted, or force-sampled —
// otherwise the buffer is discarded. The store also records forward
// edges (which peers a trace was sent to) so a merged cross-server tree
// can be assembled later.
//
// All methods are safe for concurrent use. The hot path (Record of an
// unremarkable single-span trace) is one mutex acquisition, two map
// misses, and a counter — no allocation.
type SpanStore struct {
	slow    time.Duration
	server  string
	perTr   int
	maxPend int

	// OnSample, when set, is invoked (outside the store lock) for every
	// span that enters the durable ring — the exemplar hook that links
	// histogram buckets to sampled traces. Set before the store is
	// shared; not synchronized afterwards.
	OnSample func(method string, d time.Duration, trace string)

	mu   sync.Mutex
	ring []ringSlot
	seq  uint64 // next slot sequence; slot = seq % len(ring)

	index   map[string][]uint64 // trace -> live ring seqs
	sampled map[string]struct{} // traces promoted to the ring
	links   map[string][]string // trace -> peer RPC URLs forwarded to

	pending      map[string]*pendingTrace
	pendingOrder []string // insertion order, for eviction

	stats struct {
		sampledTraces  uint64
		droppedTraces  uint64
		forced         uint64
		slow           uint64
		faulted        uint64
		spansDropped   uint64
		pendingEvicted uint64
	}
}

type ringSlot struct {
	seq  uint64
	used bool
	span Span
}

// NewSpanStore creates a span store.
func NewSpanStore(opts SpanStoreOptions) *SpanStore {
	if opts.Capacity <= 0 {
		opts.Capacity = 4096
	}
	if opts.Slow <= 0 {
		opts.Slow = 500 * time.Millisecond
	}
	if opts.MaxSpansPerTrace <= 0 {
		opts.MaxSpansPerTrace = 64
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = opts.Capacity
	}
	return &SpanStore{
		slow:    opts.Slow,
		server:  opts.Server,
		perTr:   opts.MaxSpansPerTrace,
		maxPend: opts.MaxPending,
		ring:    make([]ringSlot, opts.Capacity),
		index:   make(map[string][]uint64),
		sampled: make(map[string]struct{}),
		links:   make(map[string][]string),
		pending: make(map[string]*pendingTrace),
	}
}

// Slow returns the tail-sampling latency threshold.
func (st *SpanStore) Slow() time.Duration { return st.slow }

// Server returns the configured server name stamp.
func (st *SpanStore) Server() string { return st.server }

// Record stores one completed span. localRoot marks the span that
// decides its trace's fate on this server: a top-level dispatch, or a
// multicall sub-call carrying a foreign trace (a forwarded job riding a
// peer's batch). force promotes the trace unconditionally (sample
// header, per-method flag, or an upstream force-sampled hop).
func (st *SpanStore) Record(sp Span, localRoot, force bool) {
	if sp.Trace == "" {
		return
	}
	if sp.Server == "" {
		sp.Server = st.server
	}
	var promoted []Span
	st.mu.Lock()
	if _, ok := st.sampled[sp.Trace]; ok {
		if st.appendLocked(sp) {
			promoted = append(promoted, sp)
		}
		st.mu.Unlock()
		st.notify(promoted)
		return
	}
	p := st.pending[sp.Trace]
	if p == nil {
		interesting := force || sp.Fault != 0 || sp.Duration >= st.slow
		if localRoot {
			// Single-span trace decided inline: the common production
			// case pays no buffering at all.
			if interesting {
				promoted = st.promoteLocked(sp.Trace, []Span{sp}, force, sp.Fault != 0, sp.Duration >= st.slow)
			} else {
				st.stats.droppedTraces++
			}
			st.mu.Unlock()
			st.notify(promoted)
			return
		}
		p = &pendingTrace{}
		st.pending[sp.Trace] = p
		st.pendingOrder = append(st.pendingOrder, sp.Trace)
		st.evictPendingLocked()
	}
	if len(p.spans) < st.perTr {
		p.spans = append(p.spans, sp)
	} else {
		st.stats.spansDropped++
	}
	p.forced = p.forced || force
	p.fault = p.fault || sp.Fault != 0
	p.slow = p.slow || sp.Duration >= st.slow
	if localRoot {
		delete(st.pending, sp.Trace)
		if p.forced || p.fault || p.slow {
			promoted = st.promoteLocked(sp.Trace, p.spans, p.forced, p.fault, p.slow)
		} else {
			st.stats.droppedTraces++
		}
	}
	st.mu.Unlock()
	st.notify(promoted)
}

// notify runs the OnSample hook outside the lock.
func (st *SpanStore) notify(spans []Span) {
	if st.OnSample == nil {
		return
	}
	for _, sp := range spans {
		st.OnSample(sp.Method, sp.Duration, sp.Trace)
	}
}

// promoteLocked marks a trace sampled and moves its spans into the ring.
func (st *SpanStore) promoteLocked(trace string, spans []Span, forced, fault, slow bool) []Span {
	st.sampled[trace] = struct{}{}
	st.stats.sampledTraces++
	if forced {
		st.stats.forced++
	}
	if fault {
		st.stats.faulted++
	}
	if slow {
		st.stats.slow++
	}
	kept := spans[:0]
	for _, sp := range spans {
		if st.appendLocked(sp) {
			kept = append(kept, sp)
		}
	}
	return kept
}

// appendLocked writes one span into the ring, evicting the slot's
// previous occupant from the index (and the sampled set when it was the
// trace's last span). Reports whether the span was kept.
func (st *SpanStore) appendLocked(sp Span) bool {
	if uint64(len(st.index[sp.Trace])) >= uint64(st.perTr) {
		st.stats.spansDropped++
		return false
	}
	slot := &st.ring[st.seq%uint64(len(st.ring))]
	if slot.used {
		st.dropFromIndexLocked(slot.span.Trace, slot.seq)
	}
	slot.seq = st.seq
	slot.used = true
	slot.span = sp
	st.index[sp.Trace] = append(st.index[sp.Trace], st.seq)
	st.seq++
	return true
}

// dropFromIndexLocked removes one evicted seq from a trace's index
// entry; when the trace's last span leaves the ring, its sampled mark
// and forward links go too, so the maps stay bounded by ring capacity.
func (st *SpanStore) dropFromIndexLocked(trace string, seq uint64) {
	seqs := st.index[trace]
	for i, s := range seqs {
		if s == seq {
			seqs = append(seqs[:i], seqs[i+1:]...)
			break
		}
	}
	if len(seqs) == 0 {
		delete(st.index, trace)
		delete(st.sampled, trace)
		delete(st.links, trace)
	} else {
		st.index[trace] = seqs
	}
}

// evictPendingLocked bounds the undecided-trace buffer: when full, the
// oldest pending trace is discarded (counted, so the pressure is
// observable via Stats and the health check).
func (st *SpanStore) evictPendingLocked() {
	for len(st.pending) > st.maxPend && len(st.pendingOrder) > 0 {
		victim := st.pendingOrder[0]
		st.pendingOrder = st.pendingOrder[1:]
		if _, ok := st.pending[victim]; ok {
			delete(st.pending, victim)
			st.stats.pendingEvicted++
		}
	}
	// Compact the order list of already-decided traces occasionally so it
	// cannot grow unbounded ahead of the map.
	if len(st.pendingOrder) > 2*st.maxPend {
		live := st.pendingOrder[:0]
		for _, tr := range st.pendingOrder {
			if _, ok := st.pending[tr]; ok {
				live = append(live, tr)
			}
		}
		st.pendingOrder = live
	}
}

// ForceSample marks a trace as sampled ahead of any span, so everything
// recorded for it afterwards goes straight to the ring.
func (st *SpanStore) ForceSample(trace string) {
	if trace == "" {
		return
	}
	var promoted []Span
	st.mu.Lock()
	if _, ok := st.sampled[trace]; !ok {
		p := st.pending[trace]
		var spans []Span
		if p != nil {
			spans = p.spans
			delete(st.pending, trace)
		}
		promoted = st.promoteLocked(trace, spans, true, false, false)
	}
	st.mu.Unlock()
	st.notify(promoted)
}

// Sampled reports whether a trace has been promoted to the ring — the
// bit a forwarding peer propagates so the receiving server samples the
// same trace.
func (st *SpanStore) Sampled(trace string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	_, ok := st.sampled[trace]
	return ok
}

// Link records a forward edge: the trace was sent to the peer at the
// given RPC URL, so trace assembly knows where to fan out. Edges for
// never-sampled traces are capped at ring capacity.
func (st *SpanStore) Link(trace, peerURL string) {
	if trace == "" || peerURL == "" {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	existing := st.links[trace]
	for _, u := range existing {
		if u == peerURL {
			return
		}
	}
	if existing == nil && len(st.links) >= len(st.ring) {
		// Bound the map: drop one arbitrary unsampled trace's links.
		for tr := range st.links {
			if _, ok := st.sampled[tr]; !ok {
				delete(st.links, tr)
				break
			}
		}
	}
	st.links[trace] = append(existing, peerURL)
}

// Links returns the peer RPC URLs a trace was forwarded to.
func (st *SpanStore) Links(trace string) []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]string(nil), st.links[trace]...)
}

// Trace returns the stored spans of one trace (undecided pending spans
// included, so a live slow request is already visible), ordered by
// start time.
func (st *SpanStore) Trace(trace string) []Span {
	st.mu.Lock()
	var out []Span
	for _, seq := range st.index[trace] {
		slot := &st.ring[seq%uint64(len(st.ring))]
		if slot.used && slot.seq == seq {
			out = append(out, slot.span)
		}
	}
	if p := st.pending[trace]; p != nil {
		out = append(out, p.spans...)
	}
	st.mu.Unlock()
	sortSpans(out)
	return out
}

// TraceSummary describes one sampled trace for trace.search.
type TraceSummary struct {
	Trace      string
	RootMethod string
	Start      time.Time
	Duration   time.Duration
	Spans      int
	Fault      int
	Servers    []string
}

// Summaries returns one summary per sampled trace in the ring, newest
// first.
func (st *SpanStore) Summaries() []TraceSummary {
	st.mu.Lock()
	out := make([]TraceSummary, 0, len(st.index))
	for trace, seqs := range st.index {
		var sum TraceSummary
		sum.Trace = trace
		var end time.Time
		seen := map[string]bool{}
		for _, seq := range seqs {
			slot := &st.ring[seq%uint64(len(st.ring))]
			if !slot.used || slot.seq != seq {
				continue
			}
			sp := slot.span
			if sum.Spans == 0 || sp.Start.Before(sum.Start) {
				sum.Start = sp.Start
				sum.RootMethod = sp.Method
			}
			if e := sp.Start.Add(sp.Duration); e.After(end) {
				end = e
			}
			if sp.Fault != 0 {
				sum.Fault = sp.Fault
			}
			if sp.Server != "" && !seen[sp.Server] {
				seen[sp.Server] = true
				sum.Servers = append(sum.Servers, sp.Server)
			}
			sum.Spans++
		}
		if sum.Spans == 0 {
			continue
		}
		sum.Duration = end.Sub(sum.Start)
		out = append(out, sum)
	}
	st.mu.Unlock()
	// Newest first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start.After(out[j-1].Start); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Stats returns the store's pressure counters.
func (st *SpanStore) Stats() SpanStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	live := 0
	for i := range st.ring {
		if st.ring[i].used {
			live++
		}
	}
	return SpanStoreStats{
		Capacity:       len(st.ring),
		Live:           live,
		Traces:         len(st.index),
		Pending:        uint64(len(st.pending)),
		SampledTraces:  st.stats.sampledTraces,
		DroppedTraces:  st.stats.droppedTraces,
		Forced:         st.stats.forced,
		Slow:           st.stats.slow,
		Faulted:        st.stats.faulted,
		SpansDropped:   st.stats.spansDropped,
		PendingEvicted: st.stats.pendingEvicted,
	}
}

// PendingSaturated reports whether the undecided-trace buffer has hit
// its bound and begun evicting — the health-check signal.
func (st *SpanStore) PendingSaturated() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.pending) >= st.maxPend
}

// sortSpans orders spans by start time (insertion sort; trace span
// counts are bounded by MaxSpansPerTrace).
func sortSpans(spans []Span) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spans[j].Start.Before(spans[j-1].Start); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}
