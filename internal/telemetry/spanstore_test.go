package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func span(trace, id string, d time.Duration, fault int) Span {
	return Span{
		Trace:    trace,
		Span:     id,
		Method:   "system.echo",
		Start:    time.Unix(1700000000, 0),
		Duration: d,
		Fault:    fault,
	}
}

func TestTailSamplingDecisions(t *testing.T) {
	tests := []struct {
		name   string
		span   Span
		force  bool
		sample bool
	}{
		{"fast clean dropped", span("t1", "a", time.Millisecond, 0), false, false},
		{"slow promoted", span("t2", "b", time.Second, 0), false, true},
		{"faulted promoted", span("t3", "c", time.Millisecond, -32500), false, true},
		{"forced promoted", span("t4", "d", time.Millisecond, 0), true, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			st := NewSpanStore(SpanStoreOptions{Slow: 500 * time.Millisecond})
			st.Record(tc.span, true, tc.force)
			if got := st.Sampled(tc.span.Trace); got != tc.sample {
				t.Fatalf("Sampled = %v, want %v", got, tc.sample)
			}
			if got := len(st.Trace(tc.span.Trace)); (got > 0) != tc.sample {
				t.Fatalf("stored %d spans, want sampled=%v", got, tc.sample)
			}
			s := st.Stats()
			if tc.sample && s.SampledTraces != 1 {
				t.Errorf("SampledTraces = %d, want 1", s.SampledTraces)
			}
			if !tc.sample && s.DroppedTraces != 1 {
				t.Errorf("DroppedTraces = %d, want 1", s.DroppedTraces)
			}
			if s.Pending != 0 {
				t.Errorf("Pending = %d after local root, want 0", s.Pending)
			}
		})
	}
}

// A multi-span trace buffers until its local root completes; the root's
// decision covers every buffered span.
func TestTailSamplingPendingPromotion(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{Slow: 100 * time.Millisecond})

	// Sub-spans first (depth > 0), root last — the dispatch order.
	st.Record(span("tr", "child1", time.Millisecond, 0), false, false)
	st.Record(span("tr", "child2", time.Millisecond, 0), false, false)
	if st.Sampled("tr") {
		t.Fatal("trace sampled before its local root completed")
	}
	if st.Stats().Pending != 1 {
		t.Fatalf("Pending = %d, want 1", st.Stats().Pending)
	}
	st.Record(span("tr", "root", 200*time.Millisecond, 0), true, false)
	if !st.Sampled("tr") {
		t.Fatal("slow root did not promote the trace")
	}
	if got := len(st.Trace("tr")); got != 3 {
		t.Fatalf("stored %d spans, want 3", got)
	}

	// Same shape with an unremarkable root: everything discarded.
	st.Record(span("tr2", "child", time.Millisecond, 0), false, false)
	st.Record(span("tr2", "root", time.Millisecond, 0), true, false)
	if st.Sampled("tr2") || len(st.Trace("tr2")) != 0 {
		t.Fatal("unremarkable trace survived tail sampling")
	}
	if p := st.Stats().Pending; p != 0 {
		t.Fatalf("Pending = %d after decisions, want 0", p)
	}
}

// A sub-span's fault promotes the trace even when the root succeeds —
// tail sampling looks at the whole buffered trace.
func TestTailSamplingSubSpanFault(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{Slow: time.Hour})
	st.Record(span("tr", "child", time.Millisecond, -32500), false, false)
	st.Record(span("tr", "root", time.Millisecond, 0), true, false)
	if !st.Sampled("tr") {
		t.Fatal("faulted sub-span did not promote the trace")
	}
	if st.Stats().Faulted != 1 {
		t.Errorf("Faulted = %d, want 1", st.Stats().Faulted)
	}
}

func TestForceSampleAheadOfSpans(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{})
	st.ForceSample("tr")
	if !st.Sampled("tr") {
		t.Fatal("ForceSample did not mark the trace")
	}
	// Later spans go straight to the ring regardless of their own merits.
	st.Record(span("tr", "a", time.Microsecond, 0), false, false)
	if got := len(st.Trace("tr")); got != 1 {
		t.Fatalf("stored %d spans, want 1", got)
	}
}

// Ring eviction must scrub the evicted trace's index, sampled mark, and
// forward links once its last span leaves.
func TestRingEvictionCleansIndex(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{Capacity: 4})
	st.Record(span("old", "o1", time.Second, 0), true, false)
	st.Link("old", "http://peer-1/rpc")
	for i := 0; i < 4; i++ {
		tr := fmt.Sprintf("new%d", i)
		st.Record(span(tr, "n", time.Second, 0), true, false)
	}
	if st.Sampled("old") {
		t.Error("evicted trace still marked sampled")
	}
	if len(st.Trace("old")) != 0 {
		t.Error("evicted trace still indexed")
	}
	if len(st.Links("old")) != 0 {
		t.Error("evicted trace kept forward links")
	}
	s := st.Stats()
	if s.Live != 4 || s.Traces != 4 {
		t.Errorf("Live/Traces = %d/%d, want 4/4", s.Live, s.Traces)
	}
}

func TestMaxSpansPerTrace(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{MaxSpansPerTrace: 3})
	st.ForceSample("tr")
	for i := 0; i < 5; i++ {
		st.Record(span("tr", fmt.Sprintf("s%d", i), time.Millisecond, 0), false, false)
	}
	if got := len(st.Trace("tr")); got != 3 {
		t.Fatalf("stored %d spans, want 3 (capped)", got)
	}
	if st.Stats().SpansDropped != 2 {
		t.Errorf("SpansDropped = %d, want 2", st.Stats().SpansDropped)
	}
}

func TestLinksDedup(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{})
	st.Link("tr", "http://a/rpc")
	st.Link("tr", "http://b/rpc")
	st.Link("tr", "http://a/rpc")
	if got := st.Links("tr"); len(got) != 2 {
		t.Fatalf("Links = %v, want 2 distinct peers", got)
	}
	st.Link("", "http://a/rpc")
	st.Link("tr2", "")
	if len(st.Links("")) != 0 || len(st.Links("tr2")) != 0 {
		t.Error("empty trace or peer recorded a link")
	}
}

func TestPendingEviction(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{MaxPending: 2})
	for i := 0; i < 4; i++ {
		st.Record(span(fmt.Sprintf("t%d", i), "s", time.Millisecond, 0), false, false)
	}
	s := st.Stats()
	if s.Pending > 2 {
		t.Errorf("Pending = %d, want <= 2", s.Pending)
	}
	if s.PendingEvicted == 0 {
		t.Error("PendingEvicted = 0, want > 0")
	}
	if !st.PendingSaturated() {
		t.Error("PendingSaturated = false at the bound")
	}
}

func TestSummariesNewestFirst(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{})
	base := time.Unix(1700000000, 0)
	for i := 0; i < 3; i++ {
		sp := Span{
			Trace: fmt.Sprintf("t%d", i), Span: "root", Method: fmt.Sprintf("m%d", i),
			Start: base.Add(time.Duration(i) * time.Minute), Duration: time.Second,
			Server: "srv",
		}
		st.Record(sp, true, true)
	}
	sums := st.Summaries()
	if len(sums) != 3 {
		t.Fatalf("Summaries len = %d, want 3", len(sums))
	}
	for i := 1; i < len(sums); i++ {
		if sums[i].Start.After(sums[i-1].Start) {
			t.Fatalf("summaries not newest-first: %v", sums)
		}
	}
	if sums[0].RootMethod != "m2" || sums[0].Servers[0] != "srv" {
		t.Errorf("newest summary = %+v", sums[0])
	}
}

func TestOnSampleHook(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{})
	var mu sync.Mutex
	var got []string
	st.OnSample = func(method string, d time.Duration, trace string) {
		mu.Lock()
		got = append(got, trace)
		mu.Unlock()
	}
	st.Record(span("keep", "a", time.Second, 0), true, false)
	st.Record(span("drop", "b", time.Microsecond, 0), true, false)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "keep" {
		t.Fatalf("OnSample saw %v, want [keep]", got)
	}
}

func TestSpanStoreServerStamp(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{Server: "tier2"})
	st.Record(span("tr", "a", time.Second, 0), true, false)
	if sp := st.Trace("tr")[0]; sp.Server != "tier2" {
		t.Fatalf("Server = %q, want tier2", sp.Server)
	}
}

func TestSpanStoreConcurrent(t *testing.T) {
	st := NewSpanStore(SpanStoreOptions{Capacity: 64, Slow: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := fmt.Sprintf("g%d-%d", g, i%10)
				st.Record(span(tr, fmt.Sprintf("s%d", i), time.Duration(i)*time.Microsecond, 0), i%3 == 0, i%7 == 0)
				st.Link(tr, "http://peer/rpc")
				if i%20 == 0 {
					st.Trace(tr)
					st.Summaries()
					st.Stats()
				}
			}
		}()
	}
	wg.Wait()
}
