package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RuntimeSampler periodically snapshots Go runtime health — goroutine
// count, heap and GC statistics, and individual GC pause durations —
// into registry gauges and a pause histogram. Sampling runs on its own
// interval goroutine so runtime.ReadMemStats (a stop-the-world-ish
// call) never rides a request's hot path; gauge reads on scrape are
// plain atomic loads of the latest sample.
//
// Registered under dotted clarens.runtime.* names, the values reach
// /metrics and the MonALISA republication loop for free.
type RuntimeSampler struct {
	goroutines  atomic.Int64
	heapAlloc   atomic.Uint64
	heapSys     atomic.Uint64
	heapObjects atomic.Uint64
	gcRuns      atomic.Uint64
	nextGC      atomic.Uint64
	lastPause   atomic.Int64 // ns

	pauses *Histogram

	lastNumGC uint32

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartRuntimeSampler registers the clarens.runtime.* gauges plus the
// GC pause histogram on r and starts sampling every interval (default
// 10s). Call Stop to halt the goroutine.
func StartRuntimeSampler(r *Registry, interval time.Duration) *RuntimeSampler {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	s := &RuntimeSampler{
		pauses: r.Histogram("clarens.runtime.gc_pause_seconds", "Individual GC stop-the-world pause durations."),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.RegisterGauge("clarens.runtime.goroutines", "Live goroutines.",
		func() float64 { return float64(s.goroutines.Load()) })
	r.RegisterGauge("clarens.runtime.heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(s.heapAlloc.Load()) })
	r.RegisterGauge("clarens.runtime.heap_sys_bytes", "Bytes of heap obtained from the OS.",
		func() float64 { return float64(s.heapSys.Load()) })
	r.RegisterGauge("clarens.runtime.heap_objects", "Live heap objects.",
		func() float64 { return float64(s.heapObjects.Load()) })
	r.RegisterGauge("clarens.runtime.gc_runs", "Completed GC cycles.",
		func() float64 { return float64(s.gcRuns.Load()) })
	r.RegisterGauge("clarens.runtime.next_gc_bytes", "Heap size target of the next GC cycle.",
		func() float64 { return float64(s.nextGC.Load()) })
	r.RegisterGauge("clarens.runtime.last_gc_pause_seconds", "Duration of the most recent GC pause.",
		func() float64 { return time.Duration(s.lastPause.Load()).Seconds() })
	s.sample() // populate before the first tick so scrapes never see zeros
	go s.loop(interval)
	return s
}

func (s *RuntimeSampler) loop(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sample()
		case <-s.stop:
			return
		}
	}
}

// sample reads the runtime stats once and folds new GC pauses into the
// histogram via the PauseNs circular buffer delta since the last read.
func (s *RuntimeSampler) sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.goroutines.Store(int64(runtime.NumGoroutine()))
	s.heapAlloc.Store(m.HeapAlloc)
	s.heapSys.Store(m.HeapSys)
	s.heapObjects.Store(m.HeapObjects)
	s.gcRuns.Store(uint64(m.NumGC))
	s.nextGC.Store(m.NextGC)

	// PauseNs is a circular buffer of the last 256 pauses, indexed by
	// (NumGC+255)%256. Replay only the cycles completed since the last
	// sample; if more than 256 elapsed, the oldest are gone — record the
	// retained window.
	newGC := m.NumGC
	missed := newGC - s.lastNumGC
	if missed > uint32(len(m.PauseNs)) {
		missed = uint32(len(m.PauseNs))
	}
	for i := uint32(0); i < missed; i++ {
		cycle := newGC - missed + i + 1
		pause := m.PauseNs[(cycle+255)%256]
		s.pauses.Observe(time.Duration(pause))
		s.lastPause.Store(int64(pause))
	}
	s.lastNumGC = newGC
}

// Stop halts the sampling goroutine and waits for it to exit. The
// registered gauges keep reporting the final sample.
func (s *RuntimeSampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
