// Package telemetry is the dependency-free observability substrate of
// the reproduction: counters, gauges, and log2-bucketed latency
// histograms collected into a Registry, plus the request-trace
// identifiers that follow one call across federated servers. The paper's
// deployment leaned on MonALISA dashboards (§2.4) to keep a 90+ site
// grid operable; this package supplies the equivalent primitives and the
// Registry renders them as Prometheus text for scraping, as RPC structs
// for system.stats, and as MonALISA parameter maps for station
// republication.
//
// Everything here is stdlib-only and safe for concurrent use; the hot
// paths (Histogram.Observe, Counter.Add, Registry.ObserveRPC) are
// lock-free atomic operations sized for a per-dispatch budget well under
// half a microsecond.
package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of log2 latency buckets. Bucket i holds
// observations whose nanosecond count has bit length i, i.e. durations
// in [2^(i-1), 2^i) ns; bucket 0 holds non-positive durations. 48
// buckets cover up to ~78 hours, far past any method deadline.
const NumBuckets = 48

// bucketIndex maps a duration to its log2 bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) time.Duration {
	if i <= 0 {
		return 1
	}
	return time.Duration(1) << uint(i)
}

// Histogram is a fixed-size log2 latency histogram. The zero value is
// ready to use; all methods are safe for concurrent callers and Observe
// is three uncontended atomic adds.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (0 < q <= 1) of the observed
// durations, interpolating linearly inside the covering bucket. It
// returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	s := h.Snapshot()
	return s.Quantile(q)
}

// HistogramSnapshot is a point-in-time copy of a Histogram, decoupled
// from concurrent writers so derived quantiles are mutually consistent.
type HistogramSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [NumBuckets]uint64
}

// Snapshot copies the current counters. The per-bucket loads are not a
// single atomic cut, but each bucket is monotone, so the copy is at
// worst a few observations torn — irrelevant for quantile estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile estimates the q-th quantile from the snapshot.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if seen+n < rank {
			seen += n
			continue
		}
		// The target falls in bucket i: interpolate between the bucket
		// bounds by the rank's position inside the bucket.
		lower := time.Duration(0)
		if i > 0 {
			lower = time.Duration(1) << uint(i-1)
		}
		upper := BucketUpper(i)
		frac := float64(rank-seen) / float64(n)
		return lower + time.Duration(float64(upper-lower)*frac)
	}
	return BucketUpper(NumBuckets - 1)
}

// Counter is a monotone counter. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }
