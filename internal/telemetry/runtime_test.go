package telemetry

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRuntimeSampler(t *testing.T) {
	r := New()
	s := StartRuntimeSampler(r, time.Hour) // one synchronous sample, no ticks
	defer s.Stop()

	g := r.GaugeValues()
	if g["clarens.runtime.goroutines"] < 1 {
		t.Errorf("goroutines gauge = %v, want >= 1", g["clarens.runtime.goroutines"])
	}
	if g["clarens.runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("heap_alloc gauge = %v, want > 0", g["clarens.runtime.heap_alloc_bytes"])
	}
	if g["clarens.runtime.heap_sys_bytes"] <= 0 {
		t.Errorf("heap_sys gauge = %v, want > 0", g["clarens.runtime.heap_sys_bytes"])
	}
	if g["clarens.runtime.next_gc_bytes"] <= 0 {
		t.Errorf("next_gc gauge = %v, want > 0", g["clarens.runtime.next_gc_bytes"])
	}

	// Force GC cycles and resample: the pause histogram must pick up the
	// new cycles through the PauseNs delta replay.
	before := r.HistogramSnapshots()["clarens.runtime.gc_pause_seconds"].Count
	runtime.GC()
	runtime.GC()
	s.sample()
	after := r.HistogramSnapshots()["clarens.runtime.gc_pause_seconds"].Count
	if after < before+2 {
		t.Errorf("gc pause histogram count %d -> %d, want +2 cycles", before, after)
	}
	if g := r.GaugeValues(); g["clarens.runtime.gc_runs"] < 2 {
		t.Errorf("gc_runs gauge = %v, want >= 2", g["clarens.runtime.gc_runs"])
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"clarens_runtime_goroutines",
		"clarens_runtime_heap_alloc_bytes",
		"# TYPE clarens_runtime_gc_pause_seconds summary",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestRuntimeSamplerStopIdempotent(t *testing.T) {
	s := StartRuntimeSampler(New(), time.Millisecond)
	s.Stop()
	s.Stop() // second Stop must not panic or hang
}
