package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations and 10 slow ones: p50 must land in the fast
	// band, p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	p50 := h.Quantile(0.5)
	if p50 < 50*time.Microsecond || p50 > 200*time.Microsecond {
		t.Errorf("p50 = %v, want within the 100µs log2 bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 40*time.Millisecond || p99 > 160*time.Millisecond {
		t.Errorf("p99 = %v, want within the 80ms log2 bucket", p99)
	}
	if sum := h.Sum(); sum != 90*100*time.Microsecond+10*80*time.Millisecond {
		t.Errorf("Sum = %v", sum)
	}
}

func TestHistogramEmptyAndEdges(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
	h.Observe(0)
	h.Observe(-5)
	h.Observe(time.Duration(1) << 62) // beyond the last bucket bound
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if q := h.Quantile(1); q < BucketUpper(NumBuckets-2) {
		t.Errorf("max quantile = %v, want capped at the top bucket", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace ID lengths %d/%d, want 32", len(a), len(b))
	}
	if a == b {
		t.Fatalf("two minted trace IDs collided: %s", a)
	}
	if !ValidTraceID(a) {
		t.Errorf("minted trace ID %q not valid", a)
	}
	if sp := NewSpanID(); len(sp) != 16 || !ValidTraceID(sp) {
		t.Errorf("span ID %q invalid", sp)
	}
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("a", 129), "new\nline"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	for _, good := range []string{"abc", "550e8400-e29b-41d4-a716-446655440000", "trace_1.retry"} {
		if !ValidTraceID(good) {
			t.Errorf("ValidTraceID(%q) = false, want true", good)
		}
	}
}

func TestRegistryRPCAndPrometheus(t *testing.T) {
	r := New()
	for i := 0; i < 20; i++ {
		r.ObserveRPC("system.echo", false, 50*time.Microsecond)
	}
	r.ObserveRPC("job.submit", true, 2*time.Millisecond)
	r.RegisterGauge("clarens.job.queued", "Queued jobs.", func() float64 { return 7 })
	r.Counter("clarens.job.submitted_total", "Jobs submitted.").Add(3)
	r.Histogram("clarens.job.queue_wait_seconds", "Queue wait.").Observe(10 * time.Millisecond)

	snaps := r.MethodSnapshots()
	if len(snaps) != 2 {
		t.Fatalf("MethodSnapshots len = %d, want 2", len(snaps))
	}
	if snaps[0].Method != "job.submit" || snaps[0].Faults != 1 {
		t.Errorf("snapshot[0] = %+v", snaps[0])
	}
	if snaps[1].Requests != 20 || snaps[1].Faults != 0 {
		t.Errorf("snapshot[1] = %+v", snaps[1])
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`clarens_rpc_requests_total{method="system.echo"} 20`,
		`clarens_rpc_faults_total{method="job.submit"} 1`,
		`# TYPE clarens_rpc_latency_seconds summary`,
		`clarens_rpc_latency_seconds{method="system.echo",quantile="0.5"}`,
		`clarens_rpc_latency_seconds_count{method="system.echo"} 20`,
		`# TYPE clarens_rpc_latency_all_seconds histogram`,
		`clarens_rpc_latency_all_seconds_bucket{le="+Inf"} 21`,
		`# TYPE clarens_job_queued gauge`,
		`clarens_job_queued 7`,
		`clarens_job_submitted_total 3`,
		`# TYPE clarens_job_queue_wait_seconds summary`,
		`clarens_job_queue_wait_seconds_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	if got := PromName("clarens.job.queue_wait_seconds"); got != "clarens_job_queue_wait_seconds" {
		t.Errorf("PromName = %q", got)
	}
	if got := PromName("9lives"); got != "_lives" {
		t.Errorf("PromName leading digit = %q", got)
	}
}

func TestGaugeAndCounterValues(t *testing.T) {
	r := New()
	r.RegisterGauge("clarens.core.sessions", "", func() float64 { return 2 })
	r.Counter("clarens.rpc.total", "").Inc()
	if v := r.GaugeValues()["clarens.core.sessions"]; v != 2 {
		t.Errorf("gauge = %v", v)
	}
	if v := r.CounterValues()["clarens.rpc.total"]; v != 1 {
		t.Errorf("counter = %v", v)
	}
	if _, ok := r.HistogramSnapshots()["missing"]; ok {
		t.Error("unexpected histogram")
	}
}

func BenchmarkObserveRPC(b *testing.B) {
	r := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.ObserveRPC("system.echo", false, 123*time.Microsecond)
		}
	})
}

func BenchmarkNewTraceID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewTraceID()
	}
}
