package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Exemplar links one histogram bucket to a concrete sampled trace: the
// most recent span-store promotion that landed in the bucket. Emitted in
// OpenMetrics exemplar syntax on /metrics, it closes the loop from "the
// p99 bucket is filling" to "here is a trace ID you can pull up with
// `clarens trace <id>`".
type Exemplar struct {
	TraceID string
	// Value is the exemplified observation in seconds. By construction it
	// falls within its bucket's bounds, as the OpenMetrics spec requires.
	Value float64
}

// exemplarSet holds one exemplar slot per histogram bucket, each swapped
// atomically so attachment is lock-free and wait-free for readers.
type exemplarSet struct {
	slots [NumBuckets]atomic.Pointer[Exemplar]
}

// attach records an exemplar for the bucket covering duration d.
func (e *exemplarSet) attach(ex Exemplar) {
	if ex.TraceID == "" {
		return
	}
	e.slots[bucketIndexSeconds(ex.Value)].Store(&ex)
}

// get returns bucket i's exemplar, or nil.
func (e *exemplarSet) get(i int) *Exemplar {
	if i < 0 || i >= NumBuckets {
		return nil
	}
	return e.slots[i].Load()
}

// bucketIndexSeconds maps a seconds value to its log2 nanosecond bucket,
// mirroring bucketIndex.
func bucketIndexSeconds(v float64) int {
	return bucketIndex(time.Duration(v * float64(time.Second)))
}

// writeExemplar appends OpenMetrics exemplar syntax — a '#' separator,
// a labelset with the trace ID, and the exemplified value — to a bucket
// line. The optional timestamp is omitted.
func writeExemplar(b *strings.Builder, ex *Exemplar) {
	if ex == nil {
		return
	}
	fmt.Fprintf(b, " # {trace_id=%q} %s", ex.TraceID, promFloat(ex.Value))
}
