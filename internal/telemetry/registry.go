package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// MethodStats aggregates one RPC method's dispatch counters and latency
// histogram. All fields are atomically updated; read them through
// Registry.MethodSnapshots for consistent views.
type MethodStats struct {
	Requests Counter
	Faults   Counter
	Latency  Histogram
}

// MethodSnapshot is a point-in-time copy of one method's stats.
type MethodSnapshot struct {
	Method   string
	Requests uint64
	Faults   uint64
	Latency  HistogramSnapshot
}

// Registry collects the process's metrics: per-RPC-method stats, named
// counters, named duration histograms, and callback gauges. Canonical
// metric names are dotted (`clarens.<subsystem>.<name>`) — the style the
// MonALISA republication uses — and are sanitized to underscore form for
// Prometheus exposition.
type Registry struct {
	start time.Time

	methods sync.Map // method name -> *MethodStats
	allRPC  Histogram

	// rpcExemplars carries, per aggregate-histogram bucket, the most
	// recent sampled trace that landed there; fed by the span store's
	// OnSample hook.
	rpcExemplars exemplarSet

	mu       sync.RWMutex
	gauges   map[string]*gaugeEntry
	counters map[string]*counterEntry
	hists    map[string]*histEntry
}

type gaugeEntry struct {
	help string
	fn   func() float64
}

type counterEntry struct {
	help string
	c    Counter
}

type histEntry struct {
	help string
	h    Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		start:    time.Now(),
		gauges:   make(map[string]*gaugeEntry),
		counters: make(map[string]*counterEntry),
		hists:    make(map[string]*histEntry),
	}
}

// Start returns the registry's creation time (the process start for the
// server-owned registry).
func (r *Registry) Start() time.Time { return r.start }

// Method returns the stats cell for an RPC method, creating it on first
// use. The steady-state path is a single lock-free sync.Map load.
func (r *Registry) Method(name string) *MethodStats {
	if v, ok := r.methods.Load(name); ok {
		return v.(*MethodStats)
	}
	v, _ := r.methods.LoadOrStore(name, &MethodStats{})
	return v.(*MethodStats)
}

// ObserveRPC records one dispatched call: per-method request/fault
// counters and latency, plus the cross-method aggregate histogram.
func (r *Registry) ObserveRPC(method string, fault bool, d time.Duration) {
	ms := r.Method(method)
	ms.Requests.Inc()
	if fault {
		ms.Faults.Inc()
	}
	ms.Latency.Observe(d)
	r.allRPC.Observe(d)
}

// RPCAggregate returns the cross-method latency histogram snapshot.
func (r *Registry) RPCAggregate() HistogramSnapshot { return r.allRPC.Snapshot() }

// AttachRPCExemplar links the aggregate latency histogram bucket
// covering d to a sampled trace ID. Lock-free; newest exemplar wins.
func (r *Registry) AttachRPCExemplar(d time.Duration, trace string) {
	r.rpcExemplars.attach(Exemplar{TraceID: trace, Value: seconds(d)})
}

// RPCExemplar returns the exemplar stored for aggregate-histogram bucket
// i, or nil.
func (r *Registry) RPCExemplar(i int) *Exemplar { return r.rpcExemplars.get(i) }

// MethodSnapshots returns a consistent copy of every method's stats,
// sorted by method name.
func (r *Registry) MethodSnapshots() []MethodSnapshot {
	var out []MethodSnapshot
	r.methods.Range(func(k, v any) bool {
		ms := v.(*MethodStats)
		out = append(out, MethodSnapshot{
			Method:   k.(string),
			Requests: ms.Requests.Value(),
			Faults:   ms.Faults.Value(),
			Latency:  ms.Latency.Snapshot(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Method < out[j].Method })
	return out
}

// RegisterGauge registers a callback gauge under a dotted canonical name
// (e.g. "clarens.job.queued"). Re-registering a name replaces the
// callback. The callback must be safe for concurrent use; it runs on
// every scrape and republication.
func (r *Registry) RegisterGauge(name, help string, fn func() float64) {
	r.mu.Lock()
	r.gauges[name] = &gaugeEntry{help: help, fn: fn}
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	e := r.counters[name]
	r.mu.RUnlock()
	if e != nil {
		return &e.c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.counters[name]; e != nil {
		return &e.c
	}
	e = &counterEntry{help: help}
	r.counters[name] = e
	return &e.c
}

// Histogram returns the named duration histogram, creating it on first
// use (e.g. "clarens.job.queue_wait_seconds" for scheduler queue waits).
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.RLock()
	e := r.hists[name]
	r.mu.RUnlock()
	if e != nil {
		return &e.h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.hists[name]; e != nil {
		return &e.h
	}
	e = &histEntry{help: help}
	r.hists[name] = e
	return &e.h
}

// GaugeValues evaluates every registered gauge and returns dotted name →
// value, the map shape the MonALISA republication publishes.
func (r *Registry) GaugeValues() map[string]float64 {
	r.mu.RLock()
	fns := make(map[string]func() float64, len(r.gauges))
	for name, e := range r.gauges {
		fns[name] = e.fn
	}
	r.mu.RUnlock()
	out := make(map[string]float64, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// CounterValues returns dotted name → value for every named counter.
func (r *Registry) CounterValues() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.counters))
	for name, e := range r.counters {
		out[name] = e.c.Value()
	}
	return out
}

// HistogramSnapshots returns dotted name → snapshot for every named
// histogram.
func (r *Registry) HistogramSnapshots() map[string]HistogramSnapshot {
	r.mu.RLock()
	hs := make(map[string]*histEntry, len(r.hists))
	for name, e := range r.hists {
		hs[name] = e
	}
	r.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(hs))
	for name, e := range hs {
		out[name] = e.h.Snapshot()
	}
	return out
}

// PromName sanitizes a dotted canonical name into a legal Prometheus
// metric name: every character outside [a-zA-Z0-9_] becomes '_'.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && i > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// quantiles exposed on every summary family.
var summaryQuantiles = []struct {
	label string
	q     float64
}{
	{"0.5", 0.5},
	{"0.95", 0.95},
	{"0.99", 0.99},
}

func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func seconds(d time.Duration) float64 { return d.Seconds() }

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): per-method request/fault counters, per-method
// latency summaries with p50/p95/p99 quantiles, one cross-method latency
// histogram with log2 `le` buckets, and every named counter, gauge, and
// duration histogram. Output is deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	methods := r.MethodSnapshots()

	var b strings.Builder

	// Per-method dispatch counters.
	b.WriteString("# HELP clarens_rpc_requests_total RPC dispatches by method, including multicall sub-calls.\n")
	b.WriteString("# TYPE clarens_rpc_requests_total counter\n")
	for _, m := range methods {
		fmt.Fprintf(&b, "clarens_rpc_requests_total{method=%q} %d\n", m.Method, m.Requests)
	}
	b.WriteString("# HELP clarens_rpc_faults_total RPC dispatches that returned a fault, by method.\n")
	b.WriteString("# TYPE clarens_rpc_faults_total counter\n")
	for _, m := range methods {
		fmt.Fprintf(&b, "clarens_rpc_faults_total{method=%q} %d\n", m.Method, m.Faults)
	}

	// Per-method latency summaries.
	b.WriteString("# HELP clarens_rpc_latency_seconds RPC dispatch latency by method.\n")
	b.WriteString("# TYPE clarens_rpc_latency_seconds summary\n")
	for _, m := range methods {
		for _, sq := range summaryQuantiles {
			fmt.Fprintf(&b, "clarens_rpc_latency_seconds{method=%q,quantile=%q} %s\n",
				m.Method, sq.label, promFloat(seconds(m.Latency.Quantile(sq.q))))
		}
		fmt.Fprintf(&b, "clarens_rpc_latency_seconds_sum{method=%q} %s\n", m.Method, promFloat(seconds(m.Latency.Sum)))
		fmt.Fprintf(&b, "clarens_rpc_latency_seconds_count{method=%q} %d\n", m.Method, m.Latency.Count)
	}

	// Cross-method aggregate as a native histogram family (cumulative
	// log2 buckets); one family keeps the series count bounded while the
	// summaries above carry the per-method quantiles.
	agg := r.RPCAggregate()
	b.WriteString("# HELP clarens_rpc_latency_all_seconds RPC dispatch latency across all methods.\n")
	b.WriteString("# TYPE clarens_rpc_latency_all_seconds histogram\n")
	writePromHistogram(&b, "clarens_rpc_latency_all_seconds", &agg, r.rpcExemplars.get)

	// Named counters.
	r.mu.RLock()
	counterNames := sortedKeys(r.counters)
	for _, name := range counterNames {
		e := r.counters[name]
		pn := PromName(name)
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", pn, e.help)
		}
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, e.c.Value())
	}
	histNames := sortedKeys(r.hists)
	histHelp := make(map[string]string, len(histNames))
	for _, name := range histNames {
		histHelp[name] = r.hists[name].help
	}
	r.mu.RUnlock()

	// Callback gauges (evaluated outside the registry lock).
	gauges := r.GaugeValues()
	for _, name := range sortedKeys(gauges) {
		pn := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(gauges[name]))
	}

	// Named duration histograms as summaries.
	snaps := r.HistogramSnapshots()
	for _, name := range histNames {
		s := snaps[name]
		pn := PromName(name)
		if help := histHelp[name]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", pn, help)
		}
		fmt.Fprintf(&b, "# TYPE %s summary\n", pn)
		for _, sq := range summaryQuantiles {
			fmt.Fprintf(&b, "%s{quantile=%q} %s\n", pn, sq.label, promFloat(seconds(s.Quantile(sq.q))))
		}
		fmt.Fprintf(&b, "%s_sum %s\n%s_count %d\n", pn, promFloat(seconds(s.Sum)), pn, s.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits cumulative le-bucket lines for a snapshot,
// stopping after the highest populated bucket. When exemplars is
// non-nil, each bucket line carries its OpenMetrics exemplar (the most
// recent sampled trace that landed in the bucket).
func writePromHistogram(b *strings.Builder, name string, s *HistogramSnapshot, exemplars func(i int) *Exemplar) {
	last := -1
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] > 0 {
			last = i
			break
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += s.Buckets[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d", name, promFloat(seconds(BucketUpper(i))), cum)
		if exemplars != nil {
			writeExemplar(b, exemplars(i))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(b, "%s_sum %s\n%s_count %d\n", name, promFloat(seconds(s.Sum)), name, s.Count)
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
