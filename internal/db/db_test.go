package db

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"clarens/internal/faultinject"
)

func TestInMemoryBasics(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.InMemory() {
		t.Error("expected in-memory store")
	}
	if err := s.Put("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("b", "k")
	if !ok || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := s.Get("b", "missing"); ok {
		t.Error("missing key should not be found")
	}
	if _, ok := s.Get("nobucket", "k"); ok {
		t.Error("missing bucket should not be found")
	}
	if err := s.Delete("b", "k"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("b", "k"); ok {
		t.Error("deleted key should not be found")
	}
	if err := s.Delete("b", "never-existed"); err != nil {
		t.Errorf("deleting a missing key must not error: %v", err)
	}
}

func TestPutValidation(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if err := s.Put("", "k", nil); err == nil {
		t.Error("empty bucket should error")
	}
	if err := s.Put("b", "", nil); err == nil {
		t.Error("empty key should error")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	orig := []byte("hello")
	s.Put("b", "k", orig)
	orig[0] = 'X' // caller mutates its slice after Put
	v, _ := s.Get("b", "k")
	if string(v) != "hello" {
		t.Errorf("Put must copy: got %q", v)
	}
	v[0] = 'Y' // caller mutates the returned slice
	v2, _ := s.Get("b", "k")
	if string(v2) != "hello" {
		t.Errorf("Get must copy: got %q", v2)
	}
}

func TestKeysAndBucketsAndLen(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	s.Put("sessions", "s1", []byte("a"))
	s.Put("sessions", "s2", []byte("b"))
	s.Put("vo", "admins", []byte("c"))
	if got := s.Keys("sessions", ""); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Errorf("Keys = %v", got)
	}
	if got := s.Keys("sessions", "s1"); !reflect.DeepEqual(got, []string{"s1"}) {
		t.Errorf("Keys prefix = %v", got)
	}
	if got := s.Buckets(); !reflect.DeepEqual(got, []string{"sessions", "vo"}) {
		t.Errorf("Buckets = %v", got)
	}
	if got := s.Len("sessions"); got != 2 {
		t.Errorf("Len = %d", got)
	}
	if got := s.Len("empty"); got != 0 {
		t.Errorf("Len(empty) = %d", got)
	}
}

func TestForEach(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	for i := 0; i < 5; i++ {
		s.Put("b", fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	var keys []string
	err := s.ForEach("b", func(k string, v []byte) error {
		keys = append(keys, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 5 || keys[0] != "k0" || keys[4] != "k4" {
		t.Errorf("ForEach keys = %v", keys)
	}
	wantErr := fmt.Errorf("stop")
	err = s.ForEach("b", func(k string, v []byte) error { return wantErr })
	if err != wantErr {
		t.Errorf("ForEach should propagate the first error, got %v", err)
	}
}

func TestJSONHelpers(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	type rec struct {
		Name string
		N    int
	}
	if err := s.PutJSON("b", "k", rec{"clarens", 2005}); err != nil {
		t.Fatal(err)
	}
	var out rec
	found, err := s.GetJSON("b", "k", &out)
	if err != nil || !found {
		t.Fatalf("GetJSON: %v found=%v", err, found)
	}
	if out.Name != "clarens" || out.N != 2005 {
		t.Errorf("round trip = %+v", out)
	}
	found, err = s.GetJSON("b", "missing", &out)
	if err != nil || found {
		t.Errorf("missing key: found=%v err=%v", found, err)
	}
	if err := s.PutJSON("b", "bad", make(chan int)); err == nil {
		t.Error("unmarshalable type should error")
	}
	s.Put("b", "garbage", []byte("{not json"))
	if found, err = s.GetJSON("b", "garbage", &out); err == nil || !found {
		t.Error("corrupt JSON should report an error with found=true")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("sessions", "sess-1", []byte("dn=/O=x/CN=jo"))
	s.Put("sessions", "sess-2", []byte("dn=/O=x/CN=bo"))
	s.Delete("sessions", "sess-2")
	s.Put("vo", "groups/A", []byte("members"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v, ok := s2.Get("sessions", "sess-1")
	if !ok || string(v) != "dn=/O=x/CN=jo" {
		t.Errorf("sess-1 after reopen = %q, %v", v, ok)
	}
	if _, ok := s2.Get("sessions", "sess-2"); ok {
		t.Error("deleted key resurrected after reopen")
	}
	if _, ok := s2.Get("vo", "groups/A"); !ok {
		t.Error("vo bucket lost after reopen")
	}
}

func TestCompactPreservesStateAndTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put("b", fmt.Sprintf("k%03d", i), bytes.Repeat([]byte{byte(i)}, 100))
	}
	for i := 0; i < 50; i++ {
		s.Delete("b", fmt.Sprintf("k%03d", i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Errorf("WAL size after compact = %d, want 0", st.Size())
	}
	// Writes after compact must still persist.
	s.Put("b", "after", []byte("compact"))
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len("b"); got != 51 {
		t.Errorf("keys after compact+reopen = %d, want 51", got)
	}
	if _, ok := s2.Get("b", "after"); !ok {
		t.Error("post-compact write lost")
	}
	if _, ok := s2.Get("b", "k000"); ok {
		t.Error("deleted key present after compact")
	}
}

func TestAutoCompactByThreshold(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.CompactThreshold = 1024
	for i := 0; i < 100; i++ {
		if err := s.Put("b", "samekey", bytes.Repeat([]byte("x"), 128)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 2048 {
		t.Errorf("auto-compaction did not bound WAL growth: %d bytes", st.Size())
	}
}

func TestTornWALRecordIgnored(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("b", "good", []byte("value"))
	s.Close()

	// Simulate a crash mid-write: append half a record to the WAL.
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{opPut, 1, 2, 3}) // truncated header
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after torn write: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get("b", "good"); !ok {
		t.Error("intact record lost after torn-tail recovery")
	}
}

func TestCorruptWALChecksumStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("b", "first", []byte("1"))
	s.Put("b", "second", []byte("2"))
	s.Close()

	// Flip a byte in the middle of the WAL: replay keeps the prefix.
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("open with corrupt tail: %v", err)
	}
	defer s2.Close()
	if _, ok := s2.Get("b", "first"); !ok {
		t.Error("record before corruption should survive")
	}
	if _, ok := s2.Get("b", "second"); ok {
		t.Error("corrupted record should not be applied")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Close()
	if err := s.Put("b", "k", nil); err != ErrClosed {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	if err := s.Delete("b", "k"); err != ErrClosed {
		t.Errorf("Delete after close = %v, want ErrClosed", err)
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact after close = %v, want ErrClosed", err)
	}
	if err := s.Sync(); err != ErrClosed {
		t.Errorf("Sync after close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close = %v, want nil", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := s.Put("b", key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok := s.Get("b", key); !ok || string(v) != key {
					t.Errorf("read own write failed for %s", key)
					return
				}
				if i%10 == 0 {
					s.Keys("b", fmt.Sprintf("g%d-", g))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len("b"); got != 8*200 {
		t.Errorf("Len = %d, want %d", got, 8*200)
	}
}

// Property: a random sequence of puts/deletes replayed through a reopen
// yields exactly the same state as an in-memory model map.
func TestPersistenceMatchesModelProperty(t *testing.T) {
	f := func(ops []struct {
		Del bool
		K   uint8
		V   uint16
	}) bool {
		dir := t.TempDir()
		s, err := Open(dir)
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op.K%16)
			if op.Del {
				s.Delete("b", key)
				delete(model, key)
			} else {
				val := fmt.Sprintf("v%d", op.V)
				s.Put("b", key, []byte(val))
				model[key] = val
			}
		}
		s.Close()
		s2, err := Open(dir)
		if err != nil {
			return false
		}
		defer s2.Close()
		if s2.Len("b") != len(model) {
			return false
		}
		for k, want := range model {
			got, ok := s2.Get("b", k)
			if !ok || string(got) != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(op bool, bucket, key string, value []byte) bool {
		if bucket == "" {
			bucket = "b"
		}
		if key == "" {
			key = "k"
		}
		rec := record{op: opPut, bucket: bucket, key: key, value: value}
		if op {
			rec.op = opDelete
		}
		var buf bytes.Buffer
		if err := writeRecord(&buf, rec); err != nil {
			return false
		}
		got, _, err := readRecord(&buf)
		if err != nil {
			return false
		}
		return got.op == rec.op && got.bucket == rec.bucket &&
			got.key == rec.key && bytes.Equal(got.value, rec.value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root; permission bits are not enforced")
	}
	dir := t.TempDir()
	os.Chmod(dir, 0o500)
	defer os.Chmod(dir, 0o755)
	if _, err := Open(filepath.Join(dir, "sub")); err == nil {
		t.Error("expected error creating store under unwritable dir")
	}
}

func TestGenerationBumpsOnWrites(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	if g := s.Generation("b"); g != 0 {
		t.Fatalf("fresh bucket generation = %d", g)
	}
	s.Put("b", "k", []byte("v"))
	g1 := s.Generation("b")
	if g1 == 0 {
		t.Fatal("Put did not bump the generation")
	}
	if g := s.Generation("other"); g != 0 {
		t.Fatalf("unrelated bucket generation moved to %d", g)
	}
	s.Get("b", "k")
	s.Keys("b", "")
	if g := s.Generation("b"); g != g1 {
		t.Fatalf("reads moved the generation: %d -> %d", g1, g)
	}
	s.Delete("b", "k")
	if g := s.Generation("b"); g <= g1 {
		t.Fatalf("Delete did not bump the generation: %d -> %d", g1, g)
	}
	// Deleting a missing key still counts as a write: callers use the
	// generation to invalidate caches, and over-invalidation is the safe
	// direction.
	g2 := s.Generation("b")
	s.Delete("b", "missing")
	if g := s.Generation("b"); g <= g2 {
		t.Fatalf("no-op Delete did not bump the generation")
	}
}

func TestGenerationSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("b", "k1", []byte("v1"))
	s.Put("b", "k2", []byte("v2"))
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Replay counts as writes, so a reopened store starts at a non-zero
	// generation and caches built against the old process state miss.
	if g := s2.Generation("b"); g == 0 {
		t.Fatal("generation not bumped by WAL replay")
	}
}

func TestViewZeroCopyRead(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	s.Put("b", "k", []byte("hello"))
	var seen string
	found, err := s.View("b", "k", func(v []byte) error {
		seen = string(v)
		return nil
	})
	if err != nil || !found || seen != "hello" {
		t.Fatalf("View = %v/%v, saw %q", found, err, seen)
	}
	found, err = s.View("b", "missing", func(v []byte) error {
		t.Error("fn called for a missing key")
		return nil
	})
	if err != nil || found {
		t.Fatalf("View(missing) = %v/%v", found, err)
	}
	wantErr := errors.New("sentinel")
	_, err = s.View("b", "k", func(v []byte) error { return wantErr })
	if err != wantErr {
		t.Fatalf("View did not propagate fn error: %v", err)
	}
}

func TestForEachSeesOneConsistentSnapshot(t *testing.T) {
	s, _ := Open("")
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put("b", fmt.Sprintf("k%02d", i), []byte{byte(i)})
	}
	var keys []string
	err := s.ForEach("b", func(k string, v []byte) error {
		// Mutating mid-iteration must neither deadlock (fn runs outside
		// the lock) nor change what this iteration yields (the snapshot
		// was taken up front).
		s.Delete("b", "k09")
		s.Put("b", "new", []byte("x"))
		keys = append(keys, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 10 || keys[0] != "k00" || keys[9] != "k09" {
		t.Fatalf("snapshot iteration saw %v", keys)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatalf("keys not in sorted order: %v", keys)
	}
}

func TestMidLogCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("b", "first", []byte("1"))
	s.Put("b", "second", []byte("22"))
	s.Put("b", "third", []byte("333"))
	s.Close()

	// Flip a byte inside the FIRST record's value: valid records follow
	// the damage, so this is corruption, not a torn tail.
	path := filepath.Join(dir, walName)
	data, _ := os.ReadFile(path)
	data[17+len("b")+len("first")] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	_, err := Open(dir)
	if err == nil {
		t.Fatal("open succeeded over mid-log corruption")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error does not wrap ErrCorrupt: %v", err)
	}
}

func TestTornTailVariantsRecover(t *testing.T) {
	// Each variant appends a differently-damaged tail after one good
	// record; all must recover by truncation, reporting the torn bytes.
	variants := map[string]func(good []byte) []byte{
		"short header": func([]byte) []byte { return []byte{opPut, 1, 2, 3} },
		"short body": func(good []byte) []byte {
			// A full header + partial payload of a second record.
			return good[:len(good)-2]
		},
		"bad crc at eof": func(good []byte) []byte {
			bad := append([]byte(nil), good...)
			bad[len(bad)-1] ^= 0xFF
			return bad
		},
		"length beyond eof": func([]byte) []byte {
			hdr := make([]byte, 17)
			hdr[0] = opPut
			hdr[13] = 0xFF // vlen claims ~4GB; file ends right after
			return hdr
		},
	}
	for name, damage := range variants {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := Open(dir)
			s.Put("b", "good", []byte("value"))
			s.Close()
			path := filepath.Join(dir, walName)
			whole, _ := os.ReadFile(path)
			f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
			f.Write(damage(whole))
			f.Close()

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("open after torn tail (%s): %v", name, err)
			}
			defer s2.Close()
			if _, ok := s2.Get("b", "good"); !ok {
				t.Error("intact record lost after torn-tail recovery")
			}
			if s2.RecoveredTornBytes() == 0 {
				t.Error("RecoveredTornBytes = 0, want > 0")
			}
			st, _ := os.Stat(path)
			if st.Size() != int64(len(whole)) {
				t.Errorf("torn tail not truncated: size %d, want %d", st.Size(), len(whole))
			}
		})
	}
}

func TestCorruptSnapshotFailsOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	s.Put("b", "k", []byte("v"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, snapshotName)
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	_, err := Open(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over corrupt snapshot: err=%v, want ErrCorrupt", err)
	}
}

func TestSyncAlwaysFsyncsEveryWrite(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put("b", fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Fsyncs(); got < 5 {
		t.Errorf("Fsyncs = %d, want >= 5", got)
	}
}

func TestSyncIntervalFsyncsInBackground(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{Sync: SyncEveryInterval, SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Put("b", "k", []byte("v"))
	deadline := time.Now().Add(2 * time.Second)
	for s.Fsyncs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval sync loop never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncEveryInterval, "never": SyncNever, "": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

// TestInjectedTornWriteRecoversOnReopen drives the store through the
// faultinject WAL seam: a scheduled partial-write failure leaves a torn
// record on disk exactly as a crash mid-append would, and reopening must
// recover by truncating it while keeping every acknowledged record.
func TestInjectedTornWriteRecoversOnReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		OpenWAL: func(path string) (WALFile, error) {
			return faultinject.OpenFile(path, faultinject.FileConfig{FailWriteAfter: 2, PartialWrites: true})
		},
	}
	s, err := OpenWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", "k1", []byte("v1")); err != nil {
		t.Fatalf("put 1: %v", err)
	}
	if err := s.Put("b", "k2", []byte("v2")); err != nil {
		t.Fatalf("put 2: %v", err)
	}
	if err := s.Put("b", "k3", []byte("v3")); err == nil {
		t.Fatal("put past the failure schedule succeeded")
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer s2.Close()
	if s2.RecoveredTornBytes() == 0 {
		t.Error("reopen did not report a recovered torn tail")
	}
	for _, k := range []string{"k1", "k2"} {
		if v, ok := s2.Get("b", k); !ok || string(v) != "v"+k[1:] {
			t.Errorf("%s = %q, %v after recovery", k, v, ok)
		}
	}
	if _, ok := s2.Get("b", "k3"); ok {
		t.Error("unacknowledged k3 visible after recovery")
	}
}

// TestInjectedSyncFailureSurfaces: under SyncAlways a failing fsync must
// fail the Put itself — the write cannot be acknowledged as durable.
func TestInjectedSyncFailureSurfaces(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{
		Sync: SyncAlways,
		OpenWAL: func(path string) (WALFile, error) {
			return faultinject.OpenFile(path, faultinject.FileConfig{FailSyncAfter: 1})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("b", "k1", []byte("v1")); err != nil {
		t.Fatalf("first put: %v", err)
	}
	if err := s.Put("b", "k2", []byte("v2")); err == nil {
		t.Fatal("put with failing fsync was acknowledged")
	}
}
