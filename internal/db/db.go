// Package db implements the embedded persistent key/value database that
// backs the Clarens server's durable state: sessions, virtual-organization
// membership, access-control lists, stored proxies, and discovery caches.
//
// The paper (§2) requires that "session information is stored persistently
// on the server side", with the explicit benefit that "clients survive
// server failures or restarts transparently without having to
// re-authenticate". PClarens used on-disk databases behind Apache; we build
// the equivalent from scratch: a bucketed in-memory map with a CRC-guarded
// append-only write-ahead log and periodic snapshot compaction.
//
// Concurrency: all operations are safe for concurrent use. Reads take a
// shared lock on the index; writes serialize on the log.
package db

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// SyncPolicy controls when the WAL is fsynced to stable storage.
type SyncPolicy int

const (
	// SyncNever flushes records to the OS page cache only; a machine
	// crash can lose acknowledged writes (a process crash cannot).
	SyncNever SyncPolicy = iota
	// SyncEveryInterval fsyncs on a background timer, bounding the
	// machine-crash loss window to Options.SyncInterval.
	SyncEveryInterval
	// SyncAlways fsyncs before every write acknowledgement: an
	// acknowledged Put/Delete survives even a hard power loss.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryInterval:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return "never"
}

// ParseSyncPolicy maps the -db-fsync flag values onto a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "never", "":
		return SyncNever, nil
	case "interval":
		return SyncEveryInterval, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncNever, fmt.Errorf("db: unknown sync policy %q (want always, interval, or never)", s)
}

// WALFile is the write-ahead log's file handle. *os.File satisfies it;
// the fault-injection harness substitutes an error-injecting wrapper
// through Options.OpenWAL.
type WALFile interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
}

// Options tunes a store at open time. The zero value matches the
// historical behaviour: no fsync, real files.
type Options struct {
	// Sync selects the WAL fsync policy.
	Sync SyncPolicy
	// SyncInterval is the background fsync period under
	// SyncEveryInterval (default 100ms).
	SyncInterval time.Duration
	// OpenWAL, when set, opens the WAL file handle instead of
	// os.OpenFile — the seam the fault-injection harness uses to make
	// writes and fsyncs fail on demand.
	OpenWAL func(path string) (WALFile, error)
}

// Store is a bucketed key/value database. A Store opened with an empty
// directory path is purely in-memory (used in tests and benchmarks that
// don't exercise persistence).
type Store struct {
	mu   sync.RWMutex
	data map[string]map[string][]byte // bucket -> key -> value
	gens map[string]uint64            // bucket -> monotonic version, bumped on Put/Delete

	dir      string
	opts     Options
	logMu    sync.Mutex
	logF     WALFile
	logW     *bufio.Writer
	logSize  int64
	closed   bool
	fsyncs   uint64
	tornTail int64 // bytes truncated from a torn WAL tail at open
	syncStop chan struct{}
	syncDone chan struct{}

	// CompactThreshold is the WAL size in bytes beyond which Put/Delete
	// triggers an automatic snapshot compaction. Zero means never.
	CompactThreshold int64
}

const (
	snapshotName = "snapshot.db"
	walName      = "wal.log"

	opPut    = byte(1)
	opDelete = byte(2)
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("db: store is closed")

// ErrCorrupt marks on-disk damage recovery cannot safely skip: a
// checksum-mismatched or garbled record in the middle of the WAL or
// anywhere in the snapshot. A torn *final* WAL record (the expected
// residue of a crash mid-append) is not corruption — it is truncated
// away and the store opens normally.
var ErrCorrupt = errors.New("db: corrupt record")

// Open opens (or creates) a store in the given directory with default
// options. If dir is empty the store is in-memory only.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith opens (or creates) a store in the given directory. On open,
// the snapshot is loaded (every record checksum-verified) and the WAL
// replayed, restoring all state written before the last shutdown or
// crash; a torn final WAL record is truncated, while mid-log corruption
// fails the open with an error wrapping ErrCorrupt.
func OpenWith(dir string, opts Options) (*Store, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	s := &Store{
		data:             make(map[string]map[string][]byte),
		gens:             make(map[string]uint64),
		dir:              dir,
		opts:             opts,
		CompactThreshold: 64 << 20,
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, walName)
	openWAL := opts.OpenWAL
	if openWAL == nil {
		openWAL = func(p string) (WALFile, error) {
			return os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		}
	}
	f, err := openWAL(path)
	if err != nil {
		return nil, fmt.Errorf("db: open wal: %w", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.logF = f
	s.logW = bufio.NewWriterSize(f, 1<<16)
	s.logSize = st.Size()
	if opts.Sync == SyncEveryInterval {
		s.syncStop = make(chan struct{})
		s.syncDone = make(chan struct{})
		go s.syncLoop()
	}
	return s, nil
}

// syncLoop fsyncs the WAL on a timer under SyncEveryInterval.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.syncStop:
			return
		case <-t.C:
			if err := s.Sync(); err != nil && !errors.Is(err, ErrClosed) {
				// Nothing to bubble the error to from here; the next
				// write or Close will surface persistent disk trouble.
				continue
			}
		}
	}
}

// SyncPolicy reports the store's configured fsync policy.
func (s *Store) SyncPolicy() SyncPolicy { return s.opts.Sync }

// Fsyncs reports how many WAL fsyncs the store has issued.
func (s *Store) Fsyncs() uint64 {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	return s.fsyncs
}

// RecoveredTornBytes reports how many trailing WAL bytes were truncated
// at open because of a torn final record (0 on a clean open).
func (s *Store) RecoveredTornBytes() int64 { return s.tornTail }

// Dir returns the directory backing the store ("" for in-memory).
func (s *Store) Dir() string { return s.dir }

// InMemory reports whether the store has no disk backing.
func (s *Store) InMemory() bool { return s.dir == "" }

func (s *Store) loadSnapshot() error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("db: open snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		rec, _, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// The snapshot is written whole and renamed into place, so
			// ANY unreadable record — torn included — is corruption.
			return fmt.Errorf("db: corrupt snapshot: %v: %w", err, ErrCorrupt)
		}
		if rec.op != opPut {
			return fmt.Errorf("db: corrupt snapshot: contains non-put record: %w", ErrCorrupt)
		}
		s.applyLocked(rec)
	}
}

// replayWAL re-applies the log on top of the snapshot. A record that
// could not be fully written before a crash necessarily sits at the
// tail; it is truncated away and the open succeeds. Damage anywhere
// else — a checksum mismatch or garbled header with valid data after
// it — means the disk lied, and the open fails with ErrCorrupt rather
// than silently dropping every record past the damage.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walName)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("db: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	total := st.Size()
	r := bufio.NewReaderSize(f, 1<<16)
	var off int64 // offset just past the last valid record
	for {
		rec, rlen, err := readRecord(r)
		if err == io.EOF {
			f.Close()
			return nil
		}
		if err != nil {
			torn := false
			switch {
			case errors.Is(err, errTornHeader), errors.Is(err, errTornBody):
				// A partial record can only be the unfinished tail.
				torn = true
			case errors.Is(err, errBadLength):
				// If the claimed record extends past EOF it was never
				// fully written; lengths pointing inside the file with
				// data beyond are damage.
				torn = off+rlen > total
			case errors.Is(err, errBadCRC):
				// A checksum mismatch on the very last record is a
				// partially-flushed tail; mid-log it is corruption.
				torn = off+rlen == total
			}
			f.Close()
			if !torn {
				return fmt.Errorf("db: wal record at offset %d: %v: %w", off, err, ErrCorrupt)
			}
			s.tornTail = total - off
			if err := os.Truncate(path, off); err != nil {
				return fmt.Errorf("db: truncate torn wal tail: %w", err)
			}
			return nil
		}
		s.applyLocked(rec)
		off += rlen
	}
}

type record struct {
	op          byte
	bucket, key string
	value       []byte
}

// record wire format: op(1) | crc32(4) | blen(4) | klen(4) | vlen(4) | bucket | key | value
func writeRecord(w io.Writer, rec record) error {
	var hdr [17]byte
	hdr[0] = rec.op
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(rec.bucket)))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(rec.key)))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(rec.value)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[5:])
	io.WriteString(crc, rec.bucket)
	io.WriteString(crc, rec.key)
	crc.Write(rec.value)
	binary.LittleEndian.PutUint32(hdr[1:], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, rec.bucket); err != nil {
		return err
	}
	if _, err := io.WriteString(w, rec.key); err != nil {
		return err
	}
	_, err := w.Write(rec.value)
	return err
}

// Read-side failure modes, classified by replayWAL into "torn tail"
// (recoverable) vs "corruption" (fatal).
var (
	errTornHeader = errors.New("db: torn record header")
	errTornBody   = errors.New("db: torn record body")
	errBadLength  = errors.New("db: implausible record lengths")
	errBadCRC     = errors.New("db: record checksum mismatch")
)

// readRecord reads one record. size is the full on-disk length the
// record claims (header included), valid whenever the header itself was
// readable — the replay loop uses it to decide whether a bad record
// could extend to EOF. A clean end of input returns io.EOF; a partial
// header returns errTornHeader.
func readRecord(r io.Reader) (rec record, size int64, err error) {
	var hdr [17]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, errTornHeader
		}
		return record{}, 0, err
	}
	rec = record{op: hdr[0]}
	want := binary.LittleEndian.Uint32(hdr[1:])
	blen := binary.LittleEndian.Uint32(hdr[5:])
	klen := binary.LittleEndian.Uint32(hdr[9:])
	vlen := binary.LittleEndian.Uint32(hdr[13:])
	size = 17 + int64(blen) + int64(klen) + int64(vlen)
	const maxLen = 1 << 30
	if blen > maxLen || klen > maxLen || vlen > maxLen {
		return record{}, size, errBadLength
	}
	buf := make([]byte, int(blen)+int(klen)+int(vlen))
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return record{}, size, errTornBody
		}
		return record{}, size, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[5:])
	crc.Write(buf)
	if crc.Sum32() != want {
		return record{}, size, errBadCRC
	}
	rec.bucket = string(buf[:blen])
	rec.key = string(buf[blen : blen+klen])
	if vlen > 0 {
		rec.value = buf[blen+klen:]
	}
	return rec, size, nil
}

func (s *Store) applyLocked(rec record) {
	switch rec.op {
	case opPut:
		b := s.data[rec.bucket]
		if b == nil {
			b = make(map[string][]byte)
			s.data[rec.bucket] = b
		}
		b[rec.key] = rec.value
	case opDelete:
		if b := s.data[rec.bucket]; b != nil {
			delete(b, rec.key)
		}
	}
	s.gens[rec.bucket]++
}

// Generation returns the bucket's monotonic version counter, bumped on
// every Put and Delete touching the bucket (including snapshot load and
// WAL replay). Internal caches key their validity on this value: a cache
// filled at generation g is coherent for as long as Generation still
// returns g.
func (s *Store) Generation(bucket string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gens[bucket]
}

func (s *Store) appendLog(rec record) error {
	if s.dir == "" {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := writeRecord(s.logW, rec); err != nil {
		return fmt.Errorf("db: append wal: %w", err)
	}
	if err := s.logW.Flush(); err != nil {
		return fmt.Errorf("db: flush wal: %w", err)
	}
	if s.opts.Sync == SyncAlways {
		// The write is acknowledged only once it is on stable storage:
		// this is what makes the SIGKILL chaos test hold.
		if err := s.logF.Sync(); err != nil {
			return fmt.Errorf("db: fsync wal: %w", err)
		}
		s.fsyncs++
	}
	s.logSize += int64(17 + len(rec.bucket) + len(rec.key) + len(rec.value))
	if s.CompactThreshold > 0 && s.logSize >= s.CompactThreshold {
		return s.compactLocked()
	}
	return nil
}

// Put stores value under (bucket, key), overwriting any previous value.
func (s *Store) Put(bucket, key string, value []byte) error {
	if bucket == "" || key == "" {
		return fmt.Errorf("db: bucket and key must be non-empty")
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.applyLocked(record{op: opPut, bucket: bucket, key: key, value: v})
	s.mu.Unlock()
	return s.appendLog(record{op: opPut, bucket: bucket, key: key, value: v})
}

// Get retrieves the value under (bucket, key). The returned slice is a
// copy and may be retained by the caller.
func (s *Store) Get(bucket, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.data[bucket]
	if b == nil {
		return nil, false
	}
	v, ok := b[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// View invokes fn with the stored value under (bucket, key) without
// copying it, and reports whether the key was present. The slice passed to
// fn aliases the store's internal state: it is valid only for the duration
// of fn and must not be modified or retained. fn must not call back into
// the store (the shared read lock is held across the call).
func (s *Store) View(bucket, key string, fn func(value []byte) error) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.data[bucket]
	if b == nil {
		return false, nil
	}
	v, ok := b[key]
	if !ok {
		return false, nil
	}
	return true, fn(v)
}

// Delete removes (bucket, key); deleting a missing key is not an error.
func (s *Store) Delete(bucket, key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.applyLocked(record{op: opDelete, bucket: bucket, key: key})
	s.mu.Unlock()
	return s.appendLog(record{op: opDelete, bucket: bucket, key: key})
}

// Keys returns the keys in bucket with the given prefix, sorted.
func (s *Store) Keys(bucket, prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.data[bucket]
	out := make([]string, 0, len(b))
	for k := range b {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Buckets returns the names of all non-empty buckets, sorted.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for name, b := range s.data {
		if len(b) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of keys in a bucket.
func (s *Store) Len(bucket string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[bucket])
}

// ForEach calls fn for every key/value in bucket, in sorted key order,
// stopping at the first error. The iteration sees one consistent snapshot
// of the bucket, taken under a single shared lock; fn itself runs outside
// the lock (so it may call back into the store) and receives a copy of
// each value.
func (s *Store) ForEach(bucket string, fn func(key string, value []byte) error) error {
	type kv struct {
		k string
		v []byte
	}
	s.mu.RLock()
	b := s.data[bucket]
	items := make([]kv, 0, len(b))
	for k, v := range b {
		cp := make([]byte, len(v))
		copy(cp, v)
		items = append(items, kv{k, cp})
	}
	s.mu.RUnlock()
	sort.Slice(items, func(i, j int) bool { return items[i].k < items[j].k })
	for _, it := range items {
		if err := fn(it.k, it.v); err != nil {
			return err
		}
	}
	return nil
}

// PutJSON marshals v as JSON and stores it.
func (s *Store) PutJSON(bucket, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("db: marshal %s/%s: %w", bucket, key, err)
	}
	return s.Put(bucket, key, data)
}

// GetJSON unmarshals the stored value into out; found=false if absent.
// The decode runs through View, so no intermediate copy of the stored
// bytes is made (encoding/json copies what it keeps).
func (s *Store) GetJSON(bucket, key string, out any) (bool, error) {
	found, err := s.View(bucket, key, func(data []byte) error {
		return json.Unmarshal(data, out)
	})
	if err != nil {
		return found, fmt.Errorf("db: unmarshal %s/%s: %w", bucket, key, err)
	}
	return found, nil
}

// Compact writes a fresh snapshot of the current state and truncates the
// WAL. Safe to call at any time.
func (s *Store) Compact() error {
	if s.dir == "" {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked requires logMu held.
func (s *Store) compactLocked() error {
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("db: create snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	s.mu.RLock()
	for bucket, kv := range s.data {
		for k, v := range kv {
			if err := writeRecord(w, record{op: opPut, bucket: bucket, key: k, value: v}); err != nil {
				s.mu.RUnlock()
				f.Close()
				os.Remove(tmp)
				return err
			}
		}
	}
	s.mu.RUnlock()
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return err
	}
	// Fsync the directory so the rename itself survives a power loss —
	// without it a crash can resurrect the old snapshot after the WAL
	// below has already been truncated.
	if d, err := os.Open(s.dir); err == nil {
		if err := d.Sync(); err != nil {
			d.Close()
			return fmt.Errorf("db: fsync dir: %w", err)
		}
		d.Close()
	}
	// Truncate the WAL: everything live is now in the snapshot.
	if err := s.logF.Truncate(0); err != nil {
		return err
	}
	if _, err := s.logF.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.logW.Reset(s.logF)
	s.logSize = 0
	return nil
}

// Sync flushes the WAL to the OS and fsyncs it.
func (s *Store) Sync() error {
	if s.dir == "" {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.logW.Flush(); err != nil {
		return err
	}
	if err := s.logF.Sync(); err != nil {
		return err
	}
	s.fsyncs++
	return nil
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	s.logMu.Lock()
	if s.closed {
		s.logMu.Unlock()
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.logMu.Unlock()
	if s.syncStop != nil {
		close(s.syncStop)
		<-s.syncDone
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.dir == "" {
		return nil
	}
	if err := s.logW.Flush(); err != nil {
		s.logF.Close()
		return err
	}
	if err := s.logF.Sync(); err != nil {
		s.logF.Close()
		return err
	}
	return s.logF.Close()
}
