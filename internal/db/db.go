// Package db implements the embedded persistent key/value database that
// backs the Clarens server's durable state: sessions, virtual-organization
// membership, access-control lists, stored proxies, and discovery caches.
//
// The paper (§2) requires that "session information is stored persistently
// on the server side", with the explicit benefit that "clients survive
// server failures or restarts transparently without having to
// re-authenticate". PClarens used on-disk databases behind Apache; we build
// the equivalent from scratch: a bucketed in-memory map with a CRC-guarded
// append-only write-ahead log and periodic snapshot compaction.
//
// Concurrency: all operations are safe for concurrent use. Reads take a
// shared lock on the index; writes serialize on the log.
package db

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is a bucketed key/value database. A Store opened with an empty
// directory path is purely in-memory (used in tests and benchmarks that
// don't exercise persistence).
type Store struct {
	mu   sync.RWMutex
	data map[string]map[string][]byte // bucket -> key -> value
	gens map[string]uint64            // bucket -> monotonic version, bumped on Put/Delete

	dir     string
	logMu   sync.Mutex
	logF    *os.File
	logW    *bufio.Writer
	logSize int64
	closed  bool

	// CompactThreshold is the WAL size in bytes beyond which Put/Delete
	// triggers an automatic snapshot compaction. Zero means never.
	CompactThreshold int64
}

const (
	snapshotName = "snapshot.db"
	walName      = "wal.log"

	opPut    = byte(1)
	opDelete = byte(2)
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("db: store is closed")

// Open opens (or creates) a store in the given directory. If dir is empty
// the store is in-memory only. On open, the snapshot is loaded and the WAL
// replayed, restoring all state written before the last shutdown or crash.
func Open(dir string) (*Store, error) {
	s := &Store{
		data:             make(map[string]map[string][]byte),
		gens:             make(map[string]uint64),
		dir:              dir,
		CompactThreshold: 64 << 20,
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: create dir: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("db: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s.logF = f
	s.logW = bufio.NewWriterSize(f, 1<<16)
	s.logSize = st.Size()
	return s, nil
}

// Dir returns the directory backing the store ("" for in-memory).
func (s *Store) Dir() string { return s.dir }

// InMemory reports whether the store has no disk backing.
func (s *Store) InMemory() bool { return s.dir == "" }

func (s *Store) loadSnapshot() error {
	f, err := os.Open(filepath.Join(s.dir, snapshotName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("db: open snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("db: corrupt snapshot: %w", err)
		}
		if rec.op != opPut {
			return fmt.Errorf("db: snapshot contains non-put record")
		}
		s.applyLocked(rec)
	}
}

func (s *Store) replayWAL() error {
	f, err := os.Open(filepath.Join(s.dir, walName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("db: open wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			// A torn final record after a crash is expected: stop replay
			// there, keeping everything before it.
			return nil
		}
		s.applyLocked(rec)
	}
}

type record struct {
	op          byte
	bucket, key string
	value       []byte
}

// record wire format: op(1) | crc32(4) | blen(4) | klen(4) | vlen(4) | bucket | key | value
func writeRecord(w io.Writer, rec record) error {
	var hdr [17]byte
	hdr[0] = rec.op
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(rec.bucket)))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(rec.key)))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(rec.value)))
	crc := crc32.NewIEEE()
	crc.Write(hdr[5:])
	io.WriteString(crc, rec.bucket)
	io.WriteString(crc, rec.key)
	crc.Write(rec.value)
	binary.LittleEndian.PutUint32(hdr[1:], crc.Sum32())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, rec.bucket); err != nil {
		return err
	}
	if _, err := io.WriteString(w, rec.key); err != nil {
		return err
	}
	_, err := w.Write(rec.value)
	return err
}

func readRecord(r io.Reader) (record, error) {
	var hdr [17]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, io.EOF
		}
		return record{}, err
	}
	rec := record{op: hdr[0]}
	want := binary.LittleEndian.Uint32(hdr[1:])
	blen := binary.LittleEndian.Uint32(hdr[5:])
	klen := binary.LittleEndian.Uint32(hdr[9:])
	vlen := binary.LittleEndian.Uint32(hdr[13:])
	const maxLen = 1 << 30
	if blen > maxLen || klen > maxLen || vlen > maxLen {
		return record{}, fmt.Errorf("db: implausible record lengths")
	}
	buf := make([]byte, int(blen)+int(klen)+int(vlen))
	if _, err := io.ReadFull(r, buf); err != nil {
		return record{}, err
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[5:])
	crc.Write(buf)
	if crc.Sum32() != want {
		return record{}, fmt.Errorf("db: record checksum mismatch")
	}
	rec.bucket = string(buf[:blen])
	rec.key = string(buf[blen : blen+klen])
	if vlen > 0 {
		rec.value = buf[blen+klen:]
	}
	return rec, nil
}

func (s *Store) applyLocked(rec record) {
	switch rec.op {
	case opPut:
		b := s.data[rec.bucket]
		if b == nil {
			b = make(map[string][]byte)
			s.data[rec.bucket] = b
		}
		b[rec.key] = rec.value
	case opDelete:
		if b := s.data[rec.bucket]; b != nil {
			delete(b, rec.key)
		}
	}
	s.gens[rec.bucket]++
}

// Generation returns the bucket's monotonic version counter, bumped on
// every Put and Delete touching the bucket (including snapshot load and
// WAL replay). Internal caches key their validity on this value: a cache
// filled at generation g is coherent for as long as Generation still
// returns g.
func (s *Store) Generation(bucket string) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gens[bucket]
}

func (s *Store) appendLog(rec record) error {
	if s.dir == "" {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := writeRecord(s.logW, rec); err != nil {
		return fmt.Errorf("db: append wal: %w", err)
	}
	if err := s.logW.Flush(); err != nil {
		return fmt.Errorf("db: flush wal: %w", err)
	}
	s.logSize += int64(17 + len(rec.bucket) + len(rec.key) + len(rec.value))
	if s.CompactThreshold > 0 && s.logSize >= s.CompactThreshold {
		return s.compactLocked()
	}
	return nil
}

// Put stores value under (bucket, key), overwriting any previous value.
func (s *Store) Put(bucket, key string, value []byte) error {
	if bucket == "" || key == "" {
		return fmt.Errorf("db: bucket and key must be non-empty")
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.applyLocked(record{op: opPut, bucket: bucket, key: key, value: v})
	s.mu.Unlock()
	return s.appendLog(record{op: opPut, bucket: bucket, key: key, value: v})
}

// Get retrieves the value under (bucket, key). The returned slice is a
// copy and may be retained by the caller.
func (s *Store) Get(bucket, key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.data[bucket]
	if b == nil {
		return nil, false
	}
	v, ok := b[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// View invokes fn with the stored value under (bucket, key) without
// copying it, and reports whether the key was present. The slice passed to
// fn aliases the store's internal state: it is valid only for the duration
// of fn and must not be modified or retained. fn must not call back into
// the store (the shared read lock is held across the call).
func (s *Store) View(bucket, key string, fn func(value []byte) error) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.data[bucket]
	if b == nil {
		return false, nil
	}
	v, ok := b[key]
	if !ok {
		return false, nil
	}
	return true, fn(v)
}

// Delete removes (bucket, key); deleting a missing key is not an error.
func (s *Store) Delete(bucket, key string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.applyLocked(record{op: opDelete, bucket: bucket, key: key})
	s.mu.Unlock()
	return s.appendLog(record{op: opDelete, bucket: bucket, key: key})
}

// Keys returns the keys in bucket with the given prefix, sorted.
func (s *Store) Keys(bucket, prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b := s.data[bucket]
	out := make([]string, 0, len(b))
	for k := range b {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Buckets returns the names of all non-empty buckets, sorted.
func (s *Store) Buckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.data))
	for name, b := range s.data {
		if len(b) > 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of keys in a bucket.
func (s *Store) Len(bucket string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data[bucket])
}

// ForEach calls fn for every key/value in bucket, in sorted key order,
// stopping at the first error. The iteration sees one consistent snapshot
// of the bucket, taken under a single shared lock; fn itself runs outside
// the lock (so it may call back into the store) and receives a copy of
// each value.
func (s *Store) ForEach(bucket string, fn func(key string, value []byte) error) error {
	type kv struct {
		k string
		v []byte
	}
	s.mu.RLock()
	b := s.data[bucket]
	items := make([]kv, 0, len(b))
	for k, v := range b {
		cp := make([]byte, len(v))
		copy(cp, v)
		items = append(items, kv{k, cp})
	}
	s.mu.RUnlock()
	sort.Slice(items, func(i, j int) bool { return items[i].k < items[j].k })
	for _, it := range items {
		if err := fn(it.k, it.v); err != nil {
			return err
		}
	}
	return nil
}

// PutJSON marshals v as JSON and stores it.
func (s *Store) PutJSON(bucket, key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("db: marshal %s/%s: %w", bucket, key, err)
	}
	return s.Put(bucket, key, data)
}

// GetJSON unmarshals the stored value into out; found=false if absent.
// The decode runs through View, so no intermediate copy of the stored
// bytes is made (encoding/json copies what it keeps).
func (s *Store) GetJSON(bucket, key string, out any) (bool, error) {
	found, err := s.View(bucket, key, func(data []byte) error {
		return json.Unmarshal(data, out)
	})
	if err != nil {
		return found, fmt.Errorf("db: unmarshal %s/%s: %w", bucket, key, err)
	}
	return found, nil
}

// Compact writes a fresh snapshot of the current state and truncates the
// WAL. Safe to call at any time.
func (s *Store) Compact() error {
	if s.dir == "" {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked requires logMu held.
func (s *Store) compactLocked() error {
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("db: create snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	s.mu.RLock()
	for bucket, kv := range s.data {
		for k, v := range kv {
			if err := writeRecord(w, record{op: opPut, bucket: bucket, key: k, value: v}); err != nil {
				s.mu.RUnlock()
				f.Close()
				os.Remove(tmp)
				return err
			}
		}
	}
	s.mu.RUnlock()
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return err
	}
	// Truncate the WAL: everything live is now in the snapshot.
	if err := s.logF.Truncate(0); err != nil {
		return err
	}
	if _, err := s.logF.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.logW.Reset(s.logF)
	s.logSize = 0
	return nil
}

// Sync flushes the WAL to the OS and fsyncs it.
func (s *Store) Sync() error {
	if s.dir == "" {
		return nil
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.logW.Flush(); err != nil {
		return err
	}
	return s.logF.Sync()
}

// Close flushes and closes the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	if err := s.logW.Flush(); err != nil {
		s.logF.Close()
		return err
	}
	if err := s.logF.Sync(); err != nil {
		s.logF.Close()
		return err
	}
	return s.logF.Close()
}
