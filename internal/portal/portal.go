// Package portal implements the Clarens Grid-portal layer (paper §3): "a
// series of static web pages that embed JavaScript ... to handle
// communication and web service calls using dynamic HTML", served by the
// framework itself over HTTP GET so that "users need not install any
// additional software apart from a web browser".
//
// The pages call the same JSON-RPC endpoint every other client uses —
// the portal is not a separate API surface. Functionality mirrors the
// paper's list: browsing remote files, access-control management,
// virtual-organization management, service discovery, and job submission
// (via the shell service).
package portal

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"clarens/internal/core"
)

// Service serves the portal pages. It is not a core.Service (it has no
// RPC methods of its own); it mounts GET handlers on the server mux.
type Service struct {
	srv    *core.Server
	prefix string
}

// New creates the portal bound to a URL prefix (normally "/portal/").
func New(srv *core.Server, prefix string) *Service {
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &Service{srv: srv, prefix: prefix}
}

// Mount attaches the portal pages to the server mux.
func (p *Service) Mount() {
	mux := p.srv.Mux()
	mux.HandleFunc(p.prefix, p.servePage)
}

// Pages returns the available page names.
func Pages() []string {
	names := make([]string, 0, len(pages))
	for name := range pages {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (p *Service) servePage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "portal pages are GET-only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, p.prefix)
	if name == "" {
		name = "index"
	}
	name = strings.TrimSuffix(name, ".html")
	body, ok := pages[name]
	if !ok {
		http.NotFound(w, r)
		return
	}
	// The caller's identity is displayed in the banner; the pages
	// themselves re-authenticate per RPC call via the session cookie.
	dn, _ := p.srv.IdentifyRequest(r)
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	page := strings.ReplaceAll(pageShell, "{{TITLE}}", "Clarens Portal — "+name)
	page = strings.ReplaceAll(page, "{{DN}}", htmlEscape(dn.String()))
	page = strings.ReplaceAll(page, "{{NAV}}", navHTML(p.prefix))
	page = strings.ReplaceAll(page, "{{BODY}}", body)
	fmt.Fprint(w, page)
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func navHTML(prefix string) string {
	var b strings.Builder
	for _, name := range Pages() {
		fmt.Fprintf(&b, `<a href="%s%s">%s</a> `, prefix, name, name)
	}
	return b.String()
}

// pageShell is the common chrome: a minimal JSON-RPC client over
// XMLHttpRequest (the "dynamic HTML" technique of the paper's era) plus
// the navigation bar.
const pageShell = `<!DOCTYPE html>
<html><head><title>{{TITLE}}</title>
<style>
body { font-family: sans-serif; margin: 2em; }
pre { background: #f4f4f4; padding: 1em; }
table { border-collapse: collapse; } td, th { border: 1px solid #999; padding: 4px 8px; }
</style>
<script>
// Minimal JSON-RPC client used by all portal components. The session
// cookie (clarens_session) authenticates each call server-side.
function rpc(method, params, done) {
  var xhr = new XMLHttpRequest();
  xhr.open("POST", "/rpc", true);
  xhr.setRequestHeader("Content-Type", "application/json");
  xhr.onreadystatechange = function () {
    if (xhr.readyState !== 4) return;
    var resp = JSON.parse(xhr.responseText);
    done(resp.error || null, resp.result);
  };
  xhr.send(JSON.stringify({jsonrpc: "2.0", method: method, params: params || [], id: 1}));
}
function show(id, value) {
  document.getElementById(id).textContent =
    typeof value === "string" ? value : JSON.stringify(value, null, 2);
}
</script>
</head><body>
<h1>{{TITLE}}</h1>
<p>Authenticated as: <code>{{DN}}</code></p>
<nav>{{NAV}}</nav>
<hr>
{{BODY}}
</body></html>
`

// pages holds each portal component's body (paper §3's functionality
// list). Each is plain HTML + calls through the rpc() helper.
var pages = map[string]string{
	"index": `
<p>This Clarens server hosts the following web-service modules. The pages
above exercise them from the browser, exactly as the JavaScript portal in
the paper did.</p>
<button onclick="rpc('system.list_methods', [], function(e, r){ show('out', e || r); })">
List server methods</button>
<pre id="out"></pre>`,

	"files": `
<p>Remote file browser ("a look and feel similar to conventional file
browsers"). Enter a directory and list it; click-through uses file.ls and
file.read on the server's virtual root.</p>
<input id="dir" value="/" size="40">
<button onclick="rpc('file.ls', [document.getElementById('dir').value],
  function(e, r){ show('out', e || r); })">List</button>
<button onclick="rpc('file.read', [document.getElementById('dir').value, 0, 4096],
  function(e, r){ show('out', e || r); })">Read (first 4 KiB)</button>
<pre id="out"></pre>`,

	"vo": `
<p>Virtual-organization management: groups, members, administrators.</p>
<button onclick="rpc('vo.groups', [], function(e, r){ show('out', e || r); })">List groups</button>
<button onclick="rpc('vo.my_groups', [], function(e, r){ show('out', e || r); })">My groups</button>
<br><input id="group" placeholder="group name" >
<input id="dn" placeholder="/O=org/OU=People/CN=Name" size="40">
<button onclick="rpc('vo.add_member', [document.getElementById('group').value, document.getElementById('dn').value],
  function(e, r){ show('out', e || r); })">Add member</button>
<pre id="out"></pre>`,

	"acl": `
<p>Access-control management: inspect and test method ACLs.</p>
<input id="path" placeholder="module.method" >
<button onclick="rpc('acl.check', [document.getElementById('path').value],
  function(e, r){ show('out', e || r); })">Check my access</button>
<pre id="out"></pre>`,

	"discovery": `
<p>Service discovery: query the aggregated view of the discovery network
and navigate to servers by the returned URL.</p>
<input id="pattern" value="*" >
<button onclick="rpc('discovery.find', [document.getElementById('pattern').value],
  function(e, r){ show('out', e || r); })">Find services</button>
<button onclick="rpc('discovery.servers', [], function(e, r){ show('out', e || r); })">List servers</button>
<pre id="out"></pre>`,

	"jobs": `
<p>Job submission: run a command in your shell-service sandbox (the
paper's job-submission portal component fronted the same mechanism).</p>
<input id="cmd" value="echo hello from the grid" size="50">
<button onclick="rpc('shell.cmd', [document.getElementById('cmd').value],
  function(e, r){ show('out', e || r); })">Submit</button>
<button onclick="rpc('shell.cmd_info', [], function(e, r){ show('out', e || r); })">Sandbox info</button>
<pre id="out"></pre>`,
}
