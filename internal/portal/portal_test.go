package portal

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clarens/internal/core"
	"clarens/internal/pki"
)

func newFixture(t *testing.T) *core.Server {
	t.Helper()
	srv, err := core.NewServer(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	New(srv, "/portal/").Mount()
	return srv
}

func get(t *testing.T, srv *core.Server, path string, headers map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	return w
}

func TestAllPagesServe(t *testing.T) {
	srv := newFixture(t)
	for _, name := range Pages() {
		w := get(t, srv, "/portal/"+name, nil)
		if w.Code != http.StatusOK {
			t.Errorf("page %s = %d", name, w.Code)
		}
		body := w.Body.String()
		if !strings.Contains(body, "<html>") || !strings.Contains(body, "function rpc(") {
			t.Errorf("page %s missing shell/js", name)
		}
	}
}

func TestIndexAliases(t *testing.T) {
	srv := newFixture(t)
	for _, p := range []string{"/portal/", "/portal/index", "/portal/index.html"} {
		if w := get(t, srv, p, nil); w.Code != http.StatusOK {
			t.Errorf("%s = %d", p, w.Code)
		}
	}
}

func TestUnknownPage404(t *testing.T) {
	srv := newFixture(t)
	if w := get(t, srv, "/portal/nonexistent", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown page = %d", w.Code)
	}
}

func TestPostRejected(t *testing.T) {
	srv := newFixture(t)
	req := httptest.NewRequest(http.MethodPost, "/portal/index", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST portal = %d", w.Code)
	}
}

func TestBannerShowsIdentity(t *testing.T) {
	srv := newFixture(t)
	dn := pki.MustParseDN("/O=grid/OU=People/CN=Browser User")
	sess, err := srv.NewSessionFor(dn)
	if err != nil {
		t.Fatal(err)
	}
	w := get(t, srv, "/portal/index", map[string]string{core.SessionHeader: sess.ID})
	if !strings.Contains(w.Body.String(), "CN=Browser User") {
		t.Error("authenticated DN missing from banner")
	}
	// Anonymous shows empty identity, not an error.
	w = get(t, srv, "/portal/index", nil)
	if w.Code != http.StatusOK {
		t.Errorf("anonymous portal = %d", w.Code)
	}
}

func TestBannerEscapesDN(t *testing.T) {
	if htmlEscape(`<script>"x"&`) != "&lt;script&gt;&quot;x&quot;&amp;" {
		t.Error("htmlEscape broken")
	}
}

func TestPagesCoverPaperFunctionality(t *testing.T) {
	// Paper §3: "browsing remote files, access control management, virtual
	// organization management, service discovery, job submission".
	want := []string{"files", "acl", "vo", "discovery", "jobs", "index"}
	got := Pages()
	if len(got) != len(want) {
		t.Fatalf("pages = %v", got)
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if g == w {
				found = true
			}
		}
		if !found {
			t.Errorf("page %q missing", w)
		}
	}
}

func TestNavLinksPresent(t *testing.T) {
	srv := newFixture(t)
	w := get(t, srv, "/portal/index", nil)
	for _, name := range Pages() {
		if !strings.Contains(w.Body.String(), `href="/portal/`+name+`"`) {
			t.Errorf("nav link for %s missing", name)
		}
	}
}
