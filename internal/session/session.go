// Package session implements the Clarens server-side session store
// (paper §2): because HTTP is stateless, "session information is stored
// persistently on the server side", which "has the positive side-effect of
// allowing clients to survive server failures or restarts transparently
// without having to re-authenticate themselves".
//
// A session binds an opaque random identifier to the authenticated DN and
// an expiry. Sessions live in the db store, so reopening the store after a
// restart restores them; the paper's Figure 4 measurement exercises the
// per-request session lookup this package serves ("checking whether the
// client credentials are associated with a current session").
package session

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"clarens/internal/db"
	"clarens/internal/pki"
)

const bucket = "sessions"

// Session is the persistent record of an authenticated client.
type Session struct {
	ID      string    `json:"id"`
	DN      string    `json:"dn"`
	Created time.Time `json:"created"`
	Expires time.Time `json:"expires"`
	// Attrs holds service state attached to the session: the shell
	// service's sandbox path, the proxy service's attached proxy ID, etc.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// DNParsed parses the session's DN.
func (s *Session) DNParsed() pki.DN {
	dn, err := pki.ParseDN(s.DN)
	if err != nil {
		return nil
	}
	return dn
}

// Expired reports whether the session has passed its expiry.
func (s *Session) Expired(now time.Time) bool { return now.After(s.Expires) }

// Manager creates, validates, renews, and purges sessions.
type Manager struct {
	store *db.Store
	ttl   time.Duration

	mu sync.Mutex // serializes read-modify-write cycles (Touch, SetAttr)

	now func() time.Time // test seam
}

// NewManager creates a session manager with the given default TTL
// (non-positive means 12h, the lifetime of a typical grid proxy).
func NewManager(store *db.Store, ttl time.Duration) *Manager {
	if ttl <= 0 {
		ttl = 12 * time.Hour
	}
	return &Manager{store: store, ttl: ttl, now: time.Now}
}

// TTL returns the manager's default session lifetime.
func (m *Manager) TTL() time.Duration { return m.ttl }

// newID returns a 128-bit random hex token.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("session: entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// New creates and persists a session for dn.
func (m *Manager) New(dn pki.DN) (*Session, error) {
	if dn.IsZero() {
		return nil, fmt.Errorf("session: cannot create a session for an anonymous caller")
	}
	id, err := newID()
	if err != nil {
		return nil, err
	}
	now := m.now()
	s := &Session{
		ID:      id,
		DN:      dn.String(),
		Created: now,
		Expires: now.Add(m.ttl),
		Attrs:   map[string]string{},
	}
	if err := m.store.PutJSON(bucket, id, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Get returns the session if it exists and has not expired. Expired
// sessions are deleted on access.
func (m *Manager) Get(id string) (*Session, bool) {
	var s Session
	found, err := m.store.GetJSON(bucket, id, &s)
	if err != nil || !found {
		return nil, false
	}
	if s.Expired(m.now()) {
		m.store.Delete(bucket, id)
		return nil, false
	}
	return &s, true
}

// Touch extends the session's expiry by the manager TTL from now; used to
// keep active clients logged in.
func (m *Manager) Touch(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session: %q not found or expired", id)
	}
	s.Expires = m.now().Add(m.ttl)
	return m.store.PutJSON(bucket, id, s)
}

// SetAttr sets a service attribute on the session.
func (m *Manager) SetAttr(id, key, value string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session: %q not found or expired", id)
	}
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[key] = value
	return m.store.PutJSON(bucket, id, s)
}

// Delete removes a session (logout).
func (m *Manager) Delete(id string) error {
	return m.store.Delete(bucket, id)
}

// Purge removes all expired sessions and returns how many were removed.
func (m *Manager) Purge() int {
	now := m.now()
	n := 0
	for _, id := range m.store.Keys(bucket, "") {
		var s Session
		found, err := m.store.GetJSON(bucket, id, &s)
		if err != nil || !found {
			continue
		}
		if s.Expired(now) {
			if m.store.Delete(bucket, id) == nil {
				n++
			}
		}
	}
	return n
}

// Count returns the number of stored sessions, including not-yet-purged
// expired ones.
func (m *Manager) Count() int { return m.store.Len(bucket) }

// ForDN returns all live sessions belonging to dn; used by the proxy
// service to attach a renewed proxy to existing sessions (paper §2.6).
func (m *Manager) ForDN(dn pki.DN) []*Session {
	var out []*Session
	want := dn.String()
	now := m.now()
	for _, id := range m.store.Keys(bucket, "") {
		var s Session
		found, err := m.store.GetJSON(bucket, id, &s)
		if err != nil || !found || s.Expired(now) {
			continue
		}
		if s.DN == want {
			out = append(out, &s)
		}
	}
	return out
}
