// Package session implements the Clarens server-side session store
// (paper §2): because HTTP is stateless, "session information is stored
// persistently on the server side", which "has the positive side-effect of
// allowing clients to survive server failures or restarts transparently
// without having to re-authenticate themselves".
//
// A session binds an opaque random identifier to the authenticated DN and
// an expiry. Sessions live in the db store, so reopening the store after a
// restart restores them; the paper's Figure 4 measurement exercises the
// per-request session lookup this package serves ("checking whether the
// client credentials are associated with a current session").
package session

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"clarens/internal/db"
	"clarens/internal/pki"
)

const bucket = "sessions"

// Session is the persistent record of an authenticated client.
type Session struct {
	ID      string    `json:"id"`
	DN      string    `json:"dn"`
	Created time.Time `json:"created"`
	Expires time.Time `json:"expires"`
	// Attrs holds service state attached to the session: the shell
	// service's sandbox path, the proxy service's attached proxy ID, etc.
	Attrs map[string]string `json:"attrs,omitempty"`

	// parsed is the pre-parsed form of DN, populated when the manager
	// caches a snapshot so the per-request identity resolution does no
	// DN parsing. Never written after the snapshot is published.
	parsed pki.DN
}

// DNParsed returns the session's DN in parsed form. Sessions served from
// the manager cache carry it pre-parsed; the fallback parse covers
// Session values constructed elsewhere (tests, direct literals).
func (s *Session) DNParsed() pki.DN {
	if s.parsed != nil {
		return s.parsed
	}
	dn, err := pki.ParseDN(s.DN)
	if err != nil {
		return nil
	}
	return dn
}

// Expired reports whether the session has passed its expiry.
func (s *Session) Expired(now time.Time) bool { return now.After(s.Expires) }

// Manager creates, validates, renews, and purges sessions.
//
// Get is the per-request hot path (access check 1 of the paper's Figure 4
// measurement), so the manager keeps an in-memory cache of immutable
// *Session snapshots in front of the store: a hit costs one map lookup and
// zero JSON work. Cached snapshots are never mutated — Touch and SetAttr
// write a fresh copy and swap it in — so a *Session returned by Get is
// safe to read concurrently but must not be modified by callers.
type Manager struct {
	store *db.Store
	ttl   time.Duration

	mu sync.Mutex // serializes read-modify-write cycles (Touch, SetAttr)

	// cacheMu guards cache. Fallback loads and evictions also hold it
	// across their store access, so a Delete can never interleave with a
	// concurrent miss-fill in a way that resurrects a dead session.
	cacheMu sync.RWMutex
	cache   map[string]*Session

	now func() time.Time // test seam
}

// NewManager creates a session manager with the given default TTL
// (non-positive means 12h, the lifetime of a typical grid proxy).
func NewManager(store *db.Store, ttl time.Duration) *Manager {
	if ttl <= 0 {
		ttl = 12 * time.Hour
	}
	return &Manager{store: store, ttl: ttl, cache: make(map[string]*Session), now: time.Now}
}

// TTL returns the manager's default session lifetime.
func (m *Manager) TTL() time.Duration { return m.ttl }

// newID returns a 128-bit random hex token.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("session: entropy: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// New creates and persists a session for dn.
func (m *Manager) New(dn pki.DN) (*Session, error) {
	if dn.IsZero() {
		return nil, fmt.Errorf("session: cannot create a session for an anonymous caller")
	}
	id, err := newID()
	if err != nil {
		return nil, err
	}
	now := m.now()
	s := &Session{
		ID:      id,
		DN:      dn.String(),
		Created: now,
		Expires: now.Add(m.ttl),
		Attrs:   map[string]string{},
		parsed:  dn,
	}
	if err := m.store.PutJSON(bucket, id, s); err != nil {
		return nil, err
	}
	m.cachePut(s)
	return s, nil
}

// cachePut installs (or replaces) the cached snapshot for s.
func (m *Manager) cachePut(s *Session) {
	m.cacheMu.Lock()
	m.cache[s.ID] = s
	m.cacheMu.Unlock()
}

// evict removes the session from the store and the cache atomically with
// respect to concurrent miss-fills.
func (m *Manager) evict(id string) error {
	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	err := m.store.Delete(bucket, id)
	delete(m.cache, id)
	return err
}

// Get returns the session if it exists and has not expired. Expired
// sessions are deleted on access. The returned *Session is a shared
// immutable snapshot: read it freely, mutate it only through Touch and
// SetAttr.
func (m *Manager) Get(id string) (*Session, bool) {
	if id == "" {
		return nil, false
	}
	m.cacheMu.RLock()
	s := m.cache[id]
	m.cacheMu.RUnlock()
	if s == nil {
		// Miss: load from the store (restart recovery path). The write
		// lock spans the store read so a concurrent evict cannot be
		// overwritten by a stale fill.
		m.cacheMu.Lock()
		if s = m.cache[id]; s == nil {
			var loaded Session
			found, err := m.store.GetJSON(bucket, id, &loaded)
			if err != nil || !found {
				m.cacheMu.Unlock()
				return nil, false
			}
			loaded.parsed, _ = pki.ParseDN(loaded.DN)
			s = &loaded
			m.cache[id] = s
		}
		m.cacheMu.Unlock()
	}
	if s.Expired(m.now()) {
		m.evict(id)
		return nil, false
	}
	return s, true
}

// Touch extends the session's expiry by the manager TTL from now; used to
// keep active clients logged in.
func (m *Manager) Touch(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session: %q not found or expired", id)
	}
	next := *s
	next.Expires = m.now().Add(m.ttl)
	if err := m.store.PutJSON(bucket, id, &next); err != nil {
		return err
	}
	m.cachePut(&next)
	return nil
}

// SetAttr sets a service attribute on the session.
func (m *Manager) SetAttr(id, key, value string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("session: %q not found or expired", id)
	}
	next := *s
	next.Attrs = make(map[string]string, len(s.Attrs)+1)
	for k, v := range s.Attrs {
		next.Attrs[k] = v
	}
	next.Attrs[key] = value
	if err := m.store.PutJSON(bucket, id, &next); err != nil {
		return err
	}
	m.cachePut(&next)
	return nil
}

// Delete removes a session (logout). The cache entry goes with it, so the
// very next Get misses — no resurrected sessions.
func (m *Manager) Delete(id string) error {
	return m.evict(id)
}

// Purge removes all expired sessions and returns how many were removed.
// The scan walks one consistent snapshot of the bucket (db.ForEach) rather
// than re-locking the store per key.
func (m *Manager) Purge() int {
	now := m.now()
	n := 0
	m.store.ForEach(bucket, func(id string, data []byte) error {
		var s Session
		if err := json.Unmarshal(data, &s); err != nil {
			return nil
		}
		if s.Expired(now) {
			if m.evict(id) == nil {
				n++
			}
		}
		return nil
	})
	return n
}

// Count returns the number of stored sessions, including not-yet-purged
// expired ones.
func (m *Manager) Count() int { return m.store.Len(bucket) }

// ForDN returns all live sessions belonging to dn; used by the proxy
// service to attach a renewed proxy to existing sessions (paper §2.6).
// Like Purge, it walks one consistent snapshot under a single lock.
func (m *Manager) ForDN(dn pki.DN) []*Session {
	var out []*Session
	want := dn.String()
	now := m.now()
	m.store.ForEach(bucket, func(id string, data []byte) error {
		var s Session
		if err := json.Unmarshal(data, &s); err != nil {
			return nil
		}
		if !s.Expired(now) && s.DN == want {
			out = append(out, &s)
		}
		return nil
	})
	return out
}
