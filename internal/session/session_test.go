package session

import (
	"testing"
	"time"

	"clarens/internal/db"
	"clarens/internal/pki"
)

var jo = pki.MustParseDN("/O=grid/OU=People/CN=Jo")

func newManager(t *testing.T, ttl time.Duration) (*Manager, *db.Store) {
	t.Helper()
	store, err := db.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return NewManager(store, ttl), store
}

func TestNewAndGet(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	s, err := m.New(jo)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ID) != 32 {
		t.Errorf("session ID length = %d, want 32 hex chars", len(s.ID))
	}
	got, ok := m.Get(s.ID)
	if !ok {
		t.Fatal("session not found")
	}
	if got.DN != jo.String() {
		t.Errorf("DN = %q", got.DN)
	}
	if !got.DNParsed().Equal(jo) {
		t.Errorf("DNParsed = %v", got.DNParsed())
	}
	if _, ok := m.Get("nonexistent"); ok {
		t.Error("missing session found")
	}
}

func TestAnonymousRejected(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	if _, err := m.New(nil); err == nil {
		t.Error("anonymous session must be rejected")
	}
}

func TestIDsUnique(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		s, err := m.New(jo)
		if err != nil {
			t.Fatal(err)
		}
		if seen[s.ID] {
			t.Fatal("duplicate session ID")
		}
		seen[s.ID] = true
	}
}

func TestExpiry(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	now := time.Now()
	m.now = func() time.Time { return now }
	s, _ := m.New(jo)
	if _, ok := m.Get(s.ID); !ok {
		t.Fatal("fresh session should be live")
	}
	now = now.Add(2 * time.Hour)
	if _, ok := m.Get(s.ID); ok {
		t.Error("expired session should not be returned")
	}
	// Expired session was deleted on access.
	if m.Count() != 0 {
		t.Errorf("expired session not cleaned up, count = %d", m.Count())
	}
}

func TestTouchExtends(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	now := time.Now()
	m.now = func() time.Time { return now }
	s, _ := m.New(jo)
	now = now.Add(50 * time.Minute)
	if err := m.Touch(s.ID); err != nil {
		t.Fatal(err)
	}
	now = now.Add(50 * time.Minute) // total 100min > original 60min TTL
	if _, ok := m.Get(s.ID); !ok {
		t.Error("touched session should still be live")
	}
	if err := m.Touch("missing"); err == nil {
		t.Error("touching a missing session must error")
	}
}

func TestAttrs(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	s, _ := m.New(jo)
	if err := m.SetAttr(s.ID, "sandbox", "/sand/jo"); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Get(s.ID)
	if got.Attrs["sandbox"] != "/sand/jo" {
		t.Errorf("attrs = %v", got.Attrs)
	}
	if err := m.SetAttr("missing", "k", "v"); err == nil {
		t.Error("SetAttr on missing session must error")
	}
}

func TestDelete(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	s, _ := m.New(jo)
	if err := m.Delete(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(s.ID); ok {
		t.Error("deleted session still live")
	}
}

func TestPurge(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	now := time.Now()
	m.now = func() time.Time { return now }
	for i := 0; i < 5; i++ {
		m.New(jo)
	}
	now = now.Add(30 * time.Minute)
	fresh, _ := m.New(jo)
	now = now.Add(45 * time.Minute) // first 5 expired, fresh still live
	if n := m.Purge(); n != 5 {
		t.Errorf("Purge = %d, want 5", n)
	}
	if _, ok := m.Get(fresh.ID); !ok {
		t.Error("live session purged")
	}
	if m.Count() != 1 {
		t.Errorf("Count = %d, want 1", m.Count())
	}
}

// TestSessionSurvivesRestart is the paper's §2 claim: sessions persist so
// clients survive server restarts without re-authenticating (experiment A6).
func TestSessionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(store, time.Hour)
	s, err := m.New(jo)
	if err != nil {
		t.Fatal(err)
	}
	store.Close() // server shutdown

	store2, err := db.Open(dir) // server restart
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	m2 := NewManager(store2, time.Hour)
	got, ok := m2.Get(s.ID)
	if !ok {
		t.Fatal("session lost across restart — paper §2 requires persistence")
	}
	if got.DN != jo.String() {
		t.Errorf("DN after restart = %q", got.DN)
	}
}

func TestForDN(t *testing.T) {
	m, _ := newManager(t, time.Hour)
	other := pki.MustParseDN("/O=grid/OU=People/CN=Other")
	m.New(jo)
	m.New(jo)
	m.New(other)
	if got := len(m.ForDN(jo)); got != 2 {
		t.Errorf("ForDN(jo) = %d, want 2", got)
	}
	if got := len(m.ForDN(other)); got != 1 {
		t.Errorf("ForDN(other) = %d, want 1", got)
	}
}

func TestDefaultTTL(t *testing.T) {
	m, _ := newManager(t, 0)
	if m.TTL() != 12*time.Hour {
		t.Errorf("default TTL = %v", m.TTL())
	}
}
