package proxysvc

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
)

var (
	adminDN = pki.MustParseDN("/O=caltech/OU=People/CN=Admin")
	userDN  = pki.MustParseDN("/O=grid/OU=People/CN=Proxy User")
)

func TestSealOpenRoundTrip(t *testing.T) {
	sealed, err := seal("s3cret", []byte("proxy pem bytes"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := open("s3cret", sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "proxy pem bytes" {
		t.Errorf("round trip = %q", pt)
	}
	if _, err := open("wrong", sealed); err == nil {
		t.Error("wrong password must fail")
	}
	if _, err := open("s3cret", sealed[:10]); err == nil {
		t.Error("truncated blob must fail")
	}
	// Tampering is detected (GCM).
	sealed[len(sealed)-1] ^= 1
	if _, err := open("s3cret", sealed); err == nil {
		t.Error("tampered blob must fail")
	}
}

func TestSealIsSalted(t *testing.T) {
	a, _ := seal("pw", []byte("same"))
	b, _ := seal("pw", []byte("same"))
	if bytes.Equal(a, b) {
		t.Error("two seals of the same plaintext must differ (random salt/nonce)")
	}
}

func TestPBKDF2KnownProperties(t *testing.T) {
	k1 := pbkdf2Key([]byte("pw"), []byte("salt"), 10, 32)
	k2 := pbkdf2Key([]byte("pw"), []byte("salt"), 10, 32)
	if !bytes.Equal(k1, k2) {
		t.Error("PBKDF2 must be deterministic")
	}
	k3 := pbkdf2Key([]byte("pw"), []byte("other"), 10, 32)
	if bytes.Equal(k1, k3) {
		t.Error("different salt must give a different key")
	}
	k4 := pbkdf2Key([]byte("pw"), []byte("salt"), 11, 32)
	if bytes.Equal(k1, k4) {
		t.Error("different iteration count must give a different key")
	}
	if len(pbkdf2Key([]byte("pw"), []byte("salt"), 2, 48)) != 48 {
		t.Error("multi-block output length wrong")
	}
}

type fixture struct {
	srv   *core.Server
	svc   *Service
	ca    *pki.CA
	user  *pki.Identity
	proxy *pki.Identity
	pem   []byte
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	srv, err := core.NewServer(core.Config{AdminDNs: []string{adminDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	svc := New(srv)
	if err := srv.Register(svc); err != nil {
		t.Fatal(err)
	}
	ca, _ := pki.NewCA(pki.MustParseDN("/O=testgrid/CN=CA"))
	user, err := ca.IssueUser(userDN, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := pki.NewProxy(user, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	keyPEM, err := proxy.KeyPEM()
	if err != nil {
		t.Fatal(err)
	}
	pem := append(proxy.ChainPEM(), keyPEM...)
	return &fixture{srv: srv, svc: svc, ca: ca, user: user, proxy: proxy, pem: pem}
}

func (f *fixture) call(t *testing.T, sessID string, method string, params ...any) *rpc.Response {
	t.Helper()
	var buf bytes.Buffer
	codec := xmlrpc.New()
	if err := codec.EncodeRequest(&buf, &rpc.Request{Method: method, Params: params}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/rpc", &buf)
	req.Header.Set("Content-Type", "text/xml")
	if sessID != "" {
		req.Header.Set(core.SessionHeader, sessID)
	}
	w := httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(w, req)
	resp, err := codec.DecodeResponse(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestStoreAndLoginFlow(t *testing.T) {
	f := newFixture(t)
	// Anonymous store of a proxy (bootstrap flow), then login by DN+password.
	resp := f.call(t, "", "proxy.store", f.pem, "hunter2")
	if resp.Fault != nil {
		t.Fatalf("store: %v", resp.Fault)
	}
	resp = f.call(t, "", "proxy.login", userDN.String(), "hunter2")
	if resp.Fault != nil {
		t.Fatalf("login: %v", resp.Fault)
	}
	token := resp.Result.(string)

	// The session works and carries the attached-proxy attribute.
	resp = f.call(t, token, "system.whoami")
	if !rpc.Equal(resp.Result, userDN.String()) {
		t.Errorf("whoami after proxy login = %#v", resp.Result)
	}
	sess, ok := f.srv.Sessions().Get(token)
	if !ok || sess.Attrs[AttachedProxyAttr] != userDN.String() {
		t.Errorf("session attrs = %#v", sess)
	}
}

func TestLoginWrongPassword(t *testing.T) {
	f := newFixture(t)
	f.call(t, "", "proxy.store", f.pem, "right")
	resp := f.call(t, "", "proxy.login", userDN.String(), "wrong")
	if resp.Fault == nil {
		t.Error("wrong password must not log in")
	}
	resp = f.call(t, "", "proxy.login", "/O=никто/CN=X", "right")
	if resp.Fault == nil {
		t.Error("unknown DN must not log in")
	}
}

func TestRetrieveRoundTrip(t *testing.T) {
	f := newFixture(t)
	f.call(t, "", "proxy.store", f.pem, "pw")
	sess, _ := f.srv.NewSessionFor(userDN)
	resp := f.call(t, sess.ID, "proxy.retrieve", "pw")
	if resp.Fault != nil {
		t.Fatalf("retrieve: %v", resp.Fault)
	}
	got := resp.Result.([]byte)
	if !bytes.Equal(got, f.pem) {
		t.Error("retrieved PEM differs from stored")
	}
	// The retrieved credential is a usable proxy.
	id, err := pki.ParseIdentityPEM(got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pki.VerifyProxy(id.Cert, id.Chain, f.ca.Pool()); err != nil {
		t.Errorf("retrieved proxy does not verify: %v", err)
	}
}

func TestDelegatedRetrieveByDN(t *testing.T) {
	f := newFixture(t)
	f.call(t, "", "proxy.store", f.pem, "shared-pw")
	// A *different* user who knows the password retrieves the proxy: the
	// paper's delegation ("the proxy to be used on behalf of the user by
	// others").
	other, _ := f.srv.NewSessionFor(adminDN)
	resp := f.call(t, other.ID, "proxy.retrieve", "shared-pw", userDN.String())
	if resp.Fault != nil {
		t.Fatalf("delegated retrieve: %v", resp.Fault)
	}
}

func TestAttachRenewsSession(t *testing.T) {
	f := newFixture(t)
	f.call(t, "", "proxy.store", f.pem, "pw")
	sess, _ := f.srv.NewSessionFor(userDN)
	resp := f.call(t, sess.ID, "proxy.attach", "pw")
	if resp.Fault != nil {
		t.Fatalf("attach: %v", resp.Fault)
	}
	got, ok := f.srv.Sessions().Get(sess.ID)
	if !ok || got.Attrs[AttachedProxyAttr] != userDN.String() {
		t.Errorf("attach attrs = %#v", got)
	}
	// Attach without a session faults.
	resp = f.call(t, "", "proxy.attach", "pw")
	if resp.Fault == nil {
		t.Error("attach without session must fault")
	}
}

func TestStoreValidation(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, "", "proxy.store", []byte("not pem"), "pw")
	if resp.Fault == nil {
		t.Error("garbage PEM must be rejected")
	}
	resp = f.call(t, "", "proxy.store", f.pem, "")
	if resp.Fault == nil {
		t.Error("empty password must be rejected")
	}
	// A non-proxy certificate bundle is rejected.
	keyPEM, _ := f.user.KeyPEM()
	userBundle := append(f.user.CertPEM(), keyPEM...)
	resp = f.call(t, "", "proxy.store", userBundle, "pw")
	if resp.Fault == nil {
		t.Error("non-proxy bundle must be rejected")
	}
	// An expired proxy is rejected.
	expired, err := pki.NewProxy(f.user, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	ekey, _ := expired.KeyPEM()
	epem := append(expired.ChainPEM(), ekey...)
	resp = f.call(t, "", "proxy.store", epem, "pw")
	if resp.Fault == nil {
		t.Error("expired proxy must be rejected")
	}
}

func TestStoreSubjectMismatchRejected(t *testing.T) {
	f := newFixture(t)
	// An authenticated non-admin storing someone else's proxy is refused.
	mallorySess, _ := f.srv.NewSessionFor(pki.MustParseDN("/O=grid/OU=People/CN=Mallory"))
	resp := f.call(t, mallorySess.ID, "proxy.store", f.pem, "pw")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
		t.Errorf("fault = %+v", resp.Fault)
	}
	// And the proxy must not have been kept.
	resp = f.call(t, "", "proxy.login", userDN.String(), "pw")
	if resp.Fault == nil {
		t.Error("rejected store must not leave a usable proxy behind")
	}
}

func TestDeleteAndInfo(t *testing.T) {
	f := newFixture(t)
	f.call(t, "", "proxy.store", f.pem, "pw")
	sess, _ := f.srv.NewSessionFor(userDN)

	resp := f.call(t, sess.ID, "proxy.info")
	m := resp.Result.(map[string]any)
	if m["stored"] != true || m["valid"] != true {
		t.Errorf("info = %#v", m)
	}

	resp = f.call(t, sess.ID, "proxy.delete", "wrong")
	if resp.Fault == nil {
		t.Error("delete with wrong password must fault")
	}
	resp = f.call(t, sess.ID, "proxy.delete", "pw")
	if resp.Fault != nil {
		t.Fatalf("delete: %v", resp.Fault)
	}
	resp = f.call(t, sess.ID, "proxy.info")
	m = resp.Result.(map[string]any)
	if m["stored"] != false {
		t.Errorf("info after delete = %#v", m)
	}
	// Anonymous info faults.
	resp = f.call(t, "", "proxy.info")
	if resp.Fault == nil {
		t.Error("anonymous info must fault")
	}
}

func TestProxyStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(srv)
	srv.Register(svc)
	ca, _ := pki.NewCA(pki.MustParseDN("/O=g/CN=CA"))
	user, _ := ca.IssueUser(userDN, time.Hour)
	proxy, _ := pki.NewProxy(user, time.Hour)
	key, _ := proxy.KeyPEM()
	pem := append(proxy.ChainPEM(), key...)
	if _, err := svc.Store(pem, "pw"); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	svc2 := New(srv2)
	got, err := svc2.Retrieve(userDN, "pw")
	if err != nil {
		t.Fatalf("retrieve after restart: %v", err)
	}
	if !bytes.Equal(got, pem) {
		t.Error("stored proxy corrupted across restart")
	}
}

func TestDelegationIssueCheckConsume(t *testing.T) {
	f := newFixture(t)
	secret, err := f.svc.IssueDelegation(userDN, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !f.svc.CheckDelegation(userDN.String(), secret) {
		t.Fatal("freshly issued delegation must validate")
	}
	if f.svc.CheckDelegation(userDN.String(), secret) {
		t.Error("delegation secrets are single-use")
	}
	// Wrong DN consumes without validating.
	secret2, _ := f.svc.IssueDelegation(userDN, time.Minute)
	if f.svc.CheckDelegation(adminDN.String(), secret2) {
		t.Error("delegation must be bound to its DN")
	}
	if f.svc.CheckDelegation(userDN.String(), secret2) {
		t.Error("a probed secret must be consumed")
	}
	// Expired secrets are refused.
	secret3, _ := f.svc.IssueDelegation(userDN, time.Nanosecond)
	time.Sleep(time.Millisecond)
	if f.svc.CheckDelegation(userDN.String(), secret3) {
		t.Error("expired delegation must be refused")
	}
}

func TestLoginDelegatedLocal(t *testing.T) {
	f := newFixture(t)
	secret, err := f.svc.IssueDelegation(userDN, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	resp := f.call(t, "", "proxy.login_delegated", userDN.String(), secret)
	if resp.Fault != nil {
		t.Fatalf("login_delegated: %v", resp.Fault)
	}
	token, _ := resp.Result.(string)
	sess, ok := f.srv.Sessions().Get(token)
	if !ok || sess.DN != userDN.String() {
		t.Fatalf("session = %+v, %v", sess, ok)
	}
	// Replaying the consumed secret fails.
	if resp := f.call(t, "", "proxy.login_delegated", userDN.String(), secret); resp.Fault == nil {
		t.Error("replayed delegation must be refused")
	}
}

func TestLoginDelegatedRemoteIssuer(t *testing.T) {
	f := newFixture(t)
	// Remote issuers are refused outright until trust + verification are
	// wired (secure default).
	if resp := f.call(t, "", "proxy.login_delegated", userDN.String(), "s", "http://issuer/rpc"); resp.Fault == nil {
		t.Fatal("remote issuer must be refused without TrustIssuer")
	}
	verified := ""
	f.svc.TrustIssuer = func(url string) bool { return url == "http://issuer/rpc" }
	f.svc.VerifyRemote = func(issuer, dn, secret string) (bool, error) {
		verified = issuer + "|" + dn + "|" + secret
		return secret == "good", nil
	}
	if resp := f.call(t, "", "proxy.login_delegated", userDN.String(), "good", "http://other/rpc"); resp.Fault == nil {
		t.Error("untrusted issuer must be refused")
	}
	resp := f.call(t, "", "proxy.login_delegated", userDN.String(), "good", "http://issuer/rpc")
	if resp.Fault != nil {
		t.Fatalf("verified delegated login: %v", resp.Fault)
	}
	if verified != "http://issuer/rpc|"+userDN.String()+"|good" {
		t.Errorf("verification callback saw %q", verified)
	}
	token, _ := resp.Result.(string)
	sess, ok := f.srv.Sessions().Get(token)
	if !ok || sess.DN != userDN.String() {
		t.Fatalf("session = %+v", sess)
	}
	if sess.Attrs[DelegatedIssuerAttr] != "http://issuer/rpc" {
		t.Errorf("issuer attr = %q", sess.Attrs[DelegatedIssuerAttr])
	}
	if resp := f.call(t, "", "proxy.login_delegated", userDN.String(), "bad", "http://issuer/rpc"); resp.Fault == nil {
		t.Error("issuer-refused delegation must fail")
	}
}

func TestDelegationSweepCollectsExpired(t *testing.T) {
	f := newFixture(t)
	count := func() int {
		n := 0
		f.srv.Store().ForEach(delegationBucket, func(string, []byte) error {
			n++
			return nil
		})
		return n
	}
	// Three secrets that expire immediately (minted but never redeemed —
	// the residue every failed forward handoff leaves) plus one live one.
	for i := 0; i < 3; i++ {
		if _, err := f.svc.IssueDelegation(userDN, time.Nanosecond); err != nil {
			t.Fatal(err)
		}
	}
	live, err := f.svc.IssueDelegation(userDN, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 4 {
		t.Fatalf("delegation records = %d, want 4", got)
	}
	// IssueDelegation already swept once this minute; a future-stamped
	// sweep bypasses the rate limit and collects the expired records.
	f.svc.sweepDelegations(time.Now().Add(2 * delegationSweepInterval))
	if got := count(); got != 1 {
		t.Errorf("delegation records after sweep = %d, want 1 (the live one)", got)
	}
	if !f.svc.CheckDelegation(userDN.String(), live) {
		t.Error("live delegation must survive the sweep")
	}
}
