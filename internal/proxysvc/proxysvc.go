// Package proxysvc implements the Clarens proxy service (paper §2.6):
// password-protected storage and retrieval of proxy certificates on the
// server. Stored proxies enable (a) logging into the server knowing only
// the DN and password, (b) delegation — others acting with the user's
// proxy, and (c) attaching a fresh proxy to an existing session to renew
// it or to add delegation to sessions initiated with browser (CA-issued)
// certificates.
package proxysvc

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"

	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

const bucket = "proxies"

// delegationBucket stores one-time delegation secrets (hashed); the
// federated meta-scheduler mints these to carry a job owner's identity
// to a peer server.
const delegationBucket = "delegations"

// AttachedProxyAttr is the session attribute holding the DN of the stored
// proxy attached to the session.
const AttachedProxyAttr = "attached_proxy"

// DelegatedIssuerAttr is the session attribute recording which issuer
// server vouched for a session created through proxy.login_delegated.
const DelegatedIssuerAttr = "delegated_issuer"

// DefaultDelegationTTL bounds how long an unredeemed delegation secret
// stays valid.
const DefaultDelegationTTL = 2 * time.Minute

// delegationSweepInterval rate-limits garbage collection of expired
// delegation records.
const delegationSweepInterval = time.Minute

// Service is the Clarens proxy service.
type Service struct {
	srv *core.Server
	// MaxTTL bounds how long a stored proxy is honored for login after
	// its certificate expiry cannot be checked (defense in depth).
	MaxTTL time.Duration
	// TrustIssuer gates which remote issuer URLs login_delegated will
	// call back to verify a delegation; nil (the default) refuses every
	// remote issuer. The assembly wires it only when federation is
	// enabled, and only to an explicit operator-configured allowlist of
	// peer URLs (clarens.Config.FederationIssuers /
	// Server.TrustFederationIssuers).
	//
	// SECURITY: never wire this to the discovery cache. The station
	// network ingests unauthenticated UDP, so anyone who can plant a
	// discovery record for their own URL could vouch for arbitrary DNs —
	// the callback would ask the attacker whether the attacker is
	// trustworthy. Production can harden further with TLS peer
	// certificates on this callback (ROADMAP federation-hardening item).
	TrustIssuer func(url string) bool
	// VerifyRemote calls a remote issuer's proxy.check_delegation and
	// reports whether the (dn, secret) pair was vouched for. Set at
	// assembly time (it needs an RPC client); nil refuses remote issuers.
	VerifyRemote func(issuerURL, dn, secret string) (bool, error)

	sweepMu   sync.Mutex
	lastSweep time.Time // last delegation-bucket GC pass
}

// record is the stored form of a proxy.
type record struct {
	Sealed  []byte    `json:"sealed"` // seal(password, PEM bundle)
	Stored  time.Time `json:"stored"`
	Expires time.Time `json:"expires"` // proxy certificate expiry
}

// New creates the proxy service.
func New(srv *core.Server) *Service {
	return &Service{srv: srv, MaxTTL: 7 * 24 * time.Hour}
}

// Name implements core.Service.
func (s *Service) Name() string { return "proxy" }

// Methods implements core.Service.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "proxy.store",
			Help:      "Store a proxy credential (PEM bundle: proxy cert, chain, unencrypted key) sealed under a password. The proxy subject must match the caller or the caller must be an administrator.",
			Signature: []string{"boolean base64 string"},
			Public:    true,
			Handler:   s.store,
		},
		{
			Name:      "proxy.retrieve",
			Help:      "Retrieve the caller's stored proxy PEM bundle with the password used to store it (delegation: administrators may retrieve any DN's proxy with its password).",
			Signature: []string{"base64 string string"},
			Public:    true,
			Handler:   s.retrieve,
		},
		{
			Name:      "proxy.login",
			Help:      "Create a session knowing only a DN and the proxy password; returns the session token.",
			Signature: []string{"string string string"},
			Public:    true,
			Handler:   s.login,
		},
		{
			Name:      "proxy.attach",
			Help:      "Attach the stored proxy to the current session (renewal / delegation for sessions started without a proxy).",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.attach,
		},
		{
			Name:      "proxy.delete",
			Help:      "Delete the caller's stored proxy (requires the password).",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.del,
		},
		{
			Name:      "proxy.info",
			Help:      "Return {stored, expires} metadata for the caller's stored proxy.",
			Signature: []string{"struct"},
			Public:    true,
			Handler:   s.info,
		},
		{
			Name:      "proxy.delegate",
			Help:      "Mint a one-time delegation secret for the caller's DN, valid ttl_s seconds (default 120): delegate([ttl_s]). Present it to a peer server's proxy.login_delegated to act as the caller there.",
			Signature: []string{"string int"},
			Handler:   s.rpcDelegate,
		},
		{
			Name:      "proxy.check_delegation",
			Help:      "Validate and consume a one-time delegation secret minted by this server: check_delegation(dn, secret). Called back by peer servers during delegated login.",
			Signature: []string{"boolean string string"},
			Public:    true,
			Handler:   s.rpcCheckDelegation,
		},
		{
			Name:      "proxy.login_delegated",
			Help:      "Create a session for dn from a delegation secret: login_delegated(dn, secret, [issuer_url]). With an issuer URL the secret is verified by calling the issuer back (the issuer must be on this server's configured allowlist); without one the secret must have been minted locally. Returns the session token.",
			Signature: []string{"string string string string"},
			Public:    true,
			Handler:   s.rpcLoginDelegated,
		},
	}
}

// delegationRecord is the stored form of a delegation: only the SHA-256
// of the secret persists, with the DN it vouches for and its expiry.
type delegationRecord struct {
	DN      string    `json:"dn"`
	Expires time.Time `json:"expires"`
}

func hashSecret(secret string) string {
	sum := sha256.Sum256([]byte(secret))
	return hex.EncodeToString(sum[:])
}

// IssueDelegation mints a one-time secret that vouches for dn until ttl
// elapses (ttl<=0 uses DefaultDelegationTTL). Redeeming it — locally via
// login_delegated or remotely via check_delegation — consumes it. This is
// the handoff the federated meta-scheduler uses so remote execution runs
// as the submitting DN, in the spirit of the paper's §2.6 delegation
// ("allows the proxy to be used on behalf of the user by others").
func (s *Service) IssueDelegation(dn pki.DN, ttl time.Duration) (string, error) {
	if dn.IsZero() {
		return "", &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: delegation needs a DN"}
	}
	if ttl <= 0 {
		ttl = DefaultDelegationTTL
	}
	s.sweepDelegations(time.Now())
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	secret := hex.EncodeToString(b[:])
	rec := delegationRecord{DN: dn.String(), Expires: time.Now().Add(ttl)}
	if err := s.srv.Store().PutJSON(delegationBucket, hashSecret(secret), &rec); err != nil {
		return "", err
	}
	return secret, nil
}

// CheckDelegation validates a (dn, secret) pair against the local
// delegation table and consumes the secret — each delegation is
// single-use, so a leaked secret cannot be replayed after redemption.
func (s *Service) CheckDelegation(dnStr, secret string) bool {
	if secret == "" || dnStr == "" {
		return false
	}
	key := hashSecret(secret)
	var rec delegationRecord
	found, err := s.srv.Store().GetJSON(delegationBucket, key, &rec)
	if err != nil || !found {
		return false
	}
	s.srv.Store().Delete(delegationBucket, key)
	return rec.DN == dnStr && time.Now().Before(rec.Expires)
}

// sweepDelegations garbage-collects expired delegation records. Secrets
// are only deleted eagerly when redeemed, and many are minted but never
// redeemed (every failed forward handoff leaves one), so without a sweep
// the bucket grows forever. Runs from IssueDelegation at most once per
// delegationSweepInterval — the table can only grow while delegations
// are being minted, so that is also when it needs collecting.
func (s *Service) sweepDelegations(now time.Time) {
	s.sweepMu.Lock()
	if now.Sub(s.lastSweep) < delegationSweepInterval {
		s.sweepMu.Unlock()
		return
	}
	s.lastSweep = now
	s.sweepMu.Unlock()
	var expired []string
	s.srv.Store().ForEach(delegationBucket, func(key string, value []byte) error {
		var rec delegationRecord
		if json.Unmarshal(value, &rec) != nil || now.After(rec.Expires) {
			expired = append(expired, key)
		}
		return nil
	})
	for _, key := range expired {
		s.srv.Store().Delete(delegationBucket, key)
	}
}

func (s *Service) rpcDelegate(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	ttlS, err := p.OptInt(0, int(DefaultDelegationTTL.Seconds()))
	if err != nil {
		return nil, err
	}
	if ttlS < 1 {
		ttlS = 1
	}
	if ttlS > 3600 {
		ttlS = 3600
	}
	return s.IssueDelegation(ctx.DN, time.Duration(ttlS)*time.Second)
}

func (s *Service) rpcCheckDelegation(ctx *core.Context, p core.Params) (any, error) {
	dnStr, err := p.String(0)
	if err != nil {
		return nil, err
	}
	secret, err := p.String(1)
	if err != nil {
		return nil, err
	}
	return s.CheckDelegation(dnStr, secret), nil
}

func (s *Service) rpcLoginDelegated(ctx *core.Context, p core.Params) (any, error) {
	dnStr, err := p.String(0)
	if err != nil {
		return nil, err
	}
	secret, err := p.String(1)
	if err != nil {
		return nil, err
	}
	issuer, err := p.OptString(2, "")
	if err != nil {
		return nil, err
	}
	dn, perr := pki.ParseDN(dnStr)
	if perr != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: perr.Error()}
	}
	if issuer == "" {
		if !s.CheckDelegation(dnStr, secret) {
			return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "proxy: delegation not recognized (expired, consumed, or never issued)"}
		}
	} else {
		if s.TrustIssuer == nil || !s.TrustIssuer(issuer) {
			return nil, &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "proxy: delegation issuer is not on this server's trusted-issuer allowlist"}
		}
		if s.VerifyRemote == nil {
			return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "proxy: remote delegation verification not configured"}
		}
		ok, err := s.VerifyRemote(issuer, dnStr, secret)
		if err != nil {
			return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "proxy: delegation issuer unreachable: " + err.Error()}
		}
		if !ok {
			return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "proxy: issuer refused the delegation"}
		}
	}
	sess, err := s.srv.NewSessionFor(dn)
	if err != nil {
		return nil, err
	}
	if issuer != "" {
		if err := s.srv.Sessions().SetAttr(sess.ID, DelegatedIssuerAttr, issuer); err != nil {
			return nil, err
		}
	}
	return sess.ID, nil
}

// Store validates and stores a proxy PEM bundle for its subject user.
func (s *Service) Store(pemBundle []byte, password string) (pki.DN, error) {
	if password == "" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: empty password"}
	}
	id, err := pki.ParseIdentityPEM(pemBundle)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: " + err.Error()}
	}
	if !pki.IsProxy(id.Cert) {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: bundle is not a proxy certificate"}
	}
	now := time.Now()
	if now.After(id.Cert.NotAfter) {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: certificate already expired"}
	}
	owner := pki.EffectiveDN(id.Cert)
	sealed, err := seal(password, pemBundle)
	if err != nil {
		return nil, err
	}
	rec := record{Sealed: sealed, Stored: now, Expires: id.Cert.NotAfter}
	if err := s.srv.Store().PutJSON(bucket, owner.String(), &rec); err != nil {
		return nil, err
	}
	return owner, nil
}

// Retrieve unseals the proxy stored for dn.
func (s *Service) Retrieve(dn pki.DN, password string) ([]byte, error) {
	var rec record
	found, err := s.srv.Store().GetJSON(bucket, dn.String(), &rec)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "proxy: no stored proxy for " + dn.String()}
	}
	if time.Now().After(rec.Expires) {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "proxy: stored proxy has expired"}
	}
	pem, err := open(password, rec.Sealed)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: err.Error()}
	}
	return pem, nil
}

func (s *Service) store(ctx *core.Context, p core.Params) (any, error) {
	pemBundle, err := p.Bytes(0)
	if err != nil {
		return nil, err
	}
	password, err := p.String(1)
	if err != nil {
		return nil, err
	}
	owner, err := s.Store(pemBundle, password)
	if err != nil {
		return nil, err
	}
	// The proxy's user must be the caller (or an admin storing on behalf;
	// anonymous callers may store a proxy for its own subject — that is
	// exactly the browser-less bootstrap the paper supports).
	if ctx.Authenticated() && !owner.Equal(ctx.DN) && !s.srv.VO().IsServerAdmin(ctx.DN) {
		s.srv.Store().Delete(bucket, owner.String())
		return nil, &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "proxy: subject does not match caller"}
	}
	return true, nil
}

func (s *Service) retrieve(ctx *core.Context, p core.Params) (any, error) {
	password, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dn := ctx.DN
	if len(p) > 1 {
		dnStr, err := p.String(1)
		if err != nil {
			return nil, err
		}
		other, perr := pki.ParseDN(dnStr)
		if perr != nil {
			return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: perr.Error()}
		}
		// Delegation: anyone holding the password may retrieve a proxy
		// explicitly shared with them ("allows the proxy to be used on
		// behalf of the user by others").
		dn = other
	}
	if dn.IsZero() {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: no DN given and caller anonymous"}
	}
	pem, err := s.Retrieve(dn, password)
	if err != nil {
		return nil, err
	}
	return pem, nil
}

func (s *Service) login(ctx *core.Context, p core.Params) (any, error) {
	dnStr, err := p.String(0)
	if err != nil {
		return nil, err
	}
	password, err := p.String(1)
	if err != nil {
		return nil, err
	}
	dn, perr := pki.ParseDN(dnStr)
	if perr != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: perr.Error()}
	}
	// Unsealing proves knowledge of the password; the stored proxy proves
	// the DN held a valid credential when it was stored.
	if _, err := s.Retrieve(dn, password); err != nil {
		return nil, err
	}
	sess, err := s.srv.NewSessionFor(dn)
	if err != nil {
		return nil, err
	}
	if err := s.srv.Sessions().SetAttr(sess.ID, AttachedProxyAttr, dn.String()); err != nil {
		return nil, err
	}
	return sess.ID, nil
}

func (s *Service) attach(ctx *core.Context, p core.Params) (any, error) {
	if ctx.Session == nil {
		return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "proxy: no current session to attach to"}
	}
	password, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.Retrieve(ctx.DN, password); err != nil {
		return nil, err
	}
	if err := s.srv.Sessions().SetAttr(ctx.Session.ID, AttachedProxyAttr, ctx.DN.String()); err != nil {
		return nil, err
	}
	// Attaching also renews the session, as the paper describes.
	if err := s.srv.Sessions().Touch(ctx.Session.ID); err != nil {
		return nil, err
	}
	return true, nil
}

func (s *Service) del(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	password, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.Retrieve(ctx.DN, password); err != nil {
		return nil, err
	}
	if err := s.srv.Store().Delete(bucket, ctx.DN.String()); err != nil {
		return nil, err
	}
	return true, nil
}

func (s *Service) info(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	var rec record
	found, err := s.srv.Store().GetJSON(bucket, ctx.DN.String(), &rec)
	if err != nil {
		return nil, err
	}
	if !found {
		return map[string]any{"stored": false}, nil
	}
	return map[string]any{
		"stored":  true,
		"since":   rec.Stored.UTC(),
		"expires": rec.Expires.UTC(),
		"valid":   time.Now().Before(rec.Expires),
	}, nil
}

var _ core.Service = (*Service)(nil)
