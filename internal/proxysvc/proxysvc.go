// Package proxysvc implements the Clarens proxy service (paper §2.6):
// password-protected storage and retrieval of proxy certificates on the
// server. Stored proxies enable (a) logging into the server knowing only
// the DN and password, (b) delegation — others acting with the user's
// proxy, and (c) attaching a fresh proxy to an existing session to renew
// it or to add delegation to sessions initiated with browser (CA-issued)
// certificates.
package proxysvc

import (
	"time"

	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

const bucket = "proxies"

// AttachedProxyAttr is the session attribute holding the DN of the stored
// proxy attached to the session.
const AttachedProxyAttr = "attached_proxy"

// Service is the Clarens proxy service.
type Service struct {
	srv *core.Server
	// MaxTTL bounds how long a stored proxy is honored for login after
	// its certificate expiry cannot be checked (defense in depth).
	MaxTTL time.Duration
}

// record is the stored form of a proxy.
type record struct {
	Sealed  []byte    `json:"sealed"` // seal(password, PEM bundle)
	Stored  time.Time `json:"stored"`
	Expires time.Time `json:"expires"` // proxy certificate expiry
}

// New creates the proxy service.
func New(srv *core.Server) *Service {
	return &Service{srv: srv, MaxTTL: 7 * 24 * time.Hour}
}

// Name implements core.Service.
func (s *Service) Name() string { return "proxy" }

// Methods implements core.Service.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "proxy.store",
			Help:      "Store a proxy credential (PEM bundle: proxy cert, chain, unencrypted key) sealed under a password. The proxy subject must match the caller or the caller must be an administrator.",
			Signature: []string{"boolean base64 string"},
			Public:    true,
			Handler:   s.store,
		},
		{
			Name:      "proxy.retrieve",
			Help:      "Retrieve the caller's stored proxy PEM bundle with the password used to store it (delegation: administrators may retrieve any DN's proxy with its password).",
			Signature: []string{"base64 string string"},
			Public:    true,
			Handler:   s.retrieve,
		},
		{
			Name:      "proxy.login",
			Help:      "Create a session knowing only a DN and the proxy password; returns the session token.",
			Signature: []string{"string string string"},
			Public:    true,
			Handler:   s.login,
		},
		{
			Name:      "proxy.attach",
			Help:      "Attach the stored proxy to the current session (renewal / delegation for sessions started without a proxy).",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.attach,
		},
		{
			Name:      "proxy.delete",
			Help:      "Delete the caller's stored proxy (requires the password).",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.del,
		},
		{
			Name:      "proxy.info",
			Help:      "Return {stored, expires} metadata for the caller's stored proxy.",
			Signature: []string{"struct"},
			Public:    true,
			Handler:   s.info,
		},
	}
}

// Store validates and stores a proxy PEM bundle for its subject user.
func (s *Service) Store(pemBundle []byte, password string) (pki.DN, error) {
	if password == "" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: empty password"}
	}
	id, err := pki.ParseIdentityPEM(pemBundle)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: " + err.Error()}
	}
	if !pki.IsProxy(id.Cert) {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: bundle is not a proxy certificate"}
	}
	now := time.Now()
	if now.After(id.Cert.NotAfter) {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: certificate already expired"}
	}
	owner := pki.EffectiveDN(id.Cert)
	sealed, err := seal(password, pemBundle)
	if err != nil {
		return nil, err
	}
	rec := record{Sealed: sealed, Stored: now, Expires: id.Cert.NotAfter}
	if err := s.srv.Store().PutJSON(bucket, owner.String(), &rec); err != nil {
		return nil, err
	}
	return owner, nil
}

// Retrieve unseals the proxy stored for dn.
func (s *Service) Retrieve(dn pki.DN, password string) ([]byte, error) {
	var rec record
	found, err := s.srv.Store().GetJSON(bucket, dn.String(), &rec)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "proxy: no stored proxy for " + dn.String()}
	}
	if time.Now().After(rec.Expires) {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "proxy: stored proxy has expired"}
	}
	pem, err := open(password, rec.Sealed)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: err.Error()}
	}
	return pem, nil
}

func (s *Service) store(ctx *core.Context, p core.Params) (any, error) {
	pemBundle, err := p.Bytes(0)
	if err != nil {
		return nil, err
	}
	password, err := p.String(1)
	if err != nil {
		return nil, err
	}
	owner, err := s.Store(pemBundle, password)
	if err != nil {
		return nil, err
	}
	// The proxy's user must be the caller (or an admin storing on behalf;
	// anonymous callers may store a proxy for its own subject — that is
	// exactly the browser-less bootstrap the paper supports).
	if ctx.Authenticated() && !owner.Equal(ctx.DN) && !s.srv.VO().IsServerAdmin(ctx.DN) {
		s.srv.Store().Delete(bucket, owner.String())
		return nil, &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "proxy: subject does not match caller"}
	}
	return true, nil
}

func (s *Service) retrieve(ctx *core.Context, p core.Params) (any, error) {
	password, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dn := ctx.DN
	if len(p) > 1 {
		dnStr, err := p.String(1)
		if err != nil {
			return nil, err
		}
		other, perr := pki.ParseDN(dnStr)
		if perr != nil {
			return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: perr.Error()}
		}
		// Delegation: anyone holding the password may retrieve a proxy
		// explicitly shared with them ("allows the proxy to be used on
		// behalf of the user by others").
		dn = other
	}
	if dn.IsZero() {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "proxy: no DN given and caller anonymous"}
	}
	pem, err := s.Retrieve(dn, password)
	if err != nil {
		return nil, err
	}
	return pem, nil
}

func (s *Service) login(ctx *core.Context, p core.Params) (any, error) {
	dnStr, err := p.String(0)
	if err != nil {
		return nil, err
	}
	password, err := p.String(1)
	if err != nil {
		return nil, err
	}
	dn, perr := pki.ParseDN(dnStr)
	if perr != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: perr.Error()}
	}
	// Unsealing proves knowledge of the password; the stored proxy proves
	// the DN held a valid credential when it was stored.
	if _, err := s.Retrieve(dn, password); err != nil {
		return nil, err
	}
	sess, err := s.srv.NewSessionFor(dn)
	if err != nil {
		return nil, err
	}
	if err := s.srv.Sessions().SetAttr(sess.ID, AttachedProxyAttr, dn.String()); err != nil {
		return nil, err
	}
	return sess.ID, nil
}

func (s *Service) attach(ctx *core.Context, p core.Params) (any, error) {
	if ctx.Session == nil {
		return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "proxy: no current session to attach to"}
	}
	password, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.Retrieve(ctx.DN, password); err != nil {
		return nil, err
	}
	if err := s.srv.Sessions().SetAttr(ctx.Session.ID, AttachedProxyAttr, ctx.DN.String()); err != nil {
		return nil, err
	}
	// Attaching also renews the session, as the paper describes.
	if err := s.srv.Sessions().Touch(ctx.Session.ID); err != nil {
		return nil, err
	}
	return true, nil
}

func (s *Service) del(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	password, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.Retrieve(ctx.DN, password); err != nil {
		return nil, err
	}
	if err := s.srv.Store().Delete(bucket, ctx.DN.String()); err != nil {
		return nil, err
	}
	return true, nil
}

func (s *Service) info(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	var rec record
	found, err := s.srv.Store().GetJSON(bucket, ctx.DN.String(), &rec)
	if err != nil {
		return nil, err
	}
	if !found {
		return map[string]any{"stored": false}, nil
	}
	return map[string]any{
		"stored":  true,
		"since":   rec.Stored.UTC(),
		"expires": rec.Expires.UTC(),
		"valid":   time.Now().Before(rec.Expires),
	}, nil
}

var _ core.Service = (*Service)(nil)
