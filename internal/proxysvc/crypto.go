package proxysvc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Stored proxies are sealed with AES-256-GCM under a key derived from the
// user's chosen password via PBKDF2-HMAC-SHA256 (implemented here from
// stdlib primitives; the x/crypto module is unavailable offline). The
// paper stores proxies retrievable "by only knowing the certificate
// distinguished name and password that was used to store it".

const (
	pbkdf2Iters = 4096
	keyLen      = 32
	saltLen     = 16
)

// pbkdf2Key implements RFC 2898 PBKDF2 with HMAC-SHA256.
func pbkdf2Key(password, salt []byte, iters, keyLen int) []byte {
	prf := func(data []byte) []byte {
		h := hmac.New(sha256.New, password)
		h.Write(data)
		return h.Sum(nil)
	}
	hashLen := sha256.Size
	numBlocks := (keyLen + hashLen - 1) / hashLen
	out := make([]byte, 0, numBlocks*hashLen)
	var block [4]byte
	for i := 1; i <= numBlocks; i++ {
		binary.BigEndian.PutUint32(block[:], uint32(i))
		u := prf(append(append([]byte{}, salt...), block[:]...))
		t := make([]byte, len(u))
		copy(t, u)
		for n := 1; n < iters; n++ {
			u = prf(u)
			for j := range t {
				t[j] ^= u[j]
			}
		}
		out = append(out, t...)
	}
	return out[:keyLen]
}

// seal encrypts plaintext with the password; output = salt || nonce || ct.
func seal(password string, plaintext []byte) ([]byte, error) {
	salt := make([]byte, saltLen)
	if _, err := rand.Read(salt); err != nil {
		return nil, err
	}
	key := pbkdf2Key([]byte(password), salt, pbkdf2Iters, keyLen)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	ct := gcm.Seal(nil, nonce, plaintext, nil)
	out := make([]byte, 0, len(salt)+len(nonce)+len(ct))
	out = append(out, salt...)
	out = append(out, nonce...)
	out = append(out, ct...)
	return out, nil
}

// open decrypts a seal() output with the password.
func open(password string, sealed []byte) ([]byte, error) {
	if len(sealed) < saltLen+12 {
		return nil, fmt.Errorf("proxysvc: sealed blob too short")
	}
	salt := sealed[:saltLen]
	key := pbkdf2Key([]byte(password), salt, pbkdf2Iters, keyLen)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < saltLen+gcm.NonceSize() {
		return nil, fmt.Errorf("proxysvc: sealed blob too short")
	}
	nonce := sealed[saltLen : saltLen+gcm.NonceSize()]
	ct := sealed[saltLen+gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("proxysvc: wrong password or corrupt proxy")
	}
	return pt, nil
}
