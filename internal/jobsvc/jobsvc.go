// Package jobsvc implements the asynchronous job execution subsystem the
// Clarens deployments layered on top of the framework (Ali et al.,
// "Resource Management Services for a Grid Analysis Environment"; Thomas
// et al., "JClarens"): authenticated clients submit shell payloads that a
// scheduler runs in the background, monitor their progress, and collect
// results when ready.
//
// The subsystem combines a priority queue, a configurable worker pool and
// per-owner fair-share quotas with durable job state: every lifecycle
// transition (queued → running → done/failed/cancelled, with bounded
// retries) is persisted through db.Store, so the job table survives server
// restarts the same way sessions do. Jobs found in the running state at
// startup were interrupted by a crash and are re-queued while retry budget
// remains, or marked failed otherwise.
//
// Execution is delegated to an Executor — in the assembled server, the
// shell service's sandbox interpreter — and terminal transitions are
// announced to the owner through the store-and-forward messaging service
// and to the monitoring network as MonALISA queue/throughput gauges.
package jobsvc

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"clarens/internal/core"
	"clarens/internal/monalisa"
	"clarens/internal/pki"
	"clarens/internal/pubsub"
	"clarens/internal/rpc"
	"clarens/internal/telemetry"
)

// bucket is the db.Store bucket holding the durable job table. Keys embed
// the zero-padded submission nanos, so a sorted key scan yields jobs in
// submission order.
const bucket = "jobs"

// Job lifecycle states. StateRemote marks a job claimed by the federated
// meta-scheduler for execution on a peer server: it is out of the local
// queue, mirrored locally as a shadow record, and transitions to a
// terminal state when the peer's result is pulled back (or returns to
// StateQueued if the peer dies mid-flight).
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateRemote    = "remote"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether state is a final lifecycle state.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Job is one unit of asynchronous work. The whole record is persisted as
// JSON on every state transition.
type Job struct {
	ID       string `json:"id"`
	Owner    string `json:"owner"` // submitting DN, slash form
	Command  string `json:"command"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	// Attempts counts started executions; a job runs at most
	// 1 + MaxRetries times.
	Attempts   int       `json:"attempts"`
	MaxRetries int       `json:"max_retries"`
	Submitted  time.Time `json:"submitted"`
	Started    time.Time `json:"started,omitempty"`
	Finished   time.Time `json:"finished,omitempty"`
	// Stdout/Stderr hold only the inline head of each stream (at most
	// OutputLimit bytes) — enough for job.output to stay wire-compatible
	// for small results. When a stream outgrew its head, its per-stream
	// truncated flag is set (Truncated is the aggregate) and the full
	// bytes are on disk as a staged Artifact.
	Stdout          string     `json:"stdout,omitempty"`
	Stderr          string     `json:"stderr,omitempty"`
	Truncated       bool       `json:"truncated,omitempty"`
	StdoutTruncated bool       `json:"stdout_truncated,omitempty"`
	StderrTruncated bool       `json:"stderr_truncated,omitempty"`
	Artifacts       []Artifact `json:"artifacts,omitempty"`
	// Collect carries the sandbox glob patterns whose matches are staged
	// into the artifact tree after a successful attempt.
	Collect   []string `json:"collect,omitempty"`
	ExitCode  int      `json:"exit_code"`
	Error     string   `json:"error,omitempty"`
	LocalUser string   `json:"local_user,omitempty"`
	// Cancel marks a cancellation request observed while running; the
	// worker honors it when the in-flight attempt returns.
	Cancel bool `json:"cancel,omitempty"`

	// Remote execution binding (federation). Peer names the executing
	// server, RemoteID the job's id there; PeerURL and PeerSession let
	// the submitting server proxy status calls and pull back results.
	// PeerSession is a delegated session for the job's own owner and is
	// never exposed through the RPC surface.
	Peer        string `json:"peer,omitempty"`
	PeerURL     string `json:"peer_url,omitempty"`
	RemoteID    string `json:"remote_id,omitempty"`
	PeerSession string `json:"peer_session,omitempty"`

	// Trace is the trace identifier of the request that submitted the
	// job. It rides every lifecycle log event and every federation call
	// about the job (forwarding, status polls, pull-back), so one job's
	// path across servers correlates under one ID.
	Trace string `json:"trace,omitempty"`
}

// ExecStatus is what an Executor reports about one attempt; the output
// streams themselves go to the writers the scheduler hands it.
type ExecStatus struct {
	ExitCode  int
	LocalUser string
}

// ExecResult is the completed shape of one attempt's outputs: inline
// heads (bounded by OutputLimit), the truncated flag, and staged
// artifact references. The worker assembles it from the attempt's spool;
// the federation pull-back assembles it from a peer's job.output plus
// locally re-staged artifacts.
type ExecResult struct {
	Stdout    string // inline head
	Stderr    string // inline head
	ExitCode  int
	LocalUser string
	// Truncated is the aggregate of the per-stream flags; clients that
	// need to know WHICH stream is incomplete read the specific ones.
	Truncated       bool
	StdoutTruncated bool
	StderrTruncated bool
	Artifacts       []Artifact
}

// Executor runs a job payload on behalf of its owner, streaming stdout
// and stderr into the supplied writers as they are produced — the
// scheduler spools them to per-job artifact files with byte caps, so an
// attempt's output never accumulates in memory. A returned error means
// the attempt could not run at all (as opposed to running with a nonzero
// exit code); both count against the retry budget.
type Executor func(owner pki.DN, command string, stdout, stderr io.Writer) (ExecStatus, error)

// Notifier delivers terminal-state notifications to job owners
// (implemented by messaging.Service).
type Notifier interface {
	Send(from, to pki.DN, subject, body string) (string, error)
}

// MetricsPublisher receives queue gauges (implemented by
// monalisa.Publisher).
type MetricsPublisher interface {
	Publish(rec *monalisa.Record) error
}

// Config tunes the scheduler.
type Config struct {
	// Workers sizes the worker pool (default 4).
	Workers int
	// MaxQueue bounds the number of queued jobs (default 1024); submissions
	// beyond it are refused.
	MaxQueue int
	// MaxPerOwner is the fair-share quota: the maximum number of one
	// owner's jobs running concurrently (default 4; negative = unlimited).
	// Jobs over quota stay queued while other owners' work proceeds.
	MaxPerOwner int
	// RetryLimit caps the per-job max_retries request (default 3).
	RetryLimit int
	// OutputLimit bounds the inline head of each output stream retained
	// on the job record (default 64 KiB). With artifact staging enabled,
	// streams beyond it live on disk in full (up to SpoolLimit) and
	// job.output carries a reference; without staging this is the old
	// hard truncation point.
	OutputLimit int
	// SpoolLimit bounds the bytes of one output stream (or collected
	// file) spooled to the artifact tree per attempt (default 256 MiB).
	SpoolLimit int64
	// Artifacts, when set, enables result staging: each attempt's
	// stdout/stderr stream to per-job spool files under the stager's
	// namespace, and job records reference them instead of retaining
	// output inline (fileservice.ArtifactStore in the assembled server).
	Artifacts ArtifactStager
	// Collector stages sandbox files matching a job's collect globs into
	// its artifact tree after a successful attempt (wired to the shell
	// service's sandbox at assembly time).
	Collector Collector
	// ArtifactRetention, when positive, garbage-collects the artifact
	// trees of terminal jobs this long after they finish (the records
	// keep their inline heads). Zero keeps artifacts until job.delete.
	ArtifactRetention time.Duration
	// GCInterval is the retention sweep period (default 1m).
	GCInterval time.Duration
	// MetricsInterval is the gauge publication period (default 2s).
	MetricsInterval time.Duration
	// MaxQueuedPerOwner bounds the number of one owner's jobs sitting in
	// the queue, so a single tenant cannot fill MaxQueue and wedge the
	// federation pressure signal for everyone else. Default (0) is
	// MaxQueue/4; negative = unlimited.
	MaxQueuedPerOwner int
	// AgeInterval enables priority aging: every AgeInterval a queued
	// job's effective priority rises by AgeStep, so long-queued
	// low-priority work is no longer starved by a stream of high-priority
	// submissions. Zero disables aging (strict priority).
	AgeInterval time.Duration
	// AgeStep is the priority increment per elapsed AgeInterval
	// (default 1).
	AgeStep int
	// Telemetry, when set, receives job lifecycle latency histograms:
	// queue wait (submitted→started), run duration (started→finished),
	// and per-attempt output staging time.
	Telemetry *telemetry.Registry
	// Events, when set, receives one structured log entry per job state
	// transition (queued, running, done/failed/cancelled) carrying the
	// job's trace ID and the transition's duration. Nil disables
	// lifecycle logging.
	Events *slog.Logger
	// Spans, when set, links job executions into the flight recorder: a
	// terminal transition records a synthetic "job.exec" span on the
	// job's trace, so `clarens trace <id>` shows the execution — its
	// queue wait absorbed into start time, run duration, and outcome —
	// alongside the RPC spans that submitted it.
	Spans *telemetry.SpanStore
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxPerOwner == 0 {
		c.MaxPerOwner = 4
	} else if c.MaxPerOwner < 0 {
		c.MaxPerOwner = 0 // unlimited
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 3
	}
	if c.OutputLimit <= 0 {
		c.OutputLimit = 64 << 10
	}
	if c.SpoolLimit <= 0 {
		c.SpoolLimit = 256 << 20
	}
	if c.GCInterval <= 0 {
		c.GCInterval = time.Minute
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = 2 * time.Second
	}
	if c.MaxQueuedPerOwner == 0 {
		c.MaxQueuedPerOwner = c.MaxQueue / 4
	} else if c.MaxQueuedPerOwner < 0 {
		c.MaxQueuedPerOwner = 0 // unlimited
	}
	if c.AgeStep <= 0 {
		c.AgeStep = 1
	}
}

// serviceDN identifies the scheduler as the sender of job notifications.
var serviceDN = pki.MustParseDN("/O=clarens/OU=Services/CN=job scheduler")

// queueItem orders the heap: higher effective priority first, FIFO within
// a priority level. priority starts at the job's base priority and, when
// aging is enabled, is periodically recomputed as
// base + AgeStep*floor(waited/AgeInterval) so queued work rises over time.
type queueItem struct {
	id       string
	base     int
	priority int   // effective priority (== base when aging is off)
	seq      int64 // submission UnixNano
}

type jobHeap []*queueItem

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*queueItem)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// RemoteController proxies operations on jobs executing on a peer server.
// The federated meta-scheduler installs one; without it, remote-state
// jobs only reflect the local shadow record.
type RemoteController interface {
	// Refresh returns a live snapshot of the remote job — state and, once
	// terminal, outputs — merged into the local record's shape. An error
	// means the peer could not be reached; callers fall back to the
	// local mirror.
	Refresh(j *Job) (*Job, error)
	// CancelRemote asks the executing peer to cancel the job.
	CancelRemote(j *Job) (bool, error)
}

// Service is the job scheduler and its RPC surface.
type Service struct {
	srv     *core.Server
	cfg     Config
	exec    Executor
	notify  Notifier
	metrics MetricsPublisher
	stager  ArtifactStager
	collect Collector
	name    string // server name, used as the gauge farm

	mu            sync.Mutex
	cond          *sync.Cond
	queue         jobHeap
	ownerRunning  map[string]int
	ownerQueued   map[string]int
	runningCount  int
	remoteCount   int
	doneCount     uint64
	failedCount   uint64
	cancelCount   uint64
	artifactBytes uint64 // cumulative bytes staged into artifact trees
	artifactGC    uint64 // artifact trees garbage-collected
	stopped       bool
	remote        RemoteController

	// lifecycle telemetry (nil without Config.Telemetry)
	queueWaitHist *telemetry.Histogram
	runHist       *telemetry.Histogram
	stageHist     *telemetry.Histogram
	events        *slog.Logger

	started time.Time
	wg      sync.WaitGroup
	stopCh  chan struct{}
}

// New builds the scheduler, recovers the durable job table from the
// server's store, and starts the worker pool. serverName labels monitoring
// gauges; notify and metrics may be nil.
func New(srv *core.Server, cfg Config, exec Executor, notify Notifier, metrics MetricsPublisher, serverName string) (*Service, error) {
	if exec == nil {
		return nil, fmt.Errorf("jobsvc: nil executor")
	}
	cfg.fill()
	s := &Service{
		srv:          srv,
		cfg:          cfg,
		exec:         exec,
		notify:       notify,
		metrics:      metrics,
		stager:       cfg.Artifacts,
		collect:      cfg.Collector,
		name:         serverName,
		ownerRunning: make(map[string]int),
		ownerQueued:  make(map[string]int),
		events:       cfg.Events,
		started:      time.Now(),
		stopCh:       make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		s.queueWaitHist = cfg.Telemetry.Histogram("clarens.job.queue_wait_seconds",
			"Time jobs spend queued before a worker claims them.")
		s.runHist = cfg.Telemetry.Histogram("clarens.job.run_seconds",
			"Wall-clock duration of terminal jobs, claim to finish.")
		s.stageHist = cfg.Telemetry.Histogram("clarens.job.stage_seconds",
			"Per-attempt output finalization and artifact staging time.")
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.sweepOrphanArtifacts()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if metrics != nil {
		s.wg.Add(1)
		go s.metricsLoop()
	}
	if cfg.AgeInterval > 0 {
		s.wg.Add(1)
		go s.ageLoop()
	}
	if s.stager != nil && cfg.ArtifactRetention > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// sweepOrphanArtifacts removes artifact trees whose job record is gone —
// leftovers of a crash between tree creation and record persistence, or
// of a record deleted while its Remove failed. Runs once at startup,
// after recovery rebuilt the queue.
func (s *Service) sweepOrphanArtifacts() {
	if s.stager == nil {
		return
	}
	ids, err := s.stager.List()
	if err != nil {
		s.srv.Logger().Printf("jobsvc: artifact orphan sweep: %v", err)
		return
	}
	for _, id := range ids {
		if _, ok := s.Get(id); ok {
			continue
		}
		s.gcArtifacts(id)
	}
}

// gcLoop enforces ArtifactRetention: terminal jobs keep their staged
// trees for the retention window after finishing, then the trees are
// collected and the records drop their references (inline heads stay).
func (s *Service) gcLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.gcExpiredArtifacts(time.Now())
		}
	}
}

// gcExpiredArtifacts runs one retention sweep; exposed (with an explicit
// clock) for tests.
func (s *Service) gcExpiredArtifacts(now time.Time) {
	jobs, err := s.List("", "")
	if err != nil {
		return
	}
	cutoff := now.Add(-s.cfg.ArtifactRetention)
	for _, j := range jobs {
		if !Terminal(j.State) || len(j.Artifacts) == 0 || j.Finished.IsZero() || j.Finished.After(cutoff) {
			continue
		}
		// Drop the references under the lock; do the (potentially large)
		// tree removal outside it. A crash in between leaves an orphan
		// tree, which the startup sweep collects.
		s.mu.Lock()
		cur, ok := s.Get(j.ID)
		if !ok || !Terminal(cur.State) || len(cur.Artifacts) == 0 {
			s.mu.Unlock()
			continue
		}
		cur.Artifacts = nil
		if err := s.put(cur); err != nil {
			s.srv.Logger().Printf("jobsvc: persist artifact gc of %s: %v", j.ID, err)
			s.mu.Unlock()
			continue
		}
		s.mu.Unlock()
		s.gcArtifacts(j.ID)
	}
}

// SetRemoteController installs the proxy for jobs executing on peers.
func (s *Service) SetRemoteController(rc RemoteController) {
	s.mu.Lock()
	s.remote = rc
	s.mu.Unlock()
}

func (s *Service) remoteController() RemoteController {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remote
}

// pushQueue re-enters j into the priority heap and charges the owner's
// queued quota. Callers hold s.mu. The effective priority is seeded with
// the age already accrued since submission, so a requeued retry does not
// restart its aging clock.
func (s *Service) pushQueue(j *Job) {
	it := &queueItem{id: j.ID, base: j.Priority, priority: j.Priority, seq: j.Submitted.UnixNano()}
	if s.cfg.AgeInterval > 0 {
		if waited := time.Since(j.Submitted); waited > 0 {
			it.priority = it.base + s.cfg.AgeStep*int(waited/s.cfg.AgeInterval)
		}
	}
	heap.Push(&s.queue, it)
	s.ownerQueued[j.Owner]++
}

// decQueued releases one unit of the owner's queued quota. Callers hold
// s.mu.
func (s *Service) decQueued(owner string) {
	if n := s.ownerQueued[owner] - 1; n > 0 {
		s.ownerQueued[owner] = n
	} else {
		delete(s.ownerQueued, owner)
	}
}

// ageLoop periodically recomputes effective priorities so long-queued
// low-priority jobs rise instead of starving (ROADMAP: scheduler aging).
func (s *Service) ageLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.AgeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.mu.Lock()
			now := time.Now()
			changed := false
			for _, it := range s.queue {
				eff := it.base + s.cfg.AgeStep*int(now.Sub(time.Unix(0, it.seq))/s.cfg.AgeInterval)
				if eff != it.priority {
					it.priority = eff
					changed = true
				}
			}
			if changed {
				heap.Init(&s.queue)
			}
			s.mu.Unlock()
		}
	}
}

// recover rebuilds the in-memory queue from the persisted job table.
// Queued jobs re-enter the queue; jobs interrupted mid-run are re-queued
// while retry budget remains, or marked failed (their interrupted attempt
// already counted).
func (s *Service) recover() error {
	return s.srv.Store().ForEach(bucket, func(key string, value []byte) error {
		var j Job
		if err := json.Unmarshal(value, &j); err != nil {
			return fmt.Errorf("jobsvc: corrupt job record %s: %w", key, err)
		}
		switch j.State {
		case StateQueued:
			s.pushQueue(&j)
		case StateRemote:
			// Forwarded to a peer before the restart. The shadow record is
			// kept as-is: a running meta-scheduler re-adopts it on its next
			// watch cycle; assemblies without federation call
			// RequeueAllRemote to pull the work back into the local queue.
			s.remoteCount++
		case StateRunning:
			if j.Cancel {
				j.State = StateCancelled
				j.Finished = time.Now()
				j.Error = "cancelled before server restart"
				if err := s.put(&j); err != nil {
					return err
				}
				s.cancelCount++
				s.notifyDone(&j)
				s.publishState(&j, j.State, 0)
			} else if j.Attempts <= j.MaxRetries {
				j.State = StateQueued
				j.Error = fmt.Sprintf("attempt %d interrupted by server restart; re-queued", j.Attempts)
				if err := s.put(&j); err != nil {
					return err
				}
				s.pushQueue(&j)
				s.publishState(&j, StateQueued, 0)
			} else {
				j.State = StateFailed
				j.Finished = time.Now()
				j.Error = fmt.Sprintf("interrupted by server restart after %d attempts", j.Attempts)
				if err := s.put(&j); err != nil {
					return err
				}
				s.failedCount++
				s.notifyDone(&j)
				s.publishState(&j, j.State, 0)
			}
		}
		return nil
	})
}

// Stop drains the worker pool: workers finish in-flight attempts and exit.
// Queued jobs stay persisted for the next start.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Drain is Stop bounded by a context: workers are told to exit after
// their current attempt, and Drain waits up to ctx for them. On a clean
// finish the queue checkpoint is made durable with a WAL fsync, so a
// restart resumes from exactly this state. If attempts outlive ctx they
// keep running (their jobs are already persisted as running and will be
// re-queued by recovery on the next start); ctx.Err() is returned so
// the caller knows the drain was cut short.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	// Every queued/running job record is already in the store (Submit
	// and claim both persist before acting); the checkpoint's job is to
	// force the tail of the WAL onto stable storage.
	if serr := s.srv.Store().Sync(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// newID mints a sortable job identifier embedding the submission time.
func newID(at time.Time) (string, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return fmt.Sprintf("%020d-%s", at.UnixNano(), hex.EncodeToString(b[:])), nil
}

func (s *Service) put(j *Job) error {
	return s.srv.Store().PutJSON(bucket, j.ID, j)
}

// Get loads a job by id.
func (s *Service) Get(id string) (*Job, bool) {
	var j Job
	found, err := s.srv.Store().GetJSON(bucket, id, &j)
	if err != nil || !found {
		return nil, false
	}
	return &j, true
}

// Submit queues a command for owner and returns the new job. priority
// orders the queue (higher first); maxRetries is clamped to RetryLimit.
// Optional collect globs name sandbox files to stage into the job's
// artifact tree after a successful attempt.
func (s *Service) Submit(owner pki.DN, command string, priority, maxRetries int, collect ...string) (*Job, error) {
	return s.SubmitTraced(owner, "", command, priority, maxRetries, collect...)
}

// SubmitTraced is Submit with the submitting request's trace identifier
// attached to the job record, so lifecycle events and federation calls
// about the job correlate with the RPC that created it.
func (s *Service) SubmitTraced(owner pki.DN, trace, command string, priority, maxRetries int, collect ...string) (*Job, error) {
	if owner.IsZero() {
		return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "job: authentication required"}
	}
	if command == "" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "job: empty command"}
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	if maxRetries > s.cfg.RetryLimit {
		maxRetries = s.cfg.RetryLimit
	}
	if len(collect) > maxCollectPatterns {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("job: at most %d collect patterns", maxCollectPatterns)}
	}
	now := time.Now()
	id, err := newID(now)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:         id,
		Owner:      owner.String(),
		Command:    command,
		Priority:   priority,
		State:      StateQueued,
		MaxRetries: maxRetries,
		Submitted:  now,
		Collect:    collect,
		Trace:      trace,
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "job: scheduler stopped"}
	}
	// Per-owner quota first: one tenant hitting its share is refused with
	// a quota fault while the queue stays open for everyone else (and the
	// queue-depth pressure signal stays meaningful for the federation).
	if q := s.cfg.MaxQueuedPerOwner; q > 0 && s.ownerQueued[j.Owner] >= q {
		s.mu.Unlock()
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: owner queue quota reached (%d queued) for %s", q, j.Owner)}
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: queue full (%d jobs)", s.cfg.MaxQueue)}
	}
	if err := s.put(j); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.pushQueue(j)
	s.cond.Signal()
	s.mu.Unlock()
	s.logEvent(j, StateQueued, 0)
	return j, nil
}

// publishState announces one job state transition on the server's event
// bus (the push plane behind /ws): tagged for query matching and owner
// scoping, carrying the job's trace ID. Publishing never blocks, so it
// is safe under s.mu.
func (s *Service) publishState(j *Job, state string, dur time.Duration) {
	tags := map[string]string{
		"service": "job",
		"job_id":  j.ID,
		"owner":   j.Owner,
		"state":   state,
	}
	if j.Peer != "" {
		tags["peer"] = j.Peer
	}
	data := map[string]any{
		"command":  j.Command,
		"attempts": j.Attempts,
	}
	if Terminal(state) {
		data["exit_code"] = j.ExitCode
		if j.Error != "" {
			data["error"] = j.Error
		}
	}
	if dur > 0 {
		data["dur_s"] = dur.Seconds()
	}
	s.srv.Events().Publish(pubsub.Event{
		Type:  "job.state",
		Trace: j.Trace,
		Tags:  tags,
		Data:  data,
	})
}

// publishArtifact announces a staged artifact reference on the event
// bus, so result consumers can start fetching without polling
// job.output. Callers hold s.mu (publishing never blocks).
func (s *Service) publishArtifact(j *Job, a Artifact) {
	s.srv.Events().Publish(pubsub.Event{
		Type:  "job.artifact",
		Trace: j.Trace,
		Tags: map[string]string{
			"service": "job",
			"job_id":  j.ID,
			"owner":   j.Owner,
			"name":    a.Name,
		},
		Data: map[string]any{
			"path":    a.Path,
			"size":    a.Size,
			"md5":     a.MD5,
			"partial": a.Partial,
		},
	})
}

// logEvent emits one structured lifecycle entry (nil-safe) and mirrors
// the transition onto the event bus; dur carries the transition's
// duration where one is meaningful (queue wait for running, run time
// for terminal states).
func (s *Service) logEvent(j *Job, state string, dur time.Duration) {
	s.publishState(j, state, dur)
	if st := s.cfg.Spans; st != nil && j.Trace != "" && Terminal(state) {
		// Link the execution into the flight recorder as a synthetic span
		// on the job's trace: sampled on its own merits (slow or failed),
		// or appended when the submitting RPC already promoted the trace.
		fault := 0
		if state == StateFailed {
			fault = 1
		}
		st.Record(telemetry.Span{
			Trace:    j.Trace,
			Span:     telemetry.NewSpanID(),
			Method:   "job.exec",
			DN:       j.Owner,
			Peer:     j.Peer,
			Start:    time.Now().Add(-dur),
			Duration: dur,
			Fault:    fault,
			Depth:    1,
		}, true, false)
	}
	if s.events == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 6)
	attrs = append(attrs,
		slog.String("job", j.ID),
		slog.String("state", state),
		slog.String("owner", j.Owner),
	)
	if j.Trace != "" {
		attrs = append(attrs, slog.String("trace", j.Trace))
	}
	if dur > 0 {
		attrs = append(attrs, slog.Float64("dur_s", dur.Seconds()))
	}
	if j.Peer != "" {
		attrs = append(attrs, slog.String("peer", j.Peer))
	}
	s.events.LogAttrs(context.Background(), slog.LevelInfo, "job", attrs...)
}

// Cancel stops a job: queued jobs become cancelled immediately; running
// jobs are flagged and transition when the in-flight attempt returns;
// remote jobs are flagged locally and the cancellation is relayed to the
// executing peer best-effort (if the peer is unreachable, the flag is
// honored when the job falls back to local execution). The bool reports
// whether anything changed.
func (s *Service) Cancel(id string) (bool, error) {
	s.mu.Lock()
	j, ok := s.Get(id)
	if !ok {
		s.mu.Unlock()
		return false, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: no such job %q", id)}
	}
	switch j.State {
	case StateQueued:
		// Drop the heap entry eagerly so it stops counting against
		// MaxQueue, the owner's quota, and the queue-depth gauge.
		for i, it := range s.queue {
			if it.id == j.ID {
				heap.Remove(&s.queue, i)
				break
			}
		}
		s.decQueued(j.Owner)
		j.State = StateCancelled
		j.Finished = time.Now()
		s.cancelCount++
		if err := s.put(j); err != nil {
			s.mu.Unlock()
			return false, err
		}
		s.notifyDone(j)
		s.publishState(j, StateCancelled, 0)
		s.mu.Unlock()
		return true, nil
	case StateRunning:
		j.Cancel = true
		err := s.put(j)
		s.mu.Unlock()
		return true, err
	case StateRemote:
		j.Cancel = true
		err := s.put(j)
		rc := s.remote
		s.mu.Unlock()
		if err != nil {
			return false, err
		}
		if rc != nil && j.RemoteID != "" {
			// Network call outside the lock; failures are fine — the watch
			// loop either pulls back a cancelled result or requeues the job
			// locally, where the flag cancels it.
			rc.CancelRemote(j)
		}
		return true, nil
	default:
		s.mu.Unlock()
		return false, nil
	}
}

// List returns jobs in submission order. owner filters to one DN ("" =
// all); state filters to one lifecycle state ("" = all).
func (s *Service) List(owner, state string) ([]*Job, error) {
	var out []*Job
	err := s.srv.Store().ForEach(bucket, func(key string, value []byte) error {
		var j Job
		if err := json.Unmarshal(value, &j); err != nil {
			return nil // skip corrupt records on the read path
		}
		if owner != "" && j.Owner != owner {
			return nil
		}
		if state != "" && j.State != state {
			return nil
		}
		out = append(out, &j)
		return nil
	})
	return out, err
}

// waitTerminal polls the job table until the job is terminal, ctx is
// done, or timeout elapses, returning the last record seen. Callers
// decide how to treat a still-non-terminal result.
func (s *Service) waitTerminal(ctx context.Context, id string, timeout time.Duration) (*Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.Get(id)
		if !ok {
			return nil, fmt.Errorf("jobsvc: no such job %q", id)
		}
		if Terminal(j.State) || time.Now().After(deadline) {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, nil
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Wait blocks until the job reaches a terminal state or the timeout
// elapses, returning the final record.
func (s *Service) Wait(id string, timeout time.Duration) (*Job, error) {
	j, err := s.waitTerminal(context.Background(), id, timeout)
	if err != nil {
		return nil, err
	}
	if !Terminal(j.State) {
		return j, fmt.Errorf("jobsvc: job %s still %s after %v", id, j.State, timeout)
	}
	return j, nil
}

// --- federation surface: the meta-scheduler claims queued work for
// remote execution and feeds results (or failures) back ---

// ClaimForward removes up to max queued jobs from the local queue — the
// jobs that would run last under the current effective priority order,
// i.e. the work farthest from a local worker — and marks them
// StateRemote, bound to the named peer. Claimed jobs stop counting
// against queue pressure and their owners' queued quotas. The caller is
// expected to follow up with MarkForwarded (submission accepted) or
// RequeueLocal (forwarding failed) for every returned job.
func (s *Service) ClaimForward(max int, peer string) []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if max <= 0 || len(s.queue) == 0 || s.stopped {
		return nil
	}
	// Order a scratch view of the heap by reverse run order: lowest
	// effective priority first, newest submission first within a level.
	scratch := append([]*queueItem(nil), s.queue...)
	sort.Slice(scratch, func(i, j int) bool {
		if scratch[i].priority != scratch[j].priority {
			return scratch[i].priority < scratch[j].priority
		}
		return scratch[i].seq > scratch[j].seq
	})
	claimed := make(map[string]bool)
	var out []*Job
	for _, it := range scratch {
		if len(out) >= max {
			break
		}
		j, ok := s.Get(it.id)
		if !ok || j.State != StateQueued {
			claimed[it.id] = true // stale entry: drop it from the heap too
			continue
		}
		j.State = StateRemote
		j.Peer = peer
		if err := s.put(j); err != nil {
			s.srv.Logger().Printf("jobsvc: persist remote claim of %s: %v", j.ID, err)
			continue
		}
		s.decQueued(j.Owner)
		s.remoteCount++
		claimed[it.id] = true
		out = append(out, j)
		s.publishState(j, StateRemote, 0)
	}
	if len(claimed) > 0 {
		kept := s.queue[:0]
		for _, it := range s.queue {
			if !claimed[it.id] {
				kept = append(kept, it)
			}
		}
		for i := len(kept); i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = kept
		heap.Init(&s.queue)
	}
	return out
}

// MarkForwarded records the remote binding once a peer accepted the job:
// the peer's RPC URL, the job id it assigned, and the delegated session
// used to submit (which subsequent status/output/cancel proxying reuses).
func (s *Service) MarkForwarded(id, peerURL, remoteID, session string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("jobsvc: no such job %q", id)
	}
	if j.State != StateRemote {
		return fmt.Errorf("jobsvc: job %s is %s, not remote", id, j.State)
	}
	j.PeerURL, j.RemoteID, j.PeerSession = peerURL, remoteID, session
	return s.put(j)
}

// RequeueLocal pulls a remote job back into the local queue — the
// fallback when a peer refuses the submission, rejects the delegation,
// or dies mid-flight. A cancellation requested while the job was remote
// is honored here instead.
func (s *Service) RequeueLocal(id, reason string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("jobsvc: no such job %q", id)
	}
	if j.State != StateRemote {
		return nil // completed or already requeued: nothing to undo
	}
	s.remoteCount--
	j.Peer, j.PeerURL, j.RemoteID, j.PeerSession = "", "", "", ""
	if j.Cancel {
		j.State = StateCancelled
		j.Finished = time.Now()
		j.Error = reason
		if err := s.put(j); err != nil {
			return err
		}
		s.cancelCount++
		s.notifyDone(j)
		s.publishState(j, StateCancelled, 0)
		return nil
	}
	j.State = StateQueued
	j.Error = reason
	if err := s.put(j); err != nil {
		return err
	}
	s.pushQueue(j)
	s.cond.Signal()
	s.publishState(j, StateQueued, 0)
	return nil
}

// CompleteRemote finalizes a remote job with the result pulled back from
// the executing peer. state must be a terminal state as reported by the
// peer's job.status. A cancellation acknowledged while the job was
// remote wins over a successful remote completion, mirroring how finish
// resolves a cancel flag raced by a local attempt.
func (s *Service) CompleteRemote(id, state string, res ExecResult, errMsg string) error {
	if !Terminal(state) {
		return fmt.Errorf("jobsvc: CompleteRemote with non-terminal state %q", state)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.Get(id)
	if !ok {
		return fmt.Errorf("jobsvc: no such job %q", id)
	}
	if j.State != StateRemote {
		return fmt.Errorf("jobsvc: job %s is %s, not remote", id, j.State)
	}
	if j.Cancel && state != StateCancelled {
		state = StateCancelled
		if errMsg == "" {
			errMsg = fmt.Sprintf("cancelled; peer %s had already completed the attempt", j.Peer)
		}
	}
	s.remoteCount--
	j.State = state
	j.Finished = time.Now()
	s.applyResult(j, res)
	j.Error = errMsg
	switch state {
	case StateDone:
		s.doneCount++
	case StateFailed:
		s.failedCount++
	case StateCancelled:
		s.cancelCount++
	}
	if err := s.put(j); err != nil {
		return err
	}
	s.notifyDone(j)
	s.publishState(j, state, 0)
	return nil
}

// RemoteJobs returns the jobs currently bound to peers (shadow records
// in StateRemote), for the meta-scheduler's watch loop.
func (s *Service) RemoteJobs() []*Job {
	jobs, _ := s.List("", StateRemote)
	return jobs
}

// RequeueAllRemote returns every remote job to the local queue; called at
// startup by assemblies that recovered remote shadow records but run with
// federation disabled, so no forwarded work is stranded.
func (s *Service) RequeueAllRemote() int {
	n := 0
	for _, j := range s.RemoteJobs() {
		if s.RequeueLocal(j.ID, "federation disabled; re-queued locally") == nil {
			n++
		}
	}
	return n
}

// next blocks until a runnable job is available, claims it (marking it
// running and charging the owner's quota), and returns it. It returns nil
// when the scheduler stops.
func (s *Service) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil
		}
		var skipped []*queueItem
		var picked *Job
		for len(s.queue) > 0 {
			it := heap.Pop(&s.queue).(*queueItem)
			j, ok := s.Get(it.id)
			if !ok || j.State != StateQueued {
				continue // cancelled or vanished while queued
			}
			if s.cfg.MaxPerOwner > 0 && s.ownerRunning[j.Owner] >= s.cfg.MaxPerOwner {
				skipped = append(skipped, it)
				continue
			}
			picked = j
			// The job left the queue; its owner's queued quota frees now,
			// whatever happens to the claim below.
			s.decQueued(j.Owner)
			break
		}
		for _, it := range skipped {
			heap.Push(&s.queue, it)
		}
		if picked != nil {
			picked.State = StateRunning
			picked.Started = time.Now()
			picked.Attempts++
			if err := s.put(picked); err != nil {
				// Persisting the claim failed (store closed mid-shutdown,
				// or a transient disk error): push the job back so it is
				// not stranded, and park rather than kill the worker.
				picked.State = StateQueued
				s.pushQueue(picked)
				if s.stopped {
					return nil
				}
				s.srv.Logger().Printf("jobsvc: persist claim of %s: %v", picked.ID, err)
				s.cond.Wait()
				continue
			}
			s.ownerRunning[picked.Owner]++
			s.runningCount++
			wait := picked.Started.Sub(picked.Submitted)
			if s.queueWaitHist != nil {
				s.queueWaitHist.Observe(wait)
			}
			s.logEvent(picked, StateRunning, wait)
			return picked
		}
		s.cond.Wait()
	}
}

// maxCollectPatterns bounds the per-job collect glob list.
const maxCollectPatterns = 32

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		res, err := s.runAttempt(j)
		s.finish(j, res, err)
	}
}

// runAttempt executes one attempt with its output spooled: stdout/stderr
// stream to the job's artifact files (or head-only buffers without a
// stager) and the finalized ExecResult carries heads + artifact refs.
func (s *Service) runAttempt(j *Job) (ExecResult, error) {
	owner, err := pki.ParseDN(j.Owner)
	if err != nil {
		return ExecResult{}, err
	}
	sp := s.newSpool(j, owner)
	status, execErr := s.exec(owner, j.Command, sp.stdout, sp.stderr)
	stageStart := time.Now()
	res := s.finalize(j, owner, sp, status, execErr)
	if s.stageHist != nil {
		s.stageHist.Observe(time.Since(stageStart))
	}
	return res, execErr
}

// clampHead bounds an inline head to n bytes (results arriving from
// peers may have been captured under a larger OutputLimit).
func clampHead(s string, n int) (string, bool) {
	if len(s) > n {
		return s[:n], true
	}
	return s, false
}

// applyResult folds an attempt's outputs into the record: inline heads
// clamped to OutputLimit, the truncated flag, artifact references.
// Callers hold s.mu.
func (s *Service) applyResult(j *Job, res ExecResult) {
	var outClamped, errClamped bool
	j.Stdout, outClamped = clampHead(res.Stdout, s.cfg.OutputLimit)
	j.Stderr, errClamped = clampHead(res.Stderr, s.cfg.OutputLimit)
	j.StdoutTruncated = res.StdoutTruncated || outClamped
	j.StderrTruncated = res.StderrTruncated || errClamped
	j.Truncated = res.Truncated || j.StdoutTruncated || j.StderrTruncated
	j.Artifacts = res.Artifacts
	j.ExitCode = res.ExitCode
	j.LocalUser = res.LocalUser
	for _, a := range j.Artifacts {
		s.publishArtifact(j, a)
	}
}

// Delete removes a terminal job record together with its staged artifact
// tree. Running, queued, and remote jobs must be cancelled first.
func (s *Service) Delete(id string) error {
	s.mu.Lock()
	j, ok := s.Get(id)
	if !ok {
		s.mu.Unlock()
		return &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: no such job %q", id)}
	}
	if !Terminal(j.State) {
		s.mu.Unlock()
		return &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: job %s is %s; cancel it before deleting", id, j.State)}
	}
	err := s.srv.Store().Delete(bucket, id)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// Tree removal happens off the dispatch mutex; a crash here leaves an
	// orphan tree the startup sweep collects.
	if len(j.Artifacts) > 0 {
		s.gcArtifacts(id)
	} else if s.stager != nil {
		// No references, but a tree may exist (partial stage): best effort.
		s.stager.Remove(id)
	}
	return nil
}

// finish records the attempt outcome: success → done; failure → requeue
// while retry budget remains, else failed; a cancel request observed
// mid-run wins over retries.
func (s *Service) finish(j *Job, res ExecResult, execErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-read for a cancel flag set while the attempt ran.
	if cur, ok := s.Get(j.ID); ok {
		j.Cancel = cur.Cancel
	}
	s.ownerRunning[j.Owner]--
	if s.ownerRunning[j.Owner] <= 0 {
		delete(s.ownerRunning, j.Owner)
	}
	s.runningCount--

	s.applyResult(j, res)
	j.Error = ""
	if execErr != nil {
		j.Error = execErr.Error()
		j.ExitCode = -1
	}

	failed := execErr != nil || res.ExitCode != 0
	switch {
	case j.Cancel:
		j.State = StateCancelled
		j.Finished = time.Now()
		s.cancelCount++
	case !failed:
		j.State = StateDone
		j.Finished = time.Now()
		s.doneCount++
	case j.Attempts <= j.MaxRetries:
		j.State = StateQueued
		// The next attempt's spool setup empties the artifact tree, so
		// references from this failed attempt must not linger on a queued
		// record where clients could fetch soon-to-vanish files.
		j.Artifacts = nil
		s.pushQueue(j)
	default:
		j.State = StateFailed
		j.Finished = time.Now()
		s.failedCount++
	}
	if err := s.put(j); err != nil {
		// The durable record still says "running"; after a restart the
		// job would re-run. Surface the inconsistency in the log — there
		// is no better recovery without a working store.
		s.srv.Logger().Printf("jobsvc: persist %s state of %s: %v", j.State, j.ID, err)
	}
	if Terminal(j.State) {
		run := j.Finished.Sub(j.Started)
		if s.runHist != nil {
			s.runHist.Observe(run)
		}
		s.logEvent(j, j.State, run)
		s.notifyDone(j)
	} else if j.State == StateQueued {
		s.publishState(j, StateQueued, 0)
	}
	// A finished job frees quota; wake workers parked on fair share, and
	// a requeued job needs a worker too.
	s.cond.Broadcast()
}

// notifyDone announces a terminal transition to the owner's message queue.
// Callers hold s.mu; messaging only touches the store, never jobsvc.
func (s *Service) notifyDone(j *Job) {
	if s.notify == nil {
		return
	}
	owner, err := pki.ParseDN(j.Owner)
	if err != nil {
		return
	}
	body, _ := json.Marshal(map[string]any{
		"id":        j.ID,
		"state":     j.State,
		"exit_code": j.ExitCode,
		"command":   j.Command,
		"error":     j.Error,
	})
	s.notify.Send(serviceDN, owner, "job."+j.State, string(body))
}

// Snapshot reports the scheduler counters.
type Snapshot struct {
	Queued        int
	Running       int
	Remote        int // jobs forwarded to peers, awaiting pull-back
	Done          uint64
	Failed        uint64
	Cancelled     uint64
	Workers       int
	Uptime        time.Duration
	ArtifactBytes uint64 // cumulative bytes staged into artifact trees
	ArtifactGC    uint64 // artifact trees garbage-collected
}

// Throughput is completed jobs (any terminal state) per second of uptime.
func (sn Snapshot) Throughput() float64 {
	secs := sn.Uptime.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(sn.Done+sn.Failed+sn.Cancelled) / secs
}

// Stats returns the live counters.
func (s *Service) Stats() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Count only genuinely queued heap entries (cancelled ones are lazily
	// dropped, so the heap length can overcount briefly); the cheap
	// approximation is fine for gauges, but queued = heap minus nothing
	// here since cancellation rewrites state and workers skip stale items.
	return Snapshot{
		Queued:        len(s.queue),
		Running:       s.runningCount,
		Remote:        s.remoteCount,
		Done:          s.doneCount,
		Failed:        s.failedCount,
		Cancelled:     s.cancelCount,
		Workers:       s.cfg.Workers,
		Uptime:        time.Since(s.started),
		ArtifactBytes: s.artifactBytes,
		ArtifactGC:    s.artifactGC,
	}
}

// metricsLoop publishes queue gauges until Stop.
func (s *Service) metricsLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.MetricsInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			s.publishGauges()
			return
		case <-t.C:
			s.publishGauges()
		}
	}
}

func (s *Service) publishGauges() {
	sn := s.Stats()
	// Parameter keys follow the unified clarens.<subsystem>.<name> scheme
	// shared by every publishing subsystem (the bare legacy aliases were
	// dropped after their one-release grace period).
	params := make(map[string]float64, 10)
	for name, v := range map[string]float64{
		"queued":         float64(sn.Queued),
		"running":        float64(sn.Running),
		"remote":         float64(sn.Remote),
		"done":           float64(sn.Done),
		"failed":         float64(sn.Failed),
		"cancelled":      float64(sn.Cancelled),
		"workers":        float64(sn.Workers),
		"throughput":     sn.Throughput(),
		"artifact_bytes": float64(sn.ArtifactBytes),
		"artifact_gc":    float64(sn.ArtifactGC),
	} {
		params["clarens.job."+name] = v
	}
	s.metrics.Publish(&monalisa.Record{
		Farm:    s.name,
		Cluster: "jobs",
		Node:    "scheduler",
		Params:  params,
	})
}

// --- RPC surface ---

// Name implements core.Service.
func (s *Service) Name() string { return "job" }

// Methods implements core.Service. All methods require authentication;
// status/list/cancel/output are owner-only with a server-admin override.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "job.submit",
			Help:      "Queue a sandboxed command for asynchronous execution: submit(command, [priority], [max_retries], [collect_globs]); returns the job id. collect_globs name sandbox files to stage as artifacts after a successful run.",
			Signature: []string{"string string int int array"},
			Handler:   s.rpcSubmit,
		},
		{
			Name:      "job.status",
			Help:      "Return a job's full status record by id (owner or server admin only).",
			Signature: []string{"struct string"},
			Handler:   s.rpcStatus,
		},
		{
			Name:      "job.list",
			Help:      "List the caller's jobs, oldest first; optional state filter (queued|running|done|failed|cancelled). Server admins see all jobs.",
			Signature: []string{"array string"},
			Handler:   s.rpcList,
		},
		{
			Name:      "job.cancel",
			Help:      "Cancel a job: queued jobs stop immediately, running jobs when the current attempt returns, remote jobs on the executing peer. Returns whether anything changed.",
			Signature: []string{"boolean string"},
			Handler:   s.rpcCancel,
		},
		{
			Name:      "job.output",
			Help:      "Return {stdout, stderr, exit_code, state, truncated, artifacts} for a job (owner or server admin only). stdout/stderr are bounded heads; when truncated, the artifacts array references the full streams for file.read / HTTP GET fetching. Jobs executing on a federation peer are proxied transparently.",
			Signature: []string{"struct string"},
			Handler:   s.rpcOutput,
		},
		{
			Name:      "job.delete",
			Help:      "Delete a terminal job record and its staged artifacts (owner or server admin only); returns true.",
			Signature: []string{"boolean string"},
			Handler:   s.rpcDelete,
		},
		{
			Name:      "job.wait",
			Help:      "Block until a job reaches a terminal state or timeout_s elapses (default 30, max 600); returns the status record: wait(id, [timeout_s]).",
			Signature: []string{"struct string int"},
			Handler:   s.rpcWait,
		},
		{
			Name:      "job.stats",
			Help:      "Scheduler counters: queue depth, running, remote, terminal counts, workers, throughput. Public so federation peers can poll load.",
			Signature: []string{"struct"},
			Public:    true,
			Handler:   s.rpcStats,
		},
	}
}

// authorized loads a job and enforces owner-only access with the
// server-admin override.
func (s *Service) authorized(ctx *core.Context, id string) (*Job, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	j, ok := s.Get(id)
	if !ok {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: no such job %q", id)}
	}
	if j.Owner != ctx.DN.String() {
		if err := ctx.RequireServerAdmin(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

func jobStruct(j *Job) map[string]any {
	m := map[string]any{
		"id":          j.ID,
		"owner":       j.Owner,
		"command":     j.Command,
		"priority":    j.Priority,
		"state":       j.State,
		"attempts":    j.Attempts,
		"max_retries": j.MaxRetries,
		"exit_code":   j.ExitCode,
		"submitted":   j.Submitted.UTC(),
	}
	if !j.Started.IsZero() {
		m["started"] = j.Started.UTC()
	}
	if !j.Finished.IsZero() {
		m["finished"] = j.Finished.UTC()
	}
	if j.Error != "" {
		m["error"] = j.Error
	}
	if j.LocalUser != "" {
		m["local_user"] = j.LocalUser
	}
	if j.Peer != "" {
		m["peer"] = j.Peer
	}
	if j.RemoteID != "" {
		m["remote_id"] = j.RemoteID
	}
	if j.Truncated {
		m["truncated"] = true
	}
	if len(j.Artifacts) > 0 {
		m["artifacts"] = artifactList(j.Artifacts)
	}
	return m
}

func artifactList(arts []Artifact) []any {
	out := make([]any, len(arts))
	for i, a := range arts {
		m := map[string]any{
			"name": a.Name,
			"path": a.Path,
			"size": int(a.Size),
			"md5":  a.MD5,
		}
		if a.Partial {
			m["partial"] = true
		}
		out[i] = m
	}
	return out
}

// liveRemote returns the freshest view of j: for remote jobs with an
// installed controller, a live snapshot from the executing peer; the
// local shadow record otherwise (including when the peer is unreachable
// — the watch loop handles fallback, the read path must not block on it).
func (s *Service) liveRemote(j *Job) *Job {
	if j.State != StateRemote || j.RemoteID == "" {
		return j
	}
	rc := s.remoteController()
	if rc == nil {
		return j
	}
	if live, err := rc.Refresh(j); err == nil && live != nil {
		return live
	}
	return j
}

func (s *Service) rpcSubmit(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	command, err := p.String(0)
	if err != nil {
		return nil, err
	}
	priority, err := p.OptInt(1, 0)
	if err != nil {
		return nil, err
	}
	retries, err := p.OptInt(2, 0)
	if err != nil {
		return nil, err
	}
	var collect []string
	if len(p) > 3 {
		collect, err = p.StringSlice(3)
		if err != nil {
			return nil, err
		}
	}
	j, err := s.SubmitTraced(ctx.DN, ctx.TraceID(), command, priority, retries, collect...)
	if err != nil {
		return nil, err
	}
	return j.ID, nil
}

func (s *Service) rpcStatus(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	j, err := s.authorized(ctx, id)
	if err != nil {
		return nil, err
	}
	return jobStruct(s.liveRemote(j)), nil
}

func (s *Service) rpcWait(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	timeoutS, err := p.OptInt(1, 30)
	if err != nil {
		return nil, err
	}
	if timeoutS < 1 {
		timeoutS = 1
	}
	if timeoutS > 600 {
		timeoutS = 600
	}
	if _, err := s.authorized(ctx, id); err != nil {
		return nil, err
	}
	j, err := s.waitTerminal(ctx, id, time.Duration(timeoutS)*time.Second)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: job %q vanished", id)}
	}
	return jobStruct(s.liveRemote(j)), nil
}

func (s *Service) rpcList(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	state, err := p.OptString(0, "")
	if err != nil {
		return nil, err
	}
	owner := ctx.DN.String()
	if s.srv.VO().IsServerAdmin(ctx.DN) {
		owner = "" // admins see the whole table
	}
	jobs, err := s.List(owner, state)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(jobs))
	for i, j := range jobs {
		out[i] = jobStruct(j)
	}
	return out, nil
}

func (s *Service) rpcCancel(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.authorized(ctx, id); err != nil {
		return nil, err
	}
	return s.Cancel(id)
}

func (s *Service) rpcOutput(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	j, err := s.authorized(ctx, id)
	if err != nil {
		return nil, err
	}
	j = s.liveRemote(j)
	return map[string]any{
		"stdout":           j.Stdout,
		"stderr":           j.Stderr,
		"exit_code":        j.ExitCode,
		"state":            j.State,
		"truncated":        j.Truncated,
		"stdout_truncated": j.StdoutTruncated,
		"stderr_truncated": j.StderrTruncated,
		"artifacts":        artifactList(j.Artifacts),
	}, nil
}

func (s *Service) rpcDelete(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.authorized(ctx, id); err != nil {
		return nil, err
	}
	if err := s.Delete(id); err != nil {
		return nil, err
	}
	return true, nil
}

func (s *Service) rpcStats(ctx *core.Context, p core.Params) (any, error) {
	sn := s.Stats()
	return map[string]any{
		"queued":           sn.Queued,
		"running":          sn.Running,
		"remote":           sn.Remote,
		"done":             int(sn.Done),
		"failed":           int(sn.Failed),
		"cancelled":        int(sn.Cancelled),
		"workers":          sn.Workers,
		"uptime_s":         int(sn.Uptime.Seconds()),
		"throughput_per_s": sn.Throughput(),
		"artifact_bytes":   int(sn.ArtifactBytes),
		"artifact_gc":      int(sn.ArtifactGC),
	}, nil
}

var _ core.Service = (*Service)(nil)
