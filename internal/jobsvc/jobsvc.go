// Package jobsvc implements the asynchronous job execution subsystem the
// Clarens deployments layered on top of the framework (Ali et al.,
// "Resource Management Services for a Grid Analysis Environment"; Thomas
// et al., "JClarens"): authenticated clients submit shell payloads that a
// scheduler runs in the background, monitor their progress, and collect
// results when ready.
//
// The subsystem combines a priority queue, a configurable worker pool and
// per-owner fair-share quotas with durable job state: every lifecycle
// transition (queued → running → done/failed/cancelled, with bounded
// retries) is persisted through db.Store, so the job table survives server
// restarts the same way sessions do. Jobs found in the running state at
// startup were interrupted by a crash and are re-queued while retry budget
// remains, or marked failed otherwise.
//
// Execution is delegated to an Executor — in the assembled server, the
// shell service's sandbox interpreter — and terminal transitions are
// announced to the owner through the store-and-forward messaging service
// and to the monitoring network as MonALISA queue/throughput gauges.
package jobsvc

import (
	"container/heap"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"clarens/internal/core"
	"clarens/internal/monalisa"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

// bucket is the db.Store bucket holding the durable job table. Keys embed
// the zero-padded submission nanos, so a sorted key scan yields jobs in
// submission order.
const bucket = "jobs"

// Job lifecycle states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Terminal reports whether state is a final lifecycle state.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

// Job is one unit of asynchronous work. The whole record is persisted as
// JSON on every state transition.
type Job struct {
	ID       string `json:"id"`
	Owner    string `json:"owner"` // submitting DN, slash form
	Command  string `json:"command"`
	Priority int    `json:"priority"`
	State    string `json:"state"`
	// Attempts counts started executions; a job runs at most
	// 1 + MaxRetries times.
	Attempts   int       `json:"attempts"`
	MaxRetries int       `json:"max_retries"`
	Submitted  time.Time `json:"submitted"`
	Started    time.Time `json:"started,omitempty"`
	Finished   time.Time `json:"finished,omitempty"`
	Stdout     string    `json:"stdout,omitempty"`
	Stderr     string    `json:"stderr,omitempty"`
	ExitCode   int       `json:"exit_code"`
	Error      string    `json:"error,omitempty"`
	LocalUser  string    `json:"local_user,omitempty"`
	// Cancel marks a cancellation request observed while running; the
	// worker honors it when the in-flight attempt returns.
	Cancel bool `json:"cancel,omitempty"`
}

// ExecResult is what an Executor captured from one job attempt.
type ExecResult struct {
	Stdout    string
	Stderr    string
	ExitCode  int
	LocalUser string
}

// Executor runs a job payload on behalf of its owner. A returned error
// means the attempt could not run at all (as opposed to running with a
// nonzero exit code); both count against the retry budget.
type Executor func(owner pki.DN, command string) (ExecResult, error)

// Notifier delivers terminal-state notifications to job owners
// (implemented by messaging.Service).
type Notifier interface {
	Send(from, to pki.DN, subject, body string) (string, error)
}

// MetricsPublisher receives queue gauges (implemented by
// monalisa.Publisher).
type MetricsPublisher interface {
	Publish(rec *monalisa.Record) error
}

// Config tunes the scheduler.
type Config struct {
	// Workers sizes the worker pool (default 4).
	Workers int
	// MaxQueue bounds the number of queued jobs (default 1024); submissions
	// beyond it are refused.
	MaxQueue int
	// MaxPerOwner is the fair-share quota: the maximum number of one
	// owner's jobs running concurrently (default 4; negative = unlimited).
	// Jobs over quota stay queued while other owners' work proceeds.
	MaxPerOwner int
	// RetryLimit caps the per-job max_retries request (default 3).
	RetryLimit int
	// OutputLimit bounds the retained bytes of each output stream
	// (default 64 KiB).
	OutputLimit int
	// MetricsInterval is the gauge publication period (default 2s).
	MetricsInterval time.Duration
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 1024
	}
	if c.MaxPerOwner == 0 {
		c.MaxPerOwner = 4
	} else if c.MaxPerOwner < 0 {
		c.MaxPerOwner = 0 // unlimited
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 3
	}
	if c.OutputLimit <= 0 {
		c.OutputLimit = 64 << 10
	}
	if c.MetricsInterval <= 0 {
		c.MetricsInterval = 2 * time.Second
	}
}

// serviceDN identifies the scheduler as the sender of job notifications.
var serviceDN = pki.MustParseDN("/O=clarens/OU=Services/CN=job scheduler")

// queueItem orders the heap: higher priority first, FIFO within a
// priority level.
type queueItem struct {
	id       string
	priority int
	seq      int64 // submission UnixNano
}

type jobHeap []*queueItem

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*queueItem)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Service is the job scheduler and its RPC surface.
type Service struct {
	srv     *core.Server
	cfg     Config
	exec    Executor
	notify  Notifier
	metrics MetricsPublisher
	name    string // server name, used as the gauge farm

	mu           sync.Mutex
	cond         *sync.Cond
	queue        jobHeap
	ownerRunning map[string]int
	runningCount int
	doneCount    uint64
	failedCount  uint64
	cancelCount  uint64
	stopped      bool

	started time.Time
	wg      sync.WaitGroup
	stopCh  chan struct{}
}

// New builds the scheduler, recovers the durable job table from the
// server's store, and starts the worker pool. serverName labels monitoring
// gauges; notify and metrics may be nil.
func New(srv *core.Server, cfg Config, exec Executor, notify Notifier, metrics MetricsPublisher, serverName string) (*Service, error) {
	if exec == nil {
		return nil, fmt.Errorf("jobsvc: nil executor")
	}
	cfg.fill()
	s := &Service{
		srv:          srv,
		cfg:          cfg,
		exec:         exec,
		notify:       notify,
		metrics:      metrics,
		name:         serverName,
		ownerRunning: make(map[string]int),
		started:      time.Now(),
		stopCh:       make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if metrics != nil {
		s.wg.Add(1)
		go s.metricsLoop()
	}
	return s, nil
}

// recover rebuilds the in-memory queue from the persisted job table.
// Queued jobs re-enter the queue; jobs interrupted mid-run are re-queued
// while retry budget remains, or marked failed (their interrupted attempt
// already counted).
func (s *Service) recover() error {
	return s.srv.Store().ForEach(bucket, func(key string, value []byte) error {
		var j Job
		if err := json.Unmarshal(value, &j); err != nil {
			return fmt.Errorf("jobsvc: corrupt job record %s: %w", key, err)
		}
		switch j.State {
		case StateQueued:
			heap.Push(&s.queue, &queueItem{id: j.ID, priority: j.Priority, seq: j.Submitted.UnixNano()})
		case StateRunning:
			if j.Cancel {
				j.State = StateCancelled
				j.Finished = time.Now()
				j.Error = "cancelled before server restart"
				if err := s.put(&j); err != nil {
					return err
				}
				s.cancelCount++
				s.notifyDone(&j)
			} else if j.Attempts <= j.MaxRetries {
				j.State = StateQueued
				j.Error = fmt.Sprintf("attempt %d interrupted by server restart; re-queued", j.Attempts)
				if err := s.put(&j); err != nil {
					return err
				}
				heap.Push(&s.queue, &queueItem{id: j.ID, priority: j.Priority, seq: j.Submitted.UnixNano()})
			} else {
				j.State = StateFailed
				j.Finished = time.Now()
				j.Error = fmt.Sprintf("interrupted by server restart after %d attempts", j.Attempts)
				if err := s.put(&j); err != nil {
					return err
				}
				s.failedCount++
				s.notifyDone(&j)
			}
		}
		return nil
	})
}

// Stop drains the worker pool: workers finish in-flight attempts and exit.
// Queued jobs stay persisted for the next start.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// newID mints a sortable job identifier embedding the submission time.
func newID(at time.Time) (string, error) {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return fmt.Sprintf("%020d-%s", at.UnixNano(), hex.EncodeToString(b[:])), nil
}

func (s *Service) put(j *Job) error {
	return s.srv.Store().PutJSON(bucket, j.ID, j)
}

// Get loads a job by id.
func (s *Service) Get(id string) (*Job, bool) {
	var j Job
	found, err := s.srv.Store().GetJSON(bucket, id, &j)
	if err != nil || !found {
		return nil, false
	}
	return &j, true
}

// Submit queues a command for owner and returns the new job. priority
// orders the queue (higher first); maxRetries is clamped to RetryLimit.
func (s *Service) Submit(owner pki.DN, command string, priority, maxRetries int) (*Job, error) {
	if owner.IsZero() {
		return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "job: authentication required"}
	}
	if command == "" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "job: empty command"}
	}
	if maxRetries < 0 {
		maxRetries = 0
	}
	if maxRetries > s.cfg.RetryLimit {
		maxRetries = s.cfg.RetryLimit
	}
	now := time.Now()
	id, err := newID(now)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:         id,
		Owner:      owner.String(),
		Command:    command,
		Priority:   priority,
		State:      StateQueued,
		MaxRetries: maxRetries,
		Submitted:  now,
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "job: scheduler stopped"}
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: queue full (%d jobs)", s.cfg.MaxQueue)}
	}
	if err := s.put(j); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	heap.Push(&s.queue, &queueItem{id: j.ID, priority: j.Priority, seq: now.UnixNano()})
	s.cond.Signal()
	s.mu.Unlock()
	return j, nil
}

// Cancel stops a job: queued jobs become cancelled immediately; running
// jobs are flagged and transition when the in-flight attempt returns. The
// bool reports whether anything changed.
func (s *Service) Cancel(id string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.Get(id)
	if !ok {
		return false, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: no such job %q", id)}
	}
	switch j.State {
	case StateQueued:
		// Drop the heap entry eagerly so it stops counting against
		// MaxQueue and the queue-depth gauge.
		for i, it := range s.queue {
			if it.id == j.ID {
				heap.Remove(&s.queue, i)
				break
			}
		}
		j.State = StateCancelled
		j.Finished = time.Now()
		s.cancelCount++
		if err := s.put(j); err != nil {
			return false, err
		}
		s.notifyDone(j)
		return true, nil
	case StateRunning:
		j.Cancel = true
		return true, s.put(j)
	default:
		return false, nil
	}
}

// List returns jobs in submission order. owner filters to one DN ("" =
// all); state filters to one lifecycle state ("" = all).
func (s *Service) List(owner, state string) ([]*Job, error) {
	var out []*Job
	err := s.srv.Store().ForEach(bucket, func(key string, value []byte) error {
		var j Job
		if err := json.Unmarshal(value, &j); err != nil {
			return nil // skip corrupt records on the read path
		}
		if owner != "" && j.Owner != owner {
			return nil
		}
		if state != "" && j.State != state {
			return nil
		}
		out = append(out, &j)
		return nil
	})
	return out, err
}

// Wait blocks until the job reaches a terminal state or the timeout
// elapses, returning the final record.
func (s *Service) Wait(id string, timeout time.Duration) (*Job, error) {
	deadline := time.Now().Add(timeout)
	for {
		j, ok := s.Get(id)
		if !ok {
			return nil, fmt.Errorf("jobsvc: no such job %q", id)
		}
		if Terminal(j.State) {
			return j, nil
		}
		if time.Now().After(deadline) {
			return j, fmt.Errorf("jobsvc: job %s still %s after %v", id, j.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// next blocks until a runnable job is available, claims it (marking it
// running and charging the owner's quota), and returns it. It returns nil
// when the scheduler stops.
func (s *Service) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil
		}
		var skipped []*queueItem
		var picked *Job
		for len(s.queue) > 0 {
			it := heap.Pop(&s.queue).(*queueItem)
			j, ok := s.Get(it.id)
			if !ok || j.State != StateQueued {
				continue // cancelled or vanished while queued
			}
			if s.cfg.MaxPerOwner > 0 && s.ownerRunning[j.Owner] >= s.cfg.MaxPerOwner {
				skipped = append(skipped, it)
				continue
			}
			picked = j
			break
		}
		for _, it := range skipped {
			heap.Push(&s.queue, it)
		}
		if picked != nil {
			picked.State = StateRunning
			picked.Started = time.Now()
			picked.Attempts++
			if err := s.put(picked); err != nil {
				// Persisting the claim failed (store closed mid-shutdown,
				// or a transient disk error): push the job back so it is
				// not stranded, and park rather than kill the worker.
				heap.Push(&s.queue, &queueItem{id: picked.ID, priority: picked.Priority, seq: picked.Submitted.UnixNano()})
				if s.stopped {
					return nil
				}
				s.srv.Logger().Printf("jobsvc: persist claim of %s: %v", picked.ID, err)
				s.cond.Wait()
				continue
			}
			s.ownerRunning[picked.Owner]++
			s.runningCount++
			return picked
		}
		s.cond.Wait()
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		owner, err := pki.ParseDN(j.Owner)
		var res ExecResult
		if err == nil {
			res, err = s.exec(owner, j.Command)
		}
		s.finish(j, res, err)
	}
}

func truncated(s string, n int) string {
	if len(s) > n {
		return s[:n] + "\n...[truncated]"
	}
	return s
}

// finish records the attempt outcome: success → done; failure → requeue
// while retry budget remains, else failed; a cancel request observed
// mid-run wins over retries.
func (s *Service) finish(j *Job, res ExecResult, execErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-read for a cancel flag set while the attempt ran.
	if cur, ok := s.Get(j.ID); ok {
		j.Cancel = cur.Cancel
	}
	s.ownerRunning[j.Owner]--
	if s.ownerRunning[j.Owner] <= 0 {
		delete(s.ownerRunning, j.Owner)
	}
	s.runningCount--

	j.Stdout = truncated(res.Stdout, s.cfg.OutputLimit)
	j.Stderr = truncated(res.Stderr, s.cfg.OutputLimit)
	j.ExitCode = res.ExitCode
	j.LocalUser = res.LocalUser
	j.Error = ""
	if execErr != nil {
		j.Error = execErr.Error()
		j.ExitCode = -1
	}

	failed := execErr != nil || res.ExitCode != 0
	switch {
	case j.Cancel:
		j.State = StateCancelled
		j.Finished = time.Now()
		s.cancelCount++
	case !failed:
		j.State = StateDone
		j.Finished = time.Now()
		s.doneCount++
	case j.Attempts <= j.MaxRetries:
		j.State = StateQueued
		heap.Push(&s.queue, &queueItem{id: j.ID, priority: j.Priority, seq: j.Submitted.UnixNano()})
	default:
		j.State = StateFailed
		j.Finished = time.Now()
		s.failedCount++
	}
	if err := s.put(j); err != nil {
		// The durable record still says "running"; after a restart the
		// job would re-run. Surface the inconsistency in the log — there
		// is no better recovery without a working store.
		s.srv.Logger().Printf("jobsvc: persist %s state of %s: %v", j.State, j.ID, err)
	}
	if Terminal(j.State) {
		s.notifyDone(j)
	}
	// A finished job frees quota; wake workers parked on fair share, and
	// a requeued job needs a worker too.
	s.cond.Broadcast()
}

// notifyDone announces a terminal transition to the owner's message queue.
// Callers hold s.mu; messaging only touches the store, never jobsvc.
func (s *Service) notifyDone(j *Job) {
	if s.notify == nil {
		return
	}
	owner, err := pki.ParseDN(j.Owner)
	if err != nil {
		return
	}
	body, _ := json.Marshal(map[string]any{
		"id":        j.ID,
		"state":     j.State,
		"exit_code": j.ExitCode,
		"command":   j.Command,
		"error":     j.Error,
	})
	s.notify.Send(serviceDN, owner, "job."+j.State, string(body))
}

// Snapshot reports the scheduler counters.
type Snapshot struct {
	Queued    int
	Running   int
	Done      uint64
	Failed    uint64
	Cancelled uint64
	Workers   int
	Uptime    time.Duration
}

// Throughput is completed jobs (any terminal state) per second of uptime.
func (sn Snapshot) Throughput() float64 {
	secs := sn.Uptime.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(sn.Done+sn.Failed+sn.Cancelled) / secs
}

// Stats returns the live counters.
func (s *Service) Stats() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Count only genuinely queued heap entries (cancelled ones are lazily
	// dropped, so the heap length can overcount briefly); the cheap
	// approximation is fine for gauges, but queued = heap minus nothing
	// here since cancellation rewrites state and workers skip stale items.
	return Snapshot{
		Queued:    len(s.queue),
		Running:   s.runningCount,
		Done:      s.doneCount,
		Failed:    s.failedCount,
		Cancelled: s.cancelCount,
		Workers:   s.cfg.Workers,
		Uptime:    time.Since(s.started),
	}
}

// metricsLoop publishes queue gauges until Stop.
func (s *Service) metricsLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.MetricsInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			s.publishGauges()
			return
		case <-t.C:
			s.publishGauges()
		}
	}
}

func (s *Service) publishGauges() {
	sn := s.Stats()
	s.metrics.Publish(&monalisa.Record{
		Farm:    s.name,
		Cluster: "jobs",
		Node:    "scheduler",
		Params: map[string]float64{
			"queued":     float64(sn.Queued),
			"running":    float64(sn.Running),
			"done":       float64(sn.Done),
			"failed":     float64(sn.Failed),
			"cancelled":  float64(sn.Cancelled),
			"workers":    float64(sn.Workers),
			"throughput": sn.Throughput(),
		},
	})
}

// --- RPC surface ---

// Name implements core.Service.
func (s *Service) Name() string { return "job" }

// Methods implements core.Service. All methods require authentication;
// status/list/cancel/output are owner-only with a server-admin override.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "job.submit",
			Help:      "Queue a sandboxed command for asynchronous execution: submit(command, [priority], [max_retries]); returns the job id.",
			Signature: []string{"string string int int"},
			Handler:   s.rpcSubmit,
		},
		{
			Name:      "job.status",
			Help:      "Return a job's full status record by id (owner or server admin only).",
			Signature: []string{"struct string"},
			Handler:   s.rpcStatus,
		},
		{
			Name:      "job.list",
			Help:      "List the caller's jobs, oldest first; optional state filter (queued|running|done|failed|cancelled). Server admins see all jobs.",
			Signature: []string{"array string"},
			Handler:   s.rpcList,
		},
		{
			Name:      "job.cancel",
			Help:      "Cancel a job: queued jobs stop immediately, running jobs when the current attempt returns. Returns whether anything changed.",
			Signature: []string{"boolean string"},
			Handler:   s.rpcCancel,
		},
		{
			Name:      "job.output",
			Help:      "Return {stdout, stderr, exit_code, state} for a job (owner or server admin only).",
			Signature: []string{"struct string"},
			Handler:   s.rpcOutput,
		},
		{
			Name:      "job.stats",
			Help:      "Scheduler counters: queue depth, running, terminal counts, workers, throughput.",
			Signature: []string{"struct"},
			Handler:   s.rpcStats,
		},
	}
}

// authorized loads a job and enforces owner-only access with the
// server-admin override.
func (s *Service) authorized(ctx *core.Context, id string) (*Job, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	j, ok := s.Get(id)
	if !ok {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("job: no such job %q", id)}
	}
	if j.Owner != ctx.DN.String() {
		if err := ctx.RequireServerAdmin(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

func jobStruct(j *Job) map[string]any {
	m := map[string]any{
		"id":          j.ID,
		"owner":       j.Owner,
		"command":     j.Command,
		"priority":    j.Priority,
		"state":       j.State,
		"attempts":    j.Attempts,
		"max_retries": j.MaxRetries,
		"exit_code":   j.ExitCode,
		"submitted":   j.Submitted.UTC(),
	}
	if !j.Started.IsZero() {
		m["started"] = j.Started.UTC()
	}
	if !j.Finished.IsZero() {
		m["finished"] = j.Finished.UTC()
	}
	if j.Error != "" {
		m["error"] = j.Error
	}
	if j.LocalUser != "" {
		m["local_user"] = j.LocalUser
	}
	return m
}

func (s *Service) rpcSubmit(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	command, err := p.String(0)
	if err != nil {
		return nil, err
	}
	priority, err := p.OptInt(1, 0)
	if err != nil {
		return nil, err
	}
	retries, err := p.OptInt(2, 0)
	if err != nil {
		return nil, err
	}
	j, err := s.Submit(ctx.DN, command, priority, retries)
	if err != nil {
		return nil, err
	}
	return j.ID, nil
}

func (s *Service) rpcStatus(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	j, err := s.authorized(ctx, id)
	if err != nil {
		return nil, err
	}
	return jobStruct(j), nil
}

func (s *Service) rpcList(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	state, err := p.OptString(0, "")
	if err != nil {
		return nil, err
	}
	owner := ctx.DN.String()
	if s.srv.VO().IsServerAdmin(ctx.DN) {
		owner = "" // admins see the whole table
	}
	jobs, err := s.List(owner, state)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(jobs))
	for i, j := range jobs {
		out[i] = jobStruct(j)
	}
	return out, nil
}

func (s *Service) rpcCancel(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.authorized(ctx, id); err != nil {
		return nil, err
	}
	return s.Cancel(id)
}

func (s *Service) rpcOutput(ctx *core.Context, p core.Params) (any, error) {
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	j, err := s.authorized(ctx, id)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"stdout":    j.Stdout,
		"stderr":    j.Stderr,
		"exit_code": j.ExitCode,
		"state":     j.State,
	}, nil
}

func (s *Service) rpcStats(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	sn := s.Stats()
	return map[string]any{
		"queued":           sn.Queued,
		"running":          sn.Running,
		"done":             int(sn.Done),
		"failed":           int(sn.Failed),
		"cancelled":        int(sn.Cancelled),
		"workers":          sn.Workers,
		"uptime_s":         int(sn.Uptime.Seconds()),
		"throughput_per_s": sn.Throughput(),
	}, nil
}

var _ core.Service = (*Service)(nil)
