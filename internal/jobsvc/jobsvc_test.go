package jobsvc

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"clarens/internal/core"
	"clarens/internal/monalisa"
	"clarens/internal/pki"
)

var (
	alice = pki.MustParseDN("/O=grid/OU=People/CN=Alice")
	bob   = pki.MustParseDN("/O=grid/OU=People/CN=Bob")
)

func testServer(t *testing.T, dir string) *core.Server {
	t.Helper()
	srv, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// echoExec is a fake executor: "echo X" succeeds with X on stdout,
// "fail" exits 1, "error" cannot run at all.
func echoExec(owner pki.DN, command string, stdout, stderr io.Writer) (ExecStatus, error) {
	switch {
	case strings.HasPrefix(command, "echo "):
		io.WriteString(stdout, strings.TrimPrefix(command, "echo ")+"\n")
		return ExecStatus{LocalUser: "fake"}, nil
	case command == "fail":
		io.WriteString(stderr, "boom\n")
		return ExecStatus{ExitCode: 1, LocalUser: "fake"}, nil
	case command == "error":
		return ExecStatus{}, fmt.Errorf("executor unavailable")
	}
	return ExecStatus{LocalUser: "fake"}, nil
}

func newService(t *testing.T, srv *core.Server, cfg Config, exec Executor) *Service {
	t.Helper()
	s, err := New(srv, cfg, exec, nil, nil, "test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestSubmitRunsToDone(t *testing.T) {
	srv := testServer(t, "")
	s := newService(t, srv, Config{Workers: 2}, echoExec)
	j, err := s.Submit(alice, "echo hello", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Stdout != "hello\n" || got.ExitCode != 0 {
		t.Errorf("job = %+v", got)
	}
	if got.Attempts != 1 || got.LocalUser != "fake" {
		t.Errorf("attempts=%d local_user=%q", got.Attempts, got.LocalUser)
	}
	if got.Started.IsZero() || got.Finished.IsZero() {
		t.Error("missing timestamps")
	}
}

func TestSubmitValidation(t *testing.T) {
	srv := testServer(t, "")
	s := newService(t, srv, Config{}, echoExec)
	if _, err := s.Submit(pki.DN{}, "echo x", 0, 0); err == nil {
		t.Error("anonymous submit must fail")
	}
	if _, err := s.Submit(alice, "", 0, 0); err == nil {
		t.Error("empty command must fail")
	}
	// Retries are clamped to the limit.
	j, err := s.Submit(alice, "echo x", 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	if j.MaxRetries != 3 {
		t.Errorf("MaxRetries = %d, want clamped to 3", j.MaxRetries)
	}
}

// gateExec blocks every attempt until released, recording start order.
type gateExec struct {
	mu      sync.Mutex
	started []string
	gate    chan struct{}
}

func (g *gateExec) exec(owner pki.DN, command string, stdout, stderr io.Writer) (ExecStatus, error) {
	g.mu.Lock()
	g.started = append(g.started, command)
	g.mu.Unlock()
	<-g.gate
	io.WriteString(stdout, command)
	return ExecStatus{}, nil
}

func (g *gateExec) order() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.started...)
}

func TestPriorityOrdering(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec)

	// Occupy the single worker so subsequent jobs queue up.
	hold, err := s.Submit(alice, "hold", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 1 })

	// Queue low before high; the scheduler must pick high first.
	if _, err := s.Submit(alice, "low", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(alice, "high", 9, 0); err != nil {
		t.Fatal(err)
	}
	close(g.gate)
	if _, err := s.Wait(hold.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 3 })
	order := g.order()
	if order[1] != "high" || order[2] != "low" {
		t.Errorf("start order = %v, want hold,high,low", order)
	}
}

func TestFairShareQuota(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 2, MaxPerOwner: 1}, g.exec)

	// Alice saturates her quota; her second job must wait even though a
	// worker is free, so Bob's later submission starts ahead of it.
	if _, err := s.Submit(alice, "alice-1", 0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 1 })
	if _, err := s.Submit(alice, "alice-2", 0, 0); err != nil {
		t.Fatal(err)
	}
	bj, err := s.Submit(bob, "bob-1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 2 })
	if order := g.order(); order[1] != "bob-1" {
		t.Errorf("second start = %q, want bob-1 (alice over quota)", order[1])
	}
	close(g.gate)
	if _, err := s.Wait(bj.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Quota freed: alice-2 runs now.
	waitFor(t, func() bool { return len(g.order()) == 3 })
}

func TestRetriesThenFailure(t *testing.T) {
	srv := testServer(t, "")
	var attempts atomic.Int32
	exec := func(owner pki.DN, command string, stdout, stderr io.Writer) (ExecStatus, error) {
		attempts.Add(1)
		io.WriteString(stderr, "always fails\n")
		return ExecStatus{ExitCode: 1}, nil
	}
	s := newService(t, srv, Config{Workers: 1}, exec)
	j, err := s.Submit(alice, "doomed", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.Attempts != 3 || attempts.Load() != 3 {
		t.Errorf("state=%s attempts=%d executed=%d, want failed after 3", got.State, got.Attempts, attempts.Load())
	}
}

func TestRetrySucceedsOnSecondAttempt(t *testing.T) {
	srv := testServer(t, "")
	var attempts atomic.Int32
	exec := func(owner pki.DN, command string, stdout, stderr io.Writer) (ExecStatus, error) {
		if attempts.Add(1) == 1 {
			return ExecStatus{ExitCode: 1}, nil
		}
		io.WriteString(stdout, "recovered\n")
		return ExecStatus{}, nil
	}
	s := newService(t, srv, Config{Workers: 1}, exec)
	j, err := s.Submit(alice, "flaky", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Attempts != 2 || got.Stdout != "recovered\n" {
		t.Errorf("job = %+v", got)
	}
}

func TestExecutorErrorCountsAsFailure(t *testing.T) {
	srv := testServer(t, "")
	s := newService(t, srv, Config{Workers: 1}, echoExec)
	j, err := s.Submit(alice, "error", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.Error == "" || got.ExitCode != -1 {
		t.Errorf("job = %+v", got)
	}
}

func TestCancelQueued(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	defer close(g.gate)
	s := newService(t, srv, Config{Workers: 1}, g.exec)
	if _, err := s.Submit(alice, "hold", 0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 1 })
	j, err := s.Submit(alice, "victim", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := s.Cancel(j.ID)
	if err != nil || !changed {
		t.Fatalf("cancel = %v, %v", changed, err)
	}
	got, _ := s.Get(j.ID)
	if got.State != StateCancelled {
		t.Errorf("state = %s", got.State)
	}
	// The heap entry is removed eagerly: the cancelled job no longer
	// occupies queue capacity.
	if sn := s.Stats(); sn.Queued != 0 {
		t.Errorf("queued = %d after cancel, want 0", sn.Queued)
	}
	// Cancelling a terminal job is a no-op.
	if changed, _ := s.Cancel(j.ID); changed {
		t.Error("cancel of cancelled job must report false")
	}
}

func TestCancelRunning(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec)
	j, err := s.Submit(alice, "long", 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 1 })
	changed, err := s.Cancel(j.ID)
	if err != nil || !changed {
		t.Fatalf("cancel = %v, %v", changed, err)
	}
	close(g.gate)
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// The cancel request wins over success and retries.
	if got.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", got.State)
	}
}

func TestListAndStats(t *testing.T) {
	srv := testServer(t, "")
	s := newService(t, srv, Config{Workers: 2}, echoExec)
	var last *Job
	for i := 0; i < 3; i++ {
		j, err := s.Submit(alice, fmt.Sprintf("echo %d", i), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	if _, err := s.Submit(bob, "echo bob", 0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		sn := s.Stats()
		return sn.Done == 4
	})
	mine, err := s.List(alice.String(), "")
	if err != nil || len(mine) != 3 {
		t.Fatalf("alice sees %d jobs (%v), want 3", len(mine), err)
	}
	// Submission order is preserved by the key layout.
	if mine[2].ID != last.ID {
		t.Errorf("list order: last = %s, want %s", mine[2].ID, last.ID)
	}
	all, _ := s.List("", "")
	if len(all) != 4 {
		t.Errorf("all = %d jobs, want 4", len(all))
	}
	done, _ := s.List("", StateDone)
	if len(done) != 4 {
		t.Errorf("done = %d jobs, want 4", len(done))
	}
	sn := s.Stats()
	if sn.Queued != 0 || sn.Running != 0 || sn.Done != 4 || sn.Workers != 2 {
		t.Errorf("stats = %+v", sn)
	}
	if sn.Throughput() <= 0 {
		t.Error("throughput must be positive after completions")
	}
}

func TestQueueFull(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	defer close(g.gate)
	s := newService(t, srv, Config{Workers: 1, MaxQueue: 2}, g.exec)
	if _, err := s.Submit(alice, "hold", 0, 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 1 })
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(alice, "queued", 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(alice, "overflow", 0, 0); err == nil {
		t.Error("submit past MaxQueue must fail")
	}
}

// TestCrashRecovery simulates a crash: job records are persisted
// (queued + running) and a fresh server is rebuilt on the same database
// directory. Interrupted jobs must be re-queued while retry budget
// remains, or marked failed when it is exhausted.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	// Server #1: persist a mixed job table, then "crash" (close without
	// draining — records stay in their last persisted state).
	srv1, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	mk := func(id, state string, attempts, maxRetries int) *Job {
		return &Job{
			ID: id, Owner: alice.String(), Command: "echo recovered",
			State: state, Attempts: attempts, MaxRetries: maxRetries,
			Submitted: now,
		}
	}
	queued := mk(mustID(t, now), StateQueued, 0, 0)
	interrupted := mk(mustID(t, now.Add(time.Millisecond)), StateRunning, 1, 2)
	exhausted := mk(mustID(t, now.Add(2*time.Millisecond)), StateRunning, 3, 2)
	finished := mk(mustID(t, now.Add(3*time.Millisecond)), StateDone, 1, 0)
	finished.Stdout = "earlier result\n"
	for _, j := range []*Job{queued, interrupted, exhausted, finished} {
		if err := srv1.Store().PutJSON(bucket, j.ID, j); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Server #2 on the same directory: recovery and execution.
	srv2 := testServer(t, dir)
	s := newService(t, srv2, Config{Workers: 2}, echoExec)

	for _, id := range []string{queued.ID, interrupted.ID} {
		got, err := s.Wait(id, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if got.State != StateDone || got.Stdout != "recovered\n" {
			t.Errorf("job %s after recovery = %s %q", id, got.State, got.Stdout)
		}
	}
	// The interrupted attempt already counted, so the retry ran as attempt 2.
	if got, _ := s.Get(interrupted.ID); got.Attempts != 2 {
		t.Errorf("interrupted attempts = %d, want 2", got.Attempts)
	}
	if got, _ := s.Get(exhausted.ID); got.State != StateFailed || !strings.Contains(got.Error, "restart") {
		t.Errorf("exhausted job = %+v, want failed with restart error", got)
	}
	if got, _ := s.Get(finished.ID); got.State != StateDone || got.Stdout != "earlier result\n" {
		t.Errorf("terminal job must be untouched, got %+v", got)
	}
}

// TestRecoveryNotifiesTerminalTransitions: a job moved to failed during
// crash recovery must announce itself like any other terminal transition,
// or notification-driven clients wait forever.
func TestRecoveryNotifiesTerminalTransitions(t *testing.T) {
	dir := t.TempDir()
	srv1, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	dead := &Job{
		ID: mustID(t, time.Now()), Owner: alice.String(), Command: "echo lost",
		State: StateRunning, Attempts: 4, MaxRetries: 3, Submitted: time.Now(),
	}
	if err := srv1.Store().PutJSON(bucket, dead.ID, dead); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	srv2 := testServer(t, dir)
	rec := &notifyRecorder{}
	s, err := New(srv2, Config{Workers: 1}, echoExec, rec, nil, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.sent) != 1 || rec.sent[0] != "job.failed" {
		t.Errorf("recovery notifications = %v, want [job.failed]", rec.sent)
	}
	if sn := s.Stats(); sn.Failed != 1 {
		t.Errorf("failed counter = %d, want 1", sn.Failed)
	}
}

func mustID(t *testing.T, at time.Time) string {
	t.Helper()
	id, err := newID(at)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// notifyRecorder captures terminal notifications.
type notifyRecorder struct {
	mu   sync.Mutex
	sent []string // subjects
}

func (n *notifyRecorder) Send(from, to pki.DN, subject, body string) (string, error) {
	n.mu.Lock()
	n.sent = append(n.sent, subject)
	n.mu.Unlock()
	return "id", nil
}

func TestTerminalNotifications(t *testing.T) {
	srv := testServer(t, "")
	rec := &notifyRecorder{}
	s, err := New(srv, Config{Workers: 1}, echoExec, rec, nil, "test")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	ok, _ := s.Submit(alice, "echo fine", 0, 0)
	bad, _ := s.Submit(alice, "fail", 0, 0)
	s.Wait(ok.ID, 5*time.Second)
	s.Wait(bad.ID, 5*time.Second)
	waitFor(t, func() bool {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		return len(rec.sent) == 2
	})
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.sent[0] != "job.done" || rec.sent[1] != "job.failed" {
		t.Errorf("notifications = %v", rec.sent)
	}
}

// gaugeRecorder captures monitoring records.
type gaugeRecorder struct {
	mu   sync.Mutex
	recs []map[string]float64
}

func (g *gaugeRecorder) Publish(rec *monalisa.Record) error {
	g.mu.Lock()
	g.recs = append(g.recs, rec.Params)
	g.mu.Unlock()
	return nil
}

func TestMetricsGauges(t *testing.T) {
	srv := testServer(t, "")
	g := &gaugeRecorder{}
	s, err := New(srv, Config{Workers: 1, MetricsInterval: 5 * time.Millisecond}, echoExec, nil, g, "test")
	if err != nil {
		t.Fatal(err)
	}
	j, _ := s.Submit(alice, "echo gauge", 0, 0)
	s.Wait(j.ID, 5*time.Second)
	waitFor(t, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		for _, p := range g.recs {
			if p["clarens.job.done"] == 1 {
				return true
			}
		}
		return false
	})
	s.Stop()
	// Stop publishes one final gauge snapshot.
	g.mu.Lock()
	last := g.recs[len(g.recs)-1]
	g.mu.Unlock()
	if last["clarens.job.done"] != 1 || last["clarens.job.workers"] != 1 || last["clarens.job.throughput"] <= 0 {
		t.Errorf("final gauges = %v", last)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPriorityAgingPromotesStarvedJobs(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1, AgeInterval: 10 * time.Millisecond, AgeStep: 2}, g.exec)

	// Occupy the worker, then queue a low-priority job well before a
	// higher-priority one. Under strict priority "high" always wins; with
	// aging the old low-priority job has accrued enough effective
	// priority to start first.
	hold, err := s.Submit(alice, "hold", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 1 })
	if _, err := s.Submit(alice, "old-low", 0, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // ~12 intervals: +24 effective
	if _, err := s.Submit(alice, "young-high", 10, 0); err != nil {
		t.Fatal(err)
	}
	// Let the ager observe the gap before releasing the worker.
	time.Sleep(30 * time.Millisecond)
	close(g.gate)
	if _, err := s.Wait(hold.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(g.order()) == 3 })
	if order := g.order(); order[1] != "old-low" {
		t.Errorf("start order = %v, want the aged job ahead of young-high", order)
	}
}

func TestNoAgingKeepsStrictPriority(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec) // AgeInterval 0: strict

	hold, _ := s.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	s.Submit(alice, "old-low", 0, 0)
	time.Sleep(50 * time.Millisecond)
	s.Submit(alice, "young-high", 10, 0)
	close(g.gate)
	s.Wait(hold.ID, 5*time.Second)
	waitFor(t, func() bool { return len(g.order()) == 3 })
	if order := g.order(); order[1] != "young-high" {
		t.Errorf("start order = %v, want strict priority without aging", order)
	}
}

func TestPerOwnerQueueQuota(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1, MaxQueuedPerOwner: 2}, g.exec)

	hold, _ := s.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	// Alice may queue two more; the third is refused by her quota...
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(alice, fmt.Sprintf("echo a%d", i), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit(alice, "echo a-over", 0, 0); err == nil {
		t.Fatal("alice over queued quota must be refused")
	} else if !strings.Contains(err.Error(), "owner queue quota") {
		t.Errorf("err = %v", err)
	}
	// ...while the queue stays open for bob.
	bj, err := s.Submit(bob, "echo b0", 0, 0)
	if err != nil {
		t.Fatalf("bob must not be wedged by alice's quota: %v", err)
	}
	close(g.gate)
	if _, err := s.Wait(bj.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Wait(hold.ID, 5*time.Second)
	// Drained: alice's quota freed.
	waitFor(t, func() bool { return s.Stats().Queued == 0 })
	if _, err := s.Submit(alice, "echo again", 0, 0); err != nil {
		t.Errorf("quota must free as jobs drain: %v", err)
	}
}

func TestClaimForwardTakesBackOfQueue(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec)
	defer close(g.gate)

	hold, _ := s.Submit(alice, "hold", 0, 0)
	_ = hold
	waitFor(t, func() bool { return len(g.order()) == 1 })
	jHigh, _ := s.Submit(alice, "echo high", 9, 0)
	jLow, _ := s.Submit(alice, "echo low", 1, 0)

	claimed := s.ClaimForward(1, "peer-x")
	if len(claimed) != 1 || claimed[0].ID != jLow.ID {
		t.Fatalf("claimed = %+v, want the low-priority job (farthest from running)", claimed)
	}
	if claimed[0].State != StateRemote || claimed[0].Peer != "peer-x" {
		t.Errorf("claimed job = %+v", claimed[0])
	}
	if sn := s.Stats(); sn.Queued != 1 || sn.Remote != 1 {
		t.Errorf("stats = %+v", sn)
	}
	// The binding round trip.
	if err := s.MarkForwarded(jLow.ID, "http://peer-x/rpc", "rid-1", "tok"); err != nil {
		t.Fatal(err)
	}
	remote := s.RemoteJobs()
	if len(remote) != 1 || remote[0].RemoteID != "rid-1" || remote[0].PeerSession != "tok" {
		t.Fatalf("remote = %+v", remote)
	}
	// Pull the result back; counters and record finalize.
	if err := s.CompleteRemote(jLow.ID, StateDone, ExecResult{Stdout: "from-peer", ExitCode: 0, LocalUser: "joe"}, ""); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Get(jLow.ID)
	if j.State != StateDone || j.Stdout != "from-peer" || j.LocalUser != "joe" {
		t.Errorf("finalized = %+v", j)
	}
	if sn := s.Stats(); sn.Remote != 0 || sn.Done != 1 {
		t.Errorf("stats = %+v", sn)
	}
	_ = jHigh
}

func TestRequeueLocalFallsBackAndHonorsCancel(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec)

	hold, _ := s.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	j1, _ := s.Submit(alice, "echo fallback", 0, 0)
	j2, _ := s.Submit(alice, "echo cancelme", 0, 0)
	claimed := s.ClaimForward(2, "peer-x")
	if len(claimed) != 2 {
		t.Fatalf("claimed = %+v", claimed)
	}
	// A cancel requested while remote is honored at requeue time.
	if ok, err := s.Cancel(j2.ID); err != nil || !ok {
		t.Fatalf("cancel remote: %v %v", ok, err)
	}
	if err := s.RequeueLocal(j1.ID, "peer died"); err != nil {
		t.Fatal(err)
	}
	if err := s.RequeueLocal(j2.ID, "peer died"); err != nil {
		t.Fatal(err)
	}
	jc, _ := s.Get(j2.ID)
	if jc.State != StateCancelled {
		t.Errorf("cancelled-while-remote job = %+v", jc)
	}
	close(g.gate)
	got, err := s.Wait(j1.ID, 5*time.Second)
	if err != nil || got.State != StateDone {
		t.Fatalf("fallback job = %+v, %v", got, err)
	}
	if got.Peer != "" || got.RemoteID != "" || got.PeerSession != "" {
		t.Errorf("fallback job kept remote binding: %+v", got)
	}
	s.Wait(hold.ID, 5*time.Second)
}

func TestRequeueAllRemote(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec)
	hold, _ := s.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	s.Submit(alice, "echo r1", 0, 0)
	s.Submit(alice, "echo r2", 0, 0)
	if n := len(s.ClaimForward(2, "peer")); n != 2 {
		t.Fatalf("claimed %d", n)
	}
	if n := s.RequeueAllRemote(); n != 2 {
		t.Fatalf("requeued %d, want 2", n)
	}
	if sn := s.Stats(); sn.Remote != 0 || sn.Queued != 2 {
		t.Errorf("stats = %+v", sn)
	}
	close(g.gate)
	s.Wait(hold.ID, 5*time.Second)
}

// dirStager is a minimal ArtifactStager over a temp directory, standing
// in for fileservice.ArtifactStore in unit tests.
type dirStager struct {
	root    string
	mu      sync.Mutex
	created map[string]string // jobID -> owner DN
	removed []string
}

func newDirStager(t *testing.T) *dirStager {
	return &dirStager{root: t.TempDir(), created: make(map[string]string)}
}

func (d *dirStager) Create(jobID string, owner pki.DN) (string, string, error) {
	if strings.ContainsAny(jobID, "/\\") {
		return "", "", fmt.Errorf("bad id")
	}
	dir := d.root + "/" + jobID
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	d.mu.Lock()
	d.created[jobID] = owner.String()
	d.mu.Unlock()
	return dir, "/jobs/" + jobID, nil
}

func (d *dirStager) Remove(jobID string) error {
	d.mu.Lock()
	d.removed = append(d.removed, jobID)
	d.mu.Unlock()
	return os.RemoveAll(d.root + "/" + jobID)
}

func (d *dirStager) List() ([]string, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		ids = append(ids, e.Name())
	}
	return ids, nil
}

func (d *dirStager) ownerOf(jobID string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.created[jobID]
}

// bulkExec emits n bytes of patterned stdout.
func bulkExec(n int) Executor {
	return func(owner pki.DN, command string, stdout, stderr io.Writer) (ExecStatus, error) {
		chunk := make([]byte, 8192)
		for i := range chunk {
			chunk[i] = byte('a' + i%26)
		}
		for written := 0; written < n; {
			c := chunk
			if n-written < len(c) {
				c = c[:n-written]
			}
			stdout.Write(c)
			written += len(c)
		}
		io.WriteString(stderr, "small stderr\n")
		return ExecStatus{LocalUser: "fake"}, nil
	}
}

// TestArtifactStagingLargeOutput: output past OutputLimit keeps a clean
// head inline, sets truncated, and references a staged artifact holding
// the full stream.
func TestArtifactStagingLargeOutput(t *testing.T) {
	srv := testServer(t, "")
	stager := newDirStager(t)
	const total = 200_000
	s := newService(t, srv, Config{Workers: 1, OutputLimit: 1024, Artifacts: stager}, bulkExec(total))
	j, err := s.Submit(alice, "bulk", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || !got.Truncated {
		t.Fatalf("job = state %s truncated %v", got.State, got.Truncated)
	}
	if len(got.Stdout) != 1024 {
		t.Errorf("head = %d bytes, want 1024", len(got.Stdout))
	}
	if len(got.Artifacts) != 1 || got.Artifacts[0].Name != "stdout" {
		t.Fatalf("artifacts = %+v (stderr fit inline, must not be staged)", got.Artifacts)
	}
	if got.Artifacts[0].Partial {
		t.Error("fully spooled artifact wrongly marked Partial")
	}
	a := got.Artifacts[0]
	if a.Size != total || a.Path != "/jobs/"+j.ID+"/stdout" || a.MD5 == "" {
		t.Errorf("artifact = %+v", a)
	}
	data, err := os.ReadFile(stager.root + "/" + j.ID + "/stdout")
	if err != nil || int64(len(data)) != total {
		t.Fatalf("staged file = %d bytes, %v", len(data), err)
	}
	if !strings.HasPrefix(string(data), got.Stdout) {
		t.Error("inline head is not a prefix of the staged stream")
	}
	if stager.ownerOf(j.ID) != alice.String() {
		t.Errorf("tree scoped to %q, want alice", stager.ownerOf(j.ID))
	}
	if sn := s.Stats(); sn.ArtifactBytes < total {
		t.Errorf("ArtifactBytes = %d, want >= %d", sn.ArtifactBytes, total)
	}
	// stderr fit inline: its spool file must be gone.
	if _, err := os.ReadFile(stager.root + "/" + j.ID + "/stderr"); err == nil {
		t.Error("small stderr stream must not leave a spool file")
	}
}

// TestSmallOutputStaysInline: outputs under the limit keep the old
// inline contract and leave no artifact tree behind.
func TestSmallOutputStaysInline(t *testing.T) {
	srv := testServer(t, "")
	stager := newDirStager(t)
	s := newService(t, srv, Config{Workers: 1, Artifacts: stager}, echoExec)
	j, _ := s.Submit(alice, "echo tiny", 0, 0)
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated || len(got.Artifacts) != 0 || got.Stdout != "tiny\n" {
		t.Errorf("job = %+v", got)
	}
	if ids, _ := stager.List(); len(ids) != 0 {
		t.Errorf("empty tree left behind: %v", ids)
	}
}

// TestSpoolLimitCapsArtifact: the on-disk spool is capped at SpoolLimit
// while the byte count keeps the head/truncation bookkeeping honest.
func TestSpoolLimitCapsArtifact(t *testing.T) {
	srv := testServer(t, "")
	stager := newDirStager(t)
	s := newService(t, srv, Config{Workers: 1, OutputLimit: 512, SpoolLimit: 4096, Artifacts: stager}, bulkExec(100_000))
	j, _ := s.Submit(alice, "bulk", 0, 0)
	got, err := s.Wait(j.ID, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Artifacts) != 1 || got.Artifacts[0].Size != 4096 {
		t.Fatalf("artifacts = %+v, want stdout capped at 4096", got.Artifacts)
	}
	if !got.Artifacts[0].Partial {
		t.Error("a spool-capped artifact must be marked Partial")
	}
	data, _ := os.ReadFile(stager.root + "/" + j.ID + "/stdout")
	if len(data) != 4096 {
		t.Errorf("spool = %d bytes", len(data))
	}
}

// TestDeleteRemovesArtifacts: job.delete's backing method clears record
// and tree; non-terminal jobs are refused.
func TestDeleteRemovesArtifacts(t *testing.T) {
	srv := testServer(t, "")
	stager := newDirStager(t)
	s := newService(t, srv, Config{Workers: 1, OutputLimit: 64, Artifacts: stager}, bulkExec(10_000))
	j, _ := s.Submit(alice, "bulk", 0, 0)
	if _, err := s.Wait(j.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(j.ID); ok {
		t.Error("record survived delete")
	}
	if ids, _ := stager.List(); len(ids) != 0 {
		t.Errorf("tree survived delete: %v", ids)
	}
	if sn := s.Stats(); sn.ArtifactGC != 1 {
		t.Errorf("ArtifactGC = %d, want 1", sn.ArtifactGC)
	}
	// Non-terminal jobs are refused.
	g := &gateExec{gate: make(chan struct{})}
	defer close(g.gate)
	s2 := newService(t, srv, Config{Workers: 1}, g.exec)
	running, _ := s2.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	if err := s2.Delete(running.ID); err == nil {
		t.Error("delete of a running job must be refused")
	}
}

// TestRetentionSweep: terminal jobs' trees are collected after the
// retention window; records keep their heads but drop the references.
func TestRetentionSweep(t *testing.T) {
	srv := testServer(t, "")
	stager := newDirStager(t)
	s := newService(t, srv, Config{Workers: 1, OutputLimit: 64, Artifacts: stager, ArtifactRetention: time.Hour}, bulkExec(10_000))
	j, _ := s.Submit(alice, "bulk", 0, 0)
	if _, err := s.Wait(j.ID, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// A sweep "now" keeps the fresh tree; a sweep from the far future
	// collects it.
	s.gcExpiredArtifacts(time.Now())
	if got, _ := s.Get(j.ID); len(got.Artifacts) != 1 {
		t.Fatalf("fresh artifacts swept: %+v", got.Artifacts)
	}
	s.gcExpiredArtifacts(time.Now().Add(2 * time.Hour))
	got, _ := s.Get(j.ID)
	if len(got.Artifacts) != 0 || !got.Truncated || got.Stdout == "" {
		t.Errorf("after sweep: %+v", got)
	}
	if ids, _ := stager.List(); len(ids) != 0 {
		t.Errorf("tree survived sweep: %v", ids)
	}
	if sn := s.Stats(); sn.ArtifactGC != 1 {
		t.Errorf("ArtifactGC = %d", sn.ArtifactGC)
	}
}

// TestOrphanSweepAtStartup: artifact trees with no job record are
// removed when the scheduler rebuilds.
func TestOrphanSweepAtStartup(t *testing.T) {
	dir := t.TempDir()
	stager := newDirStager(t)
	if _, _, err := stager.Create("00000000000000000001-dead", alice); err != nil {
		t.Fatal(err)
	}
	srv := testServer(t, dir)
	s := newService(t, srv, Config{Workers: 1, Artifacts: stager}, echoExec)
	if ids, _ := stager.List(); len(ids) != 0 {
		t.Errorf("orphan tree survived recovery: %v", ids)
	}
	if sn := s.Stats(); sn.ArtifactGC != 1 {
		t.Errorf("ArtifactGC = %d", sn.ArtifactGC)
	}
}

// TestStageRemoteArtifact: the federation pull-back path re-stages peer
// content into the local tree for a remote shadow record.
func TestStageRemoteArtifact(t *testing.T) {
	srv := testServer(t, "")
	stager := newDirStager(t)
	g := &gateExec{gate: make(chan struct{})}
	defer close(g.gate)
	s := newService(t, srv, Config{Workers: 1, Artifacts: stager}, g.exec)
	s.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	j, _ := s.Submit(alice, "echo remote", 0, 0)
	if n := len(s.ClaimForward(1, "peer")); n != 1 {
		t.Fatalf("claimed %d", n)
	}
	content := strings.Repeat("remote-bytes.", 1000)
	a, err := s.StageRemoteArtifact(j.ID, "stdout", strings.NewReader(content))
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != int64(len(content)) || a.Path != "/jobs/"+j.ID+"/stdout" {
		t.Errorf("artifact = %+v", a)
	}
	data, err := os.ReadFile(stager.root + "/" + j.ID + "/stdout")
	if err != nil || string(data) != content {
		t.Errorf("staged content mismatch (%d bytes, %v)", len(data), err)
	}
	if stager.ownerOf(j.ID) != alice.String() {
		t.Errorf("remote stage scoped to %q", stager.ownerOf(j.ID))
	}
	// Hostile names refused; non-remote jobs refused.
	for _, evil := range []string{"", "..", "a/b", `a\b`} {
		if _, err := s.StageRemoteArtifact(j.ID, evil, strings.NewReader("x")); err == nil {
			t.Errorf("name %q must be refused", evil)
		}
	}
	if err := s.CompleteRemote(j.ID, StateDone, ExecResult{Stdout: "head", Truncated: true, Artifacts: []Artifact{a}}, ""); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(j.ID)
	if !got.Truncated || len(got.Artifacts) != 1 || got.Artifacts[0].MD5 != a.MD5 {
		t.Errorf("finalized shadow = %+v", got)
	}
	if _, err := s.StageRemoteArtifact(j.ID, "late", strings.NewReader("x")); err == nil {
		t.Error("staging into a terminal job must be refused")
	}
}

func TestCompleteRemoteHonorsCancelFlag(t *testing.T) {
	srv := testServer(t, "")
	g := &gateExec{gate: make(chan struct{})}
	s := newService(t, srv, Config{Workers: 1}, g.exec)
	defer close(g.gate)

	s.Submit(alice, "hold", 0, 0)
	waitFor(t, func() bool { return len(g.order()) == 1 })
	j, _ := s.Submit(alice, "echo remote", 0, 0)
	if n := len(s.ClaimForward(1, "peer")); n != 1 {
		t.Fatalf("claimed %d", n)
	}
	if err := s.MarkForwarded(j.ID, "http://peer/rpc", "rid", "tok"); err != nil {
		t.Fatal(err)
	}
	// Cancel acknowledged while remote; the peer races it to completion.
	if ok, err := s.Cancel(j.ID); err != nil || !ok {
		t.Fatalf("cancel = %v, %v", ok, err)
	}
	if err := s.CompleteRemote(j.ID, StateDone, ExecResult{Stdout: "too late"}, ""); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(j.ID)
	if got.State != StateCancelled {
		t.Errorf("state = %s, want cancelled (acknowledged cancel must win)", got.State)
	}
	if sn := s.Stats(); sn.Cancelled != 1 || sn.Done != 0 {
		t.Errorf("stats = %+v", sn)
	}
}
