package jobsvc

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clarens/internal/pki"
)

// Artifact is a staged output file reference carried on the job record:
// the fileservice virtual path clients fetch with file.read / HTTP GET,
// plus size and digest for integrity checking. Artifacts replace the old
// inline-output contract — job records keep only a bounded head of each
// stream, the full bytes live on disk under the file service's
// per-owner-ACL'd /jobs/<id>/ namespace.
type Artifact struct {
	Name string `json:"name"` // "stdout", "stderr", or a collected sandbox file
	Path string `json:"path"` // virtual fileservice path
	Size int64  `json:"size"`
	MD5  string `json:"md5"`
	// Partial marks a stream the spool byte cap cut short: the staged
	// file (and its digest) cover only the first Size bytes. Clients
	// must not treat a fetched partial artifact as the complete stream.
	Partial bool `json:"partial,omitempty"`
}

// ArtifactStager manages per-job artifact trees; implemented by
// fileservice.ArtifactStore. jobsvc stays decoupled from the file
// service package: it writes into the real directory the stager hands
// back, and access control rides the file service's ACL machinery.
type ArtifactStager interface {
	// Create makes (or re-uses) the artifact directory for a job,
	// scoping read access to the owner; returns the real directory and
	// the virtual prefix clients use to fetch.
	Create(jobID string, owner pki.DN) (dir, virtual string, err error)
	// Remove deletes a job's artifact tree (and its ACL scope).
	Remove(jobID string) error
	// List returns the job ids that currently have artifact trees, for
	// the orphan sweep at recovery.
	List() ([]string, error)
}

// CollectedFile describes one sandbox file a Collector staged: the
// destination base name plus size and MD5 computed during the copy.
type CollectedFile struct {
	Name string
	Size int64
	MD5  string
}

// Collector stages sandbox files matching the job's collect globs into
// the artifact directory (implemented over shellsvc.CollectInto at
// assembly time). fileLimit caps each file; files skipped for exceeding
// it come back in skipped so the scheduler can surface the gap.
type Collector func(owner pki.DN, patterns []string, destDir string, fileLimit int64) (staged []CollectedFile, skipped []string, err error)

// capture tees one output stream as an executor produces it: the first
// headLimit bytes are retained in memory for the job record's inline
// head, and — when a spool file is attached — the full stream up to
// limit bytes goes to disk with a running MD5. Write never fails the
// stream: spool write errors degrade to head-only capture (recorded so
// the artifact is withheld rather than published corrupt).
type capture struct {
	head      []byte
	headLimit int
	total     int64 // bytes offered by the executor

	f       *os.File
	h       hash.Hash
	spooled int64 // bytes accepted by the spool (≤ limit)
	limit   int64
	spoolOK bool
}

func newCapture(headLimit int, f *os.File, limit int64) *capture {
	c := &capture{headLimit: headLimit, f: f, limit: limit, spoolOK: f != nil}
	if f != nil {
		c.h = md5.New()
	}
	return c
}

// Write implements io.Writer for the executor's stdout/stderr.
func (c *capture) Write(p []byte) (int, error) {
	if want := c.headLimit - len(c.head); want > 0 {
		if want > len(p) {
			want = len(p)
		}
		c.head = append(c.head, p[:want]...)
	}
	c.total += int64(len(p))
	if c.spoolOK {
		chunk := p
		if room := c.limit - c.spooled; int64(len(chunk)) > room {
			chunk = chunk[:room]
		}
		if len(chunk) > 0 {
			if _, err := c.f.Write(chunk); err != nil {
				c.spoolOK = false
			} else {
				c.h.Write(chunk)
				c.spooled += int64(len(chunk))
			}
		}
	}
	return len(p), nil
}

// truncated reports whether the inline head is a strict prefix of the
// stream.
func (c *capture) truncated() bool { return c.total > int64(len(c.head)) }

// close finalizes the spool file; it returns whether the file holds a
// publishable artifact (spool healthy and the stream outgrew the head).
func (c *capture) close() bool {
	if c.f == nil {
		return false
	}
	if err := c.f.Close(); err != nil {
		c.spoolOK = false
	}
	return c.spoolOK && c.truncated()
}

func (c *capture) digest() string { return hex.EncodeToString(c.h.Sum(nil)) }

// spool is one attempt's output capture set.
type spool struct {
	dir     string // real artifact directory ("" when staging is off)
	virtual string
	stdout  *capture
	stderr  *capture
}

// reservedArtifactNames are artifact file names owned by the output
// spools; collected sandbox files must not shadow them.
var reservedArtifactNames = map[string]bool{"stdout": true, "stderr": true}

// newSpool prepares the capture set for one attempt. With a stager, the
// job's artifact directory is created (emptied of any previous attempt's
// files) and the stdout/stderr spool files opened; without one, capture
// is head-only, preserving the pre-staging contract.
func (s *Service) newSpool(j *Job, owner pki.DN) *spool {
	headLimit := s.cfg.OutputLimit
	if s.stager == nil {
		return &spool{
			stdout: newCapture(headLimit, nil, 0),
			stderr: newCapture(headLimit, nil, 0),
		}
	}
	dir, virtual, err := s.stager.Create(j.ID, owner)
	if err == nil {
		err = clearDir(dir)
	}
	var outF, errF *os.File
	if err == nil {
		outF, err = os.OpenFile(filepath.Join(dir, "stdout"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	}
	if err == nil {
		errF, err = os.OpenFile(filepath.Join(dir, "stderr"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			outF.Close()
		}
	}
	if err != nil {
		// Degrade to head-only capture rather than failing the attempt:
		// the job still runs, the record just cannot reference artifacts.
		s.srv.Logger().Printf("jobsvc: spool setup for %s: %v", j.ID, err)
		return &spool{
			stdout: newCapture(headLimit, nil, 0),
			stderr: newCapture(headLimit, nil, 0),
		}
	}
	return &spool{
		dir:     dir,
		virtual: virtual,
		stdout:  newCapture(headLimit, outF, s.cfg.SpoolLimit),
		stderr:  newCapture(headLimit, errF, s.cfg.SpoolLimit),
	}
}

// finalize closes the spools and assembles the attempt's ExecResult:
// inline heads, the truncated flag, stdout/stderr artifacts for streams
// that outgrew their heads (small streams keep inline-only records and
// their spool files are deleted), plus any sandbox files matched by the
// job's collect globs. An artifact tree left empty is removed outright.
func (s *Service) finalize(j *Job, owner pki.DN, sp *spool, status ExecStatus, execErr error) ExecResult {
	res := ExecResult{
		Stdout:          string(sp.stdout.head),
		Stderr:          string(sp.stderr.head),
		ExitCode:        status.ExitCode,
		LocalUser:       status.LocalUser,
		StdoutTruncated: sp.stdout.truncated(),
		StderrTruncated: sp.stderr.truncated(),
	}
	res.Truncated = res.StdoutTruncated || res.StderrTruncated
	if sp.dir == "" {
		sp.stdout.close()
		sp.stderr.close()
		return res
	}
	var staged int64
	for _, c := range []*capture{sp.stdout, sp.stderr} {
		name := "stdout"
		if c == sp.stderr {
			name = "stderr"
		}
		if c.close() {
			res.Artifacts = append(res.Artifacts, Artifact{
				Name:    name,
				Path:    sp.virtual + "/" + name,
				Size:    c.spooled,
				MD5:     c.digest(),
				Partial: c.total > c.spooled,
			})
			staged += c.spooled
		} else {
			os.Remove(filepath.Join(sp.dir, name))
		}
	}
	if len(j.Collect) > 0 && s.collect != nil && execErr == nil {
		files, skipped, err := s.collect(owner, j.Collect, sp.dir, s.cfg.SpoolLimit)
		if err != nil {
			s.srv.Logger().Printf("jobsvc: collect for %s: %v", j.ID, err)
		}
		for _, name := range skipped {
			s.srv.Logger().Printf("jobsvc: collect for %s: %q exceeds the spool limit %d; not staged", j.ID, name, s.cfg.SpoolLimit)
		}
		for _, cf := range files {
			if reservedArtifactNames[cf.Name] {
				continue
			}
			res.Artifacts = append(res.Artifacts, Artifact{
				Name: cf.Name,
				Path: sp.virtual + "/" + cf.Name,
				Size: cf.Size,
				MD5:  cf.MD5,
			})
			staged += cf.Size
		}
	}
	if len(res.Artifacts) == 0 {
		// Nothing staged: drop the empty tree (and its ACL scope).
		if err := s.stager.Remove(j.ID); err != nil {
			s.srv.Logger().Printf("jobsvc: remove empty artifact tree %s: %v", j.ID, err)
		}
	} else {
		s.addArtifactBytes(staged)
	}
	return res
}

// clearDir removes every entry of dir (a fresh attempt must not inherit
// a previous attempt's files).
func clearDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// validArtifactName gates artifact file names that arrive from outside
// (federation peers naming artifacts in job.output): plain base names
// only, no path metas.
func validArtifactName(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\") && len(name) <= 255
}

// StageRemoteArtifact streams r into the named file of a remote shadow
// job's local artifact tree, creating the tree (scoped to the job's
// owner) on first use. The federation pull-back uses it to re-stage
// artifacts fetched from the executing peer, so shadow records converge
// to the same artifact shape as locally executed jobs. The staged
// reference is returned; content is capped at SpoolLimit.
func (s *Service) StageRemoteArtifact(jobID, name string, r io.Reader) (Artifact, error) {
	if !validArtifactName(name) {
		return Artifact{}, fmt.Errorf("jobsvc: invalid artifact name %q", name)
	}
	if s.stager == nil {
		return Artifact{}, fmt.Errorf("jobsvc: artifact staging is not enabled")
	}
	j, ok := s.Get(jobID)
	if !ok {
		return Artifact{}, fmt.Errorf("jobsvc: no such job %q", jobID)
	}
	if j.State != StateRemote {
		return Artifact{}, fmt.Errorf("jobsvc: job %s is %s, not remote", jobID, j.State)
	}
	owner, err := pki.ParseDN(j.Owner)
	if err != nil {
		return Artifact{}, err
	}
	dir, virtual, err := s.stager.Create(jobID, owner)
	if err != nil {
		return Artifact{}, err
	}
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return Artifact{}, err
	}
	h := md5.New()
	n, err := io.Copy(f, io.TeeReader(io.LimitReader(r, s.cfg.SpoolLimit), h))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(filepath.Join(dir, name))
		return Artifact{}, err
	}
	s.addArtifactBytes(n)
	return Artifact{
		Name: name,
		Path: virtual + "/" + name,
		Size: n,
		MD5:  hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// StagingEnabled reports whether an artifact stager is installed (the
// federation pull-back skips artifact transfers when the local server
// has nowhere to stage them).
func (s *Service) StagingEnabled() bool { return s.stager != nil }

// SpoolLimit returns the per-stream staging byte cap, so the federation
// pull-back can refuse up front a peer artifact that could never verify
// locally instead of truncating it into a guaranteed digest mismatch.
func (s *Service) SpoolLimit() int64 { return s.cfg.SpoolLimit }

func (s *Service) addArtifactBytes(n int64) {
	s.mu.Lock()
	s.artifactBytes += uint64(n)
	s.mu.Unlock()
}

// DiscardRemoteStage drops a partially re-staged artifact tree for a
// remote shadow job (a pull-back that failed mid-transfer retries from
// scratch next cycle).
func (s *Service) DiscardRemoteStage(jobID string) {
	if s.stager == nil {
		return
	}
	if err := s.stager.Remove(jobID); err != nil {
		s.srv.Logger().Printf("jobsvc: discard partial stage %s: %v", jobID, err)
	}
}

// gcArtifacts removes the artifact tree of one job and bumps the GC
// counter. Deliberately NOT called under s.mu: removing a multi-hundred-
// MiB tree can take a while on a slow disk, and s.mu is the scheduler's
// dispatch mutex.
func (s *Service) gcArtifacts(id string) {
	if s.stager == nil {
		return
	}
	if err := s.stager.Remove(id); err != nil {
		s.srv.Logger().Printf("jobsvc: gc artifact tree %s: %v", id, err)
		return
	}
	s.mu.Lock()
	s.artifactGC++
	s.mu.Unlock()
}
