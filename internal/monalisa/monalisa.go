// Package monalisa implements the monitoring substrate of the paper's
// discovery architecture (§2.4, Figure 3): MonALISA-style *station
// servers* that ingest UDP datagrams of monitoring tuples, arrange them
// "roughly as described by the GLUE schema, as a hierarchy of servers,
// farms, nodes and key/numerical value pairs", replicate them across a
// peer network (publish/subscribe), and serve snapshot queries and live
// subscriptions to discovery clients.
//
// Substitution (DESIGN.md §5): the production MonALISA network ran
// JINI/Java across 90+ sites; this package reproduces the same code path
// — UDP publish → station aggregation → peer republish → subscription —
// with site count as a test parameter.
package monalisa

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"
)

// Record is one monitoring tuple in GLUE-style hierarchy: farm → cluster
// → node, carrying numeric parameters and string tags.
type Record struct {
	Farm    string             `json:"farm"`
	Cluster string             `json:"cluster"`
	Node    string             `json:"node"`
	Params  map[string]float64 `json:"params,omitempty"`
	Tags    map[string]string  `json:"tags,omitempty"`
	Time    time.Time          `json:"time"`
	// Hops counts republications through the station network, bounding
	// flood propagation.
	Hops int `json:"hops,omitempty"`
}

// Key identifies the record's node slot in the hierarchy.
func (r *Record) Key() string {
	return r.Farm + "/" + r.Cluster + "/" + r.Node
}

// Validate checks the hierarchy fields.
func (r *Record) Validate() error {
	if r.Farm == "" || r.Node == "" {
		return fmt.Errorf("monalisa: record needs farm and node (got %q)", r.Key())
	}
	if strings.ContainsAny(r.Farm+r.Cluster+r.Node, "/\n") {
		return fmt.Errorf("monalisa: farm/cluster/node must not contain '/' or newlines")
	}
	return nil
}

// MaxHops bounds replication through the peer network.
const MaxHops = 4

// MaxDatagram is the largest accepted UDP payload.
const MaxDatagram = 60 * 1024

// Station is a MonALISA-style station server: it listens for UDP
// datagrams, stores the most recent record per node, republishes to
// peers, and feeds subscribers.
type Station struct {
	Name string

	mu      sync.RWMutex
	records map[string]*Record // node key -> latest record
	peers   []*net.UDPAddr
	subs    map[int]*subscriber
	nextSub int
	closed  bool

	conn *net.UDPConn
	wg   sync.WaitGroup

	// DefaultTTL ages out records not refreshed within the window;
	// zero disables expiry.
	DefaultTTL time.Duration
}

type subscriber struct {
	ch     chan Record
	filter func(*Record) bool
}

// NewStation starts a station listening on addr ("127.0.0.1:0" for tests).
func NewStation(name, addr string) (*Station, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("monalisa: %w", err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("monalisa: listen: %w", err)
	}
	st := &Station{
		Name:    name,
		records: make(map[string]*Record),
		subs:    make(map[int]*subscriber),
		conn:    conn,
	}
	st.wg.Add(1)
	go st.readLoop()
	return st, nil
}

// Addr returns the station's UDP address.
func (st *Station) Addr() *net.UDPAddr { return st.conn.LocalAddr().(*net.UDPAddr) }

func (st *Station) readLoop() {
	defer st.wg.Done()
	buf := make([]byte, MaxDatagram)
	for {
		n, _, err := st.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		var rec Record
		if err := json.Unmarshal(buf[:n], &rec); err != nil {
			continue // malformed datagram: drop, stations must not crash
		}
		if rec.Validate() != nil {
			continue
		}
		st.Ingest(&rec)
	}
}

// Ingest stores a record, notifies subscribers, and republishes to peers.
// Exposed for in-process wiring (the JClarens-as-JINI-client shortcut).
func (st *Station) Ingest(rec *Record) {
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	stored := *rec
	st.records[rec.Key()] = &stored
	var notify []*subscriber
	for _, sub := range st.subs {
		if sub.filter == nil || sub.filter(rec) {
			notify = append(notify, sub)
		}
	}
	peers := append([]*net.UDPAddr(nil), st.peers...)
	st.mu.Unlock()

	for _, sub := range notify {
		select {
		case sub.ch <- *rec:
		default: // slow subscriber: drop rather than block the station
		}
	}
	if rec.Hops < MaxHops && len(peers) > 0 {
		fwd := *rec
		fwd.Hops++
		data, err := json.Marshal(&fwd)
		if err != nil {
			return
		}
		for _, p := range peers {
			st.conn.WriteToUDP(data, p)
		}
	}
}

// Peer adds a peer station to republish into.
func (st *Station) Peer(addr *net.UDPAddr) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.peers = append(st.peers, addr)
}

// Subscribe returns a channel of records matching filter (nil = all) and
// a cancel function. The channel buffer holds up to 256 records; slow
// consumers lose records rather than stall the station.
func (st *Station) Subscribe(filter func(*Record) bool) (<-chan Record, func()) {
	st.mu.Lock()
	defer st.mu.Unlock()
	id := st.nextSub
	st.nextSub++
	sub := &subscriber{ch: make(chan Record, 256), filter: filter}
	st.subs[id] = sub
	cancel := func() {
		st.mu.Lock()
		defer st.mu.Unlock()
		if s, ok := st.subs[id]; ok {
			delete(st.subs, id)
			close(s.ch)
		}
	}
	return sub.ch, cancel
}

// Query returns a snapshot of records whose farm/cluster/node match the
// given values ("" matches anything), newest first.
func (st *Station) Query(farm, cluster, node string) []Record {
	now := time.Now()
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Record
	for _, rec := range st.records {
		if farm != "" && rec.Farm != farm {
			continue
		}
		if cluster != "" && rec.Cluster != cluster {
			continue
		}
		if node != "" && rec.Node != node {
			continue
		}
		if st.DefaultTTL > 0 && now.Sub(rec.Time) > st.DefaultTTL {
			continue
		}
		out = append(out, *rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Time.Equal(out[j].Time) {
			return out[i].Time.After(out[j].Time)
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}

// Farms lists the distinct farm names currently known.
func (st *Station) Farms() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	seen := map[string]bool{}
	for _, rec := range st.records {
		seen[rec.Farm] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored node records.
func (st *Station) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.records)
}

// Expire drops records older than ttl; returns how many were dropped.
func (st *Station) Expire(ttl time.Duration) int {
	cutoff := time.Now().Add(-ttl)
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for k, rec := range st.records {
		if rec.Time.Before(cutoff) {
			delete(st.records, k)
			n++
		}
	}
	return n
}

// Close stops the station.
func (st *Station) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	for id, sub := range st.subs {
		delete(st.subs, id)
		close(sub.ch)
	}
	st.mu.Unlock()
	err := st.conn.Close()
	st.wg.Wait()
	return err
}

// Publisher sends records to station servers over UDP, the path Clarens
// servers use to publish service information (paper §2.4: "Clarens
// servers can publish service information using a UDP-based application
// to so-called station servers").
type Publisher struct {
	mu      sync.Mutex
	conn    *net.UDPConn
	targets []*net.UDPAddr
}

// NewPublisher creates a publisher aimed at the given station addresses.
func NewPublisher(targets ...*net.UDPAddr) (*Publisher, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("monalisa: publisher: %w", err)
	}
	return &Publisher{conn: conn, targets: targets}, nil
}

// AddTarget adds another station server.
func (p *Publisher) AddTarget(addr *net.UDPAddr) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.targets = append(p.targets, addr)
}

// Publish sends one record to every target station.
func (p *Publisher) Publish(rec *Record) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(data) > MaxDatagram {
		return fmt.Errorf("monalisa: record exceeds datagram limit (%d bytes)", len(data))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	for _, t := range p.targets {
		if _, err := p.conn.WriteToUDP(data, t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close releases the publisher socket.
func (p *Publisher) Close() error { return p.conn.Close() }
