package monalisa

import (
	"fmt"
	"testing"
	"time"
)

func newStation(t *testing.T, name string) *Station {
	t.Helper()
	st, err := NewStation(name, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// waitFor polls until cond() or the deadline; avoids flaky fixed sleeps.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestPublishIngestQuery(t *testing.T) {
	st := newStation(t, "station-1")
	pub, err := NewPublisher(st.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	rec := &Record{
		Farm: "caltech", Cluster: "tier2", Node: "node001",
		Params: map[string]float64{"cpu_load": 0.75, "disk_free_gb": 120},
		Tags:   map[string]string{"os": "linux24"},
	}
	if err := pub.Publish(rec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "record ingest", func() bool { return st.Len() == 1 })

	got := st.Query("caltech", "", "")
	if len(got) != 1 {
		t.Fatalf("query = %d records", len(got))
	}
	if got[0].Params["cpu_load"] != 0.75 || got[0].Tags["os"] != "linux24" {
		t.Errorf("record = %+v", got[0])
	}
	if len(st.Query("elsewhere", "", "")) != 0 {
		t.Error("farm filter leaked")
	}
	if len(st.Query("caltech", "tier2", "node001")) != 1 {
		t.Error("full-path query failed")
	}
	if len(st.Query("", "tier2", "")) != 1 {
		t.Error("cluster query failed")
	}
}

func TestLatestRecordWins(t *testing.T) {
	st := newStation(t, "s")
	st.Ingest(&Record{Farm: "f", Node: "n", Params: map[string]float64{"v": 1}})
	st.Ingest(&Record{Farm: "f", Node: "n", Params: map[string]float64{"v": 2}})
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
	if got := st.Query("f", "", "")[0].Params["v"]; got != 2 {
		t.Errorf("latest value = %v", got)
	}
}

func TestSubscription(t *testing.T) {
	st := newStation(t, "s")
	ch, cancel := st.Subscribe(func(r *Record) bool { return r.Farm == "wanted" })
	defer cancel()
	st.Ingest(&Record{Farm: "ignored", Node: "n"})
	st.Ingest(&Record{Farm: "wanted", Node: "n"})
	select {
	case rec := <-ch:
		if rec.Farm != "wanted" {
			t.Errorf("subscription delivered %q", rec.Farm)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscription timeout")
	}
	cancel()
	// Cancel closes the channel; double-cancel is safe.
	cancel()
	if _, ok := <-ch; ok {
		// drain any buffered record, then expect close
		if _, ok := <-ch; ok {
			t.Error("channel not closed after cancel")
		}
	}
}

func TestPeerReplication(t *testing.T) {
	a := newStation(t, "a")
	b := newStation(t, "b")
	a.Peer(b.Addr())

	pub, err := NewPublisher(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.Publish(&Record{Farm: "f", Node: "n", Params: map[string]float64{"x": 1}})

	waitFor(t, "replication to peer", func() bool { return b.Len() == 1 })
	if got := b.Query("f", "", ""); len(got) != 1 || got[0].Hops != 1 {
		t.Errorf("replicated record = %+v", got)
	}
}

func TestReplicationLoopBounded(t *testing.T) {
	// a <-> b mutual peering must not flood forever thanks to MaxHops.
	a := newStation(t, "a")
	b := newStation(t, "b")
	a.Peer(b.Addr())
	b.Peer(a.Addr())
	a.Ingest(&Record{Farm: "f", Node: "n"})
	waitFor(t, "replication", func() bool { return b.Len() == 1 })
	// Give the loop a moment; the hop limit stops it.
	time.Sleep(50 * time.Millisecond)
	if a.Len() != 1 || b.Len() != 1 {
		t.Errorf("loop created records: a=%d b=%d", a.Len(), b.Len())
	}
}

func TestNinetySitesAggregate(t *testing.T) {
	// The paper: "MonALISA was monitoring more than 90 sites". One station
	// aggregates 90 publishing sites.
	st := newStation(t, "central")
	pub, err := NewPublisher(st.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	const sites = 90
	for i := 0; i < sites; i++ {
		err := pub.Publish(&Record{
			Farm:   fmt.Sprintf("site%02d", i),
			Node:   "gatekeeper",
			Params: map[string]float64{"nodes": float64(i % 100)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "90 sites", func() bool { return st.Len() == sites })
	if got := len(st.Farms()); got != sites {
		t.Errorf("farms = %d", got)
	}
}

func TestExpire(t *testing.T) {
	st := newStation(t, "s")
	st.Ingest(&Record{Farm: "old", Node: "n", Time: time.Now().Add(-time.Hour)})
	st.Ingest(&Record{Farm: "new", Node: "n"})
	if n := st.Expire(time.Minute); n != 1 {
		t.Errorf("expired = %d", n)
	}
	if st.Len() != 1 || len(st.Query("new", "", "")) != 1 {
		t.Error("wrong record expired")
	}
}

func TestQueryTTLFilter(t *testing.T) {
	st := newStation(t, "s")
	st.DefaultTTL = time.Minute
	st.Ingest(&Record{Farm: "stale", Node: "n", Time: time.Now().Add(-time.Hour)})
	if len(st.Query("", "", "")) != 0 {
		t.Error("stale record served despite DefaultTTL")
	}
}

func TestRecordValidation(t *testing.T) {
	bad := []Record{
		{},
		{Farm: "f"},
		{Farm: "f/slash", Node: "n"},
		{Farm: "f", Node: "n\nnewline"},
	}
	for _, r := range bad {
		if r.Validate() == nil {
			t.Errorf("record %+v should be invalid", r)
		}
	}
	ok := Record{Farm: "f", Cluster: "c", Node: "n"}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	if ok.Key() != "f/c/n" {
		t.Errorf("key = %q", ok.Key())
	}
}

func TestMalformedDatagramsIgnored(t *testing.T) {
	st := newStation(t, "s")
	pub, _ := NewPublisher(st.Addr())
	defer pub.Close()
	// Raw garbage straight at the socket.
	conn := pub.conn
	conn.WriteToUDP([]byte("not json"), st.Addr())
	conn.WriteToUDP([]byte(`{"farm":"","node":""}`), st.Addr())
	// A valid record still gets through afterwards.
	pub.Publish(&Record{Farm: "f", Node: "n"})
	waitFor(t, "valid record after garbage", func() bool { return st.Len() == 1 })
}

func TestPublisherValidation(t *testing.T) {
	st := newStation(t, "s")
	pub, _ := NewPublisher(st.Addr())
	defer pub.Close()
	if err := pub.Publish(&Record{}); err == nil {
		t.Error("invalid record must be rejected before sending")
	}
	big := &Record{Farm: "f", Node: "n", Tags: map[string]string{"blob": string(make([]byte, MaxDatagram))}}
	if err := pub.Publish(big); err == nil {
		t.Error("oversized record must be rejected")
	}
}

func TestStationCloseIdempotent(t *testing.T) {
	st, err := NewStation("s", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	// Ingest after close is a no-op, not a panic.
	st.Ingest(&Record{Farm: "f", Node: "n"})
	if st.Len() != 0 {
		t.Error("ingest after close stored a record")
	}
}

func TestAddTarget(t *testing.T) {
	a := newStation(t, "a")
	b := newStation(t, "b")
	pub, _ := NewPublisher(a.Addr())
	defer pub.Close()
	pub.AddTarget(b.Addr())
	pub.Publish(&Record{Farm: "f", Node: "n"})
	waitFor(t, "both stations", func() bool { return a.Len() == 1 && b.Len() == 1 })
}
