package faultinject

import (
	"bytes"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func pipeDial(server func(net.Conn)) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		a, b := net.Pipe()
		go server(b)
		return a, nil
	}
}

func TestDialErrorRate(t *testing.T) {
	in := New(Config{Seed: 7, DialErrorRate: 1})
	dial := in.Dial(pipeDial(func(c net.Conn) { c.Close() }))
	if _, err := dial("tcp", "whatever:1"); err == nil {
		t.Fatal("dial with DialErrorRate=1 succeeded")
	}
	var op *net.OpError
	if _, err := dial("tcp", "whatever:1"); !errors.As(err, &op) || op.Op != "dial" {
		t.Fatalf("injected dial error = %v, want *net.OpError{Op: dial}", err)
	}
	if in.Faults() == 0 {
		t.Error("Faults() did not count injected dial failures")
	}
}

func TestResetSurfacesError(t *testing.T) {
	in := New(Config{Seed: 1, ResetRate: 1})
	dial := in.Dial(pipeDial(func(c net.Conn) {
		buf := make([]byte, 16)
		c.Read(buf)
	}))
	c, err := dial("tcp", "x:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err == nil {
		t.Fatal("write on ResetRate=1 conn succeeded")
	}
	if _, err := c.Write([]byte("again")); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestCorruptionFlipsOneByte(t *testing.T) {
	payload := []byte("clarens-payload-bytes")
	got := make(chan []byte, 1)
	in := New(Config{Seed: 3, CorruptRate: 1})
	dial := in.Dial(pipeDial(func(c net.Conn) {
		buf := make([]byte, len(payload))
		n, _ := c.Read(buf)
		got <- buf[:n]
		c.Close()
	}))
	c, err := dial("tcp", "x:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if bytes.Equal(b, payload) {
			t.Fatal("CorruptRate=1 write arrived unmodified")
		}
		diff := 0
		for i := range b {
			if b[i] != payload[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Errorf("%d bytes differ, want exactly 1", diff)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never received the write")
	}
}

func TestDropSwallowsWrite(t *testing.T) {
	in := New(Config{Seed: 5, DropRate: 1})
	received := make(chan int, 1)
	dial := in.Dial(pipeDial(func(c net.Conn) {
		buf := make([]byte, 16)
		c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		n, _ := c.Read(buf)
		received <- n
	}))
	c, err := dial("tcp", "x:1")
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Write([]byte("vanishes"))
	if err != nil || n != 8 {
		t.Fatalf("dropped write reported (%d, %v), want (8, nil)", n, err)
	}
	if n := <-received; n != 0 {
		t.Errorf("peer received %d bytes of a dropped write", n)
	}
}

func TestFileWriteFailureSchedule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	f, err := OpenFile(path, FileConfig{FailWriteAfter: 2, PartialWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("record-one")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if _, err := f.Write([]byte("record-three")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write error = %v, want ErrInjected", err)
	}
	// The partial write left a torn prefix on disk: more than the two
	// clean records, less than all three.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	clean := int64(2 * len("record-one"))
	if st.Size() <= clean || st.Size() >= clean+int64(len("record-three")) {
		t.Errorf("file size %d after torn write, want in (%d, %d)", st.Size(), clean, clean+int64(len("record-three")))
	}
}

func TestFileSyncFailureSchedule(t *testing.T) {
	f, err := OpenFile(filepath.Join(t.TempDir(), "wal"), FileConfig{FailSyncAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("first sync: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync error = %v, want ErrInjected", err)
	}
}
