// Package faultinject provides deterministic fault injection for chaos
// testing the Clarens stack: a net.Conn / dialer wrapper that adds
// latency, drops, resets, and byte corruption at configurable rates,
// and an error-injecting WAL file for exercising the db layer's
// crash-safety paths. All randomness is seeded, so a failing chaos run
// reproduces from its seed.
package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Config sets injection rates (each a probability in [0,1], checked
// independently per I/O operation) and the added latency envelope.
type Config struct {
	// Seed makes the fault schedule reproducible; 0 means seed 1.
	Seed int64
	// LatencyMin/LatencyMax delay each Read/Write by a uniform random
	// duration in [min, max]. Zero max disables added latency.
	LatencyMin time.Duration
	LatencyMax time.Duration
	// DropRate silently discards a write (the peer never sees it) —
	// the connection then looks hung until a timeout fires.
	DropRate float64
	// ResetRate closes the connection mid-operation, surfacing a
	// "connection reset"-style error to both sides.
	ResetRate float64
	// CorruptRate flips one byte of the payload in transit.
	CorruptRate float64
	// DialErrorRate fails the dial itself with a refused-style error.
	DialErrorRate float64
}

// Injector owns the seeded fault schedule shared by every conn minted
// from it. It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	faults uint64 // injected faults so far, for reporting
}

// New builds an Injector from cfg.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Faults reports how many faults have been injected so far.
func (in *Injector) Faults() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// hit rolls one probability check, counting injected faults.
func (in *Injector) hit(rate float64) bool {
	if rate <= 0 {
		return false
	}
	in.mu.Lock()
	ok := in.rng.Float64() < rate
	if ok {
		in.faults++
	}
	in.mu.Unlock()
	return ok
}

// latency draws one added delay from the configured envelope.
func (in *Injector) latency() time.Duration {
	if in.cfg.LatencyMax <= 0 {
		return 0
	}
	in.mu.Lock()
	span := in.cfg.LatencyMax - in.cfg.LatencyMin
	d := in.cfg.LatencyMin
	if span > 0 {
		d += time.Duration(in.rng.Int63n(int64(span)))
	}
	in.mu.Unlock()
	return d
}

// corruptIndex picks which byte of an n-byte payload to flip.
func (in *Injector) corruptIndex(n int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Intn(n)
}

// Dial wraps a base dial function with fault injection. Use it as the
// DialContext-style seam of an http.Transport or any custom dialer.
func (in *Injector) Dial(base func(network, addr string) (net.Conn, error)) func(network, addr string) (net.Conn, error) {
	return func(network, addr string) (net.Conn, error) {
		if in.hit(in.cfg.DialErrorRate) {
			return nil, &net.OpError{Op: "dial", Net: network, Err: fmt.Errorf("faultinject: injected dial failure to %s", addr)}
		}
		c, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		return &Conn{Conn: c, in: in}, nil
	}
}

// Conn is a net.Conn that injects faults on Read and Write.
type Conn struct {
	net.Conn
	in *Injector

	mu    sync.Mutex
	reset bool
}

// errReset is returned once the conn has been force-reset.
type errReset struct{}

func (errReset) Error() string   { return "faultinject: connection reset by injector" }
func (errReset) Timeout() bool   { return false }
func (errReset) Temporary() bool { return false }

func (c *Conn) isReset() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reset
}

func (c *Conn) doReset() error {
	c.mu.Lock()
	c.reset = true
	c.mu.Unlock()
	c.Conn.Close()
	return errReset{}
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.isReset() {
		return 0, errReset{}
	}
	if d := c.in.latency(); d > 0 {
		time.Sleep(d)
	}
	if c.in.hit(c.in.cfg.ResetRate) {
		return 0, c.doReset()
	}
	n, err := c.Conn.Read(p)
	if n > 0 && c.in.hit(c.in.cfg.CorruptRate) {
		p[c.in.corruptIndex(n)] ^= 0xff
	}
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.isReset() {
		return 0, errReset{}
	}
	if d := c.in.latency(); d > 0 {
		time.Sleep(d)
	}
	if c.in.hit(c.in.cfg.ResetRate) {
		return 0, c.doReset()
	}
	if c.in.hit(c.in.cfg.DropRate) {
		// Pretend the bytes went out; the peer never sees them.
		return len(p), nil
	}
	if len(p) > 0 && c.in.hit(c.in.cfg.CorruptRate) {
		q := make([]byte, len(p))
		copy(q, p)
		q[c.in.corruptIndex(len(q))] ^= 0xff
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}
