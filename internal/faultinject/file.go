package faultinject

import (
	"errors"
	"os"
	"sync"
)

// ErrInjected is the error surfaced by a File operation that hit its
// configured failure point.
var ErrInjected = errors.New("faultinject: injected I/O error")

// FileConfig schedules failures on one WAL file. Counts are in
// operations since open; 0 disables that failure.
type FileConfig struct {
	// FailWriteAfter makes the (N+1)th and later Write calls fail.
	// With PartialWrites, the failing write first commits a prefix of
	// its payload — a torn record, as a crash mid-write would leave.
	FailWriteAfter int
	PartialWrites  bool
	// FailSyncAfter makes the (N+1)th and later Sync calls fail.
	FailSyncAfter int
}

// File wraps an *os.File with scheduled failures. It satisfies the db
// layer's WAL file seam (Write/Close/Sync/Truncate/Seek), so tests can
// drive the store into torn-tail and failed-fsync territory without a
// real crash.
type File struct {
	f   *os.File
	cfg FileConfig

	mu     sync.Mutex
	writes int
	syncs  int
}

// OpenFile opens path append-only (creating it if needed) behind the
// failure schedule, mirroring the db layer's default WAL open mode.
func OpenFile(path string, cfg FileConfig) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	return &File{f: f, cfg: cfg}, nil
}

func (w *File) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.writes++
	fail := w.cfg.FailWriteAfter > 0 && w.writes > w.cfg.FailWriteAfter
	partial := fail && w.cfg.PartialWrites
	w.mu.Unlock()
	if !fail {
		return w.f.Write(p)
	}
	if partial && len(p) > 1 {
		n, _ := w.f.Write(p[:len(p)/2]) // torn record on disk
		return n, ErrInjected
	}
	return 0, ErrInjected
}

func (w *File) Sync() error {
	w.mu.Lock()
	w.syncs++
	fail := w.cfg.FailSyncAfter > 0 && w.syncs > w.cfg.FailSyncAfter
	w.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return w.f.Sync()
}

func (w *File) Truncate(size int64) error { return w.f.Truncate(size) }

func (w *File) Seek(offset int64, whence int) (int64, error) { return w.f.Seek(offset, whence) }

func (w *File) Close() error { return w.f.Close() }
