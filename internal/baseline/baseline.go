// Package baseline implements a Globus Toolkit 3-style web-service
// container used as the performance comparator in experiment E3
// (DESIGN.md). The paper (§4 footnote, §5) reports that invoking "a
// trivial method 100 times ... across a 100 Mbps LAN using GTK 3.0 and
// GTK 3.9.1 resulted in 5 to 1 calls per second", versus ~1450/s for
// Clarens — roughly three orders of magnitude.
//
// This is a SUBSTITUTION (DESIGN.md §5): real GT3 cannot be run here, so
// the container reproduces GT3's *documented* per-call cost structure —
// the sources of overhead identified at the time by the Globus/OGSA
// performance literature — rather than its exact code:
//
//  1. WS-Security-style message-level security: per call, the full
//     request document is canonicalized and digested, a signature block
//     is verified (modeled by repeated SHA-256 passes + an RSA-like
//     modular exponentiation stand-in), and the response is signed the
//     same way. GT3 message security dominated its per-call time.
//  2. Full XML DOM parse + schema re-validation of the SOAP envelope on
//     every call (no parser/schema caching), modeled by N parse passes.
//  3. OGSA service-factory semantics: a fresh service instance (with
//     reflection-style handler lookup under a global container lock) is
//     created per call — no handler caching.
//  4. Grid-mapfile authorization: a linear scan over the grid-map on
//     every call (no session cache, unlike Clarens).
//
// Each knob is a tunable Cost so the E3 bench can also sweep an ablation
// (which overhead dominates). Defaults are calibrated so that commodity
// hardware lands in the low single-digit to tens of calls/second —
// preserving the paper's *shape* (orders-of-magnitude gap), not a claim
// of cycle-accuracy.
package baseline

import (
	"bytes"
	"crypto/sha256"
	"encoding/xml"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"strings"
	"sync"

	"clarens/internal/rpc"
	"clarens/internal/rpc/soaprpc"
)

// Costs control the per-call overhead knobs.
type Costs struct {
	// SecurityRounds is the number of canonicalize+digest passes per
	// message direction (request verify + response sign).
	SecurityRounds int
	// ModExpBits sizes the RSA-like modular exponentiation performed per
	// signature reference per direction (0 disables).
	ModExpBits int
	// Signatures is the number of signed references per message direction
	// (WS-Security typically signed Body, Timestamp, and the security
	// token separately).
	Signatures int
	// ParsePasses is how many times the envelope is re-parsed (DOM pass +
	// schema validation pass + dispatch pass in GT3).
	ParsePasses int
	// GridMapEntries is the size of the grid-mapfile scanned per call.
	GridMapEntries int
	// FactoryAllocKB is the per-call service-instance allocation, modeling
	// OGSA factory instantiation.
	FactoryAllocKB int
}

// DefaultCosts reflects GT3.0-era behavior (all overheads on).
func DefaultCosts() Costs {
	return Costs{
		SecurityRounds: 600,
		ModExpBits:     2048,
		Signatures:     3,
		ParsePasses:    3,
		GridMapEntries: 2000,
		FactoryAllocKB: 256,
	}
}

// LightCosts reflects GTK 3.9.1-era improvements (the paper's "5 to 1"
// range spans both): security retained, fewer redundant passes.
func LightCosts() Costs {
	return Costs{
		SecurityRounds: 120,
		ModExpBits:     2048,
		Signatures:     1,
		ParsePasses:    2,
		GridMapEntries: 2000,
		FactoryAllocKB: 64,
	}
}

// NoCosts disables all modeled overheads (ablation floor).
func NoCosts() Costs { return Costs{} }

// Handler is a baseline service method.
type Handler func(params []any) (any, error)

// Container is the GT3-like SOAP-only container.
type Container struct {
	mu       sync.Mutex // the global container lock (GT3 dispatch was serialized per service)
	services map[string]Handler
	costs    Costs
	gridMap  []string

	// modulus/exponent for the RSA-like stand-in.
	modulus *big.Int
	base    *big.Int
}

// NewContainer creates a container with the given cost model.
func NewContainer(costs Costs) *Container {
	c := &Container{
		services: make(map[string]Handler),
		costs:    costs,
	}
	for i := 0; i < costs.GridMapEntries; i++ {
		c.gridMap = append(c.gridMap, fmt.Sprintf(`"/O=grid/OU=People/CN=User %05d" user%05d`, i, i))
	}
	if costs.ModExpBits > 0 {
		one := big.NewInt(1)
		c.modulus = new(big.Int).Sub(new(big.Int).Lsh(one, uint(costs.ModExpBits)), big.NewInt(159))
		c.base = big.NewInt(65537)
	}
	return c
}

// Register adds a method (full dotted name) to the container.
func (c *Container) Register(name string, h Handler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.services[name] = h
}

// messageSecurity models WS-Security processing of one message direction.
func (c *Container) messageSecurity(doc []byte) {
	sum := sha256.Sum256(doc)
	for i := 0; i < c.costs.SecurityRounds; i++ {
		// canonicalization pass (copy) + digest, as XML-DSig requires
		canon := append([]byte(nil), doc...)
		for j := range canon {
			if canon[j] == '\r' {
				canon[j] = '\n'
			}
		}
		h := sha256.New()
		h.Write(sum[:])
		h.Write(canon[:min(len(canon), 1024)])
		copy(sum[:], h.Sum(nil))
	}
	if c.modulus != nil {
		// An RSA private-key operation uses a full-width private exponent;
		// expand the digest to modulus width so each modexp costs what a
		// real WS-Security signature did. One modexp per signed reference.
		sigs := c.costs.Signatures
		if sigs < 1 {
			sigs = 1
		}
		for s := 0; s < sigs; s++ {
			expBytes := make([]byte, 0, c.costs.ModExpBits/8)
			block := sha256.Sum256(append(sum[:], byte(s)))
			for len(expBytes) < c.costs.ModExpBits/8 {
				block = sha256.Sum256(block[:])
				expBytes = append(expBytes, block[:]...)
			}
			exp := new(big.Int).SetBytes(expBytes[:c.costs.ModExpBits/8])
			new(big.Int).Exp(c.base, exp, c.modulus)
		}
	}
}

// parseValidate models the DOM + schema validation passes.
func (c *Container) parseValidate(doc []byte) error {
	for i := 0; i < c.costs.ParsePasses; i++ {
		dec := xml.NewDecoder(bytes.NewReader(doc))
		depth := 0
		for {
			tok, err := dec.Token()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			switch tok.(type) {
			case xml.StartElement:
				depth++
			case xml.EndElement:
				depth--
			}
		}
		if depth != 0 {
			return fmt.Errorf("baseline: unbalanced document")
		}
	}
	return nil
}

// gridMapScan models grid-mapfile authorization: a linear scan.
func (c *Container) gridMapScan(dn string) bool {
	needle := `"` + dn + `"`
	found := false
	for _, line := range c.gridMap {
		if strings.HasPrefix(line, needle) {
			found = true // keep scanning: GT3 read the whole file
		}
	}
	return found || dn == "" // anonymous allowed for the trivial method
}

// factoryInstantiate models OGSA per-call service instance creation.
func (c *Container) factoryInstantiate() []byte {
	if c.costs.FactoryAllocKB == 0 {
		return nil
	}
	inst := make([]byte, c.costs.FactoryAllocKB*1024)
	for i := 0; i < len(inst); i += 4096 {
		inst[i] = byte(i) // touch pages
	}
	return inst
}

var soapCodec = soaprpc.New()

// ServeHTTP implements the container endpoint (SOAP only, like GT3).
func (c *Container) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoint", http.StatusMethodNotAllowed)
		return
	}
	doc, err := io.ReadAll(io.LimitReader(r.Body, 10<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := c.Invoke(doc, r.Header.Get("X-Baseline-DN"))
	w.Header().Set("Content-Type", "application/soap+xml; charset=utf-8")
	var buf bytes.Buffer
	if err := soapCodec.EncodeResponse(&buf, resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Sign the response (second message-security direction).
	c.messageSecurity(buf.Bytes())
	w.Write(buf.Bytes())
}

// Invoke runs the full GT3-like pipeline on a raw SOAP document.
func (c *Container) Invoke(doc []byte, dn string) *rpc.Response {
	// 1. message-level security (verify).
	c.messageSecurity(doc)
	// 2. DOM + schema validation passes.
	if err := c.parseValidate(doc); err != nil {
		return &rpc.Response{Fault: &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}}
	}
	req, err := soapCodec.DecodeRequest(bytes.NewReader(doc))
	if err != nil {
		f, ok := err.(*rpc.Fault)
		if !ok {
			f = &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
		}
		return &rpc.Response{Fault: f}
	}
	// 3. grid-map authorization scan.
	if !c.gridMapScan(dn) {
		return &rpc.Response{Fault: &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "not in grid-mapfile"}}
	}
	// 4. service factory instantiation under the container lock.
	c.mu.Lock()
	h, ok := c.services[req.Method]
	inst := c.factoryInstantiate()
	c.mu.Unlock()
	_ = inst
	if !ok {
		return &rpc.Response{Fault: &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: "no such service " + req.Method}}
	}
	result, err := h(req.Params)
	if err != nil {
		return &rpc.Response{Fault: &rpc.Fault{Code: rpc.CodeApplication, Message: err.Error()}}
	}
	norm, err := rpc.Normalize(result)
	if err != nil {
		return &rpc.Response{Fault: &rpc.Fault{Code: rpc.CodeInternal, Message: err.Error()}}
	}
	return &rpc.Response{Result: norm}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
