package baseline

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clarens/internal/rpc"
	"clarens/internal/rpc/soaprpc"
)

func trivialEcho(params []any) (any, error) {
	if len(params) == 0 {
		return nil, nil
	}
	return params[0], nil
}

func soapCall(t *testing.T, c *Container, method string, params ...any) *rpc.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := soaprpc.New().EncodeRequest(&buf, &rpc.Request{Method: method, Params: params}); err != nil {
		t.Fatal(err)
	}
	return c.Invoke(buf.Bytes(), "")
}

func TestInvokeEcho(t *testing.T) {
	c := NewContainer(NoCosts())
	c.Register("echo.echo", trivialEcho)
	resp := soapCall(t, c, "echo.echo", "hello")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	if !rpc.Equal(resp.Result, "hello") {
		t.Errorf("result = %#v", resp.Result)
	}
}

func TestMethodNotFound(t *testing.T) {
	c := NewContainer(NoCosts())
	resp := soapCall(t, c, "missing.method")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeMethodNotFound {
		t.Errorf("fault = %+v", resp.Fault)
	}
}

func TestGarbageRejected(t *testing.T) {
	c := NewContainer(NoCosts())
	resp := c.Invoke([]byte("not soap at all"), "")
	if resp.Fault == nil {
		t.Error("garbage must fault")
	}
}

func TestGridMapScan(t *testing.T) {
	c := NewContainer(Costs{GridMapEntries: 100})
	c.Register("echo.echo", trivialEcho)
	if !c.gridMapScan("/O=grid/OU=People/CN=User 00042") {
		t.Error("mapped DN rejected")
	}
	if c.gridMapScan("/O=elsewhere/CN=Nobody") {
		t.Error("unmapped DN accepted")
	}
	if !c.gridMapScan("") {
		t.Error("anonymous should be allowed for the trivial method")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	c := NewContainer(NoCosts())
	c.Register("echo.echo", trivialEcho)
	srv := httptest.NewServer(c)
	defer srv.Close()

	var buf bytes.Buffer
	soaprpc.New().EncodeRequest(&buf, &rpc.Request{Method: "echo.echo", Params: []any{"x"}})
	httpResp, err := http.Post(srv.URL, "application/soap+xml", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	resp, err := soaprpc.New().DecodeResponse(httpResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.Equal(resp.Result, "x") {
		t.Errorf("result = %#v", resp.Result)
	}
	// GET is rejected.
	g, _ := http.Get(srv.URL)
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET = %d", g.StatusCode)
	}
	g.Body.Close()
}

// TestOverheadOrdering verifies the cost model produces the paper's
// ordering: full GT3.0 costs < GTK3.9-like costs < no costs, in calls/sec.
func TestOverheadOrdering(t *testing.T) {
	var wire bytes.Buffer
	soaprpc.New().EncodeRequest(&wire, &rpc.Request{Method: "echo.echo", Params: []any{"x"}})
	doc := wire.Bytes()

	rate := func(costs Costs) float64 {
		c := NewContainer(costs)
		c.Register("echo.echo", trivialEcho)
		const calls = 5
		start := time.Now()
		for i := 0; i < calls; i++ {
			if resp := c.Invoke(doc, ""); resp.Fault != nil {
				t.Fatalf("fault: %v", resp.Fault)
			}
		}
		return calls / time.Since(start).Seconds()
	}

	full := rate(DefaultCosts())
	light := rate(LightCosts())
	none := rate(NoCosts())
	if !(full < light && light < none) {
		t.Errorf("cost ordering violated: full=%.1f light=%.1f none=%.1f calls/s", full, light, none)
	}
	t.Logf("baseline rates: GT3.0-like=%.1f/s GTK3.9-like=%.1f/s floor=%.0f/s", full, light, none)
}

func TestCostKnobsIndividuallyEffective(t *testing.T) {
	var wire bytes.Buffer
	soaprpc.New().EncodeRequest(&wire, &rpc.Request{Method: "m.m", Params: []any{"x"}})
	doc := wire.Bytes()
	base := NoCosts()
	knobs := []Costs{
		{SecurityRounds: 2000},
		{ModExpBits: 2048},
		{ParsePasses: 50},
		{GridMapEntries: 200000},
		{FactoryAllocKB: 4096},
	}
	elapsed := func(costs Costs) time.Duration {
		c := NewContainer(costs)
		c.Register("m.m", trivialEcho)
		start := time.Now()
		for i := 0; i < 3; i++ {
			c.Invoke(doc, "")
		}
		return time.Since(start)
	}
	floor := elapsed(base)
	for i, k := range knobs {
		if e := elapsed(k); e <= floor {
			t.Errorf("knob %d had no measurable cost (floor %v, got %v)", i, floor, e)
		}
	}
}
