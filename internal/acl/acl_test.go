package acl

import (
	"fmt"
	"testing"
	"testing/quick"

	"clarens/internal/db"
	"clarens/internal/pki"
)

var (
	alice = pki.MustParseDN("/O=grid/OU=People/CN=Alice")
	bob   = pki.MustParseDN("/O=grid/OU=People/CN=Bob")
	eve   = pki.MustParseDN("/O=dark/OU=People/CN=Eve")
)

// staticGroups implements GroupResolver from a fixed map.
type staticGroups map[string][]string

func (s staticGroups) IsMember(group string, dn pki.DN) bool {
	for _, m := range s[group] {
		if dn.String() == m {
			return true
		}
	}
	return false
}

func TestParseOrder(t *testing.T) {
	for s, want := range map[string]Order{
		"allow,deny": AllowDeny, "deny,allow": DenyAllow,
		"Allow, Deny": AllowDeny, " DENY,ALLOW ": DenyAllow,
	} {
		got, err := ParseOrder(s)
		if err != nil || got != want {
			t.Errorf("ParseOrder(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseOrder("bogus"); err == nil {
		t.Error("bad order must be rejected")
	}
	if AllowDeny.String() != "allow,deny" || DenyAllow.String() != "deny,allow" {
		t.Error("Order.String mismatch")
	}
}

func TestEvaluateSingleACL(t *testing.T) {
	groups := staticGroups{"cms": {alice.String(), bob.String()}}
	cases := []struct {
		name string
		acl  ACL
		dn   pki.DN
		want Decision
	}{
		{"allow-dn", ACL{AllowDNs: []string{alice.String()}}, alice, Allow},
		{"allow-dn-other", ACL{AllowDNs: []string{alice.String()}}, bob, NoOpinion},
		{"deny-dn", ACL{DenyDNs: []string{eve.String()}}, eve, Deny},
		{"allow-group", ACL{AllowGroups: []string{"cms"}}, bob, Allow},
		{"deny-group", ACL{DenyGroups: []string{"cms"}}, bob, Deny},
		{"both-allowdeny", ACL{Order: AllowDeny, AllowDNs: []string{alice.String()}, DenyDNs: []string{alice.String()}}, alice, Deny},
		{"both-denyallow", ACL{Order: DenyAllow, AllowDNs: []string{alice.String()}, DenyDNs: []string{alice.String()}}, alice, Allow},
		{"wildcard-allow", ACL{AllowDNs: []string{"*"}}, eve, Allow},
		{"prefix-allow", ACL{AllowDNs: []string{"/O=grid/OU=People"}}, bob, Allow},
		{"prefix-no-match", ACL{AllowDNs: []string{"/O=grid/OU=People"}}, eve, NoOpinion},
		{"unmentioned", ACL{AllowDNs: []string{alice.String()}, DenyDNs: []string{eve.String()}}, bob, NoOpinion},
	}
	for _, c := range cases {
		if got := c.acl.Evaluate(c.dn, groups); got != c.want {
			t.Errorf("%s: Evaluate = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAnonymousNeverMatchesStar(t *testing.T) {
	a := ACL{AllowDNs: []string{"*"}, AllowGroups: []string{"cms"}}
	if got := a.Evaluate(nil, staticGroups{"cms": {""}}); got != NoOpinion {
		t.Errorf("anonymous caller matched: %v", got)
	}
}

func TestAnonymousEntry(t *testing.T) {
	a := ACL{AllowDNs: []string{EntryAnonymous}}
	if got := a.Evaluate(nil, nil); got != Allow {
		t.Errorf("anonymous entry should admit the empty DN: %v", got)
	}
	if got := a.Evaluate(alice, nil); got != NoOpinion {
		t.Errorf("anonymous entry must not match authenticated callers: %v", got)
	}
	deny := ACL{DenyDNs: []string{EntryAnonymous}}
	if got := deny.Evaluate(nil, nil); got != Deny {
		t.Errorf("anonymous deny entry: %v", got)
	}
}

func newManager(t *testing.T, groups GroupResolver) *Manager {
	t.Helper()
	store, err := db.Open("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return NewManager(store, "acl_methods", groups)
}

func TestHierarchicalEvaluation(t *testing.T) {
	m := newManager(t, nil)
	// Grant at module level; the paper: "A DN or group granted access to a
	// higher level method automatically has access to a lower level
	// method, unless specifically denied at the lower level."
	if err := m.Set("file", &ACL{AllowDNs: []string{alice.String(), bob.String()}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Set("file.write", &ACL{DenyDNs: []string{bob.String()}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Authorize("file.read", alice); got != Allow {
		t.Errorf("alice file.read = %v, want allow (inherited)", got)
	}
	if got := m.Authorize("file.write", alice); got != Allow {
		t.Errorf("alice file.write = %v, want allow", got)
	}
	if got := m.Authorize("file.write", bob); got != Deny {
		t.Errorf("bob file.write = %v, want deny (specific deny wins)", got)
	}
	if got := m.Authorize("file.read", bob); got != Allow {
		t.Errorf("bob file.read = %v, want allow", got)
	}
	if got := m.Authorize("file.read", eve); got != Deny {
		t.Errorf("eve file.read = %v, want deny (secure default)", got)
	}
}

func TestLowestLevelWins(t *testing.T) {
	m := newManager(t, nil)
	m.Set("svc", &ACL{DenyDNs: []string{alice.String()}})
	m.Set("svc.sub", &ACL{AllowDNs: []string{alice.String()}})
	m.Set("svc.sub.method", &ACL{DenyDNs: []string{alice.String()}})
	if got := m.Authorize("svc.sub.method", alice); got != Deny {
		t.Errorf("3-level = %v, want deny from lowest level", got)
	}
	if got := m.Authorize("svc.sub.other", alice); got != Allow {
		t.Errorf("2-level = %v, want allow from svc.sub", got)
	}
	if got := m.Authorize("svc.other", alice); got != Deny {
		t.Errorf("1-level = %v, want deny from svc", got)
	}
}

func TestAuthorizeDetail(t *testing.T) {
	m := newManager(t, nil)
	m.Set("a", &ACL{AllowDNs: []string{alice.String()}})
	d, lvl := m.AuthorizeDetail("a.b.c", alice)
	if d != Allow || lvl != "a" {
		t.Errorf("detail = %v at %q", d, lvl)
	}
	d, lvl = m.AuthorizeDetail("zzz", alice)
	if d != Deny || lvl != "" {
		t.Errorf("default detail = %v at %q", d, lvl)
	}
}

func TestDefaultDenyWithNoACLs(t *testing.T) {
	m := newManager(t, nil)
	if got := m.Authorize("anything.at.all", alice); got != Deny {
		t.Errorf("no ACLs anywhere = %v, want deny", got)
	}
}

func TestGroupACLsWithResolver(t *testing.T) {
	groups := staticGroups{
		"cms":    {alice.String(), bob.String()},
		"banned": {eve.String()},
	}
	m := newManager(t, groups)
	m.Set("data", &ACL{AllowGroups: []string{"cms"}, DenyGroups: []string{"banned"}})
	if got := m.Authorize("data.read", alice); got != Allow {
		t.Errorf("group member = %v", got)
	}
	if got := m.Authorize("data.read", eve); got != Deny {
		t.Errorf("banned group = %v", got)
	}
}

func TestSetValidation(t *testing.T) {
	m := newManager(t, nil)
	if err := m.Set("", &ACL{}); err == nil {
		t.Error("empty path must be rejected")
	}
	if err := m.Set("p", &ACL{AllowDNs: []string{"not-a-dn"}}); err == nil {
		t.Error("bad DN in ACL must be rejected")
	}
	if err := m.Set("p", &ACL{AllowDNs: []string{"*"}}); err != nil {
		t.Errorf("wildcard is valid: %v", err)
	}
}

func TestGetDeletePaths(t *testing.T) {
	m := newManager(t, nil)
	m.Set("x", &ACL{Order: DenyAllow, AllowDNs: []string{"*"}})
	a, err := m.Get("x")
	if err != nil || a == nil {
		t.Fatalf("Get: %v %v", a, err)
	}
	if a.Order != DenyAllow || len(a.AllowDNs) != 1 {
		t.Errorf("stored ACL = %+v", a)
	}
	if got, _ := m.Get("missing"); got != nil {
		t.Error("missing path should yield nil")
	}
	if got := m.Paths(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Paths = %v", got)
	}
	if err := m.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Get("x"); got != nil {
		t.Error("deleted ACL still present")
	}
}

func TestCorruptEntryToleration(t *testing.T) {
	// A corrupt DN entry in a list must be skipped, not grant/deny all.
	a := ACL{AllowDNs: []string{"corrupt", alice.String()}}
	if got := a.Evaluate(alice, nil); got != Allow {
		t.Errorf("valid entry after corrupt one = %v", got)
	}
	if got := a.Evaluate(eve, nil); got != NoOpinion {
		t.Errorf("corrupt entry must not match anyone: %v", got)
	}
}

// Property: Authorize is monotone in specificity — adding a more specific
// ACL never changes decisions for paths outside its subtree.
func TestSpecificityIsolationProperty(t *testing.T) {
	f := func(seed uint8) bool {
		m := newManager(t, nil)
		m.Set("root", &ACL{AllowDNs: []string{alice.String()}})
		before := m.Authorize("root.other.method", alice)
		// Attach an arbitrary decision at a sibling subtree.
		deny := seed%2 == 0
		sub := &ACL{}
		if deny {
			sub.DenyDNs = []string{alice.String()}
		} else {
			sub.AllowDNs = []string{alice.String()}
		}
		m.Set("root.target", sub)
		after := m.Authorize("root.other.method", alice)
		return before == after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: with a single-level ACL, Allow and Deny are exhaustive and
// exclusive for mentioned callers under both orders.
func TestOrderSemanticsProperty(t *testing.T) {
	f := func(inAllow, inDeny bool, orderDA bool) bool {
		a := ACL{}
		if orderDA {
			a.Order = DenyAllow
		}
		if inAllow {
			a.AllowDNs = append(a.AllowDNs, alice.String())
		}
		if inDeny {
			a.DenyDNs = append(a.DenyDNs, alice.String())
		}
		got := a.Evaluate(alice, nil)
		switch {
		case !inAllow && !inDeny:
			return got == NoOpinion
		case inAllow && inDeny:
			if orderDA {
				return got == Allow
			}
			return got == Deny
		case inAllow:
			return got == Allow
		default:
			return got == Deny
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecisionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" || NoOpinion.String() != "no-opinion" {
		t.Error("Decision.String mismatch")
	}
}

func TestDeepHierarchy(t *testing.T) {
	m := newManager(t, nil)
	path := "l1"
	for i := 2; i <= 8; i++ {
		path = fmt.Sprintf("%s.l%d", path, i)
	}
	m.Set("l1", &ACL{AllowDNs: []string{alice.String()}})
	if got := m.Authorize(path, alice); got != Allow {
		t.Errorf("8-deep inheritance = %v", got)
	}
	m.Set(path, &ACL{DenyDNs: []string{alice.String()}})
	if got := m.Authorize(path, alice); got != Deny {
		t.Errorf("8-deep override = %v", got)
	}
}
