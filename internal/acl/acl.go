// Package acl implements Clarens access-control management (paper §2.2,
// §2.3): hierarchical ACLs on dotted method names and on file paths,
// "modelled after the access control (.htaccess) files used by Apache".
//
// An ACL consists of an evaluation-order specification (allow,deny or
// deny,allow) followed by four lists: DNs allowed, groups allowed, DNs
// denied, and groups denied. DN entries are structural prefixes (package
// pki). Evaluation walks "from the lowest applicable level to the
// highest": the most specific ACL that expresses an opinion about the
// caller wins, so "a DN or group granted access to a higher level method
// automatically has access to a lower level method, unless specifically
// denied at the lower level".
//
// File ACLs (paper §2.3) extend method ACLs "with two extra fields: read
// and write"; package fileservice keys them by access kind.
package acl

import (
	"fmt"
	"strings"
	"sync"

	"clarens/internal/db"
	"clarens/internal/pki"
)

// Order is the ACL evaluation order, with Apache .htaccess semantics.
type Order int

const (
	// AllowDeny: evaluate allow lists first, then deny lists; a caller
	// matched by both is denied; a caller matched by neither gets no
	// opinion at this level (the search continues upward).
	AllowDeny Order = iota
	// DenyAllow: evaluate deny lists first, then allow lists; a caller
	// matched by both is allowed.
	DenyAllow
)

// String renders the order in the Apache spelling.
func (o Order) String() string {
	if o == DenyAllow {
		return "deny,allow"
	}
	return "allow,deny"
}

// ParseOrder parses "allow,deny" or "deny,allow".
func ParseOrder(s string) (Order, error) {
	switch strings.ReplaceAll(strings.ToLower(strings.TrimSpace(s)), " ", "") {
	case "allow,deny":
		return AllowDeny, nil
	case "deny,allow":
		return DenyAllow, nil
	default:
		return 0, fmt.Errorf("acl: bad order %q (want \"allow,deny\" or \"deny,allow\")", s)
	}
}

// ACL is one access-control entry attached to a hierarchy level.
type ACL struct {
	Order       Order    `json:"order"`
	AllowDNs    []string `json:"allow_dns,omitempty"`
	AllowGroups []string `json:"allow_groups,omitempty"`
	DenyDNs     []string `json:"deny_dns,omitempty"`
	DenyGroups  []string `json:"deny_groups,omitempty"`
}

// Decision is the outcome of evaluating an ACL for a caller.
type Decision int

const (
	// NoOpinion: this level's lists don't mention the caller.
	NoOpinion Decision = iota
	Allow
	Deny
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	default:
		return "no-opinion"
	}
}

// GroupResolver answers group-membership queries; implemented by vo.Manager.
type GroupResolver interface {
	IsMember(group string, dn pki.DN) bool
}

// Evaluate applies this single ACL to the caller. It parses the DN entry
// lists on every call; the dispatch hot path goes through the Manager's
// compiled representation instead, which parses each entry exactly once.
func (a *ACL) Evaluate(dn pki.DN, groups GroupResolver) Decision {
	return a.compile().evaluate(dn, groups)
}

// compiledList is a DN entry list with every structural prefix parsed and
// the two special entries lifted into flags.
type compiledList struct {
	any  bool // "*": any authenticated caller
	anon bool // "anonymous": the empty DN
	dns  []pki.DN
}

func compileList(entries []string) compiledList {
	var cl compiledList
	for _, e := range entries {
		switch e {
		case EntryAny:
			cl.any = true
		case EntryAnonymous:
			cl.anon = true
		default:
			p, err := pki.ParseDN(e)
			if err != nil {
				continue // same tolerance as the interpreted path
			}
			cl.dns = append(cl.dns, p)
		}
	}
	return cl
}

// match mirrors matchDNs over the pre-parsed form: zero allocations.
func (cl *compiledList) match(dn pki.DN) bool {
	if dn.IsZero() {
		return cl.anon
	}
	if cl.any {
		return true
	}
	for _, p := range cl.dns {
		if dn.HasPrefix(p) {
			return true
		}
	}
	return false
}

// compiledACL is the evaluation-ready form of one ACL: built once at cache
// fill, immutable afterwards, shared by concurrent readers.
type compiledACL struct {
	order                   Order
	allowDNs, denyDNs       compiledList
	allowGroups, denyGroups []string
}

func (a *ACL) compile() *compiledACL {
	return &compiledACL{
		order:       a.Order,
		allowDNs:    compileList(a.AllowDNs),
		denyDNs:     compileList(a.DenyDNs),
		allowGroups: append([]string(nil), a.AllowGroups...),
		denyGroups:  append([]string(nil), a.DenyGroups...),
	}
}

func (c *compiledACL) evaluate(dn pki.DN, groups GroupResolver) Decision {
	allowed := c.allowDNs.match(dn) || matchGroups(dn, c.allowGroups, groups)
	denied := c.denyDNs.match(dn) || matchGroups(dn, c.denyGroups, groups)
	switch {
	case !allowed && !denied:
		return NoOpinion
	case allowed && denied:
		if c.order == DenyAllow {
			return Allow
		}
		return Deny
	case allowed:
		return Allow
	default:
		return Deny
	}
}

// Special DN-list entries: "*" matches any authenticated caller;
// "anonymous" matches the unauthenticated (empty) DN. The paper's Figure 4
// measurement runs unencrypted, unauthenticated clients through both
// access checks, which requires granting anonymous access explicitly.
const (
	EntryAny       = "*"
	EntryAnonymous = "anonymous"
)

func matchGroups(dn pki.DN, groups []string, resolver GroupResolver) bool {
	if resolver == nil || dn.IsZero() {
		return false
	}
	for _, g := range groups {
		if resolver.IsMember(g, dn) {
			return true
		}
	}
	return false
}

// Manager stores ACLs keyed by hierarchical dotted paths and evaluates
// them lowest-level-first. The same manager serves method ACLs (paths are
// method names) and file ACLs (paths are namespaced by the file service).
//
// Authorization is the per-request hot path (access check 2 of the
// paper's Figure 4 measurement), so the manager compiles ACLs once —
// every DN entry parsed into its structural pki.DN form — and caches both
// the compiled levels and the per-path level chain. The cache is keyed on
// the store bucket's generation counter: any Put or Delete in the bucket
// bumps the generation and the next authorization rebuilds lazily, so an
// acl.set is observable on the very next request.
type Manager struct {
	mu       sync.RWMutex
	store    *db.Store
	bucket   string
	resolver GroupResolver

	cacheMu  sync.RWMutex
	cacheGen uint64
	compiled map[string]*compiledACL // level -> compiled ACL (nil: none attached)
	chains   map[string][]chainLink  // full path -> levels that have ACLs
}

// chainLink is one level of a compiled authorization chain.
type chainLink struct {
	level string
	acl   *compiledACL
}

// chainCacheCap bounds the per-path chain cache; acl.check accepts
// arbitrary client-supplied paths, which must not pin unbounded memory.
// When exceeded the maps are reset rather than evicted entry-by-entry.
const chainCacheCap = 1 << 16

// NewManager creates an ACL manager over the given store bucket.
func NewManager(store *db.Store, bucket string, resolver GroupResolver) *Manager {
	return &Manager{store: store, bucket: bucket, resolver: resolver}
}

// Set attaches an ACL to the given hierarchy path (e.g. "file",
// "file.read", "system.acl.set").
func (m *Manager) Set(path string, a *ACL) error {
	if path == "" {
		return fmt.Errorf("acl: empty path")
	}
	for _, dns := range [][]string{a.AllowDNs, a.DenyDNs} {
		for _, e := range dns {
			if e == EntryAny || e == EntryAnonymous {
				continue
			}
			if _, err := pki.ParseDN(e); err != nil {
				return fmt.Errorf("acl: %w", err)
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.PutJSON(m.bucket, path, a)
}

// Get returns the ACL attached exactly at path, or nil.
func (m *Manager) Get(path string) (*ACL, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var a ACL
	found, err := m.store.GetJSON(m.bucket, path, &a)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return &a, nil
}

// Delete removes the ACL at path.
func (m *Manager) Delete(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.Delete(m.bucket, path)
}

// Paths lists all paths that have ACLs attached, sorted.
func (m *Manager) Paths() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.store.Keys(m.bucket, "")
}

// levels expands "a.b.c" into ["a.b.c", "a.b", "a"] — lowest level first,
// matching the paper's evaluation order.
func levels(path string) []string {
	out := []string{path}
	for {
		i := strings.LastIndexByte(path, '.')
		if i < 0 {
			return out
		}
		path = path[:i]
		out = append(out, path)
	}
}

// Authorize walks the hierarchy from the lowest applicable level to the
// highest and returns the first definite decision; if no level has an
// opinion the result is Deny (secure default — Clarens servers are
// deployed on the open internet).
func (m *Manager) Authorize(path string, dn pki.DN) Decision {
	d, _ := m.AuthorizeDetail(path, dn)
	return d
}

// AuthorizeDetail additionally reports which level decided, for audit
// logging and the acl.check service method ("" when no level decided).
// The walk evaluates the compiled chain for path: no JSON decoding and no
// DN parsing per request.
func (m *Manager) AuthorizeDetail(path string, dn pki.DN) (Decision, string) {
	chain := m.chain(path)
	for _, link := range chain {
		if d := link.acl.evaluate(dn, m.resolver); d != NoOpinion {
			return d, link.level
		}
	}
	return Deny, ""
}

// chain returns the compiled level chain for path, rebuilding the cache if
// the bucket generation moved. The generation is read before the store, so
// a write racing the rebuild at worst tags fresh data with a stale
// generation and causes one extra rebuild — never a stale grant.
func (m *Manager) chain(path string) []chainLink {
	gen := m.store.Generation(m.bucket)
	m.cacheMu.RLock()
	if m.cacheGen == gen && m.chains != nil {
		if chain, ok := m.chains[path]; ok {
			m.cacheMu.RUnlock()
			return chain
		}
	}
	m.cacheMu.RUnlock()

	m.cacheMu.Lock()
	defer m.cacheMu.Unlock()
	if m.cacheGen != gen || m.chains == nil || len(m.chains) >= chainCacheCap {
		m.cacheGen = gen
		m.compiled = make(map[string]*compiledACL)
		m.chains = make(map[string][]chainLink)
	} else if chain, ok := m.chains[path]; ok {
		return chain
	}
	var chain []chainLink
	for _, lvl := range levels(path) {
		c, ok := m.compiled[lvl]
		if !ok {
			var a ACL
			found, err := m.store.GetJSON(m.bucket, lvl, &a)
			if err == nil && found {
				c = a.compile()
			}
			m.compiled[lvl] = c
		}
		if c != nil {
			chain = append(chain, chainLink{level: lvl, acl: c})
		}
	}
	m.chains[path] = chain
	return chain
}
