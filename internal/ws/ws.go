// Package ws is a minimal RFC 6455 WebSocket implementation — just
// enough transport for the push-event plane: the opening handshake
// (server upgrade and client dial), text/binary data frames with
// fragmentation on read, ping/pong keepalive, and clean closes. The
// repo is dependency-free by design, so this is written against the
// standard library only.
package ws

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"crypto/tls"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Frame opcodes (RFC 6455 §5.2).
const (
	OpContinuation = 0x0
	OpText         = 0x1
	OpBinary       = 0x2
	OpClose        = 0x8
	OpPing         = 0x9
	OpPong         = 0xA
)

// wsGUID is the magic key suffix of the opening handshake (§1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// MaxMessage bounds a reassembled message; larger peers are cut off.
const MaxMessage = 8 << 20

// ErrClosed is returned by ReadMessage after a close frame has been
// received or the connection has been closed locally.
var ErrClosed = errors.New("ws: connection closed")

// Conn is one WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialized and may come from many.
type Conn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client side masks outgoing frames

	wmu       sync.Mutex
	closeOnce sync.Once
	closeErr  error
}

func newConn(c net.Conn, br *bufio.Reader, client bool) *Conn {
	if br == nil {
		br = bufio.NewReader(c)
	}
	return &Conn{conn: c, br: br, client: client}
}

// Upgrade performs the server side of the opening handshake, hijacking
// the HTTP connection. On failure it writes an HTTP error response to w
// and returns the error; on success the caller owns the returned Conn
// (w must not be touched again).
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: GET required", http.StatusMethodNotAllowed)
		return nil, errors.New("ws: method not GET")
	}
	if !headerHasToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: upgrade required", http.StatusBadRequest)
		return nil, errors.New("ws: not an upgrade request")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "websocket: version 13 required", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("ws: unsupported version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("ws: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: connection cannot be hijacked", http.StatusInternalServerError)
		return nil, errors.New("ws: ResponseWriter is not a Hijacker")
	}
	netConn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("ws: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + acceptKey(key) + "\r\n\r\n"
	netConn.SetDeadline(time.Time{})
	if _, err := netConn.Write([]byte(resp)); err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: write handshake: %w", err)
	}
	return newConn(netConn, rw.Reader, false), nil
}

func headerHasToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, t := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(t), token) {
				return true
			}
		}
	}
	return false
}

func acceptKey(key string) string {
	sum := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(sum[:])
}

// Dial opens a client WebSocket connection. rawURL may use the ws,
// wss, http, or https scheme; header carries extra handshake headers
// (e.g. the session token); tlsCfg applies to wss/https.
func Dial(rawURL string, header http.Header, tlsCfg *tls.Config, timeout time.Duration) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("ws: parse url: %w", err)
	}
	secure := false
	switch u.Scheme {
	case "ws", "http":
	case "wss", "https":
		secure = true
	default:
		return nil, fmt.Errorf("ws: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		if secure {
			host += ":443"
		} else {
			host += ":80"
		}
	}
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	d := &net.Dialer{Timeout: timeout}
	var netConn net.Conn
	if secure {
		cfg := tlsCfg
		if cfg == nil {
			cfg = &tls.Config{}
		}
		if cfg.ServerName == "" {
			cfg = cfg.Clone()
			cfg.ServerName = u.Hostname()
		}
		netConn, err = tls.DialWithDialer(d, "tcp", host, cfg)
	} else {
		netConn, err = d.Dial("tcp", host)
	}
	if err != nil {
		return nil, fmt.Errorf("ws: dial: %w", err)
	}
	netConn.SetDeadline(time.Now().Add(timeout))

	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		netConn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(nonce)
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	var req strings.Builder
	fmt.Fprintf(&req, "GET %s HTTP/1.1\r\nHost: %s\r\n", path, u.Host)
	req.WriteString("Upgrade: websocket\r\nConnection: Upgrade\r\n")
	fmt.Fprintf(&req, "Sec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n", key)
	for name, vals := range header {
		for _, v := range vals {
			fmt.Fprintf(&req, "%s: %s\r\n", name, v)
		}
	}
	req.WriteString("\r\n")
	if _, err := netConn.Write([]byte(req.String())); err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: write handshake: %w", err)
	}
	br := bufio.NewReader(netConn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodGet})
	if err != nil {
		netConn.Close()
		return nil, fmt.Errorf("ws: read handshake: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		netConn.Close()
		return nil, fmt.Errorf("ws: handshake rejected: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != acceptKey(key) {
		netConn.Close()
		return nil, fmt.Errorf("ws: bad Sec-WebSocket-Accept %q", got)
	}
	netConn.SetDeadline(time.Time{})
	return newConn(netConn, br, true), nil
}

// SetReadDeadline bounds the next ReadMessage.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// WriteMessage sends one data message (OpText or OpBinary) as a single
// unfragmented frame. Safe for concurrent use.
func (c *Conn) WriteMessage(opcode int, payload []byte) error {
	if opcode != OpText && opcode != OpBinary {
		return fmt.Errorf("ws: invalid data opcode %#x", opcode)
	}
	return c.writeFrame(byte(opcode), payload)
}

// Ping sends a ping control frame (payload may be nil, max 125 bytes).
func (c *Conn) Ping(payload []byte) error { return c.writeFrame(OpPing, payload) }

func (c *Conn) writeFrame(opcode byte, payload []byte) error {
	if opcode >= OpClose && len(payload) > 125 {
		return errors.New("ws: control frame payload over 125 bytes")
	}
	var hdr [14]byte
	hdr[0] = 0x80 | opcode // FIN always set: we never fragment writes
	n := 2
	switch {
	case len(payload) <= 125:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	buf := payload
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		copy(hdr[n:], mask[:])
		n += 4
		buf = make([]byte, len(payload))
		for i, b := range payload {
			buf[i] = b ^ mask[i&3]
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(buf)
	return err
}

// ReadMessage returns the next data message, transparently answering
// pings, absorbing pongs, and reassembling fragmented messages. After a
// close frame (or local Close) it returns ErrClosed.
func (c *Conn) ReadMessage() (opcode int, payload []byte, err error) {
	var msg []byte
	msgOp := 0
	for {
		op, fin, data, err := c.readFrame()
		if err != nil {
			return 0, nil, err
		}
		switch op {
		case OpPing:
			// Best-effort pong; a write failure surfaces on the next write.
			c.writeFrame(OpPong, data)
		case OpPong:
			// Keepalive answer; nothing to do.
		case OpClose:
			// Echo the close (status code only) and tear down.
			echo := data
			if len(echo) > 2 {
				echo = echo[:2]
			}
			c.writeFrame(OpClose, echo)
			c.conn.Close()
			return 0, nil, ErrClosed
		case OpContinuation:
			if msgOp == 0 {
				return 0, nil, errors.New("ws: continuation without initial frame")
			}
			msg = append(msg, data...)
			if len(msg) > MaxMessage {
				c.Close()
				return 0, nil, errors.New("ws: message too large")
			}
			if fin {
				return msgOp, msg, nil
			}
		case OpText, OpBinary:
			if msgOp != 0 {
				return 0, nil, errors.New("ws: new data frame inside fragmented message")
			}
			if fin {
				return int(op), data, nil
			}
			msgOp = int(op)
			msg = append(msg, data...)
		default:
			return 0, nil, fmt.Errorf("ws: reserved opcode %#x", op)
		}
	}
}

func (c *Conn) readFrame() (opcode byte, fin bool, payload []byte, err error) {
	var hdr [2]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, false, nil, err
	}
	if hdr[0]&0x70 != 0 {
		return 0, false, nil, errors.New("ws: nonzero reserved bits (no extensions negotiated)")
	}
	fin = hdr[0]&0x80 != 0
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	if opcode >= OpClose {
		if !fin || length > 125 {
			return 0, false, nil, errors.New("ws: malformed control frame")
		}
	}
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > MaxMessage {
		c.Close()
		return 0, false, nil, errors.New("ws: frame too large")
	}
	// RFC 6455 §5.1: clients MUST mask, servers MUST NOT.
	if !c.client && !masked && opcode != OpClose {
		return 0, false, nil, errors.New("ws: unmasked client frame")
	}
	var mask [4]byte
	if masked {
		if _, err := io.ReadFull(c.br, mask[:]); err != nil {
			return 0, false, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return 0, false, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return opcode, fin, payload, nil
}

// Close sends a close frame (best effort, bounded) and closes the
// underlying connection. Safe to call multiple times.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		var status [2]byte
		binary.BigEndian.PutUint16(status[:], 1000) // normal closure
		c.conn.SetWriteDeadline(time.Now().Add(time.Second))
		c.writeFrame(OpClose, status[:])
		c.closeErr = c.conn.Close()
	})
	return c.closeErr
}
