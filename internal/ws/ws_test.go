package ws

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer upgrades every request and echoes text/binary messages.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			op, data, err := conn.ReadMessage()
			if err != nil {
				return
			}
			if err := conn.WriteMessage(op, data); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestHandshakeAndEcho(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, msg := range []string{"hello", "", strings.Repeat("x", 70000)} {
		if err := conn.WriteMessage(OpText, []byte(msg)); err != nil {
			t.Fatal(err)
		}
		op, data, err := conn.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if op != OpText || string(data) != msg {
			t.Fatalf("echo of %d bytes came back as op=%d %d bytes", len(msg), op, len(data))
		}
	}
}

func TestHandshakeRejectsPlainGET(t *testing.T) {
	srv := echoServer(t)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("plain GET got %d, want 400", resp.StatusCode)
	}
}

func TestPingPong(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server's ReadMessage auto-pongs our ping; interleave with a
	// text message to prove the control frame is absorbed transparently.
	if err := conn.Ping([]byte("kev")); err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(OpText, []byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	_, data, err := conn.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "after-ping" {
		t.Fatalf("got %q, want the text message (pong absorbed)", data)
	}
}

// A fragmented client message must reassemble server-side.
func TestFragmentationReassembly(t *testing.T) {
	var got []byte
	var mu sync.Mutex
	done := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		_, data, err := conn.ReadMessage()
		if err == nil {
			mu.Lock()
			got = append([]byte(nil), data...)
			mu.Unlock()
		}
		close(done)
	}))
	defer srv.Close()
	conn, err := Dial(srv.URL, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hand-roll two fragments: text frame without FIN, then a
	// continuation with FIN. Frames are client-to-server, so masked.
	if err := writeRawFrame(conn, OpText, []byte("hello, "), false); err != nil {
		t.Fatal(err)
	}
	if err := writeRawFrame(conn, OpContinuation, []byte("world"), true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("server never reassembled the message")
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, []byte("hello, world")) {
		t.Fatalf("reassembled %q, want %q", got, "hello, world")
	}
}

// writeRawFrame emits one masked frame with explicit FIN control —
// the production writer never fragments, so fragmentation coverage
// builds its frames by hand (payloads under 126 bytes only).
func writeRawFrame(c *Conn, opcode byte, payload []byte, fin bool) error {
	hdr := []byte{opcode, 0x80 | byte(len(payload)), 0x17, 0x2a, 0x09, 0x41}
	if fin {
		hdr[0] |= 0x80
	}
	masked := make([]byte, len(payload))
	for i, b := range payload {
		masked[i] = b ^ hdr[2+i%4]
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.conn.Write(hdr); err != nil {
		return err
	}
	_, err := c.conn.Write(masked)
	return err
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	// Reads after close fail with ErrClosed, not a hang.
	if _, _, err := conn.ReadMessage(); err == nil {
		t.Fatal("read after close succeeded")
	}
	// Double close is a no-op.
	if err := conn.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestServerInitiatedClose(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		conn.Close()
	}))
	defer srv.Close()
	conn, err := Dial(srv.URL, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := conn.ReadMessage(); err != ErrClosed {
		t.Fatalf("read after server close: %v, want ErrClosed", err)
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	srv := echoServer(t)
	conn, err := Dial(srv.URL, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server must refuse a frame beyond MaxMessage instead of
	// buffering it; our own read then fails (connection torn down).
	if err := conn.WriteMessage(OpBinary, make([]byte, MaxMessage+1)); err != nil {
		return // write-side refusal is fine too
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := conn.ReadMessage(); err == nil {
		t.Fatal("oversized message echoed back")
	}
}
