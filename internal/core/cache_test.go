package core

import (
	"sync"
	"testing"

	"clarens/internal/acl"
	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
)

// These tests pin down the contract of the hot-path caches added for the
// Figure 4 optimization: every mutation — acl.set, vo.add_member, a
// session delete, a new Register — must be observable on the very next
// request. A stale grant or a resurrected session is a security bug, not
// a performance trade-off. The suite runs under -race in CI, exercising
// the generation-counter invalidation concurrently.

// probeService is a minimal target method for authorization probes.
type probeService struct{}

func (probeService) Name() string { return "cachetest" }

func (probeService) Methods() []Method {
	return []Method{{
		Name:      "cachetest.probe",
		Help:      "Return true; exists to probe ACL decisions.",
		Signature: []string{"boolean"},
		Handler:   func(ctx *Context, p Params) (any, error) { return true, nil },
	}}
}

// probe dispatches cachetest.probe over the HTTP handler with the given
// headers and reports whether it was allowed.
func probe(t *testing.T, s *Server, headers map[string]string) bool {
	t.Helper()
	resp := call(t, s, xmlrpc.New(), headers, "cachetest.probe")
	if resp.Fault == nil {
		return true
	}
	if resp.Fault.Code != rpc.CodeAccessDenied {
		t.Fatalf("unexpected fault: %v", resp.Fault)
	}
	return false
}

func TestACLSetObservableOnNextRequest(t *testing.T) {
	s := newTestServer(t)
	if err := s.Register(probeService{}); err != nil {
		t.Fatal(err)
	}
	admin := sessionFor(t, s, adminDN)
	user := sessionFor(t, s, userDN)

	// Warm the compiled-ACL cache with a denied decision.
	if probe(t, s, user) {
		t.Fatal("user allowed before any grant")
	}
	// acl.set granting the user must take effect on the next request.
	resp := call(t, s, xmlrpc.New(), admin, "acl.set",
		"cachetest", "allow,deny", []any{userDN.String()}, []any{}, []any{}, []any{})
	if resp.Fault != nil {
		t.Fatalf("acl.set: %v", resp.Fault)
	}
	if !probe(t, s, user) {
		t.Fatal("grant not visible on the next request (stale deny cached)")
	}
	// Replacing the grant with a deny must also be immediate: no stale
	// grant may survive the acl.set.
	resp = call(t, s, xmlrpc.New(), admin, "acl.set",
		"cachetest", "allow,deny", []any{}, []any{}, []any{userDN.String()}, []any{})
	if resp.Fault != nil {
		t.Fatalf("acl.set: %v", resp.Fault)
	}
	if probe(t, s, user) {
		t.Fatal("stale grant served after acl.set replaced it with a deny")
	}
	// acl.delete removes the module-level ACL entirely; with no level
	// expressing an opinion the secure default denies everyone, and that
	// too must be visible immediately.
	resp = call(t, s, xmlrpc.New(), admin, "acl.delete", "cachetest")
	if resp.Fault != nil {
		t.Fatalf("acl.delete: %v", resp.Fault)
	}
	if probe(t, s, user) {
		t.Fatal("user allowed after acl.delete removed the grant")
	}
	if probe(t, s, admin) {
		t.Fatal("admin allowed though no ACL level expresses an opinion")
	}
}

func TestVOAddMemberObservableOnNextRequest(t *testing.T) {
	s := newTestServer(t)
	if err := s.Register(probeService{}); err != nil {
		t.Fatal(err)
	}
	admin := sessionFor(t, s, adminDN)
	user := sessionFor(t, s, userDN)

	if resp := call(t, s, xmlrpc.New(), admin, "vo.create_group", "team"); resp.Fault != nil {
		t.Fatalf("vo.create_group: %v", resp.Fault)
	}
	if err := s.MethodACL().Set("cachetest", &acl.ACL{AllowGroups: []string{"team"}}); err != nil {
		t.Fatal(err)
	}
	// Warm the membership memo with the negative verdict.
	if probe(t, s, user) {
		t.Fatal("user allowed before joining the group")
	}
	if resp := call(t, s, xmlrpc.New(), admin, "vo.add_member", "team", userDN.String()); resp.Fault != nil {
		t.Fatalf("vo.add_member: %v", resp.Fault)
	}
	if !probe(t, s, user) {
		t.Fatal("membership not visible on the next request (stale memo)")
	}
	if resp := call(t, s, xmlrpc.New(), admin, "vo.remove_member", "team", userDN.String()); resp.Fault != nil {
		t.Fatalf("vo.remove_member: %v", resp.Fault)
	}
	if probe(t, s, user) {
		t.Fatal("stale membership served after vo.remove_member")
	}
}

func TestSessionDeleteNotResurrected(t *testing.T) {
	s := newTestServer(t)
	sess, err := s.NewSessionFor(userDN)
	if err != nil {
		t.Fatal(err)
	}
	headers := map[string]string{SessionHeader: sess.ID}
	resp := call(t, s, xmlrpc.New(), headers, "system.whoami")
	if resp.Fault != nil || resp.Result != userDN.String() {
		t.Fatalf("whoami with live session: %v / %v", resp.Result, resp.Fault)
	}
	if err := s.Sessions().Delete(sess.ID); err != nil {
		t.Fatal(err)
	}
	// The very next request must see the session gone: the cached
	// snapshot may not outlive the store record.
	resp = call(t, s, xmlrpc.New(), headers, "system.whoami")
	if resp.Fault != nil || resp.Result != "" {
		t.Fatalf("whoami after delete: got %q, want anonymous (resurrected session?)", resp.Result)
	}
}

func TestRegisterObservableInListMethods(t *testing.T) {
	s := newTestServer(t)
	listed := func() map[string]bool {
		resp := call(t, s, xmlrpc.New(), nil, "system.list_methods")
		if resp.Fault != nil {
			t.Fatalf("list_methods: %v", resp.Fault)
		}
		names, ok := resp.Result.([]any)
		if !ok {
			t.Fatalf("result = %T", resp.Result)
		}
		out := make(map[string]bool, len(names))
		for _, n := range names {
			out[n.(string)] = true
		}
		return out
	}
	if listed()["cachetest.probe"] {
		t.Fatal("cachetest.probe listed before registration")
	}
	if err := s.Register(probeService{}); err != nil {
		t.Fatal(err)
	}
	if !listed()["cachetest.probe"] {
		t.Fatal("cachetest.probe not listed on the request after Register (stale list cache)")
	}
}

// TestCacheInvalidationUnderConcurrency hammers the cached read paths
// while mutators run, for the race detector: the generation-counter
// handoff between store writes and cache rebuilds must be clean.
func TestCacheInvalidationUnderConcurrency(t *testing.T) {
	s := newTestServer(t)
	if err := s.Register(probeService{}); err != nil {
		t.Fatal(err)
	}
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // ACL mutator
		defer wg.Done()
		for i := 0; i < iters; i++ {
			dn := userDN.String()
			if i%2 == 1 {
				dn = adminDN.String()
			}
			if err := s.MethodACL().Set("cachetest", &acl.ACL{AllowDNs: []string{dn}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // authorization reader
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s.MethodACL().Authorize("cachetest.probe", userDN)
			s.VO().IsMember("admins", adminDN)
		}
	}()
	go func() { // session mutator
		defer wg.Done()
		for i := 0; i < iters; i++ {
			sess, err := s.NewSessionFor(userDN)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Sessions().Delete(sess.ID); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // dispatch reader (session lookup + ACL + list cache)
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			call(t, s, xmlrpc.New(), nil, "system.list_methods")
		}
	}()
	wg.Wait()

	// After the dust settles, the final ACL state must win.
	if err := s.MethodACL().Set("cachetest", &acl.ACL{AllowDNs: []string{userDN.String()}}); err != nil {
		t.Fatal(err)
	}
	if !probe(t, s, sessionFor(t, s, userDN)) {
		t.Fatal("final grant not observed after concurrent churn")
	}
}
