package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"clarens/internal/rpc"
	"clarens/internal/telemetry"
)

// This file exposes the flight recorder: the trace.* RPC service (gated
// by the module's default admins-group ACL), the GET /debug/traces/<id>
// JSON endpoint, and the federated trace assembly that stitches a
// forwarded job's spans from origin and executing peers into one tree.

// traceService serves trace.get and trace.search over the span store.
type traceService struct{ s *Server }

func (traceService) Name() string { return "trace" }

func (sv traceService) Methods() []Method {
	return []Method{
		{
			Name: "trace.get",
			Help: "Return the stored span tree of one trace. Unless the optional " +
				"local_only flag is true, the server fans out to the peers the " +
				"trace was forwarded to and merges their spans into one tree.",
			Signature: []string{"struct string", "struct string boolean"},
			Handler:   sv.get,
		},
		{
			Name: "trace.search",
			Help: "List sampled traces, newest first. Optional filter struct: " +
				"method, server, min_ms (int), fault (bool), limit (int).",
			Signature: []string{"array", "array struct"},
			Handler:   sv.search,
		},
	}
}

// fetchTimeout bounds each peer fetch during federated assembly.
const traceFetchTimeout = 3 * time.Second

// traceFetchClient fetches peer /debug/traces documents; its own client
// so assembly timeouts never interfere with the default transport.
var traceFetchClient = &http.Client{Timeout: traceFetchTimeout}

func (sv traceService) get(ctx *Context, params Params) (any, error) {
	id, err := params.String(0)
	if err != nil {
		return nil, err
	}
	localOnly := false
	if len(params) > 1 {
		if localOnly, err = params.Bool(1); err != nil {
			return nil, err
		}
	}
	if !telemetry.ValidTraceID(id) {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "invalid trace id"}
	}
	doc := sv.s.assembleTrace(id, localOnly)
	if len(doc["spans"].([]any)) == 0 {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("trace %s not found in span store", id)}
	}
	return doc, nil
}

func (sv traceService) search(ctx *Context, params Params) (any, error) {
	var method, server string
	var minMS, limit int
	var faultOnly bool
	if len(params) > 0 {
		f, ok := params[0].(map[string]any)
		if !ok {
			return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "parameter 0: want filter struct"}
		}
		method, _ = f["method"].(string)
		server, _ = f["server"].(string)
		faultOnly, _ = f["fault"].(bool)
		switch n := f["min_ms"].(type) {
		case int:
			minMS = n
		case float64:
			minMS = int(n)
		}
		switch n := f["limit"].(type) {
		case int:
			limit = n
		case float64:
			limit = int(n)
		}
	}
	if limit <= 0 || limit > 500 {
		limit = 100
	}
	out := make([]any, 0, limit)
	for _, sum := range sv.s.spans.Summaries() {
		if method != "" && sum.RootMethod != method {
			continue
		}
		if faultOnly && sum.Fault == 0 {
			continue
		}
		if minMS > 0 && sum.Duration < time.Duration(minMS)*time.Millisecond {
			continue
		}
		if server != "" {
			found := false
			for _, sn := range sum.Servers {
				if sn == server {
					found = true
					break
				}
			}
			if !found {
				continue
			}
		}
		servers := make([]any, len(sum.Servers))
		for i, sn := range sum.Servers {
			servers[i] = sn
		}
		out = append(out, map[string]any{
			"trace":   sum.Trace,
			"method":  sum.RootMethod,
			"start":   sum.Start,
			"dur_ms":  float64(sum.Duration) / float64(time.Millisecond),
			"spans":   sum.Spans,
			"fault":   sum.Fault,
			"servers": servers,
			"sampled": true,
		})
		if len(out) >= limit {
			break
		}
	}
	return out, nil
}

// assembleTrace builds one merged trace document: the local spans plus —
// unless localOnly — the spans each linked peer recorded, fetched over
// the peers' /debug/traces endpoints with ?local=1 (one hop, no
// recursive fan-out). Peers that fail to answer are reported in the
// document's "errors" list rather than failing the whole assembly.
func (s *Server) assembleTrace(id string, localOnly bool) map[string]any {
	spans := make([]any, 0, 16)
	seenSpans := make(map[string]bool)
	servers := []any{}
	seenServers := make(map[string]bool)
	var errs []any

	addSpan := func(m map[string]any) {
		sid, _ := m["span"].(string)
		if sid != "" && seenSpans[sid] {
			return
		}
		seenSpans[sid] = true
		spans = append(spans, m)
		if sn, _ := m["server"].(string); sn != "" && !seenServers[sn] {
			seenServers[sn] = true
			servers = append(servers, sn)
		}
	}

	for _, sp := range s.spans.Trace(id) {
		addSpan(spanToMap(sp))
	}
	links := s.spans.Links(id)
	if !localOnly {
		for _, peer := range links {
			doc, err := fetchPeerTrace(peer, id)
			if err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", peer, err))
				continue
			}
			for _, raw := range doc.Spans {
				m := rawSpanToMap(raw, doc.Server)
				addSpan(m)
			}
		}
	}
	linksOut := make([]any, len(links))
	for i, l := range links {
		linksOut[i] = l
	}
	out := map[string]any{
		"trace":   id,
		"servers": servers,
		"spans":   spans,
		"links":   linksOut,
	}
	if len(errs) > 0 {
		out["errors"] = errs
	}
	return out
}

// debugTraceDoc is the JSON shape served by /debug/traces/<id> and
// consumed during federated assembly.
type debugTraceDoc struct {
	Server string            `json:"server"`
	Trace  string            `json:"trace"`
	Spans  []json.RawMessage `json:"spans"`
	Links  []string          `json:"links,omitempty"`
}

// fetchPeerTrace pulls one peer's local view of a trace. peer is the
// peer's RPC URL as recorded by the forward edge; the debug endpoint
// lives beside the RPC path.
func fetchPeerTrace(peer, id string) (*debugTraceDoc, error) {
	base := strings.TrimSuffix(strings.TrimSuffix(peer, "/"), "/rpc")
	url := base + "/debug/traces/" + id + "?local=1"
	resp, err := traceFetchClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer returned %s", resp.Status)
	}
	var doc debugTraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// spanToMap renders a span into the codec value model shared by the
// trace.get RPC and the /debug/traces JSON document.
func spanToMap(sp telemetry.Span) map[string]any {
	m := map[string]any{
		"trace":  sp.Trace,
		"span":   sp.Span,
		"method": sp.Method,
		"start":  sp.Start,
		// Unix milliseconds with a fractional part: XML-RPC datetimes
		// carry whole seconds only, too coarse to position waterfall
		// bars, and float64 millis stay exact to sub-microsecond here.
		"start_ms": float64(sp.Start.UnixNano()) / 1e6,
		"dur_ms":   float64(sp.Duration) / float64(time.Millisecond),
	}
	if sp.Parent != "" {
		m["parent"] = sp.Parent
	}
	if sp.DN != "" {
		m["dn"] = sp.DN
	}
	if sp.Peer != "" {
		m["peer"] = sp.Peer
	}
	if sp.Server != "" {
		m["server"] = sp.Server
	}
	if sp.Fault != 0 {
		m["fault"] = sp.Fault
	}
	if sp.Depth != 0 {
		m["depth"] = sp.Depth
	}
	return m
}

// rawSpanToMap decodes one peer span (telemetry.Span JSON) into the
// value-model map, stamping the peer's server name when the span lacks
// one.
func rawSpanToMap(raw json.RawMessage, server string) map[string]any {
	var sp telemetry.Span
	if err := json.Unmarshal(raw, &sp); err != nil {
		return map[string]any{"error": err.Error(), "server": server}
	}
	if sp.Server == "" {
		sp.Server = server
	}
	return spanToMap(sp)
}

// handleDebugTrace serves GET /debug/traces/<id>: the stored spans of
// one trace as JSON. With ?local=1 only this server's spans are
// returned (the form peers use during assembly, terminating the
// fan-out at one hop); otherwise the response is the fully merged
// federated document.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "trace endpoint accepts GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/traces/")
	if id == "" || !telemetry.ValidTraceID(id) {
		http.Error(w, "usage: GET /debug/traces/<trace-id>", http.StatusBadRequest)
		return
	}
	localOnly := r.URL.Query().Get("local") != ""

	// The raw local form carries telemetry.Span JSON directly — the shape
	// fetchPeerTrace consumes.
	if localOnly {
		spans := s.spans.Trace(id)
		raws := make([]json.RawMessage, 0, len(spans))
		for _, sp := range spans {
			if sp.Server == "" {
				sp.Server = s.cfg.ServerName
			}
			b, err := json.Marshal(sp)
			if err != nil {
				continue
			}
			raws = append(raws, b)
		}
		writeJSON(w, debugTraceDoc{
			Server: s.cfg.ServerName,
			Trace:  id,
			Spans:  raws,
			Links:  s.spans.Links(id),
		})
		return
	}
	writeJSON(w, s.assembleTrace(id, false))
}

// writeJSON writes v as an indented JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
