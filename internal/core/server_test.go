package core

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"clarens/internal/acl"
	"clarens/internal/pki"
	"clarens/internal/rpc"
	"clarens/internal/rpc/jsonrpc"
	"clarens/internal/rpc/soaprpc"
	"clarens/internal/rpc/xmlrpc"
)

var (
	adminDN = pki.MustParseDN("/O=caltech/OU=People/CN=Admin")
	userDN  = pki.MustParseDN("/O=grid/OU=People/CN=User")
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(Config{AdminDNs: []string{adminDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// call posts an RPC over the in-process HTTP handler.
func call(t *testing.T, s *Server, codec rpc.Codec, headers map[string]string, method string, params ...any) *rpc.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := codec.EncodeRequest(&buf, &rpc.Request{Method: method, Params: params, ID: 1}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/rpc", &buf)
	req.Header.Set("Content-Type", codec.ContentTypes()[0])
	if codec.Name() == "soap" {
		req.Header.Set("SOAPAction", `"urn:clarens#`+method+`"`)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", w.Code, w.Body.String())
	}
	resp, err := codec.DecodeResponse(w.Body)
	if err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp
}

// sessionFor creates a session and returns headers carrying it.
func sessionFor(t *testing.T, s *Server, dn pki.DN) map[string]string {
	t.Helper()
	sess, err := s.NewSessionFor(dn)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]string{SessionHeader: sess.ID}
}

func TestListMethodsAnonymous(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "system.list_methods")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	names, ok := resp.Result.([]any)
	if !ok {
		t.Fatalf("result = %T", resp.Result)
	}
	// The core services alone register 26 methods; the full server (file,
	// shell, proxy, discovery) exceeds the paper's "more than 30 strings".
	if len(names) < 26 {
		t.Errorf("method count = %d", len(names))
	}
	found := false
	for _, n := range names {
		if n == "system.list_methods" {
			found = true
		}
	}
	if !found {
		t.Error("system.list_methods missing from listing")
	}
}

func TestAllProtocolsDispatch(t *testing.T) {
	s := newTestServer(t)
	for _, codec := range []rpc.Codec{xmlrpc.New(), jsonrpc.New(), soaprpc.New()} {
		t.Run(codec.Name(), func(t *testing.T) {
			resp := call(t, s, codec, nil, "system.echo", "round-trip")
			if resp.Fault != nil {
				t.Fatalf("fault: %v", resp.Fault)
			}
			if !rpc.Equal(resp.Result, "round-trip") {
				t.Errorf("result = %#v", resp.Result)
			}
		})
	}
}

func TestContentTypeSelectsCodec(t *testing.T) {
	s := newTestServer(t)
	// JSON body with JSON content type must be handled by jsonrpc.
	body := `{"method":"system.ping","params":[],"id":9}`
	req := httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), `"pong"`) {
		t.Errorf("json response: %s", w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("response content type = %q", ct)
	}
}

func TestMethodNotFound(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "no.such_method")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeMethodNotFound {
		t.Errorf("fault = %+v", resp.Fault)
	}
}

func TestParseErrorProducesFault(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader("<bogus"))
	req.Header.Set("Content-Type", "text/xml")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	resp, err := xmlrpc.New().DecodeResponse(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeParse {
		t.Errorf("fault = %+v", resp.Fault)
	}
}

func TestGetOnRPCEndpointRejected(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/rpc", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /rpc = %d", w.Code)
	}
}

func TestRootBannerAndRootPost(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "clarens-go") {
		t.Errorf("banner: %s", w.Body.String())
	}
	// RPC POST to "/" works like PClarens' URL dispatch.
	var buf bytes.Buffer
	xmlrpc.New().EncodeRequest(&buf, &rpc.Request{Method: "system.ping"})
	req = httptest.NewRequest(http.MethodPost, "/", &buf)
	req.Header.Set("Content-Type", "text/xml")
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "pong") {
		t.Errorf("POST /: %s", w.Body.String())
	}
}

func TestSessionAuthViaHeader(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "system.whoami")
	if !rpc.Equal(resp.Result, "") {
		t.Errorf("anonymous whoami = %#v", resp.Result)
	}
	hdr := sessionFor(t, s, userDN)
	resp = call(t, s, xmlrpc.New(), hdr, "system.whoami")
	if !rpc.Equal(resp.Result, userDN.String()) {
		t.Errorf("session whoami = %#v", resp.Result)
	}
}

func TestSessionAuthViaCookie(t *testing.T) {
	s := newTestServer(t)
	sess, _ := s.NewSessionFor(userDN)
	var buf bytes.Buffer
	xmlrpc.New().EncodeRequest(&buf, &rpc.Request{Method: "system.whoami"})
	req := httptest.NewRequest(http.MethodPost, "/rpc", &buf)
	req.Header.Set("Content-Type", "text/xml")
	req.AddCookie(&http.Cookie{Name: SessionCookie, Value: sess.ID})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if !strings.Contains(w.Body.String(), "CN=User") {
		t.Errorf("cookie auth: %s", w.Body.String())
	}
}

func TestLogoutInvalidatesSession(t *testing.T) {
	s := newTestServer(t)
	hdr := sessionFor(t, s, userDN)
	resp := call(t, s, xmlrpc.New(), hdr, "system.logout")
	if resp.Fault != nil || !rpc.Equal(resp.Result, true) {
		t.Fatalf("logout = %#v %v", resp.Result, resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), hdr, "system.whoami")
	if !rpc.Equal(resp.Result, "") {
		t.Errorf("whoami after logout = %#v", resp.Result)
	}
}

func TestACLDeniesUnauthorizedMethod(t *testing.T) {
	s := newTestServer(t)
	// vo.create_group is admin-gated by the default ACLs.
	resp := call(t, s, xmlrpc.New(), nil, "vo.create_group", "cms")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
		t.Errorf("anonymous create_group fault = %+v", resp.Fault)
	}
	hdrUser := sessionFor(t, s, userDN)
	resp = call(t, s, xmlrpc.New(), hdrUser, "vo.create_group", "cms")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
		t.Errorf("user create_group fault = %+v", resp.Fault)
	}
	hdrAdmin := sessionFor(t, s, adminDN)
	resp = call(t, s, xmlrpc.New(), hdrAdmin, "vo.create_group", "cms")
	if resp.Fault != nil {
		t.Errorf("admin create_group fault = %v", resp.Fault)
	}
}

func TestPublicMethodBlockedByExplicitDeny(t *testing.T) {
	s := newTestServer(t)
	err := s.MethodACL().Set("system.ping", &acl.ACL{DenyDNs: []string{acl.EntryAnonymous}})
	if err != nil {
		t.Fatal(err)
	}
	resp := call(t, s, xmlrpc.New(), nil, "system.ping")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
		t.Errorf("explicit deny on public method = %+v", resp.Fault)
	}
	// Authenticated users remain allowed.
	hdr := sessionFor(t, s, userDN)
	resp = call(t, s, xmlrpc.New(), hdr, "system.ping")
	if resp.Fault != nil {
		t.Errorf("authenticated ping fault = %v", resp.Fault)
	}
}

func TestVOServiceEndToEnd(t *testing.T) {
	s := newTestServer(t)
	admin := sessionFor(t, s, adminDN)
	for _, step := range []struct {
		method string
		params []any
	}{
		{"vo.create_group", []any{"cms"}},
		{"vo.create_group", []any{"cms.hcal"}},
		{"vo.add_member", []any{"cms", userDN.String()}},
		{"vo.add_admin", []any{"cms", userDN.String()}},
	} {
		resp := call(t, s, xmlrpc.New(), admin, step.method, step.params...)
		if resp.Fault != nil {
			t.Fatalf("%s: %v", step.method, resp.Fault)
		}
	}
	resp := call(t, s, xmlrpc.New(), nil, "vo.is_member", "cms.hcal", userDN.String())
	if !rpc.Equal(resp.Result, true) {
		t.Errorf("inherited membership = %#v (fault %v)", resp.Result, resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), admin, "vo.group_info", "cms")
	if resp.Fault != nil {
		t.Fatalf("group_info: %v", resp.Fault)
	}
	info := resp.Result.(map[string]any)
	if !rpc.Equal(info["members"], []any{userDN.String()}) {
		t.Errorf("members = %#v", info["members"])
	}
	// User session: my_groups reflects membership.
	hdr := sessionFor(t, s, userDN)
	resp = call(t, s, xmlrpc.New(), hdr, "vo.my_groups")
	got, _ := resp.Result.([]any)
	if len(got) != 2 { // cms and cms.hcal
		t.Errorf("my_groups = %#v", resp.Result)
	}
}

func TestACLServiceEndToEnd(t *testing.T) {
	s := newTestServer(t)
	admin := sessionFor(t, s, adminDN)
	resp := call(t, s, xmlrpc.New(), admin, "acl.set",
		"data", "allow,deny",
		[]any{userDN.String()}, []any{}, []any{}, []any{})
	if resp.Fault != nil {
		t.Fatalf("acl.set: %v", resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), admin, "acl.get", "data")
	m := resp.Result.(map[string]any)
	if !rpc.Equal(m["allow_dns"], []any{userDN.String()}) {
		t.Errorf("acl.get = %#v", m)
	}
	resp = call(t, s, xmlrpc.New(), admin, "acl.check", "data.read", userDN.String())
	m = resp.Result.(map[string]any)
	if !rpc.Equal(m["decision"], "allow") || !rpc.Equal(m["level"], "data") {
		t.Errorf("acl.check = %#v", m)
	}
	// Non-admin probing someone else is denied...
	hdr := sessionFor(t, s, userDN)
	resp = call(t, s, xmlrpc.New(), hdr, "acl.check", "data.read", adminDN.String())
	if resp.Fault == nil {
		t.Error("non-admin probing another DN must fault")
	}
	// ...but may check themselves.
	resp = call(t, s, xmlrpc.New(), hdr, "acl.check", "data.read")
	if resp.Fault != nil {
		t.Errorf("self check: %v", resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), admin, "acl.list")
	if resp.Fault != nil {
		t.Fatalf("acl.list: %v", resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), admin, "acl.delete", "data")
	if resp.Fault != nil {
		t.Fatalf("acl.delete: %v", resp.Fault)
	}
}

func TestSystemIntrospection(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "system.method_help", "system.ping")
	if resp.Fault != nil || resp.Result == "" {
		t.Errorf("method_help = %#v %v", resp.Result, resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), nil, "system.method_signature", "system.ping")
	if resp.Fault != nil {
		t.Errorf("method_signature fault = %v", resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), nil, "system.method_help", "missing.method")
	if resp.Fault == nil {
		t.Error("help for missing method must fault")
	}
	resp = call(t, s, xmlrpc.New(), nil, "system.version")
	if !rpc.Equal(resp.Result, Version) {
		t.Errorf("version = %#v", resp.Result)
	}
	resp = call(t, s, xmlrpc.New(), nil, "system.time")
	if resp.Fault != nil {
		t.Errorf("time fault = %v", resp.Fault)
	}
}

func TestStatsAdminOnly(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "system.stats")
	if resp.Fault == nil {
		t.Error("anonymous stats must fault")
	}
	admin := sessionFor(t, s, adminDN)
	call(t, s, xmlrpc.New(), nil, "system.ping")
	resp = call(t, s, xmlrpc.New(), admin, "system.stats")
	if resp.Fault != nil {
		t.Fatalf("admin stats: %v", resp.Fault)
	}
	m := resp.Result.(map[string]any)
	if m["requests"].(int) < 2 {
		t.Errorf("stats = %#v", m)
	}
}

func TestSystemAuthRequiresIdentity(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "system.auth")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeNotAuthorized {
		t.Errorf("anonymous auth = %+v", resp.Fault)
	}
	// With an existing session, auth renews and returns the same token.
	hdr := sessionFor(t, s, userDN)
	resp = call(t, s, xmlrpc.New(), hdr, "system.auth")
	if resp.Fault != nil {
		t.Fatalf("auth with session: %v", resp.Fault)
	}
	if !rpc.Equal(resp.Result, hdr[SessionHeader]) {
		t.Errorf("auth returned %#v, want existing session %q", resp.Result, hdr[SessionHeader])
	}
}

func TestDisableAuthSkipsChecks(t *testing.T) {
	s, err := NewServer(Config{DisableAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// vo.groups is admin-gated normally; with auth disabled it executes.
	resp := call(t, s, xmlrpc.New(), nil, "vo.groups")
	if resp.Fault != nil {
		t.Errorf("DisableAuth dispatch fault: %v", resp.Fault)
	}
}

func TestClosedSystemConfig(t *testing.T) {
	open := false
	s, err := NewServer(Config{OpenSystem: &open, AdminDNs: []string{adminDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp := call(t, s, xmlrpc.New(), nil, "system.whoami")
	if resp.Fault != nil {
		t.Errorf("public method still passes with no opinion: %v", resp.Fault)
	}
	// Non-public admin methods stay gated.
	resp = call(t, s, xmlrpc.New(), nil, "system.stats")
	if resp.Fault == nil {
		t.Error("stats must stay gated")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := newTestServer(t)
	bad := stubService{name: "", methods: []Method{{Name: "x.y", Handler: func(*Context, Params) (any, error) { return nil, nil }}}}
	if err := s.Register(bad); err == nil {
		t.Error("empty service name must be rejected")
	}
	bad = stubService{name: "x", methods: nil}
	if err := s.Register(bad); err == nil {
		t.Error("no methods must be rejected")
	}
	bad = stubService{name: "x", methods: []Method{{Name: "other.y", Handler: func(*Context, Params) (any, error) { return nil, nil }}}}
	if err := s.Register(bad); err == nil {
		t.Error("method outside module must be rejected")
	}
	bad = stubService{name: "x", methods: []Method{{Name: "x.y"}}}
	if err := s.Register(bad); err == nil {
		t.Error("nil handler must be rejected")
	}
	good := stubService{name: "x", methods: []Method{{Name: "x.y", Handler: func(*Context, Params) (any, error) { return nil, nil }}}}
	if err := s.Register(good); err != nil {
		t.Errorf("valid service rejected: %v", err)
	}
	if err := s.Register(good); err == nil {
		t.Error("duplicate registration must be rejected")
	}
}

type stubService struct {
	name    string
	methods []Method
}

func (s stubService) Name() string      { return s.name }
func (s stubService) Methods() []Method { return s.methods }

func TestHandlerErrorsBecomeFaults(t *testing.T) {
	s := newTestServer(t)
	svc := stubService{name: "boom", methods: []Method{
		{Name: "boom.fault", Public: true, Handler: func(*Context, Params) (any, error) {
			return nil, &rpc.Fault{Code: 123, Message: "custom"}
		}},
		{Name: "boom.err", Public: true, Handler: func(*Context, Params) (any, error) {
			return nil, strings.NewReader("").UnreadRune()
		}},
		{Name: "boom.badresult", Public: true, Handler: func(*Context, Params) (any, error) {
			return make(chan int), nil
		}},
	}}
	if err := s.Register(svc); err != nil {
		t.Fatal(err)
	}
	s.MethodACL().Set("boom", &acl.ACL{AllowDNs: []string{acl.EntryAnonymous, acl.EntryAny}})

	resp := call(t, s, xmlrpc.New(), nil, "boom.fault")
	if resp.Fault == nil || resp.Fault.Code != 123 {
		t.Errorf("custom fault = %+v", resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), nil, "boom.err")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeApplication {
		t.Errorf("generic error fault = %+v", resp.Fault)
	}
	resp = call(t, s, xmlrpc.New(), nil, "boom.badresult")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeInternal {
		t.Errorf("unserializable fault = %+v", resp.Fault)
	}
}

func TestParamsAccessors(t *testing.T) {
	p := Params{"s", 7, true, []byte("b"), []any{"x", "y"}, 2.0}
	if v, err := p.String(0); err != nil || v != "s" {
		t.Errorf("String: %v %v", v, err)
	}
	if v, err := p.Int(1); err != nil || v != 7 {
		t.Errorf("Int: %v %v", v, err)
	}
	if v, err := p.Int(5); err != nil || v != 2 {
		t.Errorf("Int from float: %v %v", v, err)
	}
	if v, err := p.Bool(2); err != nil || !v {
		t.Errorf("Bool: %v %v", v, err)
	}
	if v, err := p.Bytes(3); err != nil || string(v) != "b" {
		t.Errorf("Bytes: %v %v", v, err)
	}
	if v, err := p.Bytes(0); err != nil || string(v) != "s" {
		t.Errorf("Bytes from string: %v %v", v, err)
	}
	if v, err := p.StringSlice(4); err != nil || len(v) != 2 {
		t.Errorf("StringSlice: %v %v", v, err)
	}
	if _, err := p.String(1); err == nil {
		t.Error("String of int must fail")
	}
	if _, err := p.Int(0); err == nil {
		t.Error("Int of string must fail")
	}
	if _, err := p.Bool(0); err == nil {
		t.Error("Bool of string must fail")
	}
	if _, err := p.Bytes(1); err == nil {
		t.Error("Bytes of int must fail")
	}
	if _, err := p.StringSlice(0); err == nil {
		t.Error("StringSlice of string must fail")
	}
	if _, err := p.StringSlice(6); err == nil {
		t.Error("missing param must fail")
	}
	if v, err := p.OptString(99, "def"); err != nil || v != "def" {
		t.Errorf("OptString: %v %v", v, err)
	}
	if v, err := p.OptInt(99, 5); err != nil || v != 5 {
		t.Errorf("OptInt: %v %v", v, err)
	}
	if v, err := p.OptString(0, "def"); err != nil || v != "s" {
		t.Errorf("OptString present: %v %v", v, err)
	}
	if v, err := p.OptInt(1, 5); err != nil || v != 7 {
		t.Errorf("OptInt present: %v %v", v, err)
	}
}

func TestStatsRecording(t *testing.T) {
	s := newTestServer(t)
	call(t, s, xmlrpc.New(), nil, "system.ping")
	call(t, s, xmlrpc.New(), nil, "no.method")
	requests, faults, byMethod := s.Stats().Snapshot()
	if requests != 2 || faults != 1 {
		t.Errorf("requests=%d faults=%d", requests, faults)
	}
	if byMethod["system.ping"] != 1 {
		t.Errorf("byMethod = %v", byMethod)
	}
}
