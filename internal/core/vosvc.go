package core

// voService exposes virtual-organization management (paper §2.1) as web
// service methods. Authorization is enforced by the vo.Manager itself
// (group admins manage members and subgroups; root admins manage all),
// layered beneath the framework's method ACLs.

type voService struct{ s *Server }

func (voService) Name() string { return "vo" }

func (sv voService) Methods() []Method {
	return []Method{
		{
			Name:      "vo.create_group",
			Help:      "Create a VO group; dotted names create subgroups (e.g. \"cms.production\").",
			Signature: []string{"boolean string"},
			Handler:   sv.createGroup,
		},
		{
			Name:      "vo.delete_group",
			Help:      "Delete a VO group and all of its subgroups.",
			Signature: []string{"boolean string"},
			Handler:   sv.deleteGroup,
		},
		{
			Name:      "vo.add_member",
			Help:      "Add a DN (or DN prefix) to a group's member list.",
			Signature: []string{"boolean string string"},
			Handler:   sv.addMember,
		},
		{
			Name:      "vo.remove_member",
			Help:      "Remove a DN from a group's member list.",
			Signature: []string{"boolean string string"},
			Handler:   sv.removeMember,
		},
		{
			Name:      "vo.add_admin",
			Help:      "Add a DN (or DN prefix) to a group's administrator list.",
			Signature: []string{"boolean string string"},
			Handler:   sv.addAdmin,
		},
		{
			Name:      "vo.remove_admin",
			Help:      "Remove a DN from a group's administrator list.",
			Signature: []string{"boolean string string"},
			Handler:   sv.removeAdmin,
		},
		{
			Name:      "vo.group_info",
			Help:      "Return a group's member and administrator lists.",
			Signature: []string{"struct string"},
			Handler:   sv.groupInfo,
		},
		{
			Name:      "vo.groups",
			Help:      "List all group names on this server.",
			Signature: []string{"array"},
			Public:    true,
			Handler:   sv.groups,
		},
		{
			Name:      "vo.my_groups",
			Help:      "List the groups the caller belongs to, directly or by inheritance.",
			Signature: []string{"array"},
			Public:    true,
			Handler:   sv.myGroups,
		},
		{
			Name:      "vo.is_member",
			Help:      "Check whether a DN is a member of a group.",
			Signature: []string{"boolean string string"},
			Public:    true,
			Handler:   sv.isMember,
		},
	}
}

func (sv voService) createGroup(ctx *Context, p Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if err := sv.s.vom.CreateGroup(name, ctx.DN); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv voService) deleteGroup(ctx *Context, p Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if err := sv.s.vom.DeleteGroup(name, ctx.DN); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv voService) addMember(ctx *Context, p Params) (any, error) {
	group, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dn, err := p.String(1)
	if err != nil {
		return nil, err
	}
	if err := sv.s.vom.AddMember(group, ctx.DN, dn); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv voService) removeMember(ctx *Context, p Params) (any, error) {
	group, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dn, err := p.String(1)
	if err != nil {
		return nil, err
	}
	if err := sv.s.vom.RemoveMember(group, ctx.DN, dn); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv voService) addAdmin(ctx *Context, p Params) (any, error) {
	group, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dn, err := p.String(1)
	if err != nil {
		return nil, err
	}
	if err := sv.s.vom.AddAdmin(group, ctx.DN, dn); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv voService) removeAdmin(ctx *Context, p Params) (any, error) {
	group, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dn, err := p.String(1)
	if err != nil {
		return nil, err
	}
	if err := sv.s.vom.RemoveAdmin(group, ctx.DN, dn); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv voService) groupInfo(ctx *Context, p Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	g, err := sv.s.vom.Get(name)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"name":    g.Name,
		"members": g.Members,
		"admins":  g.Admins,
	}, nil
}

func (sv voService) groups(ctx *Context, p Params) (any, error) {
	return sv.s.vom.Groups(), nil
}

func (sv voService) myGroups(ctx *Context, p Params) (any, error) {
	return sv.s.vom.MemberGroups(ctx.DN), nil
}

func (sv voService) isMember(ctx *Context, p Params) (any, error) {
	group, err := p.String(0)
	if err != nil {
		return nil, err
	}
	dnStr, err := p.String(1)
	if err != nil {
		return nil, err
	}
	dn, err := parseDNParam(dnStr)
	if err != nil {
		return nil, err
	}
	return sv.s.vom.IsMember(group, dn), nil
}
