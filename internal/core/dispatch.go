package core

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"clarens/internal/acl"
	"clarens/internal/rpc"
	"clarens/internal/telemetry"
)

// This file implements the dispatch pipeline as a composable interceptor
// chain. The paper's fixed authenticate→authorize→invoke sequence is
// preserved as the default stage order, but each stage is a registered
// Interceptor, so deployments can append their own cross-cutting stages
// (rate limiting, tracing, auditing) without touching core.

// pipelineStage is one registered interceptor; built-in stages carry an
// anchor name so UseBefore can position custom stages relative to them.
type pipelineStage struct {
	name string
	ic   Interceptor
}

// Built-in pipeline anchor names, in registration (outermost-first)
// order. UseBefore inserts custom interceptors immediately before the
// named stage.
const (
	AnchorRecover  = "recover"
	AnchorTrace    = "trace"
	AnchorShed     = "shed"
	AnchorMetrics  = "metrics"
	AnchorStats    = "stats"
	AnchorAuth     = "auth"
	AnchorDeadline = "deadline"
	AnchorACL      = "acl"
)

// anchorNames lists the valid UseBefore anchors for error messages.
const anchorNames = "recover, trace, shed, metrics, stats, auth, deadline, acl"

// Use appends interceptors to the dispatch pipeline. Interceptors run in
// registration order, outermost first; the built-in stages (panic
// recovery, stats, authentication, deadline, ACL authorization) are
// registered at construction, so interceptors added afterwards run inside
// them — after the caller's identity is resolved and authorized, and
// immediately around the method handler. Consequently they never see
// calls the ACL stage denies; audit trails for denied attempts belong in
// the stats counters, not a Use-registered stage (or in a stage installed
// with UseBefore). Safe to call at any time; in-flight dispatches keep
// the pipeline they started with.
func (s *Server) Use(ics ...Interceptor) {
	s.dispatchMu.Lock()
	for _, ic := range ics {
		s.interceptors = append(s.interceptors, pipelineStage{ic: ic})
	}
	s.pipeline = nil // recompose lazily on next dispatch
	s.dispatchMu.Unlock()
}

// UseBefore inserts interceptors immediately before the named built-in
// stage (AnchorRecover, AnchorStats, AnchorAuth, AnchorDeadline,
// AnchorACL). A stage installed before AnchorAuth runs with the caller's
// identity still unresolved — the position for IP allowlists, request
// decryption, or connection throttles that must act ahead of any
// database work. Multiple interceptors insert in argument order at the
// same anchor; repeated calls stack outside earlier insertions at that
// anchor. Unknown anchors are an error.
func (s *Server) UseBefore(anchor string, ics ...Interceptor) error {
	if len(ics) == 0 {
		return nil
	}
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	idx := -1
	for i, st := range s.interceptors {
		if st.name == anchor {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: unknown interceptor anchor %q (anchors: %s)", anchor, anchorNames)
	}
	ins := make([]pipelineStage, len(ics))
	for i, ic := range ics {
		ins[i] = pipelineStage{ic: ic}
	}
	s.interceptors = append(s.interceptors[:idx], append(ins, s.interceptors[idx:]...)...)
	s.pipeline = nil
	return nil
}

// composedPipeline returns the interceptor chain folded over the terminal
// handler, rebuilding the cached composition after a Use.
func (s *Server) composedPipeline() Handler {
	s.dispatchMu.RLock()
	h := s.pipeline
	s.dispatchMu.RUnlock()
	if h != nil {
		return h
	}
	s.dispatchMu.Lock()
	defer s.dispatchMu.Unlock()
	if s.pipeline == nil {
		h := Handler(s.invokeMethod)
		for i := len(s.interceptors) - 1; i >= 0; i-- {
			h = s.interceptors[i].ic(h)
		}
		s.pipeline = h
	}
	return s.pipeline
}

// invokeMethod is the terminal pipeline stage: it executes the resolved
// handler and normalizes the result into the codec value model, so that
// the stats stage observes normalization failures as faults too.
func (s *Server) invokeMethod(ctx *Context, params Params) (any, error) {
	if ctx.method == nil {
		return nil, &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: fmt.Sprintf("no such method %q", ctx.methodName)}
	}
	result, err := ctx.method.Handler(ctx, params)
	if err != nil {
		return nil, err
	}
	norm, err := rpc.Normalize(result)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInternal, Message: fmt.Sprintf("unserializable result: %v", err)}
	}
	return norm, nil
}

// recoverInterceptor converts a handler panic into an RPC fault instead of
// letting it tear down the serving goroutine (and, for multicall
// sub-calls, instead of aborting the rest of the batch).
func (s *Server) recoverInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (result any, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.logger.Printf("core: panic in %s: %v\n%s", ctx.methodName, r, debug.Stack())
				result = nil
				err = &rpc.Fault{Code: rpc.CodeInternal, Message: fmt.Sprintf("internal error: method %s panicked", ctx.methodName)}
			}
		}()
		return next(ctx, params)
	}
}

// traceInterceptor establishes the dispatch's trace identity, records
// the completed span into the flight recorder, and, when a request log
// is configured, emits one structured entry per dispatched call. A
// directly POSTed call adopts a valid inbound X-Clarens-Trace header
// (and the X-Clarens-Trace-Sample force bit) or mints a fresh trace ID;
// multicall sub-calls arrive with their trace and span already derived
// by Invoke and keep them. Sitting just inside the recovery stage, it
// observes every call — including unknown methods and ACL denials — so
// a trace never goes dark at a fault.
func (s *Server) traceInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		if ctx.span == "" {
			ctx.localRoot = true
			if ctx.trace == "" {
				if ctx.httpReq != nil {
					if t := ctx.httpReq.Header.Get(telemetry.TraceHeader); telemetry.ValidTraceID(t) {
						ctx.trace = t
					}
					if ctx.httpReq.Header.Get(telemetry.SampleHeader) != "" {
						ctx.forceSample = true
					}
				}
				if ctx.trace == "" {
					ctx.trace = telemetry.NewTraceID()
				}
			}
			ctx.span = telemetry.NewSpanID()
		}
		if ctx.method != nil && ctx.method.TraceSample {
			ctx.forceSample = true
		}
		st, lg := s.spans, s.requestLog
		if st == nil && lg == nil {
			return next(ctx, params)
		}
		start := time.Now()
		result, err := next(ctx, params)
		dur := time.Since(start)
		faultCode := 0
		if err != nil {
			faultCode = rpc.CodeApplication
			if f, ok := err.(*rpc.Fault); ok {
				faultCode = f.Code
			}
		}
		if st != nil {
			sp := telemetry.Span{
				Trace:    ctx.trace,
				Span:     ctx.span,
				Parent:   ctx.parentSpan,
				Method:   ctx.methodName,
				Peer:     ctx.RemoteAddr,
				Start:    start,
				Duration: dur,
				Fault:    faultCode,
				Depth:    ctx.depth,
			}
			if !ctx.DN.IsZero() {
				sp.DN = ctx.DN.String()
			}
			st.Record(sp, ctx.localRoot, ctx.forceSample)
		}
		if lg != nil {
			attrs := make([]slog.Attr, 0, 12)
			attrs = append(attrs,
				slog.String("method", ctx.methodName),
				slog.String("trace", ctx.trace),
				slog.String("span", ctx.span),
				slog.String("proto", ctx.Protocol),
				slog.Float64("dur_ms", float64(dur)/float64(time.Millisecond)),
			)
			if ctx.parentSpan != "" {
				attrs = append(attrs, slog.String("parent_span", ctx.parentSpan), slog.Int("depth", ctx.depth))
			}
			if !ctx.DN.IsZero() {
				attrs = append(attrs, slog.String("dn", ctx.DN.String()))
			}
			if ctx.RemoteAddr != "" {
				attrs = append(attrs, slog.String("remote", ctx.RemoteAddr))
			}
			if err != nil {
				attrs = append(attrs, slog.Int("fault", faultCode), slog.String("error", err.Error()))
			}
			level := slog.LevelInfo
			msg := "rpc"
			// Slow-request escalation: a local-root dispatch over the
			// tail-sampling threshold warns with its span breakdown inline,
			// so slow traces are findable without scraping the store.
			if st != nil && ctx.localRoot && dur >= st.Slow() {
				level = slog.LevelWarn
				msg = "slow rpc"
				attrs = append(attrs, slog.String("spans", spanBreakdown(st.Trace(ctx.trace))))
			}
			lg.LogAttrs(ctx.Context, level, msg, attrs...)
		}
		return result, err
	}
}

// spanBreakdown renders a trace's recorded spans as one compact string
// ("method dur_ms; ...", depth-indented) for inline slow-request logs.
func spanBreakdown(spans []telemetry.Span) string {
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteString("; ")
		}
		for d := 0; d < sp.Depth; d++ {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "%s %.1fms", sp.Method, float64(sp.Duration)/float64(time.Millisecond))
		if sp.Fault != 0 {
			fmt.Fprintf(&b, " fault=%d", sp.Fault)
		}
	}
	return b.String()
}

// shedInterceptor is the overload valve. It gates only top-level
// dispatches (multicall sub-calls ride their parent's admission): while
// the server drains for shutdown, or once Config.MaxInFlight calls are
// already executing, or when the caller's deadline has expired before
// any work was done, it rejects immediately with CodeOverloaded — the
// one fault code that promises the request never executed, so clients
// retry it freely (ideally against another peer). Sitting inside trace
// but outside metrics, rejections are traced and logged without
// polluting the per-method latency histograms with sub-microsecond
// refusals.
func (s *Server) shedInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		if ctx.depth > 0 {
			return next(ctx, params)
		}
		if s.draining.Load() {
			s.shed.Inc()
			return nil, &rpc.Fault{Code: rpc.CodeOverloaded, Message: "server draining: retry against another peer"}
		}
		// Deadline-aware early rejection: if the caller's budget is
		// already spent, executing the call only wastes server capacity
		// on a response nobody is waiting for.
		if dl, ok := ctx.Context.Deadline(); ok && !time.Now().Before(dl) {
			s.shed.Inc()
			return nil, &rpc.Fault{Code: rpc.CodeOverloaded, Message: "deadline expired before execution"}
		}
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if max := s.cfg.MaxInFlight; max > 0 && n > int64(max) {
			s.shed.Inc()
			return nil, &rpc.Fault{Code: rpc.CodeOverloaded, Message: fmt.Sprintf("server overloaded: %d calls in flight", n-1)}
		}
		return next(ctx, params)
	}
}

// metricsInterceptor times every dispatch into the telemetry registry's
// per-method histograms and request/fault counters — the numbers behind
// /metrics, the system.stats latency section, and the MonALISA
// republication. A panic further down is observed as a fault with the
// duration up to the unwind, then re-raised for the recovery stage.
func (s *Server) metricsInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		start := time.Now()
		recorded := false
		defer func() {
			if !recorded {
				s.telemetry.ObserveRPC(ctx.methodName, true, time.Since(start))
			}
		}()
		result, err := next(ctx, params)
		recorded = true
		s.telemetry.ObserveRPC(ctx.methodName, err != nil, time.Since(start))
		return result, err
	}
}

// statsInterceptor records the per-method dispatch counters reported by
// system.stats. A panic further down the chain is counted as a fault and
// re-raised for the recovery stage to convert.
func (s *Server) statsInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		recorded := false
		defer func() {
			if !recorded {
				s.stats.record(ctx.methodName, true)
			}
		}()
		result, err := next(ctx, params)
		recorded = true
		s.stats.record(ctx.methodName, err != nil)
		return result, err
	}
}

// authInterceptor resolves the caller's DN and session from the carrying
// HTTP request (access check 1 of the paper's Figure 4). Multicall
// sub-calls and in-process dispatches have no HTTP request and keep the
// identity already on the context.
func (s *Server) authInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		if ctx.httpReq != nil && !s.cfg.DisableAuth {
			ctx.DN, ctx.Session = s.IdentifyRequest(ctx.httpReq)
		}
		return next(ctx, params)
	}
}

// deadlineInterceptor applies the per-method execution deadline: the
// method's own Timeout if set, else the server-wide Config.MethodTimeout.
func (s *Server) deadlineInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		timeout := s.cfg.MethodTimeout
		if ctx.method != nil && ctx.method.Timeout > 0 {
			timeout = ctx.method.Timeout
		}
		if timeout <= 0 {
			return next(ctx, params)
		}
		base := ctx.Context
		bounded, cancel := context.WithTimeout(base, timeout)
		defer cancel()
		ctx.Context = bounded
		defer func() { ctx.Context = base }()
		return next(ctx, params)
	}
}

// aclInterceptor is access check 2: may this caller invoke this method?
// The ACL walk reads the database at each applicable hierarchy level.
// Public methods pass unless some level explicitly denies the caller;
// non-public methods require an explicit allow. Each multicall sub-call
// passes through here independently.
func (s *Server) aclInterceptor(next Handler) Handler {
	return func(ctx *Context, params Params) (any, error) {
		if !s.cfg.DisableAuth && ctx.method != nil {
			decision, level := s.methACL.AuthorizeDetail(ctx.methodName, ctx.DN)
			explicitDeny := decision == acl.Deny && level != ""
			allowed := decision == acl.Allow || (ctx.method.Public && !explicitDeny)
			if !allowed {
				return nil, &rpc.Fault{
					Code:    rpc.CodeAccessDenied,
					Message: fmt.Sprintf("access denied: method %s for %q", ctx.methodName, ctx.DN.String()),
				}
			}
		}
		return next(ctx, params)
	}
}

// registerBuiltinInterceptors installs the default pipeline. Order
// matters: recovery outermost (a panic anywhere still yields a fault),
// then trace (every call — even one that faults below — carries an ID
// and reaches the request log), metrics (latency histograms observe
// denied and unknown-method calls too), stats, identity, deadline, and
// authorization. Custom interceptors appended later via Use run inside
// all of these; UseBefore positions them against the anchor names
// registered here.
func (s *Server) registerBuiltinInterceptors() {
	s.dispatchMu.Lock()
	s.interceptors = append(s.interceptors,
		pipelineStage{name: AnchorRecover, ic: s.recoverInterceptor},
		pipelineStage{name: AnchorTrace, ic: s.traceInterceptor},
		pipelineStage{name: AnchorShed, ic: s.shedInterceptor},
		pipelineStage{name: AnchorMetrics, ic: s.metricsInterceptor},
		pipelineStage{name: AnchorStats, ic: s.statsInterceptor},
		pipelineStage{name: AnchorAuth, ic: s.authInterceptor},
		pipelineStage{name: AnchorDeadline, ic: s.deadlineInterceptor},
		pipelineStage{name: AnchorACL, ic: s.aclInterceptor},
	)
	s.pipeline = nil
	s.dispatchMu.Unlock()
}

// Dispatch runs the full interceptor pipeline and invokes the method. It
// is exported for in-process use by benchmarks and tests; r may be nil
// for pure in-process calls. Cancellation derives from r's context.
func (s *Server) Dispatch(r *http.Request, protocol string, req *rpc.Request) *rpc.Response {
	base := context.Background()
	if r != nil {
		base = r.Context()
	}
	return s.DispatchContext(base, r, protocol, req)
}

// DispatchContext is Dispatch with an explicit cancellation context,
// which handlers observe through Context.Done/Err/Deadline.
func (s *Server) DispatchContext(base context.Context, r *http.Request, protocol string, req *rpc.Request) *rpc.Response {
	if base == nil {
		base = context.Background()
	}
	ctx := &Context{
		Context:    base,
		Protocol:   protocol,
		methodName: req.Method,
		httpReq:    r,
		srv:        s,
	}
	if r != nil {
		ctx.RemoteAddr = r.RemoteAddr
	}
	ctx.method, _ = s.registry.lookup(req.Method)
	return s.run(ctx, req)
}

// Invoke dispatches one call through the full interceptor pipeline using
// an already-established identity — the execution path of each
// system.multicall sub-call. The derived context inherits the parent's
// cancellation, identity, and transport metadata but carries no HTTP
// request, so the auth stage keeps the inherited DN while the ACL stage
// authorizes the sub-method independently.
func (s *Server) Invoke(parent *Context, method string, params []any) *rpc.Response {
	return s.InvokeTrace(parent, "", method, params)
}

// InvokeTrace is Invoke for a sub-call that carries its own trace
// identifier (the multicall entry's optional trace field): a forwarding
// peer batches many jobs into one POST, and each sub-call keeps the
// trace of the request that originated it. An empty or invalid trace
// falls back to the parent's, and the sub-call always becomes a child
// span of the enclosing dispatch.
func (s *Server) InvokeTrace(parent *Context, trace, method string, params []any) *rpc.Response {
	return s.InvokeTraceSample(parent, trace, method, params, false)
}

// InvokeTraceSample is InvokeTrace with an explicit force-sample bit
// (the multicall entry's sample field): a peer forwarding a
// force-sampled trace keeps it force-sampled here too. A sub-call that
// carries a valid foreign trace — one differing from the enclosing
// batch's — becomes that trace's local root on this server, since the
// batch dispatch that wraps it belongs to a different trace and will
// never close this one out.
func (s *Server) InvokeTraceSample(parent *Context, trace, method string, params []any, sample bool) *rpc.Response {
	base := parent.Context
	if base == nil {
		base = context.Background()
	}
	localRoot := false
	if !telemetry.ValidTraceID(trace) {
		trace = parent.trace
	} else if trace != parent.trace {
		localRoot = true
	}
	ctx := &Context{
		Context:     base,
		DN:          parent.DN,
		Session:     parent.Session,
		Protocol:    parent.Protocol,
		RemoteAddr:  parent.RemoteAddr,
		methodName:  method,
		depth:       parent.depth + 1,
		trace:       trace,
		parentSpan:  parent.span,
		localRoot:   localRoot,
		forceSample: parent.forceSample || sample,
		srv:         s,
	}
	if ctx.trace != "" {
		ctx.span = telemetry.NewSpanID()
	}
	ctx.method, _ = s.registry.lookup(method)
	return s.run(ctx, &rpc.Request{Method: method, Params: params})
}

// run feeds one prepared context through the pipeline and shapes the
// outcome into a protocol response.
func (s *Server) run(ctx *Context, req *rpc.Request) *rpc.Response {
	resp := &rpc.Response{ID: req.ID}
	result, err := s.composedPipeline()(ctx, Params(req.Params))
	if err != nil {
		if f, ok := err.(*rpc.Fault); ok {
			resp.Fault = f
		} else {
			resp.Fault = &rpc.Fault{Code: rpc.CodeApplication, Message: err.Error()}
		}
		return resp
	}
	resp.Result = result
	return resp
}
