package core

import (
	"bytes"
	"context"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
	"clarens/internal/telemetry"
)

// traceEcho registers a method that reports its dispatch's trace/span
// identity.
func traceEcho(t *testing.T, s *Server) {
	t.Helper()
	registerTest(t, s, Method{
		Name: "t.trace", Help: "reports trace identity", Signature: []string{"struct"}, Public: true,
		Handler: func(ctx *Context, p Params) (any, error) {
			return map[string]any{
				"trace":       ctx.TraceID(),
				"span":        ctx.SpanID(),
				"parent_span": ctx.ParentSpanID(),
			}, nil
		},
	})
}

func TestTraceAdoptsHeaderOrMints(t *testing.T) {
	s := newTestServer(t)
	traceEcho(t, s)

	// A valid inbound header is adopted verbatim.
	resp := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "req-abc.123"}, "t.trace")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	got := resp.Result.(map[string]any)
	if got["trace"] != "req-abc.123" {
		t.Errorf("trace = %q, want the inbound header", got["trace"])
	}
	if got["span"] == "" {
		t.Error("no span minted")
	}
	if got["parent_span"] != "" {
		t.Errorf("root dispatch has parent_span %q", got["parent_span"])
	}

	// No header: a fresh trace is minted per dispatch.
	r1 := call(t, s, xmlrpc.New(), nil, "t.trace").Result.(map[string]any)
	r2 := call(t, s, xmlrpc.New(), nil, "t.trace").Result.(map[string]any)
	if r1["trace"] == "" || r2["trace"] == "" {
		t.Fatalf("minted traces empty: %v %v", r1, r2)
	}
	if r1["trace"] == r2["trace"] {
		t.Errorf("two dispatches share minted trace %q", r1["trace"])
	}

	// An invalid header (illegal characters) is replaced, not adopted.
	resp = call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "bad trace!"}, "t.trace")
	if tr := resp.Result.(map[string]any)["trace"]; tr == "bad trace!" || tr == "" {
		t.Errorf("invalid header handling: trace = %q", tr)
	}
}

func TestSubCallInheritsTraceAsChildSpan(t *testing.T) {
	s := newTestServer(t)
	registerTest(t, s,
		Method{
			Name: "t.trace", Help: "reports trace identity", Signature: []string{"struct"}, Public: true,
			Handler: func(ctx *Context, p Params) (any, error) {
				return map[string]any{
					"trace":       ctx.TraceID(),
					"span":        ctx.SpanID(),
					"parent_span": ctx.ParentSpanID(),
				}, nil
			},
		},
		Method{
			Name: "t.parent", Help: "invokes t.trace as a sub-call", Signature: []string{"struct"}, Public: true,
			Handler: func(ctx *Context, p Params) (any, error) {
				sub := s.Invoke(ctx, "t.trace", nil)
				if sub.Fault != nil {
					return nil, sub.Fault
				}
				m := sub.Result.(map[string]any)
				m["outer_trace"] = ctx.TraceID()
				m["outer_span"] = ctx.SpanID()
				return m, nil
			},
		})

	resp := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "parent-trace-1"}, "t.parent")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	m := resp.Result.(map[string]any)
	if m["trace"] != "parent-trace-1" || m["outer_trace"] != "parent-trace-1" {
		t.Errorf("sub-call trace = %v, outer = %v, want both parent-trace-1", m["trace"], m["outer_trace"])
	}
	if m["span"] == m["outer_span"] {
		t.Error("sub-call did not get its own span")
	}
	if m["parent_span"] != m["outer_span"] {
		t.Errorf("sub-call parent_span = %v, want the enclosing span %v", m["parent_span"], m["outer_span"])
	}
}

func TestMulticallSubCallTraceOverride(t *testing.T) {
	s := newTestServer(t)
	traceEcho(t, s)
	params := rpc.MulticallParams([]rpc.SubCall{
		{Method: "t.trace", Params: []any{}, Trace: "job-trace-42"},
		{Method: "t.trace", Params: []any{}},
	})
	resp := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "batch-trace"}, rpc.MulticallMethod, params...)
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	results, err := rpc.ParseMulticallResults(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if tr := results[0].Result.(map[string]any)["trace"]; tr != "job-trace-42" {
		t.Errorf("sub-call 0 trace = %v, want its own job-trace-42", tr)
	}
	if tr := results[1].Result.(map[string]any)["trace"]; tr != "batch-trace" {
		t.Errorf("sub-call 1 trace = %v, want the batch's batch-trace", tr)
	}
}

// TestUseBeforeTraceAndMetricsAnchors pins the new stages' positions: a
// stage before AnchorTrace sees no trace yet; one before AnchorMetrics
// (inside trace) sees it assigned.
func TestUseBeforeTraceAndMetricsAnchors(t *testing.T) {
	s := newTestServer(t)
	var mu sync.Mutex
	var beforeTrace, beforeMetrics string
	if err := s.UseBefore(AnchorTrace, func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			mu.Lock()
			beforeTrace = ctx.TraceID()
			mu.Unlock()
			return next(ctx, p)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.UseBefore(AnchorMetrics, func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			mu.Lock()
			beforeMetrics = ctx.TraceID()
			mu.Unlock()
			return next(ctx, p)
		}
	}); err != nil {
		t.Fatal(err)
	}
	resp := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "anchor-check"}, "system.ping")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	mu.Lock()
	defer mu.Unlock()
	if beforeTrace != "" {
		t.Errorf("stage before trace anchor saw trace %q, want unset", beforeTrace)
	}
	if beforeMetrics != "anchor-check" {
		t.Errorf("stage before metrics anchor saw trace %q, want anchor-check", beforeMetrics)
	}
}

// syncWriter is a mutex-guarded byte buffer for slog handlers shared with
// server goroutines.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestRequestLogCarriesTraceAndFault(t *testing.T) {
	var out syncWriter
	s, err := NewServer(Config{
		AdminDNs:   []string{adminDN.String()},
		RequestLog: slog.New(slog.NewJSONHandler(&out, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "logged-trace"}, "system.ping")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	if resp := call(t, s, xmlrpc.New(), nil, "no.such_method"); resp.Fault == nil {
		t.Fatal("expected fault")
	}
	logs := out.String()
	if !strings.Contains(logs, `"trace":"logged-trace"`) {
		t.Errorf("log lacks the inbound trace:\n%s", logs)
	}
	if !strings.Contains(logs, `"method":"system.ping"`) {
		t.Errorf("log lacks the method name:\n%s", logs)
	}
	if !strings.Contains(logs, `"method":"no.such_method"`) || !strings.Contains(logs, `"fault":`) {
		t.Errorf("faulting dispatch not logged with a fault code:\n%s", logs)
	}
}

func TestMetricsStageFeedsTelemetryRegistry(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 3; i++ {
		if resp := call(t, s, xmlrpc.New(), nil, "system.ping"); resp.Fault != nil {
			t.Fatal(resp.Fault)
		}
	}
	if resp := call(t, s, xmlrpc.New(), nil, "no.such"); resp.Fault == nil {
		t.Fatal("expected fault")
	}
	var ping, unknown *telemetry.MethodSnapshot
	for _, m := range s.Telemetry().MethodSnapshots() {
		m := m
		switch m.Method {
		case "system.ping":
			ping = &m
		case "no.such":
			unknown = &m
		}
	}
	if ping == nil || ping.Requests != 3 || ping.Faults != 0 {
		t.Errorf("system.ping snapshot = %+v, want 3 requests, 0 faults", ping)
	}
	if ping != nil && ping.Latency.Count != 3 {
		t.Errorf("system.ping latency count = %d, want 3", ping.Latency.Count)
	}
	if unknown == nil || unknown.Faults != 1 {
		t.Errorf("no.such snapshot = %+v, want 1 fault", unknown)
	}
	if agg := s.Telemetry().RPCAggregate(); agg.Count < 4 {
		t.Errorf("aggregate count = %d, want >= 4", agg.Count)
	}
}

func TestMetricsEndpointServesPrometheusText(t *testing.T) {
	s := newTestServer(t)
	s.MountMetrics("/metrics")
	if resp := call(t, s, xmlrpc.New(), nil, "system.ping"); resp.Fault != nil {
		t.Fatal(resp.Fault)
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, w := range []string{
		`clarens_rpc_requests_total{method="system.ping"} 1`,
		`clarens_rpc_latency_seconds{method="system.ping",quantile="0.99"}`,
		`clarens_rpc_latency_all_seconds_bucket{le=`,
		`clarens_core_sessions`,
	} {
		if !strings.Contains(body, w) {
			t.Errorf("metrics output lacks %q", w)
		}
	}

	// The scrape endpoint is read-only.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Errorf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestSystemHealthAndStatsLatency(t *testing.T) {
	s := newTestServer(t)
	resp := call(t, s, xmlrpc.New(), nil, "system.health")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	h := resp.Result.(map[string]any)
	if h["status"] != "ok" {
		t.Errorf("health status = %v", h["status"])
	}

	// A failing registered check degrades the status and names itself.
	s.RegisterHealthCheck("flaky", func() error { return errTest })
	h = call(t, s, xmlrpc.New(), nil, "system.health").Result.(map[string]any)
	if h["status"] != "degraded" {
		t.Errorf("health status with failing check = %v", h["status"])
	}
	checks := h["checks"].(map[string]any)
	if msg, _ := checks["flaky"].(string); !strings.Contains(msg, "boom") {
		t.Errorf("checks = %v, want flaky: boom", checks)
	}

	// system.stats exposes the latency quantile section per method.
	st := call(t, s, xmlrpc.New(), sessionFor(t, s, adminDN), "system.stats").Result.(map[string]any)
	lat, ok := st["latency"].(map[string]any)
	if !ok {
		t.Fatalf("stats lacks latency section: %v", st)
	}
	if _, ok := lat["system.health"]; !ok {
		t.Errorf("latency section lacks system.health: %v", lat)
	}

	// Registered sections merge in under their name.
	s.RegisterStatsSection("custom", func() map[string]any { return map[string]any{"k": 1} })
	st = call(t, s, xmlrpc.New(), sessionFor(t, s, adminDN), "system.stats").Result.(map[string]any)
	if _, ok := st["custom"]; !ok {
		t.Errorf("stats lacks registered section: %v", st)
	}
}

var errTest = &rpc.Fault{Code: rpc.CodeInternal, Message: "boom"}

// BenchmarkTelemetryStages measures the added per-dispatch cost of the
// trace + metrics stages composed over a no-op terminal handler, with
// request logging off (the default) — the acceptance budget is 500 ns.
func BenchmarkTelemetryStages(b *testing.B) {
	s, err := NewServer(Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	terminal := Handler(func(ctx *Context, p Params) (any, error) { return nil, nil })
	h := s.traceInterceptor(s.metricsInterceptor(terminal))
	ctx := &Context{Context: context.Background(), methodName: "bench.noop", srv: s}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh trace state per iteration, as in a real dispatch.
		ctx.trace, ctx.span, ctx.parentSpan = "", "", ""
		if _, err := h(ctx, nil); err != nil {
			b.Fatal(err)
		}
	}
}
