package core

import (
	"crypto/tls"
	"io"
	"testing"
	"time"

	"clarens/internal/pki"
)

// ticketServer starts a TLS server (no client auth) with the given
// session-ticket settings.
func ticketServer(t *testing.T, secret string, rotate time.Duration) *Server {
	t.Helper()
	ca, err := pki.NewCA(pki.MustParseDN("/O=testgrid/CN=Ticket CA"))
	if err != nil {
		t.Fatal(err)
	}
	host, err := ca.IssueHost(pki.MustParseDN("/O=testgrid/OU=Services/CN=host\\/localhost"),
		[]string{"localhost", "127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{
		AdminDNs: []string{adminDN.String()},
		TLS: &TLSConfig{
			Identity:     host,
			TicketRotate: rotate,
			TicketSecret: secret,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	// All ticketServer fixtures share one CA per call site would be
	// nicer, but resumption does not depend on the trust chain — the
	// client below skips verification and relies on the ticket alone.
	return s
}

// handshake dials addr once with the given session cache and reports
// whether the session was resumed from a cached ticket.
func handshake(t *testing.T, addr string, cache tls.ClientSessionCache) bool {
	t.Helper()
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		// The same ServerName on every dial keys the session cache, the
		// way one federation DNS name would; certificate verification is
		// irrelevant to what this test measures.
		ServerName:         "localhost",
		InsecureSkipVerify: true,
		ClientSessionCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Handshake(); err != nil {
		t.Fatal(err)
	}
	// TLS 1.3 delivers the session ticket as a post-handshake message;
	// the client only processes it while reading. Drive one request
	// through the connection so the ticket actually lands in the cache.
	if _, err := conn.Write([]byte("GET / HTTP/1.0\r\nHost: localhost\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.Copy(io.Discard, conn); err != nil {
		t.Fatal(err)
	}
	return conn.ConnectionState().DidResume
}

// Federation peers configured with the same ticket secret must accept
// each other's session tickets: a client that handshook with one peer
// resumes on another, as if the two were one server behind one DNS
// name. A peer with a different secret must refuse the ticket (full
// handshake, not an error).
func TestSharedTicketSecretResumesAcrossServers(t *testing.T) {
	a := ticketServer(t, "fed-secret", time.Hour)
	b := ticketServer(t, "fed-secret", time.Hour)
	other := ticketServer(t, "different-secret", time.Hour)

	cache := tls.NewLRUClientSessionCache(8)
	if handshake(t, a.Addr(), cache) {
		t.Fatal("first handshake cannot be resumed")
	}
	if !handshake(t, a.Addr(), cache) {
		t.Error("second handshake with the same server did not resume")
	}
	if !handshake(t, b.Addr(), cache) {
		t.Error("handshake with a same-secret peer did not resume the ticket")
	}
	if handshake(t, other.Addr(), cache) {
		t.Error("a different-secret server must not accept the ticket")
	}

	// The conn trackers saw it all: server a had one full + one resumed,
	// server b only the resumption.
	if got := a.conns.resumed.Load(); got != 1 {
		t.Errorf("server a resumed = %d, want 1", got)
	}
	if h, r := b.conns.handshakes.Load(), b.conns.resumed.Load(); h != 1 || r != 1 {
		t.Errorf("server b handshakes/resumed = %d/%d, want 1/1", h, r)
	}
	if got := other.conns.resumed.Load(); got != 0 {
		t.Errorf("different-secret server resumed = %d, want 0", got)
	}
}

// The derived key schedule must be stable within an epoch and accept
// the adjacent epochs, so rotation never strands a fresh ticket.
func TestTicketKeeperDerivation(t *testing.T) {
	mk := func(secret string, rotate time.Duration) *ticketKeeper {
		return &ticketKeeper{secret: []byte(secret), rotate: rotate}
	}
	now := time.Unix(1_754_000_000, 0)
	a := mk("s", time.Hour).keys(now)
	b := mk("s", time.Hour).keys(now)
	if len(a) != 3 || len(b) != 3 || a[0] != b[0] || a[1] != b[1] || a[2] != b[2] {
		t.Fatalf("same secret+epoch must derive identical key sets (len %d/%d)", len(a), len(b))
	}
	if mk("s", time.Hour).keys(now.Add(90 * time.Minute))[0] == a[0] {
		t.Error("next epoch must encrypt with a different key")
	}
	// The next epoch's encrypt key is already accepted this epoch (and
	// vice versa), covering clock skew across peers.
	next := mk("s", time.Hour).keys(now.Add(time.Hour))
	if a[1] != next[0] || next[2] != a[0] {
		t.Error("adjacent epochs must overlap in the accepted-key set")
	}
	if mk("other", time.Hour).keys(now)[0] == a[0] {
		t.Error("different secrets must derive different keys")
	}
	// Static mode: one key, independent of time.
	s1 := mk("s", 0).keys(now)
	s2 := mk("s", 0).keys(now.Add(1000 * time.Hour))
	if len(s1) != 1 || s1[0] != s2[0] {
		t.Error("rotate=0 must derive one static key")
	}
}
