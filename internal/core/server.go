package core

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clarens/internal/acl"
	"clarens/internal/db"
	"clarens/internal/pki"
	"clarens/internal/pubsub"
	"clarens/internal/rpc"
	"clarens/internal/rpc/jsonrpc"
	"clarens/internal/rpc/soaprpc"
	"clarens/internal/rpc/xmlrpc"
	"clarens/internal/session"
	"clarens/internal/telemetry"
	"clarens/internal/vo"
	"clarens/internal/ws"
)

// Config configures a Server.
type Config struct {
	// DataDir is the directory for the persistent database; empty runs
	// in-memory (no restart survival).
	DataDir string
	// AdminDNs statically populates the root admins VO group on startup
	// (paper §2.1).
	AdminDNs []string
	// SessionTTL is the session lifetime; zero means 12h.
	SessionTTL time.Duration
	// RPCPath is the POST endpoint; default "/rpc". The root path "/" also
	// accepts RPC POSTs, mirroring PClarens' URL-based dispatch.
	RPCPath string
	// DisableAuth skips the session lookup and ACL walk (ablation A1 in
	// DESIGN.md). Never use outside benchmarks.
	DisableAuth bool
	// MethodTimeout bounds each method invocation; the handler's context
	// carries the deadline. Zero means no server-wide bound (individual
	// methods may still set Method.Timeout).
	MethodTimeout time.Duration
	// MaxInFlight bounds concurrently executing top-level RPCs; beyond
	// it the shed stage rejects new calls early with the retryable
	// CodeOverloaded fault instead of letting latency collapse under
	// queueing. Zero means unlimited.
	MaxInFlight int
	// DB tunes the embedded database (WAL fsync policy, fault-injection
	// seams). The zero value preserves the historical behaviour.
	DB db.Options
	// MaxBatchCalls caps the number of sub-calls one system.multicall may
	// carry, bounding the amplification a single anonymous POST can buy.
	// Zero means DefaultMaxBatchCalls; negative means unlimited.
	MaxBatchCalls int
	// BatchParallelism sets how many system.multicall sub-calls may
	// execute concurrently (ROADMAP: parallel multicall execution).
	// Results always come back in submission order regardless. 0 or 1
	// executes sub-calls sequentially, preserving the strict in-order
	// semantics clients may rely on for dependent batches.
	BatchParallelism int
	// OpenSystem grants anonymous+any callers the system service at
	// startup, reproducing the paper's Figure 4 environment where
	// unauthenticated clients invoke system.list_methods through two live
	// access checks. Default true.
	OpenSystem *bool
	// TLS, when non-nil, enables HTTPS with certificate-based client
	// authentication against ClientCAs.
	TLS *TLSConfig
	// DisableHTTP2 restricts the TLS listener to HTTP/1.1. By default the
	// server offers ALPN "h2" and multiplexes concurrent RPCs over one
	// connection; clients that cannot speak h2 (or offer no ALPN at all,
	// like the raw /ws dialer) still negotiate down to HTTP/1.1.
	DisableHTTP2 bool
	// Logger receives framework logs; nil discards them.
	Logger *log.Logger
	// RequestLog, when non-nil, receives one structured entry per
	// dispatched call (including multicall sub-calls): method, protocol,
	// trace/span identifiers, caller DN, duration, and fault code. Nil
	// disables request logging entirely, keeping the dispatch hot path
	// free of formatting work.
	RequestLog *slog.Logger
	// TraceStore enables the flight recorder: completed spans are
	// tail-sampled into a bounded in-process ring, queryable via the
	// trace.* RPCs and GET /debug/traces/<id>, with sampled trace IDs
	// attached to /metrics histogram buckets as OpenMetrics exemplars.
	TraceStore bool
	// TraceSlow is the tail-sampling latency threshold: traces whose
	// local root meets it are retained. Zero means 500ms.
	TraceSlow time.Duration
	// TraceCapacity bounds the span ring. Zero means 4096 spans.
	TraceCapacity int
	// ServerName stamps recorded spans (and merged federated trace
	// trees) with this server's name; typically the discovery name.
	ServerName string
}

// TLSConfig carries the server identity and client-auth trust anchors.
type TLSConfig struct {
	Identity *pki.Identity
	// ClientCAs verifies client certificates; client certs are requested
	// but not required (browsers without certs may still reach public
	// portal pages; paper §3).
	ClientCAs *x509.CertPool
	// RequireClientCert refuses connections without a verified client
	// certificate.
	RequireClientCert bool
	// TicketRotate rotates the TLS session-ticket keys on this period.
	// Zero without TicketSecret leaves Go's automatic per-process key
	// rotation in place (fine standalone, useless across a federation).
	TicketRotate time.Duration
	// TicketSecret, when set, derives the ticket keys deterministically
	// from (secret, time/TicketRotate): every peer sharing the secret and
	// rotation period accepts each other's session tickets, so a client
	// bouncing between federation peers behind one DNS name resumes
	// instead of full-handshaking. With TicketRotate zero the secret
	// yields a single static key.
	TicketSecret string
}

// Server is a Clarens framework instance.
type Server struct {
	cfg      Config
	store    *db.Store
	sessions *session.Manager
	vom      *vo.Manager
	methACL  *acl.Manager
	registry *registry
	codecs   []rpc.Codec
	stats    Stats
	logger   *log.Logger

	telemetry  *telemetry.Registry
	requestLog *slog.Logger

	// spans is the flight recorder (nil when Config.TraceStore is off);
	// populated by the trace pipeline stage, queried by the trace service
	// and /debug/traces.
	spans *telemetry.SpanStore
	// runtimeSampler feeds the clarens.runtime.* gauges; stopped once on
	// shutdown.
	runtimeSampler  *telemetry.RuntimeSampler
	stopSamplerOnce sync.Once

	// health checks and extra system.stats sections contributed by the
	// assembled services (job queue depths, federation peer health, ...).
	healthMu sync.RWMutex
	health   []namedCheck
	sections []namedSection

	// dispatch pipeline: registered stages (built-ins carry anchor names,
	// custom interceptors are unnamed) and the cached composition (folded
	// outermost-first over the terminal handler).
	dispatchMu   sync.RWMutex
	interceptors []pipelineStage
	pipeline     Handler

	mux      *http.ServeMux
	httpSrv  *http.Server
	listener net.Listener

	// conns counts connection-layer events (TLS handshakes, resumptions,
	// ALPN outcomes, per-protocol requests); tickets manages session-ticket
	// key rotation for the TLS listener.
	conns   connTracker
	tickets *ticketKeeper

	events *pubsub.Bus

	wsMu     sync.Mutex
	wsConns  map[*ws.Conn]struct{}
	wsClosed bool

	// Load shedding and graceful drain: the shed pipeline stage counts
	// top-level RPCs in flight and rejects work once draining is set or
	// MaxInFlight is exceeded.
	inflight atomic.Int64
	draining atomic.Bool
	shed     *telemetry.Counter

	started time.Time
}

// NewServer constructs a framework instance, opens the database, boots the
// VO tree, and registers the built-in system, vo, and acl services.
func NewServer(cfg Config) (*Server, error) {
	store, err := db.OpenWith(cfg.DataDir, cfg.DB)
	if err != nil {
		return nil, err
	}
	vom, err := vo.NewManager(store, cfg.AdminDNs)
	if err != nil {
		store.Close()
		return nil, err
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	if cfg.RPCPath == "" {
		cfg.RPCPath = "/rpc"
	}
	s := &Server{
		cfg:        cfg,
		store:      store,
		sessions:   session.NewManager(store, cfg.SessionTTL),
		vom:        vom,
		methACL:    acl.NewManager(store, "acl_methods", vom),
		registry:   newRegistry(store),
		codecs:     []rpc.Codec{xmlrpc.New(), jsonrpc.New(), soaprpc.New()},
		logger:     logger,
		telemetry:  telemetry.New(),
		requestLog: cfg.RequestLog,
		mux:        http.NewServeMux(),
		events:     pubsub.New(),
		started:    time.Now(),
	}
	s.stats.StartTime = s.started
	s.events.Instrument(s.telemetry)
	s.registerBuiltinInterceptors()
	s.telemetry.RegisterGauge("clarens.core.sessions", "Active sessions.",
		func() float64 { return float64(s.sessions.Count()) })
	s.telemetry.RegisterGauge("clarens.core.methods", "Registered RPC methods.",
		func() float64 { return float64(s.registry.count()) })
	s.telemetry.RegisterGauge("clarens.core.uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(s.started).Seconds() })
	s.telemetry.RegisterGauge("clarens.core.inflight", "Top-level RPCs currently executing.",
		func() float64 { return float64(s.inflight.Load()) })
	s.telemetry.RegisterGauge("clarens.core.draining", "1 while the server is draining for shutdown.",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.telemetry.RegisterGauge("clarens.db.wal_fsyncs", "WAL fsyncs issued by the store.",
		func() float64 { return float64(s.store.Fsyncs()) })
	s.shed = s.telemetry.Counter("clarens.core.shed_total",
		"RPCs rejected early by the load-shedding stage (overload, expired deadline, or drain).")
	s.conns.register(s.telemetry)
	s.RegisterStatsSection("conn", s.conns.stats)
	s.runtimeSampler = telemetry.StartRuntimeSampler(s.telemetry, 10*time.Second)

	if cfg.TraceStore {
		s.spans = telemetry.NewSpanStore(telemetry.SpanStoreOptions{
			Capacity: cfg.TraceCapacity,
			Slow:     cfg.TraceSlow,
			Server:   cfg.ServerName,
		})
		// Every promoted span becomes the exemplar of its latency bucket,
		// closing the /metrics → trace ID loop.
		s.spans.OnSample = func(_ string, d time.Duration, trace string) {
			s.telemetry.AttachRPCExemplar(d, trace)
		}
		s.telemetry.RegisterGauge("clarens.trace.spans", "Spans resident in the flight-recorder ring.",
			func() float64 { return float64(s.spans.Stats().Live) })
		s.telemetry.RegisterGauge("clarens.trace.sampled_total", "Traces promoted to the flight recorder.",
			func() float64 { return float64(s.spans.Stats().SampledTraces) })
		s.telemetry.RegisterGauge("clarens.trace.dropped_total", "Traces discarded by tail sampling.",
			func() float64 { return float64(s.spans.Stats().DroppedTraces) })
		s.RegisterStatsSection("trace_store", func() map[string]any {
			st := s.spans.Stats()
			return map[string]any{
				"capacity":        st.Capacity,
				"spans":           st.Live,
				"traces":          st.Traces,
				"pending":         int(st.Pending),
				"sampled_traces":  int(st.SampledTraces),
				"dropped_traces":  int(st.DroppedTraces),
				"forced":          int(st.Forced),
				"slow":            int(st.Slow),
				"faulted":         int(st.Faulted),
				"spans_dropped":   int(st.SpansDropped),
				"pending_evicted": int(st.PendingEvicted),
				"slow_threshold":  s.spans.Slow().String(),
			}
		})
		s.RegisterHealthCheck("trace_store", func() error {
			if s.spans.PendingSaturated() {
				return fmt.Errorf("pending trace buffer saturated (evictions: %d)", s.spans.Stats().PendingEvicted)
			}
			return nil
		})
		s.mux.HandleFunc("/debug/traces/", s.handleDebugTrace)
	}

	s.mux.HandleFunc(cfg.RPCPath, s.handleRPC)
	if cfg.RPCPath != "/" {
		s.mux.HandleFunc("/", s.handleRoot)
	}

	if err := s.Register(systemService{s}); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.Register(voService{s}); err != nil {
		s.Close()
		return nil, err
	}
	if err := s.Register(aclService{s}); err != nil {
		s.Close()
		return nil, err
	}
	if s.spans != nil {
		if err := s.Register(traceService{s}); err != nil {
			s.Close()
			return nil, err
		}
	}

	openSystem := cfg.OpenSystem == nil || *cfg.OpenSystem
	if openSystem {
		err := s.methACL.Set("system", &acl.ACL{
			AllowDNs:    []string{acl.EntryAny, acl.EntryAnonymous},
			AllowGroups: []string{vo.AdminsGroup},
		})
		if err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// Accessors used by services and the public API.

// Store returns the embedded database.
func (s *Server) Store() *db.Store { return s.store }

// Sessions returns the session manager.
func (s *Server) Sessions() *session.Manager { return s.sessions }

// VO returns the virtual-organization manager.
func (s *Server) VO() *vo.Manager { return s.vom }

// MethodACL returns the ACL manager guarding method invocation.
func (s *Server) MethodACL() *acl.Manager { return s.methACL }

// Stats returns the live dispatch counters.
func (s *Server) Stats() *Stats { return &s.stats }

// Telemetry returns the server's metrics registry: per-method latency
// histograms fed by the dispatch pipeline, plus the counters, gauges,
// and histograms services register. Rendered by the /metrics endpoint,
// system.stats, and the MonALISA republication.
func (s *Server) Telemetry() *telemetry.Registry { return s.telemetry }

// RequestLog returns the structured request logger, or nil when request
// logging is disabled.
func (s *Server) RequestLog() *slog.Logger { return s.requestLog }

// Spans returns the flight-recorder span store, or nil when
// Config.TraceStore is disabled.
func (s *Server) Spans() *telemetry.SpanStore { return s.spans }

// Logger returns the server's logger.
func (s *Server) Logger() *log.Logger { return s.logger }

// namedCheck is one registered health probe.
type namedCheck struct {
	name string
	fn   func() error
}

// namedSection is one registered system.stats contributor.
type namedSection struct {
	name string
	fn   func() map[string]any
}

// RegisterHealthCheck adds a named probe to system.health. The probe
// returns nil when healthy; a non-nil error marks the overall status
// degraded and surfaces the error text under the check's name.
func (s *Server) RegisterHealthCheck(name string, fn func() error) {
	s.healthMu.Lock()
	s.health = append(s.health, namedCheck{name, fn})
	s.healthMu.Unlock()
}

// RegisterStatsSection adds a named struct to the system.stats response
// (queue depths, artifact bytes, peer health, ...). The callback runs on
// every system.stats call and must be safe for concurrent use.
func (s *Server) RegisterStatsSection(name string, fn func() map[string]any) {
	s.healthMu.Lock()
	s.sections = append(s.sections, namedSection{name, fn})
	s.healthMu.Unlock()
}

// runHealthChecks evaluates every registered probe; ok reports whether
// all passed, and results maps check name to "ok" or the error text.
func (s *Server) runHealthChecks() (ok bool, results map[string]any) {
	s.healthMu.RLock()
	checks := append([]namedCheck(nil), s.health...)
	s.healthMu.RUnlock()
	ok = true
	results = make(map[string]any, len(checks))
	for _, c := range checks {
		if err := c.fn(); err != nil {
			ok = false
			results[c.name] = err.Error()
		} else {
			results[c.name] = "ok"
		}
	}
	return ok, results
}

// statsSections evaluates every registered contributor.
func (s *Server) statsSections() map[string]any {
	s.healthMu.RLock()
	sections := append([]namedSection(nil), s.sections...)
	s.healthMu.RUnlock()
	out := make(map[string]any, len(sections))
	for _, sec := range sections {
		out[sec.name] = sec.fn()
	}
	return out
}

// MountMetrics exposes the telemetry registry in Prometheus text format
// at path ("/metrics" when empty) on the server's mux. The endpoint is
// read-only and unauthenticated, like the GET banner: it carries
// aggregate latency numbers, not request payloads.
func (s *Server) MountMetrics(path string) {
	if path == "" {
		path = "/metrics"
	}
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "metrics endpoint accepts GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.telemetry.WritePrometheus(w)
	})
}

// MountPprof exposes net/http/pprof under /debug/pprof/ on the server's
// mux. Opt-in: profiling endpoints reveal goroutine stacks and heap
// contents, so deployments enable them deliberately.
func (s *Server) MountPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Register adds a service's methods to the registry. Every new top-level
// module receives a default ACL granting the root admins group, unless an
// ACL is already attached at the module level (so configured grants are
// never overwritten).
func (s *Server) Register(svc Service) error {
	if err := s.registry.register(svc); err != nil {
		return err
	}
	existing, err := s.methACL.Get(svc.Name())
	if err != nil {
		return err
	}
	if existing == nil {
		return s.methACL.Set(svc.Name(), &acl.ACL{AllowGroups: []string{vo.AdminsGroup}})
	}
	return nil
}

// Mux exposes the HTTP mux so services (files, portal, discovery) can
// attach GET endpoints, as Figure 1's "XML-RPC | GET | SOAP" row shows.
func (s *Server) Mux() *http.ServeMux { return s.mux }

// MethodNames returns all registered method names, sorted, via the
// database-backed path. The returned slice is the caller's to keep.
func (s *Server) MethodNames() []string {
	return append([]string(nil), s.registry.listFromDB()...)
}

// NewSessionFor creates a session directly; used by system.auth,
// proxy.login, examples, and tests.
func (s *Server) NewSessionFor(dn pki.DN) (*session.Session, error) {
	return s.sessions.New(dn)
}

// handleRoot accepts RPC POSTs on "/" and answers GET / with a banner, in
// the spirit of PClarens dispatching on URL form.
func (s *Server) handleRoot(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleRPC(w, r)
		return
	}
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s\nmethods: %d\nrpc endpoint: POST %s\n", Version, s.registry.count(), s.cfg.RPCPath)
}

// codecFor selects the protocol implementation for a request.
func (s *Server) codecFor(r *http.Request) rpc.Codec {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(strings.ToLower(ct))
	if r.Header.Get("SOAPAction") != "" || ct == "application/soap+xml" {
		return s.codecs[2]
	}
	switch ct {
	case "application/json", "application/json-rpc", "text/json":
		return s.codecs[1]
	default:
		return s.codecs[0] // XML-RPC: text/xml and anything else
	}
}

// SessionHeader is the HTTP header carrying the session identifier;
// the session cookie name is the lowercase equivalent.
const (
	SessionHeader = "X-Clarens-Session"
	SessionCookie = "clarens_session"
)

// IdentifyRequest resolves the caller's DN and session. Order of
// precedence: a verified TLS client certificate (possibly a proxy chain,
// paper §2.6), then a presented session token. The session lookup is
// always performed — it is the first of the two per-request access checks
// measured in Figure 4. Exported for GET-path services (files, portal).
func (s *Server) IdentifyRequest(r *http.Request) (pki.DN, *session.Session) {
	var dn pki.DN
	if r.TLS != nil && len(r.TLS.PeerCertificates) > 0 {
		if len(r.TLS.VerifiedChains) > 0 {
			dn = pki.EffectiveDNFromChain(r.TLS.VerifiedChains[0])
		} else {
			dn = pki.EffectiveDNFromChain(r.TLS.PeerCertificates)
		}
	}
	sid := r.Header.Get(SessionHeader)
	if sid == "" {
		if c, err := r.Cookie(SessionCookie); err == nil {
			sid = c.Value
		}
	}
	// Access check 1: is this credential associated with a current
	// session? (database lookup, even for an empty token)
	sess, ok := s.sessions.Get(sid)
	if !ok {
		sess = nil
	}
	if dn.IsZero() && sess != nil {
		dn = sess.DNParsed()
	}
	return dn, sess
}

// handleRPC is the POST dispatch pipeline.
func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "RPC endpoint accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	s.conns.request(r)
	codec := s.codecFor(r)
	req, err := codec.DecodeRequest(r.Body)
	if err != nil {
		fault, ok := err.(*rpc.Fault)
		if !ok {
			fault = &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
		}
		s.writeResponse(w, codec, &rpc.Response{Fault: fault})
		s.stats.record("(parse-error)", true)
		return
	}
	resp := s.Dispatch(r, codec.Name(), req)
	s.writeResponse(w, codec, resp)
}

// respBufPool recycles response encode buffers across requests. Encoding
// into a pooled buffer (instead of straight to the ResponseWriter) costs
// nothing extra — the wire bytes must be materialized either way — and
// buys buffer reuse plus an exact Content-Length, which keeps HTTP/1.1
// responses out of chunked encoding.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// respBufRetainLimit is the largest buffer returned to the pool; one
// oversized response must not pin its buffer forever.
const respBufRetainLimit = 1 << 20

func (s *Server) writeResponse(w http.ResponseWriter, codec rpc.Codec, resp *rpc.Response) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= respBufRetainLimit {
			respBufPool.Put(buf)
		}
	}()
	if err := codec.EncodeResponse(buf, resp); err != nil {
		s.logger.Printf("core: encode response: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", codec.ContentTypes()[0]+"; charset=utf-8")
	w.Header().Set("X-Clarens-Server", Version)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Write(buf.Bytes())
}

// Handler returns the full HTTP handler (RPC + registered GET endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port). With cfg.TLS set it serves HTTPS
// with client-certificate authentication; otherwise plain HTTP. It
// returns once the listener is accepting; serving continues in the
// background until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("core: listen %s: %w", addr, err)
	}
	if s.cfg.TLS != nil {
		tc, err := s.tlsServerConfig()
		if err != nil {
			ln.Close()
			return err
		}
		// The keeper installs keys on tc itself; wrapping the listener with
		// this same live config (rather than handing it to http.Server,
		// which clones it and freezes the key set) is what lets rotation
		// take effect without a restart.
		s.tickets = newTicketKeeper(tc, s.cfg.TLS.TicketSecret, s.cfg.TLS.TicketRotate)
		ln = tls.NewListener(ln, tc)
	}
	s.listener = ln
	s.httpSrv = &http.Server{
		Handler:  s.mux,
		ErrorLog: s.logger,
		ConnState: func(_ net.Conn, st http.ConnState) {
			// HTTP/2 connections fire StateNew on accept and are then owned
			// by the h2 layer (no further state hooks), so opened is exact
			// across protocols while closed covers HTTP/1.x only.
			switch st {
			case http.StateNew:
				s.conns.opened.Add(1)
			case http.StateClosed, http.StateHijacked:
				s.conns.closed.Add(1)
			}
		},
	}
	if s.cfg.TLS != nil && !s.cfg.DisableHTTP2 {
		// srv.Serve on a tls.Listener does not wire up the bundled HTTP/2
		// server by itself: the TLS config must offer "h2" via ALPN (done
		// in tlsServerConfig) and the http.Server must enable the protocol
		// so Serve registers the h2 connection handler. Declare it
		// explicitly rather than relying on the nil-TLSConfig compatibility
		// default.
		var protos http.Protocols
		protos.SetHTTP1(true)
		protos.SetHTTP2(true)
		s.httpSrv.Protocols = &protos
	}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logger.Printf("core: serve: %v", err)
		}
	}()
	return nil
}

// tlsServerConfig builds the HTTPS configuration with grid-style client
// authentication, including acceptance of RFC 3820 proxy certificate
// chains (which standard verification rejects because the signing user
// certificate is not a CA).
func (s *Server) tlsServerConfig() (*tls.Config, error) {
	t := s.cfg.TLS
	if t.Identity == nil {
		return nil, fmt.Errorf("core: TLS enabled without a server identity")
	}
	cert := t.Identity.TLSCertificate()
	clientAuth := tls.VerifyClientCertIfGiven
	if t.RequireClientCert {
		clientAuth = tls.RequireAnyClientCert
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		ClientAuth:   clientAuth,
		MinVersion:   tls.VersionTLS12,
		// Offer h2 first; clients that skip ALPN entirely (the raw /ws
		// dialer, pre-h2 tooling) fall back to HTTP/1.1, which keeps the
		// Upgrade/hijack path working on an h2-enabled server.
		NextProtos: []string{"h2", "http/1.1"},
		// VerifyConnection runs on every connection — including resumed
		// ones, where the certificate callbacks are skipped — making it the
		// one place handshake/resumption telemetry is complete.
		VerifyConnection: func(cs tls.ConnectionState) error {
			s.conns.handshake(cs)
			return nil
		},
	}
	if s.cfg.DisableHTTP2 {
		cfg.NextProtos = []string{"http/1.1"}
	}
	if t.ClientCAs != nil {
		cfg.ClientCAs = t.ClientCAs
		// Standard verification fails for proxy chains; verify manually.
		cfg.ClientAuth = tls.RequireAnyClientCert
		if !t.RequireClientCert {
			cfg.ClientAuth = tls.RequestClientCert
		}
		cfg.VerifyPeerCertificate = func(rawCerts [][]byte, _ [][]*x509.Certificate) error {
			if len(rawCerts) == 0 {
				if t.RequireClientCert {
					return fmt.Errorf("core: client certificate required")
				}
				return nil
			}
			certs := make([]*x509.Certificate, 0, len(rawCerts))
			for _, raw := range rawCerts {
				c, err := x509.ParseCertificate(raw)
				if err != nil {
					return err
				}
				certs = append(certs, c)
			}
			leaf := certs[0]
			if pki.IsProxy(leaf) {
				_, err := pki.VerifyProxy(leaf, certs[1:], t.ClientCAs)
				return err
			}
			inter := x509.NewCertPool()
			for _, c := range certs[1:] {
				inter.AddCert(c)
			}
			_, err := leaf.Verify(x509.VerifyOptions{
				Roots:         t.ClientCAs,
				Intermediates: inter,
				KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
			})
			return err
		}
	}
	return cfg, nil
}

// Addr returns the bound listen address after Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// URL returns the base URL of the running server.
func (s *Server) URL() string {
	scheme := "http"
	if s.cfg.TLS != nil {
		scheme = "https"
	}
	return scheme + "://" + s.Addr()
}

// RPCPath returns the configured POST endpoint path.
func (s *Server) RPCPath() string { return s.cfg.RPCPath }

// Close shuts the server down and closes the database. Live WebSocket
// sessions are told the server is going away (a "closing" frame) before
// the bus and listener are torn down.
func (s *Server) Close() error {
	s.stopSamplerOnce.Do(s.runtimeSampler.Stop)
	s.tickets.Stop()
	s.closeWS()
	s.events.Close()
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
	return s.store.Close()
}

// Draining reports whether the server is refusing new RPCs ahead of
// shutdown.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports the number of top-level RPCs currently executing.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Drain flips the server into draining mode — every new top-level RPC
// is rejected with the retryable CodeOverloaded fault — and waits for
// the RPCs already executing to finish, bounded by ctx. It returns
// ctx.Err() if in-flight work outlived the deadline (the work keeps
// running; Shutdown proceeds regardless). Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
	return nil
}

// Shutdown performs a graceful stop: reject new RPCs (retryable fault),
// let in-flight calls finish within ctx, tell every /ws client the
// server is closing, stop the listener, compact the database (so the
// next open replays no WAL), and close it. The hard-stop Close remains
// for abrupt teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	drainErr := s.Drain(ctx)
	s.stopSamplerOnce.Do(s.runtimeSampler.Stop)
	s.tickets.Stop()
	// WS connections are hijacked from the http.Server, so they are
	// notified explicitly; the pubsub bus close unblocks their readers.
	s.closeWS()
	s.events.Close()
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			s.httpSrv.Close()
		}
	}
	if err := s.store.Compact(); err != nil && !errors.Is(err, db.ErrClosed) {
		s.logger.Printf("core: compact on shutdown: %v", err)
	}
	if err := s.store.Close(); err != nil {
		return err
	}
	return drainErr
}
