package core

import (
	"fmt"
	"sync"
	"time"

	"clarens/internal/rpc"
)

// DefaultMaxBatchCalls is the system.multicall sub-call cap applied when
// Config.MaxBatchCalls is zero. One POST buys at most this much dispatch
// work, so an anonymous client cannot amplify a single request into an
// unbounded pipeline loop.
const DefaultMaxBatchCalls = 256

// systemService provides the framework's introspection and session
// management methods. system.list_methods is the method measured in the
// paper's Figure 4; its implementation deliberately scans the database
// rather than the in-memory registry to preserve the measured cost model.
type systemService struct{ s *Server }

func (systemService) Name() string { return "system" }

func (sv systemService) Methods() []Method {
	return []Method{
		{
			Name:      "system.list_methods",
			Help:      "List the names of all methods registered on this server.",
			Signature: []string{"array"},
			Public:    true,
			Handler:   sv.listMethods,
		},
		{
			Name:      "system.method_help",
			Help:      "Return the help string for a method.",
			Signature: []string{"string string"},
			Public:    true,
			Handler:   sv.methodHelp,
		},
		{
			Name:      "system.method_signature",
			Help:      "Return the signature list for a method.",
			Signature: []string{"array string"},
			Public:    true,
			Handler:   sv.methodSignature,
		},
		{
			Name:      "system.auth",
			Help:      "Establish a server-side session for the TLS-authenticated caller; returns the session token.",
			Signature: []string{"string"},
			Public:    true,
			Handler:   sv.auth,
		},
		{
			Name:      "system.logout",
			Help:      "Destroy the current session.",
			Signature: []string{"boolean"},
			Public:    true,
			Handler:   sv.logout,
		},
		{
			Name:      "system.whoami",
			Help:      "Return the caller's authenticated distinguished name (empty if anonymous).",
			Signature: []string{"string"},
			Public:    true,
			Handler:   sv.whoami,
		},
		{
			Name:      "system.ping",
			Help:      "Liveness probe; returns the string \"pong\".",
			Signature: []string{"string"},
			Public:    true,
			Handler:   sv.ping,
		},
		{
			Name:      "system.echo",
			Help:      "Return the first parameter unchanged; the trivial method used in cross-framework comparisons.",
			Signature: []string{"any any"},
			Public:    true,
			Handler:   sv.echo,
		},
		{
			Name:      "system.version",
			Help:      "Return the server version string.",
			Signature: []string{"string"},
			Public:    true,
			Handler:   sv.version,
		},
		{
			Name:      "system.time",
			Help:      "Return the server's current UTC time.",
			Signature: []string{"dateTime.iso8601"},
			Public:    true,
			Handler:   sv.time,
		},
		{
			Name:      "system.stats",
			Help:      "Return dispatch counters: requests, faults, uptime seconds, per-method counts and latency quantiles, plus per-service sections (queue depths, peer health).",
			Signature: []string{"struct"},
			Handler:   sv.stats,
		},
		{
			Name:      "system.health",
			Help:      "Liveness and readiness summary: overall status, uptime, version, and the result of each registered health check.",
			Signature: []string{"struct"},
			Public:    true,
			Handler:   sv.health,
		},
		{
			Name: "system.multicall",
			Help: "Execute an array of {methodName, params} sub-calls in one request; " +
				"returns one entry per sub-call: a one-element array wrapping the result, or a {faultCode, faultString} struct.",
			Signature: []string{"array array"},
			Public:    true,
			Handler:   sv.multicall,
		},
	}
}

func (sv systemService) listMethods(ctx *Context, p Params) (any, error) {
	// The Figure 4 workload: all registered method names, serialized as
	// an array of >30 strings. The database scan and sort are cached
	// behind the methods bucket generation, so steady-state requests pay
	// two map lookups and zero allocations here.
	_, norm := sv.s.registry.listCached()
	return norm, nil
}

func (sv systemService) methodHelp(ctx *Context, p Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	m, ok := sv.s.registry.lookup(name)
	if !ok {
		return nil, &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: "no such method " + name}
	}
	return m.Help, nil
}

func (sv systemService) methodSignature(ctx *Context, p Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	m, ok := sv.s.registry.lookup(name)
	if !ok {
		return nil, &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: "no such method " + name}
	}
	return m.Signature, nil
}

func (sv systemService) auth(ctx *Context, p Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	if ctx.Session != nil {
		// Re-authentication with a live session just renews it.
		if err := sv.s.sessions.Touch(ctx.Session.ID); err == nil {
			return ctx.Session.ID, nil
		}
	}
	sess, err := sv.s.sessions.New(ctx.DN)
	if err != nil {
		return nil, err
	}
	return sess.ID, nil
}

func (sv systemService) logout(ctx *Context, p Params) (any, error) {
	if ctx.Session == nil {
		return false, nil
	}
	if err := sv.s.sessions.Delete(ctx.Session.ID); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv systemService) whoami(ctx *Context, p Params) (any, error) {
	return ctx.DN.String(), nil
}

func (systemService) ping(ctx *Context, p Params) (any, error) { return "pong", nil }

func (systemService) echo(ctx *Context, p Params) (any, error) {
	if len(p) == 0 {
		return nil, nil
	}
	return p[0], nil
}

func (systemService) version(ctx *Context, p Params) (any, error) { return Version, nil }

func (systemService) time(ctx *Context, p Params) (any, error) {
	return time.Now().UTC(), nil
}

// multicall executes a batch of sub-calls from one POST (the boxcarring
// pattern the paper's Python/ROOT clients used to amortize round trips).
// Every sub-call runs through the full interceptor pipeline with the
// batch caller's identity — per-sub-call ACL enforcement — and faults are
// isolated: one failing entry never aborts the rest.
//
// With Config.BatchParallelism > 1, independent sub-calls fan out across
// a bounded worker pool; each worker writes its result into the slot of
// the sub-call's submission index, so the response order is always the
// request order no matter how execution interleaves.
func (sv systemService) multicall(ctx *Context, p Params) (any, error) {
	entries, fault := rpc.MulticallEntries(p)
	if fault != nil {
		return nil, fault
	}
	limit := sv.s.cfg.MaxBatchCalls
	if limit == 0 {
		limit = DefaultMaxBatchCalls
	}
	if limit > 0 && len(entries) > limit {
		return nil, &rpc.Fault{
			Code:    rpc.CodeInvalidParams,
			Message: fmt.Sprintf("multicall batch of %d exceeds the %d sub-call limit", len(entries), limit),
		}
	}
	out := make([]any, len(entries))
	workers := sv.s.cfg.BatchParallelism
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers <= 1 {
		// Sequential fallback (BatchParallelism 0/1): strict in-order
		// execution for clients batching dependent calls.
		for i, entry := range entries {
			out[i] = sv.runSubCall(ctx, entry)
		}
		return out, nil
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = sv.runSubCall(ctx, entries[i])
			}
		}()
	}
	for i := range entries {
		next <- i
	}
	close(next)
	wg.Wait()
	return out, nil
}

// runSubCall executes one multicall entry and shapes the outcome into the
// wire convention (one-element array on success, fault struct otherwise).
func (sv systemService) runSubCall(ctx *Context, entry any) any {
	if err := ctx.Err(); err != nil {
		// Request cancelled or deadline hit: fault the remaining
		// entries rather than executing them against a dead client.
		return rpc.MulticallFault(&rpc.Fault{Code: rpc.CodeInternal, Message: "multicall aborted: " + err.Error()})
	}
	call, fault := rpc.ParseSubCall(entry)
	if fault == nil && call.Method == rpc.MulticallMethod {
		fault = &rpc.Fault{Code: rpc.CodeInvalidRequest, Message: "recursive system.multicall is not allowed"}
	}
	if fault != nil {
		return rpc.MulticallFault(fault)
	}
	resp := sv.s.InvokeTraceSample(ctx, call.Trace, call.Method, call.Params, call.Sample)
	if resp.Fault != nil {
		return rpc.MulticallFault(resp.Fault)
	}
	return rpc.MulticallValue(resp.Result)
}

// health is the public liveness/readiness probe: overall status ("ok"
// or "degraded"), uptime, version, and each registered check's result.
func (sv systemService) health(ctx *Context, p Params) (any, error) {
	ok, checks := sv.s.runHealthChecks()
	status := "ok"
	if !ok {
		status = "degraded"
	}
	return map[string]any{
		"status":         status,
		"version":        Version,
		"uptime_seconds": int(time.Since(sv.s.started).Seconds()),
		"time":           time.Now().UTC(),
		"checks":         checks,
	}, nil
}

func (sv systemService) stats(ctx *Context, p Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	requests, faults, byMethod := sv.s.stats.Snapshot()
	perMethod := make(map[string]any, len(byMethod))
	for k, v := range byMethod {
		perMethod[k] = int(v)
	}
	// Per-method latency quantiles and fault counts from the telemetry
	// registry (the same numbers the /metrics endpoint exposes).
	latency := make(map[string]any)
	for _, m := range sv.s.telemetry.MethodSnapshots() {
		latency[m.Method] = map[string]any{
			"count":  int(m.Requests),
			"faults": int(m.Faults),
			"p50_ms": float64(m.Latency.Quantile(0.5)) / float64(time.Millisecond),
			"p95_ms": float64(m.Latency.Quantile(0.95)) / float64(time.Millisecond),
			"p99_ms": float64(m.Latency.Quantile(0.99)) / float64(time.Millisecond),
		}
	}
	out := map[string]any{
		"requests":       int(requests),
		"faults":         int(faults),
		"uptime_seconds": int(time.Since(sv.s.started).Seconds()),
		"methods":        sv.s.registry.count(),
		"sessions":       sv.s.sessions.Count(),
		"by_method":      perMethod,
		"latency":        latency,
	}
	// Service-contributed sections: job queue depths, artifact bytes,
	// federation peer health — whatever the assembly registered.
	for name, section := range sv.s.statsSections() {
		out[name] = section
	}
	return out, nil
}
