package core

import (
	"clarens/internal/acl"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

// aclService exposes access-control management (paper §2.2) as web
// service methods: server administrators attach/detach ACLs at any method
// hierarchy level; any authenticated caller may check their own access.

type aclService struct{ s *Server }

func (aclService) Name() string { return "acl" }

func (sv aclService) Methods() []Method {
	return []Method{
		{
			Name:      "acl.set",
			Help:      "Attach an ACL to a method hierarchy path. Parameters: path, order (\"allow,deny\"|\"deny,allow\"), allow DNs, allow groups, deny DNs, deny groups.",
			Signature: []string{"boolean string string array array array array"},
			Handler:   sv.set,
		},
		{
			Name:      "acl.get",
			Help:      "Return the ACL attached exactly at a path, or an empty struct.",
			Signature: []string{"struct string"},
			Handler:   sv.get,
		},
		{
			Name:      "acl.delete",
			Help:      "Remove the ACL attached at a path.",
			Signature: []string{"boolean string"},
			Handler:   sv.del,
		},
		{
			Name:      "acl.list",
			Help:      "List all paths with attached ACLs.",
			Signature: []string{"array"},
			Handler:   sv.list,
		},
		{
			Name:      "acl.check",
			Help:      "Evaluate whether a DN may invoke a method; returns the decision and the hierarchy level that decided.",
			Signature: []string{"struct string string"},
			Public:    true,
			Handler:   sv.check,
		},
	}
}

func parseDNParam(s string) (pki.DN, error) {
	if s == "" {
		return nil, nil
	}
	dn, err := pki.ParseDN(s)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: err.Error()}
	}
	return dn, nil
}

func (sv aclService) set(ctx *Context, p Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	path, err := p.String(0)
	if err != nil {
		return nil, err
	}
	orderStr, err := p.String(1)
	if err != nil {
		return nil, err
	}
	order, err := acl.ParseOrder(orderStr)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: err.Error()}
	}
	a := &acl.ACL{Order: order}
	lists := []*[]string{&a.AllowDNs, &a.AllowGroups, &a.DenyDNs, &a.DenyGroups}
	for i, dst := range lists {
		if 2+i >= len(p) {
			break
		}
		vals, err := p.StringSlice(2 + i)
		if err != nil {
			return nil, err
		}
		*dst = vals
	}
	if err := sv.s.methACL.Set(path, a); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv aclService) get(ctx *Context, p Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	path, err := p.String(0)
	if err != nil {
		return nil, err
	}
	a, err := sv.s.methACL.Get(path)
	if err != nil {
		return nil, err
	}
	if a == nil {
		return map[string]any{}, nil
	}
	return map[string]any{
		"order":        a.Order.String(),
		"allow_dns":    a.AllowDNs,
		"allow_groups": a.AllowGroups,
		"deny_dns":     a.DenyDNs,
		"deny_groups":  a.DenyGroups,
	}, nil
}

func (sv aclService) del(ctx *Context, p Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	path, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if err := sv.s.methACL.Delete(path); err != nil {
		return nil, err
	}
	return true, nil
}

func (sv aclService) list(ctx *Context, p Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	return sv.s.methACL.Paths(), nil
}

func (sv aclService) check(ctx *Context, p Params) (any, error) {
	path, err := p.String(0)
	if err != nil {
		return nil, err
	}
	// Optional second parameter: the DN to check. Only server admins may
	// probe other identities; everyone may check themselves.
	dn := ctx.DN
	if len(p) > 1 {
		dnStr, err := p.String(1)
		if err != nil {
			return nil, err
		}
		probe, err := parseDNParam(dnStr)
		if err != nil {
			return nil, err
		}
		if !probe.Equal(ctx.DN) && !sv.s.vom.IsServerAdmin(ctx.DN) {
			return nil, &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "only administrators may check other identities"}
		}
		dn = probe
	}
	decision, level := sv.s.methACL.AuthorizeDetail(path, dn)
	return map[string]any{
		"decision": decision.String(),
		"level":    level,
	}, nil
}
