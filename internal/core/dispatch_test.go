package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clarens/internal/acl"
	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
)

// testService registers ad-hoc methods under the "t" module for pipeline
// tests.
type testService struct{ methods []Method }

func (testService) Name() string        { return "t" }
func (s testService) Methods() []Method { return s.methods }

func registerTest(t *testing.T, s *Server, methods ...Method) {
	t.Helper()
	if err := s.Register(testService{methods}); err != nil {
		t.Fatal(err)
	}
	// Open the module so anonymous test calls pass the ACL stage.
	if err := s.MethodACL().Set("t", &acl.ACL{AllowDNs: []string{acl.EntryAny, acl.EntryAnonymous}}); err != nil {
		t.Fatal(err)
	}
}

func TestInterceptorOrdering(t *testing.T) {
	s := newTestServer(t)
	var mu sync.Mutex
	var trace []string
	mark := func(name string) Interceptor {
		return func(next Handler) Handler {
			return func(ctx *Context, p Params) (any, error) {
				mu.Lock()
				trace = append(trace, name+":pre:"+ctx.MethodName())
				mu.Unlock()
				result, err := next(ctx, p)
				mu.Lock()
				trace = append(trace, name+":post")
				mu.Unlock()
				return result, err
			}
		}
	}
	s.Use(mark("outer"), mark("inner"))

	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "system.ping"})
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	want := []string{"outer:pre:system.ping", "inner:pre:system.ping", "inner:post", "outer:post"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace[%d] = %q, want %q (full: %v)", i, trace[i], want[i], trace)
		}
	}
}

func TestInterceptorObservesIdentityAndUnknownMethods(t *testing.T) {
	s := newTestServer(t)
	var mu sync.Mutex
	seen := map[string]int{}
	var sawDN string
	s.Use(func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			mu.Lock()
			seen[ctx.MethodName()]++
			if !ctx.DN.IsZero() {
				sawDN = ctx.DN.String()
			}
			mu.Unlock()
			return next(ctx, p)
		}
	})

	// Custom interceptors run inside the auth stage: identity is resolved.
	call(t, s, xmlrpc.New(), sessionFor(t, s, userDN), "system.whoami")
	if sawDN != userDN.String() {
		t.Errorf("interceptor saw DN %q, want %q", sawDN, userDN)
	}
	if seen["system.whoami"] != 1 {
		t.Errorf("whoami observed %d times", seen["system.whoami"])
	}
	// Unknown methods still traverse the pipeline (the terminal stage
	// faults), so interceptors can rate-limit garbage too.
	if resp := s.Dispatch(nil, "test", &rpc.Request{Method: "no.such"}); resp.Fault == nil {
		t.Fatal("expected method-not-found fault")
	}
	if seen["no.such"] != 1 {
		t.Errorf("unknown method observed %d times", seen["no.such"])
	}
}

func TestPanicRecoveryReturnsFault(t *testing.T) {
	s := newTestServer(t)
	registerTest(t, s, Method{
		Name: "t.boom", Help: "panics", Signature: []string{"string"}, Public: true,
		Handler: func(ctx *Context, p Params) (any, error) { panic("kaboom") },
	})

	// Over the wire: the connection must survive and carry a fault.
	resp := call(t, s, xmlrpc.New(), nil, "t.boom")
	if resp.Fault == nil {
		t.Fatal("expected fault from panicking handler")
	}
	if resp.Fault.Code != rpc.CodeInternal {
		t.Errorf("fault code = %d, want %d", resp.Fault.Code, rpc.CodeInternal)
	}
	if !strings.Contains(resp.Fault.Message, "t.boom") {
		t.Errorf("fault message %q does not name the method", resp.Fault.Message)
	}
	// The server stays fully functional and counted the fault.
	if resp := call(t, s, xmlrpc.New(), nil, "system.ping"); resp.Fault != nil {
		t.Fatalf("server broken after panic: %v", resp.Fault)
	}
	_, faults, byMethod := s.Stats().Snapshot()
	if faults == 0 || byMethod["t.boom"] != 1 {
		t.Errorf("stats: faults=%d byMethod[t.boom]=%d", faults, byMethod["t.boom"])
	}
}

func TestContextCancellationMidHandler(t *testing.T) {
	s := newTestServer(t)
	entered := make(chan struct{})
	registerTest(t, s, Method{
		Name: "t.block", Help: "blocks until cancelled", Signature: []string{"string"}, Public: true,
		Handler: func(ctx *Context, p Params) (any, error) {
			close(entered)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return "not cancelled", nil
			}
		},
	})

	base, cancel := context.WithCancel(context.Background())
	done := make(chan *rpc.Response, 1)
	go func() {
		done <- s.DispatchContext(base, nil, "test", &rpc.Request{Method: "t.block"})
	}()
	<-entered
	cancel()
	select {
	case resp := <-done:
		if resp.Fault == nil {
			t.Fatalf("expected fault, got result %v", resp.Result)
		}
		if !strings.Contains(resp.Fault.Message, context.Canceled.Error()) {
			t.Errorf("fault = %v, want cancellation", resp.Fault)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not observe cancellation")
	}
}

func TestPerMethodDeadline(t *testing.T) {
	s := newTestServer(t)
	registerTest(t, s, Method{
		Name: "t.slow", Help: "sleeps past its deadline", Signature: []string{"string"}, Public: true,
		Timeout: 20 * time.Millisecond,
		Handler: func(ctx *Context, p Params) (any, error) {
			if _, ok := ctx.Deadline(); !ok {
				return nil, errors.New("no deadline on context")
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Second):
				return "never", nil
			}
		},
	})
	start := time.Now()
	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "t.slow"})
	if resp.Fault == nil {
		t.Fatalf("expected deadline fault, got %v", resp.Result)
	}
	if !strings.Contains(resp.Fault.Message, context.DeadlineExceeded.Error()) {
		t.Errorf("fault = %v", resp.Fault)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

func TestServerWideMethodTimeout(t *testing.T) {
	s, err := NewServer(Config{MethodTimeout: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	registerTest(t, s, Method{
		Name: "t.hang", Help: "waits for the server-wide bound", Signature: []string{"string"}, Public: true,
		Handler: func(ctx *Context, p Params) (any, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "t.hang"})
	if resp.Fault == nil || !strings.Contains(resp.Fault.Message, context.DeadlineExceeded.Error()) {
		t.Fatalf("fault = %v, want server-wide deadline", resp.Fault)
	}
}

func TestMulticallPerSubCallACL(t *testing.T) {
	s := newTestServer(t)
	// system.stats requires server-admin; ping is public. The batch runs
	// as an ordinary user, so the stats entry must fault independently.
	headers := sessionFor(t, s, userDN)
	resp := call(t, s, xmlrpc.New(), headers, "system.multicall", rpc.MulticallParams([]rpc.SubCall{
		{Method: "system.ping"},
		{Method: "system.stats"},
		{Method: "system.whoami"},
	})...)
	if resp.Fault != nil {
		t.Fatalf("batch fault: %v", resp.Fault)
	}
	results, err := rpc.ParseMulticallResults(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Fault != nil || !rpc.Equal(results[0].Result, "pong") {
		t.Errorf("ping: %+v", results[0])
	}
	if results[1].Fault == nil {
		t.Errorf("stats as non-admin succeeded: %v", results[1].Result)
	}
	// The sub-call inherits the batch caller's session identity.
	if results[2].Fault != nil || !rpc.Equal(results[2].Result, userDN.String()) {
		t.Errorf("whoami: %+v", results[2])
	}
}

func TestMulticallFaultIsolationAndShape(t *testing.T) {
	s := newTestServer(t)
	registerTest(t, s, Method{
		Name: "t.panic", Help: "panics", Signature: []string{"string"}, Public: true,
		Handler: func(ctx *Context, p Params) (any, error) { panic("sub-call panic") },
	})
	resp := call(t, s, xmlrpc.New(), nil, "system.multicall", rpc.MulticallParams([]rpc.SubCall{
		{Method: "system.echo", Params: []any{"first"}},
		{Method: "no.such.method"},
		{Method: "t.panic"},
		{Method: "system.multicall"}, // recursion refused
		{Method: "system.echo", Params: []any{"last"}},
	})...)
	if resp.Fault != nil {
		t.Fatalf("batch fault: %v", resp.Fault)
	}
	results, err := rpc.ParseMulticallResults(resp.Result)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	if !rpc.Equal(results[0].Result, "first") || !rpc.Equal(results[4].Result, "last") {
		t.Errorf("bracketing echoes: %+v / %+v", results[0], results[4])
	}
	if results[1].Fault == nil || results[1].Fault.Code != rpc.CodeMethodNotFound {
		t.Errorf("unknown method: %+v", results[1])
	}
	if results[2].Fault == nil || results[2].Fault.Code != rpc.CodeInternal {
		t.Errorf("panicking sub-call: %+v", results[2])
	}
	if results[3].Fault == nil || !strings.Contains(results[3].Fault.Message, "recursive") {
		t.Errorf("nested multicall: %+v", results[3])
	}
}

func TestMulticallBatchSizeLimit(t *testing.T) {
	s, err := NewServer(Config{MaxBatchCalls: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	within := make([]rpc.SubCall, 3)
	for i := range within {
		within[i] = rpc.SubCall{Method: "system.ping"}
	}
	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "system.multicall", Params: rpc.MulticallParams(within)})
	if resp.Fault != nil {
		t.Fatalf("3-entry batch under limit 3 faulted: %v", resp.Fault)
	}
	over := append(within, rpc.SubCall{Method: "system.ping"})
	resp = s.Dispatch(nil, "test", &rpc.Request{Method: "system.multicall", Params: rpc.MulticallParams(over)})
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeInvalidParams {
		t.Fatalf("4-entry batch over limit 3: %v", resp.Fault)
	}
}

func TestMulticallStatsCountSubCalls(t *testing.T) {
	s := newTestServer(t)
	call(t, s, xmlrpc.New(), nil, "system.multicall", rpc.MulticallParams([]rpc.SubCall{
		{Method: "system.ping"},
		{Method: "system.ping"},
	})...)
	_, _, byMethod := s.Stats().Snapshot()
	if byMethod["system.ping"] != 2 {
		t.Errorf("ping count = %d, want 2", byMethod["system.ping"])
	}
	if byMethod["system.multicall"] != 1 {
		t.Errorf("multicall count = %d, want 1", byMethod["system.multicall"])
	}
}

func TestDispatchCancellationFromHTTPRequest(t *testing.T) {
	// The HTTP request's context is carried into the handler, so a
	// disconnected client cancels server-side work.
	s := newTestServer(t)
	base, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/rpc", nil).WithContext(base)
	registerTest(t, s, Method{
		Name: "t.ctx", Help: "reports context state", Signature: []string{"boolean"}, Public: true,
		Handler: func(ctx *Context, p Params) (any, error) {
			return ctx.Err() != nil, nil
		},
	})
	resp := s.Dispatch(req, "test", &rpc.Request{Method: "t.ctx"})
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	if !rpc.Equal(resp.Result, true) {
		t.Error("handler did not observe the HTTP request's cancellation")
	}
}

func TestUseBeforeAnchorsPositionStages(t *testing.T) {
	s := newTestServer(t)
	var mu sync.Mutex
	var trace []string
	mark := func(name string) Interceptor {
		return func(next Handler) Handler {
			return func(ctx *Context, p Params) (any, error) {
				mu.Lock()
				trace = append(trace, name)
				mu.Unlock()
				return next(ctx, p)
			}
		}
	}
	// A stage anchored before auth must observe the request with the
	// caller's identity still unresolved, while a Use stage (inside the
	// pipeline) sees it resolved.
	var preAuthDN, insideDN string
	if err := s.UseBefore(AnchorAuth, func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			mu.Lock()
			trace = append(trace, "pre-auth")
			preAuthDN = ctx.DN.String()
			mu.Unlock()
			return next(ctx, p)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.UseBefore(AnchorRecover, mark("outermost")); err != nil {
		t.Fatal(err)
	}
	s.Use(func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			mu.Lock()
			trace = append(trace, "inner")
			insideDN = ctx.DN.String()
			mu.Unlock()
			return next(ctx, p)
		}
	})

	call(t, s, xmlrpc.New(), sessionFor(t, s, userDN), "system.whoami")
	want := []string{"outermost", "pre-auth", "inner"}
	mu.Lock()
	defer mu.Unlock()
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if preAuthDN != "" {
		t.Errorf("pre-auth stage saw DN %q, want unresolved", preAuthDN)
	}
	if insideDN != userDN.String() {
		t.Errorf("inner stage saw DN %q, want %q", insideDN, userDN)
	}
}

func TestUseBeforeUnknownAnchor(t *testing.T) {
	s := newTestServer(t)
	err := s.UseBefore("nonsense", func(next Handler) Handler { return next })
	if err == nil || !strings.Contains(err.Error(), "unknown interceptor anchor") {
		t.Fatalf("err = %v, want unknown-anchor error", err)
	}
	// No interceptors: no error, no pipeline invalidation needed.
	if err := s.UseBefore("nonsense"); err != nil {
		t.Fatalf("empty UseBefore: %v", err)
	}
}

func TestUseBeforeAuthCanRejectBeforeIdentity(t *testing.T) {
	// The motivating deployment case: an IP allowlist ahead of identity
	// resolution. Requests from outside the allowlist fault without any
	// session lookup having happened.
	s := newTestServer(t)
	if err := s.UseBefore(AnchorAuth, func(next Handler) Handler {
		return func(ctx *Context, p Params) (any, error) {
			if !strings.HasPrefix(ctx.RemoteAddr, "10.") {
				return nil, &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "address not allowed"}
			}
			return next(ctx, p)
		}
	}); err != nil {
		t.Fatal(err)
	}

	post := func(remote string) *rpc.Response {
		codec := xmlrpc.New()
		var buf strings.Builder
		if err := codec.EncodeRequest(&buf, &rpc.Request{Method: "system.ping"}); err != nil {
			t.Fatal(err)
		}
		req := httptest.NewRequest(http.MethodPost, "/rpc", strings.NewReader(buf.String()))
		req.Header.Set("Content-Type", "text/xml")
		req.RemoteAddr = remote
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		resp, err := codec.DecodeResponse(strings.NewReader(w.Body.String()))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := post("10.0.0.7:1234"); resp.Fault != nil {
		t.Fatalf("allowed address faulted: %v", resp.Fault)
	}
	resp := post("203.0.113.9:1234")
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
		t.Fatalf("blocked address = %+v, want access-denied fault", resp)
	}
}
