package core

// Connection-layer instrumentation and TLS session-ticket key
// management. The paper's §4 measurements (reproduced in BENCH_PR3)
// put the production cliff at the TLS handshake: ~8.8k rps over a
// kept-alive connection collapses to ~700 rps when every call pays a
// full handshake. Everything here exists to make that amortization
// observable (clarens.conn.* gauges) and to keep resumption working
// at federation scale (rotating ticket keys, shareable across peers
// behind one DNS name).

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/tls"
	"encoding/binary"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"clarens/internal/telemetry"
)

// connTracker counts connection-layer events on the serving side:
// TCP connections accepted, TLS handshakes (full vs ticket-resumed),
// negotiated ALPN protocols, and RPC requests per HTTP version. All
// counters are monotonic totals; rates belong to the scraper.
type connTracker struct {
	opened     atomic.Int64 // TCP connections accepted
	closed     atomic.Int64 // HTTP/1.x connections closed or hijacked (h2 conns are managed out of ConnState's sight)
	handshakes atomic.Int64 // TLS handshakes completed
	resumed    atomic.Int64 // handshakes resumed from a session ticket
	alpnH2     atomic.Int64 // handshakes that negotiated h2
	alpnHTTP1  atomic.Int64 // handshakes that negotiated http/1.1 or nothing
	reqH2      atomic.Int64 // RPC requests served over HTTP/2
	reqHTTP1   atomic.Int64 // RPC requests served over HTTP/1.x
}

// handshake records one completed TLS handshake; called from the tls
// config's VerifyConnection hook, which runs for every connection —
// including resumptions, where the certificate callbacks are skipped.
func (t *connTracker) handshake(cs tls.ConnectionState) {
	t.handshakes.Add(1)
	if cs.DidResume {
		t.resumed.Add(1)
	}
	if cs.NegotiatedProtocol == "h2" {
		t.alpnH2.Add(1)
	} else {
		t.alpnHTTP1.Add(1)
	}
}

// request records one dispatched RPC request's HTTP version.
func (t *connTracker) request(r *http.Request) {
	if r == nil {
		return
	}
	if r.ProtoMajor == 2 {
		t.reqH2.Add(1)
	} else {
		t.reqHTTP1.Add(1)
	}
}

// register exposes the tracker on the telemetry registry under the
// clarens.conn.* namespace.
func (t *connTracker) register(reg *telemetry.Registry) {
	reg.RegisterGauge("clarens.conn.opened_total", "TCP connections accepted by the listener.",
		func() float64 { return float64(t.opened.Load()) })
	reg.RegisterGauge("clarens.conn.closed_total", "HTTP/1.x connections closed (HTTP/2 connections are tracked at handshake level only).",
		func() float64 { return float64(t.closed.Load()) })
	reg.RegisterGauge("clarens.conn.handshakes_total", "TLS handshakes completed.",
		func() float64 { return float64(t.handshakes.Load()) })
	reg.RegisterGauge("clarens.conn.handshakes_resumed", "TLS handshakes resumed from a session ticket (no certificate re-exchange).",
		func() float64 { return float64(t.resumed.Load()) })
	reg.RegisterGauge("clarens.conn.negotiated_h2", "TLS handshakes that negotiated HTTP/2 via ALPN.",
		func() float64 { return float64(t.alpnH2.Load()) })
	reg.RegisterGauge("clarens.conn.negotiated_http1", "TLS handshakes that negotiated HTTP/1.1 (or offered no ALPN).",
		func() float64 { return float64(t.alpnHTTP1.Load()) })
	reg.RegisterGauge("clarens.conn.http2_requests", "RPC requests served over HTTP/2.",
		func() float64 { return float64(t.reqH2.Load()) })
	reg.RegisterGauge("clarens.conn.http1_requests", "RPC requests served over HTTP/1.x.",
		func() float64 { return float64(t.reqHTTP1.Load()) })
}

// stats snapshots the tracker for system.stats.
func (t *connTracker) stats() map[string]any {
	return map[string]any{
		"opened":             t.opened.Load(),
		"closed":             t.closed.Load(),
		"handshakes":         t.handshakes.Load(),
		"handshakes_resumed": t.resumed.Load(),
		"negotiated_h2":      t.alpnH2.Load(),
		"negotiated_http1":   t.alpnHTTP1.Load(),
		"http2_requests":     t.reqH2.Load(),
		"http1_requests":     t.reqHTTP1.Load(),
	}
}

// ticketKeeper manages the server's TLS session-ticket keys. Two modes:
//
//   - Random rotation (no secret): a fresh random key is generated every
//     Rotate period and prepended; the newest key encrypts new tickets
//     and the two previous generations stay accepted, so a resuming
//     client is never refused across one rotation boundary.
//
//   - Shared secret: keys are derived as SHA-256(secret, epoch) where
//     epoch = unix-time / Rotate. Every federation peer configured with
//     the same secret and rotation period derives the same key schedule
//     independently — a client holding a ticket from one peer resumes
//     on any other peer behind the same DNS name. The adjacent epochs
//     (previous and next) are accepted too, absorbing clock skew and
//     boundary races. With Rotate == 0 the secret derives one static
//     key (epoch 0): simplest cross-peer setup, no forward secrecy
//     horizon — prefer a rotation period in production.
//
// Keys are installed with SetSessionTicketKeys on the live tls.Config
// the listener uses, so rotation takes effect without a restart.
type ticketKeeper struct {
	secret []byte
	rotate time.Duration
	cfg    *tls.Config

	mu     sync.Mutex
	random [][32]byte // newest first; random-rotation mode only

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newTicketKeeper installs the initial key set on cfg and, when a
// rotation period is configured, starts the rotation loop. Returns nil
// when neither a secret nor a rotation period is set (Go's built-in
// automatic ticket-key rotation then applies, which is fine for a
// single server but cannot be shared across a federation).
func newTicketKeeper(cfg *tls.Config, secret string, rotate time.Duration) *ticketKeeper {
	if secret == "" && rotate <= 0 {
		return nil
	}
	k := &ticketKeeper{rotate: rotate, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if secret != "" {
		k.secret = []byte(secret)
	}
	cfg.SetSessionTicketKeys(k.keys(time.Now()))
	if rotate > 0 {
		go k.loop()
	} else {
		close(k.done)
	}
	return k
}

// keys computes the full key set for a point in time: the first key
// encrypts new tickets, the rest are accepted for decryption.
func (k *ticketKeeper) keys(now time.Time) [][32]byte {
	if k.secret != nil {
		if k.rotate <= 0 {
			return [][32]byte{k.derive(0)}
		}
		e := now.UnixNano() / int64(k.rotate)
		return [][32]byte{k.derive(e), k.derive(e + 1), k.derive(e - 1)}
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.random) == 0 {
		k.random = [][32]byte{randomTicketKey()}
	}
	return append([][32]byte(nil), k.random...)
}

// derive maps (secret, epoch) to one ticket key.
func (k *ticketKeeper) derive(epoch int64) [32]byte {
	h := sha256.New()
	h.Write([]byte("clarens-tls-ticket-v1\x00"))
	h.Write(k.secret)
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], uint64(epoch))
	h.Write(e[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func randomTicketKey() [32]byte {
	var key [32]byte
	if _, err := rand.Read(key[:]); err != nil {
		panic("core: ticket key entropy: " + err.Error())
	}
	return key
}

// loop re-installs the key schedule every quarter period: cheap and
// idempotent in shared-secret mode (the epoch selects the keys), and
// the trigger for generating the next random key otherwise.
func (k *ticketKeeper) loop() {
	defer close(k.done)
	tick := k.rotate / 4
	if tick < time.Second {
		tick = time.Second
	}
	if tick > k.rotate {
		tick = k.rotate
	}
	last := time.Now()
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-k.stop:
			return
		case now := <-t.C:
			if k.secret == nil {
				if now.Sub(last) < k.rotate {
					continue
				}
				last = now
				k.mu.Lock()
				k.random = append([][32]byte{randomTicketKey()}, k.random...)
				if len(k.random) > 3 {
					k.random = k.random[:3]
				}
				k.mu.Unlock()
			}
			k.cfg.SetSessionTicketKeys(k.keys(now))
		}
	}
}

// Stop halts the rotation loop; safe to call repeatedly and on nil.
func (k *ticketKeeper) Stop() {
	if k == nil {
		return
	}
	k.stopOnce.Do(func() { close(k.stop) })
	<-k.done
}
