// Package core implements the Clarens web-service framework itself
// (paper §2, Figure 1): the service registry, the per-request
// authentication and access-control pipeline, multi-protocol RPC dispatch
// (XML-RPC, SOAP, JSON-RPC), and the HTTP/TLS server glue that the
// Apache/mod_python (PClarens) and Tomcat/AXIS (JClarens) containers
// provided in the original system.
//
// Every POSTed request follows the paper's measured path: decode, a
// database lookup answering "are these credentials associated with a
// current session", a hierarchical ACL walk answering "may this caller
// invoke this method", handler execution, and response serialization.
package core

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"clarens/internal/acl"
	"clarens/internal/db"
	"clarens/internal/pki"
	"clarens/internal/rpc"
	"clarens/internal/session"
	"clarens/internal/vo"
)

// Version identifies the framework build; reported by system.version.
const Version = "clarens-go/1.0 (ICPPW05 reproduction)"

// Handler is the signature of a service method implementation.
type Handler func(ctx *Context, params Params) (any, error)

// Interceptor wraps a Handler with cross-cutting behavior (auth, ACLs,
// stats, panic recovery, rate limiting, tracing). The server composes all
// registered interceptors into a single dispatch pipeline: the first
// interceptor registered is the outermost stage, and the innermost stage
// invokes the resolved method handler. A stage observes every dispatched
// call — including each sub-call of a system.multicall batch — that
// reaches its position; stages registered after the built-in ACL stage
// therefore see only calls that cleared authorization.
type Interceptor func(next Handler) Handler

// Method describes one invocable web-service method.
type Method struct {
	// Name is the full dotted method name, e.g. "file.read". The paper:
	// "Methods have a natural hierarchical structure ... a depth of two or
	// three levels is most common, e.g. module.method".
	Name string
	// Help is the human-readable description served by system.method_help.
	Help string
	// Signature lists "<return-type> <param-type>..." entries served by
	// system.method_signature.
	Signature []string
	// Public methods may be invoked without an Allow decision from the
	// ACLs (an explicit Deny still blocks them). The authentication and
	// authorization pipeline runs regardless, preserving the cost model of
	// the paper's Figure 4 measurement.
	Public bool
	// Timeout, when positive, bounds each invocation of this method: the
	// handler's context carries the deadline and is cancelled when it
	// expires. Zero falls back to the server-wide Config.MethodTimeout.
	Timeout time.Duration
	// TraceSample force-samples every trace that dispatches this method
	// into the span store, regardless of latency or outcome — for rare,
	// high-value operations (e.g. admin mutations) that should always
	// leave a flight record.
	TraceSample bool
	// Handler executes the method.
	Handler Handler
}

// Service is a named bundle of methods registered as a unit; the module
// part of each method name must equal the service name.
type Service interface {
	Name() string
	Methods() []Method
}

// Context carries per-request identity and framework access into handlers.
// It embeds the context.Context carried from the HTTP request, so handlers
// observe client disconnects and per-method deadlines directly via Done(),
// Err(), and Deadline().
type Context struct {
	// Context is the request-scoped cancellation context. It is never nil
	// for dispatched calls: it derives from the HTTP request (cancelled
	// when the client disconnects) and, when a method timeout applies,
	// carries the per-method deadline.
	context.Context

	// DN is the authenticated caller identity (empty when anonymous).
	DN pki.DN
	// Session is the current session, or nil.
	Session *session.Session
	// Protocol is the codec name that carried the request.
	Protocol string
	// RemoteAddr is the network peer, when known.
	RemoteAddr string

	// method is the resolved registry entry (nil when the requested name
	// is unknown; the terminal pipeline stage then faults).
	method *Method
	// methodName is the requested dotted method name, kept separately from
	// method so interceptors can label unknown-method calls too.
	methodName string
	// httpReq is the carrying HTTP request; nil for in-process dispatch
	// and for multicall sub-calls (which inherit the parent's identity).
	httpReq *http.Request
	// depth counts multicall nesting (0 for a directly POSTed call).
	depth int

	// trace is the request's trace identifier: accepted from the
	// X-Clarens-Trace header (or a multicall sub-call's trace field) when
	// valid, minted otherwise. span identifies this dispatch within the
	// trace; parentSpan is the enclosing dispatch's span for multicall
	// sub-calls (empty at the trace root on this server).
	trace      string
	span       string
	parentSpan string

	// localRoot marks the span that decides its trace's tail-sampling
	// fate on this server: a top-level dispatch, or a multicall sub-call
	// that carried its own (foreign) trace ID — a forwarded job riding a
	// peer's batch.
	localRoot bool
	// forceSample promotes the trace into the span store unconditionally:
	// set by the X-Clarens-Trace-Sample header, a sub-call's sample flag,
	// or the method's TraceSample bit.
	forceSample bool

	srv *Server
}

// Server returns the owning server, giving service implementations access
// to the framework managers.
func (c *Context) Server() *Server { return c.srv }

// MethodName returns the dotted name of the method being dispatched (the
// requested name even when it resolved to no registered method).
func (c *Context) MethodName() string { return c.methodName }

// MethodInfo returns the resolved registry entry, or nil when the
// requested method does not exist.
func (c *Context) MethodInfo() *Method { return c.method }

// HTTPRequest returns the carrying HTTP request, or nil for in-process
// dispatch and multicall sub-calls.
func (c *Context) HTTPRequest() *http.Request { return c.httpReq }

// CallDepth reports multicall nesting: 0 for a directly POSTed call, 1
// for a sub-call executed inside a system.multicall batch.
func (c *Context) CallDepth() int { return c.depth }

// TraceID returns the request's trace identifier: the inbound
// X-Clarens-Trace value when the caller supplied a valid one, a minted
// 128-bit hex ID otherwise. Multicall sub-calls share the batch's trace
// unless the sub-call entry carried its own (a forwarding peer stitching
// per-job traces through one batched POST). Set by the trace pipeline
// stage; empty only before that stage runs.
func (c *Context) TraceID() string { return c.trace }

// SpanID identifies this dispatch within its trace; each multicall
// sub-call gets its own span.
func (c *Context) SpanID() string { return c.span }

// ParentSpanID returns the enclosing dispatch's span for multicall
// sub-calls, or "" at the trace root on this server.
func (c *Context) ParentSpanID() string { return c.parentSpan }

// ForceSampled reports whether this dispatch's trace is being
// force-sampled into the span store (sample header, sub-call sample
// flag, or per-method TraceSample).
func (c *Context) ForceSampled() bool { return c.forceSample }

// Authenticated reports whether the caller presented a valid identity.
func (c *Context) Authenticated() bool { return !c.DN.IsZero() }

// RequireAuthenticated returns a not-authorized fault for anonymous callers.
func (c *Context) RequireAuthenticated() error {
	if c.DN.IsZero() {
		return &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "authentication required"}
	}
	return nil
}

// RequireServerAdmin returns a fault unless the caller is in the root
// admins group.
func (c *Context) RequireServerAdmin() error {
	if err := c.RequireAuthenticated(); err != nil {
		return err
	}
	if !c.srv.VO().IsServerAdmin(c.DN) {
		return &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "server administrator privileges required"}
	}
	return nil
}

// Params wraps positional RPC parameters with typed accessors. All
// accessors return rpc faults suitable for returning to the client.
type Params []any

func (p Params) arg(i int) (any, error) {
	if i < 0 || i >= len(p) {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("missing parameter %d", i)}
	}
	return p[i], nil
}

// String returns parameter i as a string.
func (p Params) String(i int) (string, error) {
	v, err := p.arg(i)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("parameter %d: want string, got %T", i, v)}
	}
	return s, nil
}

// Int returns parameter i as an int (accepting exact float64s, which
// JSON-RPC clients may send).
func (p Params) Int(i int) (int, error) {
	v, err := p.arg(i)
	if err != nil {
		return 0, err
	}
	switch n := v.(type) {
	case int:
		return n, nil
	case float64:
		if n == float64(int(n)) {
			return int(n), nil
		}
	}
	return 0, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("parameter %d: want int, got %T", i, v)}
}

// Bool returns parameter i as a bool.
func (p Params) Bool(i int) (bool, error) {
	v, err := p.arg(i)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("parameter %d: want bool, got %T", i, v)}
	}
	return b, nil
}

// Bytes returns parameter i as binary data (accepting strings).
func (p Params) Bytes(i int) ([]byte, error) {
	v, err := p.arg(i)
	if err != nil {
		return nil, err
	}
	switch b := v.(type) {
	case []byte:
		return b, nil
	case string:
		return []byte(b), nil
	}
	return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("parameter %d: want bytes, got %T", i, v)}
}

// StringSlice returns parameter i as a list of strings.
func (p Params) StringSlice(i int) ([]string, error) {
	v, err := p.arg(i)
	if err != nil {
		return nil, err
	}
	arr, ok := v.([]any)
	if !ok {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("parameter %d: want array, got %T", i, v)}
	}
	out := make([]string, len(arr))
	for j, e := range arr {
		s, ok := e.(string)
		if !ok {
			return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("parameter %d[%d]: want string, got %T", i, j, e)}
		}
		out[j] = s
	}
	return out, nil
}

// OptString returns parameter i as a string, or def if absent.
func (p Params) OptString(i int, def string) (string, error) {
	if i >= len(p) {
		return def, nil
	}
	return p.String(i)
}

// OptInt returns parameter i as an int, or def if absent.
func (p Params) OptInt(i int, def int) (int, error) {
	if i >= len(p) {
		return def, nil
	}
	return p.Int(i)
}

// registry holds the method table. Method *names* are additionally
// mirrored into the database so that system.list_methods performs a real
// database scan, matching the measured cost in the paper's Figure 4
// ("each request incurring a database lookup for all registered methods
// in the server") — but the scan result is cached behind the bucket's
// generation counter, so the scan and sort run once per registration
// epoch instead of once per request.
type registry struct {
	mu      sync.RWMutex
	methods map[string]*Method
	store   *db.Store

	listGen   uint64
	listNames []string // sorted method names; shared, do not modify
	listNorm  []any    // the same names pre-normalized for the codecs
}

const methodsBucket = "methods"

func newRegistry(store *db.Store) *registry {
	return &registry{methods: make(map[string]*Method), store: store}
}

func (r *registry) register(svc Service) error {
	name := svc.Name()
	if name == "" {
		return fmt.Errorf("core: service has empty name")
	}
	methods := svc.Methods()
	if len(methods) == 0 {
		return fmt.Errorf("core: service %q has no methods", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range methods {
		m := methods[i]
		if !strings.HasPrefix(m.Name, name+".") {
			return fmt.Errorf("core: method %q does not belong to service %q", m.Name, name)
		}
		if m.Handler == nil {
			return fmt.Errorf("core: method %q has no handler", m.Name)
		}
		if _, dup := r.methods[m.Name]; dup {
			return fmt.Errorf("core: method %q registered twice", m.Name)
		}
		r.methods[m.Name] = &m
		if err := r.store.PutJSON(methodsBucket, m.Name, map[string]any{
			"help":      m.Help,
			"signature": m.Signature,
			"public":    m.Public,
		}); err != nil {
			return err
		}
	}
	return nil
}

func (r *registry) lookup(name string) (*Method, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.methods[name]
	return m, ok
}

// listFromDB returns the registered method names, sorted, from the
// database-backed path used by system.list_methods. The scan is cached:
// a hit is two map reads; a new Register bumps the methods bucket
// generation and the next call rescans. The returned slice is shared —
// callers must not modify it.
func (r *registry) listFromDB() []string {
	names, _ := r.listCached()
	return names
}

// listCached returns the cached (names, normalized) pair, rebuilding when
// the methods bucket generation moved. The generation is read before the
// scan, so a racing registration at worst causes one extra rescan, never
// a stale listing.
func (r *registry) listCached() ([]string, []any) {
	gen := r.store.Generation(methodsBucket)
	r.mu.RLock()
	if r.listGen == gen && r.listNames != nil {
		names, norm := r.listNames, r.listNorm
		r.mu.RUnlock()
		return names, norm
	}
	r.mu.RUnlock()
	names := r.store.Keys(methodsBucket, "")
	norm := make([]any, len(names))
	for i, n := range names {
		norm[i] = n
	}
	r.mu.Lock()
	r.listGen, r.listNames, r.listNorm = gen, names, norm
	r.mu.Unlock()
	return names, norm
}

func (r *registry) count() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.methods)
}

// Stats aggregates dispatch counters reported by system.stats.
type Stats struct {
	mu        sync.Mutex
	Requests  uint64
	Faults    uint64
	ByMethod  map[string]uint64
	StartTime time.Time
}

func (s *Stats) record(method string, fault bool) {
	s.mu.Lock()
	s.Requests++
	if fault {
		s.Faults++
	}
	if s.ByMethod == nil {
		s.ByMethod = make(map[string]uint64)
	}
	s.ByMethod[method]++
	s.mu.Unlock()
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() (requests, faults uint64, byMethod map[string]uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	byMethod = make(map[string]uint64, len(s.ByMethod))
	for k, v := range s.ByMethod {
		byMethod[k] = v
	}
	return s.Requests, s.Faults, byMethod
}

// sortedMethodNames sorts in place and returns names.
func sortedMethodNames(names []string) []string {
	sort.Strings(names)
	return names
}

// ensure interfaces stay in sync
var (
	_ acl.GroupResolver = (*vo.Manager)(nil)
)
