package core

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clarens/internal/rpc/xmlrpc"
	"clarens/internal/telemetry"
)

// newTraceServer builds a server with the flight recorder on and a slow
// threshold high enough that only forced/faulted traces sample.
func newTraceServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(Config{
		AdminDNs:   []string{adminDN.String()},
		TraceStore: true,
		TraceSlow:  time.Hour,
		ServerName: "origin",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTraceStoreForceSampleAndGet(t *testing.T) {
	s := newTraceServer(t)

	// A fast, clean call without the sample header leaves no record.
	resp := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "plain-1"}, "system.ping")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	if s.Spans().Sampled("plain-1") {
		t.Fatal("unremarkable trace was sampled")
	}

	// The sample header force-promotes the trace.
	resp = call(t, s, xmlrpc.New(), map[string]string{
		telemetry.TraceHeader:  "forced-1",
		telemetry.SampleHeader: "1",
	}, "system.ping")
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	if !s.Spans().Sampled("forced-1") {
		t.Fatal("sample header did not promote the trace")
	}

	// trace.get returns the merged document for admins.
	admin := sessionFor(t, s, adminDN)
	got := call(t, s, xmlrpc.New(), admin, "trace.get", "forced-1")
	if got.Fault != nil {
		t.Fatal(got.Fault)
	}
	doc := got.Result.(map[string]any)
	spans := doc["spans"].([]any)
	if len(spans) != 1 {
		t.Fatalf("spans = %v, want 1", spans)
	}
	sp := spans[0].(map[string]any)
	if sp["method"] != "system.ping" || sp["server"] != "origin" {
		t.Errorf("span = %v", sp)
	}
	if _, ok := sp["start_ms"].(float64); !ok {
		t.Errorf("span lacks numeric start_ms: %v", sp)
	}

	// Unknown traces fault.
	if r := call(t, s, xmlrpc.New(), admin, "trace.get", "no-such-trace"); r.Fault == nil {
		t.Error("trace.get for unknown trace did not fault")
	}

	// The trace module rides the default admins ACL: anonymous callers
	// are refused.
	if r := call(t, s, xmlrpc.New(), nil, "trace.get", "forced-1"); r.Fault == nil {
		t.Error("anonymous trace.get was allowed")
	}
}

func TestTraceStoreFaultedTraceSampled(t *testing.T) {
	s := newTraceServer(t)
	if r := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "fault-1"}, "no.such_method"); r.Fault == nil {
		t.Fatal("expected fault")
	}
	if !s.Spans().Sampled("fault-1") {
		t.Fatal("faulted trace was not tail-sampled")
	}
	spans := s.Spans().Trace("fault-1")
	if len(spans) != 1 || spans[0].Fault == 0 {
		t.Fatalf("spans = %+v, want one faulted span", spans)
	}
}

// A method carrying the TraceSample flag force-samples every trace it
// appears in — the per-method half of the escape hatch.
func TestTraceStoreMethodSampleFlag(t *testing.T) {
	s := newTraceServer(t)
	registerTest(t, s, Method{
		Name: "t.sampled", Help: "always sampled", Signature: []string{"string"},
		Public: true, TraceSample: true,
		Handler: func(ctx *Context, p Params) (any, error) { return "ok", nil },
	})
	if r := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "meth-1"}, "t.sampled"); r.Fault != nil {
		t.Fatal(r.Fault)
	}
	if !s.Spans().Sampled("meth-1") {
		t.Fatal("TraceSample method did not promote its trace")
	}
}

func TestTraceSearchFilters(t *testing.T) {
	s := newTraceServer(t)
	admin := sessionFor(t, s, adminDN)
	for _, tr := range []string{"s-1", "s-2"} {
		call(t, s, xmlrpc.New(), map[string]string{
			telemetry.TraceHeader:  tr,
			telemetry.SampleHeader: "1",
		}, "system.ping")
	}
	r := call(t, s, xmlrpc.New(), admin, "trace.search", map[string]any{"method": "system.ping"})
	if r.Fault != nil {
		t.Fatal(r.Fault)
	}
	rows := r.Result.([]any)
	if len(rows) != 2 {
		t.Fatalf("search rows = %d, want 2", len(rows))
	}
	if m := rows[0].(map[string]any); m["method"] != "system.ping" {
		t.Errorf("row = %v", m)
	}
	// A filter that matches nothing returns an empty list, not a fault.
	r = call(t, s, xmlrpc.New(), admin, "trace.search", map[string]any{"method": "no.method"})
	if r.Fault != nil || len(r.Result.([]any)) != 0 {
		t.Errorf("empty search = %v / %v", r.Result, r.Fault)
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	s := newTraceServer(t)
	call(t, s, xmlrpc.New(), map[string]string{
		telemetry.TraceHeader:  "dbg-1",
		telemetry.SampleHeader: "1",
	}, "system.ping")

	// Merged document.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/dbg-1", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/traces/dbg-1 = %d", rec.Code)
	}
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc["trace"] != "dbg-1" || len(doc["spans"].([]any)) != 1 {
		t.Errorf("document = %v", doc)
	}

	// Local form: raw telemetry.Span JSON plus the server stamp.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/dbg-1?local=1", nil))
	var local struct {
		Server string           `json:"server"`
		Spans  []telemetry.Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &local); err != nil {
		t.Fatal(err)
	}
	if local.Server != "origin" || len(local.Spans) != 1 || local.Spans[0].Method != "system.ping" {
		t.Errorf("local document = %+v", local)
	}

	// Bad IDs and non-GET verbs are refused.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces/", nil))
	if rec.Code != 400 {
		t.Errorf("empty id = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/debug/traces/dbg-1", nil))
	if rec.Code != 405 {
		t.Errorf("POST = %d, want 405", rec.Code)
	}
}

func TestTraceStoreStatsHealthAndMetrics(t *testing.T) {
	s := newTraceServer(t)
	s.MountMetrics("/metrics")
	call(t, s, xmlrpc.New(), map[string]string{
		telemetry.TraceHeader:  "m-1",
		telemetry.SampleHeader: "1",
	}, "system.ping")

	// system.stats carries the trace_store section.
	st := call(t, s, xmlrpc.New(), sessionFor(t, s, adminDN), "system.stats").Result.(map[string]any)
	ts, ok := st["trace_store"].(map[string]any)
	if !ok {
		t.Fatalf("stats lacks trace_store section: %v", st)
	}
	if n, _ := ts["sampled_traces"].(int); n < 1 {
		t.Errorf("trace_store section = %v, want sampled_traces >= 1", ts)
	}

	// system.health includes the trace_store check.
	h := call(t, s, xmlrpc.New(), nil, "system.health").Result.(map[string]any)
	if _, ok := h["checks"].(map[string]any)["trace_store"]; !ok {
		t.Errorf("health lacks trace_store check: %v", h)
	}

	// /metrics carries the exemplar for the sampled trace.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `# {trace_id="m-1"}`) {
		t.Errorf("metrics lack the exemplar:\n%s", rec.Body.String())
	}
}

// Requests beyond the slow threshold log at warn with the span breakdown
// inline.
func TestSlowRequestLogsWarnWithSpans(t *testing.T) {
	var out syncWriter
	s, err := NewServer(Config{
		AdminDNs:   []string{adminDN.String()},
		TraceStore: true,
		TraceSlow:  time.Nanosecond, // everything is "slow"
		ServerName: "origin",
		RequestLog: slog.New(slog.NewJSONHandler(&out, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if r := call(t, s, xmlrpc.New(), map[string]string{telemetry.TraceHeader: "slow-1"}, "system.ping"); r.Fault != nil {
		t.Fatal(r.Fault)
	}
	logs := out.String()
	if !strings.Contains(logs, `"level":"WARN"`) || !strings.Contains(logs, "slow rpc") {
		t.Errorf("slow request not logged at warn:\n%s", logs)
	}
	if !strings.Contains(logs, `"spans":"system.ping`) {
		t.Errorf("slow log lacks the span breakdown:\n%s", logs)
	}
}

// Sub-calls buffer under their parent's trace and ride its decision;
// InvokeTrace with a foreign trace acts as that trace's local root.
func TestTraceStoreSubCallsAndForeignRoot(t *testing.T) {
	s := newTraceServer(t)
	registerTest(t, s,
		Method{
			Name: "t.inner", Help: "inner", Signature: []string{"string"}, Public: true,
			Handler: func(ctx *Context, p Params) (any, error) { return "in", nil },
		},
		Method{
			Name: "t.outer", Help: "outer", Signature: []string{"string"}, Public: true,
			Handler: func(ctx *Context, p Params) (any, error) {
				if sub := s.Invoke(ctx, "t.inner", nil); sub.Fault != nil {
					return nil, sub.Fault
				}
				return "out", nil
			},
		})
	if r := call(t, s, xmlrpc.New(), map[string]string{
		telemetry.TraceHeader:  "nest-1",
		telemetry.SampleHeader: "1",
	}, "t.outer"); r.Fault != nil {
		t.Fatal(r.Fault)
	}
	spans := s.Spans().Trace("nest-1")
	if len(spans) != 2 {
		t.Fatalf("spans = %+v, want outer+inner", spans)
	}

	// A forwarded sub-call (foreign trace via InvokeTrace) is its own
	// local root: a faulting one samples its trace immediately.
	root := &Context{Context: t.Context(), srv: s, trace: "batch-t", span: telemetry.NewSpanID()}
	if resp := s.InvokeTrace(root, "job-t-1", "no.such", nil); resp.Fault == nil {
		t.Fatal("expected fault")
	}
	if !s.Spans().Sampled("job-t-1") {
		t.Error("foreign-trace sub-call fault did not sample its own trace")
	}
	if s.Spans().Sampled("batch-t") {
		t.Error("carrier batch trace sampled by the sub-call's fault")
	}
}
