package core

import (
	"bytes"
	"crypto/tls"
	"io"
	"net/http"
	"testing"
	"time"

	"clarens/internal/pki"
	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
)

// tlsFixture starts a live HTTPS server with grid-style client auth.
type tlsFixture struct {
	ca     *pki.CA
	server *Server
	host   *pki.Identity
	user   *pki.Identity
}

func newTLSFixture(t *testing.T, requireCert bool) *tlsFixture {
	t.Helper()
	ca, err := pki.NewCA(pki.MustParseDN("/O=testgrid/CN=Test CA"))
	if err != nil {
		t.Fatal(err)
	}
	host, err := ca.IssueHost(pki.MustParseDN("/O=testgrid/OU=Services/CN=host\\/localhost"),
		[]string{"localhost", "127.0.0.1"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	user, err := ca.IssueUser(pki.MustParseDN("/O=testgrid/OU=People/CN=Tls User"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Config{
		AdminDNs: []string{adminDN.String()},
		TLS: &TLSConfig{
			Identity:          host,
			ClientCAs:         ca.Pool(),
			RequireClientCert: requireCert,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return &tlsFixture{ca: ca, server: s, host: host, user: user}
}

func (f *tlsFixture) client(t *testing.T, id *pki.Identity) *http.Client {
	t.Helper()
	tc := &tls.Config{RootCAs: f.ca.Pool()}
	if id != nil {
		tc.Certificates = []tls.Certificate{id.TLSCertificate()}
	}
	return &http.Client{Transport: &http.Transport{TLSClientConfig: tc}}
}

func (f *tlsFixture) whoami(t *testing.T, client *http.Client) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := xmlrpc.New().EncodeRequest(&buf, &rpc.Request{Method: "system.whoami"}); err != nil {
		t.Fatal(err)
	}
	httpResp, err := client.Post(f.server.URL()+"/rpc", "text/xml", &buf)
	if err != nil {
		return "", err
	}
	defer httpResp.Body.Close()
	body, _ := io.ReadAll(httpResp.Body)
	resp, err := xmlrpc.New().DecodeResponse(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if resp.Fault != nil {
		return "", resp.Fault
	}
	return resp.Result.(string), nil
}

func TestTLSClientCertIdentity(t *testing.T) {
	f := newTLSFixture(t, false)
	dn, err := f.whoami(t, f.client(t, f.user))
	if err != nil {
		t.Fatal(err)
	}
	if dn != f.user.DN().String() {
		t.Errorf("whoami over TLS = %q, want %q", dn, f.user.DN().String())
	}
}

func TestTLSAnonymousAllowedWhenOptional(t *testing.T) {
	f := newTLSFixture(t, false)
	dn, err := f.whoami(t, f.client(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if dn != "" {
		t.Errorf("anonymous TLS whoami = %q", dn)
	}
}

func TestTLSRequireClientCertRejectsAnonymous(t *testing.T) {
	f := newTLSFixture(t, true)
	if _, err := f.whoami(t, f.client(t, nil)); err == nil {
		t.Error("handshake without client cert should fail when required")
	}
	// With a cert it works.
	if _, err := f.whoami(t, f.client(t, f.user)); err != nil {
		t.Errorf("with cert: %v", err)
	}
}

func TestTLSProxyCertificateDelegation(t *testing.T) {
	f := newTLSFixture(t, false)
	proxy, err := pki.NewProxy(f.user, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := f.whoami(t, f.client(t, proxy))
	if err != nil {
		t.Fatal(err)
	}
	// The framework must resolve the proxy chain to the *user* identity
	// (paper §2.6: proxies log in on behalf of the user).
	if dn != f.user.DN().String() {
		t.Errorf("proxy whoami = %q, want user DN %q", dn, f.user.DN().String())
	}
}

func TestTLSForeignCANotAuthenticated(t *testing.T) {
	// TLS clients withhold certificates whose issuer is not among the
	// server's acceptable CAs, so a foreign-CA client is anonymous when
	// certs are optional, and fails the handshake when they are required.
	evilCA, _ := pki.NewCA(pki.MustParseDN("/O=evil/CN=Evil CA"))
	mallory, _ := evilCA.IssueUser(pki.MustParseDN("/O=evil/OU=People/CN=Mallory"), time.Hour)

	f := newTLSFixture(t, false)
	dn, err := f.whoami(t, f.client(t, mallory))
	if err != nil {
		t.Fatalf("optional mode: %v", err)
	}
	if dn != "" {
		t.Errorf("foreign-CA client must not acquire an identity, got %q", dn)
	}

	f2 := newTLSFixture(t, true)
	if _, err := f2.whoami(t, f2.client(t, mallory)); err == nil {
		t.Error("require mode: foreign-CA client must fail the handshake")
	}
}

func TestTLSSessionSurvivesAcrossConnections(t *testing.T) {
	f := newTLSFixture(t, false)
	client := f.client(t, f.user)
	// Authenticate once, get a session token.
	var buf bytes.Buffer
	xmlrpc.New().EncodeRequest(&buf, &rpc.Request{Method: "system.auth"})
	httpResp, err := client.Post(f.server.URL()+"/rpc", "text/xml", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := xmlrpc.New().DecodeResponse(httpResp.Body)
	httpResp.Body.Close()
	if err != nil || resp.Fault != nil {
		t.Fatalf("auth: %v %v", err, resp.Fault)
	}
	token := resp.Result.(string)

	// A *certificate-less* client presenting only the token is recognized.
	anon := f.client(t, nil)
	buf.Reset()
	xmlrpc.New().EncodeRequest(&buf, &rpc.Request{Method: "system.whoami"})
	req, _ := http.NewRequest(http.MethodPost, f.server.URL()+"/rpc", &buf)
	req.Header.Set("Content-Type", "text/xml")
	req.Header.Set(SessionHeader, token)
	httpResp, err = anon.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	resp, err = xmlrpc.New().DecodeResponse(httpResp.Body)
	if err != nil || resp.Fault != nil {
		t.Fatalf("whoami: %v %v", err, resp.Fault)
	}
	if resp.Result != f.user.DN().String() {
		t.Errorf("session-only whoami = %q", resp.Result)
	}
}

func TestStartURLAndAddr(t *testing.T) {
	s := newTestServer(t)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if s.Addr() == "" || s.URL() == "" {
		t.Error("Addr/URL empty after Start")
	}
	if s.RPCPath() != "/rpc" {
		t.Errorf("RPCPath = %q", s.RPCPath())
	}
}
