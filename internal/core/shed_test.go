package core

import (
	"context"
	"testing"
	"time"

	"clarens/internal/rpc"
)

func blockingMethod(release chan struct{}, started chan struct{}) Method {
	return Method{
		Name: "t.block",
		Handler: func(ctx *Context, p Params) (any, error) {
			if started != nil {
				started <- struct{}{}
			}
			select {
			case <-release:
				return "done", nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

func TestShedMaxInFlight(t *testing.T) {
	s, err := NewServer(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	registerTest(t, s, blockingMethod(release, started))

	first := make(chan *rpc.Response, 1)
	go func() { first <- s.Dispatch(nil, "test", &rpc.Request{Method: "t.block"}) }()
	<-started

	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "t.block"})
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeOverloaded {
		t.Fatalf("over-limit call not shed: %+v", resp)
	}
	if !rpc.Retryable(resp.Fault.Code) {
		t.Fatal("shed fault code must be retryable")
	}

	close(release)
	if r := <-first; r.Fault != nil {
		t.Fatalf("admitted call failed: %v", r.Fault)
	}
	// Capacity freed: new calls are admitted again.
	if r := s.Dispatch(nil, "test", &rpc.Request{Method: "system.ping"}); r.Fault != nil {
		t.Fatalf("call after shed window failed: %v", r.Fault)
	}
}

func TestShedExpiredDeadline(t *testing.T) {
	s := newTestServer(t)
	defer s.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	resp := s.DispatchContext(ctx, nil, "test", &rpc.Request{Method: "system.ping"})
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeOverloaded {
		t.Fatalf("expired-deadline call not rejected early: %+v", resp)
	}
}

func TestDrainRejectsNewAndWaitsForInFlight(t *testing.T) {
	s := newTestServer(t)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	registerTest(t, s, blockingMethod(release, started))

	inflight := make(chan *rpc.Response, 1)
	go func() { inflight <- s.Dispatch(nil, "test", &rpc.Request{Method: "t.block"}) }()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// New work is rejected the moment draining starts.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Drain never flipped the draining flag")
		}
		time.Sleep(time.Millisecond)
	}
	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "system.ping"})
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeOverloaded {
		t.Fatalf("call during drain not rejected: %+v", resp)
	}

	// Drain must not return while the in-flight call runs.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned with a call still in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// The in-flight response was produced normally, not dropped.
	if r := <-inflight; r.Fault != nil || r.Result != "done" {
		t.Fatalf("in-flight call during drain: %+v", r)
	}
}

func TestDrainDeadlineCutsShort(t *testing.T) {
	s := newTestServer(t)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	registerTest(t, s, blockingMethod(release, started))
	go s.Dispatch(nil, "test", &rpc.Request{Method: "t.block"})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain with stuck call = %v, want DeadlineExceeded", err)
	}
	close(release)
}

func TestMulticallSubCallsRideParentAdmission(t *testing.T) {
	// depth>0 dispatches must not double-count against MaxInFlight: a
	// multicall with 3 sub-calls on a MaxInFlight=1 server succeeds.
	s, err := NewServer(Config{MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	calls := []any{
		map[string]any{"methodName": "system.ping", "params": []any{}},
		map[string]any{"methodName": "system.ping", "params": []any{}},
		map[string]any{"methodName": "system.ping", "params": []any{}},
	}
	resp := s.Dispatch(nil, "test", &rpc.Request{Method: "system.multicall", Params: []any{calls}})
	if resp.Fault != nil {
		t.Fatalf("multicall under MaxInFlight=1: %v", resp.Fault)
	}
	results, ok := resp.Result.([]any)
	if !ok || len(results) != 3 {
		t.Fatalf("multicall result: %+v", resp.Result)
	}
	for i, r := range results {
		if m, ok := r.(map[string]any); ok {
			if _, isFault := m["faultCode"]; isFault {
				t.Fatalf("sub-call %d shed: %+v", i, m)
			}
		}
	}
}
