// The push-event plane: every Server owns a pubsub.Bus that services
// publish state changes to, and MountWS exposes it at /ws over the
// in-house WebSocket transport. Clients authenticate with a session,
// then exchange JSON frames (pubsub.Frame): subscribe/unsubscribe with
// a query, event/lagged deliveries, ping/pong keepalive.
//
// Authorization happens twice. At subscribe time the query must pin
// down the module(s) it watches (type=job.* or service=job) and the
// caller must clear the same method ACL walk an RPC into that module
// performs; unscoped queries are reserved for server admins. At
// delivery time, events carrying identity tags (owner/to/from) are
// withheld from subscribers whose DN matches none of them — so a user
// authorized for the job module still only sees their own jobs.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"clarens/internal/acl"
	"clarens/internal/pki"
	"clarens/internal/pubsub"
	"clarens/internal/ws"
)

const (
	wsPingInterval = 30 * time.Second
	// wsReadTimeout bounds silence from the client; it comfortably
	// exceeds the ping interval so an alive connection never trips it.
	wsReadTimeout = 90 * time.Second
	// wsSubBuffer is the per-subscription buffer behind one WS client.
	wsSubBuffer = 256
)

// Events returns the server's event bus.
func (s *Server) Events() *pubsub.Bus { return s.events }

// MountWS serves the push-event WebSocket endpoint at path (default
// /ws).
func (s *Server) MountWS(path string) {
	if path == "" {
		path = "/ws"
	}
	s.mux.HandleFunc(path, s.handleWS)
}

func (s *Server) handleWS(w http.ResponseWriter, r *http.Request) {
	// Browsers cannot set headers on a WebSocket dial; accept the
	// session token as a query parameter too.
	if r.Header.Get(SessionHeader) == "" {
		if sid := r.URL.Query().Get("session"); sid != "" {
			r.Header.Set(SessionHeader, sid)
		}
	}
	dn, sess := s.IdentifyRequest(r)
	if sess == nil || dn.IsZero() {
		http.Error(w, "push events require an authenticated session (X-Clarens-Session header or ?session=)",
			http.StatusUnauthorized)
		return
	}
	conn, err := ws.Upgrade(w, r)
	if err != nil {
		return // Upgrade already wrote the HTTP error
	}
	s.serveWS(conn, dn)
}

// trackWS registers a live WS connection for shutdown; it reports false
// when the server is already closing.
func (s *Server) trackWS(c *ws.Conn) bool {
	s.wsMu.Lock()
	defer s.wsMu.Unlock()
	if s.wsClosed {
		return false
	}
	if s.wsConns == nil {
		s.wsConns = map[*ws.Conn]struct{}{}
	}
	s.wsConns[c] = struct{}{}
	return true
}

func (s *Server) untrackWS(c *ws.Conn) {
	s.wsMu.Lock()
	delete(s.wsConns, c)
	s.wsMu.Unlock()
}

// closeWS announces shutdown to every live WS session and closes it.
// Called from Server.Close before the bus itself is torn down.
func (s *Server) closeWS() {
	s.wsMu.Lock()
	s.wsClosed = true
	conns := make([]*ws.Conn, 0, len(s.wsConns))
	for c := range s.wsConns {
		conns = append(conns, c)
	}
	s.wsConns = nil
	s.wsMu.Unlock()
	closing, _ := json.Marshal(pubsub.Frame{Op: pubsub.OpClosing})
	for _, c := range conns {
		c.WriteMessage(ws.OpText, closing)
		c.Close()
	}
}

// serveWS runs one authenticated push-event session until the client
// disconnects or the server shuts down.
func (s *Server) serveWS(conn *ws.Conn, dn pki.DN) {
	if !s.trackWS(conn) {
		conn.Close()
		return
	}
	defer s.untrackWS(conn)
	defer conn.Close()

	admin := s.vom.IsServerAdmin(dn)
	dnStr := dn.String()

	var wmu sync.Mutex
	send := func(f pubsub.Frame) bool {
		data, err := json.Marshal(f)
		if err != nil {
			return false
		}
		wmu.Lock()
		defer wmu.Unlock()
		return conn.WriteMessage(ws.OpText, data) == nil
	}

	var subMu sync.Mutex
	subs := map[string]*pubsub.Subscription{}
	var wg sync.WaitGroup
	defer func() {
		subMu.Lock()
		for _, sub := range subs {
			sub.Cancel() // closes the channel; forwarders drain and exit
		}
		subs = nil
		subMu.Unlock()
		wg.Wait()
	}()

	// Server-side keepalive: ping on an interval so dead peers are
	// detected by the read deadline rather than lingering forever.
	stopPing := make(chan struct{})
	defer close(stopPing)
	go func() {
		t := time.NewTicker(wsPingInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				wmu.Lock()
				err := conn.Ping(nil)
				wmu.Unlock()
				if err != nil {
					return
				}
			case <-stopPing:
				return
			}
		}
	}()

	for {
		conn.SetReadDeadline(time.Now().Add(wsReadTimeout))
		_, data, err := conn.ReadMessage()
		if err != nil {
			return
		}
		var f pubsub.Frame
		if err := json.Unmarshal(data, &f); err != nil {
			if !send(pubsub.Frame{Op: pubsub.OpError, Error: "malformed frame: " + err.Error()}) {
				return
			}
			continue
		}
		switch f.Op {
		case pubsub.OpPing:
			if !send(pubsub.Frame{Op: pubsub.OpPong, ID: f.ID}) {
				return
			}
		case pubsub.OpSubscribe:
			errMsg := ""
			var q *pubsub.Query
			if f.ID == "" {
				errMsg = "subscribe requires an id"
			} else if q, err = pubsub.ParseQuery(f.Query); err != nil {
				errMsg = err.Error()
			} else if err := s.authorizeSubscribe(q, dn, admin); err != nil {
				errMsg = err.Error()
			}
			if errMsg != "" {
				if !send(pubsub.Frame{Op: pubsub.OpError, ID: f.ID, Error: errMsg}) {
					return
				}
				continue
			}
			match := func(ev *pubsub.Event) bool {
				return q.Match(ev) && (admin || ownerVisible(ev, dnStr))
			}
			subMu.Lock()
			if subs == nil {
				subMu.Unlock()
				return
			}
			if _, dup := subs[f.ID]; dup {
				subMu.Unlock()
				if !send(pubsub.Frame{Op: pubsub.OpError, ID: f.ID, Error: "duplicate subscription id"}) {
					return
				}
				continue
			}
			sub := s.events.Subscribe("ws:"+dnStr+":"+f.ID, match, wsSubBuffer)
			subs[f.ID] = sub
			subMu.Unlock()
			if !send(pubsub.Frame{Op: pubsub.OpSubscribed, ID: f.ID}) {
				return
			}
			wg.Add(1)
			go func(id string, sub *pubsub.Subscription) {
				defer wg.Done()
				for ev := range sub.Events() {
					if ev.Type == pubsub.TypeLagged {
						n, _ := ev.Data["dropped"].(uint64)
						if !send(pubsub.Frame{Op: pubsub.OpLagged, ID: id, Dropped: n}) {
							conn.Close()
							return
						}
						continue
					}
					ev := ev
					if !send(pubsub.Frame{Op: pubsub.OpEvent, ID: id, Event: &ev}) {
						conn.Close()
						return
					}
				}
			}(f.ID, sub)
		case pubsub.OpUnsubscribe:
			subMu.Lock()
			sub := subs[f.ID]
			delete(subs, f.ID)
			subMu.Unlock()
			if sub == nil {
				if !send(pubsub.Frame{Op: pubsub.OpError, ID: f.ID, Error: "unknown subscription id"}) {
					return
				}
				continue
			}
			sub.Cancel()
			if !send(pubsub.Frame{Op: pubsub.OpUnsubscribed, ID: f.ID}) {
				return
			}
		default:
			if !send(pubsub.Frame{Op: pubsub.OpError, ID: f.ID, Error: "unknown op " + f.Op}) {
				return
			}
		}
	}
}

// authorizeSubscribe gates a subscription query on the method ACLs: the
// caller needs the same module-level access an RPC into each watched
// module requires. Queries that do not pin down a module are reserved
// for server admins.
func (s *Server) authorizeSubscribe(q *pubsub.Query, dn pki.DN, admin bool) error {
	if admin {
		return nil
	}
	mods := q.Modules()
	if len(mods) == 0 {
		return errors.New("unscoped subscriptions (no type=<module>.* or service=<module> term) are admin-only")
	}
	for _, m := range mods {
		if s.cfg.DisableAuth {
			continue
		}
		if decision, _ := s.methACL.AuthorizeDetail(m, dn); decision != acl.Allow {
			return fmt.Errorf("access denied to %q events", m)
		}
	}
	return nil
}

// ownerVisible reports whether an event may be delivered to dn under
// identity scoping: events tagged with owner/to/from are visible only
// to those principals (or admins); untagged events are visible to any
// authorized subscriber.
func ownerVisible(ev *pubsub.Event, dn string) bool {
	restricted := false
	for _, k := range [...]string{"owner", "to", "from"} {
		if v, ok := ev.Tags[k]; ok {
			restricted = true
			if v == dn {
				return true
			}
		}
	}
	return !restricted
}
