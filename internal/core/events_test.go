package core

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clarens/internal/acl"
	"clarens/internal/pki"
	"clarens/internal/pubsub"
	"clarens/internal/ws"
)

// startWS exposes a server's handler (with /ws mounted) over a real
// listener, since the WebSocket handshake needs a hijackable conn.
func startWS(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	s.MountWS("/ws")
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func dialWS(t *testing.T, url, session string) *ws.Conn {
	t.Helper()
	hdr := http.Header{}
	if session != "" {
		hdr.Set(SessionHeader, session)
	}
	conn, err := ws.Dial(url+"/ws", hdr, nil, 5*time.Second)
	if err != nil {
		t.Fatalf("dial /ws: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func sendFrame(t *testing.T, conn *ws.Conn, f pubsub.Frame) {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.WriteMessage(ws.OpText, data); err != nil {
		t.Fatal(err)
	}
}

func readFrame(t *testing.T, conn *ws.Conn) pubsub.Frame {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, data, err := conn.ReadMessage()
	if err != nil {
		t.Fatalf("read frame: %v", err)
	}
	var f pubsub.Frame
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshal frame %q: %v", data, err)
	}
	return f
}

func sessionID(t *testing.T, s *Server, dn pki.DN) string {
	t.Helper()
	sess, err := s.NewSessionFor(dn)
	if err != nil {
		t.Fatal(err)
	}
	return sess.ID
}

func TestWSRequiresSession(t *testing.T) {
	s := newTestServer(t)
	hs := startWS(t, s)
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/ws", nil)
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", "websocket")
	req.Header.Set("Sec-WebSocket-Version", "13")
	req.Header.Set("Sec-WebSocket-Key", "dGhlIHNhbXBsZSBub25jZQ==")
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous /ws got %d, want 401", resp.StatusCode)
	}
}

func TestWSSessionQueryParam(t *testing.T) {
	s := newTestServer(t)
	hs := startWS(t, s)
	// Browsers cannot set headers on a WS dial: ?session= must work.
	sid := sessionID(t, s, adminDN)
	conn, err := ws.Dial(hs.URL+"/ws?session="+sid, nil, nil, 5*time.Second)
	if err != nil {
		t.Fatalf("dial with ?session=: %v", err)
	}
	conn.Close()
}

func TestWSSubscribeACL(t *testing.T) {
	s := newTestServer(t)
	if err := s.MethodACL().Set("job", &acl.ACL{AllowDNs: []string{userDN.String()}}); err != nil {
		t.Fatal(err)
	}
	hs := startWS(t, s)

	// The authorized user may watch the job module...
	conn := dialWS(t, hs.URL, sessionID(t, s, userDN))
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpSubscribe, ID: "a", Query: "type=job.state"})
	if f := readFrame(t, conn); f.Op != pubsub.OpSubscribed {
		t.Fatalf("authorized subscribe: %+v", f)
	}
	// ...but not an unrelated module, nor run an unscoped query.
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpSubscribe, ID: "b", Query: "service=proxy"})
	if f := readFrame(t, conn); f.Op != pubsub.OpError {
		t.Fatalf("unauthorized module subscribe: %+v", f)
	}
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpSubscribe, ID: "c", Query: "owner=x"})
	if f := readFrame(t, conn); f.Op != pubsub.OpError {
		t.Fatalf("unscoped subscribe by non-admin: %+v", f)
	}

	// Admins are exempt from both restrictions.
	admin := dialWS(t, hs.URL, sessionID(t, s, adminDN))
	sendFrame(t, admin, pubsub.Frame{Op: pubsub.OpSubscribe, ID: "all", Query: "owner=x"})
	if f := readFrame(t, admin); f.Op != pubsub.OpSubscribed {
		t.Fatalf("admin unscoped subscribe: %+v", f)
	}
}

func TestWSDeliveryAndOwnerScoping(t *testing.T) {
	s := newTestServer(t)
	if err := s.MethodACL().Set("job", &acl.ACL{AllowDNs: []string{acl.EntryAny}}); err != nil {
		t.Fatal(err)
	}
	hs := startWS(t, s)
	conn := dialWS(t, hs.URL, sessionID(t, s, userDN))
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpSubscribe, ID: "jobs", Query: "type=job.state"})
	if f := readFrame(t, conn); f.Op != pubsub.OpSubscribed {
		t.Fatalf("subscribe: %+v", f)
	}

	other := pki.MustParseDN("/O=grid/OU=People/CN=Other")
	s.Events().Publish(pubsub.Event{Type: "job.state",
		Tags: map[string]string{"service": "job", "job_id": "j-other", "owner": other.String()}})
	s.Events().Publish(pubsub.Event{Type: "job.state",
		Tags: map[string]string{"service": "job", "job_id": "j-mine", "owner": userDN.String()}})

	f := readFrame(t, conn)
	if f.Op != pubsub.OpEvent || f.Event == nil {
		t.Fatalf("expected event frame, got %+v", f)
	}
	if f.Event.Tags["job_id"] != "j-mine" {
		t.Fatalf("owner scoping failed: user received %q", f.Event.Tags["job_id"])
	}
	if f.ID != "jobs" {
		t.Fatalf("event frame carries id %q, want the subscription id", f.ID)
	}

	// Unsubscribe stops delivery.
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpUnsubscribe, ID: "jobs"})
	if f := readFrame(t, conn); f.Op != pubsub.OpUnsubscribed {
		t.Fatalf("unsubscribe: %+v", f)
	}
}

func TestWSServerShutdownClosesSessions(t *testing.T) {
	s, err := NewServer(Config{AdminDNs: []string{adminDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	hs := startWS(t, s)
	conn := dialWS(t, hs.URL, sessionID(t, s, adminDN))
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpSubscribe, ID: "x", Query: "type=job.*"})
	if f := readFrame(t, conn); f.Op != pubsub.OpSubscribed {
		t.Fatalf("subscribe: %+v", f)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		// The session must observe the shutdown promptly: a closing
		// frame, then the transport going away.
		for {
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			_, data, err := conn.ReadMessage()
			if err != nil {
				return
			}
			var f pubsub.Frame
			if json.Unmarshal(data, &f) == nil && f.Op == pubsub.OpClosing {
				return
			}
		}
	}()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WS session not closed by server shutdown")
	}
}

func TestWSPingFrame(t *testing.T) {
	s := newTestServer(t)
	hs := startWS(t, s)
	conn := dialWS(t, hs.URL, sessionID(t, s, adminDN))
	sendFrame(t, conn, pubsub.Frame{Op: pubsub.OpPing, ID: "k"})
	if f := readFrame(t, conn); f.Op != pubsub.OpPong || f.ID != "k" {
		t.Fatalf("ping answer: %+v", f)
	}
}
