package messaging

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"clarens/internal/acl"
	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
)

var (
	userDN = pki.MustParseDN("/O=grid/OU=People/CN=User")
	jobDN  = pki.MustParseDN("/O=grid/OU=Services/CN=job\\/worker-42")
)

type fixture struct {
	srv *core.Server
	svc *Service
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	srv, err := core.NewServer(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	svc := New(srv)
	if err := srv.Register(svc); err != nil {
		t.Fatal(err)
	}
	if err := srv.MethodACL().Set("message", &acl.ACL{AllowDNs: []string{acl.EntryAny}}); err != nil {
		t.Fatal(err)
	}
	return &fixture{srv: srv, svc: svc}
}

func (f *fixture) call(t *testing.T, dn pki.DN, method string, params ...any) *rpc.Response {
	t.Helper()
	var buf bytes.Buffer
	codec := xmlrpc.New()
	if err := codec.EncodeRequest(&buf, &rpc.Request{Method: method, Params: params}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/rpc", &buf)
	req.Header.Set("Content-Type", "text/xml")
	if !dn.IsZero() {
		sess, err := f.srv.NewSessionFor(dn)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(core.SessionHeader, sess.ID)
	}
	w := httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(w, req)
	resp, err := codec.DecodeResponse(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSendPollAck(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, userDN, "message.send", jobDN.String(), "abort run", "stop processing block 7")
	if resp.Fault != nil {
		t.Fatalf("send: %v", resp.Fault)
	}
	id := resp.Result.(string)

	resp = f.call(t, jobDN, "message.poll")
	if resp.Fault != nil {
		t.Fatalf("poll: %v", resp.Fault)
	}
	msgs := resp.Result.([]any)
	if len(msgs) != 1 {
		t.Fatalf("poll = %d messages", len(msgs))
	}
	m := msgs[0].(map[string]any)
	if m["from"] != userDN.String() || m["subject"] != "abort run" || m["body"] != "stop processing block 7" {
		t.Errorf("message = %#v", m)
	}
	// Poll does not consume.
	resp = f.call(t, jobDN, "message.count")
	if !rpc.Equal(resp.Result, 1) {
		t.Errorf("count after poll = %#v", resp.Result)
	}
	// Ack consumes.
	resp = f.call(t, jobDN, "message.ack", id)
	if resp.Fault != nil || !rpc.Equal(resp.Result, true) {
		t.Fatalf("ack = %#v %v", resp.Result, resp.Fault)
	}
	resp = f.call(t, jobDN, "message.count")
	if !rpc.Equal(resp.Result, 0) {
		t.Errorf("count after ack = %#v", resp.Result)
	}
	// Second ack of the same id returns false.
	resp = f.call(t, jobDN, "message.ack", id)
	if !rpc.Equal(resp.Result, false) {
		t.Errorf("double ack = %#v", resp.Result)
	}
}

func TestQueueIsolationAndOrder(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < 5; i++ {
		if resp := f.call(t, userDN, "message.send", jobDN.String(), fmt.Sprintf("m%d", i), ""); resp.Fault != nil {
			t.Fatal(resp.Fault)
		}
		time.Sleep(time.Millisecond) // distinct timestamps for ordering
	}
	f.call(t, userDN, "message.send", userDN.String(), "self-note", "")

	resp := f.call(t, jobDN, "message.poll")
	msgs := resp.Result.([]any)
	if len(msgs) != 5 {
		t.Fatalf("job queue = %d", len(msgs))
	}
	for i, raw := range msgs {
		m := raw.(map[string]any)
		if m["subject"] != fmt.Sprintf("m%d", i) {
			t.Errorf("order: msg %d = %v", i, m["subject"])
		}
	}
	// Max-count limit.
	resp = f.call(t, jobDN, "message.poll", 2)
	if got := len(resp.Result.([]any)); got != 2 {
		t.Errorf("poll(2) = %d", got)
	}
	// The user's own queue holds only the self-note.
	resp = f.call(t, userDN, "message.poll")
	if got := len(resp.Result.([]any)); got != 1 {
		t.Errorf("user queue = %d", got)
	}
}

func TestAnonymousRejected(t *testing.T) {
	f := newFixture(t)
	for _, method := range []string{"message.send", "message.poll", "message.ack", "message.count", "message.wait"} {
		resp := f.call(t, nil, method, "x", "y")
		if resp.Fault == nil {
			t.Errorf("%s must require authentication", method)
		}
	}
}

func TestSendValidation(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, userDN, "message.send", "not-a-dn", "s", "b")
	if resp.Fault == nil {
		t.Error("bad recipient DN must be rejected")
	}
	big := strings.Repeat("x", MaxBody+1)
	resp = f.call(t, userDN, "message.send", jobDN.String(), "s", big)
	if resp.Fault == nil {
		t.Error("oversized body must be rejected")
	}
}

func TestWaitDeliversPromptly(t *testing.T) {
	f := newFixture(t)
	var wg sync.WaitGroup
	wg.Add(1)
	var got []any
	var fault *rpc.Fault
	start := time.Now()
	go func() {
		defer wg.Done()
		resp := f.call(t, jobDN, "message.wait", 0, 5000)
		fault = resp.Fault
		if resp.Result != nil {
			got = resp.Result.([]any)
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter register
	if resp := f.call(t, userDN, "message.send", jobDN.String(), "wake", "now"); resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	wg.Wait()
	if fault != nil {
		t.Fatalf("wait: %v", fault)
	}
	if len(got) != 1 || got[0].(map[string]any)["subject"] != "wake" {
		t.Fatalf("wait = %#v", got)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("wait took %v; long-poll should wake on arrival", elapsed)
	}
}

func TestWaitTimesOutEmpty(t *testing.T) {
	f := newFixture(t)
	start := time.Now()
	resp := f.call(t, jobDN, "message.wait", 0, 100)
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	if got := len(resp.Result.([]any)); got != 0 {
		t.Errorf("wait timeout = %d messages", got)
	}
	if time.Since(start) < 90*time.Millisecond {
		t.Error("wait returned before its timeout")
	}
}

func TestWaitReturnsImmediatelyWhenQueued(t *testing.T) {
	f := newFixture(t)
	f.call(t, userDN, "message.send", jobDN.String(), "already-there", "")
	start := time.Now()
	resp := f.call(t, jobDN, "message.wait", 0, 5000)
	if len(resp.Result.([]any)) != 1 {
		t.Fatalf("wait = %#v", resp.Result)
	}
	if time.Since(start) > time.Second {
		t.Error("wait blocked despite queued message")
	}
}

// The send-before-wait fast path must answer without arming a bus
// subscription, and a parked wait must cancel its subscription on the
// way out — the old waiter list leaked an armed channel whenever the
// re-check found messages.
func TestWaitLeavesNoSubscriberBehind(t *testing.T) {
	f := newFixture(t)
	base := f.srv.Events().Subscribers()
	f.call(t, userDN, "message.send", jobDN.String(), "queued-first", "")
	if resp := f.call(t, jobDN, "message.wait", 0, 5000); len(resp.Result.([]any)) != 1 {
		t.Fatalf("wait = %#v", resp.Result)
	}
	if n := f.srv.Events().Subscribers(); n != base {
		t.Errorf("fast-path wait armed %d subscription(s)", n-base)
	}
	// A wait that parks and times out must clean up too.
	f.call(t, userDN, "message.wait", 0, 50)
	if n := f.srv.Events().Subscribers(); n != base {
		t.Errorf("timed-out wait leaked %d subscription(s)", n-base)
	}
}

func TestTTLExpiry(t *testing.T) {
	f := newFixture(t)
	f.svc.TTL = 10 * time.Millisecond
	f.call(t, userDN, "message.send", jobDN.String(), "ephemeral", "")
	time.Sleep(20 * time.Millisecond)
	resp := f.call(t, jobDN, "message.poll")
	if got := len(resp.Result.([]any)); got != 0 {
		t.Errorf("expired message delivered: %d", got)
	}
}

func TestMessagesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(srv)
	srv.Register(svc)
	if _, err := svc.Send(userDN, jobDN, "persistent", "body"); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2, err := core.NewServer(core.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	svc2 := New(srv2)
	msgs, err := svc2.Queue(jobDN, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Subject != "persistent" {
		t.Errorf("queue after restart = %+v", msgs)
	}
}

func TestConcurrentSendersAndReceiver(t *testing.T) {
	f := newFixture(t)
	const senders, per = 6, 20
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from := pki.MustParseDN(fmt.Sprintf("/O=grid/OU=People/CN=Sender %d", g))
			for i := 0; i < per; i++ {
				if _, err := f.svc.Send(from, jobDN, fmt.Sprintf("g%d-%d", g, i), ""); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	msgs, err := f.svc.Queue(jobDN, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != senders*per {
		t.Errorf("queued = %d, want %d", len(msgs), senders*per)
	}
}
