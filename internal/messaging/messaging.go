// Package messaging implements the paper's §6 future-work item: "an
// instant messaging (IM) architecture" overcoming the request/response
// limitation for "asynchronous bi-directional communication required for
// interactions between users and the jobs they are running on private
// networks protected by NAT and firewalls".
//
// The design follows the constraint that motivated it: jobs behind NAT
// can open *outbound* connections only, so delivery is store-and-forward
// — senders post messages addressed to a DN; recipients poll (or
// long-poll) their queue over the same authenticated RPC channel they
// already use. "Jobs can be instrumented to act as Clarens ... clients
// sending information to monitoring systems or remote debugging tools."
//
// Messages persist in the database, so queued traffic survives server
// restarts like sessions do.
package messaging

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/pubsub"
	"clarens/internal/rpc"
)

const bucket = "messages"

// Message is one queued item.
type Message struct {
	ID      string    `json:"id"`
	From    string    `json:"from"` // sender DN
	To      string    `json:"to"`   // recipient DN
	Subject string    `json:"subject"`
	Body    string    `json:"body"`
	Sent    time.Time `json:"sent"`
}

// DefaultTTL is how long undelivered messages are retained.
const DefaultTTL = 24 * time.Hour

// MaxBody bounds a message body.
const MaxBody = 256 << 10

// EventDelivered is the bus event type published for every queued
// message, tagged to/from; message.wait parks on it instead of a
// bespoke waiter list.
const EventDelivered = "message.delivered"

// Service is the store-and-forward messaging service.
type Service struct {
	srv *core.Server
	TTL time.Duration
}

// New creates the messaging service.
func New(srv *core.Server) *Service {
	return &Service{srv: srv, TTL: DefaultTTL}
}

// Name implements core.Service.
func (s *Service) Name() string { return "message" }

// Methods implements core.Service.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "message.send",
			Help:      "Queue a message for a DN: send(to_dn, subject, body); returns the message id.",
			Signature: []string{"string string string string"},
			Public:    true,
			Handler:   s.send,
		},
		{
			Name:      "message.poll",
			Help:      "Return (and keep) the caller's queued messages, oldest first. Optional parameter: max count.",
			Signature: []string{"array int"},
			Public:    true,
			Handler:   s.poll,
		},
		{
			Name:      "message.wait",
			Help:      "Long-poll: like message.poll but blocks up to `timeout_ms` for a message to arrive.",
			Signature: []string{"array int int"},
			Public:    true,
			Handler:   s.wait,
		},
		{
			Name:      "message.ack",
			Help:      "Acknowledge (delete) a delivered message by id.",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.ack,
		},
		{
			Name:      "message.count",
			Help:      "Number of messages queued for the caller.",
			Signature: []string{"int"},
			Public:    true,
			Handler:   s.count,
		},
	}
}

// key layout: <recipient DN>|<unix nanos>|<id> — Keys(prefix) yields a
// recipient's queue in arrival order.
func msgKey(to string, sent time.Time, id string) string {
	return fmt.Sprintf("%s|%020d|%s", to, sent.UnixNano(), id)
}

// Send queues a message; exported for in-process producers (job wrappers).
func (s *Service) Send(from, to pki.DN, subject, body string) (string, error) {
	if to.IsZero() {
		return "", &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "message: empty recipient"}
	}
	if len(body) > MaxBody {
		return "", &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "message: body too large"}
	}
	var idb [8]byte
	if _, err := rand.Read(idb[:]); err != nil {
		return "", err
	}
	m := Message{
		ID:      hex.EncodeToString(idb[:]),
		From:    from.String(),
		To:      to.String(),
		Subject: subject,
		Body:    body,
		Sent:    time.Now(),
	}
	if err := s.srv.Store().PutJSON(bucket, msgKey(m.To, m.Sent, m.ID), &m); err != nil {
		return "", err
	}
	// Announce on the event bus: wakes parked message.wait calls and
	// feeds /ws subscribers (delivery is scoped to the to/from DNs).
	s.srv.Events().Publish(pubsub.Event{
		Type: EventDelivered,
		Tags: map[string]string{"service": "message", "to": m.To, "from": m.From},
		Data: map[string]any{"id": m.ID, "subject": m.Subject},
	})
	return m.ID, nil
}

// Queue returns up to max queued messages for dn, oldest first (0 = all).
func (s *Service) Queue(dn pki.DN, max int) ([]Message, error) {
	cutoff := time.Now().Add(-s.TTL)
	var out []Message
	for _, key := range s.srv.Store().Keys(bucket, dn.String()+"|") {
		var m Message
		found, err := s.srv.Store().GetJSON(bucket, key, &m)
		if err != nil || !found {
			continue
		}
		if m.Sent.Before(cutoff) {
			s.srv.Store().Delete(bucket, key)
			continue
		}
		out = append(out, m)
		if max > 0 && len(out) >= max {
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sent.Before(out[j].Sent) })
	return out, nil
}

// Ack deletes a message from dn's queue by id.
func (s *Service) Ack(dn pki.DN, id string) (bool, error) {
	for _, key := range s.srv.Store().Keys(bucket, dn.String()+"|") {
		var m Message
		found, err := s.srv.Store().GetJSON(bucket, key, &m)
		if err != nil || !found {
			continue
		}
		if m.ID == id {
			return true, s.srv.Store().Delete(bucket, key)
		}
	}
	return false, nil
}

func (s *Service) send(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	toStr, err := p.String(0)
	if err != nil {
		return nil, err
	}
	subject, err := p.String(1)
	if err != nil {
		return nil, err
	}
	body, err := p.OptString(2, "")
	if err != nil {
		return nil, err
	}
	to, perr := pki.ParseDN(toStr)
	if perr != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: perr.Error()}
	}
	return s.Send(ctx.DN, to, subject, body)
}

func messageStruct(m Message) map[string]any {
	return map[string]any{
		"id":      m.ID,
		"from":    m.From,
		"subject": m.Subject,
		"body":    m.Body,
		"sent":    m.Sent.UTC(),
	}
}

func (s *Service) poll(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	max, err := p.OptInt(0, 0)
	if err != nil {
		return nil, err
	}
	msgs, err := s.Queue(ctx.DN, max)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(msgs))
	for i, m := range msgs {
		out[i] = messageStruct(m)
	}
	return out, nil
}

func (s *Service) wait(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	max, err := p.OptInt(0, 0)
	if err != nil {
		return nil, err
	}
	timeoutMS, err := p.OptInt(1, 30000)
	if err != nil {
		return nil, err
	}
	if timeoutMS > 120000 {
		timeoutMS = 120000
	}
	deadline := time.Now().Add(time.Duration(timeoutMS) * time.Millisecond)
	// Fast path: messages already queued are returned without arming any
	// waiter state — nothing to register, nothing to leak.
	msgs, err := s.Queue(ctx.DN, max)
	if err != nil {
		return nil, err
	}
	if len(msgs) > 0 {
		return messageStructs(msgs), nil
	}
	// Park on the event bus. Subscribing BEFORE the re-check closes the
	// old missed-wakeup window: a message landing between the fast path
	// and here is either seen by the re-check or delivered on the
	// subscription — never both missed. Cancel on every exit, so no
	// waiter outlives its call (the old waiter list leaked an armed
	// channel whenever the re-check returned messages).
	dn := ctx.DN.String()
	sub := s.srv.Events().Subscribe("message.wait:"+dn, func(ev *pubsub.Event) bool {
		return ev.Type == EventDelivered && ev.Tags["to"] == dn
	}, 16)
	defer sub.Cancel()
	for {
		msgs, err := s.Queue(ctx.DN, max)
		if err != nil {
			return nil, err
		}
		if len(msgs) > 0 {
			return messageStructs(msgs), nil
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return []any{}, nil
		}
		timer := time.NewTimer(remaining)
		select {
		case _, ok := <-sub.Events():
			timer.Stop()
			if !ok {
				// Bus closed: the server is shutting down; answer like a
				// timeout so clients simply retry.
				return []any{}, nil
			}
		case <-timer.C:
			return []any{}, nil
		case <-ctx.Done():
			// Request cancelled or method deadline hit mid-poll: end the
			// long poll with the same empty answer as a timeout, so
			// clients that outlive the server-side bound simply retry.
			timer.Stop()
			return []any{}, nil
		}
	}
}

func messageStructs(msgs []Message) []any {
	out := make([]any, len(msgs))
	for i, m := range msgs {
		out[i] = messageStruct(m)
	}
	return out
}

func (s *Service) ack(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	id, err := p.String(0)
	if err != nil {
		return nil, err
	}
	ok, err := s.Ack(ctx.DN, id)
	if err != nil {
		return nil, err
	}
	return ok, nil
}

func (s *Service) count(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return nil, err
	}
	msgs, err := s.Queue(ctx.DN, 0)
	if err != nil {
		return nil, err
	}
	return len(msgs), nil
}

var _ core.Service = (*Service)(nil)
