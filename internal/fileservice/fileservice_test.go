package fileservice

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clarens/internal/acl"
	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
	"clarens/internal/rpc/xmlrpc"
)

var (
	adminDN  = pki.MustParseDN("/O=caltech/OU=People/CN=Admin")
	readerDN = pki.MustParseDN("/O=grid/OU=People/CN=Reader")
	writerDN = pki.MustParseDN("/O=grid/OU=People/CN=Writer")
	otherDN  = pki.MustParseDN("/O=other/OU=People/CN=Other")
)

type fixture struct {
	srv  *core.Server
	fs   *Service
	root string
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	root := t.TempDir()
	srv, err := core.NewServer(core.Config{AdminDNs: []string{adminDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	fsvc, err := New(srv, root)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(fsvc); err != nil {
		t.Fatal(err)
	}
	fsvc.MountHTTP("/files/")
	// Baseline grants: readers may read everything under /data; writers
	// may also write under /data.
	os.MkdirAll(filepath.Join(root, "data", "sub"), 0o755)
	os.WriteFile(filepath.Join(root, "data", "events.bin"), []byte("0123456789abcdef"), 0o644)
	os.WriteFile(filepath.Join(root, "data", "sub", "notes.txt"), []byte("hello"), 0o644)
	if err := fsvc.Grant("/data", Read, []string{readerDN.String(), writerDN.String()}, nil); err != nil {
		t.Fatal(err)
	}
	if err := fsvc.Grant("/data", Write, []string{writerDN.String()}, nil); err != nil {
		t.Fatal(err)
	}
	return &fixture{srv: srv, fs: fsvc, root: root}
}

// call invokes a file method through the full dispatch pipeline.
func (f *fixture) call(t *testing.T, dn pki.DN, method string, params ...any) *rpc.Response {
	t.Helper()
	var buf bytes.Buffer
	codec := xmlrpc.New()
	if err := codec.EncodeRequest(&buf, &rpc.Request{Method: method, Params: params}); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/rpc", &buf)
	req.Header.Set("Content-Type", "text/xml")
	if !dn.IsZero() {
		sess, err := f.srv.NewSessionFor(dn)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(core.SessionHeader, sess.ID)
	}
	w := httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(w, req)
	resp, err := codec.DecodeResponse(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readChunk unpacks a file.read response into (data, eof).
func readChunk(t *testing.T, resp *rpc.Response) ([]byte, bool) {
	t.Helper()
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	m, ok := resp.Result.(map[string]any)
	if !ok {
		t.Fatalf("file.read result = %#v, want struct", resp.Result)
	}
	data, _ := m["data"].([]byte)
	eof, _ := m["eof"].(bool)
	return data, eof
}

func TestReadFull(t *testing.T) {
	f := newFixture(t)
	data, eof := readChunk(t, f.call(t, readerDN, "file.read", "/data/events.bin", 0, -1))
	if !rpc.Equal(data, []byte("0123456789abcdef")) {
		t.Errorf("read = %#v", data)
	}
	if !eof {
		t.Error("full read must signal eof")
	}
}

func TestReadOffsetLength(t *testing.T) {
	f := newFixture(t)
	// The paper's signature: file.read(filename, offset, bytes).
	data, eof := readChunk(t, f.call(t, readerDN, "file.read", "/data/events.bin", 4, 6))
	if !rpc.Equal(data, []byte("456789")) {
		t.Errorf("read(4,6) = %#v", data)
	}
	if eof {
		t.Error("mid-file read must not signal eof")
	}
	// The final chunk carries eof even when it fills the requested length.
	data, eof = readChunk(t, f.call(t, readerDN, "file.read", "/data/events.bin", 10, 6))
	if string(data) != "abcdef" || !eof {
		t.Errorf("tail read = %q eof=%v, want abcdef eof", data, eof)
	}
	// Offset beyond EOF returns empty with eof set.
	data, eof = readChunk(t, f.call(t, readerDN, "file.read", "/data/events.bin", 100, 10))
	if len(data) != 0 || !eof {
		t.Errorf("read past EOF = %q eof=%v", data, eof)
	}
}

func TestReadDeniedForOthers(t *testing.T) {
	f := newFixture(t)
	for _, dn := range []pki.DN{nil, otherDN} {
		resp := f.call(t, dn, "file.read", "/data/events.bin")
		if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
			t.Errorf("dn=%v fault = %+v", dn, resp.Fault)
		}
	}
}

func TestAdminAlwaysAllowed(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, adminDN, "file.read", "/data/events.bin")
	if resp.Fault != nil {
		t.Errorf("admin read fault: %v", resp.Fault)
	}
}

func TestWriteRequiresWriteACL(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, readerDN, "file.write", "/data/out.txt", []byte("x"))
	if resp.Fault == nil {
		t.Error("reader must not write")
	}
	resp = f.call(t, writerDN, "file.write", "/data/out.txt", []byte("written"), 0)
	if resp.Fault != nil {
		t.Fatalf("writer write fault: %v", resp.Fault)
	}
	if !rpc.Equal(resp.Result, 7) {
		t.Errorf("bytes written = %#v", resp.Result)
	}
	data, err := os.ReadFile(filepath.Join(f.root, "data", "out.txt"))
	if err != nil || string(data) != "written" {
		t.Errorf("file content = %q, %v", data, err)
	}
	// Append mode.
	resp = f.call(t, writerDN, "file.write", "/data/out.txt", []byte("+more"))
	if resp.Fault != nil {
		t.Fatal(resp.Fault)
	}
	data, _ = os.ReadFile(filepath.Join(f.root, "data", "out.txt"))
	if string(data) != "written+more" {
		t.Errorf("after append = %q", data)
	}
}

func TestLs(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, readerDN, "file.ls", "/data")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	list := resp.Result.([]any)
	if len(list) != 2 {
		t.Fatalf("ls = %#v", list)
	}
	first := list[0].(map[string]any)
	if first["name"] != "events.bin" || first["is_dir"] != false {
		t.Errorf("entry = %#v", first)
	}
	second := list[1].(map[string]any)
	if second["name"] != "sub" || second["is_dir"] != true {
		t.Errorf("entry = %#v", second)
	}
}

func TestStatAndSize(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, readerDN, "file.stat", "/data/events.bin")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	st := resp.Result.(map[string]any)
	if st["size"] != 16 || st["is_dir"] != false || st["name"] != "/data/events.bin" {
		t.Errorf("stat = %#v", st)
	}
	resp = f.call(t, readerDN, "file.size", "/data/events.bin")
	if !rpc.Equal(resp.Result, 16) {
		t.Errorf("size = %#v", resp.Result)
	}
	resp = f.call(t, readerDN, "file.stat", "/data/missing")
	if resp.Fault == nil {
		t.Error("stat of missing file must fault")
	}
}

func TestMD5(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, readerDN, "file.md5", "/data/events.bin")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	want := md5.Sum([]byte("0123456789abcdef"))
	if resp.Result != hex.EncodeToString(want[:]) {
		t.Errorf("md5 = %v", resp.Result)
	}
}

func TestFind(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, readerDN, "file.find", "/data", "*.txt")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	if !rpc.Equal(resp.Result, []any{"/data/sub/notes.txt"}) {
		t.Errorf("find = %#v", resp.Result)
	}
	resp = f.call(t, readerDN, "file.find", "/data", "[bad")
	if resp.Fault == nil {
		t.Error("bad glob must fault")
	}
}

func TestFindPrunesDeniedSubtrees(t *testing.T) {
	f := newFixture(t)
	// Explicitly deny reader on /data/sub: find must not descend into it.
	err := f.fs.SetACL("/data/sub", Read, &acl.ACL{DenyDNs: []string{readerDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	resp := f.call(t, readerDN, "file.find", "/data", "*")
	if resp.Fault != nil {
		t.Fatalf("fault: %v", resp.Fault)
	}
	for _, p := range resp.Result.([]any) {
		if strings.HasPrefix(p.(string), "/data/sub") {
			t.Errorf("denied subtree leaked into results: %v", p)
		}
	}
	// file.read in the denied subtree also refuses (lowest level wins).
	resp = f.call(t, readerDN, "file.read", "/data/sub/notes.txt")
	if resp.Fault == nil {
		t.Error("specific deny must override ancestor allow")
	}
}

func TestMkdirRm(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, writerDN, "file.mkdir", "/data/newdir")
	if resp.Fault != nil {
		t.Fatalf("mkdir: %v", resp.Fault)
	}
	if fi, err := os.Stat(filepath.Join(f.root, "data", "newdir")); err != nil || !fi.IsDir() {
		t.Error("directory not created")
	}
	resp = f.call(t, writerDN, "file.rm", "/data/newdir")
	if resp.Fault != nil {
		t.Fatalf("rm: %v", resp.Fault)
	}
	resp = f.call(t, writerDN, "file.rm", "/")
	if resp.Fault == nil {
		t.Error("rm of virtual root must be refused")
	}
	resp = f.call(t, readerDN, "file.mkdir", "/data/xx")
	if resp.Fault == nil {
		t.Error("mkdir without write ACL must fault")
	}
}

func TestPathEscapeBlocked(t *testing.T) {
	f := newFixture(t)
	secret := filepath.Join(filepath.Dir(f.root), "secret.txt")
	os.WriteFile(secret, []byte("secret"), 0o644)
	defer os.Remove(secret)
	for _, evil := range []string{
		"../secret.txt",
		"/../secret.txt",
		"/data/../../secret.txt",
		"..\\secret.txt",
	} {
		resp := f.call(t, adminDN, "file.read", evil)
		if resp.Fault == nil {
			if m, ok := resp.Result.(map[string]any); ok {
				if b, ok := m["data"].([]byte); ok && string(b) == "secret" {
					t.Errorf("path escape succeeded via %q", evil)
				}
			}
		}
	}
}

func TestHTTPGet(t *testing.T) {
	f := newFixture(t)
	sess, _ := f.srv.NewSessionFor(readerDN)

	get := func(path string, sid string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		if sid != "" {
			req.Header.Set(core.SessionHeader, sid)
		}
		w := httptest.NewRecorder()
		f.srv.Handler().ServeHTTP(w, req)
		return w
	}

	// Authorized GET returns the bytes.
	w := get("/files/data/events.bin", sess.ID)
	if w.Code != http.StatusOK || w.Body.String() != "0123456789abcdef" {
		t.Errorf("GET = %d %q", w.Code, w.Body.String())
	}
	// Range requests work through http.ServeContent.
	req := httptest.NewRequest(http.MethodGet, "/files/data/events.bin", nil)
	req.Header.Set(core.SessionHeader, sess.ID)
	req.Header.Set("Range", "bytes=4-9")
	w = httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusPartialContent || w.Body.String() != "456789" {
		t.Errorf("Range GET = %d %q", w.Code, w.Body.String())
	}
	// Unauthorized GET returns the paper's XML-encoded error message.
	w = get("/files/data/events.bin", "")
	if w.Code != http.StatusForbidden || !strings.Contains(w.Body.String(), "<error>") {
		t.Errorf("denied GET = %d %q", w.Code, w.Body.String())
	}
	// Missing file under an authorized path.
	w = get("/files/data/absent.bin", sess.ID)
	if w.Code != http.StatusNotFound || !strings.Contains(w.Body.String(), "<error>") {
		t.Errorf("missing GET = %d %q", w.Code, w.Body.String())
	}
	// POST not allowed on the file endpoint.
	req = httptest.NewRequest(http.MethodPost, "/files/data/events.bin", nil)
	w = httptest.NewRecorder()
	f.srv.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST files = %d", w.Code)
	}
}

func TestACLAdminMethods(t *testing.T) {
	f := newFixture(t)
	resp := f.call(t, adminDN, "file.set_acl", "/public", "read", "allow,deny",
		[]any{"*", "anonymous"}, []any{}, []any{}, []any{})
	if resp.Fault != nil {
		t.Fatalf("set_acl: %v", resp.Fault)
	}
	os.MkdirAll(filepath.Join(f.root, "public"), 0o755)
	os.WriteFile(filepath.Join(f.root, "public", "index.txt"), []byte("pub"), 0o644)
	resp = f.call(t, nil, "file.read", "/public/index.txt")
	if resp.Fault != nil {
		t.Errorf("anonymous read of public file: %v", resp.Fault)
	}
	resp = f.call(t, adminDN, "file.get_acl", "/public")
	if resp.Fault != nil {
		t.Fatalf("get_acl: %v", resp.Fault)
	}
	m := resp.Result.(map[string]any)
	if _, ok := m["read"]; !ok {
		t.Errorf("get_acl = %#v", m)
	}
	resp = f.call(t, adminDN, "file.del_acl", "/public")
	if resp.Fault != nil {
		t.Fatalf("del_acl: %v", resp.Fault)
	}
	resp = f.call(t, nil, "file.read", "/public/index.txt")
	if resp.Fault == nil {
		t.Error("read after del_acl should be denied")
	}
	// Non-admins cannot manage file ACLs.
	resp = f.call(t, readerDN, "file.set_acl", "/x", "read", "allow,deny", []any{"*"})
	if resp.Fault == nil {
		t.Error("non-admin set_acl must fault")
	}
	resp = f.call(t, adminDN, "file.set_acl", "/x", "bogus", "allow,deny", []any{"*"})
	if resp.Fault == nil {
		t.Error("bad kind must fault")
	}
}

func TestNewValidation(t *testing.T) {
	srv, _ := core.NewServer(core.Config{})
	defer srv.Close()
	if _, err := New(srv, "/definitely/missing/dir"); err == nil {
		t.Error("missing root must be rejected")
	}
	file := filepath.Join(t.TempDir(), "f")
	os.WriteFile(file, nil, 0o644)
	if _, err := New(srv, file); err == nil {
		t.Error("non-directory root must be rejected")
	}
}

func TestReadChunkCap(t *testing.T) {
	f := newFixture(t)
	big := filepath.Join(f.root, "data", "big.bin")
	payload := bytes.Repeat([]byte("x"), MaxReadChunk+1024)
	os.WriteFile(big, payload, 0o644)
	data, eof := readChunk(t, f.call(t, readerDN, "file.read", "/data/big.bin", 0, -1))
	if len(data) != MaxReadChunk {
		t.Errorf("chunk = %d, want cap %d", len(data), MaxReadChunk)
	}
	// The capped read must NOT claim eof: more bytes remain.
	if eof {
		t.Error("capped chunk wrongly signalled eof")
	}
	// The remainder is reachable with an explicit offset, and the last
	// chunk carries the eof signal — no zero-byte probe needed.
	data, eof = readChunk(t, f.call(t, readerDN, "file.read", "/data/big.bin", MaxReadChunk, -1))
	if len(data) != 1024 || !eof {
		t.Errorf("tail = %d eof=%v", len(data), eof)
	}
}

// TestArtifactStoreACLScoping: per-job trees are readable by the
// submitting owner (and admins) only, and the namespace itself is locked
// down even when "/" is wide open.
func TestArtifactStoreACLScoping(t *testing.T) {
	f := newFixture(t)
	// A deployment that opened the whole root for data distribution.
	if err := f.fs.Grant("/", Read, []string{acl.EntryAny, acl.EntryAnonymous}, nil); err != nil {
		t.Fatal(err)
	}
	store, err := f.fs.EnableJobArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	dir, virtual, err := store.Create("00001-abcd", readerDN)
	if err != nil {
		t.Fatal(err)
	}
	if virtual != "/jobs/00001-abcd" {
		t.Errorf("virtual = %q", virtual)
	}
	os.WriteFile(filepath.Join(dir, "stdout"), []byte("job output"), 0o644)

	data, _ := readChunk(t, f.call(t, readerDN, "file.read", virtual+"/stdout", 0, -1))
	if string(data) != "job output" {
		t.Errorf("owner read = %q", data)
	}
	// Another authenticated principal and anonymous are refused despite
	// the open "/" grant; admins pass.
	for _, dn := range []pki.DN{otherDN, nil} {
		resp := f.call(t, dn, "file.read", virtual+"/stdout")
		if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied {
			t.Errorf("dn=%v fault = %+v, want access denied", dn, resp.Fault)
		}
	}
	if resp := f.call(t, adminDN, "file.read", virtual+"/stdout"); resp.Fault != nil {
		t.Errorf("admin read fault: %v", resp.Fault)
	}
	// file.write into the namespace is refused even for the owner: the
	// trees are server-written.
	if resp := f.call(t, readerDN, "file.write", virtual+"/stdout", []byte("tamper")); resp.Fault == nil {
		t.Error("owner must not write into the artifact tree")
	}

	// Lifecycle: List sees the tree, Remove clears tree + ACL.
	ids, err := store.List()
	if err != nil || len(ids) != 1 || ids[0] != "00001-abcd" {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := store.Remove("00001-abcd"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("artifact tree not removed")
	}
	if e, _ := f.fs.GetACL(virtual); e != nil {
		t.Error("per-job ACL not removed")
	}
	// Hostile ids never resolve.
	for _, evil := range []string{"", "../data", "a/b", `a\b`, ".."} {
		if _, _, err := store.Create(evil, readerDN); err == nil {
			t.Errorf("Create(%q) must be rejected", evil)
		}
	}
}

// TestArtifactHTTPStreaming exercises the HTTP GET path under the
// artifact namespace in-process: large-file round trip, Range resume at
// an offset, and the unauthorized 403.
func TestArtifactHTTPStreaming(t *testing.T) {
	f := newFixture(t)
	store, err := f.fs.EnableJobArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	dir, virtual, err := store.Create("00002-beef", readerDN)
	if err != nil {
		t.Fatal(err)
	}
	// A payload bigger than one RPC read chunk, patterned so offsets are
	// position-sensitive.
	payload := make([]byte, MaxReadChunk+512*1024)
	for i := range payload {
		payload[i] = byte(i * 2654435761)
	}
	if err := os.WriteFile(filepath.Join(dir, "stdout"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	sess, _ := f.srv.NewSessionFor(readerDN)

	get := func(ranged string, sid string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/files"+virtual+"/stdout", nil)
		if sid != "" {
			req.Header.Set(core.SessionHeader, sid)
		}
		if ranged != "" {
			req.Header.Set("Range", ranged)
		}
		w := httptest.NewRecorder()
		f.srv.Handler().ServeHTTP(w, req)
		return w
	}

	// Large round trip, digest-checked.
	w := get("", sess.ID)
	if w.Code != http.StatusOK {
		t.Fatalf("GET = %d", w.Code)
	}
	if got, want := md5.Sum(w.Body.Bytes()), md5.Sum(payload); got != want {
		t.Errorf("round-trip digest mismatch (%d bytes)", w.Body.Len())
	}

	// Resume at an offset via Range, as an interrupted fetch would.
	off := len(payload) - 100_000
	w = get(fmt.Sprintf("bytes=%d-", off), sess.ID)
	if w.Code != http.StatusPartialContent {
		t.Fatalf("Range GET = %d", w.Code)
	}
	if !bytes.Equal(w.Body.Bytes(), payload[off:]) {
		t.Errorf("Range resume returned %d wrong bytes", w.Body.Len())
	}

	// Unauthorized DNs get the paper's XML-encoded 403.
	osess, _ := f.srv.NewSessionFor(otherDN)
	for _, sid := range []string{"", osess.ID} {
		w = get("", sid)
		if w.Code != http.StatusForbidden || !strings.Contains(w.Body.String(), "<error>") {
			t.Errorf("unauthorized GET (sid=%q) = %d %q", sid, w.Code, w.Body.String())
		}
	}
}

func TestAclLevels(t *testing.T) {
	got := aclLevels("/a/b/c")
	want := []string{"/a/b/c", "/a/b", "/a", "/"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("aclLevels = %v", got)
	}
	if fmt.Sprint(aclLevels("/")) != "[/]" {
		t.Errorf("aclLevels(/) = %v", aclLevels("/"))
	}
}
