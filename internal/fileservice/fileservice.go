// Package fileservice implements Clarens remote file access (paper §2.3).
//
// "Clarens serves files in two different ways: in response to standard
// HTTP GET requests, as well as via a file.read() service method." A
// virtual server root confines all access; file and directory ACLs use
// the same hierarchical structure as method ACLs, "extended with two
// extra fields: read and write"; and the GET path hands network I/O to
// the web server, which uses the zero-copy sendfile() path where
// available (Go's net/http does this through the io.ReaderFrom fast path
// used by http.ServeContent).
package fileservice

import (
	"crypto/md5"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"clarens/internal/acl"
	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

// MaxReadChunk bounds a single file.read response (base64 payload), so a
// misbehaving client cannot make the server marshal gigabytes into one
// RPC response. Larger transfers iterate or use HTTP GET.
const MaxReadChunk = 8 << 20

const aclBucket = "file_acls"

// AccessKind selects which list of a file ACL applies.
type AccessKind int

const (
	Read AccessKind = iota
	Write
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Entry is a file/directory ACL: the method-ACL structure extended with
// separate read and write lists (paper §2.3).
type Entry struct {
	Read  *acl.ACL `json:"read,omitempty"`
	Write *acl.ACL `json:"write,omitempty"`
}

// Service is the Clarens file service rooted at a virtual directory.
type Service struct {
	srv  *core.Server
	root string
}

// New creates the file service. root must be an existing directory; it
// becomes the virtual server root ("a virtual server root directory can
// be defined ... which may be any directory on the server system").
func New(srv *core.Server, root string) (*Service, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, fmt.Errorf("fileservice: %w", err)
	}
	st, err := os.Stat(abs)
	if err != nil {
		return nil, fmt.Errorf("fileservice: root: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("fileservice: root %q is not a directory", abs)
	}
	return &Service{srv: srv, root: abs}, nil
}

// Root returns the virtual root directory.
func (s *Service) Root() string { return s.root }

// Name implements core.Service.
func (s *Service) Name() string { return "file" }

// resolve maps a client-supplied virtual path to a real path, confined to
// the root. The returned virtual path is cleaned and absolute ("/x/y").
func (s *Service) resolve(name string) (real, virtual string, err error) {
	virtual = path.Clean("/" + strings.ReplaceAll(name, "\\", "/"))
	real = filepath.Join(s.root, filepath.FromSlash(virtual))
	if real != s.root && !strings.HasPrefix(real, s.root+string(filepath.Separator)) {
		return "", "", &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "path escapes the virtual root"}
	}
	return real, virtual, nil
}

// aclLevels expands "/a/b/c" to ["/a/b/c", "/a/b", "/a", "/"].
func aclLevels(virtual string) []string {
	out := []string{virtual}
	for virtual != "/" {
		virtual = path.Dir(virtual)
		out = append(out, virtual)
	}
	return out
}

// SetACL attaches a file ACL at the virtual path.
func (s *Service) SetACL(virtual string, kind AccessKind, a *acl.ACL) error {
	_, v, err := s.resolve(virtual)
	if err != nil {
		return err
	}
	var e Entry
	if _, err := s.srv.Store().GetJSON(aclBucket, v, &e); err != nil {
		return err
	}
	if kind == Read {
		e.Read = a
	} else {
		e.Write = a
	}
	return s.srv.Store().PutJSON(aclBucket, v, &e)
}

// GetACL returns the entry exactly at the virtual path, or nil.
func (s *Service) GetACL(virtual string) (*Entry, error) {
	_, v, err := s.resolve(virtual)
	if err != nil {
		return nil, err
	}
	var e Entry
	found, err := s.srv.Store().GetJSON(aclBucket, v, &e)
	if err != nil || !found {
		return nil, err
	}
	return &e, nil
}

// DeleteACL removes the entry at the virtual path.
func (s *Service) DeleteACL(virtual string) error {
	_, v, err := s.resolve(virtual)
	if err != nil {
		return err
	}
	return s.srv.Store().Delete(aclBucket, v)
}

// Authorize walks the file ACL hierarchy lowest-level-first (same
// semantics as method ACLs) for the requested access kind. Server
// administrators always have access; otherwise the default is deny.
func (s *Service) Authorize(virtual string, kind AccessKind, dn pki.DN) acl.Decision {
	if s.srv.VO().IsServerAdmin(dn) {
		return acl.Allow
	}
	store := s.srv.Store()
	for _, lvl := range aclLevels(virtual) {
		var e Entry
		found, err := store.GetJSON(aclBucket, lvl, &e)
		if err != nil || !found {
			continue
		}
		a := e.Read
		if kind == Write {
			a = e.Write
		}
		if a == nil {
			continue
		}
		if d := a.Evaluate(dn, s.srv.VO()); d != acl.NoOpinion {
			return d
		}
	}
	return acl.Deny
}

func (s *Service) authorizeOrFault(ctx *core.Context, virtual string, kind AccessKind) error {
	if s.Authorize(virtual, kind, ctx.DN) != acl.Allow {
		return &rpc.Fault{
			Code:    rpc.CodeAccessDenied,
			Message: fmt.Sprintf("%s access denied: %s for %q", kind, virtual, ctx.DN.String()),
		}
	}
	return nil
}

// Methods implements core.Service.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "file.read",
			Help:      "Read up to `length` bytes from `name` starting at `offset`; returns {data, eof, size}. length -1 reads to EOF (capped per call); eof tells chunk-iterating clients when to stop without a zero-byte probe.",
			Signature: []string{"struct string int int"},
			Public:    true,
			Handler:   s.read,
		},
		{
			Name:      "file.write",
			Help:      "Write binary data to `name` at `offset` (-1 appends), creating the file if needed; returns bytes written.",
			Signature: []string{"int string base64 int"},
			Public:    true,
			Handler:   s.write,
		},
		{
			Name:      "file.ls",
			Help:      "List a directory; returns an array of {name, size, is_dir, mtime} structs.",
			Signature: []string{"array string"},
			Public:    true,
			Handler:   s.ls,
		},
		{
			Name:      "file.stat",
			Help:      "Return {name, size, is_dir, mtime} for a path.",
			Signature: []string{"struct string"},
			Public:    true,
			Handler:   s.stat,
		},
		{
			Name:      "file.md5",
			Help:      "Return the hex MD5 digest of a file, for integrity checking.",
			Signature: []string{"string string"},
			Public:    true,
			Handler:   s.md5sum,
		},
		{
			Name:      "file.find",
			Help:      "Recursively find files under `dir` whose base name matches the glob `pattern`.",
			Signature: []string{"array string string"},
			Public:    true,
			Handler:   s.find,
		},
		{
			Name:      "file.size",
			Help:      "Return the size of a file in bytes.",
			Signature: []string{"int string"},
			Public:    true,
			Handler:   s.size,
		},
		{
			Name:      "file.mkdir",
			Help:      "Create a directory (and missing parents).",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.mkdir,
		},
		{
			Name:      "file.rm",
			Help:      "Remove a file or empty directory.",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.rm,
		},
		{
			Name:      "file.set_acl",
			Help:      "Attach a read or write ACL to a path. Parameters: path, kind (read|write), order, allow DNs, allow groups, deny DNs, deny groups. Administrators only.",
			Signature: []string{"boolean string string string array array array array"},
			Public:    true,
			Handler:   s.setACLMethod,
		},
		{
			Name:      "file.get_acl",
			Help:      "Return the ACL entry attached at a path. Administrators only.",
			Signature: []string{"struct string"},
			Public:    true,
			Handler:   s.getACLMethod,
		},
		{
			Name:      "file.del_acl",
			Help:      "Remove the ACL entry at a path. Administrators only.",
			Signature: []string{"boolean string"},
			Public:    true,
			Handler:   s.delACLMethod,
		},
	}
}

func (s *Service) read(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	offset, err := p.OptInt(1, 0)
	if err != nil {
		return nil, err
	}
	length, err := p.OptInt(2, -1)
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtual, Read); err != nil {
		return nil, err
	}
	f, err := os.Open(real)
	if err != nil {
		return nil, pathFault(err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, pathFault(err)
	}
	if offset > 0 {
		if _, err := f.Seek(int64(offset), io.SeekStart); err != nil {
			return nil, pathFault(err)
		}
	}
	if length < 0 || length > MaxReadChunk {
		length = MaxReadChunk
	}
	buf := make([]byte, length)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, pathFault(err)
	}
	// eof signals that this chunk reached the end of the file as it was
	// when read, so iterating clients (the job-artifact fetcher, the
	// federation pull-back) terminate without a zero-byte probe call.
	return map[string]any{
		"data": buf[:n],
		"eof":  int64(offset)+int64(n) >= fi.Size(),
		"size": int(fi.Size()),
	}, nil
}

func (s *Service) write(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	data, err := p.Bytes(1)
	if err != nil {
		return nil, err
	}
	offset, err := p.OptInt(2, -1)
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtual, Write); err != nil {
		return nil, err
	}
	flags := os.O_CREATE | os.O_WRONLY
	if offset < 0 {
		flags |= os.O_APPEND
	}
	f, err := os.OpenFile(real, flags, 0o644)
	if err != nil {
		return nil, pathFault(err)
	}
	defer f.Close()
	var n int
	if offset < 0 {
		n, err = f.Write(data)
	} else {
		n, err = f.WriteAt(data, int64(offset))
	}
	if err != nil {
		return nil, pathFault(err)
	}
	return n, nil
}

func statStruct(name string, fi fs.FileInfo) map[string]any {
	return map[string]any{
		"name":   name,
		"size":   int(fi.Size()),
		"is_dir": fi.IsDir(),
		"mtime":  fi.ModTime().UTC(),
	}
}

func (s *Service) ls(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.OptString(0, "/")
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtual, Read); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(real)
	if err != nil {
		return nil, pathFault(err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name() < entries[j].Name() })
	out := make([]any, 0, len(entries))
	for _, e := range entries {
		fi, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, statStruct(e.Name(), fi))
	}
	return out, nil
}

func (s *Service) stat(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtual, Read); err != nil {
		return nil, err
	}
	fi, err := os.Stat(real)
	if err != nil {
		return nil, pathFault(err)
	}
	return statStruct(virtual, fi), nil
}

func (s *Service) md5sum(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtual, Read); err != nil {
		return nil, err
	}
	f, err := os.Open(real)
	if err != nil {
		return nil, pathFault(err)
	}
	defer f.Close()
	h := md5.New()
	if _, err := io.Copy(h, f); err != nil {
		return nil, pathFault(err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

func (s *Service) find(ctx *core.Context, p core.Params) (any, error) {
	dir, err := p.String(0)
	if err != nil {
		return nil, err
	}
	pattern, err := p.OptString(1, "*")
	if err != nil {
		return nil, err
	}
	if _, badPattern := path.Match(pattern, "probe"); badPattern != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "bad glob pattern: " + pattern}
	}
	realDir, virtualDir, err := s.resolve(dir)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtualDir, Read); err != nil {
		return nil, err
	}
	var out []any
	err = filepath.WalkDir(realDir, func(real string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // skip unreadable entries
		}
		rel, relErr := filepath.Rel(s.root, real)
		if relErr != nil {
			return nil
		}
		virtual := "/" + filepath.ToSlash(rel)
		if d.IsDir() {
			// Authorization is hierarchical: an explicit deny below the
			// requested dir prunes the walk.
			if s.Authorize(virtual, Read, ctx.DN) != acl.Allow {
				if virtual != virtualDir {
					return fs.SkipDir
				}
			}
			return nil
		}
		if ok, _ := path.Match(pattern, d.Name()); ok {
			out = append(out, virtual)
		}
		return nil
	})
	if err != nil {
		return nil, pathFault(err)
	}
	return out, nil
}

func (s *Service) size(ctx *core.Context, p core.Params) (any, error) {
	v, err := s.stat(ctx, p)
	if err != nil {
		return nil, err
	}
	return v.(map[string]any)["size"], nil
}

func (s *Service) mkdir(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if err := s.authorizeOrFault(ctx, virtual, Write); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(real, 0o755); err != nil {
		return nil, pathFault(err)
	}
	return true, nil
}

func (s *Service) rm(ctx *core.Context, p core.Params) (any, error) {
	name, err := p.String(0)
	if err != nil {
		return nil, err
	}
	real, virtual, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	if virtual == "/" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "refusing to remove the virtual root"}
	}
	if err := s.authorizeOrFault(ctx, virtual, Write); err != nil {
		return nil, err
	}
	if err := os.Remove(real); err != nil {
		return nil, pathFault(err)
	}
	return true, nil
}

func (s *Service) setACLMethod(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	pathArg, err := p.String(0)
	if err != nil {
		return nil, err
	}
	kindStr, err := p.String(1)
	if err != nil {
		return nil, err
	}
	var kind AccessKind
	switch kindStr {
	case "read":
		kind = Read
	case "write":
		kind = Write
	default:
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "kind must be read or write"}
	}
	orderStr, err := p.String(2)
	if err != nil {
		return nil, err
	}
	order, err := acl.ParseOrder(orderStr)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: err.Error()}
	}
	a := &acl.ACL{Order: order}
	lists := []*[]string{&a.AllowDNs, &a.AllowGroups, &a.DenyDNs, &a.DenyGroups}
	for i, dst := range lists {
		if 3+i >= len(p) {
			break
		}
		vals, err := p.StringSlice(3 + i)
		if err != nil {
			return nil, err
		}
		*dst = vals
	}
	if err := s.SetACL(pathArg, kind, a); err != nil {
		return nil, err
	}
	return true, nil
}

func (s *Service) getACLMethod(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	pathArg, err := p.String(0)
	if err != nil {
		return nil, err
	}
	e, err := s.GetACL(pathArg)
	if err != nil {
		return nil, err
	}
	out := map[string]any{}
	if e != nil {
		if e.Read != nil {
			out["read"] = aclStruct(e.Read)
		}
		if e.Write != nil {
			out["write"] = aclStruct(e.Write)
		}
	}
	return out, nil
}

func aclStruct(a *acl.ACL) map[string]any {
	return map[string]any{
		"order":        a.Order.String(),
		"allow_dns":    a.AllowDNs,
		"allow_groups": a.AllowGroups,
		"deny_dns":     a.DenyDNs,
		"deny_groups":  a.DenyGroups,
	}
}

func (s *Service) delACLMethod(ctx *core.Context, p core.Params) (any, error) {
	if err := ctx.RequireServerAdmin(); err != nil {
		return nil, err
	}
	pathArg, err := p.String(0)
	if err != nil {
		return nil, err
	}
	if err := s.DeleteACL(pathArg); err != nil {
		return nil, err
	}
	return true, nil
}

// pathFault converts filesystem errors to application faults without
// leaking real (non-virtual) paths.
func pathFault(err error) error {
	msg := err.Error()
	if pe, ok := err.(*fs.PathError); ok {
		msg = fmt.Sprintf("%s %s: %v", pe.Op, filepath.Base(pe.Path), pe.Err)
	}
	return &rpc.Fault{Code: rpc.CodeApplication, Message: "file: " + msg}
}

// MountHTTP attaches the HTTP GET file server at prefix (e.g. "/files/").
// This is the zero-copy path: http.ServeContent hands the *os.File to the
// TCP connection via the io.ReaderFrom fast path (sendfile on Linux),
// minimizing CPU per byte exactly as the paper describes.
func (s *Service) MountHTTP(prefix string) {
	if !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	s.srv.Mux().HandleFunc(prefix, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "file server accepts GET", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, prefix[:len(prefix)-1])
		real, virtual, err := s.resolve(name)
		if err != nil {
			http.Error(w, "bad path", http.StatusBadRequest)
			return
		}
		dn, _ := s.srv.IdentifyRequest(r)
		if s.Authorize(virtual, Read, dn) != acl.Allow {
			// "GET requests return a file or an XML-encoded error message".
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.WriteHeader(http.StatusForbidden)
			fmt.Fprintf(w, "<error><code>403</code><message>read access denied: %s</message></error>", virtual)
			return
		}
		f, err := os.Open(real)
		if err != nil {
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, "<error><code>404</code><message>no such file: %s</message></error>", virtual)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil || fi.IsDir() {
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.WriteHeader(http.StatusForbidden)
			fmt.Fprintf(w, "<error><code>403</code><message>not a regular file: %s</message></error>", virtual)
			return
		}
		http.ServeContent(w, r, fi.Name(), fi.ModTime(), f)
	})
}

// Grant is a convenience for examples and tests: allow dns/groups the
// given access kind on a virtual path.
func (s *Service) Grant(virtual string, kind AccessKind, dns []string, groups []string) error {
	return s.SetACL(virtual, kind, &acl.ACL{AllowDNs: dns, AllowGroups: groups})
}

var _ core.Service = (*Service)(nil)
