package fileservice

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"clarens/internal/acl"
	"clarens/internal/pki"
)

// ArtifactNamespace is the virtual directory under which per-job output
// artifact trees are staged ("/jobs/<job-id>/stdout", ...). The job
// service writes the trees directly on disk; clients fetch them through
// the ordinary file.read / HTTP GET streaming paths, which is the whole
// point — bulky analysis results move over streaming transfers, not RPC
// envelopes (paper §2.3, and the GAE resource-management pattern of
// staging job sandboxes through the data service).
const ArtifactNamespace = "/jobs"

// ArtifactStore manages the per-job artifact namespace on behalf of the
// job service. It implements jobsvc.ArtifactStager without the job
// service importing this package (the interface is declared there).
type ArtifactStore struct {
	fs *Service
}

// EnableJobArtifacts initializes the artifact namespace: the backing
// directory is created and the whole namespace is locked down (read and
// write denied for everyone, admins excepted as always) so that only the
// per-job ACLs installed by Create open individual trees to their
// owners. Idempotent; called at assembly time when both the file and job
// services are enabled.
func (s *Service) EnableJobArtifacts() (*ArtifactStore, error) {
	real, _, err := s.resolve(ArtifactNamespace)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(real, 0o755); err != nil {
		return nil, fmt.Errorf("fileservice: artifact root: %w", err)
	}
	// Default-deny at the namespace level for both kinds: without a
	// lower-level opinion nothing under /jobs is readable or writable,
	// whatever grants exist at "/" (deployments often open "/" for data
	// distribution; job outputs must not ride along).
	lockdown := &acl.ACL{DenyDNs: []string{acl.EntryAny, acl.EntryAnonymous}}
	if err := s.SetACL(ArtifactNamespace, Read, lockdown); err != nil {
		return nil, err
	}
	if err := s.SetACL(ArtifactNamespace, Write, lockdown); err != nil {
		return nil, err
	}
	return &ArtifactStore{fs: s}, nil
}

// jobDir validates a job id and returns its real and virtual paths.
// Job ids are minted by the job service (digits, dash, hex), but the id
// also arrives from RPC surfaces and federation peers, so path metas are
// rejected outright rather than resolved.
func (a *ArtifactStore) jobDir(jobID string) (real, virtual string, err error) {
	if jobID == "" || strings.ContainsAny(jobID, "/\\") || strings.Contains(jobID, "..") {
		return "", "", fmt.Errorf("fileservice: invalid artifact job id %q", jobID)
	}
	virtual = ArtifactNamespace + "/" + jobID
	real, virtual, err = a.fs.resolve(virtual)
	return real, virtual, err
}

// Create makes (or re-uses) the artifact directory for a job and scopes
// its read ACL to the submitting owner: deny,allow with an explicit
// owner allow means the owner is admitted at this level before the
// namespace lockdown is consulted, everyone else is refused, and server
// admins bypass ACLs entirely in Authorize. The real directory and the
// virtual prefix ("/jobs/<id>") are returned.
func (a *ArtifactStore) Create(jobID string, owner pki.DN) (string, string, error) {
	real, virtual, err := a.jobDir(jobID)
	if err != nil {
		return "", "", err
	}
	if err := os.MkdirAll(real, 0o755); err != nil {
		return "", "", fmt.Errorf("fileservice: artifact dir: %w", err)
	}
	if !owner.IsZero() {
		scoped := &acl.ACL{
			Order:    acl.DenyAllow,
			AllowDNs: []string{owner.String()},
			DenyDNs:  []string{acl.EntryAny, acl.EntryAnonymous},
		}
		if err := a.fs.SetACL(virtual, Read, scoped); err != nil {
			return "", "", err
		}
	}
	return real, virtual, nil
}

// Remove deletes a job's artifact tree and its ACL entry.
func (a *ArtifactStore) Remove(jobID string) error {
	real, virtual, err := a.jobDir(jobID)
	if err != nil {
		return err
	}
	if err := os.RemoveAll(real); err != nil {
		return err
	}
	return a.fs.DeleteACL(virtual)
}

// List returns the job ids that currently have artifact trees on disk,
// for the job service's orphan sweep at recovery time.
func (a *ArtifactStore) List() ([]string, error) {
	real, _, err := a.fs.resolve(ArtifactNamespace)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(real)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	ids := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	return ids, nil
}

// Root returns the artifact namespace's real directory.
func (a *ArtifactStore) Root() string {
	return filepath.Join(a.fs.root, filepath.FromSlash(ArtifactNamespace))
}
