package pubsub

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("type=job.state owner='/O=grid/OU=People/CN=Alice A' job_id=j1")
	if err != nil {
		t.Fatal(err)
	}
	ev := &Event{Type: "job.state", Tags: map[string]string{
		"owner": "/O=grid/OU=People/CN=Alice A", "job_id": "j1",
	}}
	if !q.Match(ev) {
		t.Errorf("query %q should match %+v", q, ev)
	}
	ev.Tags["job_id"] = "j2"
	if q.Match(ev) {
		t.Error("different job_id must not match")
	}
}

func TestQueryTypeWildcardAndOr(t *testing.T) {
	q, err := ParseQuery("type=job.* AND state=done state=failed")
	if err != nil {
		t.Fatal(err)
	}
	for state, want := range map[string]bool{"done": true, "failed": true, "running": false} {
		ev := &Event{Type: "job.state", Tags: map[string]string{"state": state}}
		if got := q.Match(ev); got != want {
			t.Errorf("state=%s: match=%v, want %v", state, got, want)
		}
	}
	if q.Match(&Event{Type: "message.delivered", Tags: map[string]string{"state": "done"}}) {
		t.Error("type prefix must filter non-job events")
	}
}

func TestQueryModules(t *testing.T) {
	for query, want := range map[string]int{
		"type=job.state":                   1,
		"service=job":                      1,
		"type=job.* service=message":       2,
		"owner=x":                          0, // unpinnable: no module term
		"type=*":                           0, // unpinnable: wildcard before the dot
		"type=job.state type=message.*":    2,
		"type=job.state type=job.artifact": 1,
	} {
		q, err := ParseQuery(query)
		if err != nil {
			t.Fatalf("%q: %v", query, err)
		}
		if got := len(q.Modules()); got != want {
			t.Errorf("%q: %d modules (%v), want %d", query, got, q.Modules(), want)
		}
	}
}

func TestPublishDelivers(t *testing.T) {
	b := New()
	defer b.Close()
	sub := b.Subscribe("t", func(ev *Event) bool { return ev.Type == "a" }, 4)
	defer sub.Cancel()
	b.Publish(Event{Type: "a"})
	b.Publish(Event{Type: "b"})
	b.Publish(Event{Type: "a"})
	var seqs []uint64
	for i := 0; i < 2; i++ {
		select {
		case ev := <-sub.Events():
			if ev.Type != "a" {
				t.Fatalf("delivered %q, want only type a", ev.Type)
			}
			seqs = append(seqs, ev.Seq)
		case <-time.After(time.Second):
			t.Fatal("timed out waiting for delivery")
		}
	}
	if len(seqs) != 2 || seqs[1] <= seqs[0] {
		t.Errorf("sequence numbers not monotonic: %v", seqs)
	}
}

// A slow subscriber loses oldest events, sees a lagged marker with the
// drop count, and the publisher never blocks.
func TestSlowSubscriberOverflow(t *testing.T) {
	b := New()
	defer b.Close()
	sub := b.Subscribe("slow", nil, 4)
	defer sub.Cancel()
	// Publish far more than the buffer holds; Publish must return
	// promptly every time even though nothing is draining.
	const n = 50
	done := make(chan struct{})
	go func() {
		for i := 0; i < n; i++ {
			b.Publish(Event{Type: "e", Tags: map[string]string{"i": fmt.Sprint(i)}})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
	var got []Event
	var lagged *Event
	timeout := time.After(2 * time.Second)
drain:
	for {
		select {
		case ev := <-sub.Events():
			if ev.Type == TypeLagged {
				ev := ev
				lagged = &ev
				break drain
			}
			got = append(got, ev)
		case <-timeout:
			break drain
		}
	}
	if lagged == nil {
		t.Fatalf("no lagged marker after overflow (received %d events)", len(got))
	}
	dropped, _ := lagged.Data["dropped"].(uint64)
	if dropped == 0 {
		t.Fatal("lagged marker carries no drop count")
	}
	if sub.Dropped() == 0 {
		t.Error("Dropped() should report the loss")
	}
	if int(dropped)+len(got) > n {
		t.Errorf("dropped %d + delivered %d exceeds published %d", dropped, len(got), n)
	}
}

// Cancelling a subscription while publishers are mid-flight must not
// panic (send on closed channel) or deadlock. Run with -race.
func TestUnsubscribeDuringPublish(t *testing.T) {
	b := New()
	defer b.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish(Event{Type: "e"})
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		sub := b.Subscribe("churn", nil, 2)
		go func() {
			for range sub.Events() {
			}
		}()
		sub.Cancel()
	}
	close(stop)
	wg.Wait()
}

func TestCloseEndsSubscriptions(t *testing.T) {
	b := New()
	sub := b.Subscribe("t", nil, 4)
	b.Publish(Event{Type: "e"})
	b.Close()
	// Channel must drain the buffered event then close.
	deadline := time.After(time.Second)
	sawEvent := false
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				if !sawEvent {
					t.Error("buffered event lost on Close")
				}
				if b.Subscribers() != 0 {
					t.Errorf("%d subscribers after Close", b.Subscribers())
				}
				// Publish after Close is a no-op, not a panic.
				b.Publish(Event{Type: "late"})
				return
			}
			if ev.Type == "e" {
				sawEvent = true
			}
		case <-deadline:
			t.Fatal("subscription channel never closed")
		}
	}
}

func TestSubscribeMatchFilter(t *testing.T) {
	b := New()
	defer b.Close()
	calls := 0
	sub := b.Subscribe("f", func(ev *Event) bool { calls++; return false }, 4)
	defer sub.Cancel()
	b.Publish(Event{Type: "x"})
	if calls != 1 {
		t.Errorf("match called %d times, want 1", calls)
	}
	select {
	case ev := <-sub.Events():
		t.Errorf("filtered event delivered: %+v", ev)
	case <-time.After(20 * time.Millisecond):
	}
}
