// Package pubsub implements the server's typed event bus: the push
// primitive behind the /ws endpoint that replaces the polling surfaces
// (message.wait long-polls, federation job.status batch polls, MonALISA
// gauge scrapes). The shape follows the tendermint pubsub/events model
// referenced in ROADMAP: typed events carrying key/value tags, matched
// by per-subscriber queries.
//
// Delivery contract: publishers NEVER block. Every subscription owns a
// bounded buffer; when a slow subscriber falls behind, the oldest
// buffered events are dropped to make room and a synthetic
// pubsub.lagged marker event (Data["dropped"] = count) is enqueued at
// the gap, so consumers always learn that a gap exists.
package pubsub

import (
	"sync"
	"sync/atomic"
	"time"

	"clarens/internal/telemetry"
)

// TypeLagged is the synthetic event type injected into a subscriber's
// stream after drop-oldest overflow. Its Data["dropped"] carries how
// many events were discarded since the previous marker; its Seq is 0
// (it is per-subscriber, not a bus event).
const TypeLagged = "pubsub.lagged"

// DefaultBuffer is the per-subscription buffer size used when
// Subscribe is called with buf <= 0.
const DefaultBuffer = 64

// Event is one bus event. Tags are flat key/value pairs used for query
// matching and ACL scoping (conventionally: service, owner, job_id,
// state, to, from); Data is the free-form payload delivered to
// subscribers. Seq is a bus-wide monotonic sequence number assigned at
// publish time — clients use it to deduplicate across reconnects.
type Event struct {
	Seq   uint64            `json:"seq,omitempty"`
	Type  string            `json:"type"`
	Time  time.Time         `json:"time"`
	Trace string            `json:"trace,omitempty"`
	Tags  map[string]string `json:"tags,omitempty"`
	Data  map[string]any    `json:"data,omitempty"`
}

// Bus fans events out to query-matched subscriptions. The zero value is
// not usable; call New.
type Bus struct {
	mu     sync.RWMutex
	subs   map[*Subscription]struct{}
	closed bool
	seq    atomic.Uint64

	// Telemetry (nil until Instrument).
	published *telemetry.Counter
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
}

// New creates an empty bus.
func New() *Bus {
	return &Bus{subs: map[*Subscription]struct{}{}}
}

// Instrument registers the bus's counters and subscriber gauge on reg.
func (b *Bus) Instrument(reg *telemetry.Registry) {
	b.published = reg.Counter("clarens.pubsub.published",
		"Events published to the event bus.")
	b.delivered = reg.Counter("clarens.pubsub.delivered",
		"Events delivered into subscriber buffers.")
	b.dropped = reg.Counter("clarens.pubsub.dropped",
		"Events dropped from slow subscriber buffers (drop-oldest).")
	reg.RegisterGauge("clarens.pubsub.subscribers",
		"Active event bus subscriptions.",
		func() float64 { return float64(b.Subscribers()) })
}

// Subscribers reports the number of active subscriptions.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Seq returns the sequence number of the most recently published event.
func (b *Bus) Seq() uint64 { return b.seq.Load() }

// Publish assigns ev a sequence number and offers it to every matching
// subscription. It never blocks: full subscriber buffers shed their
// oldest event instead (see package comment). Publishing on a closed
// bus is a no-op.
func (b *Bus) Publish(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return
	}
	ev.Seq = b.seq.Add(1)
	if b.published != nil {
		b.published.Inc()
	}
	for sub := range b.subs {
		if sub.match != nil && !sub.match(&ev) {
			continue
		}
		delivered, droppedN := sub.offer(ev)
		if delivered && b.delivered != nil {
			b.delivered.Inc()
		}
		for i := 0; i < droppedN; i++ {
			if b.dropped != nil {
				b.dropped.Inc()
			}
		}
	}
}

// Subscribe registers a new subscription. match may be nil (receive
// everything); name labels the subscription for diagnostics; buf <= 0
// selects DefaultBuffer. On a closed bus the returned subscription's
// channel is already closed.
func (b *Bus) Subscribe(name string, match func(*Event) bool, buf int) *Subscription {
	if buf <= 0 {
		buf = DefaultBuffer
	}
	if buf < 2 {
		buf = 2 // room for an event plus its lagged marker
	}
	s := &Subscription{bus: b, name: name, match: match, ch: make(chan Event, buf)}
	b.mu.Lock()
	if b.closed {
		s.closed = true
		close(s.ch)
	} else {
		b.subs[s] = struct{}{}
	}
	b.mu.Unlock()
	return s
}

// Close shuts the bus down: all subscription channels are closed and
// further publishes are dropped.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = map[*Subscription]struct{}{}
	b.mu.Unlock()
	for _, s := range subs {
		s.closeCh()
	}
}

// Subscription is one consumer's view of the bus. Read events from
// Events(); call Cancel when done (the channel is then closed).
type Subscription struct {
	bus   *Bus
	name  string
	match func(*Event) bool

	mu          sync.Mutex
	ch          chan Event
	closed      bool
	pendingLag  uint64 // drops not yet announced by a lagged marker
	droppedTot  uint64
	deliveredTo uint64
}

// Events returns the subscription's delivery channel. It is closed by
// Cancel and by Bus.Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Name returns the label given at Subscribe time.
func (s *Subscription) Name() string { return s.name }

// Dropped reports how many events this subscription has shed.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.droppedTot
}

// Cancel removes the subscription from the bus and closes its channel.
// Safe to call multiple times and concurrently with Publish.
func (s *Subscription) Cancel() {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
	s.closeCh()
}

func (s *Subscription) closeCh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}

// offer enqueues ev without ever blocking, shedding the oldest buffered
// events when full. The lagged marker announcing a gap is enqueued at
// the gap itself, so a consumer that drains after the burst still sees
// it even if nothing is published again. It reports whether ev itself
// was delivered and how many real events were newly dropped. Serialized
// with closeCh by s.mu, so Publish can never send on a closed channel.
func (s *Subscription) offer(ev Event) (delivered bool, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, 0
	}
	// Fast path: no unannounced gap and room in the buffer.
	if s.pendingLag == 0 {
		select {
		case s.ch <- ev:
			s.deliveredTo++
			return true, 0
		default:
		}
	}
	// Overflow (or an unannounced gap from a pathologically small
	// buffer): shed oldest entries until there is room for a lagged
	// marker plus the event. A shed marker folds its count into the new
	// one instead of counting as a lost event — its drops were already
	// tallied when they happened.
	lag := s.pendingLag
	for len(s.ch) > 0 && len(s.ch) > cap(s.ch)-2 {
		select {
		case old := <-s.ch:
			if old.Type == TypeLagged {
				if n, ok := old.Data["dropped"].(uint64); ok {
					lag += n
				}
			} else {
				lag++
				dropped++
			}
		default:
			// Consumer drained it first; room exists now.
		}
	}
	if lag > 0 {
		select {
		case s.ch <- Event{Type: TypeLagged, Time: ev.Time, Data: map[string]any{"dropped": lag}}:
			lag = 0
		default:
		}
	}
	select {
	case s.ch <- ev:
		s.deliveredTo++
		delivered = true
	default:
		lag++
		dropped++
	}
	s.pendingLag = lag
	s.droppedTot += uint64(dropped)
	return delivered, dropped
}
