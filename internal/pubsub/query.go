// Event subscription queries. The language is a conjunction of
// key=value terms separated by whitespace (an optional AND keyword is
// accepted and ignored):
//
//	type=job.state owner='/O=x/OU=People/CN=Joe User'
//	type=job.* AND job_id=j-42
//	service=message to='/O=x/CN=Me'
//
// The reserved key "type" matches the event type; every other key
// matches a tag. Values may be single-quoted to include spaces (DNs).
// A trailing '*' in a value is a prefix wildcard ("job.*" matches
// job.state and job.artifact). Repeating a key ORs its values; distinct
// keys AND together. An event matches when every keyed constraint is
// satisfied.
package pubsub

import (
	"fmt"
	"sort"
	"strings"
)

// Query is a parsed subscription filter.
type Query struct {
	raw   string
	types []string            // any-of patterns for the event type
	tags  map[string][]string // key -> any-of patterns
}

// ParseQuery parses the query language described in the package
// comment. The empty query matches everything (admin-only over /ws).
func ParseQuery(s string) (*Query, error) {
	q := &Query{raw: strings.TrimSpace(s), tags: map[string][]string{}}
	rest := q.raw
	for {
		rest = strings.TrimLeft(rest, " \t\n")
		if rest == "" {
			return q, nil
		}
		// Optional AND connective between terms.
		if len(rest) >= 3 && strings.EqualFold(rest[:3], "and") &&
			(len(rest) == 3 || rest[3] == ' ' || rest[3] == '\t') {
			rest = rest[3:]
			continue
		}
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("pubsub: bad query term %q (want key=value)", firstToken(rest))
		}
		key := rest[:eq]
		if strings.ContainsAny(key, " \t'") {
			return nil, fmt.Errorf("pubsub: bad query key %q", key)
		}
		rest = rest[eq+1:]
		var val string
		if strings.HasPrefix(rest, "'") {
			end := strings.IndexByte(rest[1:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("pubsub: unterminated quote in query %q", s)
			}
			val = rest[1 : 1+end]
			rest = rest[end+2:]
		} else {
			n := strings.IndexAny(rest, " \t\n")
			if n < 0 {
				val, rest = rest, ""
			} else {
				val, rest = rest[:n], rest[n:]
			}
		}
		if val == "" {
			return nil, fmt.Errorf("pubsub: empty value for query key %q", key)
		}
		if key == "type" {
			q.types = append(q.types, val)
		} else {
			q.tags[key] = append(q.tags[key], val)
		}
	}
}

func firstToken(s string) string {
	if n := strings.IndexAny(s, " \t\n"); n >= 0 {
		return s[:n]
	}
	return s
}

// Match reports whether ev satisfies every constraint of the query.
// The lagged marker always matches: a subscriber must see its own gap
// announcements regardless of filter.
func (q *Query) Match(ev *Event) bool {
	if ev.Type == TypeLagged {
		return true
	}
	if len(q.types) > 0 && !anyPattern(q.types, ev.Type) {
		return false
	}
	for key, pats := range q.tags {
		v, ok := ev.Tags[key]
		if !ok || !anyPattern(pats, v) {
			return false
		}
	}
	return true
}

func anyPattern(pats []string, v string) bool {
	for _, p := range pats {
		if matchPattern(p, v) {
			return true
		}
	}
	return false
}

func matchPattern(pat, v string) bool {
	if strings.HasSuffix(pat, "*") {
		return strings.HasPrefix(v, pat[:len(pat)-1])
	}
	return pat == v
}

// String returns the original query text.
func (q *Query) String() string { return q.raw }

// Modules returns the distinct service modules the query provably
// constrains itself to — the segment before the first '.' of each type
// pattern plus any exact service= tag values. A pattern that cannot
// pin down its module (wildcard inside the first segment, or no type /
// service constraint at all) contributes nothing; callers treat an
// empty result as "unscoped" and reserve such queries for admins.
func (q *Query) Modules() []string {
	set := map[string]bool{}
	for _, t := range q.types {
		seg := t
		if n := strings.IndexByte(seg, '.'); n >= 0 {
			seg = seg[:n]
		}
		if seg == "" || strings.Contains(seg, "*") {
			return nil // one unpinned pattern makes the whole query unscoped
		}
		set[seg] = true
	}
	for _, v := range q.tags["service"] {
		if strings.Contains(v, "*") {
			return nil
		}
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}
