package pubsub

// Frame is the JSON message exchanged over the /ws endpoint, shared by
// the server handler and the Go client.
//
// Client -> server ops: "subscribe" (ID + Query), "unsubscribe" (ID),
// "ping" (ID optional).
// Server -> client ops: "subscribed"/"unsubscribed" (ack, echoes ID),
// "event" (ID + Event), "lagged" (ID + Dropped: the subscription shed
// events), "pong", "error" (Error, echoes ID when known), and
// "closing" (server shutdown; reconnect later).
type Frame struct {
	Op      string `json:"op"`
	ID      string `json:"id,omitempty"`
	Query   string `json:"query,omitempty"`
	Event   *Event `json:"event,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Frame op values.
const (
	OpSubscribe    = "subscribe"
	OpUnsubscribe  = "unsubscribe"
	OpPing         = "ping"
	OpSubscribed   = "subscribed"
	OpUnsubscribed = "unsubscribed"
	OpPong         = "pong"
	OpEvent        = "event"
	OpLagged       = "lagged"
	OpError        = "error"
	OpClosing      = "closing"
)
