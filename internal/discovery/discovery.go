// Package discovery implements Clarens dynamic service discovery (paper
// §2.4, Figure 3): servers publish service descriptions through the
// MonALISA station network; discovery servers aggregate the
// publish/subscribe stream into a local database and answer service
// queries from that cache "far more rapidly" than querying the network.
//
// "Within a global distributed service environment services will appear,
// disappear, and be moved in an unpredictable manner" — entries carry
// expiry times and are refreshed by periodic republication; lookups are
// location-independent (clients query, then bind to the returned URL in
// real time).
package discovery

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"clarens/internal/core"
	"clarens/internal/db"
	"clarens/internal/monalisa"
	"clarens/internal/rpc"
)

// discoveryFarm is the GLUE farm name under which Clarens service
// records travel on the MonALISA network.
const discoveryFarm = "clarens-services"

// entryTag is the record tag carrying the serialized Entry.
const entryTag = "entry"

const bucket = "discovery"

// DefaultTTL is how long a published entry stays valid without refresh.
const DefaultTTL = 5 * time.Minute

// Entry describes one service on one server.
type Entry struct {
	Server  string    `json:"server"`  // server instance name
	URL     string    `json:"url"`     // RPC endpoint URL
	Service string    `json:"service"` // module name, e.g. "file"
	Methods []string  `json:"methods"`
	Version string    `json:"version"`
	Expires time.Time `json:"expires"`
}

// Key is the cache key for the entry.
func (e *Entry) Key() string { return e.Server + "/" + e.Service }

// record converts the entry to its MonALISA wire form.
func (e *Entry) record() (*monalisa.Record, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	return &monalisa.Record{
		Farm:    discoveryFarm,
		Cluster: e.Server,
		Node:    e.Service,
		Tags:    map[string]string{entryTag: string(data)},
	}, nil
}

// entryFromRecord parses an Entry out of a discovery record; nil if the
// record is not a discovery record.
func entryFromRecord(rec *monalisa.Record) *Entry {
	if rec.Farm != discoveryFarm {
		return nil
	}
	raw, ok := rec.Tags[entryTag]
	if !ok {
		return nil
	}
	var e Entry
	if err := json.Unmarshal([]byte(raw), &e); err != nil {
		return nil
	}
	if e.Server == "" || e.Service == "" || e.URL == "" {
		return nil
	}
	return &e
}

// Aggregator subscribes to a station server and mirrors discovery entries
// into a local database bucket — the Figure 3 JClarens optimization
// ("the JClarens server becomes a fully fledged JINI client, aggregating
// discovery information from the JINI network ... able to respond to
// service searches far more rapidly by using the local database").
type Aggregator struct {
	store  *db.Store
	mu     sync.Mutex
	cancel func()
	done   chan struct{}
}

// NewAggregator attaches to a station's subscription feed.
func NewAggregator(store *db.Store, station *monalisa.Station) *Aggregator {
	ag := &Aggregator{store: store, done: make(chan struct{})}
	ch, cancel := station.Subscribe(func(r *monalisa.Record) bool {
		return r.Farm == discoveryFarm
	})
	ag.cancel = cancel
	go func() {
		defer close(ag.done)
		for rec := range ch {
			if e := entryFromRecord(&rec); e != nil {
				ag.store.PutJSON(bucket, e.Key(), e)
			}
		}
	}()
	// Seed the cache with the station's current snapshot so a restarted
	// aggregator does not wait for the next republication cycle.
	for _, rec := range station.Query(discoveryFarm, "", "") {
		if e := entryFromRecord(&rec); e != nil {
			ag.store.PutJSON(bucket, e.Key(), e)
		}
	}
	return ag
}

// Purge drops expired entries from the cache; returns how many.
func (ag *Aggregator) Purge() int {
	now := time.Now()
	n := 0
	for _, key := range ag.store.Keys(bucket, "") {
		var e Entry
		found, err := ag.store.GetJSON(bucket, key, &e)
		if err != nil || !found {
			continue
		}
		if now.After(e.Expires) {
			if ag.store.Delete(bucket, key) == nil {
				n++
			}
		}
	}
	return n
}

// Close detaches from the station.
func (ag *Aggregator) Close() {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	if ag.cancel != nil {
		ag.cancel()
		ag.cancel = nil
		<-ag.done
	}
}

// Service is the Clarens discovery service: it publishes the local
// server's services to the station network and answers queries from the
// local aggregated cache.
type Service struct {
	srv        *core.Server
	serverName string
	publisher  *monalisa.Publisher
	ttl        time.Duration

	mu         sync.Mutex
	stopPeriod func()
}

// New creates the discovery service. publisher may be nil for servers
// that only *query* (pure clients of the discovery network).
func New(srv *core.Server, serverName string, publisher *monalisa.Publisher) *Service {
	return &Service{srv: srv, serverName: serverName, publisher: publisher, ttl: DefaultTTL}
}

// Name implements core.Service.
func (s *Service) Name() string { return "discovery" }

// Methods implements core.Service.
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "discovery.register",
			Help:      "Publish every locally registered service module to the discovery network; returns the number of entries published.",
			Signature: []string{"int string"},
			Handler:   s.register,
		},
		{
			Name:      "discovery.deregister",
			Help:      "Publish zero-TTL entries for this server, removing it from caches at the next purge.",
			Signature: []string{"int"},
			Handler:   s.deregister,
		},
		{
			Name:      "discovery.find",
			Help:      "Find services by name pattern (glob on \"server/service\"); returns entries {server, url, service, methods, version, expires}.",
			Signature: []string{"array string"},
			Public:    true,
			Handler:   s.find,
		},
		{
			Name:      "discovery.servers",
			Help:      "List the distinct server names present in the discovery cache.",
			Signature: []string{"array"},
			Public:    true,
			Handler:   s.servers,
		},
		{
			Name:      "discovery.methods",
			Help:      "Return the methods advertised for a server/service entry.",
			Signature: []string{"array string string"},
			Public:    true,
			Handler:   s.methodsOf,
		},
	}
}

// Entries builds the discovery entries for the local server's services.
func (s *Service) Entries(baseURL string) []Entry {
	byService := map[string][]string{}
	for _, m := range s.srv.MethodNames() {
		mod := m
		if i := strings.IndexByte(m, '.'); i >= 0 {
			mod = m[:i]
		}
		byService[mod] = append(byService[mod], m)
	}
	now := time.Now()
	entries := make([]Entry, 0, len(byService))
	for svc, methods := range byService {
		sort.Strings(methods)
		entries = append(entries, Entry{
			Server:  s.serverName,
			URL:     baseURL,
			Service: svc,
			Methods: methods,
			Version: core.Version,
			Expires: now.Add(s.ttl),
		})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Service < entries[j].Service })
	return entries
}

// PublishAll publishes every local service entry; returns the count.
func (s *Service) PublishAll(baseURL string) (int, error) {
	if s.publisher == nil {
		return 0, fmt.Errorf("discovery: this server has no publisher configured")
	}
	entries := s.Entries(baseURL)
	for i := range entries {
		rec, err := entries[i].record()
		if err != nil {
			return i, err
		}
		if err := s.publisher.Publish(rec); err != nil {
			return i, err
		}
	}
	return len(entries), nil
}

// StartPeriodicPublish republishes every interval until StopPeriodic or
// server shutdown — the refresh that keeps entries alive past their TTL.
func (s *Service) StartPeriodicPublish(baseURL string, interval time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopPeriod != nil {
		return
	}
	stop := make(chan struct{})
	s.stopPeriod = func() { close(stop) }
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				s.PublishAll(baseURL)
			case <-stop:
				return
			}
		}
	}()
}

// StopPeriodic halts periodic publication.
func (s *Service) StopPeriodic() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stopPeriod != nil {
		s.stopPeriod()
		s.stopPeriod = nil
	}
}

func (s *Service) register(ctx *core.Context, p core.Params) (any, error) {
	baseURL, err := p.OptString(0, s.srv.URL())
	if err != nil {
		return nil, err
	}
	if baseURL == "" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "discovery: server has no URL; pass one explicitly"}
	}
	n, err := s.PublishAll(baseURL)
	if err != nil {
		return nil, err
	}
	return n, nil
}

func (s *Service) deregister(ctx *core.Context, p core.Params) (any, error) {
	if s.publisher == nil {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "discovery: no publisher configured"}
	}
	entries := s.Entries("")
	n := 0
	for i := range entries {
		entries[i].URL = "gone://" + s.serverName
		entries[i].Expires = time.Now().Add(-time.Second)
		rec, err := entries[i].record()
		if err != nil {
			continue
		}
		if s.publisher.Publish(rec) == nil {
			n++
		}
	}
	return n, nil
}

// Find answers from the local cache; pattern is a glob over
// "server/service" ("*" finds everything, "*/file" finds file services).
func (s *Service) Find(pattern string) ([]Entry, error) {
	if pattern == "" {
		pattern = "*"
	}
	if !strings.Contains(pattern, "/") {
		pattern = "*/" + pattern
	}
	now := time.Now()
	var out []Entry
	for _, key := range s.srv.Store().Keys(bucket, "") {
		ok, err := globMatch(pattern, key)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		var e Entry
		found, err := s.srv.Store().GetJSON(bucket, key, &e)
		if err != nil || !found {
			continue
		}
		if now.After(e.Expires) {
			continue
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out, nil
}

// PeersFor returns the live cache entries advertising the named service
// on servers other than excludeServer — the typed peer lookup the
// federated meta-scheduler binds to ("within a global distributed service
// environment services will appear, disappear, and be moved"; peers are
// whatever the discovery network currently knows). Entries carry their
// TTL expiry, so callers can drop peers whose records were not refreshed.
func (s *Service) PeersFor(service, excludeServer string) []Entry {
	entries, err := s.Find("*/" + service)
	if err != nil {
		return nil
	}
	out := entries[:0]
	for _, e := range entries {
		if e.Server == excludeServer {
			continue
		}
		out = append(out, e)
	}
	return out
}

// NOTE: there is intentionally no "does the cache know this URL?"
// predicate here. The cache is fed by an unauthenticated UDP station
// network — presence in it is not trust, and a predicate shaped like one
// invites being wired into security gates (delegation issuer trust lives
// in an explicit operator allowlist; see clarens.Config.FederationIssuers).

// globMatch is path.Match with '/' treated as an ordinary character so a
// single '*' can span server and service names.
func globMatch(pattern, name string) (bool, error) {
	return matchSegments(pattern, name)
}

func matchSegments(pattern, name string) (bool, error) {
	// Simple glob: '*' matches any run, '?' one char.
	var match func(p, n string) bool
	match = func(p, n string) bool {
		for len(p) > 0 {
			switch p[0] {
			case '*':
				for len(p) > 0 && p[0] == '*' {
					p = p[1:]
				}
				if p == "" {
					return true
				}
				for i := 0; i <= len(n); i++ {
					if match(p, n[i:]) {
						return true
					}
				}
				return false
			case '?':
				if n == "" {
					return false
				}
				p, n = p[1:], n[1:]
			default:
				if n == "" || p[0] != n[0] {
					return false
				}
				p, n = p[1:], n[1:]
			}
		}
		return n == ""
	}
	return match(pattern, name), nil
}

func (s *Service) find(ctx *core.Context, p core.Params) (any, error) {
	pattern, err := p.OptString(0, "*")
	if err != nil {
		return nil, err
	}
	entries, err := s.Find(pattern)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(entries))
	for i, e := range entries {
		out[i] = map[string]any{
			"server":  e.Server,
			"url":     e.URL,
			"service": e.Service,
			"methods": e.Methods,
			"version": e.Version,
			"expires": e.Expires.UTC(),
		}
	}
	return out, nil
}

func (s *Service) servers(ctx *core.Context, p core.Params) (any, error) {
	entries, err := s.Find("*")
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	for _, e := range entries {
		if !seen[e.Server] {
			seen[e.Server] = true
			out = append(out, e.Server)
		}
	}
	sort.Strings(out)
	return out, nil
}

func (s *Service) methodsOf(ctx *core.Context, p core.Params) (any, error) {
	server, err := p.String(0)
	if err != nil {
		return nil, err
	}
	service, err := p.String(1)
	if err != nil {
		return nil, err
	}
	var e Entry
	found, err := s.srv.Store().GetJSON(bucket, server+"/"+service, &e)
	if err != nil {
		return nil, err
	}
	if !found || time.Now().After(e.Expires) {
		return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: fmt.Sprintf("discovery: no live entry for %s/%s", server, service)}
	}
	return e.Methods, nil
}

var _ core.Service = (*Service)(nil)
