package discovery

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"clarens/internal/core"
	"clarens/internal/monalisa"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

var adminDN = pki.MustParseDN("/O=caltech/OU=People/CN=Admin")

// fixture: one station, one publishing server, one aggregating server.
type fixture struct {
	station *monalisa.Station
	srv     *core.Server // the server whose services are published
	svc     *Service
	agg     *Aggregator
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	station, err := monalisa.NewStation("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { station.Close() })

	srv, err := core.NewServer(core.Config{AdminDNs: []string{adminDN.String()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	pub, err := monalisa.NewPublisher(station.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pub.Close() })

	svc := New(srv, "tier2.caltech.edu", pub)
	if err := srv.Register(svc); err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(srv.Store(), station)
	t.Cleanup(agg.Close)
	return &fixture{station: station, srv: srv, svc: svc, agg: agg}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestEntriesGroupMethodsByService(t *testing.T) {
	f := newFixture(t)
	entries := f.svc.Entries("http://host:8080")
	// system, vo, acl, discovery modules are registered in the fixture.
	byName := map[string]Entry{}
	for _, e := range entries {
		byName[e.Service] = e
	}
	for _, want := range []string{"system", "vo", "acl", "discovery"} {
		e, ok := byName[want]
		if !ok {
			t.Errorf("service %q missing from entries", want)
			continue
		}
		if len(e.Methods) == 0 || e.URL != "http://host:8080" || e.Server != "tier2.caltech.edu" {
			t.Errorf("entry = %+v", e)
		}
	}
}

func TestPublishFlowsThroughStationToCache(t *testing.T) {
	f := newFixture(t)
	n, err := f.svc.PublishAll("http://tier2.caltech.edu:8080")
	if err != nil {
		t.Fatal(err)
	}
	if n < 4 {
		t.Fatalf("published %d entries", n)
	}
	waitFor(t, "aggregated cache", func() bool {
		entries, _ := f.svc.Find("*")
		return len(entries) >= 4
	})
	entries, err := f.svc.Find("*/file")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Error("no file service was registered; pattern should match nothing")
	}
	entries, _ = f.svc.Find("*/system")
	if len(entries) != 1 || entries[0].URL != "http://tier2.caltech.edu:8080" {
		t.Errorf("find(*/system) = %+v", entries)
	}
}

func TestFindPatterns(t *testing.T) {
	f := newFixture(t)
	f.svc.PublishAll("http://x")
	waitFor(t, "cache", func() bool { e, _ := f.svc.Find("*"); return len(e) >= 4 })

	cases := map[string]int{
		"*":                   0,  // filled below: all entries
		"system":              1,  // bare pattern implies */
		"*/v?":                1,  // vo
		"tier2.caltech.edu/*": 0,  // all, filled below
		"other.server/*":      -1, // zero matches (placeholder)
	}
	all, _ := f.svc.Find("*")
	cases["*"] = len(all)
	cases["tier2.caltech.edu/*"] = len(all)
	cases["other.server/*"] = 0
	for pattern, want := range cases {
		got, err := f.svc.Find(pattern)
		if err != nil {
			t.Fatalf("Find(%q): %v", pattern, err)
		}
		if len(got) != want {
			t.Errorf("Find(%q) = %d entries, want %d", pattern, len(got), want)
		}
	}
}

func TestExpiredEntriesInvisibleAndPurged(t *testing.T) {
	f := newFixture(t)
	f.svc.ttl = 10 * time.Millisecond
	f.svc.PublishAll("http://x")
	waitFor(t, "cache fill", func() bool {
		return f.srv.Store().Len("discovery") >= 4
	})
	time.Sleep(20 * time.Millisecond)
	entries, _ := f.svc.Find("*")
	if len(entries) != 0 {
		t.Errorf("expired entries served: %+v", entries)
	}
	if n := f.agg.Purge(); n < 4 {
		t.Errorf("Purge = %d", n)
	}
	if f.srv.Store().Len("discovery") != 0 {
		t.Error("purge left entries behind")
	}
}

func TestServiceMethodsRPC(t *testing.T) {
	f := newFixture(t)
	// discovery.register / find / servers / methods via the dispatch
	// pipeline, as a client would call them.
	sess, _ := f.srv.NewSessionFor(adminDN)
	callCtx := func(method string, params ...any) *rpc.Response {
		httpReq := httptest.NewRequest(http.MethodPost, "/rpc", nil)
		httpReq.Header.Set(core.SessionHeader, sess.ID)
		return f.srv.Dispatch(httpReq, "test", &rpc.Request{Method: method, Params: params})
	}
	resp := callCtx("discovery.register", "http://tier2:8080")
	if resp.Fault != nil {
		t.Fatalf("register: %v", resp.Fault)
	}
	waitFor(t, "cache", func() bool { e, _ := f.svc.Find("*"); return len(e) >= 4 })

	resp = callCtx("discovery.servers")
	if resp.Fault != nil {
		t.Fatalf("servers: %v", resp.Fault)
	}
	if !rpc.Equal(resp.Result, []any{"tier2.caltech.edu"}) {
		t.Errorf("servers = %#v", resp.Result)
	}
	resp = callCtx("discovery.find", "*/system")
	if resp.Fault != nil {
		t.Fatalf("find: %v", resp.Fault)
	}
	list := resp.Result.([]any)
	if len(list) != 1 {
		t.Fatalf("find = %#v", list)
	}
	entry := list[0].(map[string]any)
	if entry["url"] != "http://tier2:8080" {
		t.Errorf("entry = %#v", entry)
	}
	resp = callCtx("discovery.methods", "tier2.caltech.edu", "system")
	if resp.Fault != nil {
		t.Fatalf("methods: %v", resp.Fault)
	}
	if len(resp.Result.([]any)) < 5 {
		t.Errorf("methods = %#v", resp.Result)
	}
	resp = callCtx("discovery.methods", "ghost", "system")
	if resp.Fault == nil {
		t.Error("missing entry must fault")
	}
}

func TestDeregisterPublishesTombstones(t *testing.T) {
	f := newFixture(t)
	f.svc.PublishAll("http://x")
	waitFor(t, "cache", func() bool { e, _ := f.svc.Find("*"); return len(e) >= 4 })

	// Deregister marks entries expired; after propagation Find is empty.
	entries := f.svc.Entries("")
	if len(entries) == 0 {
		t.Fatal("no entries")
	}
	if _, err := f.svc.deregister(nil, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "tombstones", func() bool {
		e, _ := f.svc.Find("*")
		return len(e) == 0
	})
}

func TestPeriodicPublishRefreshes(t *testing.T) {
	f := newFixture(t)
	f.svc.ttl = 80 * time.Millisecond
	f.svc.StartPeriodicPublish("http://x", 20*time.Millisecond)
	defer f.svc.StopPeriodic()
	waitFor(t, "cache fill", func() bool { e, _ := f.svc.Find("*"); return len(e) >= 4 })
	// Live entries remain visible well past one TTL thanks to refresh.
	time.Sleep(160 * time.Millisecond)
	entries, _ := f.svc.Find("*")
	if len(entries) < 4 {
		t.Errorf("entries lost despite periodic refresh: %d", len(entries))
	}
	// Idempotent start, stop, stop.
	f.svc.StartPeriodicPublish("http://x", time.Hour)
	f.svc.StopPeriodic()
	f.svc.StopPeriodic()
}

func TestPublisherlessServerCannotRegister(t *testing.T) {
	srv, _ := core.NewServer(core.Config{})
	defer srv.Close()
	svc := New(srv, "queryonly", nil)
	if _, err := svc.PublishAll("http://x"); err == nil {
		t.Error("publisher-less PublishAll must error")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"*", "anything/at-all", true},
		{"*/file", "srv/file", true},
		{"*/file", "srv/files", false},
		{"s?v/*", "srv/file", true},
		{"tier2.*/sys*", "tier2.caltech.edu/system", true},
		{"", "", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a*c", "abbbc", true},
		{"a*c", "ab", false},
	}
	for _, c := range cases {
		got, err := globMatch(c.pattern, c.name)
		if err != nil {
			t.Fatalf("globMatch(%q,%q): %v", c.pattern, c.name, err)
		}
		if got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestAggregatorSeedsFromSnapshot(t *testing.T) {
	// An aggregator attached *after* records arrived must seed its cache
	// from the station snapshot (restart recovery).
	station, err := monalisa.NewStation("central", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer station.Close()
	srv, _ := core.NewServer(core.Config{})
	defer srv.Close()
	pub, _ := monalisa.NewPublisher(station.Addr())
	defer pub.Close()
	svc := New(srv, "late", pub)
	srv.Register(svc)
	svc.PublishAll("http://late:80")

	waitFor(t, "station has records", func() bool {
		return len(station.Query("clarens-services", "", "")) > 0
	})

	agg := NewAggregator(srv.Store(), station)
	defer agg.Close()
	entries, _ := svc.Find("late/*")
	if len(entries) == 0 {
		t.Error("snapshot seeding failed")
	}
}

func TestPeersFor(t *testing.T) {
	srv, err := core.NewServer(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	svc := New(srv, "self", nil)
	seed := func(server, service, url string, ttl time.Duration) {
		e := Entry{Server: server, Service: service, URL: url, Expires: time.Now().Add(ttl)}
		if err := srv.Store().PutJSON(bucket, e.Key(), &e); err != nil {
			t.Fatal(err)
		}
	}
	seed("self", "job", "http://self:1/rpc", time.Minute)
	seed("peer1", "job", "http://peer1:1/rpc", time.Minute)
	seed("peer2", "job", "http://peer2:1/rpc", time.Minute)
	seed("peer2", "file", "http://peer2:1/rpc", time.Minute)
	seed("gone", "job", "http://gone:1/rpc", -time.Second) // expired

	peers := svc.PeersFor("job", "self")
	if len(peers) != 2 {
		t.Fatalf("PeersFor = %v, want peer1+peer2", peers)
	}
	for _, p := range peers {
		if p.Server == "self" || p.Server == "gone" || p.Service != "job" {
			t.Errorf("unexpected peer %+v", p)
		}
	}
}
