package pki

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseDNPaperExamples(t *testing.T) {
	// The two example DNs given verbatim in §2.1 of the paper.
	cases := []struct {
		in   string
		want DN
	}{
		{
			"/O=doesciencegrid.org/OU=People/CN=John Smith 12345",
			DN{{"O", "doesciencegrid.org"}, {"OU", "People"}, {"CN", "John Smith 12345"}},
		},
		{
			`/O=doesciencegrid.org/OU=Services/CN=host\/www.mysite.edu`,
			DN{{"O", "doesciencegrid.org"}, {"OU", "Services"}, {"CN", "host/www.mysite.edu"}},
		},
		{
			"/DC=org/DC=doegrids/OU=People/CN=Joe User",
			DN{{"DC", "org"}, {"DC", "doegrids"}, {"OU", "People"}, {"CN", "Joe User"}},
		},
	}
	for _, c := range cases {
		got, err := ParseDN(c.in)
		if err != nil {
			t.Fatalf("ParseDN(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseDN(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseDNErrors(t *testing.T) {
	bad := []string{
		"",
		"O=no-leading-slash",
		"/O=",
		"/=value",
		"/BOGUS=x",
		"/O=a/",
		"/O=a/OU",
		`/O=a\`,
	}
	for _, s := range bad {
		if dn, err := ParseDN(s); err == nil {
			t.Errorf("ParseDN(%q) = %v, want error", s, dn)
		}
	}
}

func TestDNStringRoundTrip(t *testing.T) {
	in := "/C=US/ST=CA/L=Pasadena/O=Caltech/OU=HEP/CN=Conrad Steenberg/Email=conrad@hep.caltech.edu"
	dn, err := ParseDN(in)
	if err != nil {
		t.Fatal(err)
	}
	if dn.String() != in {
		t.Errorf("round trip: got %q, want %q", dn.String(), in)
	}
}

func TestDNHasPrefix(t *testing.T) {
	org := MustParseDN("/O=doesciencegrid.org/OU=People")
	person := MustParseDN("/O=doesciencegrid.org/OU=People/CN=John Smith 12345")
	other := MustParseDN("/O=doesciencegrid.org/OU=Services/CN=host\\/www.mysite.edu")

	if !person.HasPrefix(org) {
		t.Error("person should match the OU=People prefix (paper §2.1 optimization)")
	}
	if other.HasPrefix(org) {
		t.Error("service host should not match the OU=People prefix")
	}
	if !person.HasPrefix(nil) {
		t.Error("empty DN is a prefix of everything")
	}
	if org.HasPrefix(person) {
		t.Error("longer DN cannot be a prefix of a shorter one")
	}
	// Structural, not textual: /OU=People must not match /OU=PeopleX.
	px := MustParseDN("/O=doesciencegrid.org/OU=PeopleX/CN=Jo")
	if px.HasPrefix(org) {
		t.Error("prefix matching must be per-RDN, not per-character")
	}
}

func TestDNHelpers(t *testing.T) {
	dn := MustParseDN("/O=x/OU=People/CN=Jo")
	if got := dn.CommonName(); got != "Jo" {
		t.Errorf("CommonName = %q, want Jo", got)
	}
	if got := dn.WithCN("proxy").String(); got != "/O=x/OU=People/CN=Jo/CN=proxy" {
		t.Errorf("WithCN = %q", got)
	}
	if got := dn.Parent().String(); got != "/O=x/OU=People" {
		t.Errorf("Parent = %q", got)
	}
	if !dn.Equal(MustParseDN("/O=x/OU=People/CN=Jo")) {
		t.Error("Equal should hold for identical DNs")
	}
	if dn.Equal(dn.Parent()) {
		t.Error("Equal should fail for different lengths")
	}
	if dn.IsZero() || !DN(nil).IsZero() {
		t.Error("IsZero misbehaves")
	}
	var zero DN
	if zero.String() != "" {
		t.Error("zero DN renders empty")
	}
	if zero.Parent() != nil {
		t.Error("zero DN has no parent")
	}
	if zero.CommonName() != "" {
		t.Error("zero DN has no CN")
	}
}

// dnValue generates random DNs for property tests.
type dnValue DN

func randomDN(rnd interface{ Intn(int) int }) DN {
	types := []string{"C", "ST", "L", "O", "OU", "CN", "DC", "Email"}
	n := 1 + rnd.Intn(6)
	dn := make(DN, n)
	for i := range dn {
		val := make([]byte, 1+rnd.Intn(12))
		for j := range val {
			// printable ASCII including '/' and '\' to exercise escaping
			val[j] = byte(33 + rnd.Intn(94))
		}
		dn[i] = RDN{Type: types[rnd.Intn(len(types))], Value: string(val)}
	}
	return dn
}

func TestDNRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := quickRand(seed)
		dn := randomDN(rnd)
		parsed, err := ParseDN(dn.String())
		if err != nil {
			t.Logf("parse %q: %v", dn.String(), err)
			return false
		}
		return parsed.Equal(dn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDNPrefixTransitivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := quickRand(seed)
		dn := randomDN(rnd)
		// every prefix of dn must satisfy HasPrefix; extending by one must not.
		for i := 0; i <= len(dn); i++ {
			if !dn.HasPrefix(dn[:i]) {
				return false
			}
		}
		ext := dn.WithCN("extra")
		return !dn.HasPrefix(ext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// quickRand is a tiny deterministic PRNG so property tests don't depend on
// math/rand seeding behavior across Go versions.
type lcg struct{ state uint64 }

func quickRand(seed int64) *lcg { return &lcg{state: uint64(seed)*2862933555777941757 + 3037000493} }

func (l *lcg) Intn(n int) int {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return int((l.state >> 33) % uint64(n))
}

func TestPKIXRoundTrip(t *testing.T) {
	dn := MustParseDN("/DC=org/DC=doegrids/C=US/O=Caltech/OU=HEP/CN=Frank van Lingen")
	back := FromPKIXName(dn.ToPKIXName())
	if !back.Equal(dn) {
		t.Errorf("pkix round trip: got %v want %v", back, dn)
	}
}

func TestMustParseDNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseDN should panic on bad input")
		}
	}()
	MustParseDN("not-a-dn")
}

func TestSortDNs(t *testing.T) {
	ss := []string{"/O=b", "/O=a"}
	SortDNs(ss)
	if ss[0] != "/O=a" {
		t.Error("SortDNs did not sort")
	}
}

func TestCanonTypeEmail(t *testing.T) {
	dn, err := ParseDN("/O=x/EMAILADDRESS=a@b.c")
	if err != nil {
		t.Fatal(err)
	}
	if dn[1].Type != "Email" {
		t.Errorf("EMAILADDRESS should canonicalize to Email, got %q", dn[1].Type)
	}
	if !strings.Contains(dn.String(), "Email=a@b.c") {
		t.Errorf("render: %q", dn.String())
	}
}
