package pki

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"sync/atomic"
	"time"
)

// Identity bundles a certificate, its private key, and the chain of
// intermediates (closest first) needed to reach a trust anchor.
type Identity struct {
	Cert  *x509.Certificate
	Key   crypto.Signer
	Chain []*x509.Certificate // intermediates, closest to Cert first
}

// DN returns the subject DN of the identity's certificate.
func (id *Identity) DN() DN { return FromPKIXName(id.Cert.Subject) }

// TLSCertificate assembles a tls.Certificate presenting the full chain.
func (id *Identity) TLSCertificate() tls.Certificate {
	chain := [][]byte{id.Cert.Raw}
	for _, c := range id.Chain {
		chain = append(chain, c.Raw)
	}
	return tls.Certificate{Certificate: chain, PrivateKey: id.Key}
}

// CertPEM returns the leaf certificate in PEM form.
func (id *Identity) CertPEM() []byte {
	return pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: id.Cert.Raw})
}

// ChainPEM returns leaf + intermediates in PEM form, leaf first.
func (id *Identity) ChainPEM() []byte {
	out := id.CertPEM()
	for _, c := range id.Chain {
		out = append(out, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c.Raw})...)
	}
	return out
}

// KeyPEM returns the private key in unencrypted PKCS#8 PEM form. Grid proxy
// credentials are stored with unencrypted keys by design (paper §2.6).
func (id *Identity) KeyPEM() ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(id.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: marshal key: %w", err)
	}
	return pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der}), nil
}

// CA is a minimal certificate authority for issuing grid-style user and
// host certificates. It plays the role of the DOE Science Grid CA in the
// paper's deployment (substitution documented in DESIGN.md §5).
type CA struct {
	Cert *x509.Certificate
	Key  crypto.Signer

	serial atomic.Int64
}

// NewCA creates a self-signed CA with the given subject DN.
func NewCA(subject DN) (*CA, error) {
	if len(subject) == 0 {
		return nil, fmt.Errorf("pki: CA subject must not be empty")
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate CA key: %w", err)
	}
	tpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               subject.ToPKIXName(),
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, tpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("pki: self-sign CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	ca := &CA{Cert: cert, Key: key}
	ca.serial.Store(1)
	return ca, nil
}

func (ca *CA) nextSerial() *big.Int {
	return big.NewInt(ca.serial.Add(1))
}

// Pool returns a cert pool containing only this CA, for verification.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.Cert)
	return p
}

// issue signs a leaf certificate from the template.
func (ca *CA) issue(tpl *x509.Certificate) (*Identity, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate key: %w", err)
	}
	tpl.SerialNumber = ca.nextSerial()
	der, err := x509.CreateCertificate(rand.Reader, tpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: sign certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &Identity{Cert: cert, Key: key}, nil
}

// IssueUser issues an end-entity certificate for an individual, in the DOE
// Science Grid style: /O=<org>/OU=People/CN=<name>.
func (ca *CA) IssueUser(subject DN, ttl time.Duration) (*Identity, error) {
	if len(subject) == 0 {
		return nil, fmt.Errorf("pki: user subject must not be empty")
	}
	return ca.issue(&x509.Certificate{
		Subject:               subject.ToPKIXName(),
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(ttl),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
	})
}

// IssueHost issues a server certificate: /O=<org>/OU=Services/CN=host/<fqdn>,
// with the host name (and loopback addresses, for tests) as SANs.
func (ca *CA) IssueHost(subject DN, hosts []string, ttl time.Duration) (*Identity, error) {
	tpl := &x509.Certificate{
		Subject:     subject.ToPKIXName(),
		NotBefore:   time.Now().Add(-time.Minute),
		NotAfter:    time.Now().Add(ttl),
		KeyUsage:    x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage: []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tpl.IPAddresses = append(tpl.IPAddresses, ip)
		} else {
			tpl.DNSNames = append(tpl.DNSNames, h)
		}
	}
	return ca.issue(tpl)
}

// ParseCertPEM parses the first CERTIFICATE block in the PEM input.
func ParseCertPEM(pemBytes []byte) (*x509.Certificate, error) {
	for {
		var block *pem.Block
		block, pemBytes = pem.Decode(pemBytes)
		if block == nil {
			return nil, fmt.Errorf("pki: no CERTIFICATE block found")
		}
		if block.Type == "CERTIFICATE" {
			return x509.ParseCertificate(block.Bytes)
		}
	}
}

// ParseKeyPEM parses the first PRIVATE KEY block (PKCS#8) in the PEM input.
func ParseKeyPEM(pemBytes []byte) (crypto.Signer, error) {
	for {
		var block *pem.Block
		block, pemBytes = pem.Decode(pemBytes)
		if block == nil {
			return nil, fmt.Errorf("pki: no PRIVATE KEY block found")
		}
		if block.Type == "PRIVATE KEY" {
			key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
			if err != nil {
				return nil, err
			}
			signer, ok := key.(crypto.Signer)
			if !ok {
				return nil, fmt.Errorf("pki: key does not implement crypto.Signer")
			}
			return signer, nil
		}
	}
}

// ParseIdentityPEM reads a concatenated PEM bundle (cert, optional chain,
// key in any order) into an Identity.
func ParseIdentityPEM(pemBytes []byte) (*Identity, error) {
	var id Identity
	rest := pemBytes
	for {
		var block *pem.Block
		block, rest = pem.Decode(rest)
		if block == nil {
			break
		}
		switch block.Type {
		case "CERTIFICATE":
			cert, err := x509.ParseCertificate(block.Bytes)
			if err != nil {
				return nil, err
			}
			if id.Cert == nil {
				id.Cert = cert
			} else {
				id.Chain = append(id.Chain, cert)
			}
		case "PRIVATE KEY":
			key, err := x509.ParsePKCS8PrivateKey(block.Bytes)
			if err != nil {
				return nil, err
			}
			signer, ok := key.(crypto.Signer)
			if !ok {
				return nil, fmt.Errorf("pki: unusable private key type %T", key)
			}
			id.Key = signer
		}
	}
	if id.Cert == nil {
		return nil, fmt.Errorf("pki: bundle contains no certificate")
	}
	if id.Key == nil {
		return nil, fmt.Errorf("pki: bundle contains no private key")
	}
	return &id, nil
}
