// Package pki implements the public-key-infrastructure substrate used by
// the Clarens framework: X.509 distinguished names in the OpenSSL
// slash-separated text form used throughout grid middleware, a test
// certificate authority, user/host certificate issuance, and RFC-3820-style
// proxy certificates used for delegation.
//
// The paper (§2, §2.1, §2.6) relies on DOE Science Grid style DNs such as
//
//	/O=doesciencegrid.org/OU=People/CN=John Smith 12345
//
// and on the ability to match only "the initial significant part" of a DN
// when defining virtual-organization membership. DN is therefore an ordered
// sequence of relative distinguished names (RDNs) with structural prefix
// matching, not a flat string.
package pki

import (
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"sort"
	"strings"
)

// RDN is a single relative distinguished name component, e.g. OU=People.
type RDN struct {
	Type  string // attribute type: C, ST, L, O, OU, CN, DC, Email
	Value string
}

// DN is an ordered sequence of RDNs, written /T1=V1/T2=V2/...
// The zero value is the empty (anonymous) DN.
type DN []RDN

// knownTypes lists the attribute types accepted by ParseDN, per RFC 3280
// plus the DC and Email forms common in grid certificates.
var knownTypes = map[string]bool{
	"C": true, "ST": true, "L": true, "O": true, "OU": true,
	"CN": true, "DC": true, "EMAIL": true, "EMAILADDRESS": true,
	"UID": true, "SN": true,
}

// canonType normalizes an attribute type to its canonical spelling.
func canonType(t string) string {
	u := strings.ToUpper(strings.TrimSpace(t))
	switch u {
	case "EMAILADDRESS":
		return "Email"
	case "EMAIL":
		return "Email"
	default:
		return u
	}
}

// ParseDN parses the OpenSSL slash form: /O=org/OU=unit/CN=name.
// Empty components are rejected; values may contain any character except
// an unescaped slash; "\/" escapes a literal slash inside a value.
func ParseDN(s string) (DN, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("pki: empty DN")
	}
	if !strings.HasPrefix(s, "/") {
		return nil, fmt.Errorf("pki: DN %q must start with '/'", s)
	}
	var dn DN
	var cur strings.Builder
	var parts []string
	escaped := false
	for _, r := range s[1:] {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case r == '\\':
			escaped = true
		case r == '/':
			parts = append(parts, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if escaped {
		return nil, fmt.Errorf("pki: DN %q ends with dangling escape", s)
	}
	parts = append(parts, cur.String())
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("pki: malformed DN component %q in %q", p, s)
		}
		typ, val := p[:eq], p[eq+1:]
		ct := canonType(typ)
		if !knownTypes[strings.ToUpper(ct)] && ct != "Email" {
			return nil, fmt.Errorf("pki: unknown DN attribute type %q in %q", typ, s)
		}
		if val == "" {
			return nil, fmt.Errorf("pki: empty value for %q in %q", typ, s)
		}
		dn = append(dn, RDN{Type: ct, Value: val})
	}
	return dn, nil
}

// MustParseDN is ParseDN that panics on error; for tests and constants.
func MustParseDN(s string) DN {
	dn, err := ParseDN(s)
	if err != nil {
		panic(err)
	}
	return dn
}

// String renders the DN in OpenSSL slash form, escaping literal
// backslashes and slashes so ParseDN(d.String()) round-trips exactly.
func (d DN) String() string {
	if len(d) == 0 {
		return ""
	}
	var b strings.Builder
	for _, r := range d {
		b.WriteByte('/')
		b.WriteString(r.Type)
		b.WriteByte('=')
		v := strings.ReplaceAll(r.Value, `\`, `\\`)
		v = strings.ReplaceAll(v, "/", `\/`)
		b.WriteString(v)
	}
	return b.String()
}

// IsZero reports whether the DN is empty (an unauthenticated caller).
func (d DN) IsZero() bool { return len(d) == 0 }

// Equal reports componentwise equality.
func (d DN) Equal(o DN) bool {
	if len(d) != len(o) {
		return false
	}
	for i := range d {
		if d[i] != o[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is an initial segment of d. This implements
// the paper's VO optimization: listing /O=doesciencegrid.org/OU=People as a
// member admits every individual certified under that organizational unit.
// The empty DN is a prefix of everything.
func (d DN) HasPrefix(p DN) bool {
	if len(p) > len(d) {
		return false
	}
	for i := range p {
		if d[i] != p[i] {
			return false
		}
	}
	return true
}

// CommonName returns the value of the last CN component, or "".
func (d DN) CommonName() string {
	for i := len(d) - 1; i >= 0; i-- {
		if d[i].Type == "CN" {
			return d[i].Value
		}
	}
	return ""
}

// WithCN returns a copy of d with an extra CN component appended; used to
// derive proxy-certificate subjects (RFC 3820 appends CN=<serial> or the
// legacy CN=proxy).
func (d DN) WithCN(cn string) DN {
	out := make(DN, len(d)+1)
	copy(out, d)
	out[len(d)] = RDN{Type: "CN", Value: cn}
	return out
}

// Parent returns d without its final component; the empty DN has no parent.
func (d DN) Parent() DN {
	if len(d) == 0 {
		return nil
	}
	return d[:len(d)-1]
}

// Attribute-type OIDs used in grid certificate subjects.
var (
	oidC     = asn1.ObjectIdentifier{2, 5, 4, 6}
	oidST    = asn1.ObjectIdentifier{2, 5, 4, 8}
	oidL     = asn1.ObjectIdentifier{2, 5, 4, 7}
	oidO     = asn1.ObjectIdentifier{2, 5, 4, 10}
	oidOU    = asn1.ObjectIdentifier{2, 5, 4, 11}
	oidCN    = asn1.ObjectIdentifier{2, 5, 4, 3}
	oidSN    = asn1.ObjectIdentifier{2, 5, 4, 4}
	oidUID   = asn1.ObjectIdentifier{0, 9, 2342, 19200300, 100, 1, 1}
	oidDC    = asn1.ObjectIdentifier{0, 9, 2342, 19200300, 100, 1, 25}
	oidEmail = asn1.ObjectIdentifier{1, 2, 840, 113549, 1, 9, 1}
)

var typeToOID = map[string]asn1.ObjectIdentifier{
	"C": oidC, "ST": oidST, "L": oidL, "O": oidO, "OU": oidOU,
	"CN": oidCN, "SN": oidSN, "UID": oidUID, "DC": oidDC, "Email": oidEmail,
}

func oidToType(oid asn1.ObjectIdentifier) string {
	for t, o := range typeToOID {
		if o.Equal(oid) {
			return t
		}
	}
	return ""
}

// ToPKIXName converts the DN into a pkix.Name for certificate issuance.
// All components are emitted through ExtraNames, in order, so that the
// marshaled RDN sequence preserves the grid DN exactly — including
// multi-CN proxy subjects such as /O=x/CN=Jo/CN=12345.
func (d DN) ToPKIXName() pkix.Name {
	var n pkix.Name
	for _, r := range d {
		oid, ok := typeToOID[r.Type]
		if !ok {
			continue
		}
		n.ExtraNames = append(n.ExtraNames, pkix.AttributeTypeAndValue{Type: oid, Value: r.Value})
	}
	return n
}

// FromPKIXName reconstructs a DN from a certificate subject, preserving
// the original RDN order. Parsed certificates carry all attributes in
// Names; names built by ToPKIXName carry them in ExtraNames; a plain
// pkix.Name falls back to the typed fields in grid-canonical order.
func FromPKIXName(n pkix.Name) DN {
	source := n.Names
	if len(source) == 0 {
		source = n.ExtraNames
	}
	if len(source) > 0 {
		var dn DN
		for _, atv := range source {
			t := oidToType(atv.Type)
			if t == "" {
				continue
			}
			dn = append(dn, RDN{Type: t, Value: fmt.Sprint(atv.Value)})
		}
		return dn
	}
	var dn DN
	for _, v := range n.Country {
		dn = append(dn, RDN{Type: "C", Value: v})
	}
	for _, v := range n.Province {
		dn = append(dn, RDN{Type: "ST", Value: v})
	}
	for _, v := range n.Locality {
		dn = append(dn, RDN{Type: "L", Value: v})
	}
	for _, v := range n.Organization {
		dn = append(dn, RDN{Type: "O", Value: v})
	}
	for _, v := range n.OrganizationalUnit {
		dn = append(dn, RDN{Type: "OU", Value: v})
	}
	if n.CommonName != "" {
		dn = append(dn, RDN{Type: "CN", Value: n.CommonName})
	}
	return dn
}

// SortDNs sorts a slice of DN strings; convenience for deterministic output.
func SortDNs(ss []string) {
	sort.Strings(ss)
}
