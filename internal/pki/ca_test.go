package pki

import (
	"crypto/x509"
	"testing"
	"time"
)

func testCA(t *testing.T) *CA {
	t.Helper()
	ca, err := NewCA(MustParseDN("/O=doesciencegrid.org/OU=Certificate Authorities/CN=Test CA"))
	if err != nil {
		t.Fatal(err)
	}
	return ca
}

func TestIssueUserAndVerify(t *testing.T) {
	ca := testCA(t)
	user, err := ca.IssueUser(MustParseDN("/O=doesciencegrid.org/OU=People/CN=John Smith 12345"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := user.Cert.Verify(x509.VerifyOptions{
		Roots:     ca.Pool(),
		KeyUsages: []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
	}); err != nil {
		t.Fatalf("user cert does not verify: %v", err)
	}
	if got := user.DN().String(); got != "/O=doesciencegrid.org/OU=People/CN=John Smith 12345" {
		t.Errorf("subject DN = %q", got)
	}
}

func TestIssueHostSANs(t *testing.T) {
	ca := testCA(t)
	host, err := ca.IssueHost(
		MustParseDN("/O=doesciencegrid.org/OU=Services/CN=host\\/www.mysite.edu"),
		[]string{"www.mysite.edu", "127.0.0.1", "localhost"}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := host.Cert.VerifyHostname("www.mysite.edu"); err != nil {
		t.Errorf("hostname: %v", err)
	}
	if err := host.Cert.VerifyHostname("127.0.0.1"); err != nil {
		t.Errorf("loopback IP SAN: %v", err)
	}
	if got := host.DN().CommonName(); got != "host/www.mysite.edu" {
		t.Errorf("CN = %q", got)
	}
}

func TestSerialNumbersDistinct(t *testing.T) {
	ca := testCA(t)
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		id, err := ca.IssueUser(MustParseDN("/O=x/CN=u"), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		s := id.Cert.SerialNumber.String()
		if seen[s] {
			t.Fatalf("duplicate serial %s", s)
		}
		seen[s] = true
	}
}

func TestIdentityPEMRoundTrip(t *testing.T) {
	ca := testCA(t)
	user, err := ca.IssueUser(MustParseDN("/O=x/OU=People/CN=Jo"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	keyPEM, err := user.KeyPEM()
	if err != nil {
		t.Fatal(err)
	}
	bundle := append(user.ChainPEM(), keyPEM...)
	back, err := ParseIdentityPEM(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if !back.DN().Equal(user.DN()) {
		t.Errorf("round-trip DN = %v, want %v", back.DN(), user.DN())
	}
	// Individual parsers too.
	if _, err := ParseCertPEM(user.CertPEM()); err != nil {
		t.Errorf("ParseCertPEM: %v", err)
	}
	if _, err := ParseKeyPEM(keyPEM); err != nil {
		t.Errorf("ParseKeyPEM: %v", err)
	}
}

func TestParsePEMErrors(t *testing.T) {
	if _, err := ParseCertPEM([]byte("garbage")); err == nil {
		t.Error("want error for no certificate block")
	}
	if _, err := ParseKeyPEM([]byte("garbage")); err == nil {
		t.Error("want error for no key block")
	}
	if _, err := ParseIdentityPEM(nil); err == nil {
		t.Error("want error for empty bundle")
	}
}

func TestNewCARejectsEmptySubject(t *testing.T) {
	if _, err := NewCA(nil); err == nil {
		t.Error("want error for empty CA subject")
	}
}

func TestIssueUserRejectsEmptySubject(t *testing.T) {
	ca := testCA(t)
	if _, err := ca.IssueUser(nil, time.Hour); err == nil {
		t.Error("want error for empty user subject")
	}
}

func TestProxyLifecycle(t *testing.T) {
	ca := testCA(t)
	user, err := ca.IssueUser(MustParseDN("/O=doesciencegrid.org/OU=People/CN=Jo"), time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := NewProxy(user, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !IsProxy(proxy.Cert) {
		t.Fatal("generated certificate not recognized as proxy")
	}
	if IsProxy(user.Cert) {
		t.Error("user certificate must not look like a proxy")
	}
	dn, err := VerifyProxy(proxy.Cert, proxy.Chain, ca.Pool())
	if err != nil {
		t.Fatalf("VerifyProxy: %v", err)
	}
	if !dn.Equal(user.DN()) {
		t.Errorf("effective DN = %v, want %v", dn, user.DN())
	}
}

func TestProxyOfProxy(t *testing.T) {
	ca := testCA(t)
	user, _ := ca.IssueUser(MustParseDN("/O=x/OU=People/CN=Jo"), time.Hour)
	p1, err := NewProxy(user, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProxy(p1, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := VerifyProxy(p2.Cert, p2.Chain, ca.Pool())
	if err != nil {
		t.Fatalf("VerifyProxy(proxy-of-proxy): %v", err)
	}
	if !dn.Equal(user.DN()) {
		t.Errorf("delegation chain should resolve to the user, got %v", dn)
	}
	chain := append([]*x509.Certificate{p2.Cert}, p2.Chain...)
	if got := EffectiveDNFromChain(chain); !got.Equal(user.DN()) {
		t.Errorf("EffectiveDNFromChain = %v, want %v", got, user.DN())
	}
}

func TestVerifyProxyRejectsForeignChain(t *testing.T) {
	ca := testCA(t)
	otherCA, _ := NewCA(MustParseDN("/O=evil/CN=Evil CA"))
	user, _ := otherCA.IssueUser(MustParseDN("/O=x/OU=People/CN=Mallory"), time.Hour)
	proxy, _ := NewProxy(user, time.Minute)
	if _, err := VerifyProxy(proxy.Cert, proxy.Chain, ca.Pool()); err == nil {
		t.Error("proxy rooted in a foreign CA must not verify")
	}
}

func TestVerifyProxyRejectsExpired(t *testing.T) {
	ca := testCA(t)
	user, _ := ca.IssueUser(MustParseDN("/O=x/OU=People/CN=Jo"), time.Hour)
	proxy, err := NewProxy(user, time.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := VerifyProxy(proxy.Cert, proxy.Chain, ca.Pool()); err == nil {
		t.Error("expired proxy must not verify")
	}
}

func TestVerifyProxyRejectsNonProxy(t *testing.T) {
	ca := testCA(t)
	user, _ := ca.IssueUser(MustParseDN("/O=x/OU=People/CN=Jo"), time.Hour)
	if _, err := VerifyProxy(user.Cert, nil, ca.Pool()); err == nil {
		t.Error("end-entity certificate must not pass VerifyProxy")
	}
}

func TestNewProxyValidation(t *testing.T) {
	if _, err := NewProxy(nil, time.Hour); err == nil {
		t.Error("nil issuer should error")
	}
	ca := testCA(t)
	user, _ := ca.IssueUser(MustParseDN("/O=x/CN=u"), time.Hour)
	if _, err := NewProxy(user, 0); err == nil {
		t.Error("zero ttl should error")
	}
}

func TestEffectiveDNPlainCert(t *testing.T) {
	ca := testCA(t)
	user, _ := ca.IssueUser(MustParseDN("/O=x/OU=People/CN=Jo"), time.Hour)
	if got := EffectiveDN(user.Cert); !got.Equal(user.DN()) {
		t.Errorf("EffectiveDN(plain) = %v", got)
	}
	if got := EffectiveDNFromChain([]*x509.Certificate{user.Cert}); !got.Equal(user.DN()) {
		t.Errorf("EffectiveDNFromChain(plain) = %v", got)
	}
}

func TestTLSCertificateChain(t *testing.T) {
	ca := testCA(t)
	user, _ := ca.IssueUser(MustParseDN("/O=x/CN=u"), time.Hour)
	proxy, _ := NewProxy(user, time.Hour)
	tc := proxy.TLSCertificate()
	if len(tc.Certificate) != 2 {
		t.Errorf("TLS chain length = %d, want 2 (proxy + user)", len(tc.Certificate))
	}
}
