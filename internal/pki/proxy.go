package pki

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"fmt"
	"math/big"
	"time"
)

// Proxy certificates (paper §2.6) are short-lived certificates signed by a
// user's end-entity certificate rather than a CA. They consist of a
// temporary public key and an *unencrypted* private key, so they can be
// used to log into remote servers without retyping the key password, and
// can be handed to services acting on the user's behalf (delegation).
//
// We follow the RFC 3820 convention of deriving the proxy subject from the
// issuer subject by appending a CN component whose value is the proxy's
// serial number. IsProxy recognizes both that form and the legacy
// "CN=proxy" form used by Globus GSI.

// NewProxy issues a proxy certificate from the given end-entity identity.
// The returned Identity carries the signing certificate in its chain so
// the full path (proxy -> user cert -> CA) can be presented over TLS.
func NewProxy(issuer *Identity, ttl time.Duration) (*Identity, error) {
	if issuer == nil || issuer.Cert == nil || issuer.Key == nil {
		return nil, fmt.Errorf("pki: proxy issuer identity incomplete")
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("pki: proxy ttl must be positive, got %v", ttl)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate proxy key: %w", err)
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return nil, err
	}
	subject := FromPKIXName(issuer.Cert.Subject).WithCN(serial.String())
	tpl := &x509.Certificate{
		SerialNumber:          serial,
		Subject:               subject.ToPKIXName(),
		NotBefore:             time.Now().Add(-time.Minute),
		NotAfter:              time.Now().Add(ttl),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, issuer.Cert, &key.PublicKey, issuer.Key)
	if err != nil {
		return nil, fmt.Errorf("pki: sign proxy: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	chain := append([]*x509.Certificate{issuer.Cert}, issuer.Chain...)
	return &Identity{Cert: cert, Key: key, Chain: chain}, nil
}

// IsProxy reports whether cert looks like a proxy certificate: its subject
// extends its issuer's subject by exactly one CN component.
func IsProxy(cert *x509.Certificate) bool {
	sub := FromPKIXName(cert.Subject)
	iss := FromPKIXName(cert.Issuer)
	return len(sub) == len(iss)+1 &&
		sub.HasPrefix(iss) &&
		sub[len(sub)-1].Type == "CN"
}

// EffectiveDN returns the DN that authorization decisions should use for
// the given presented certificate: for a proxy certificate this is the
// *issuer* (the real user), stripped of any further proxy levels; for an
// ordinary end-entity certificate it is the subject itself.
func EffectiveDN(cert *x509.Certificate) DN {
	dn := FromPKIXName(cert.Subject)
	iss := FromPKIXName(cert.Issuer)
	for len(dn) > len(iss) && dn.HasPrefix(iss) && dn[len(dn)-1].Type == "CN" {
		// Each proxy level appends one CN; peel back to the issuer subject.
		dn = dn[:len(dn)-1]
		break
	}
	return dn
}

// EffectiveDNFromChain walks a verified chain (leaf first) and returns the
// DN of the first non-proxy certificate, peeling multiple delegation
// levels: proxy-of-proxy -> proxy -> user.
func EffectiveDNFromChain(chain []*x509.Certificate) DN {
	for i, cert := range chain {
		if !IsProxy(cert) {
			return FromPKIXName(cert.Subject)
		}
		if i == len(chain)-1 {
			return EffectiveDN(cert)
		}
	}
	return nil
}

// VerifyProxy checks a proxy chain: the proxy must be currently valid,
// signed by the next certificate in the chain, each level must satisfy the
// subject-extension rule, and the end-entity certificate must verify
// against roots.
func VerifyProxy(proxy *x509.Certificate, chain []*x509.Certificate, roots *x509.CertPool) (DN, error) {
	now := time.Now()
	if now.Before(proxy.NotBefore) || now.After(proxy.NotAfter) {
		return nil, fmt.Errorf("pki: proxy certificate expired or not yet valid")
	}
	if !IsProxy(proxy) {
		return nil, fmt.Errorf("pki: certificate %q is not a proxy", FromPKIXName(proxy.Subject))
	}
	cur := proxy
	for i, next := range chain {
		// Proxy issuers are end-entity certificates without the CA bit, so
		// CheckSignatureFrom would reject them; RFC 3820 validators verify
		// the raw signature and the subject-extension rule instead.
		if err := next.CheckSignature(cur.SignatureAlgorithm, cur.RawTBSCertificate, cur.Signature); err != nil {
			return nil, fmt.Errorf("pki: proxy chain level %d signature: %w", i, err)
		}
		if !IsProxy(cur) {
			break
		}
		sub := FromPKIXName(cur.Subject)
		issSub := FromPKIXName(next.Subject)
		if !sub.HasPrefix(issSub) {
			return nil, fmt.Errorf("pki: proxy subject %q does not extend issuer %q", sub, issSub)
		}
		cur = next
	}
	// cur is now the first non-proxy certificate: verify it to the roots.
	ee := cur
	if IsProxy(ee) {
		return nil, fmt.Errorf("pki: proxy chain does not terminate in an end-entity certificate")
	}
	inter := x509.NewCertPool()
	for _, c := range chain {
		if c != ee {
			inter.AddCert(c)
		}
	}
	if _, err := ee.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inter,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageAny},
	}); err != nil {
		return nil, fmt.Errorf("pki: end-entity verification: %w", err)
	}
	return FromPKIXName(ee.Subject), nil
}
