package metasched

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"clarens/internal/core"
	"clarens/internal/discovery"
	"clarens/internal/jobsvc"
	"clarens/internal/pki"
	"clarens/internal/resilience"
	"clarens/internal/rpc"
)

var ownerDN = pki.MustParseDN("/O=grid/OU=People/CN=Fed User")

// fakeConn scripts a peer: handle receives every call (batched or not).
type fakeConn struct {
	mu     sync.Mutex
	handle func(token, method string, params []any) (any, error)
	calls  []string
	closed bool
}

func (c *fakeConn) Call(token, trace, method string, params ...any) (any, error) {
	c.mu.Lock()
	c.calls = append(c.calls, method)
	h := c.handle
	c.mu.Unlock()
	return h(token, method, params)
}

func (c *fakeConn) Batch(token string, calls []Call) ([]Result, error) {
	out := make([]Result, len(calls))
	for i, cl := range calls {
		v, err := c.Call(token, cl.Trace, cl.Method, cl.Params...)
		if err != nil {
			var f *rpc.Fault
			if !errors.As(err, &f) {
				return nil, err // transport failure aborts the batch
			}
		}
		out[i] = Result{Value: v, Err: err}
	}
	return out, nil
}

func (c *fakeConn) Close() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
}

func (c *fakeConn) callCount(method string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.calls {
		if m == method {
			n++
		}
	}
	return n
}

// fakePeers serves a static peer table.
type fakePeers struct {
	mu      sync.Mutex
	entries []discovery.Entry
}

func (f *fakePeers) PeersFor(service, exclude string) []discovery.Entry {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []discovery.Entry
	for _, e := range f.entries {
		if e.Service == service && e.Server != exclude {
			out = append(out, e)
		}
	}
	return out
}

// fakeDeleg mints predictable secrets.
type fakeDeleg struct {
	mu     sync.Mutex
	issued []string
	err    error
}

func (f *fakeDeleg) IssueDelegation(dn pki.DN, ttl time.Duration) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return "", f.err
	}
	s := fmt.Sprintf("secret-%d", len(f.issued))
	f.issued = append(f.issued, s)
	return s, nil
}

// harness bundles a local jobsvc (1 worker, gated executor) and a
// scheduler wired to fakes.
type harness struct {
	jobs    *jobsvc.Service
	sched   *Scheduler
	peers   *fakePeers
	deleg   *fakeDeleg
	conns   map[string]*fakeConn
	gate    chan struct{} // each receive lets one local execution finish
	mu      sync.Mutex
	ranHere []string // commands executed locally
}

func newHarness(t *testing.T, cfg Config, dialErr map[string]error) *harness {
	return newHarnessJobs(t, cfg, jobsvc.Config{Workers: 1}, dialErr)
}

func newHarnessJobs(t *testing.T, cfg Config, jcfg jobsvc.Config, dialErr map[string]error) *harness {
	t.Helper()
	srv, err := core.NewServer(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	h := &harness{
		peers: &fakePeers{},
		deleg: &fakeDeleg{},
		conns: map[string]*fakeConn{},
		gate:  make(chan struct{}, 1024),
	}
	exec := func(owner pki.DN, command string, stdout, stderr io.Writer) (jobsvc.ExecStatus, error) {
		<-h.gate
		h.mu.Lock()
		h.ranHere = append(h.ranHere, command)
		h.mu.Unlock()
		io.WriteString(stdout, "local:"+command)
		return jobsvc.ExecStatus{}, nil
	}
	h.jobs, err = jobsvc.New(srv, jcfg, exec, nil, nil, "local")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.jobs.Stop)
	dial := func(url string) (Conn, error) {
		if err := dialErr[url]; err != nil {
			return nil, err
		}
		c, ok := h.conns[url]
		if !ok {
			return nil, fmt.Errorf("dial %s: connection refused", url)
		}
		return c, nil
	}
	if cfg.ServerName == "" {
		cfg.ServerName = "local"
	}
	if cfg.SelfURL == nil {
		cfg.SelfURL = func() string { return "http://local/rpc" }
	}
	if cfg.PollInterval == 0 {
		cfg.PollInterval = time.Hour // tests drive cycles via Kick
	}
	h.sched, err = New(h.jobs, h.peers, h.deleg, dial, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.sched.Stop)
	return h
}

func (h *harness) addPeer(name, url string, free int) *fakeConn {
	// A scripted healthy peer: idle workers, accepts submissions, reports
	// submitted jobs as done with canned output.
	type remoteJob struct{ id, command string }
	var mu sync.Mutex
	var accepted []remoteJob
	conn := &fakeConn{}
	conn.handle = func(token, method string, params []any) (any, error) {
		mu.Lock()
		defer mu.Unlock()
		switch method {
		case "job.stats":
			return map[string]any{"queued": 0, "running": 0, "workers": free}, nil
		case "proxy.login_delegated":
			return "sess-" + name, nil
		case "job.submit":
			if token == "" {
				return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "authentication required"}
			}
			id := fmt.Sprintf("%s-job-%d", name, len(accepted))
			accepted = append(accepted, remoteJob{id: id, command: params[0].(string)})
			return id, nil
		case "job.status":
			return map[string]any{"state": "done", "attempts": 1, "local_user": "joe"}, nil
		case "job.output":
			return map[string]any{"stdout": "remote:" + name, "stderr": "", "exit_code": 0}, nil
		case "job.cancel":
			return true, nil
		}
		return nil, &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: method}
	}
	h.conns[url] = conn
	h.peers.mu.Lock()
	h.peers.entries = append(h.peers.entries, discovery.Entry{
		Server: name, Service: "job", URL: url, Expires: time.Now().Add(time.Minute),
	})
	h.peers.mu.Unlock()
	return conn
}

func (h *harness) submit(t *testing.T, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		j, err := h.jobs.Submit(ownerDN, fmt.Sprintf("echo %d", i), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID
	}
	return ids
}

func waitRunning(t *testing.T, jobs *jobsvc.Service, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if jobs.Stats().Running == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("running = %d, want %d", jobs.Stats().Running, n)
}

// occupy parks the single local worker on a blocker job so subsequently
// submitted work stays deterministically queued.
func (h *harness) occupy(t *testing.T) {
	t.Helper()
	if _, err := h.jobs.Submit(ownerDN, "blocker", 100, 0); err != nil {
		t.Fatal(err)
	}
	waitRunning(t, h.jobs, 1)
}

func waitState(t *testing.T, jobs *jobsvc.Service, id, state string) *jobsvc.Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := jobs.Get(id); ok && j.State == state {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := jobs.Get(id)
	t.Fatalf("job %s = %+v, want state %s", id, j, state)
	return nil
}

func TestForwardDelegatePullBack(t *testing.T) {
	h := newHarness(t, Config{Pressure: -1}, nil)
	conn := h.addPeer("peer1", "http://peer1/rpc", 4)
	ids := h.submit(t, 4) // worker takes 1 (gated), 3 stay queued
	waitRunning(t, h.jobs, 1)

	h.sched.Kick() // discover, poll, forward
	st := h.sched.Stats()
	if st.Peers != 1 || st.Forwarded != 3 {
		t.Fatalf("stats = %+v, want 1 peer, 3 forwarded", st)
	}
	if got := conn.callCount("proxy.login_delegated"); got != 1 {
		t.Errorf("delegation handoffs = %d, want 1 (one owner, one session)", got)
	}
	if len(h.deleg.issued) != 1 {
		t.Errorf("secrets minted = %d, want 1", len(h.deleg.issued))
	}
	remote := h.jobs.RemoteJobs()
	if len(remote) != 3 {
		t.Fatalf("remote jobs = %d", len(remote))
	}
	for _, j := range remote {
		if j.Peer != "peer1" || j.RemoteID == "" || j.PeerSession != "sess-peer1" {
			t.Errorf("binding = %+v", j)
		}
	}

	// The transparent read path: Refresh merges the peer's terminal view.
	live, err := h.sched.Refresh(remote[0])
	if err != nil {
		t.Fatal(err)
	}
	if live.State != "done" || live.Stdout != "remote:peer1" || live.LocalUser != "joe" {
		t.Errorf("live = %+v", live)
	}

	// Next cycle pulls results back and finalizes the shadow records.
	h.sched.Kick()
	done := 0
	for _, id := range ids {
		j, _ := h.jobs.Get(id)
		if j.State == jobsvc.StateDone && strings.HasPrefix(j.Stdout, "remote:") {
			done++
		}
	}
	if done != 3 {
		t.Errorf("pulled back %d remote results, want 3", done)
	}
	if st := h.sched.Stats(); st.PulledBack != 3 {
		t.Errorf("stats = %+v", st)
	}
	h.gate <- struct{}{} // release the locally running job
	waitState(t, h.jobs, ids[0], jobsvc.StateDone)
}

func TestPeerDownAtForwardFallsBackLocally(t *testing.T) {
	h := newHarness(t, Config{Pressure: -1}, nil)
	h.addPeer("deadpeer", "http://dead/rpc", 4)
	delete(h.conns, "http://dead/rpc") // stats poll will fail to dial

	ids := h.submit(t, 3)
	h.sched.Kick()
	// The peer never polled alive, so nothing was claimed or lost.
	if st := h.sched.Stats(); st.Forwarded != 0 {
		t.Fatalf("stats = %+v, want no forwards to a dead peer", st)
	}
	for i := 0; i < 3; i++ {
		h.gate <- struct{}{}
	}
	for _, id := range ids {
		j := waitState(t, h.jobs, id, jobsvc.StateDone)
		if !strings.HasPrefix(j.Stdout, "local:") {
			t.Errorf("job %s ran %q, want local execution", id, j.Stdout)
		}
	}
}

func TestPeerVanishesBetweenPollAndForward(t *testing.T) {
	h := newHarness(t, Config{Pressure: -1}, nil)
	conn := h.addPeer("flaky", "http://flaky/rpc", 4)
	// Healthy on job.stats, but the submission round trip dies.
	base := conn.handle
	conn.handle = func(token, method string, params []any) (any, error) {
		if method == "job.submit" || method == "proxy.login_delegated" {
			return nil, fmt.Errorf("connection reset")
		}
		return base(token, method, params)
	}
	ids := h.submit(t, 3)
	h.sched.Kick()
	st := h.sched.Stats()
	if st.Forwarded != 0 || st.Fallbacks == 0 {
		t.Fatalf("stats = %+v, want fallbacks and no forwards", st)
	}
	for i := 0; i < 3; i++ {
		h.gate <- struct{}{}
	}
	for _, id := range ids {
		waitState(t, h.jobs, id, jobsvc.StateDone)
	}
}

func TestDelegationRejectedKeepsJobsLocal(t *testing.T) {
	h := newHarness(t, Config{Pressure: -1}, nil)
	conn := h.addPeer("strict", "http://strict/rpc", 4)
	base := conn.handle
	conn.handle = func(token, method string, params []any) (any, error) {
		if method == "proxy.login_delegated" {
			return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "issuer refused the delegation"}
		}
		return base(token, method, params)
	}
	h.occupy(t)
	ids := h.submit(t, 3)
	h.sched.Kick()
	if st := h.sched.Stats(); st.Forwarded != 0 || st.Fallbacks != 3 {
		t.Fatalf("stats = %+v, want 3 delegation fallbacks", st)
	}
	if got := conn.callCount("job.submit"); got != 0 {
		t.Errorf("job.submit called %d times despite rejected delegation", got)
	}
	// The failed handoff force-opened the peer's breaker: the next cycle
	// must not re-claim and thrash.
	if open := h.sched.Stats().BreakerOpen; open != 1 {
		t.Errorf("BreakerOpen = %d after rejected delegation, want 1", open)
	}
	h.sched.Kick()
	if got := conn.callCount("proxy.login_delegated"); got != 1 {
		t.Errorf("delegation retried %d times while the breaker was open", got)
	}
	for i := 0; i < 4; i++ {
		h.gate <- struct{}{}
	}
	for _, id := range ids {
		waitState(t, h.jobs, id, jobsvc.StateDone)
	}
}

func TestPeerDiesAfterAcceptRequeuesLocally(t *testing.T) {
	h := newHarness(t, Config{Pressure: -1, DeadPolls: 2}, nil)
	conn := h.addPeer("mortal", "http://mortal/rpc", 4)
	base := conn.handle
	var mu sync.Mutex
	dead := false
	conn.handle = func(token, method string, params []any) (any, error) {
		mu.Lock()
		d := dead
		mu.Unlock()
		if d {
			return nil, fmt.Errorf("connection refused")
		}
		if method == "job.status" || method == "job.output" {
			// Peer accepted the work but never finishes it.
			return map[string]any{"state": "running"}, nil
		}
		return base(token, method, params)
	}
	h.occupy(t)
	ids := h.submit(t, 3)
	h.sched.Kick()
	if st := h.sched.Stats(); st.Forwarded != 3 {
		t.Fatalf("stats = %+v, want 3 forwarded", st)
	}
	mu.Lock()
	dead = true
	mu.Unlock()
	h.sched.Kick() // failed poll 1
	if len(h.jobs.RemoteJobs()) != 3 {
		t.Fatalf("jobs fell back before DeadPolls tolerance")
	}
	h.sched.Kick() // failed poll 2 -> fallback
	if st := h.sched.Stats(); st.Fallbacks != 3 {
		t.Fatalf("stats = %+v, want 3 fallbacks", st)
	}
	for i := 0; i < 4; i++ {
		h.gate <- struct{}{}
	}
	for _, id := range ids {
		j := waitState(t, h.jobs, id, jobsvc.StateDone)
		if !strings.HasPrefix(j.Stdout, "local:") {
			t.Errorf("job %s = %q, want local fallback execution", id, j.Stdout)
		}
	}
}

func TestPressureThresholdHoldsWorkLocally(t *testing.T) {
	h := newHarness(t, Config{Pressure: 10}, nil)
	h.addPeer("peer1", "http://peer1/rpc", 8)
	h.submit(t, 5) // 1 running + 4 queued, below pressure 10
	h.sched.Kick()
	if st := h.sched.Stats(); st.Forwarded != 0 {
		t.Fatalf("stats = %+v: forwarded below the pressure threshold", st)
	}
	for i := 0; i < 5; i++ {
		h.gate <- struct{}{}
	}
}

func TestExpiredDelegatedSessionRenewedWithoutDuplicateRun(t *testing.T) {
	h := newHarness(t, Config{Pressure: -1, DeadPolls: 3}, nil)
	var mu sync.Mutex
	logins := 0
	phase := "running"
	conn := &fakeConn{}
	conn.handle = func(token, method string, params []any) (any, error) {
		mu.Lock()
		defer mu.Unlock()
		current := fmt.Sprintf("sess-%d", logins)
		switch method {
		case "job.stats":
			return map[string]any{"queued": 0, "running": 0, "workers": 4}, nil
		case "proxy.login_delegated":
			logins++
			return fmt.Sprintf("sess-%d", logins), nil
		case "job.submit":
			return "rid-1", nil
		case "job.status":
			if token != current {
				return nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "session expired"}
			}
			return map[string]any{"state": phase}, nil
		case "job.output":
			return map[string]any{"stdout": "remote-result", "stderr": "", "exit_code": 0}, nil
		case "job.cancel":
			return true, nil
		}
		return nil, &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: method}
	}
	h.conns["http://renew/rpc"] = conn
	h.peers.mu.Lock()
	h.peers.entries = append(h.peers.entries, discovery.Entry{
		Server: "renew", Service: "job", URL: "http://renew/rpc", Expires: time.Now().Add(time.Minute),
	})
	h.peers.mu.Unlock()

	h.occupy(t)
	ids := h.submit(t, 1)
	h.sched.Kick()
	if st := h.sched.Stats(); st.Forwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Expire the delegated session: the peer now faults auth on the old
	// token. The scheduler must renew + rebind, not requeue (the remote
	// attempt is still running — a requeue would execute it twice).
	mu.Lock()
	logins++ // tokens issued so far are now stale
	mu.Unlock()
	h.sched.Kick()
	if st := h.sched.Stats(); st.Fallbacks != 0 {
		t.Fatalf("stats = %+v: fell back on an expired session", st)
	}
	remote := h.jobs.RemoteJobs()
	if len(remote) != 1 || remote[0].PeerSession == "sess-1" {
		t.Fatalf("remote = %+v, want renewed session binding", remote)
	}
	// With the renewed session the result flows back normally.
	mu.Lock()
	phase = "done"
	mu.Unlock()
	h.sched.Kick()
	j, _ := h.jobs.Get(ids[0])
	if j.State != jobsvc.StateDone || j.Stdout != "remote-result" {
		t.Errorf("job = %+v", j)
	}
	if st := h.sched.Stats(); st.Fallbacks != 0 || st.PulledBack != 1 {
		t.Errorf("stats = %+v", st)
	}
	h.gate <- struct{}{} // release the blocker
}

// TestRecoveredUnboundRemoteRecordRequeued: a remote record with no peer
// binding (a past process crashed between ClaimForward and MarkForwarded)
// must be reclaimed by the watch loop, not skipped forever.
func TestRecoveredUnboundRemoteRecordRequeued(t *testing.T) {
	h := newHarness(t, Config{Pressure: 10}, nil) // high pressure: no forwarding
	h.occupy(t)
	ids := h.submit(t, 1)
	// Simulate the crash: claim the job for a peer but never bind it.
	if claimed := h.jobs.ClaimForward(1, "ghost"); len(claimed) != 1 {
		t.Fatalf("claimed %d jobs, want 1", len(claimed))
	}
	h.sched.Kick()
	if st := h.sched.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want the unbound record reclaimed", st)
	}
	h.gate <- struct{}{}
	h.gate <- struct{}{}
	j := waitState(t, h.jobs, ids[0], jobsvc.StateDone)
	if !strings.HasPrefix(j.Stdout, "local:") {
		t.Errorf("job ran %q, want local execution", j.Stdout)
	}
}

// TestPartitionedPeerOrphanCancelledOnReturn: after the at-least-once
// fallback reclaims a job from an unresponsive peer, the remote copy is
// remembered and best-effort cancelled once the peer answers again.
func TestPartitionedPeerOrphanCancelledOnReturn(t *testing.T) {
	// The partition trips the peer's breaker; a short cooldown lets the
	// healed cycle's job.stats probe re-close it so the reap proceeds.
	h := newHarness(t, Config{Pressure: -1, DeadPolls: 2,
		Breaker: resilience.BreakerConfig{OpenFor: 50 * time.Millisecond}}, nil)
	conn := h.addPeer("island", "http://island/rpc", 4)
	base := conn.handle
	var mu sync.Mutex
	partitioned := false
	conn.handle = func(token, method string, params []any) (any, error) {
		mu.Lock()
		p := partitioned
		mu.Unlock()
		if p {
			return nil, fmt.Errorf("network partition")
		}
		if method == "job.status" || method == "job.output" {
			// The peer holds the job but never finishes it.
			return map[string]any{"state": "running"}, nil
		}
		return base(token, method, params)
	}
	h.occupy(t)
	ids := h.submit(t, 1)
	h.sched.Kick()
	if st := h.sched.Stats(); st.Forwarded != 1 {
		t.Fatalf("stats = %+v, want 1 forwarded", st)
	}
	mu.Lock()
	partitioned = true
	mu.Unlock()
	h.sched.Kick() // failed poll 1
	h.sched.Kick() // failed poll 2 -> fallback, orphan remembered
	if st := h.sched.Stats(); st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 fallback", st)
	}
	if open := h.sched.Stats().BreakerOpen; open != 1 {
		t.Errorf("BreakerOpen = %d during the partition, want 1", open)
	}
	if got := conn.callCount("job.cancel"); got != 0 {
		t.Fatalf("job.cancel called %d times while the peer was unreachable", got)
	}
	// Drain the reclaimed job locally before the partition heals so the
	// healed cycle has nothing to re-forward.
	h.gate <- struct{}{}
	h.gate <- struct{}{}
	j := waitState(t, h.jobs, ids[0], jobsvc.StateDone)
	if !strings.HasPrefix(j.Stdout, "local:") {
		t.Errorf("job ran %q, want local fallback execution", j.Stdout)
	}
	mu.Lock()
	partitioned = false
	mu.Unlock()
	time.Sleep(75 * time.Millisecond) // let the breaker cooldown elapse
	h.sched.Kick()                    // peer answers again: the orphaned copy is cancelled
	if got := conn.callCount("job.cancel"); got != 1 {
		t.Errorf("job.cancel = %d calls after the peer returned, want 1", got)
	}
	if open := h.sched.Stats().BreakerOpen; open != 0 {
		t.Errorf("BreakerOpen = %d after the peer returned, want 0", open)
	}
}

// tempStager is a minimal jobsvc.ArtifactStager over a temp directory.
type tempStager struct {
	root string
}

func (d *tempStager) Create(jobID string, owner pki.DN) (string, string, error) {
	dir := filepath.Join(d.root, jobID)
	return dir, "/jobs/" + jobID, os.MkdirAll(dir, 0o755)
}
func (d *tempStager) Remove(jobID string) error { return os.RemoveAll(filepath.Join(d.root, jobID)) }
func (d *tempStager) List() ([]string, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		ids = append(ids, e.Name())
	}
	return ids, nil
}

// TestPullBackRestagesArtifacts: a peer that staged a multi-chunk output
// reports truncated heads plus an artifact reference; the watch loop must
// fetch the artifact via chunk-iterated file.read under the delegated
// session and re-stage it locally, digest-checked, so the shadow record
// converges to a locally fetchable artifact.
func TestPullBackRestagesArtifacts(t *testing.T) {
	stager := &tempStager{root: t.TempDir()}
	h := newHarnessJobs(t, Config{Pressure: -1}, jobsvc.Config{Workers: 1, Artifacts: stager}, nil)
	conn := h.addPeer("peer1", "http://peer1/rpc", 4)

	// The peer's staged stream: 2.5 chunks of patterned bytes.
	content := make([]byte, artifactChunk*2+artifactChunk/2)
	for i := range content {
		content[i] = byte(i * 31)
	}
	sum := md5.Sum(content)
	wantMD5 := hex.EncodeToString(sum[:])
	var readTokens []string
	base := conn.handle
	conn.handle = func(token, method string, params []any) (any, error) {
		switch method {
		case "job.output":
			return map[string]any{
				"stdout": "head-only", "stderr": "", "exit_code": 0, "truncated": true,
				"artifacts": []any{map[string]any{
					"name": "stdout", "path": "/jobs/rjob/stdout",
					"size": len(content), "md5": wantMD5,
				}},
			}, nil
		case "file.read":
			readTokens = append(readTokens, token)
			if params[0].(string) != "/jobs/rjob/stdout" {
				return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "wrong path"}
			}
			off := params[1].(int)
			n := params[2].(int)
			if off > len(content) {
				off = len(content)
			}
			end := off + n
			if end > len(content) {
				end = len(content)
			}
			return map[string]any{"data": content[off:end], "eof": end >= len(content)}, nil
		}
		return base(token, method, params)
	}

	h.occupy(t)
	j, err := h.jobs.Submit(ownerDN, "big-output", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.sched.Kick() // forward
	if st := h.sched.Stats(); st.Forwarded != 1 {
		t.Fatalf("stats = %+v", st)
	}
	h.sched.Kick() // watch: terminal on peer -> pull back + re-stage
	got := waitState(t, h.jobs, j.ID, jobsvc.StateDone)
	if !got.Truncated || got.Stdout != "head-only" {
		t.Errorf("shadow record = %+v", got)
	}
	if len(got.Artifacts) != 1 {
		t.Fatalf("artifacts = %+v", got.Artifacts)
	}
	a := got.Artifacts[0]
	if a.Path != "/jobs/"+j.ID+"/stdout" || a.Size != int64(len(content)) || a.MD5 != wantMD5 {
		t.Errorf("re-staged artifact = %+v", a)
	}
	data, err := os.ReadFile(filepath.Join(stager.root, j.ID, "stdout"))
	if err != nil || !bytes.Equal(data, content) {
		t.Fatalf("re-staged bytes differ (%d vs %d, %v)", len(data), len(content), err)
	}
	// Transfers ran under the owner's delegated session, chunked.
	if len(readTokens) < 3 {
		t.Errorf("file.read calls = %d, want chunk iteration", len(readTokens))
	}
	for _, tok := range readTokens {
		if tok != "sess-peer1" {
			t.Errorf("file.read under token %q, want the delegated session", tok)
		}
	}
	if st := h.sched.Stats(); st.ArtifactBytes != uint64(len(content)) {
		t.Errorf("ArtifactBytes = %d, want %d", st.ArtifactBytes, len(content))
	}
	h.gate <- struct{}{} // let the blocker finish
}

// TestPullBackDigestMismatchRetries: a corrupted transfer must not
// finalize the shadow record.
func TestPullBackDigestMismatchRetries(t *testing.T) {
	stager := &tempStager{root: t.TempDir()}
	h := newHarnessJobs(t, Config{Pressure: -1}, jobsvc.Config{Workers: 1, Artifacts: stager}, nil)
	conn := h.addPeer("peer1", "http://peer1/rpc", 4)
	base := conn.handle
	conn.handle = func(token, method string, params []any) (any, error) {
		switch method {
		case "job.output":
			return map[string]any{
				"stdout": "h", "stderr": "", "exit_code": 0, "truncated": true,
				"artifacts": []any{map[string]any{
					"name": "stdout", "path": "/jobs/rjob/stdout", "size": 4, "md5": "00000000000000000000000000000000",
				}},
			}, nil
		case "file.read":
			return map[string]any{"data": []byte("data"), "eof": true}, nil
		}
		return base(token, method, params)
	}
	h.occupy(t)
	j, err := h.jobs.Submit(ownerDN, "corrupt", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.sched.Kick() // forward
	h.sched.Kick() // pull-back attempt: digest mismatch
	if got, _ := h.jobs.Get(j.ID); got.State != jobsvc.StateRemote {
		t.Errorf("state = %s, want still remote (retry next cycle)", got.State)
	}
	// The partial stage was discarded.
	if _, err := os.Stat(filepath.Join(stager.root, j.ID)); !os.IsNotExist(err) {
		t.Error("partial artifact tree not discarded")
	}
	h.gate <- struct{}{}
}

// TestPullBackSkipsOversizedArtifact: a peer artifact beyond the local
// spool cap is skipped up front (it could never digest-verify here); the
// job still finalizes with its truncated heads.
func TestPullBackSkipsOversizedArtifact(t *testing.T) {
	stager := &tempStager{root: t.TempDir()}
	h := newHarnessJobs(t, Config{Pressure: -1}, jobsvc.Config{Workers: 1, Artifacts: stager, SpoolLimit: 1024}, nil)
	conn := h.addPeer("peer1", "http://peer1/rpc", 4)
	base := conn.handle
	conn.handle = func(token, method string, params []any) (any, error) {
		switch method {
		case "job.output":
			return map[string]any{
				"stdout": "head", "stderr": "", "exit_code": 0, "truncated": true,
				"artifacts": []any{map[string]any{
					"name": "stdout", "path": "/jobs/rjob/stdout", "size": 10_000_000, "md5": "ff",
				}},
			}, nil
		case "file.read":
			t.Error("oversized artifact must not be transferred at all")
			return nil, &rpc.Fault{Code: rpc.CodeApplication, Message: "unexpected"}
		}
		return base(token, method, params)
	}
	h.occupy(t)
	j, err := h.jobs.Submit(ownerDN, "huge-output", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.sched.Kick() // forward
	h.sched.Kick() // pull back, skipping the artifact
	got := waitState(t, h.jobs, j.ID, jobsvc.StateDone)
	if !got.Truncated || len(got.Artifacts) != 0 || got.Stdout != "head" {
		t.Errorf("finalized = truncated %v artifacts %+v stdout %q", got.Truncated, got.Artifacts, got.Stdout)
	}
	h.gate <- struct{}{}
}
