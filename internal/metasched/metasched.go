// Package metasched implements a federated meta-scheduler over the
// Clarens job service: every server is simultaneously client and server
// (cs/0306002), and a local scheduler under queue pressure forwards work
// to underloaded peers discovered at runtime — the resource-management
// pattern of the GAE papers (cs/0504033).
//
// The scheduler runs one control loop per server. Each cycle it
//
//  1. refreshes the peer table from the discovery cache (peers advertise
//     their job service through the station network; records expire on
//     their TTL and vanish when not republished),
//  2. polls every peer's job.stats for queue depth, running count, and
//     worker-pool size, scoring peers by free capacity,
//  3. watches jobs previously forwarded: terminal results are pulled back
//     into the local shadow record, and jobs whose peer stopped answering
//     for DeadPolls consecutive cycles fall back into the local queue,
//  4. when the local queue exceeds the pressure threshold, claims the
//     jobs farthest from a local worker and forwards them to the
//     least-loaded peers, batched per owner over system.multicall.
//
// Identity travels with the work: before forwarding an owner's jobs the
// scheduler mints a one-time delegation secret from the local proxy
// service and redeems it on the peer via proxy.login_delegated, so the
// remote job.submit executes under a session for the submitting DN — the
// peer sees the real owner, applies its own quotas and user mapping, and
// the owner's job.status/job.output on the submitting server proxy to the
// executing peer transparently.
//
// Fallback is at-least-once, not exactly-once: a peer that was merely
// partitioned (rather than dead) may still be running a job the
// scheduler reclaimed after DeadPolls failed polls, so a payload can
// execute twice in that window — payloads should be idempotent or guard
// externally. The scheduler narrows the window by remembering the
// orphaned (peer, remote id, session) binding and best-effort cancelling
// the remote copy once the peer answers again.
package metasched

import (
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"time"

	"clarens/internal/discovery"
	"clarens/internal/jobsvc"
	"clarens/internal/pki"
	"clarens/internal/proxysvc"
	"clarens/internal/pubsub"
	"clarens/internal/resilience"
	"clarens/internal/rpc"
	"clarens/internal/telemetry"
)

// Call is one sub-call in a batched peer request. Trace optionally
// carries the originating request's trace identifier, so a batched
// forward keeps each job on its own trace on the peer; Sample marks the
// trace force-sampled, keeping it in the peer's flight recorder too.
type Call struct {
	Method string
	Params []any
	Trace  string
	Sample bool
}

// Result is one sub-call outcome from a batched peer request.
type Result struct {
	Value any
	Err   error
}

// Conn is a client connection to one peer server. Implementations carry
// the session token per call so one connection serves many identities
// (the public clarens.Client is adapted to this at assembly time).
type Conn interface {
	// Call invokes one method under the given session token ("" =
	// anonymous), stamping the outbound request with trace when non-empty
	// so the peer's logs correlate with the originating request.
	Call(token, trace, method string, params ...any) (any, error)
	// Batch executes sub-calls in a single system.multicall round trip
	// under token; per-call faults come back in each Result.
	Batch(token string, calls []Call) ([]Result, error)
	Close()
}

// Dialer opens a Conn to a peer RPC endpoint URL.
type Dialer func(url string) (Conn, error)

// EventStream is a live push subscription to a peer's event bus; the
// channel closes when the subscription is torn down.
type EventStream interface {
	Events() <-chan pubsub.Event
	Close() error
}

// EventDialer opens a push subscription to the /ws endpoint of the
// server at rpcURL, authenticated by the delegated session token and
// filtered by query. An error means the peer has no push plane (no /ws
// endpoint, or the dial failed); the scheduler then keeps batch-polling
// that peer as before.
type EventDialer func(rpcURL, token, query string) (EventStream, error)

// PeerSource lists live peer job services (implemented by
// discovery.Service).
type PeerSource interface {
	PeersFor(service, excludeServer string) []discovery.Entry
}

// Delegator mints one-time delegation secrets (implemented by
// proxysvc.Service).
type Delegator interface {
	IssueDelegation(dn pki.DN, ttl time.Duration) (string, error)
}

// Config tunes the meta-scheduler.
type Config struct {
	// ServerName is the local server's discovery name; its own entries
	// are excluded from the peer table.
	ServerName string
	// SelfURL returns the URL peers should call back to verify
	// delegations (the local RPC endpoint; a func because the listen
	// address is only known after Start).
	SelfURL func() string
	// Pressure is the local queued-job depth above which forwarding
	// starts (default 8; negative = forward whenever a peer is idle).
	Pressure int
	// PollInterval is the control-loop period: peer load polls, remote
	// watches, and forwarding decisions all run on it (default 2s).
	PollInterval time.Duration
	// MaxForward caps jobs forwarded to one peer in one cycle
	// (default 16).
	MaxForward int
	// DelegationTTL bounds the validity of the one-time delegation
	// secrets minted for forwarding (default 2m).
	DelegationTTL time.Duration
	// DeadPolls is how many consecutive failed remote-watch polls a
	// forwarded job tolerates before falling back to the local queue
	// (default 3).
	DeadPolls int
	// Breaker tunes the per-peer circuit breakers that replace the old
	// ad-hoc penalty counter: transport failures trip a peer's breaker,
	// a failed forward or delegation handoff force-opens it, and while
	// open the peer is skipped by forwarding and polled only by the
	// half-open recovery probe. A zero OpenFor defaults to
	// 5x PollInterval — the old PenaltyCycles sit-out expressed in time.
	Breaker resilience.BreakerConfig
	// Telemetry, when set, exports the per-peer breaker states
	// (clarens.federation.breaker.<peer>: 0 closed, 0.5 half-open,
	// 1 open) and the open-breaker count on /metrics.
	Telemetry *telemetry.Registry
	// Spans, when set, records forward edges into the flight recorder
	// (which peer each trace was forwarded to — the fan-out map federated
	// trace assembly follows) and propagates the force-sample bit of
	// sampled traces onto the batched peer calls.
	Spans *telemetry.SpanStore
	// EventDial, when set, lets the watch loop subscribe to peer job
	// events over /ws instead of batch-polling job.status every cycle:
	// push-covered jobs are only polled once when the subscription is
	// established, once when a terminal event arrives (to pull the
	// result back), and on the safety-net interval. Nil keeps the pure
	// polling behavior.
	EventDial EventDialer
	// WatchSafetyInterval is how often a push-covered remote job is
	// still status-polled as a safety net against missed events
	// (default 15x PollInterval, min 2s).
	WatchSafetyInterval time.Duration
}

func (c *Config) fill() {
	if c.Pressure == 0 {
		c.Pressure = 8
	} else if c.Pressure < 0 {
		c.Pressure = 0
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Second
	}
	if c.MaxForward <= 0 {
		c.MaxForward = 16
	}
	if c.DelegationTTL <= 0 {
		c.DelegationTTL = proxysvc.DefaultDelegationTTL
	}
	if c.DeadPolls <= 0 {
		c.DeadPolls = 3
	}
	if c.Breaker.OpenFor <= 0 {
		c.Breaker.OpenFor = 5 * c.PollInterval
	}
	if c.WatchSafetyInterval <= 0 {
		c.WatchSafetyInterval = 15 * c.PollInterval
		if c.WatchSafetyInterval < 2*time.Second {
			c.WatchSafetyInterval = 2 * time.Second
		}
	}
}

// peer is one row of the scored peer table. Health beyond the last
// poll's alive bit lives in the scheduler's per-peer breaker (keyed by
// URL), not here.
type peer struct {
	name    string
	url     string
	queued  int
	running int
	workers int
	alive   bool // last job.stats poll succeeded
	expires time.Time
}

// free is the peer's uncommitted worker capacity — the number of jobs it
// could start immediately.
func (p *peer) free() int {
	n := p.workers - p.running - p.queued
	if n < 0 {
		return 0
	}
	return n
}

// Stats is a snapshot of the scheduler's counters.
type Stats struct {
	Peers         int    // live peers in the table
	Forwarded     uint64 // jobs accepted by peers
	PulledBack    uint64 // remote results finalized locally
	Fallbacks     uint64 // jobs returned to the local queue after a failure
	ArtifactBytes uint64 // artifact bytes fetched from peers and re-staged
	StatusRPCs    uint64 // job.status calls issued by the watch loop
	PushEvents    uint64 // peer job events received over push subscriptions
	PushWatches   int    // live peer push subscriptions
	BreakerOpen   int    // peers whose circuit breaker is currently open
}

// Scheduler is the per-server federated meta-scheduler.
type Scheduler struct {
	jobs     *jobsvc.Service
	peers    PeerSource
	deleg    Delegator
	dial     Dialer
	logger   *log.Logger
	cfg      Config
	breakers *resilience.Group // per-peer circuit breakers, keyed by endpoint URL
	cycleMu  sync.Mutex        // serializes cycles (ticker loop vs. Kick)

	mu        sync.Mutex
	table     map[string]*peer    // peer name -> scored row
	conns     map[string]Conn     // endpoint URL -> connection
	sessions  map[string]string   // peer name + "|" + owner DN -> delegated session
	failPolls map[string]int      // local job id -> consecutive failed watch polls
	orphans   map[string][]orphan // endpoint URL -> reclaimed remote copies to cancel
	watches   map[watchKey]*peerWatch
	noWS      map[string]time.Time // endpoint URL -> next push-dial retry
	lastPoll  map[string]time.Time // local job id -> last watch status poll
	gauged    map[string]bool      // peer names with a registered breaker gauge
	stats     Stats

	wakeCh  chan struct{} // push events nudge the loop to run a cycle now
	stopCh  chan struct{}
	stopped bool
	wg      sync.WaitGroup
}

// watchKey identifies one push subscription: the peer endpoint plus the
// delegated session it authenticates as (one watch per owner per peer —
// the peer's owner scoping admits exactly that owner's job events).
type watchKey struct{ url, token string }

// peerWatch is one live push subscription to a peer's event bus.
type peerWatch struct {
	stream EventStream

	mu      sync.Mutex
	ready   map[string]bool // remote job ids with an unconsumed terminal event
	pollAll bool            // stream ended: next cycle polls everything once
	lost    bool            // stream ended permanently; prune and re-dial
}

// New builds a scheduler and installs it as the job service's remote
// controller, so job.status/job.output/job.cancel proxy to executing
// peers. Call Start to begin the control loop.
func New(jobs *jobsvc.Service, peers PeerSource, deleg Delegator, dial Dialer, logger *log.Logger, cfg Config) (*Scheduler, error) {
	if jobs == nil || peers == nil || deleg == nil || dial == nil {
		return nil, fmt.Errorf("metasched: jobs, peers, delegator, and dialer are all required")
	}
	cfg.fill()
	if cfg.SelfURL == nil {
		return nil, fmt.Errorf("metasched: SelfURL is required (peers verify delegations against it)")
	}
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	s := &Scheduler{
		jobs:      jobs,
		peers:     peers,
		deleg:     deleg,
		dial:      dial,
		logger:    logger,
		cfg:       cfg,
		breakers:  resilience.NewGroup(cfg.Breaker),
		table:     make(map[string]*peer),
		conns:     make(map[string]Conn),
		sessions:  make(map[string]string),
		failPolls: make(map[string]int),
		orphans:   make(map[string][]orphan),
		watches:   make(map[watchKey]*peerWatch),
		noWS:      make(map[string]time.Time),
		lastPoll:  make(map[string]time.Time),
		gauged:    make(map[string]bool),
		wakeCh:    make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.RegisterGauge("clarens.federation.breaker_open",
			"Peers whose circuit breaker is currently open.",
			func() float64 { return float64(s.breakers.OpenCount()) })
	}
	jobs.SetRemoteController(s)
	return s, nil
}

// registerBreakerGauge exports one peer's breaker state on /metrics the
// first time the peer is seen: 0 closed, 0.5 half-open, 1 open. Called
// with s.mu held.
func (s *Scheduler) registerBreakerGauge(name string) {
	if s.cfg.Telemetry == nil || s.gauged[name] {
		return
	}
	s.gauged[name] = true
	s.cfg.Telemetry.RegisterGauge("clarens.federation.breaker."+name,
		"Circuit breaker state for peer "+name+" (0 closed, 0.5 half-open, 1 open).",
		func() float64 {
			s.mu.Lock()
			p, ok := s.table[name]
			var url string
			if ok {
				url = p.url
			}
			s.mu.Unlock()
			if !ok {
				return 0
			}
			switch s.breakers.State(url) {
			case resilience.Open:
				return 1
			case resilience.HalfOpen:
				return 0.5
			}
			return 0
		})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Start launches the control loop.
func (s *Scheduler) Start() {
	s.wg.Add(1)
	go s.loop()
}

// Stop halts the control loop and closes peer connections. Forwarded
// jobs keep their shadow records; a later Start (or restart) re-adopts
// them.
func (s *Scheduler) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stopCh)
	watches := s.watches
	s.watches = make(map[watchKey]*peerWatch)
	s.mu.Unlock()
	// Close push streams first so their runWatch goroutines unblock and
	// the wg.Wait below can finish.
	for _, w := range watches {
		w.stream.Close()
	}
	s.wg.Wait()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.conns = make(map[string]Conn)
	s.mu.Unlock()
}

// Stats returns the live counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Peers = 0
	for _, p := range s.table {
		if p.alive {
			st.Peers++
		}
	}
	st.PushWatches = len(s.watches)
	st.BreakerOpen = s.breakers.OpenCount()
	return st
}

func (s *Scheduler) loop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.Kick()
		case <-s.wakeCh:
			// A push event (usually a terminal state) arrived: react now
			// instead of waiting out the poll interval.
			s.Kick()
		}
	}
}

// wake nudges the control loop to run a cycle as soon as possible.
func (s *Scheduler) wake() {
	select {
	case s.wakeCh <- struct{}{}:
	default:
	}
}

// Kick runs one full control cycle synchronously: refresh peers, poll
// load, watch forwarded jobs, forward under pressure. Exposed so tests
// (and operators via examples) can drive the scheduler deterministically.
func (s *Scheduler) Kick() {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	s.refreshPeers()
	s.pollPeers()
	s.reapOrphans()
	s.watchRemote()
	s.forward()
}

// conn returns (dialing if needed) the connection for an endpoint URL.
func (s *Scheduler) conn(url string) (Conn, error) {
	s.mu.Lock()
	c, ok := s.conns[url]
	s.mu.Unlock()
	if ok {
		return c, nil
	}
	c, err := s.dial(url)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if existing, ok := s.conns[url]; ok {
		s.mu.Unlock()
		c.Close()
		return existing, nil
	}
	s.conns[url] = c
	s.mu.Unlock()
	return c, nil
}

// dropConn discards a connection after transport-level failures so the
// next use re-dials.
func (s *Scheduler) dropConn(url string) {
	s.mu.Lock()
	c, ok := s.conns[url]
	if ok {
		delete(s.conns, url)
	}
	s.mu.Unlock()
	if ok {
		c.Close()
	}
}

// refreshPeers folds the discovery cache into the peer table: new peers
// appear, moved peers rebind to their new URL, and entries past their TTL
// drop out (with their cached sessions).
func (s *Scheduler) refreshPeers() {
	entries := s.peers.PeersFor("job", s.cfg.ServerName)
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		if now.After(e.Expires) {
			continue
		}
		seen[e.Server] = true
		p, ok := s.table[e.Server]
		if !ok {
			p = &peer{name: e.Server}
			s.table[e.Server] = p
			s.registerBreakerGauge(e.Server)
		}
		if p.url != e.URL {
			p.url = e.URL // service moved: rebind (location independence)
		}
		p.expires = e.Expires
	}
	for name, p := range s.table {
		if !seen[name] && now.After(p.expires) {
			delete(s.table, name)
			s.breakers.Forget(p.url)
			for key := range s.sessions {
				if len(key) > len(name) && key[:len(name)+1] == name+"|" {
					delete(s.sessions, key)
				}
			}
		}
	}
}

// pollPeers refreshes every peer's load score from its public job.stats.
// The poll doubles as the breaker recovery path: an open breaker past
// its cooldown admits exactly this call as the half-open probe, and a
// successful answer re-closes it.
func (s *Scheduler) pollPeers() {
	s.mu.Lock()
	peers := make([]*peer, 0, len(s.table))
	for _, p := range s.table {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	for _, p := range peers {
		done, err := s.breakers.Allow(p.url)
		if err != nil {
			// Breaker open inside its cooldown: skip the peer this cycle.
			s.setAlive(p, false)
			continue
		}
		c, err := s.conn(p.url)
		if err != nil {
			done(false)
			s.setAlive(p, false)
			continue
		}
		v, err := c.Call("", "", "job.stats")
		if err != nil && !isFault(err) {
			done(false)
			s.dropConn(p.url)
			s.setAlive(p, false)
			continue
		}
		done(true)
		st, ok := v.(map[string]any)
		if !ok {
			s.setAlive(p, false)
			continue
		}
		s.mu.Lock()
		p.queued, _ = rpc.CoerceInt(st["queued"])
		p.running, _ = rpc.CoerceInt(st["running"])
		p.workers, _ = rpc.CoerceInt(st["workers"])
		p.alive = true
		s.mu.Unlock()
	}
}

func (s *Scheduler) setAlive(p *peer, alive bool) {
	s.mu.Lock()
	p.alive = alive
	s.mu.Unlock()
}

// watchRemote tracks forwarded jobs on their executing peers, pulls
// back terminal results, and falls back to local execution when a peer
// stops answering. With a push subscription (Config.EventDial) to a
// peer, its jobs are status-polled only when an event says something
// happened (plus a coarse safety-net sweep); without one — or when the
// peer lacks /ws — every job is batch-polled each cycle as before.
func (s *Scheduler) watchRemote() {
	remote := s.jobs.RemoteJobs()
	if len(remote) == 0 {
		s.pruneWatches(nil)
		return
	}
	// Group by (endpoint, delegated session): each group is one push
	// subscription, and one batched status sweep under the owner's
	// identity for whatever jobs are due.
	groups := make(map[watchKey][]*jobsvc.Job)
	for _, j := range remote {
		if j.RemoteID == "" || j.PeerURL == "" {
			// A remote record with no peer binding can only predate this
			// process: cycles are serialized (cycleMu) and forward()
			// resolves every claim to MarkForwarded or fallback before its
			// cycle ends, so nothing in-flight looks like this. It means a
			// past run crashed between ClaimForward and MarkForwarded —
			// no peer holds the job, so reclaim it for the local queue
			// rather than skipping it forever.
			s.fallback(j, "recovered remote record with no peer binding; re-queued locally")
			continue
		}
		k := watchKey{j.PeerURL, j.PeerSession}
		groups[k] = append(groups[k], j)
	}
	s.pruneWatches(groups)
	for k, jobs := range groups {
		// Establish the push subscription BEFORE polling: any transition
		// after this point raises an event, and the initial poll below
		// covers everything that happened before it. No gap.
		w := s.ensureWatch(k)
		due := s.pollDue(w, jobs)
		if len(due) == 0 {
			continue
		}
		// Breaker admission: an open peer still advances each job's
		// failed-poll count, so work on a dead peer falls back through the
		// usual DeadPolls tolerance instead of waiting out the cooldown.
		done, err := s.breakers.Allow(k.url)
		if err != nil {
			s.failGroup(due, err)
			continue
		}
		c, err := s.conn(k.url)
		if err != nil {
			done(false)
			s.failGroup(due, err)
			continue
		}
		calls := make([]Call, len(due))
		for i, j := range due {
			calls[i] = Call{Method: "job.status", Params: []any{j.RemoteID}, Trace: j.Trace}
		}
		s.mu.Lock()
		s.stats.StatusRPCs += uint64(len(calls))
		s.mu.Unlock()
		results, err := c.Batch(k.token, calls)
		if err != nil || len(results) != len(due) {
			done(err == nil || isFault(err))
			s.dropConn(k.url)
			s.failGroup(due, err)
			continue
		}
		done(true)
		now := time.Now()
		for i, r := range results {
			j := due[i]
			s.mu.Lock()
			s.lastPoll[j.ID] = now
			s.mu.Unlock()
			if w != nil {
				w.mu.Lock()
				delete(w.ready, j.RemoteID)
				w.mu.Unlock()
			}
			if r.Err != nil {
				if isAuthFault(r.Err) {
					// The delegated session expired while the job was
					// still remote. Renew it and retry next cycle — the
					// remote attempt may well be running, and requeuing
					// now would execute the job twice.
					s.renewDelegation(c, j)
					s.failJob(j, r.Err)
					continue
				}
				// The peer answered but no longer vouches for the job
				// (lost its table after a restart): immediate fallback.
				s.fallback(j, "peer lost job: "+r.Err.Error())
				continue
			}
			st, _ := r.Value.(map[string]any)
			state, _ := st["state"].(string)
			if !jobsvc.Terminal(state) {
				s.clearFail(j.ID)
				continue
			}
			s.pullBack(c, k.token, j, state)
		}
	}
}

// ensureWatch returns the live push subscription for a group, dialing
// one if the peer supports it. nil means no push coverage this cycle
// (no EventDialer configured, the peer has no /ws, or the last dial
// failed and its backoff has not elapsed) — the caller then polls every
// job in the group.
func (s *Scheduler) ensureWatch(k watchKey) *peerWatch {
	if s.cfg.EventDial == nil {
		return nil
	}
	if s.breakers.State(k.url) == resilience.Open {
		// No point dialing a push subscription at a peer the breaker
		// already knows is down; the recovery probe re-opens the door.
		return nil
	}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return nil
	}
	if w, ok := s.watches[k]; ok {
		w.mu.Lock()
		lost := w.lost
		w.mu.Unlock()
		if !lost {
			s.mu.Unlock()
			return w
		}
		delete(s.watches, k)
	}
	if until, ok := s.noWS[k.url]; ok {
		if time.Now().Before(until) {
			s.mu.Unlock()
			return nil
		}
		delete(s.noWS, k.url)
	}
	s.mu.Unlock()

	st, err := s.cfg.EventDial(k.url, k.token, "type=job.state")
	if err != nil {
		// Peer without a push plane (or dial failure): back off before
		// probing again, and keep batch-polling in the meantime.
		backoff := 30 * s.cfg.PollInterval
		if backoff < 5*time.Second {
			backoff = 5 * time.Second
		}
		s.mu.Lock()
		s.noWS[k.url] = time.Now().Add(backoff)
		s.mu.Unlock()
		s.logger.Printf("metasched: no push events from %s (%v); falling back to polling", k.url, err)
		return nil
	}
	w := &peerWatch{stream: st, ready: make(map[string]bool)}
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		st.Close()
		return nil
	}
	if existing, ok := s.watches[k]; ok {
		s.mu.Unlock()
		st.Close()
		return existing
	}
	s.watches[k] = w
	s.wg.Add(1)
	s.mu.Unlock()
	go s.runWatch(w)
	s.logger.Printf("metasched: watching %s over push events", k.url)
	return w
}

// runWatch drains one push subscription, marking jobs whose terminal
// transition arrived so the next cycle polls exactly those, and nudging
// the control loop awake for each.
func (s *Scheduler) runWatch(w *peerWatch) {
	defer s.wg.Done()
	for ev := range w.stream.Events() {
		s.mu.Lock()
		s.stats.PushEvents++
		s.mu.Unlock()
		if ev.Type != "job.state" {
			// Lag markers and anything else we cannot attribute to a
			// specific job: poll the whole group next cycle to resync.
			w.mu.Lock()
			w.pollAll = true
			w.mu.Unlock()
			s.wake()
			continue
		}
		rid := ev.Tags["job_id"]
		if rid == "" {
			continue
		}
		state := ev.Tags["state"]
		if !jobsvc.Terminal(state) {
			continue // progress is nice to know; only terminal states need a pull
		}
		w.mu.Lock()
		w.ready[rid] = true
		w.mu.Unlock()
		s.wake()
	}
	// Stream over: whether the peer restarted or the server is shutting
	// down, stop trusting push coverage for this group.
	w.mu.Lock()
	w.lost = true
	w.pollAll = true
	w.mu.Unlock()
	s.wake()
}

// pollDue selects which of a group's jobs this cycle's status sweep
// should cover. Without push coverage (w == nil) that is all of them;
// with it, the jobs whose terminal event arrived, jobs never polled
// since forwarding (covers transitions that predate the subscription),
// and jobs past the safety-net interval.
func (s *Scheduler) pollDue(w *peerWatch, jobs []*jobsvc.Job) []*jobsvc.Job {
	if w == nil {
		return jobs
	}
	w.mu.Lock()
	pollAll := w.pollAll
	w.pollAll = false
	ready := make(map[string]bool, len(w.ready))
	for id := range w.ready {
		ready[id] = true
	}
	w.mu.Unlock()
	if pollAll {
		return jobs
	}
	now := time.Now()
	var due []*jobsvc.Job
	s.mu.Lock()
	for _, j := range jobs {
		last, polled := s.lastPoll[j.ID]
		if ready[j.RemoteID] || !polled || now.Sub(last) >= s.cfg.WatchSafetyInterval {
			due = append(due, j)
		}
	}
	s.mu.Unlock()
	return due
}

// pruneWatches closes push subscriptions for groups that no longer have
// remote jobs (and dead streams), so watches do not outlive the work
// they cover.
func (s *Scheduler) pruneWatches(groups map[watchKey][]*jobsvc.Job) {
	var drop []*peerWatch
	s.mu.Lock()
	for k, w := range s.watches {
		w.mu.Lock()
		lost := w.lost
		w.mu.Unlock()
		if lost || len(groups[k]) == 0 {
			delete(s.watches, k)
			drop = append(drop, w)
		}
	}
	s.mu.Unlock()
	for _, w := range drop {
		w.stream.Close()
	}
}

// pullBack fetches a terminal remote job's output and finalizes the local
// shadow record. Inline heads come back in the job.output envelope;
// staged artifacts are fetched from the executing peer by chunk-iterating
// its file.read under the job owner's delegated session (the peer's
// artifact ACL is scoped to exactly that DN) and re-staged into the local
// artifact tree, so the shadow record converges to the same shape as a
// locally executed job. A failed transfer leaves the record remote and
// retries next cycle; persistent failure degrades through the usual
// DeadPolls fallback.
func (s *Scheduler) pullBack(c Conn, token string, j *jobsvc.Job, state string) {
	v, err := c.Call(token, j.Trace, "job.output", j.RemoteID)
	out, _ := v.(map[string]any)
	if err != nil || out == nil {
		s.failJob(j, err)
		return
	}
	res := jobsvc.ExecResult{}
	res.Stdout, _ = out["stdout"].(string)
	res.Stderr, _ = out["stderr"].(string)
	res.ExitCode, _ = rpc.CoerceInt(out["exit_code"])
	res.Truncated, _ = out["truncated"].(bool)
	res.StdoutTruncated, _ = out["stdout_truncated"].(bool)
	res.StderrTruncated, _ = out["stderr_truncated"].(bool)
	if arts, ok := out["artifacts"].([]any); ok && len(arts) > 0 && s.jobs.StagingEnabled() {
		staged, pulled, err := s.pullArtifacts(c, token, j, arts)
		if err != nil {
			s.jobs.DiscardRemoteStage(j.ID)
			s.failJob(j, fmt.Errorf("artifact pull-back from %s: %w", j.Peer, err))
			return
		}
		res.Artifacts = staged
		s.mu.Lock()
		s.stats.ArtifactBytes += uint64(pulled)
		s.mu.Unlock()
	}
	errMsg := ""
	if state == jobsvc.StateFailed || state == jobsvc.StateCancelled {
		errMsg = fmt.Sprintf("remote %s on peer %s", state, j.Peer)
	}
	if err := s.jobs.CompleteRemote(j.ID, state, res, errMsg); err != nil {
		s.logger.Printf("metasched: finalize %s: %v", j.ID, err)
		return
	}
	s.mu.Lock()
	s.stats.PulledBack++
	delete(s.failPolls, j.ID)
	delete(s.lastPoll, j.ID)
	s.mu.Unlock()
}

// artifactChunk is the file.read chunk size used for artifact transfers.
const artifactChunk = 1 << 20

// pullArtifacts fetches every artifact referenced by a peer's job.output
// and re-stages it locally, verifying digests. Returns the local
// references and total bytes transferred.
func (s *Scheduler) pullArtifacts(c Conn, token string, j *jobsvc.Job, arts []any) ([]jobsvc.Artifact, int64, error) {
	out := make([]jobsvc.Artifact, 0, len(arts))
	var pulled int64
	for _, e := range arts {
		m, _ := e.(map[string]any)
		if m == nil {
			continue
		}
		name, _ := m["name"].(string)
		path, _ := m["path"].(string)
		wantMD5, _ := m["md5"].(string)
		if name == "" || path == "" {
			continue
		}
		// An artifact bigger than the local spool cap could never verify
		// here — transferring it would truncate into a guaranteed digest
		// mismatch and a futile retry loop. Skip it explicitly; the
		// record keeps its truncated heads.
		if sz, ok := rpc.CoerceInt(m["size"]); ok && int64(sz) > s.jobs.SpoolLimit() {
			s.logger.Printf("metasched: skipping artifact %q of %s: %d bytes exceeds the local spool limit %d", name, j.ID, sz, s.jobs.SpoolLimit())
			continue
		}
		r := &remoteFileReader{c: c, token: token, trace: j.Trace, path: path}
		a, err := s.jobs.StageRemoteArtifact(j.ID, name, r)
		if err != nil {
			return nil, 0, fmt.Errorf("stage %q: %w", name, err)
		}
		if wantMD5 != "" && a.MD5 != wantMD5 {
			return nil, 0, fmt.Errorf("artifact %q digest mismatch (got %s, peer reported %s)", name, a.MD5, wantMD5)
		}
		// A stream the peer's own spool cap cut short stays marked: the
		// re-staged copy is byte-identical but still not the full stream.
		a.Partial, _ = m["partial"].(bool)
		out = append(out, a)
		pulled += a.Size
	}
	return out, pulled, nil
}

// remoteFileReader adapts a peer's chunk-iterated file.read to
// io.Reader, terminating on the response's eof flag (no zero-byte probe
// round trip).
type remoteFileReader struct {
	c      Conn
	token  string
	trace  string
	path   string
	offset int
	buf    []byte
	eof    bool
	err    error
}

func (r *remoteFileReader) Read(p []byte) (int, error) {
	for len(r.buf) == 0 {
		if r.err != nil {
			return 0, r.err
		}
		if r.eof {
			return 0, io.EOF
		}
		v, err := r.c.Call(r.token, r.trace, "file.read", r.path, r.offset, artifactChunk)
		if err != nil {
			r.err = err
			return 0, err
		}
		m, ok := v.(map[string]any)
		if !ok {
			r.err = fmt.Errorf("file.read returned %T", v)
			return 0, r.err
		}
		data, _ := rpc.CoerceBytes(m["data"])
		r.eof, _ = m["eof"].(bool)
		r.offset += len(data)
		r.buf = data
		if len(data) == 0 {
			if r.eof {
				return 0, io.EOF
			}
			// Empty chunk without eof would loop at this offset forever.
			r.err = fmt.Errorf("file.read returned no data and no eof at offset %d", r.offset)
			return 0, r.err
		}
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}

// failGroup records one failed watch poll for every job in a group and
// falls back the ones past the tolerance.
func (s *Scheduler) failGroup(jobs []*jobsvc.Job, err error) {
	for _, j := range jobs {
		s.failJob(j, err)
	}
}

func (s *Scheduler) failJob(j *jobsvc.Job, err error) {
	s.mu.Lock()
	s.failPolls[j.ID]++
	n := s.failPolls[j.ID]
	s.mu.Unlock()
	if n < s.cfg.DeadPolls {
		return
	}
	reason := fmt.Sprintf("peer %s unreachable after %d polls; re-queued locally", j.Peer, n)
	if err != nil {
		reason = fmt.Sprintf("peer %s unreachable after %d polls (%v); re-queued locally", j.Peer, n, err)
	}
	// The peer may only be partitioned and still running this job
	// (at-least-once fallback): remember the remote binding so the copy
	// can be cancelled if the peer answers again.
	if j.RemoteID != "" && j.PeerURL != "" {
		s.mu.Lock()
		s.orphans[j.PeerURL] = append(s.orphans[j.PeerURL], orphan{remoteID: j.RemoteID, token: j.PeerSession, trace: j.Trace})
		s.mu.Unlock()
	}
	s.fallback(j, reason)
}

// orphan is the remote copy of a job reclaimed locally after its peer
// stopped answering; if the peer was only partitioned the copy may still
// be running, so the control loop best-effort cancels it on return.
type orphan struct {
	remoteID string
	token    string // delegated session the copy was submitted under
	trace    string // the job's trace, kept on the cancel call
	cycles   int    // reap attempts so far; dropped at orphanMaxCycles
}

// orphanMaxCycles bounds how long an orphaned remote copy is remembered
// — the delegated session it would be cancelled under expires long
// before a peer absent this many cycles comes back.
const orphanMaxCycles = 150

// reapOrphans tries to cancel remote copies of jobs reclaimed from
// unresponsive peers, closing (best-effort) the duplicate-execution
// window of the at-least-once fallback. An entry is dropped once the
// peer answers the cancel — whatever the verdict: cancelled, already
// terminal, unknown job, or expired session all mean there is nothing
// further to do — and retained across cycles while the peer stays
// unreachable, up to orphanMaxCycles.
func (s *Scheduler) reapOrphans() {
	s.mu.Lock()
	pending := s.orphans
	s.orphans = make(map[string][]orphan)
	s.mu.Unlock()
	for url, orphans := range pending {
		done, err := s.breakers.Allow(url)
		if err != nil {
			// Breaker open: the peer is known-dead, keep the copies without
			// burning a round trip on them.
			s.keepOrphans(url, orphans)
			continue
		}
		c, err := s.conn(url)
		if err != nil {
			done(false)
			s.keepOrphans(url, orphans)
			continue
		}
		ok := true
		for i, o := range orphans {
			_, err := c.Call(o.token, o.trace, "job.cancel", o.remoteID)
			if err != nil && !isFault(err) {
				// Transport failure: the peer is still unreachable. Keep
				// this and the remaining copies for a later cycle.
				ok = false
				s.dropConn(url)
				s.keepOrphans(url, orphans[i:])
				break
			}
			if err != nil {
				// The peer answered with a fault — unknown job, already
				// terminal, expired session. Nothing left to cancel, but
				// the copy may have run to completion there: say so.
				s.logger.Printf("metasched: orphaned remote copy %s on %s not cancelled (%v); it may have completed remotely", o.remoteID, url, err)
				continue
			}
			s.logger.Printf("metasched: cancelled orphaned remote copy %s on %s", o.remoteID, url)
		}
		done(ok)
	}
}

// keepOrphans re-files orphans that could not be reaped this cycle,
// aging each and dropping the ones past orphanMaxCycles.
func (s *Scheduler) keepOrphans(url string, orphans []orphan) {
	var keep []orphan
	for _, o := range orphans {
		o.cycles++
		if o.cycles < orphanMaxCycles {
			keep = append(keep, o)
		}
	}
	if len(keep) == 0 {
		return
	}
	s.mu.Lock()
	s.orphans[url] = append(s.orphans[url], keep...)
	s.mu.Unlock()
}

// fallback returns one forwarded job to the local queue.
func (s *Scheduler) fallback(j *jobsvc.Job, reason string) {
	if err := s.jobs.RequeueLocal(j.ID, reason); err != nil {
		s.logger.Printf("metasched: requeue %s: %v", j.ID, err)
		return
	}
	s.mu.Lock()
	s.stats.Fallbacks++
	delete(s.failPolls, j.ID)
	delete(s.lastPoll, j.ID)
	s.mu.Unlock()
}

func (s *Scheduler) clearFail(id string) {
	s.mu.Lock()
	delete(s.failPolls, id)
	s.mu.Unlock()
}

// forward claims queued jobs beyond the pressure threshold and pushes
// them to the least-loaded live peers.
func (s *Scheduler) forward() {
	over := s.jobs.Stats().Queued - s.cfg.Pressure
	if over <= 0 {
		return
	}
	s.mu.Lock()
	cands := make([]*peer, 0, len(s.table))
	for _, p := range s.table {
		// Only fully healthy peers get new work: a half-open breaker means
		// the peer is still proving itself on the cheap stats probe.
		if p.alive && p.free() > 0 && s.breakers.State(p.url) == resilience.Closed {
			cands = append(cands, p)
		}
	}
	// Most idle capacity first; stable tiebreak on name for determinism.
	sort.Slice(cands, func(i, j int) bool {
		if fi, fj := cands[i].free(), cands[j].free(); fi != fj {
			return fi > fj
		}
		return cands[i].name < cands[j].name
	})
	s.mu.Unlock()
	for _, p := range cands {
		if over <= 0 {
			return
		}
		n := p.free()
		if n > over {
			n = over
		}
		if n > s.cfg.MaxForward {
			n = s.cfg.MaxForward
		}
		claimed := s.jobs.ClaimForward(n, p.name)
		if len(claimed) == 0 {
			return // queue drained underneath us
		}
		over -= len(claimed)
		s.forwardTo(p, claimed)
	}
}

// forwardTo submits claimed jobs to one peer, batched per owner under a
// delegated session. Every job either ends MarkForwarded or back in the
// local queue — none are stranded.
func (s *Scheduler) forwardTo(p *peer, claimed []*jobsvc.Job) {
	byOwner := make(map[string][]*jobsvc.Job)
	for _, j := range claimed {
		byOwner[j.Owner] = append(byOwner[j.Owner], j)
	}
	c, err := s.conn(p.url)
	if err != nil {
		s.penalize(p)
		for _, j := range claimed {
			s.fallback(j, fmt.Sprintf("peer %s unreachable at forward time: %v", p.name, err))
		}
		return
	}
	for owner, jobs := range byOwner {
		token, err := s.delegate(c, p.name, owner)
		if err != nil {
			s.penalize(p)
			for _, j := range jobs {
				s.fallback(j, fmt.Sprintf("delegation to peer %s failed: %v", p.name, err))
			}
			continue
		}
		calls := make([]Call, len(jobs))
		for i, j := range jobs {
			params := []any{j.Command, j.Priority, j.MaxRetries}
			if len(j.Collect) > 0 {
				collect := make([]any, len(j.Collect))
				for k, pat := range j.Collect {
					collect[k] = pat
				}
				params = append(params, collect)
			}
			calls[i] = Call{Method: "job.submit", Params: params, Trace: j.Trace}
			if st := s.cfg.Spans; st != nil && j.Trace != "" {
				// Record the forward edge before the batch leaves, so even a
				// trace whose job dies on the peer can still be assembled;
				// carry the force-sample bit so a sampled trace stays
				// sampled downstream.
				st.Link(j.Trace, p.url)
				calls[i].Sample = st.Sampled(j.Trace)
			}
		}
		results, err := c.Batch(token, calls)
		if err != nil || len(results) != len(jobs) {
			s.dropConn(p.url)
			s.penalize(p)
			for _, j := range jobs {
				s.fallback(j, fmt.Sprintf("forward to peer %s failed: %v", p.name, err))
			}
			continue
		}
		for i, r := range results {
			j := jobs[i]
			if r.Err != nil {
				if isAuthFault(r.Err) {
					s.dropSession(p.name, owner)
				}
				s.fallback(j, fmt.Sprintf("peer %s refused job: %v", p.name, r.Err))
				continue
			}
			rid, _ := r.Value.(string)
			if rid == "" {
				s.fallback(j, fmt.Sprintf("peer %s returned no job id", p.name))
				continue
			}
			if err := s.jobs.MarkForwarded(j.ID, p.url, rid, token); err != nil {
				// The peer holds the job but the local binding could not
				// be persisted; without it the watch loop would skip the
				// record forever. Withdraw the remote copy best-effort
				// and run the job locally instead.
				s.logger.Printf("metasched: bind %s->%s@%s: %v", j.ID, rid, p.name, err)
				c.Call(token, j.Trace, "job.cancel", rid)
				s.fallback(j, fmt.Sprintf("could not record forwarding to %s: %v", p.name, err))
				continue
			}
			s.mu.Lock()
			s.stats.Forwarded++
			p.queued++ // charge the table so this cycle doesn't overcommit
			s.mu.Unlock()
		}
	}
}

// penalize force-opens a peer's breaker after a failed forward or
// delegation handoff: the peer sits out until the cooldown elapses and
// the job.stats recovery probe succeeds — the old fixed penalty-cycle
// sit-out, now sharing state with the transport-level breaker.
func (s *Scheduler) penalize(p *peer) {
	s.breakers.For(p.url).ForceOpen()
}

func isAuthFault(err error) bool {
	var f *rpc.Fault
	if errors.As(err, &f) {
		return f.Code == rpc.CodeNotAuthorized || f.Code == rpc.CodeAccessDenied
	}
	return false
}

// isFault reports whether err is a structured RPC fault — i.e. the peer
// answered, as opposed to a transport-level failure.
func isFault(err error) bool {
	var f *rpc.Fault
	return errors.As(err, &f)
}

// delegate returns a session on the named peer acting as owner,
// performing the delegation handoff on first use: mint a one-time secret
// locally, redeem it on the peer, which calls back proxy.check_delegation
// here to verify.
func (s *Scheduler) delegate(c Conn, peerName, owner string) (string, error) {
	key := peerName + "|" + owner
	s.mu.Lock()
	token, ok := s.sessions[key]
	s.mu.Unlock()
	if ok {
		return token, nil
	}
	return s.loginDelegated(c, key, owner)
}

// loginDelegated performs the handoff and caches the resulting session.
func (s *Scheduler) loginDelegated(c Conn, key, owner string) (string, error) {
	dn, err := pki.ParseDN(owner)
	if err != nil {
		return "", fmt.Errorf("bad owner DN: %w", err)
	}
	secret, err := s.deleg.IssueDelegation(dn, s.cfg.DelegationTTL)
	if err != nil {
		return "", err
	}
	v, err := c.Call("", "", "proxy.login_delegated", owner, secret, s.cfg.SelfURL())
	if err != nil {
		return "", err
	}
	token, _ := v.(string)
	if token == "" {
		return "", fmt.Errorf("peer returned empty session token")
	}
	s.mu.Lock()
	s.sessions[key] = token
	s.mu.Unlock()
	return token, nil
}

// renewDelegation replaces an expired delegated session for j's owner on
// its executing peer and rebinds the shadow record, so the next watch
// poll authenticates again. Jobs sharing the stale session reuse the
// first renewal's token instead of logging in repeatedly.
func (s *Scheduler) renewDelegation(c Conn, j *jobsvc.Job) {
	key := j.Peer + "|" + j.Owner
	s.mu.Lock()
	token, ok := s.sessions[key]
	if ok && token == j.PeerSession {
		delete(s.sessions, key) // the cached session is the expired one
		ok = false
	}
	s.mu.Unlock()
	if !ok {
		var err error
		token, err = s.loginDelegated(c, key, j.Owner)
		if err != nil {
			s.logger.Printf("metasched: renew delegation for %s on %s: %v", j.ID, j.Peer, err)
			return
		}
	}
	if err := s.jobs.MarkForwarded(j.ID, j.PeerURL, j.RemoteID, token); err != nil {
		s.logger.Printf("metasched: rebind %s after renewal: %v", j.ID, err)
	}
}

func (s *Scheduler) dropSession(peerName, owner string) {
	s.mu.Lock()
	delete(s.sessions, peerName+"|"+owner)
	s.mu.Unlock()
}

// --- jobsvc.RemoteController ---

// Refresh returns a live view of a forwarded job from its executing
// peer: status always, outputs once terminal — one system.multicall
// round trip.
func (s *Scheduler) Refresh(j *jobsvc.Job) (*jobsvc.Job, error) {
	if j.PeerURL == "" || j.RemoteID == "" {
		return nil, fmt.Errorf("metasched: job %s has no remote binding", j.ID)
	}
	done, err := s.breakers.Allow(j.PeerURL)
	if err != nil {
		return nil, fmt.Errorf("metasched: refresh %s: peer %s: %w", j.ID, j.Peer, err)
	}
	c, err := s.conn(j.PeerURL)
	if err != nil {
		done(false)
		return nil, err
	}
	results, err := c.Batch(j.PeerSession, []Call{
		{Method: "job.status", Params: []any{j.RemoteID}, Trace: j.Trace},
		{Method: "job.output", Params: []any{j.RemoteID}, Trace: j.Trace},
	})
	if err != nil || len(results) != 2 {
		done(err == nil || isFault(err))
		s.dropConn(j.PeerURL)
		return nil, fmt.Errorf("metasched: refresh %s on %s: %v", j.ID, j.Peer, err)
	}
	done(true)
	if results[0].Err != nil {
		return nil, results[0].Err
	}
	st, _ := results[0].Value.(map[string]any)
	live := *j // the shadow record, overlaid with the peer's view
	if state, ok := st["state"].(string); ok && state != "" {
		// While the peer still has the job queued/running the local state
		// remains "remote" (the peer name says where); terminal states
		// surface directly so status is transparent ahead of pull-back.
		if jobsvc.Terminal(state) {
			live.State = state
		}
	}
	if n, ok := rpc.CoerceInt(st["attempts"]); ok {
		live.Attempts = n
	}
	if lu, ok := st["local_user"].(string); ok {
		live.LocalUser = lu
	}
	if results[1].Err == nil {
		if out, ok := results[1].Value.(map[string]any); ok {
			live.Stdout, _ = out["stdout"].(string)
			live.Stderr, _ = out["stderr"].(string)
			live.ExitCode, _ = rpc.CoerceInt(out["exit_code"])
			live.Truncated, _ = out["truncated"].(bool)
			live.StdoutTruncated, _ = out["stdout_truncated"].(bool)
			live.StderrTruncated, _ = out["stderr_truncated"].(bool)
			// Artifact references are NOT surfaced from the live peer
			// view: they name the peer's namespace, which the submitting
			// server's clients cannot fetch through. The local record
			// gains fetchable references when the watch loop pulls the
			// result back and re-stages the artifacts.
			live.Artifacts = nil
		}
	}
	return &live, nil
}

// CancelRemote relays a cancellation to the executing peer.
func (s *Scheduler) CancelRemote(j *jobsvc.Job) (bool, error) {
	if j.PeerURL == "" || j.RemoteID == "" {
		return false, fmt.Errorf("metasched: job %s has no remote binding", j.ID)
	}
	done, err := s.breakers.Allow(j.PeerURL)
	if err != nil {
		return false, fmt.Errorf("metasched: cancel %s: peer %s: %w", j.ID, j.Peer, err)
	}
	c, err := s.conn(j.PeerURL)
	if err != nil {
		done(false)
		return false, err
	}
	v, err := c.Call(j.PeerSession, j.Trace, "job.cancel", j.RemoteID)
	done(err == nil || isFault(err))
	if err != nil {
		return false, err
	}
	b, _ := v.(bool)
	return b, nil
}

var _ jobsvc.RemoteController = (*Scheduler)(nil)
