package codectest

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"clarens/internal/rpc"
	"clarens/internal/rpc/jsonrpc"
	"clarens/internal/rpc/soaprpc"
	"clarens/internal/rpc/xmlrpc"
)

// randValue generates a random value tree from the shared codec value
// model. depth bounds recursion; the generator is deterministic in seed.
func randValue(rnd *prng, depth int) any {
	kind := rnd.Intn(9)
	if depth <= 0 && kind >= 7 {
		kind = rnd.Intn(7)
	}
	switch kind {
	case 0:
		return rnd.Intn(2) == 1
	case 1:
		return rnd.Intn(1<<20) - 1<<19
	case 2:
		// doubles with exact binary representations to avoid formatting
		// round-off distinctions between codecs
		return float64(rnd.Intn(1<<20)-1<<19) / 64
	case 3:
		return randString(rnd)
	case 4:
		b := make([]byte, rnd.Intn(24))
		for i := range b {
			b[i] = byte(rnd.Intn(256))
		}
		return b
	case 5:
		// whole-second times: XML-RPC's dateTime.iso8601 carries no
		// sub-second precision
		return time.Unix(int64(rnd.Intn(1<<30)), 0).UTC()
	case 6:
		return nil
	case 7:
		n := rnd.Intn(4)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = randValue(rnd, depth-1)
		}
		return arr
	default:
		n := rnd.Intn(4)
		m := make(map[string]any, n)
		for i := 0; i < n; i++ {
			m[fmt.Sprintf("key_%c%d", 'a'+rnd.Intn(26), i)] = randValue(rnd, depth-1)
		}
		return m
	}
}

func randString(rnd *prng) string {
	n := rnd.Intn(20)
	b := make([]rune, n)
	for i := range b {
		// printable ASCII plus some non-ASCII and XML-hostile characters
		set := []rune("abc XYZ109<>&\"'éψ☃")
		b[i] = set[rnd.Intn(len(set))]
	}
	return string(b)
}

type prng struct{ state uint64 }

func (p *prng) Intn(n int) int {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	return int((p.state >> 33) % uint64(n))
}

// TestRandomValueRoundTripAllCodecs: any value from the shared model
// survives encode→decode through every codec unchanged.
func TestRandomValueRoundTripAllCodecs(t *testing.T) {
	codecs := []rpc.Codec{xmlrpc.New(), jsonrpc.New(), soaprpc.New()}
	f := func(seed int64) bool {
		rnd := &prng{state: uint64(seed)}
		v := randValue(rnd, 3)
		for _, codec := range codecs {
			var buf bytes.Buffer
			if err := codec.EncodeResponse(&buf, &rpc.Response{Result: v}); err != nil {
				t.Logf("%s encode: %v (value %#v)", codec.Name(), err, v)
				return false
			}
			got, err := codec.DecodeResponse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Logf("%s decode: %v\nwire: %s", codec.Name(), err, buf.String())
				return false
			}
			if !rpc.Equal(got.Result, v) {
				t.Logf("%s mismatch:\n got %#v\nwant %#v\nwire: %s", codec.Name(), got.Result, v, buf.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCrossCodecEquivalence: the same request decoded via different
// codecs yields semantically equal parameters (the dispatch layer cannot
// tell which protocol carried a call).
func TestCrossCodecEquivalence(t *testing.T) {
	codecs := []rpc.Codec{xmlrpc.New(), jsonrpc.New(), soaprpc.New()}
	f := func(seed int64) bool {
		rnd := &prng{state: uint64(seed) * 7919}
		v := randValue(rnd, 2)
		req := &rpc.Request{Method: "svc.method", Params: []any{v}}
		var decoded []any
		for _, codec := range codecs {
			var buf bytes.Buffer
			if err := codec.EncodeRequest(&buf, req); err != nil {
				return false
			}
			got, err := codec.DecodeRequest(bytes.NewReader(buf.Bytes()))
			if err != nil || got.Method != req.Method || len(got.Params) != 1 {
				return false
			}
			decoded = append(decoded, got.Params[0])
		}
		return rpc.Equal(decoded[0], decoded[1]) && rpc.Equal(decoded[1], decoded[2])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecodersRejectGarbageProperty: random byte soup never panics and
// (except for degenerate inputs that happen to be valid) returns errors.
func TestDecodersRejectGarbageProperty(t *testing.T) {
	codecs := []rpc.Codec{xmlrpc.New(), jsonrpc.New(), soaprpc.New()}
	f := func(data []byte) bool {
		for _, codec := range codecs {
			// Must not panic; error or success both acceptable.
			codec.DecodeRequest(bytes.NewReader(data))
			codec.DecodeResponse(bytes.NewReader(data))
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
