// Package codectest provides a conformance suite run against every
// rpc.Codec implementation, guaranteeing that the three Clarens protocols
// are interchangeable at the dispatch layer (paper §2: clients may pick
// any of XML-RPC, SOAP, JSON-RPC and observe the same service semantics).
package codectest

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"clarens/internal/rpc"
)

// Values returns the canonical corpus of values every codec must round-trip.
func Values() map[string]any {
	return map[string]any{
		"bool-true":    true,
		"bool-false":   false,
		"int-zero":     0,
		"int-pos":      42,
		"int-neg":      -7,
		"int-32max":    1<<31 - 1,
		"int-32min":    -(1 << 31),
		"int-64big":    1 << 40,
		"double":       3.14159,
		"double-neg":   -0.5,
		"string-plain": "hello world",
		"string-xml":   `<&>"'`,
		"string-empty": "",
		"string-utf8":  "héllo wörld ψ",
		"bytes":        []byte{0, 1, 2, 254, 255},
		"bytes-empty":  []byte{},
		"time":         time.Date(2005, 6, 15, 12, 30, 45, 0, time.UTC),
		"array":        []any{1, "two", 3.0, true},
		"array-empty":  []any{},
		"array-nested": []any{[]any{1, 2}, []any{"a"}},
		"struct": map[string]any{
			"name":  "clarens",
			"year":  2005,
			"score": 9.5,
		},
		"struct-empty": map[string]any{},
		"struct-nested": map[string]any{
			"inner": map[string]any{"list": []any{1, 2, 3}},
		},
		"methods-30plus": methodList(),
	}
}

// methodList simulates the system.list_methods result from the paper's
// performance test: "more than 30 strings as an array response".
func methodList() []any {
	out := make([]any, 0, 34)
	for _, svc := range []string{"system", "file", "proxy", "shell"} {
		for _, m := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i"} {
			out = append(out, svc+"."+m)
		}
	}
	return out
}

// Run executes the conformance suite against the codec.
func Run(t *testing.T, c rpc.Codec) {
	t.Helper()

	t.Run("name", func(t *testing.T) {
		if c.Name() == "" {
			t.Error("codec must have a name")
		}
		if len(c.ContentTypes()) == 0 {
			t.Error("codec must declare content types")
		}
	})

	for name, v := range Values() {
		t.Run("request/"+name, func(t *testing.T) {
			req := &rpc.Request{Method: "system.echo", Params: []any{v}}
			var buf bytes.Buffer
			if err := c.EncodeRequest(&buf, req); err != nil {
				t.Fatalf("EncodeRequest: %v", err)
			}
			got, err := c.DecodeRequest(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("DecodeRequest: %v\nwire: %s", err, buf.String())
			}
			if got.Method != req.Method {
				t.Errorf("method = %q, want %q", got.Method, req.Method)
			}
			if len(got.Params) != 1 {
				t.Fatalf("params = %d, want 1", len(got.Params))
			}
			if !rpc.Equal(got.Params[0], v) {
				t.Errorf("param round trip:\n got %#v\nwant %#v\nwire: %s", got.Params[0], v, buf.String())
			}
		})
		t.Run("response/"+name, func(t *testing.T) {
			resp := &rpc.Response{Result: v}
			var buf bytes.Buffer
			if err := c.EncodeResponse(&buf, resp); err != nil {
				t.Fatalf("EncodeResponse: %v", err)
			}
			got, err := c.DecodeResponse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("DecodeResponse: %v\nwire: %s", err, buf.String())
			}
			if got.Fault != nil {
				t.Fatalf("unexpected fault %v", got.Fault)
			}
			if !rpc.Equal(got.Result, v) {
				t.Errorf("result round trip:\n got %#v\nwant %#v\nwire: %s", got.Result, v, buf.String())
			}
		})
	}

	t.Run("multi-param", func(t *testing.T) {
		req := &rpc.Request{Method: "file.read", Params: []any{"/data/events.bin", 1024, 65536}}
		var buf bytes.Buffer
		if err := c.EncodeRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Params) != 3 || !rpc.Equal(got.Params[0], "/data/events.bin") ||
			!rpc.Equal(got.Params[1], 1024) || !rpc.Equal(got.Params[2], 65536) {
			t.Errorf("params = %#v", got.Params)
		}
	})

	t.Run("zero-param", func(t *testing.T) {
		req := &rpc.Request{Method: "system.list_methods"}
		var buf bytes.Buffer
		if err := c.EncodeRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Method != "system.list_methods" || len(got.Params) != 0 {
			t.Errorf("got %+v", got)
		}
	})

	t.Run("fault", func(t *testing.T) {
		resp := &rpc.Response{Fault: &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "access denied: method file.write"}}
		var buf bytes.Buffer
		if err := c.EncodeResponse(&buf, resp); err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeResponse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fault == nil {
			t.Fatal("fault lost in round trip")
		}
		if got.Fault.Code != rpc.CodeAccessDenied {
			t.Errorf("fault code = %d, want %d", got.Fault.Code, rpc.CodeAccessDenied)
		}
		if !strings.Contains(got.Fault.Message, "access denied") {
			t.Errorf("fault message = %q", got.Fault.Message)
		}
	})

	t.Run("garbage-request", func(t *testing.T) {
		if _, err := c.DecodeRequest(strings.NewReader("this is not a valid request")); err == nil {
			t.Error("garbage must not decode")
		}
	})

	t.Run("empty-request", func(t *testing.T) {
		if _, err := c.DecodeRequest(strings.NewReader("")); err == nil {
			t.Error("empty input must not decode")
		}
	})

	t.Run("normalizes-encoder-types", func(t *testing.T) {
		// Encoders must accept the widened helper types via rpc.Normalize.
		req := &rpc.Request{Method: "m", Params: []any{int64(5), []string{"x"}, map[string]string{"a": "b"}, float32(1.5)}}
		var buf bytes.Buffer
		if err := c.EncodeRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeRequest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		want := []any{5, []any{"x"}, map[string]any{"a": "b"}, 1.5}
		for i := range want {
			if !rpc.Equal(got.Params[i], want[i]) {
				t.Errorf("param %d = %#v, want %#v", i, got.Params[i], want[i])
			}
		}
	})

	t.Run("unsupported-type-errors", func(t *testing.T) {
		var buf bytes.Buffer
		err := c.EncodeRequest(&buf, &rpc.Request{Method: "m", Params: []any{make(chan int)}})
		if err == nil {
			t.Error("unsupported param type must error at encode time")
		}
		err = c.EncodeResponse(&buf, &rpc.Response{Result: make(chan int)})
		if err == nil {
			t.Error("unsupported result type must error at encode time")
		}
	})

	t.Run("large-array", func(t *testing.T) {
		arr := make([]any, 1000)
		for i := range arr {
			arr[i] = fmt.Sprintf("element-%04d", i)
		}
		var buf bytes.Buffer
		if err := c.EncodeResponse(&buf, &rpc.Response{Result: arr}); err != nil {
			t.Fatal(err)
		}
		got, err := c.DecodeResponse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !rpc.Equal(got.Result, arr) {
			t.Error("1000-element array did not round trip")
		}
	})
}
