package rpc

import "fmt"

// system.multicall wire convention (shared by all three codecs, which
// already carry arrays and structs): the request has a single parameter,
// an array of {methodName, params} structs; the response is an array with
// one entry per sub-call — a one-element array wrapping the result on
// success, or a {faultCode, faultString} struct on failure. This is the
// classic XML-RPC boxcarring convention the Clarens Python/ROOT clients
// used to amortize round trips (cs/0306001 §4).
const (
	MulticallMethod = "system.multicall"

	multicallMethodKey = "methodName"
	multicallParamsKey = "params"
	multicallTraceKey  = "trace"
	multicallSampleKey = "sample"
	faultCodeKey       = "faultCode"
	faultStringKey     = "faultString"
)

// SubCall is one entry in a system.multicall batch.
type SubCall struct {
	Method string
	Params []any
	// Trace optionally carries a per-sub-call trace identifier: a
	// federation peer batching many forwarded jobs into one POST keeps
	// each job on the trace of the request that originated it. Encoded
	// as an extra "trace" struct member, which servers without trace
	// support simply ignore (and absent entries decode to "").
	Trace string
	// Sample force-samples the sub-call's trace into the receiving
	// server's span store: a peer forwarding a force-sampled trace keeps
	// it force-sampled downstream. Encoded as an extra "sample" struct
	// member when true; ignored by servers without a span store.
	Sample bool
}

// MulticallParams encodes sub-calls as the positional parameter list of a
// system.multicall request.
func MulticallParams(calls []SubCall) []any {
	entries := make([]any, len(calls))
	for i, c := range calls {
		params := c.Params
		if params == nil {
			params = []any{}
		}
		entry := map[string]any{
			multicallMethodKey: c.Method,
			multicallParamsKey: params,
		}
		if c.Trace != "" {
			entry[multicallTraceKey] = c.Trace
		}
		if c.Sample {
			entry[multicallSampleKey] = true
		}
		entries[i] = entry
	}
	return []any{entries}
}

// MulticallEntries validates the outer shape of a system.multicall
// parameter list and returns the raw per-call entries.
func MulticallEntries(params []any) ([]any, *Fault) {
	if len(params) != 1 {
		return nil, &Fault{Code: CodeInvalidParams, Message: "system.multicall takes a single array parameter"}
	}
	entries, ok := params[0].([]any)
	if !ok {
		return nil, &Fault{Code: CodeInvalidParams, Message: fmt.Sprintf("system.multicall parameter must be an array, got %T", params[0])}
	}
	return entries, nil
}

// ParseSubCall decodes one multicall entry. A malformed entry yields a
// per-entry fault rather than failing the batch, preserving the fault
// isolation between sub-calls.
func ParseSubCall(entry any) (SubCall, *Fault) {
	st, ok := entry.(map[string]any)
	if !ok {
		return SubCall{}, &Fault{Code: CodeInvalidParams, Message: fmt.Sprintf("multicall entry must be a struct, got %T", entry)}
	}
	method, ok := st[multicallMethodKey].(string)
	if !ok || method == "" {
		return SubCall{}, &Fault{Code: CodeInvalidParams, Message: "multicall entry missing methodName"}
	}
	call := SubCall{Method: method}
	if t, ok := st[multicallTraceKey].(string); ok {
		call.Trace = t
	}
	if smp, ok := st[multicallSampleKey].(bool); ok {
		call.Sample = smp
	}
	if raw, present := st[multicallParamsKey]; present && raw != nil {
		params, ok := raw.([]any)
		if !ok {
			return SubCall{}, &Fault{Code: CodeInvalidParams, Message: fmt.Sprintf("multicall entry %q: params must be an array, got %T", method, raw)}
		}
		call.Params = params
	}
	return call, nil
}

// MulticallValue wraps one successful sub-call result for the response
// array (a one-element array, distinguishing results from fault structs).
func MulticallValue(v any) any { return []any{v} }

// MulticallFault encodes a sub-call fault for the response array.
func MulticallFault(f *Fault) any {
	return map[string]any{faultCodeKey: f.Code, faultStringKey: f.Message}
}

// ParseMulticallResults decodes a system.multicall response into one
// Response per sub-call.
func ParseMulticallResults(v any) ([]Response, error) {
	list, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("rpc: multicall response is %T, want array", v)
	}
	out := make([]Response, len(list))
	for i, e := range list {
		switch x := e.(type) {
		case []any:
			if len(x) != 1 {
				return nil, fmt.Errorf("rpc: multicall result %d has %d elements, want 1", i, len(x))
			}
			out[i] = Response{Result: x[0]}
		case map[string]any:
			code, ok := CoerceInt(x[faultCodeKey])
			if !ok {
				return nil, fmt.Errorf("rpc: multicall result %d: bad faultCode %v (%T)", i, x[faultCodeKey], x[faultCodeKey])
			}
			msg, ok := x[faultStringKey].(string)
			if !ok {
				return nil, fmt.Errorf("rpc: multicall result %d: missing faultString", i)
			}
			out[i] = Response{Fault: &Fault{Code: code, Message: msg}}
		default:
			return nil, fmt.Errorf("rpc: multicall result %d is %T, want array or fault struct", i, e)
		}
	}
	return out, nil
}
