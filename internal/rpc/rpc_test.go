package rpc

import (
	"testing"
	"time"
)

func TestNormalizeScalars(t *testing.T) {
	cases := []struct {
		in   any
		want any
	}{
		{nil, nil},
		{true, true},
		{int8(-3), -3},
		{int16(9), 9},
		{int32(7), 7},
		{int64(1 << 40), 1 << 40},
		{uint(5), 5},
		{uint8(200), 200},
		{uint16(1000), 1000},
		{uint32(70000), 70000},
		{uint64(12), 12},
		{float32(0.5), 0.5},
		{3.25, 3.25},
		{"s", "s"},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if err != nil {
			t.Errorf("Normalize(%v): %v", c.in, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("Normalize(%#v) = %#v, want %#v", c.in, got, c.want)
		}
	}
}

func TestNormalizeOverflow(t *testing.T) {
	if _, err := Normalize(uint64(1 << 63)); err == nil {
		t.Error("uint64 overflow should error")
	}
	if _, err := Normalize(uint(1<<63 + 1)); err == nil {
		t.Error("uint overflow should error")
	}
}

func TestNormalizeComposites(t *testing.T) {
	got, err := Normalize(map[string]any{
		"ints":    []int{1, 2},
		"strs":    []string{"a", "b"},
		"floats":  []float64{1.5},
		"strmap":  map[string]string{"k": "v"},
		"nested":  []any{int32(1), map[string]any{"x": int64(2)}},
		"bytes":   []byte{1, 2, 3},
		"instant": time.Unix(0, 0).UTC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := got.(map[string]any)
	if !Equal(m["ints"], []any{1, 2}) {
		t.Errorf("ints = %#v", m["ints"])
	}
	if !Equal(m["strs"], []any{"a", "b"}) {
		t.Errorf("strs = %#v", m["strs"])
	}
	if !Equal(m["strmap"], map[string]any{"k": "v"}) {
		t.Errorf("strmap = %#v", m["strmap"])
	}
	if !Equal(m["nested"], []any{1, map[string]any{"x": 2}}) {
		t.Errorf("nested = %#v", m["nested"])
	}
}

func TestNormalizeUnsupported(t *testing.T) {
	if _, err := Normalize(struct{}{}); err == nil {
		t.Error("struct should be unsupported")
	}
	if _, err := Normalize([]any{make(chan int)}); err == nil {
		t.Error("nested unsupported type should propagate")
	}
	if _, err := Normalize(map[string]any{"k": complex(1, 2)}); err == nil {
		t.Error("nested unsupported map value should propagate")
	}
}

func TestNormalizeParams(t *testing.T) {
	ps, err := NormalizeParams([]any{int64(1), "x", []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(ps[0], 1) || !Equal(ps[1], "x") || !Equal(ps[2], []any{"a"}) {
		t.Errorf("NormalizeParams = %#v", ps)
	}
	if _, err := NormalizeParams([]any{struct{}{}}); err == nil {
		t.Error("unsupported param should error")
	}
}

func TestEqual(t *testing.T) {
	now := time.Now()
	eq := [][2]any{
		{nil, nil},
		{true, true},
		{1, 1},
		{1.5, 1.5},
		{"a", "a"},
		{[]byte{1}, []byte{1}},
		{now, now},
		{[]any{1, "a"}, []any{1, "a"}},
		{map[string]any{"k": 1}, map[string]any{"k": 1}},
	}
	for _, c := range eq {
		if !Equal(c[0], c[1]) {
			t.Errorf("Equal(%#v, %#v) = false", c[0], c[1])
		}
	}
	ne := [][2]any{
		{nil, 1},
		{true, false},
		{1, 2},
		{1, 1.0},
		{"a", "b"},
		{[]byte{1}, []byte{2}},
		{[]byte{1}, []byte{1, 2}},
		{now, now.Add(time.Second)},
		{[]any{1}, []any{2}},
		{[]any{1}, []any{1, 2}},
		{map[string]any{"k": 1}, map[string]any{"k": 2}},
		{map[string]any{"k": 1}, map[string]any{"j": 1}},
		{map[string]any{"k": 1}, map[string]any{"k": 1, "j": 2}},
		{struct{}{}, struct{}{}}, // unsupported type is never equal
	}
	for _, c := range ne {
		if Equal(c[0], c[1]) {
			t.Errorf("Equal(%#v, %#v) = true", c[0], c[1])
		}
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Code: CodeAccessDenied, Message: "no"}
	if f.Error() == "" {
		t.Error("Fault.Error should produce a message")
	}
}
