package rpc_test

import (
	"bytes"
	"testing"

	"clarens/internal/rpc"
	"clarens/internal/rpc/jsonrpc"
	"clarens/internal/rpc/soaprpc"
	"clarens/internal/rpc/xmlrpc"
)

func codecs() []rpc.Codec {
	return []rpc.Codec{xmlrpc.New(), jsonrpc.New(), soaprpc.New()}
}

// TestMulticallRequestRoundTrip proves the batched request shape survives
// every codec's value model: encode a system.multicall request, decode it
// as a server would, and recover the identical sub-calls.
func TestMulticallRequestRoundTrip(t *testing.T) {
	calls := []rpc.SubCall{
		{Method: "system.echo", Params: []any{"payload", 7, true}},
		{Method: "file.md5", Params: []any{"/data/run42.events"}},
		{Method: "system.ping"}, // nil params must encode as empty array
	}
	for _, codec := range codecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			var wire bytes.Buffer
			req := &rpc.Request{Method: rpc.MulticallMethod, Params: rpc.MulticallParams(calls), ID: 1}
			if err := codec.EncodeRequest(&wire, req); err != nil {
				t.Fatal(err)
			}
			decoded, err := codec.DecodeRequest(bytes.NewReader(wire.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Method != rpc.MulticallMethod {
				t.Fatalf("method = %q", decoded.Method)
			}
			entries, fault := rpc.MulticallEntries(decoded.Params)
			if fault != nil {
				t.Fatal(fault)
			}
			if len(entries) != len(calls) {
				t.Fatalf("%d entries, want %d", len(entries), len(calls))
			}
			for i, entry := range entries {
				got, fault := rpc.ParseSubCall(entry)
				if fault != nil {
					t.Fatalf("entry %d: %v", i, fault)
				}
				if got.Method != calls[i].Method {
					t.Errorf("entry %d method = %q, want %q", i, got.Method, calls[i].Method)
				}
				want := calls[i].Params
				if want == nil {
					want = []any{}
				}
				wantNorm, err := rpc.NormalizeParams(want)
				if err != nil {
					t.Fatal(err)
				}
				if !rpc.Equal([]any(got.Params), []any(wantNorm)) {
					t.Errorf("entry %d params = %#v, want %#v", i, got.Params, wantNorm)
				}
			}
		})
	}
}

// TestMulticallResponseRoundTrip proves the mixed result/fault response
// shape survives every codec.
func TestMulticallResponseRoundTrip(t *testing.T) {
	body := []any{
		rpc.MulticallValue("pong"),
		rpc.MulticallFault(&rpc.Fault{Code: rpc.CodeAccessDenied, Message: "access denied"}),
		rpc.MulticallValue([]any{"nested", 1}),
	}
	for _, codec := range codecs() {
		t.Run(codec.Name(), func(t *testing.T) {
			var wire bytes.Buffer
			if err := codec.EncodeResponse(&wire, &rpc.Response{Result: body, ID: 1}); err != nil {
				t.Fatal(err)
			}
			decoded, err := codec.DecodeResponse(bytes.NewReader(wire.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			results, err := rpc.ParseMulticallResults(decoded.Result)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 3 {
				t.Fatalf("%d results", len(results))
			}
			if results[0].Fault != nil || !rpc.Equal(results[0].Result, "pong") {
				t.Errorf("result 0: %+v", results[0])
			}
			if results[1].Fault == nil || results[1].Fault.Code != rpc.CodeAccessDenied || results[1].Fault.Message != "access denied" {
				t.Errorf("result 1: %+v", results[1])
			}
			if results[2].Fault != nil || !rpc.Equal(results[2].Result, []any{"nested", 1}) {
				t.Errorf("result 2: %+v", results[2])
			}
		})
	}
}

func TestParseSubCallRejectsMalformedEntries(t *testing.T) {
	for _, bad := range []any{
		"not a struct",
		map[string]any{"params": []any{}},                         // no methodName
		map[string]any{"methodName": 7},                           // non-string name
		map[string]any{"methodName": "m", "params": "not a list"}, // bad params
	} {
		if _, fault := rpc.ParseSubCall(bad); fault == nil {
			t.Errorf("ParseSubCall(%#v) accepted", bad)
		}
	}
	if _, fault := rpc.ParseSubCall(map[string]any{"methodName": "m"}); fault != nil {
		t.Errorf("params-less entry rejected: %v", fault)
	}
}

func TestMulticallEntriesShape(t *testing.T) {
	if _, fault := rpc.MulticallEntries([]any{}); fault == nil {
		t.Error("no-parameter multicall accepted")
	}
	if _, fault := rpc.MulticallEntries([]any{"x"}); fault == nil {
		t.Error("non-array parameter accepted")
	}
	if _, fault := rpc.MulticallEntries([]any{[]any{1, 2}, "extra"}); fault == nil {
		t.Error("two-parameter multicall accepted")
	}
	entries, fault := rpc.MulticallEntries([]any{[]any{map[string]any{"methodName": "a"}}})
	if fault != nil || len(entries) != 1 {
		t.Errorf("entries=%v fault=%v", entries, fault)
	}
}
