// Package jsonrpc implements the JSON-RPC protocol used by Clarens for
// browser-based portal clients (paper §2: "Multiple protocols (XML-RPC,
// SOAP, Java RMI ..., JSON-RPC)"; §3: the portal's JavaScript issues web
// service calls, for which the JSON-RPC binding was designed).
//
// Both JSON-RPC 1.0 (as used by the metaparadigm jsonrpc library the paper
// cites) and JSON-RPC 2.0 framing are accepted; responses mirror the
// version of the request.
package jsonrpc

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"clarens/internal/rpc"
)

// Codec is the JSON-RPC implementation of rpc.Codec.
type Codec struct{}

// New returns the JSON-RPC codec.
func New() *Codec { return &Codec{} }

// Name implements rpc.Codec.
func (*Codec) Name() string { return "jsonrpc" }

// contentTypes is shared across calls: ContentTypes sits on the
// per-response hot path and must not allocate.
var contentTypes = []string{"application/json", "application/json-rpc", "text/json"}

// ContentTypes implements rpc.Codec. Callers must not modify the
// returned slice.
func (*Codec) ContentTypes() []string { return contentTypes }

// Wire sentinel objects for types JSON cannot represent natively. These
// follow the convention of tagging with a single reserved key.
const (
	base64Key = "__jsonclass_base64__"
	timeKey   = "__jsonclass_datetime__"
)

func toJSONValue(v any) (any, error) {
	switch x := v.(type) {
	case nil, bool, string:
		return x, nil
	case int:
		return x, nil
	case float64:
		// JSON cannot distinguish 3.0 from 3; force a decimal point so the
		// decoder restores float64 rather than int.
		if x == math.Trunc(x) && !math.IsInf(x, 0) && !math.IsNaN(x) {
			return json.Number(strconv.FormatFloat(x, 'f', 1, 64)), nil
		}
		return x, nil
	case []byte:
		return map[string]any{base64Key: base64.StdEncoding.EncodeToString(x)}, nil
	case time.Time:
		return map[string]any{timeKey: x.UTC().Format(time.RFC3339Nano)}, nil
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			j, err := toJSONValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = j
		}
		return out, nil
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			j, err := toJSONValue(e)
			if err != nil {
				return nil, err
			}
			out[k] = j
		}
		return out, nil
	default:
		n, err := rpc.Normalize(v)
		if err != nil {
			return nil, fmt.Errorf("jsonrpc: %w", err)
		}
		return toJSONValue(n)
	}
}

func fromJSONValue(v any) (any, error) {
	switch x := v.(type) {
	case nil, bool, string:
		return x, nil
	case json.Number:
		// Integers decode to int; everything else to float64.
		if i, err := x.Int64(); err == nil && !bytes.ContainsAny([]byte(x.String()), ".eE") {
			return int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("jsonrpc: bad number %q", x.String())
		}
		return f, nil
	case float64:
		// Reached only when the decoder was not Number-configured.
		if x == math.Trunc(x) && math.Abs(x) < 1<<53 {
			return int(x), nil
		}
		return x, nil
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			g, err := fromJSONValue(e)
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil
	case map[string]any:
		if len(x) == 1 {
			if s, ok := x[base64Key].(string); ok {
				data, err := base64.StdEncoding.DecodeString(s)
				if err != nil {
					return nil, fmt.Errorf("jsonrpc: bad base64 payload: %w", err)
				}
				return data, nil
			}
			if s, ok := x[timeKey].(string); ok {
				t, err := time.Parse(time.RFC3339Nano, s)
				if err != nil {
					return nil, fmt.Errorf("jsonrpc: bad datetime payload: %w", err)
				}
				return t.UTC(), nil
			}
		}
		out := make(map[string]any, len(x))
		for k, e := range x {
			g, err := fromJSONValue(e)
			if err != nil {
				return nil, err
			}
			out[k] = g
		}
		return out, nil
	default:
		return nil, fmt.Errorf("jsonrpc: unexpected decoded type %T", v)
	}
}

type wireRequest struct {
	Version string          `json:"jsonrpc,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
	ID      any             `json:"id"`
}

type wireError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

type wireResponse struct {
	Version string          `json:"jsonrpc,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Error   *wireError      `json:"error,omitempty"`
	ID      any             `json:"id"`
}

// EncodeRequest implements rpc.Codec. Requests are emitted in 2.0 framing.
func (*Codec) EncodeRequest(w io.Writer, req *rpc.Request) error {
	params := make([]any, len(req.Params))
	for i, p := range req.Params {
		jp, err := toJSONValue(p)
		if err != nil {
			return err
		}
		params[i] = jp
	}
	rawParams, err := json.Marshal(params)
	if err != nil {
		return fmt.Errorf("jsonrpc: marshal params: %w", err)
	}
	id := req.ID
	if id == nil {
		id = 1
	}
	return json.NewEncoder(w).Encode(wireRequest{
		Version: "2.0", Method: req.Method, Params: rawParams, ID: id,
	})
}

// DecodeRequest implements rpc.Codec.
func (*Codec) DecodeRequest(r io.Reader) (*rpc.Request, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var wire wireRequest
	if err := dec.Decode(&wire); err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
	}
	if wire.Method == "" {
		return nil, &rpc.Fault{Code: rpc.CodeInvalidRequest, Message: "missing method"}
	}
	req := &rpc.Request{Method: wire.Method, ID: normalizeID(wire.ID)}
	if len(wire.Params) > 0 {
		var rawList []json.RawMessage
		if err := json.Unmarshal(wire.Params, &rawList); err != nil {
			return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: "params must be an array"}
		}
		for i, raw := range rawList {
			pd := json.NewDecoder(bytes.NewReader(raw))
			pd.UseNumber()
			var v any
			if err := pd.Decode(&v); err != nil {
				return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: err.Error()}
			}
			g, err := fromJSONValue(v)
			if err != nil {
				return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("param %d: %v", i, err)}
			}
			req.Params = append(req.Params, g)
		}
	}
	return req, nil
}

// normalizeID converts json.Number IDs to int for stable comparison.
func normalizeID(id any) any {
	if n, ok := id.(json.Number); ok {
		if i, err := n.Int64(); err == nil {
			return int(i)
		}
		if f, err := n.Float64(); err == nil {
			return f
		}
	}
	return id
}

// EncodeResponse implements rpc.Codec.
func (*Codec) EncodeResponse(w io.Writer, resp *rpc.Response) error {
	wire := wireResponse{Version: "2.0", ID: resp.ID}
	if resp.Fault != nil {
		wire.Error = &wireError{Code: resp.Fault.Code, Message: resp.Fault.Message}
	} else {
		jv, err := toJSONValue(resp.Result)
		if err != nil {
			return err
		}
		raw, err := json.Marshal(jv)
		if err != nil {
			return fmt.Errorf("jsonrpc: marshal result: %w", err)
		}
		wire.Result = raw
	}
	return json.NewEncoder(w).Encode(wire)
}

// DecodeResponse implements rpc.Codec.
func (*Codec) DecodeResponse(r io.Reader) (*rpc.Response, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var wire wireResponse
	if err := dec.Decode(&wire); err != nil {
		return nil, fmt.Errorf("jsonrpc: decode response: %w", err)
	}
	resp := &rpc.Response{ID: normalizeID(wire.ID)}
	if wire.Error != nil {
		resp.Fault = &rpc.Fault{Code: wire.Error.Code, Message: wire.Error.Message}
		return resp, nil
	}
	if len(wire.Result) > 0 {
		rd := json.NewDecoder(bytes.NewReader(wire.Result))
		rd.UseNumber()
		var v any
		if err := rd.Decode(&v); err != nil {
			return nil, fmt.Errorf("jsonrpc: decode result: %w", err)
		}
		g, err := fromJSONValue(v)
		if err != nil {
			return nil, err
		}
		resp.Result = g
	}
	return resp, nil
}

var _ rpc.Codec = (*Codec)(nil)
