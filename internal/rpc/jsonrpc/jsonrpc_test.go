package jsonrpc

import (
	"bytes"
	"strings"
	"testing"

	"clarens/internal/rpc"
	"clarens/internal/rpc/codectest"
)

func TestConformance(t *testing.T) {
	codectest.Run(t, New())
}

func TestV1RequestAccepted(t *testing.T) {
	// JSON-RPC 1.0 framing, as produced by the metaparadigm library the
	// paper references: no "jsonrpc" member.
	wire := `{"method": "system.echo", "params": ["hi"], "id": 7}`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "system.echo" || !rpc.Equal(req.Params[0], "hi") {
		t.Errorf("req = %+v", req)
	}
	if req.ID != 7 {
		t.Errorf("id = %#v, want 7", req.ID)
	}
}

func TestIDRoundTrip(t *testing.T) {
	c := New()
	var buf bytes.Buffer
	if err := c.EncodeRequest(&buf, &rpc.Request{Method: "m", ID: 42}); err != nil {
		t.Fatal(err)
	}
	req, err := c.DecodeRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if req.ID != 42 {
		t.Errorf("request id = %#v", req.ID)
	}
	buf.Reset()
	if err := c.EncodeResponse(&buf, &rpc.Response{Result: "ok", ID: 42}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 42 {
		t.Errorf("response id = %#v", resp.ID)
	}
}

func TestStringID(t *testing.T) {
	wire := `{"jsonrpc":"2.0","method":"m","params":[],"id":"abc-123"}`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if req.ID != "abc-123" {
		t.Errorf("id = %#v", req.ID)
	}
}

func TestDefaultIDWhenAbsent(t *testing.T) {
	var buf bytes.Buffer
	if err := New().EncodeRequest(&buf, &rpc.Request{Method: "m"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"id":1`) {
		t.Errorf("wire should default id to 1: %s", buf.String())
	}
}

func TestMissingMethodRejected(t *testing.T) {
	if _, err := New().DecodeRequest(strings.NewReader(`{"params":[],"id":1}`)); err == nil {
		t.Error("request without method must be rejected")
	}
}

func TestObjectParamsRejected(t *testing.T) {
	// Clarens services use positional params; named params are rejected
	// with an invalid-params fault.
	wire := `{"method":"m","params":{"a":1},"id":1}`
	_, err := New().DecodeRequest(strings.NewReader(wire))
	if err == nil {
		t.Fatal("object params must be rejected")
	}
	f, ok := err.(*rpc.Fault)
	if !ok || f.Code != rpc.CodeInvalidParams {
		t.Errorf("err = %#v, want invalid-params fault", err)
	}
}

func TestIntegerVsFloatDecoding(t *testing.T) {
	wire := `{"method":"m","params":[3, 3.5, 3.0, -2, 1e3],"id":1}`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	want := []any{3, 3.5, 3.0, -2, 1000.0}
	for i := range want {
		if !rpc.Equal(req.Params[i], want[i]) {
			t.Errorf("param %d = %#v (%T), want %#v", i, req.Params[i], req.Params[i], want[i])
		}
	}
}

func TestErrorObjectRoundTrip(t *testing.T) {
	c := New()
	var buf bytes.Buffer
	err := c.EncodeResponse(&buf, &rpc.Response{
		Fault: &rpc.Fault{Code: rpc.CodeMethodNotFound, Message: "no such method"},
		ID:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"error"`) || strings.Contains(s, `"result"`) {
		t.Errorf("fault response wire: %s", s)
	}
	resp, err := c.DecodeResponse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeMethodNotFound {
		t.Errorf("fault = %+v", resp.Fault)
	}
}

func TestNullResultDecodes(t *testing.T) {
	resp, err := New().DecodeResponse(strings.NewReader(`{"jsonrpc":"2.0","result":null,"id":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result != nil || resp.Fault != nil {
		t.Errorf("resp = %+v", resp)
	}
}

func TestBinarySentinelCollisionSafety(t *testing.T) {
	// A user struct that merely contains the sentinel key alongside other
	// keys must not be mistaken for binary data.
	c := New()
	v := map[string]any{base64Key: "aGk=", "other": 1}
	var buf bytes.Buffer
	if err := c.EncodeResponse(&buf, &rpc.Response{Result: v}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := resp.Result.(map[string]any)
	if !ok {
		t.Fatalf("result = %#v", resp.Result)
	}
	if _, isBytes := m[base64Key].([]byte); isBytes {
		// the inner value legitimately decodes as a string member
		t.Errorf("sentinel key inside larger struct must stay a plain member")
	}
}

func TestBadBase64PayloadRejected(t *testing.T) {
	wire := `{"method":"m","params":[{"` + base64Key + `":"!!!not-base64!!!"}],"id":1}`
	if _, err := New().DecodeRequest(strings.NewReader(wire)); err == nil {
		t.Error("invalid base64 payload must be rejected")
	}
}

func TestBadDatetimePayloadRejected(t *testing.T) {
	wire := `{"method":"m","params":[{"` + timeKey + `":"not-a-time"}],"id":1}`
	if _, err := New().DecodeRequest(strings.NewReader(wire)); err == nil {
		t.Error("invalid datetime payload must be rejected")
	}
}
