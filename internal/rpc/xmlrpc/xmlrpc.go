// Package xmlrpc implements the XML-RPC protocol (http://www.xmlrpc.com),
// the primary wire format of the Clarens framework and the one used in the
// paper's Figure 4 performance measurement (the response there is "a list
// of more than 30 strings as an array response in XML-RPC").
//
// Supported value elements: <i4>/<int>, <i8> (widely implemented
// extension for 64-bit integers), <boolean>, <double>, <string>,
// <dateTime.iso8601>, <base64>, <array>, <struct>, <nil/> (extension).
// A <value> with bare character data is a string, per the spec.
package xmlrpc

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
	"unicode/utf8"

	"clarens/internal/rpc"
)

// Codec is the XML-RPC implementation of rpc.Codec. The zero value is
// ready to use.
type Codec struct{}

// New returns the XML-RPC codec.
func New() *Codec { return &Codec{} }

// Name implements rpc.Codec.
func (*Codec) Name() string { return "xmlrpc" }

// contentTypes is shared across calls: ContentTypes sits on the
// per-response hot path and must not allocate.
var contentTypes = []string{"text/xml", "application/xml"}

// ContentTypes implements rpc.Codec. XML-RPC is served as text/xml.
// Callers must not modify the returned slice.
func (*Codec) ContentTypes() []string { return contentTypes }

// iso8601 is the XML-RPC dateTime layout (no timezone designator in the
// original spec; we emit UTC and accept common variants).
const iso8601 = "20060102T15:04:05"

var iso8601Variants = []string{
	iso8601,
	"2006-01-02T15:04:05",
	"20060102T15:04:05Z07:00",
	"2006-01-02T15:04:05Z07:00",
}

// --- encoding ---

// escapeString writes s XML-escaped without converting it to []byte (the
// conversion xml.EscapeText forces is one allocation per string, which on
// the Figure 4 workload — >30 strings per response — dominated the encode
// profile). Unescaped runs are copied in chunks. Strings containing
// invalid UTF-8 take the xml.EscapeText slow path, which substitutes
// U+FFFD so the emitted document stays well-formed.
func escapeString(b *bytes.Buffer, s string) {
	if !utf8.ValidString(s) {
		xml.EscapeText(b, []byte(s))
		return
	}
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\'':
			esc = "&#39;"
		case '"':
			esc = "&#34;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			continue
		}
		b.WriteString(s[last:i])
		b.WriteString(esc)
		last = i + 1
	}
	b.WriteString(s[last:])
}

func encodeValue(b *bytes.Buffer, v any) error {
	b.WriteString("<value>")
	if err := encodeValueInner(b, v); err != nil {
		return err
	}
	b.WriteString("</value>")
	return nil
}

func encodeValueInner(b *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		b.WriteString("<nil/>")
	case bool:
		if x {
			b.WriteString("<boolean>1</boolean>")
		} else {
			b.WriteString("<boolean>0</boolean>")
		}
	case int:
		if x >= math.MinInt32 && x <= math.MaxInt32 {
			b.WriteString("<int>")
			b.WriteString(strconv.Itoa(x))
			b.WriteString("</int>")
		} else {
			b.WriteString("<i8>")
			b.WriteString(strconv.Itoa(x))
			b.WriteString("</i8>")
		}
	case float64:
		b.WriteString("<double>")
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		b.WriteString("</double>")
	case string:
		b.WriteString("<string>")
		escapeString(b, x)
		b.WriteString("</string>")
	case []byte:
		b.WriteString("<base64>")
		b.WriteString(base64.StdEncoding.EncodeToString(x))
		b.WriteString("</base64>")
	case time.Time:
		b.WriteString("<dateTime.iso8601>")
		b.WriteString(x.UTC().Format(iso8601))
		b.WriteString("</dateTime.iso8601>")
	case []any:
		b.WriteString("<array><data>")
		for _, e := range x {
			if err := encodeValue(b, e); err != nil {
				return err
			}
		}
		b.WriteString("</data></array>")
	case map[string]any:
		b.WriteString("<struct>")
		for _, k := range sortedKeys(x) {
			b.WriteString("<member><name>")
			escapeString(b, k)
			b.WriteString("</name>")
			if err := encodeValue(b, x[k]); err != nil {
				return err
			}
			b.WriteString("</member>")
		}
		b.WriteString("</struct>")
	default:
		n, err := rpc.Normalize(v)
		if err != nil {
			return fmt.Errorf("xmlrpc: %w", err)
		}
		return encodeValueInner(b, n)
	}
	return nil
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// targetBuffer returns w itself when it already is a *bytes.Buffer (the
// server encodes responses into pooled buffers), avoiding a second
// staging buffer and the copy out of it. flush is non-nil when a staging
// buffer had to be created for a plain writer.
func targetBuffer(w io.Writer) (b *bytes.Buffer, flush func() error) {
	if buf, ok := w.(*bytes.Buffer); ok {
		return buf, nil
	}
	b = new(bytes.Buffer)
	return b, func() error {
		_, err := w.Write(b.Bytes())
		return err
	}
}

// EncodeRequest implements rpc.Codec.
func (*Codec) EncodeRequest(w io.Writer, req *rpc.Request) error {
	b, flush := targetBuffer(w)
	b.WriteString(xml.Header)
	b.WriteString("<methodCall><methodName>")
	escapeString(b, req.Method)
	b.WriteString("</methodName><params>")
	for _, p := range req.Params {
		b.WriteString("<param>")
		if err := encodeValue(b, p); err != nil {
			return err
		}
		b.WriteString("</param>")
	}
	b.WriteString("</params></methodCall>")
	if flush != nil {
		return flush()
	}
	return nil
}

// EncodeResponse implements rpc.Codec.
func (*Codec) EncodeResponse(w io.Writer, resp *rpc.Response) error {
	b, flush := targetBuffer(w)
	b.WriteString(xml.Header)
	if resp.Fault != nil {
		b.WriteString("<methodResponse><fault>")
		fv := map[string]any{
			"faultCode":   resp.Fault.Code,
			"faultString": resp.Fault.Message,
		}
		if err := encodeValue(b, fv); err != nil {
			return err
		}
		b.WriteString("</fault></methodResponse>")
	} else {
		b.WriteString("<methodResponse><params><param>")
		if err := encodeValue(b, resp.Result); err != nil {
			return err
		}
		b.WriteString("</param></params></methodResponse>")
	}
	if flush != nil {
		return flush()
	}
	return nil
}

// --- decoding ---

type decoder struct {
	d *xml.Decoder
}

// next returns the next token skipping whitespace-only character data,
// comments, and processing instructions.
func (dec *decoder) next() (xml.Token, error) {
	for {
		tok, err := dec.d.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.CharData:
			if len(bytes.TrimSpace(t)) == 0 {
				continue
			}
			return tok, nil
		case xml.Comment, xml.ProcInst, xml.Directive:
			continue
		default:
			return tok, nil
		}
	}
}

func (dec *decoder) expectStart(name string) (xml.StartElement, error) {
	tok, err := dec.next()
	if err != nil {
		return xml.StartElement{}, err
	}
	se, ok := tok.(xml.StartElement)
	if !ok || se.Name.Local != name {
		return xml.StartElement{}, fmt.Errorf("xmlrpc: expected <%s>, got %v", name, tok)
	}
	return se, nil
}

func (dec *decoder) expectEnd(name string) error {
	tok, err := dec.next()
	if err != nil {
		return err
	}
	ee, ok := tok.(xml.EndElement)
	if !ok || ee.Name.Local != name {
		return fmt.Errorf("xmlrpc: expected </%s>, got %v", name, tok)
	}
	return nil
}

// text reads character data until the matching end element of se.
func (dec *decoder) text(se xml.StartElement) (string, error) {
	var sb strings.Builder
	for {
		tok, err := dec.d.Token()
		if err != nil {
			return "", err
		}
		switch t := tok.(type) {
		case xml.CharData:
			sb.Write(t)
		case xml.EndElement:
			if t.Name.Local != se.Name.Local {
				return "", fmt.Errorf("xmlrpc: mismatched end element %s", t.Name.Local)
			}
			return sb.String(), nil
		case xml.StartElement:
			return "", fmt.Errorf("xmlrpc: unexpected child <%s> in <%s>", t.Name.Local, se.Name.Local)
		}
	}
}

// decodeValue decodes the contents of an already-consumed <value> start tag
// through its end tag.
func (dec *decoder) decodeValue() (any, error) {
	tok, err := dec.d.Token()
	if err != nil {
		return nil, err
	}
	// Collect leading character data; if the next structural token is the
	// </value>, the bare text is the (string) value.
	var textBuf strings.Builder
	for {
		switch t := tok.(type) {
		case xml.CharData:
			textBuf.Write(t)
		case xml.Comment, xml.ProcInst:
		case xml.EndElement:
			if t.Name.Local != "value" {
				return nil, fmt.Errorf("xmlrpc: unexpected </%s> in value", t.Name.Local)
			}
			return textBuf.String(), nil
		case xml.StartElement:
			v, err := dec.decodeTypedValue(t)
			if err != nil {
				return nil, err
			}
			if err := dec.expectEnd("value"); err != nil {
				return nil, err
			}
			return v, nil
		}
		tok, err = dec.d.Token()
		if err != nil {
			return nil, err
		}
	}
}

func (dec *decoder) decodeTypedValue(se xml.StartElement) (any, error) {
	switch se.Name.Local {
	case "nil":
		if err := dec.expectEnd("nil"); err != nil {
			// <nil/> produces an immediate EndElement; expectEnd handles it.
			return nil, err
		}
		return nil, nil
	case "string":
		return dec.text(se)
	case "int", "i4":
		s, err := dec.text(se)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad int %q: %w", s, err)
		}
		return int(n), nil
	case "i8":
		s, err := dec.text(se)
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad i8 %q: %w", s, err)
		}
		return int(n), nil
	case "boolean":
		s, err := dec.text(se)
		if err != nil {
			return nil, err
		}
		switch strings.TrimSpace(s) {
		case "1", "true":
			return true, nil
		case "0", "false":
			return false, nil
		default:
			return nil, fmt.Errorf("xmlrpc: bad boolean %q", s)
		}
	case "double":
		s, err := dec.text(se)
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad double %q: %w", s, err)
		}
		return f, nil
	case "base64":
		s, err := dec.text(se)
		if err != nil {
			return nil, err
		}
		data, err := base64.StdEncoding.DecodeString(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("xmlrpc: bad base64: %w", err)
		}
		return data, nil
	case "dateTime.iso8601":
		s, err := dec.text(se)
		if err != nil {
			return nil, err
		}
		s = strings.TrimSpace(s)
		for _, layout := range iso8601Variants {
			if t, err := time.Parse(layout, s); err == nil {
				return t.UTC(), nil
			}
		}
		return nil, fmt.Errorf("xmlrpc: bad dateTime %q", s)
	case "array":
		if _, err := dec.expectStart("data"); err != nil {
			return nil, err
		}
		arr := []any{}
		for {
			tok, err := dec.next()
			if err != nil {
				return nil, err
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if t.Name.Local != "value" {
					return nil, fmt.Errorf("xmlrpc: unexpected <%s> in array data", t.Name.Local)
				}
				v, err := dec.decodeValue()
				if err != nil {
					return nil, err
				}
				arr = append(arr, v)
			case xml.EndElement:
				if t.Name.Local != "data" {
					return nil, fmt.Errorf("xmlrpc: unexpected </%s> in array", t.Name.Local)
				}
				if err := dec.expectEnd("array"); err != nil {
					return nil, err
				}
				return arr, nil
			}
		}
	case "struct":
		m := map[string]any{}
		for {
			tok, err := dec.next()
			if err != nil {
				return nil, err
			}
			switch t := tok.(type) {
			case xml.StartElement:
				if t.Name.Local != "member" {
					return nil, fmt.Errorf("xmlrpc: unexpected <%s> in struct", t.Name.Local)
				}
				nameSE, err := dec.expectStart("name")
				if err != nil {
					return nil, err
				}
				name, err := dec.text(nameSE)
				if err != nil {
					return nil, err
				}
				if _, err := dec.expectStart("value"); err != nil {
					return nil, err
				}
				v, err := dec.decodeValue()
				if err != nil {
					return nil, err
				}
				if err := dec.expectEnd("member"); err != nil {
					return nil, err
				}
				m[name] = v
			case xml.EndElement:
				if t.Name.Local != "struct" {
					return nil, fmt.Errorf("xmlrpc: unexpected </%s> in struct", t.Name.Local)
				}
				return m, nil
			}
		}
	default:
		return nil, fmt.Errorf("xmlrpc: unknown value type <%s>", se.Name.Local)
	}
}

// DecodeRequest implements rpc.Codec.
func (*Codec) DecodeRequest(r io.Reader) (*rpc.Request, error) {
	dec := &decoder{d: xml.NewDecoder(r)}
	if _, err := dec.expectStart("methodCall"); err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
	}
	nameSE, err := dec.expectStart("methodName")
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
	}
	method, err := dec.text(nameSE)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
	}
	req := &rpc.Request{Method: strings.TrimSpace(method)}
	// <params> is optional per spec.
	tok, err := dec.next()
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
	}
	se, ok := tok.(xml.StartElement)
	if !ok {
		return req, nil // </methodCall>
	}
	if se.Name.Local != "params" {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: fmt.Sprintf("unexpected <%s>", se.Name.Local)}
	}
	for {
		tok, err := dec.next()
		if err != nil {
			return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if t.Name.Local != "param" {
				return nil, &rpc.Fault{Code: rpc.CodeParse, Message: fmt.Sprintf("unexpected <%s> in params", t.Name.Local)}
			}
			if _, err := dec.expectStart("value"); err != nil {
				return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
			}
			v, err := dec.decodeValue()
			if err != nil {
				return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
			}
			if err := dec.expectEnd("param"); err != nil {
				return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
			}
			req.Params = append(req.Params, v)
		case xml.EndElement:
			if t.Name.Local == "params" {
				return req, nil
			}
			return nil, &rpc.Fault{Code: rpc.CodeParse, Message: fmt.Sprintf("unexpected </%s>", t.Name.Local)}
		}
	}
}

// DecodeResponse implements rpc.Codec.
func (*Codec) DecodeResponse(r io.Reader) (*rpc.Response, error) {
	dec := &decoder{d: xml.NewDecoder(r)}
	if _, err := dec.expectStart("methodResponse"); err != nil {
		return nil, fmt.Errorf("xmlrpc: %w", err)
	}
	tok, err := dec.next()
	if err != nil {
		return nil, err
	}
	se, ok := tok.(xml.StartElement)
	if !ok {
		return nil, fmt.Errorf("xmlrpc: empty methodResponse")
	}
	switch se.Name.Local {
	case "params":
		if _, err := dec.expectStart("param"); err != nil {
			return nil, err
		}
		if _, err := dec.expectStart("value"); err != nil {
			return nil, err
		}
		v, err := dec.decodeValue()
		if err != nil {
			return nil, err
		}
		return &rpc.Response{Result: v}, nil
	case "fault":
		if _, err := dec.expectStart("value"); err != nil {
			return nil, err
		}
		v, err := dec.decodeValue()
		if err != nil {
			return nil, err
		}
		m, ok := v.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("xmlrpc: fault value is not a struct")
		}
		f := &rpc.Fault{}
		if c, ok := m["faultCode"].(int); ok {
			f.Code = c
		}
		if s, ok := m["faultString"].(string); ok {
			f.Message = s
		}
		return &rpc.Response{Fault: f}, nil
	default:
		return nil, fmt.Errorf("xmlrpc: unexpected <%s> in methodResponse", se.Name.Local)
	}
}

var _ rpc.Codec = (*Codec)(nil)
