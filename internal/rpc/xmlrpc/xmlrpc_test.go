package xmlrpc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"clarens/internal/rpc"
	"clarens/internal/rpc/codectest"
)

func TestConformance(t *testing.T) {
	codectest.Run(t, New())
}

// TestSpecExample decodes the canonical request from the XML-RPC spec.
func TestSpecExample(t *testing.T) {
	wire := `<?xml version="1.0"?>
<methodCall>
  <methodName>examples.getStateName</methodName>
  <params>
    <param><value><i4>41</i4></value></param>
  </params>
</methodCall>`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "examples.getStateName" {
		t.Errorf("method = %q", req.Method)
	}
	if len(req.Params) != 1 || !rpc.Equal(req.Params[0], 41) {
		t.Errorf("params = %#v", req.Params)
	}
}

// TestBareStringValue checks the spec rule that an untyped <value> is a string.
func TestBareStringValue(t *testing.T) {
	wire := `<?xml version="1.0"?><methodCall><methodName>m</methodName>
<params><param><value>bare text</value></param></params></methodCall>`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.Equal(req.Params[0], "bare text") {
		t.Errorf("bare value = %#v", req.Params[0])
	}
}

func TestI4AndIntEquivalent(t *testing.T) {
	for _, tag := range []string{"i4", "int"} {
		wire := `<methodCall><methodName>m</methodName><params><param><value><` +
			tag + `>7</` + tag + `></value></param></params></methodCall>`
		req, err := New().DecodeRequest(strings.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		if !rpc.Equal(req.Params[0], 7) {
			t.Errorf("<%s> = %#v", tag, req.Params[0])
		}
	}
}

func TestInt32Overflow(t *testing.T) {
	wire := `<methodCall><methodName>m</methodName><params><param><value><int>3000000000</int></value></param></params></methodCall>`
	if _, err := New().DecodeRequest(strings.NewReader(wire)); err == nil {
		t.Error("int beyond 32 bits must be rejected in <int>")
	}
	wire = `<methodCall><methodName>m</methodName><params><param><value><i8>3000000000</i8></value></param></params></methodCall>`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.Equal(req.Params[0], 3000000000) {
		t.Errorf("i8 = %#v", req.Params[0])
	}
}

func TestLargeIntEncodesAsI8(t *testing.T) {
	var buf bytes.Buffer
	if err := New().EncodeRequest(&buf, &rpc.Request{Method: "m", Params: []any{1 << 40}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<i8>") {
		t.Errorf("64-bit int should use <i8>: %s", buf.String())
	}
	if strings.Contains(buf.String(), "<int>") {
		t.Errorf("64-bit int must not use <int>: %s", buf.String())
	}
}

func TestBooleanVariants(t *testing.T) {
	for wire, want := range map[string]bool{"1": true, "0": false, "true": true, "false": false} {
		xml := `<methodCall><methodName>m</methodName><params><param><value><boolean>` +
			wire + `</boolean></value></param></params></methodCall>`
		req, err := New().DecodeRequest(strings.NewReader(xml))
		if err != nil {
			t.Fatal(err)
		}
		if req.Params[0] != want {
			t.Errorf("boolean %q = %v, want %v", wire, req.Params[0], want)
		}
	}
	bad := `<methodCall><methodName>m</methodName><params><param><value><boolean>2</boolean></value></param></params></methodCall>`
	if _, err := New().DecodeRequest(strings.NewReader(bad)); err == nil {
		t.Error("boolean 2 must be rejected")
	}
}

func TestDateTimeVariants(t *testing.T) {
	want := time.Date(1998, 7, 17, 14, 8, 55, 0, time.UTC)
	for _, s := range []string{"19980717T14:08:55", "1998-07-17T14:08:55"} {
		xml := `<methodCall><methodName>m</methodName><params><param><value><dateTime.iso8601>` +
			s + `</dateTime.iso8601></value></param></params></methodCall>`
		req, err := New().DecodeRequest(strings.NewReader(xml))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !req.Params[0].(time.Time).Equal(want) {
			t.Errorf("dateTime %q = %v, want %v", s, req.Params[0], want)
		}
	}
}

func TestNilExtension(t *testing.T) {
	xml := `<methodCall><methodName>m</methodName><params><param><value><nil/></value></param></params></methodCall>`
	req, err := New().DecodeRequest(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	if req.Params[0] != nil {
		t.Errorf("nil = %#v", req.Params[0])
	}
}

func TestFaultWireFormat(t *testing.T) {
	// Fault responses must use the spec's struct-with-faultCode/faultString.
	var buf bytes.Buffer
	err := New().EncodeResponse(&buf, &rpc.Response{Fault: &rpc.Fault{Code: 4, Message: "Too many parameters."}})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"<fault>", "faultCode", "faultString", "<int>4</int>", "Too many parameters."} {
		if !strings.Contains(s, frag) {
			t.Errorf("fault wire missing %q:\n%s", frag, s)
		}
	}
}

func TestRejectsUnknownType(t *testing.T) {
	xml := `<methodCall><methodName>m</methodName><params><param><value><float128>1</float128></value></param></params></methodCall>`
	if _, err := New().DecodeRequest(strings.NewReader(xml)); err == nil {
		t.Error("unknown value type must be rejected")
	}
}

func TestRejectsMalformedStructMember(t *testing.T) {
	xml := `<methodCall><methodName>m</methodName><params><param><value><struct><bogus/></struct></value></param></params></methodCall>`
	if _, err := New().DecodeRequest(strings.NewReader(xml)); err == nil {
		t.Error("struct with non-member child must be rejected")
	}
}

func TestRejectsTruncated(t *testing.T) {
	xml := `<methodCall><methodName>m</methodName><params><param><value><string>oops`
	if _, err := New().DecodeRequest(strings.NewReader(xml)); err == nil {
		t.Error("truncated document must be rejected")
	}
}

func TestRequestNoParamsElement(t *testing.T) {
	// <params> is optional per the spec.
	xml := `<methodCall><methodName>system.list_methods</methodName></methodCall>`
	req, err := New().DecodeRequest(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "system.list_methods" || len(req.Params) != 0 {
		t.Errorf("req = %+v", req)
	}
}

func TestEscaping(t *testing.T) {
	var buf bytes.Buffer
	payload := `</string><injected>&`
	if err := New().EncodeRequest(&buf, &rpc.Request{Method: "m", Params: []any{payload}}); err != nil {
		t.Fatal(err)
	}
	req, err := New().DecodeRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.Equal(req.Params[0], payload) {
		t.Errorf("escaped round trip = %#v", req.Params[0])
	}
}

func TestDecodeResponseFaultMissingFields(t *testing.T) {
	// A fault struct missing fields decodes with zero values, not a crash.
	xml := `<methodResponse><fault><value><struct></struct></value></fault></methodResponse>`
	resp, err := New().DecodeResponse(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault == nil || resp.Fault.Code != 0 || resp.Fault.Message != "" {
		t.Errorf("fault = %+v", resp.Fault)
	}
}

func TestDecodeResponseRejectsNonStructFault(t *testing.T) {
	xml := `<methodResponse><fault><value><int>1</int></value></fault></methodResponse>`
	if _, err := New().DecodeResponse(strings.NewReader(xml)); err == nil {
		t.Error("non-struct fault must be rejected")
	}
}

func TestWhitespaceTolerance(t *testing.T) {
	xml := `<?xml version="1.0"?>
	<methodCall>
		<methodName> m </methodName>
		<params>
			<param>
				<value>
					<int> 42 </int>
				</value>
			</param>
		</params>
	</methodCall>`
	req, err := New().DecodeRequest(strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "m" || !rpc.Equal(req.Params[0], 42) {
		t.Errorf("req = %+v params=%#v", req.Method, req.Params)
	}
}
