// Package rpc defines the protocol-independent request/response model that
// the Clarens framework dispatches on, and the Codec interface implemented
// by the XML-RPC, SOAP, and JSON-RPC wire formats (paper §1, §2: "At the
// basis of a Web Service call is a protocol (frequently, but not
// exclusively, XML-RPC or SOAP)"; Clarens supports "multiple protocols
// (XML-RPC, SOAP, ... JSON-RPC)").
//
// Value model shared by all codecs. Encoders accept and decoders produce:
//
//	nil, bool, int, int64, float64, string, []byte, time.Time,
//	[]any (arrays), map[string]any (structs)
//
// Decoders normalize integers to int and nested composites recursively.
package rpc

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Request is a decoded method invocation.
type Request struct {
	Method string
	Params []any
	// ID is the request correlation ID where the protocol has one
	// (JSON-RPC); nil otherwise.
	ID any
}

// Response is the result of a method invocation: exactly one of Result or
// Fault is meaningful.
type Response struct {
	Result any
	Fault  *Fault
	ID     any
}

// Fault is a protocol-level error (XML-RPC fault / SOAP Fault / JSON-RPC
// error object). It implements error.
type Fault struct {
	Code    int
	Message string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("rpc fault %d: %s", f.Code, f.Message)
}

// Standard fault codes used by the framework, aligned with the XML-RPC
// spec extensions and JSON-RPC 2.0 reserved ranges where sensible.
const (
	CodeParse          = -32700
	CodeInvalidRequest = -32600
	CodeMethodNotFound = -32601
	CodeInvalidParams  = -32602
	CodeInternal       = -32603
	CodeAccessDenied   = -32001
	CodeNotAuthorized  = -32002
	// CodeOverloaded marks a call the server refused BEFORE executing it
	// — load shedding or a graceful drain in progress. It is the one
	// fault code clients may always retry (with backoff, ideally against
	// another peer): the request provably had no effect.
	CodeOverloaded  = -32003
	CodeApplication = -32500
)

// Retryable reports whether a fault code indicates a request that never
// executed and is therefore safe to retry on any method.
func Retryable(code int) bool { return code == CodeOverloaded }

// Codec translates between wire bytes and the request/response model. A
// Codec must be safe for concurrent use.
type Codec interface {
	// Name is the short protocol name: "xmlrpc", "soap", "jsonrpc".
	Name() string
	// ContentTypes lists the MIME types this codec serves; the first entry
	// is used for responses.
	ContentTypes() []string

	DecodeRequest(r io.Reader) (*Request, error)
	EncodeResponse(w io.Writer, resp *Response) error

	EncodeRequest(w io.Writer, req *Request) error
	DecodeResponse(r io.Reader) (*Response, error)
}

// Normalize converts encoder-friendly values into the canonical decoded
// forms, so that results round-trip identically through any codec:
// all signed integer types become int, float32 becomes float64,
// map[string]string widens to map[string]any, []string to []any.
func Normalize(v any) (any, error) {
	switch x := v.(type) {
	case nil, bool, int, float64, string, []byte, time.Time:
		return x, nil
	case int8:
		return int(x), nil
	case int16:
		return int(x), nil
	case int32:
		return int(x), nil
	case int64:
		return int(x), nil
	case uint:
		if uint64(x) > math.MaxInt64 {
			return nil, fmt.Errorf("rpc: uint value %d overflows int", x)
		}
		return int(x), nil
	case uint8:
		return int(x), nil
	case uint16:
		return int(x), nil
	case uint32:
		return int(x), nil
	case uint64:
		if x > math.MaxInt64 {
			return nil, fmt.Errorf("rpc: uint64 value %d overflows int", x)
		}
		return int(x), nil
	case float32:
		return float64(x), nil
	case []any:
		// Fast path: an array whose elements are all already canonical
		// scalars is returned as-is, with no copy. Dispatch hands cached
		// results (e.g. the system.list_methods name list) through here
		// once per request, so the copy would be pure allocation churn.
		for i, e := range x {
			switch e.(type) {
			case nil, bool, int, float64, string:
				continue
			}
			out := make([]any, len(x))
			copy(out, x[:i])
			for j := i; j < len(x); j++ {
				n, err := Normalize(x[j])
				if err != nil {
					return nil, err
				}
				out[j] = n
			}
			return out, nil
		}
		return x, nil
	case []string:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, nil
	case []int:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, nil
	case []float64:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = e
		}
		return out, nil
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			n, err := Normalize(e)
			if err != nil {
				return nil, err
			}
			out[k] = n
		}
		return out, nil
	case map[string]string:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = e
		}
		return out, nil
	default:
		return nil, fmt.Errorf("rpc: unsupported value type %T", v)
	}
}

// CoerceInt accepts the integer encodings the codecs may produce for one
// logical value: int (XML-RPC, SOAP, integral JSON numbers), int64, and
// exact float64 (JSON cannot distinguish 3.0 from 3, so JSON-RPC peers
// may deliver integral doubles).
func CoerceInt(v any) (int, bool) {
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case float64:
		if n == float64(int(n)) {
			return int(n), true
		}
	}
	return 0, false
}

// CoerceBytes accepts a binary payload however the codec delivered it:
// []byte from the base64-aware decoders, string from codecs (or peers)
// that surface binary as text.
func CoerceBytes(v any) ([]byte, bool) {
	switch b := v.(type) {
	case []byte:
		return b, true
	case string:
		return []byte(b), true
	}
	return nil, false
}

// NormalizeParams normalizes every parameter in place-compatible fashion.
func NormalizeParams(params []any) ([]any, error) {
	out := make([]any, len(params))
	for i, p := range params {
		n, err := Normalize(p)
		if err != nil {
			return nil, fmt.Errorf("rpc: param %d: %w", i, err)
		}
		out[i] = n
	}
	return out, nil
}

// Equal compares two normalized values for semantic equality; used by
// cross-codec round-trip tests and by callers comparing results.
func Equal(a, b any) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case bool:
		y, ok := b.(bool)
		return ok && x == y
	case int:
		y, ok := b.(int)
		return ok && x == y
	case float64:
		y, ok := b.(float64)
		return ok && x == y
	case string:
		y, ok := b.(string)
		return ok && x == y
	case []byte:
		y, ok := b.([]byte)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	case time.Time:
		y, ok := b.(time.Time)
		return ok && x.Equal(y)
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !Equal(x[i], y[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		y, ok := b.(map[string]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for k, v := range x {
			w, ok := y[k]
			if !ok || !Equal(v, w) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
