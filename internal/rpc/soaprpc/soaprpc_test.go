package soaprpc

import (
	"bytes"
	"strings"
	"testing"

	"clarens/internal/rpc"
	"clarens/internal/rpc/codectest"
)

func TestConformance(t *testing.T) {
	codectest.Run(t, New())
}

func TestEnvelopeShape(t *testing.T) {
	var buf bytes.Buffer
	err := New().EncodeRequest(&buf, &rpc.Request{Method: "system.echo", Params: []any{"hi"}})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{
		"SOAP-ENV:Envelope", "SOAP-ENV:Body",
		"<cl:system.echo>", "xsi:type=\"xsd:string\"",
		"http://schemas.xmlsoap.org/soap/envelope/",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("envelope missing %q:\n%s", frag, s)
		}
	}
}

func TestFaultShape(t *testing.T) {
	var buf bytes.Buffer
	err := New().EncodeResponse(&buf, &rpc.Response{
		Fault: &rpc.Fault{Code: rpc.CodeAccessDenied, Message: "denied"},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"SOAP-ENV:Fault", "<faultcode>", "<faultstring>denied</faultstring>"} {
		if !strings.Contains(s, frag) {
			t.Errorf("fault missing %q:\n%s", frag, s)
		}
	}
	resp, err := New().DecodeResponse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Fault == nil || resp.Fault.Code != rpc.CodeAccessDenied || resp.Fault.Message != "denied" {
		t.Errorf("fault = %+v", resp.Fault)
	}
}

func TestAcceptsForeignEnvelope(t *testing.T) {
	// A request from a different SOAP stack: namespace prefixes differ,
	// a Header element is present, types use xsd:int.
	wire := `<?xml version="1.0" encoding="UTF-8"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"
                  xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                  xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
  <soapenv:Header><ignored/></soapenv:Header>
  <soapenv:Body>
    <ns1:file.read xmlns:ns1="urn:clarens">
      <name xsi:type="xsd:string">/store/run42.dat</name>
      <offset xsi:type="xsd:int">0</offset>
      <length xsi:type="xsd:int">4096</length>
    </ns1:file.read>
  </soapenv:Body>
</soapenv:Envelope>`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "file.read" {
		t.Errorf("method = %q", req.Method)
	}
	want := []any{"/store/run42.dat", 0, 4096}
	for i := range want {
		if !rpc.Equal(req.Params[i], want[i]) {
			t.Errorf("param %d = %#v", i, req.Params[i])
		}
	}
}

func TestUntypedElements(t *testing.T) {
	// Untyped leaf -> string; untyped with children -> struct.
	wire := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body>
<m><a>plain</a><b><x>1</x></b></m>
</Body></Envelope>`
	req, err := New().DecodeRequest(strings.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if !rpc.Equal(req.Params[0], "plain") {
		t.Errorf("param 0 = %#v", req.Params[0])
	}
	m, ok := req.Params[1].(map[string]any)
	if !ok || !rpc.Equal(m["x"], "1") {
		t.Errorf("param 1 = %#v", req.Params[1])
	}
}

func TestNilEncoding(t *testing.T) {
	var buf bytes.Buffer
	if err := New().EncodeResponse(&buf, &rpc.Response{Result: nil}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `xsi:nil="true"`) {
		t.Errorf("nil wire: %s", buf.String())
	}
	resp, err := New().DecodeResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Result != nil {
		t.Errorf("nil round trip = %#v", resp.Result)
	}
}

func TestRejectsNonEnvelope(t *testing.T) {
	if _, err := New().DecodeRequest(strings.NewReader("<methodCall/>")); err == nil {
		t.Error("non-SOAP document must be rejected")
	}
}

func TestRejectsEmptyBody(t *testing.T) {
	wire := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body></Body></Envelope>`
	if _, err := New().DecodeRequest(strings.NewReader(wire)); err == nil {
		t.Error("empty Body must be rejected")
	}
}

func TestRejectsUnknownXSIType(t *testing.T) {
	wire := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"
 xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"><Body>
<m><a xsi:type="xsd:hexBinary">ff</a></m></Body></Envelope>`
	if _, err := New().DecodeRequest(strings.NewReader(wire)); err == nil {
		t.Error("unsupported xsi:type must be rejected")
	}
}

func TestSanitizeElementName(t *testing.T) {
	cases := map[string]string{
		"simple":   "simple",
		"with sp":  "with_sp",
		"9lead":    "_9lead",
		"":         "_",
		"a.b-c_d":  "a.b-c_d",
		"<attack>": "_attack_",
	}
	for in, want := range cases {
		if got := sanitizeElementName(in); got != want {
			t.Errorf("sanitizeElementName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMissingReturnRejected(t *testing.T) {
	wire := `<Envelope xmlns="http://schemas.xmlsoap.org/soap/envelope/"><Body><Response><other/></Response></Body></Envelope>`
	if _, err := New().DecodeResponse(strings.NewReader(wire)); err == nil {
		t.Error("response without return element must be rejected")
	}
}
