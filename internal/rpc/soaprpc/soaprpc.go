// Package soaprpc implements a SOAP 1.1 RPC/encoded binding, the second
// protocol named by the paper (§1: "frequently, but not exclusively,
// XML-RPC or SOAP"). The encoding follows the classic Section-5 style used
// by Apache AXIS (the engine inside JClarens): the method call is an
// element named after the method in the urn:clarens namespace, parameters
// carry xsi:type attributes, arrays use SOAP-ENC:Array, and errors are
// SOAP Faults.
package soaprpc

import (
	"bytes"
	"encoding/base64"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"clarens/internal/rpc"
)

// Codec is the SOAP 1.1 implementation of rpc.Codec.
type Codec struct{}

// New returns the SOAP codec.
func New() *Codec { return &Codec{} }

// Name implements rpc.Codec.
func (*Codec) Name() string { return "soap" }

// ContentTypes implements rpc.Codec. SOAP 1.1 also travels as text/xml;
// the server distinguishes it from XML-RPC by the SOAPAction header or by
// sniffing the Envelope element, so the codec's dedicated type comes first.
func (*Codec) ContentTypes() []string { return contentTypes }

// contentTypes is shared across calls: ContentTypes sits on the
// per-response hot path and must not allocate.
var contentTypes = []string{"application/soap+xml"}

const (
	nsEnvelope = "http://schemas.xmlsoap.org/soap/envelope/"
	nsEncoding = "http://schemas.xmlsoap.org/soap/encoding/"
	nsXSI      = "http://www.w3.org/2001/XMLSchema-instance"
	nsXSD      = "http://www.w3.org/2001/XMLSchema"
	nsClarens  = "urn:clarens"
)

// methodElement converts a dotted Clarens method name into a valid XML
// element name (dots are legal in XML names, so this is the identity; kept
// as a seam for protocols that must mangle).
func methodElement(method string) string { return method }

// --- encoding ---

func envelopeHeader(b *bytes.Buffer) {
	b.WriteString(xml.Header)
	b.WriteString(`<SOAP-ENV:Envelope xmlns:SOAP-ENV="` + nsEnvelope + `"` +
		` xmlns:SOAP-ENC="` + nsEncoding + `"` +
		` xmlns:xsi="` + nsXSI + `"` +
		` xmlns:xsd="` + nsXSD + `"` +
		` xmlns:cl="` + nsClarens + `">` +
		`<SOAP-ENV:Body>`)
}

func envelopeFooter(b *bytes.Buffer) {
	b.WriteString(`</SOAP-ENV:Body></SOAP-ENV:Envelope>`)
}

func encodeTyped(b *bytes.Buffer, name string, v any) error {
	switch x := v.(type) {
	case nil:
		fmt.Fprintf(b, `<%s xsi:nil="true"/>`, name)
	case bool:
		fmt.Fprintf(b, `<%s xsi:type="xsd:boolean">%t</%s>`, name, x, name)
	case int:
		fmt.Fprintf(b, `<%s xsi:type="xsd:long">%d</%s>`, name, x, name)
	case float64:
		fmt.Fprintf(b, `<%s xsi:type="xsd:double">%s</%s>`, name, strconv.FormatFloat(x, 'g', -1, 64), name)
	case string:
		fmt.Fprintf(b, `<%s xsi:type="xsd:string">`, name)
		xml.EscapeText(b, []byte(x))
		fmt.Fprintf(b, `</%s>`, name)
	case []byte:
		fmt.Fprintf(b, `<%s xsi:type="xsd:base64Binary">%s</%s>`, name, base64.StdEncoding.EncodeToString(x), name)
	case time.Time:
		fmt.Fprintf(b, `<%s xsi:type="xsd:dateTime">%s</%s>`, name, x.UTC().Format(time.RFC3339Nano), name)
	case []any:
		fmt.Fprintf(b, `<%s xsi:type="SOAP-ENC:Array" SOAP-ENC:arrayType="xsd:anyType[%d]">`, name, len(x))
		for _, e := range x {
			if err := encodeTyped(b, "item", e); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, `</%s>`, name)
	case map[string]any:
		fmt.Fprintf(b, `<%s xsi:type="cl:Struct">`, name)
		for _, k := range sortedKeys(x) {
			if err := encodeTyped(b, sanitizeElementName(k), x[k]); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, `</%s>`, name)
	default:
		n, err := rpc.Normalize(v)
		if err != nil {
			return fmt.Errorf("soaprpc: %w", err)
		}
		return encodeTyped(b, name, n)
	}
	return nil
}

// sanitizeElementName makes an arbitrary struct key usable as an XML
// element name; keys in Clarens structs are identifier-like, so this only
// guards against pathological input.
func sanitizeElementName(k string) string {
	if k == "" {
		return "_"
	}
	var sb strings.Builder
	for _, r := range k {
		ok := r == '_' || r == '.' || r == '-' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out[0] >= '0' && out[0] <= '9' || out[0] == '.' || out[0] == '-' {
		out = "_" + out
	}
	return out
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// EncodeRequest implements rpc.Codec.
func (*Codec) EncodeRequest(w io.Writer, req *rpc.Request) error {
	var b bytes.Buffer
	envelopeHeader(&b)
	fmt.Fprintf(&b, `<cl:%s>`, methodElement(req.Method))
	for i, p := range req.Params {
		if err := encodeTyped(&b, fmt.Sprintf("param%d", i), p); err != nil {
			return err
		}
	}
	fmt.Fprintf(&b, `</cl:%s>`, methodElement(req.Method))
	envelopeFooter(&b)
	_, err := w.Write(b.Bytes())
	return err
}

// EncodeResponse implements rpc.Codec.
func (*Codec) EncodeResponse(w io.Writer, resp *rpc.Response) error {
	var b bytes.Buffer
	envelopeHeader(&b)
	if resp.Fault != nil {
		b.WriteString(`<SOAP-ENV:Fault><faultcode>SOAP-ENV:Server</faultcode><faultstring>`)
		xml.EscapeText(&b, []byte(resp.Fault.Message))
		b.WriteString(`</faultstring><detail><cl:code>`)
		b.WriteString(strconv.Itoa(resp.Fault.Code))
		b.WriteString(`</cl:code></detail></SOAP-ENV:Fault>`)
	} else {
		b.WriteString(`<cl:Response>`)
		if err := encodeTyped(&b, "return", resp.Result); err != nil {
			return err
		}
		b.WriteString(`</cl:Response>`)
	}
	envelopeFooter(&b)
	_, err := w.Write(b.Bytes())
	return err
}

// --- decoding ---

type element struct {
	name     string
	attrs    map[string]string
	text     string
	children []*element
}

// parseElement builds a lightweight DOM below the given start element.
func parseElement(d *xml.Decoder, se xml.StartElement) (*element, error) {
	el := &element{name: se.Name.Local, attrs: map[string]string{}}
	for _, a := range se.Attr {
		el.attrs[a.Name.Local] = a.Value
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.CharData:
			el.text += string(t)
		case xml.StartElement:
			child, err := parseElement(d, t)
			if err != nil {
				return nil, err
			}
			el.children = append(el.children, child)
		case xml.EndElement:
			return el, nil
		}
	}
}

func (el *element) child(name string) *element {
	for _, c := range el.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

func decodeTyped(el *element) (any, error) {
	if el.attrs["nil"] == "true" || el.attrs["null"] == "1" {
		return nil, nil
	}
	xsiType := el.attrs["type"]
	// Strip the namespace prefix: xsd:string -> string.
	if i := strings.IndexByte(xsiType, ':'); i >= 0 {
		xsiType = xsiType[i+1:]
	}
	text := strings.TrimSpace(el.text)
	switch xsiType {
	case "string":
		// Whitespace is significant in strings; use the raw text.
		return el.text, nil
	case "boolean":
		switch text {
		case "true", "1":
			return true, nil
		case "false", "0":
			return false, nil
		}
		return nil, fmt.Errorf("soaprpc: bad boolean %q", text)
	case "int", "long", "short", "byte", "integer":
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("soaprpc: bad %s %q", xsiType, text)
		}
		return int(n), nil
	case "double", "float", "decimal":
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("soaprpc: bad %s %q", xsiType, text)
		}
		return f, nil
	case "base64Binary", "base64":
		data, err := base64.StdEncoding.DecodeString(text)
		if err != nil {
			return nil, fmt.Errorf("soaprpc: bad base64: %w", err)
		}
		return data, nil
	case "dateTime":
		t, err := time.Parse(time.RFC3339Nano, text)
		if err != nil {
			return nil, fmt.Errorf("soaprpc: bad dateTime %q", text)
		}
		return t.UTC(), nil
	case "Array":
		arr := make([]any, 0, len(el.children))
		for _, c := range el.children {
			v, err := decodeTyped(c)
			if err != nil {
				return nil, err
			}
			arr = append(arr, v)
		}
		return arr, nil
	case "Struct":
		m := make(map[string]any, len(el.children))
		for _, c := range el.children {
			v, err := decodeTyped(c)
			if err != nil {
				return nil, err
			}
			m[c.name] = v
		}
		return m, nil
	case "":
		// Untyped: infer a struct if there are children, string otherwise.
		if len(el.children) > 0 {
			m := make(map[string]any, len(el.children))
			for _, c := range el.children {
				v, err := decodeTyped(c)
				if err != nil {
					return nil, err
				}
				m[c.name] = v
			}
			return m, nil
		}
		return el.text, nil
	default:
		return nil, fmt.Errorf("soaprpc: unsupported xsi:type %q", xsiType)
	}
}

// parseEnvelope returns the first element inside Body.
func parseEnvelope(r io.Reader) (*element, error) {
	d := xml.NewDecoder(r)
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Local != "Envelope" {
				return nil, fmt.Errorf("soaprpc: expected Envelope, got %s", se.Name.Local)
			}
			break
		}
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			if se.Name.Local != "Body" {
				// Skip Header or other children of Envelope.
				if err := d.Skip(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return parseElement(d, se)
		}
		if _, ok := tok.(xml.EndElement); ok {
			return nil, fmt.Errorf("soaprpc: empty Body")
		}
	}
}

// DecodeRequest implements rpc.Codec.
func (*Codec) DecodeRequest(r io.Reader) (*rpc.Request, error) {
	call, err := parseEnvelope(r)
	if err != nil {
		return nil, &rpc.Fault{Code: rpc.CodeParse, Message: err.Error()}
	}
	req := &rpc.Request{Method: call.name}
	for i, c := range call.children {
		v, err := decodeTyped(c)
		if err != nil {
			return nil, &rpc.Fault{Code: rpc.CodeInvalidParams, Message: fmt.Sprintf("param %d: %v", i, err)}
		}
		req.Params = append(req.Params, v)
	}
	return req, nil
}

// DecodeResponse implements rpc.Codec.
func (*Codec) DecodeResponse(r io.Reader) (*rpc.Response, error) {
	body, err := parseEnvelope(r)
	if err != nil {
		return nil, fmt.Errorf("soaprpc: %w", err)
	}
	if body.name == "Fault" {
		f := &rpc.Fault{Code: rpc.CodeApplication}
		if fs := body.child("faultstring"); fs != nil {
			f.Message = strings.TrimSpace(fs.text)
		}
		if det := body.child("detail"); det != nil {
			if code := det.child("code"); code != nil {
				if n, err := strconv.Atoi(strings.TrimSpace(code.text)); err == nil {
					f.Code = n
				}
			}
		}
		return &rpc.Response{Fault: f}, nil
	}
	ret := body.child("return")
	if ret == nil {
		return nil, fmt.Errorf("soaprpc: response has no return element")
	}
	v, err := decodeTyped(ret)
	if err != nil {
		return nil, err
	}
	return &rpc.Response{Result: v}, nil
}

var _ rpc.Codec = (*Codec)(nil)
