package shellsvc

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

// Service is the Clarens shell service.
type Service struct {
	srv         *core.Server
	userMap     *UserMap
	sandboxRoot string
	// AllowRealExec switches shell.cmd from the built-in interpreter to
	// /bin/sh -c executed inside the sandbox working directory. Off by
	// default; enable only on hosts where every mapped user is trusted
	// with the server's own privileges.
	AllowRealExec bool
}

// New creates the shell service. sandboxRoot is the directory under which
// per-user sandboxes are created ("execution takes place in a sandbox
// owned by the local system user ... created or re-used for subsequent
// commands"). Point it inside the file service root to make sandboxes
// visible to file.* methods, as the paper describes.
func New(srv *core.Server, userMap *UserMap, sandboxRoot string) (*Service, error) {
	if userMap == nil {
		return nil, fmt.Errorf("shellsvc: nil user map")
	}
	abs, err := filepath.Abs(sandboxRoot)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("shellsvc: sandbox root: %w", err)
	}
	return &Service{srv: srv, userMap: userMap, sandboxRoot: abs}, nil
}

// Name implements core.Service.
func (s *Service) Name() string { return "shell" }

// Methods implements core.Service. Access to the module is additionally
// controlled by method ACLs ("The Shell provides a secure way for
// *authorized* clients to execute shell commands").
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "shell.cmd",
			Help:      "Execute a command line in the caller's sandbox as the mapped local user; returns {stdout, stderr, exit_code, user, sandbox}.",
			Signature: []string{"struct string"},
			Handler:   s.cmd,
		},
		{
			Name:      "shell.cmd_info",
			Help:      "Return the caller's mapped local user, sandbox top directory (usable with file.* methods), and the available commands.",
			Signature: []string{"struct"},
			Handler:   s.cmdInfo,
		},
		{
			Name:      "shell.whoami_local",
			Help:      "Return the local system user the caller's DN maps to.",
			Signature: []string{"string"},
			Handler:   s.whoamiLocal,
		},
	}
}

// resolveUser maps the caller to a local user or faults.
func (s *Service) resolveUser(ctx *core.Context) (string, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return "", err
	}
	user, ok := s.userMap.Resolve(ctx.DN, s.srv.VO())
	if !ok {
		return "", &rpc.Fault{
			Code:    rpc.CodeAccessDenied,
			Message: fmt.Sprintf("shell: no %s entry maps %q to a local user", UserMapFileName, ctx.DN.String()),
		}
	}
	return user, nil
}

// Sandbox returns (creating if needed) the sandbox directory for a local
// user and its path relative to the sandbox root.
func (s *Service) Sandbox(localUser string) (abs string, err error) {
	if strings.ContainsAny(localUser, "/\\.") {
		return "", fmt.Errorf("shellsvc: invalid local user %q", localUser)
	}
	abs = filepath.Join(s.sandboxRoot, localUser)
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return "", err
	}
	return abs, nil
}

// SandboxVirtual returns the sandbox path as seen by the file service
// when the sandbox root lives under the file service root at rootPrefix
// (e.g. "/sandbox"). Used by shell.cmd_info so clients can follow up with
// file.ls / file.read on their sandbox, per the paper.
func (s *Service) SandboxVirtual(localUser string) string {
	return "/" + filepath.ToSlash(filepath.Join(filepath.Base(s.sandboxRoot), localUser))
}

// ExecAs runs a command line in dn's sandbox exactly as shell.cmd would,
// without an RPC context: the DN is resolved through the user map, the
// per-user sandbox is created or re-used, and the line runs under the
// built-in interpreter (or /bin/sh when AllowRealExec is set). It is the
// execution backend for the asynchronous job service, which schedules
// payloads on behalf of authenticated owners. The mapped local user is
// returned alongside the result.
func (s *Service) ExecAs(dn pki.DN, line string) (Result, string, error) {
	if dn.IsZero() {
		return Result{}, "", &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "shell: authentication required"}
	}
	user, ok := s.userMap.Resolve(dn, s.srv.VO())
	if !ok {
		return Result{}, "", &rpc.Fault{
			Code:    rpc.CodeAccessDenied,
			Message: fmt.Sprintf("shell: no %s entry maps %q to a local user", UserMapFileName, dn.String()),
		}
	}
	sandbox, err := s.Sandbox(user)
	if err != nil {
		return Result{}, "", err
	}
	if s.AllowRealExec {
		return s.realExec(line, sandbox), user, nil
	}
	ip := &interp{sandbox: sandbox, cwd: sandbox}
	return ip.run(line, user), user, nil
}

func (s *Service) cmd(ctx *core.Context, p core.Params) (any, error) {
	line, err := p.String(0)
	if err != nil {
		return nil, err
	}
	res, user, err := s.ExecAs(ctx.DN, line)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"stdout":    res.Stdout,
		"stderr":    res.Stderr,
		"exit_code": res.ExitCode,
		"user":      user,
		"sandbox":   s.SandboxVirtual(user),
	}, nil
}

// realExec runs the command under /bin/sh in the sandbox directory. This
// is the opt-in mode closest to the original service (which additionally
// switched to the mapped Unix uid).
func (s *Service) realExec(line, sandbox string) Result {
	cmd := exec.Command("/bin/sh", "-c", line)
	cmd.Dir = sandbox
	cmd.Env = []string{"HOME=" + sandbox, "PATH=/usr/bin:/bin"}
	var out, errw strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errw
	err := cmd.Run()
	code := 0
	if err != nil {
		code = 1
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		}
	}
	return Result{Stdout: out.String(), Stderr: errw.String(), ExitCode: code}
}

func (s *Service) cmdInfo(ctx *core.Context, p core.Params) (any, error) {
	user, err := s.resolveUser(ctx)
	if err != nil {
		return nil, err
	}
	if _, err := s.Sandbox(user); err != nil {
		return nil, err
	}
	return map[string]any{
		"user":      user,
		"sandbox":   s.SandboxVirtual(user),
		"commands":  BuiltinCommands(),
		"real_exec": s.AllowRealExec,
	}, nil
}

func (s *Service) whoamiLocal(ctx *core.Context, p core.Params) (any, error) {
	user, err := s.resolveUser(ctx)
	if err != nil {
		return nil, err
	}
	return user, nil
}

var _ core.Service = (*Service)(nil)
