package shellsvc

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"clarens/internal/core"
	"clarens/internal/pki"
	"clarens/internal/rpc"
)

// Service is the Clarens shell service.
type Service struct {
	srv         *core.Server
	userMap     *UserMap
	sandboxRoot string
	// AllowRealExec switches shell.cmd from the built-in interpreter to
	// /bin/sh -c executed inside the sandbox working directory. Off by
	// default; enable only on hosts where every mapped user is trusted
	// with the server's own privileges.
	AllowRealExec bool
}

// New creates the shell service. sandboxRoot is the directory under which
// per-user sandboxes are created ("execution takes place in a sandbox
// owned by the local system user ... created or re-used for subsequent
// commands"). Point it inside the file service root to make sandboxes
// visible to file.* methods, as the paper describes.
func New(srv *core.Server, userMap *UserMap, sandboxRoot string) (*Service, error) {
	if userMap == nil {
		return nil, fmt.Errorf("shellsvc: nil user map")
	}
	abs, err := filepath.Abs(sandboxRoot)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return nil, fmt.Errorf("shellsvc: sandbox root: %w", err)
	}
	return &Service{srv: srv, userMap: userMap, sandboxRoot: abs}, nil
}

// Name implements core.Service.
func (s *Service) Name() string { return "shell" }

// Methods implements core.Service. Access to the module is additionally
// controlled by method ACLs ("The Shell provides a secure way for
// *authorized* clients to execute shell commands").
func (s *Service) Methods() []core.Method {
	return []core.Method{
		{
			Name:      "shell.cmd",
			Help:      "Execute a command line in the caller's sandbox as the mapped local user; returns {stdout, stderr, exit_code, user, sandbox}.",
			Signature: []string{"struct string"},
			Handler:   s.cmd,
		},
		{
			Name:      "shell.cmd_info",
			Help:      "Return the caller's mapped local user, sandbox top directory (usable with file.* methods), and the available commands.",
			Signature: []string{"struct"},
			Handler:   s.cmdInfo,
		},
		{
			Name:      "shell.whoami_local",
			Help:      "Return the local system user the caller's DN maps to.",
			Signature: []string{"string"},
			Handler:   s.whoamiLocal,
		},
	}
}

// resolveUser maps the caller to a local user or faults.
func (s *Service) resolveUser(ctx *core.Context) (string, error) {
	if err := ctx.RequireAuthenticated(); err != nil {
		return "", err
	}
	user, ok := s.userMap.Resolve(ctx.DN, s.srv.VO())
	if !ok {
		return "", &rpc.Fault{
			Code:    rpc.CodeAccessDenied,
			Message: fmt.Sprintf("shell: no %s entry maps %q to a local user", UserMapFileName, ctx.DN.String()),
		}
	}
	return user, nil
}

// Sandbox returns (creating if needed) the sandbox directory for a local
// user and its path relative to the sandbox root.
func (s *Service) Sandbox(localUser string) (abs string, err error) {
	if strings.ContainsAny(localUser, "/\\.") {
		return "", fmt.Errorf("shellsvc: invalid local user %q", localUser)
	}
	abs = filepath.Join(s.sandboxRoot, localUser)
	if err := os.MkdirAll(abs, 0o755); err != nil {
		return "", err
	}
	return abs, nil
}

// SandboxVirtual returns the sandbox path as seen by the file service
// when the sandbox root lives under the file service root at rootPrefix
// (e.g. "/sandbox"). Used by shell.cmd_info so clients can follow up with
// file.ls / file.read on their sandbox, per the paper.
func (s *Service) SandboxVirtual(localUser string) string {
	return "/" + filepath.ToSlash(filepath.Join(filepath.Base(s.sandboxRoot), localUser))
}

// ExecStreamAs runs a command line in dn's sandbox, streaming stdout and
// stderr into the supplied writers as the command produces them: the DN
// is resolved through the user map, the per-user sandbox is created or
// re-used, and the line runs under the built-in interpreter (or /bin/sh
// when AllowRealExec is set). It is the execution backend for the
// asynchronous job service, which spools job outputs to per-job artifact
// files instead of retaining them as strings — nothing in this path
// buffers the full stream in memory. The exit code and mapped local user
// are returned.
func (s *Service) ExecStreamAs(dn pki.DN, line string, stdout, stderr io.Writer) (int, string, error) {
	if dn.IsZero() {
		return 0, "", &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "shell: authentication required"}
	}
	user, ok := s.userMap.Resolve(dn, s.srv.VO())
	if !ok {
		return 0, "", &rpc.Fault{
			Code:    rpc.CodeAccessDenied,
			Message: fmt.Sprintf("shell: no %s entry maps %q to a local user", UserMapFileName, dn.String()),
		}
	}
	sandbox, err := s.Sandbox(user)
	if err != nil {
		return 0, "", err
	}
	if s.AllowRealExec {
		return s.realExec(line, sandbox, stdout, stderr), user, nil
	}
	ip := &interp{sandbox: sandbox, cwd: sandbox}
	return ip.run(line, user, stdout, stderr), user, nil
}

// ExecAs is ExecStreamAs with buffered capture, for callers that want the
// whole (small) output as strings — shell.cmd's interactive round trip.
func (s *Service) ExecAs(dn pki.DN, line string) (Result, string, error) {
	var out, errw strings.Builder
	code, user, err := s.ExecStreamAs(dn, line, &out, &errw)
	if err != nil {
		return Result{}, "", err
	}
	return Result{Stdout: out.String(), Stderr: errw.String(), ExitCode: code}, user, nil
}

// CollectedFile describes one sandbox file staged by CollectInto: its
// base name in the destination plus the size and MD5 computed while the
// copy streamed (so callers never re-read the file to describe it).
type CollectedFile struct {
	Name string
	Size int64
	MD5  string
}

// CollectInto copies sandbox files matching the glob patterns into
// destDir, making the job's working files a collectable artifact set:
// the job service calls it after an attempt so analysis outputs written
// to the sandbox (histograms, skimmed event files) stage alongside the
// stdout/stderr spools. Patterns resolve relative to the sandbox root
// and may name subdirectories ("results/*.dat"). Symlinks are never
// followed — neither as matches nor through parent directories — so a
// payload cannot stage server files from outside its sandbox.
// fileLimit bounds EACH file (<= 0: unlimited); oversized files are
// reported in skipped, not split. The destination file names are the
// matches' base names (first match wins on collision, and a file already
// present in destDir — e.g. an output spool — is never overwritten);
// staged files come back name-sorted with sizes and digests.
func (s *Service) CollectInto(dn pki.DN, patterns []string, destDir string, fileLimit int64) (staged []CollectedFile, skipped []string, err error) {
	if dn.IsZero() {
		return nil, nil, &rpc.Fault{Code: rpc.CodeNotAuthorized, Message: "shell: authentication required"}
	}
	user, ok := s.userMap.Resolve(dn, s.srv.VO())
	if !ok {
		return nil, nil, &rpc.Fault{
			Code:    rpc.CodeAccessDenied,
			Message: fmt.Sprintf("shell: no %s entry maps %q to a local user", UserMapFileName, dn.String()),
		}
	}
	sandbox, err := s.Sandbox(user)
	if err != nil {
		return nil, nil, err
	}
	// Containment is checked on the RESOLVED path: a match that passes the
	// lexical prefix test can still point outside the sandbox through a
	// symlinked parent directory or be a symlink itself.
	sandboxReal, err := filepath.EvalSymlinks(sandbox)
	if err != nil {
		return nil, nil, err
	}
	byName := make(map[string]CollectedFile)
	for _, pattern := range patterns {
		clean := filepath.Clean(filepath.FromSlash(pattern))
		if clean == "." || filepath.IsAbs(clean) || strings.HasPrefix(clean, "..") {
			continue // pattern escapes (or is) the sandbox root
		}
		matches, err := filepath.Glob(filepath.Join(sandbox, clean))
		if err != nil {
			return nil, nil, fmt.Errorf("shell: bad collect pattern %q: %v", pattern, err)
		}
		for _, m := range matches {
			if !strings.HasPrefix(m, sandbox+string(filepath.Separator)) {
				continue
			}
			real, rerr := filepath.EvalSymlinks(m)
			if rerr != nil || (real != sandboxReal && !strings.HasPrefix(real, sandboxReal+string(filepath.Separator))) {
				continue // resolves outside the sandbox (symlink escape)
			}
			fi, serr := os.Lstat(m)
			if serr != nil || !fi.Mode().IsRegular() {
				continue // symlinks and specials are never staged
			}
			name := filepath.Base(m)
			if _, dup := byName[name]; dup {
				continue
			}
			if _, serr := os.Lstat(filepath.Join(destDir, name)); serr == nil {
				// Never overwrite a file already in the destination — the
				// job service's stdout/stderr spools live there, and a
				// sandbox file of the same name must not clobber a spool
				// whose size/digest were already published.
				continue
			}
			if fileLimit > 0 && fi.Size() > fileLimit {
				skipped = append(skipped, name)
				continue
			}
			size, digest, cerr := copyFileHash(real, filepath.Join(destDir, name))
			if cerr != nil {
				return nil, nil, fmt.Errorf("shell: collect %q: %v", name, cerr)
			}
			byName[name] = CollectedFile{Name: name, Size: size, MD5: digest}
		}
	}
	for _, cf := range byName {
		staged = append(staged, cf)
	}
	sort.Slice(staged, func(i, j int) bool { return staged[i].Name < staged[j].Name })
	sort.Strings(skipped)
	return staged, skipped, nil
}

func (s *Service) cmd(ctx *core.Context, p core.Params) (any, error) {
	line, err := p.String(0)
	if err != nil {
		return nil, err
	}
	res, user, err := s.ExecAs(ctx.DN, line)
	if err != nil {
		return nil, err
	}
	return map[string]any{
		"stdout":    res.Stdout,
		"stderr":    res.Stderr,
		"exit_code": res.ExitCode,
		"user":      user,
		"sandbox":   s.SandboxVirtual(user),
	}, nil
}

// realExec runs the command under /bin/sh in the sandbox directory,
// wiring the process's stdout/stderr straight to the capture writers.
// This is the opt-in mode closest to the original service (which
// additionally switched to the mapped Unix uid).
func (s *Service) realExec(line, sandbox string, stdout, stderr io.Writer) int {
	cmd := exec.Command("/bin/sh", "-c", line)
	cmd.Dir = sandbox
	cmd.Env = []string{"HOME=" + sandbox, "PATH=/usr/bin:/bin"}
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		code = 1
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		}
	}
	return code
}

func (s *Service) cmdInfo(ctx *core.Context, p core.Params) (any, error) {
	user, err := s.resolveUser(ctx)
	if err != nil {
		return nil, err
	}
	if _, err := s.Sandbox(user); err != nil {
		return nil, err
	}
	return map[string]any{
		"user":      user,
		"sandbox":   s.SandboxVirtual(user),
		"commands":  BuiltinCommands(),
		"real_exec": s.AllowRealExec,
	}, nil
}

func (s *Service) whoamiLocal(ctx *core.Context, p core.Params) (any, error) {
	user, err := s.resolveUser(ctx)
	if err != nil {
		return nil, err
	}
	return user, nil
}

var _ core.Service = (*Service)(nil)
