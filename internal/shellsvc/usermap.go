// Package shellsvc implements the Clarens shell service (paper §2.5):
// authorized clients execute commands on the server as a designated local
// system user, inside a per-user sandbox directory that is visible to the
// file service. The DN-to-local-user mapping lives in a
// .clarens_user_map file whose tuples consist of "a system user name
// string, followed by a list of user distinguished name strings, a list
// of group name strings, and a final list reserved for future use".
//
// Substitution (DESIGN.md §5): the original service switched Unix uids;
// running unprivileged, we preserve the security model — mapping, ACL
// gate, per-user sandboxes — and execute commands with a safe built-in
// interpreter by default. Real /bin/sh execution is available behind an
// explicit opt-in.
package shellsvc

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"clarens/internal/pki"
)

// UserMapFileName is the conventional name of the mapping file, located
// under the clarens/shell directory in the original deployment.
const UserMapFileName = ".clarens_user_map"

// Mapping is one tuple of the user map.
type Mapping struct {
	LocalUser string
	DNs       []string // DN strings or structural prefixes
	Groups    []string // VO group names
	Reserved  []string // "a final list reserved for future use"
}

// UserMap resolves certificate DNs to local system users.
type UserMap struct {
	mappings []Mapping
}

// GroupResolver answers VO group membership (implemented by vo.Manager).
type GroupResolver interface {
	IsMember(group string, dn pki.DN) bool
}

// ParseUserMap reads the .clarens_user_map format:
//
//	# comment
//	joe : /DC=org/DC=doegrids/OU=People/CN=Joe User | /O=lab/CN=Joe ; ops, cms ;
//	guest : ; visitors ;
//
// Each line is: localuser ':' DN-list ('|'-separated) ';' group-list
// (','-separated) ';' reserved-list (','-separated). Empty lists are
// permitted; blank lines and '#' comments are ignored.
func ParseUserMap(r io.Reader) (*UserMap, error) {
	um := &UserMap{}
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("shellsvc: %s line %d: missing ':' after user name", UserMapFileName, lineNo)
		}
		m := Mapping{LocalUser: strings.TrimSpace(line[:colon])}
		if m.LocalUser == "" {
			return nil, fmt.Errorf("shellsvc: %s line %d: empty user name", UserMapFileName, lineNo)
		}
		rest := line[colon+1:]
		fields := strings.Split(rest, ";")
		if len(fields) > 0 {
			for _, dn := range strings.Split(fields[0], "|") {
				dn = strings.TrimSpace(dn)
				if dn == "" {
					continue
				}
				if _, err := pki.ParseDN(dn); err != nil {
					return nil, fmt.Errorf("shellsvc: %s line %d: %v", UserMapFileName, lineNo, err)
				}
				m.DNs = append(m.DNs, dn)
			}
		}
		if len(fields) > 1 {
			m.Groups = splitCommaList(fields[1])
		}
		if len(fields) > 2 {
			m.Reserved = splitCommaList(fields[2])
		}
		um.mappings = append(um.mappings, m)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("shellsvc: read user map: %w", err)
	}
	return um, nil
}

// LoadUserMap parses the map file at path.
func LoadUserMap(path string) (*UserMap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shellsvc: %w", err)
	}
	defer f.Close()
	return ParseUserMap(f)
}

func splitCommaList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(e)
		if e != "" {
			out = append(out, e)
		}
	}
	return out
}

// Mappings returns a copy of the parsed tuples.
func (um *UserMap) Mappings() []Mapping {
	return append([]Mapping(nil), um.mappings...)
}

// Resolve returns the local user designated for dn: the first tuple whose
// DN list matches (structurally, allowing prefixes) or whose group list
// contains a VO group the DN belongs to.
func (um *UserMap) Resolve(dn pki.DN, groups GroupResolver) (string, bool) {
	if dn.IsZero() {
		return "", false
	}
	for _, m := range um.mappings {
		for _, entry := range m.DNs {
			p, err := pki.ParseDN(entry)
			if err != nil {
				continue
			}
			if dn.HasPrefix(p) {
				return m.LocalUser, true
			}
		}
		if groups != nil {
			for _, g := range m.Groups {
				if groups.IsMember(g, dn) {
					return m.LocalUser, true
				}
			}
		}
	}
	return "", false
}
